(* The benchmark harness: regenerates every table and figure of the paper
   and quantifies its performance claims. See EXPERIMENTS.md for the
   experiment index and paper-vs-measured discussion.

   Run with: dune exec bench/main.exe            (all experiments)
             dune exec bench/main.exe -- micro   (adds bechamel microbenches)

   Experiment ids (DESIGN.md):
     T1a-T1f, T2g-T2i  pushdown patterns of Tables 1 and 2
     F4                tuple representations of Figure 4
     PPk               PP-k block size sweep (§4.2, default k=20)
     IDX               scan vs index access paths on the PP-k probe side
     GRP               pre-clustered streaming group-by vs sort fallback
     ASY               fn-bea:async latency overlap (§5.4)
     CCH               function cache: slow call -> single-row lookup (§5.5)
     FOV               fn-bea:timeout / fail-over behaviour (§5.6)
     VWU               view unfolding + source-access elimination (§4.2)
     PLC               plan cache and view-plan cache (§2.2, §4.2)
     INV               inverse functions enable pushdown (§4.5)
     CCX               concurrent serving layer: client sweep (§5.4)
     CCS               cross-session work sharing: coalescing + batching
     STRM              streamed delivery: TTFT + peak live tokens (§2.2)
     SRT               bounded-memory external sort: spill vs in-memory
*)

open Aldsp_core
open Aldsp_relational
open Aldsp_services
open Aldsp_demo
module Item = Aldsp_xml.Item
module Qname = Aldsp_xml.Qname
module Atomic = Aldsp_xml.Atomic
module Token_stream = Aldsp_tokens.Token_stream

let banner title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let sub title = Printf.printf "\n--- %s\n" title

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

let ok_exn = function Ok v -> v | Error m -> failwith m

(* ------------------------------------------------------------------ *)
(* Machine-readable results: every experiment appends (name, params,
   wall-time) records; the whole run is written to BENCH_results.json so
   the performance trajectory can be compared across changes. *)

let bench_results : (string * (string * string) list * float) list ref = ref []

(* [params] values must already be JSON-encoded (numbers bare, strings
   quoted by the caller) *)
let record_result name ~params seconds =
  bench_results := (name, params, seconds *. 1000.) :: !bench_results

(* A partial run (the CI smoke sweep, a single re-run experiment) must not
   clobber records other experiments already wrote to [path]: records are
   merged by benchmark name — prior records whose name this run also
   produced are replaced, every other prior record is kept. The writer
   emits one record per line, so prior lines carry over verbatim. *)
let record_name line =
  let marker = "\"name\": \"" in
  let n = String.length line and m = String.length marker in
  let rec find i =
    if i + m > n then None
    else if String.sub line i m = marker then Some (i + m)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start -> (
    match String.index_from_opt line start '"' with
    | Some stop -> Some (String.sub line start (stop - start))
    | None -> None)

let existing_records path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> ());
    close_in ic;
    List.filter_map
      (fun line ->
        let line = String.trim line in
        let line =
          if String.length line > 0 && line.[String.length line - 1] = ',' then
            String.sub line 0 (String.length line - 1)
          else line
        in
        if String.length line > 0 && line.[0] = '{' then
          Option.map (fun name -> (name, line)) (record_name line)
        else None)
      (List.rev !lines)
  end

let write_results path =
  let fresh =
    List.rev_map
      (fun (name, params, wall_ms) ->
        let fields =
          (Printf.sprintf "\"name\": \"%s\"" name)
          :: List.map (fun (k, v) -> Printf.sprintf "\"%s\": %s" k v) params
          @ [ Printf.sprintf "\"wall_ms\": %.3f" wall_ms ]
        in
        (name, "{" ^ String.concat ", " fields ^ "}"))
      !bench_results
  in
  let fresh_names = List.sort_uniq compare (List.map fst fresh) in
  let kept =
    List.filter
      (fun (name, _) -> not (List.mem name fresh_names))
      (existing_records path)
  in
  let records = List.map snd kept @ List.map snd fresh in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf ("  " ^ r))
    records;
  Buffer.add_string buf "\n]\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "\nwrote %d result records to %s (%d fresh, %d carried over)\n"
    (List.length records) path (List.length fresh) (List.length kept)

let run demo q = ok_exn (Server.run demo.Demo.server q)

(* ------------------------------------------------------------------ *)
(* Tables 1 and 2: the pushdown pattern catalog                        *)

let pattern_catalog =
  [ ( "T1a", "simple select-project",
      "for $c in CUSTOMER() where $c/CID eq \"CUST0001\" return $c/FIRST_NAME" );
    ( "T1b", "inner join",
      "for $c in CUSTOMER(), $o in ORDER_T() where $c/CID eq $o/CID return <CUSTOMER_ORDER>{$c/CID, $o/OID}</CUSTOMER_ORDER>" );
    ( "T1c", "outer join (nested FLWOR)",
      "for $c in CUSTOMER() return <CUSTOMER>{$c/CID, for $o in ORDER_T() where $c/CID eq $o/CID return $o/OID}</CUSTOMER>" );
    ( "T1d", "if-then-else -> CASE",
      "for $c in CUSTOMER() return <CUSTOMER>{data(if ($c/CID eq \"CUST0001\") then $c/FIRST_NAME else $c/LAST_NAME)}</CUSTOMER>" );
    ( "T1e", "group-by with aggregation",
      "for $c in CUSTOMER() group $c as $p by $c/LAST_NAME as $l return <CUSTOMER>{$l, count($p)}</CUSTOMER>" );
    ( "T1f", "group-by as DISTINCT",
      "for $c in CUSTOMER() group by $c/LAST_NAME as $l return $l" );
    ( "T2g", "outer join with aggregation",
      "for $c in CUSTOMER() return <CUSTOMER>{$c/CID, <ORDERS>{count(for $o in ORDER_T() where $o/CID eq $c/CID return $o)}</ORDERS>}</CUSTOMER>" );
    ( "T2h", "semi join (quantified expression)",
      "for $c in CUSTOMER() where some $o in ORDER_T() satisfies $c/CID eq $o/CID return $c/CID" );
    ( "T2i", "subsequence() -> row window (Oracle ROWNUM)",
      "let $cs := for $c in CUSTOMER() let $oc := count(for $o in ORDER_T() where $c/CID eq $o/CID return $o) order by $oc descending return <CUSTOMER>{data($c/CID), $oc}</CUSTOMER> return subsequence($cs, 10, 20)" ) ]

(* middleware-only reference evaluation (no optimizer, no pushdown) *)
let run_unpushed demo q =
  let registry = demo.Demo.registry in
  let diag = Diag.collector Diag.Fail_fast in
  let ctx =
    Normalize.context ~schema_lookup:(Metadata.find_schema registry) diag
  in
  let core = Normalize.expr ctx (ok_exn (Xq_parser.parse_expr q)) in
  let env = Typecheck.env registry diag in
  let _, typed = Typecheck.check env core in
  ok_exn (Eval.eval (Eval.runtime registry) typed)

let bench_pushdown_patterns () =
  banner "Tables 1 and 2: XQuery-to-SQL pushdown patterns";
  Printf.printf
    "(demo enterprise; CustomerDB speaks Oracle SQL, CardDB SQL Server)\n";
  let demo = Demo.create ~customers:40 ~orders_per_customer:2 () in
  List.iter
    (fun (id, label, q) ->
      sub (Printf.sprintf "%s: %s" id label);
      Printf.printf "XQuery: %s\n" q;
      match Server.compile demo.Demo.server q with
      | Error ds ->
        Printf.printf "COMPILE FAILED: %s\n"
          (String.concat "; " (List.map Diag.to_string ds))
      | Ok compiled ->
        List.iter
          (fun (db, sql) -> Printf.printf "SQL [%s]:\n  %s\n" db sql)
          compiled.Server.sql;
        let pushed = run demo q in
        let reference = run_unpushed demo q in
        Printf.printf "rows: %d   matches middleware evaluation: %b\n"
          (List.length pushed)
          (Item.serialize pushed = Item.serialize reference))
    pattern_catalog

(* ------------------------------------------------------------------ *)
(* Figure 4: tuple representations                                      *)

let bench_tuple_representations () =
  banner "Figure 4: tuple representations (stream / single token / array)";
  let open Aldsp_tokens in
  let n = 20_000 in
  let fields =
    [ [ Item.integer 100 ];
      [ Item.string "al" ];
      [ Item.integer 50 ];
      [ Item.string "dsp" ] ]
  in
  Printf.printf
    "%d tuples of 4 fields; construct = build tuples; last-field = access \n\
     field 3 of each; words/tuple = heap words per tuple\n" n;
  Printf.printf "%-14s %14s %16s %10s\n" "representation" "construct(ms)"
    "last-field(ms)" "words/tuple";
  List.iter
    (fun (name, repr) ->
      let t_build, tuples =
        time (fun () -> List.init n (fun _ -> Tuple.of_sequences repr fields))
      in
      let t_access, _ =
        time (fun () ->
            List.iter (fun t -> ignore (Tuple.field_items t 3)) tuples)
      in
      let words = Obj.reachable_words (Obj.repr tuples) / n in
      Printf.printf "%-14s %14.1f %16.1f %10d\n" name (t_build *. 1000.)
        (t_access *. 1000.) words)
    [ ("stream", Tuple.Stream_repr);
      ("single-token", Tuple.Single_repr);
      ("array", Tuple.Array_repr) ];
  print_endline
    "shape: array has the cheapest field access; the delimited stream is\n\
     the most compact wire form but pays to skip fields (per §5.1)."

(* ------------------------------------------------------------------ *)
(* PP-k sweep (§4.2)                                                   *)

let bench_ppk () =
  banner "PP-k: parameter passing in blocks of k (§4.2, default k = 20)";
  let customers = 400 in
  let latency = 0.0005 (* 0.5 ms per roundtrip *) in
  Printf.printf
    "%d left tuples joined cross-database; %.1f ms simulated latency per \
     roundtrip\n"
    customers (latency *. 1000.);
  let demo =
    Demo.create ~customers ~orders_per_customer:0 ~db_latency:latency ()
  in
  let q =
    "for $c in CUSTOMER(), $x in CREDIT_CARD() where $c/CID eq $x/CID return <R>{$c/CID, $x/NUM}</R>"
  in
  Printf.printf "%6s %12s %12s %12s %14s\n" "k" "roundtrips" "rows" "time(ms)"
    "block memory";
  List.iter
    (fun k ->
      (* knob sweep: cost-based selection off so the swept k is the k used *)
      let options =
        { Optimizer.default_options with
          Optimizer.ppk_k = k;
          cost_based = false }
      in
      let server = Server.create ~optimizer_options:options demo.Demo.registry in
      Demo.reset_stats demo;
      let t, r = time (fun () -> ok_exn (Server.run server q)) in
      record_result "PPk" ~params:[ ("k", string_of_int k) ] t;
      Printf.printf "%6d %12d %12d %12.1f %14s\n" k
        demo.Demo.card_db.Database.stats.Database.statements
        (List.length r) (t *. 1000.)
        (Printf.sprintf "%d tuples" (min k customers)))
    [ 1; 5; 10; 20; 50; 100; 400 ];
  print_endline
    "shape: latency falls ~1/k while the middleware block footprint grows\n\
     with k; the paper's default k=20 sits at the knee of the curve."

(* ------------------------------------------------------------------ *)
(* Scan vs index access paths (backend executor)                       *)

(* The PP-k probe lands on the source as WHERE (CID = ? OR CID = ? ...),
   one statement per block of k left tuples. With the backend index layer
   each statement is k hash-index probes; without it each statement scans
   the whole probe-side table. The sweep holds the query fixed and grows
   the probe side. *)
let bench_scan_vs_index ?(smoke = false) () =
  banner "IDX: scan vs index access paths on the PP-k probe side";
  let customers = 100 in
  let k = 20 in
  let q =
    "for $c in CUSTOMER(), $x in CREDIT_CARD() where $c/CID eq $x/CID return <R>{$c/CID, $x/NUM}</R>"
  in
  Printf.printf
    "%d customers PP-k joined (k=%d) against CREDIT_CARD; the matching rows\n\
     are fixed, the probe side is padded with non-matching cards, and the\n\
     same query runs with access-path selection off (scans) then on (probes)\n"
    customers k;
  Printf.printf "%10s %9s %12s %14s %12s %12s\n" "card rows" "indexes"
    "full scans" "rows scanned" "idx probes" "time(ms)";
  let sweep = if smoke then [ 1_000 ] else [ 1_000; 10_000; 100_000 ] in
  List.iter
    (fun rows ->
      let cards_per_customer = 10 in
      let demo =
        Demo.create ~customers ~orders_per_customer:0 ~cards_per_customer ()
      in
      let card_table =
        ok_exn (Database.find_table demo.Demo.card_db "CREDIT_CARD")
      in
      ok_exn (Table.create_index card_table ~name:"card_cid" [ "CID" ]);
      (* grow the probe side without growing the result: bulk-load cards
         of customers outside the joined range *)
      let pad = rows - (customers * cards_per_customer) in
      let pad_rows =
        List.init (max 0 pad) (fun i ->
            [| Sql_value.Int (1_000_000 + i);
               Sql_value.Str (Printf.sprintf "PAD%06d" i);
               Sql_value.Str "0000-0000-0000";
               Sql_value.Null |])
      in
      ignore (ok_exn (Table.insert_many card_table pad_rows));
      (* pinned k: this sweep isolates the backend access path, not the
         join-method choice, so cost-based selection stays off *)
      let options =
        { Optimizer.default_options with
          Optimizer.ppk_k = k;
          cost_based = false }
      in
      let server =
        Server.create ~optimizer_options:options demo.Demo.registry
      in
      let run_one indexed =
        Database.set_use_indexes demo.Demo.customer_db indexed;
        Database.set_use_indexes demo.Demo.card_db indexed;
        Demo.reset_stats demo;
        let t, r = time (fun () -> ok_exn (Server.run server q)) in
        let st = demo.Demo.card_db.Database.stats in
        if indexed && st.Database.full_scans > 0 then
          failwith "IDX: indexed PP-k probe fell back to a full scan";
        record_result "scan-vs-index"
          ~params:
            [ ("rows", string_of_int rows);
              ("indexes", if indexed then "true" else "false") ]
          t;
        Printf.printf "%10d %9s %12d %14d %12d %12.1f\n" rows
          (if indexed then "on" else "off")
          st.Database.full_scans st.Database.rows_scanned
          st.Database.index_lookups (t *. 1000.);
        (t, List.length r)
      in
      let t_scan, n_scan = run_one false in
      let t_index, n_index = run_one true in
      if n_scan <> n_index then
        failwith "IDX: indexed and scan executions disagree on row count";
      let sstats = Server.stats server in
      let backend = sstats.Server.st_backend in
      Printf.printf
        "%10s speedup: %.1fx   (plan cache %d hits / %d misses; backend: %d \
         probes -> %d rows, %d scans)\n"
        "" (t_scan /. t_index) sstats.Server.st_plan_cache_hits
        sstats.Server.st_plan_cache_misses backend.Database.index_lookups
        backend.Database.index_rows backend.Database.full_scans)
    sweep;
  print_endline
    "shape: scan time grows linearly with the probe side (every block\n\
     statement re-scans it) while the indexed path stays flat; the gap\n\
     widens to orders of magnitude at 100k rows."

(* ------------------------------------------------------------------ *)
(* Cost-based plan selection: chosen vs forced join methods             *)

(* The cost model prices NL vs index-NL vs PP-k from the maintained table
   statistics and each source's latency profile, then picks k and the
   prefetch depth itself. This sweep runs the same cross-database join
   with the model choosing ("chosen", default options) and with each
   classic configuration forced through the knobs: per-tuple parameter
   passing (k=1), the paper-default block size (k=20), and the unindexed
   full-scan baseline. In smoke mode only the 100k point runs, with
   structural assertions — the chosen plan must be PP-k with k in [5, 50]
   probing through the index (zero full scans) — and the chosen plan's
   EXPLAIN is written to EXPLAIN_cost_model_<rows>.txt so CI can upload
   it as an artifact when the assertion trips. *)
let bench_cost_model ?(smoke = false) () =
  banner "CST: cost model — chosen vs forced join methods";
  let customers = 100 in
  let cards_per_customer = 10 in
  let latency = 0.0005 in
  let q =
    "for $c in CUSTOMER(), $x in CREDIT_CARD() where $c/CID eq $x/CID return <R>{$c/CID, $x/NUM}</R>"
  in
  Printf.printf
    "%d customers joined cross-database against CREDIT_CARD padded to the\n\
     sweep size; %.1f ms simulated latency per roundtrip; 'chosen' lets\n\
     the cost model pick method, k and prefetch from the statistics\n"
    customers (latency *. 1000.);
  Printf.printf "%10s %-12s %-34s %10s %10s\n" "card rows" "variant" "method"
    "roundtrips" "time(ms)";
  (* the chosen method as EXPLAIN renders it: the text between "method="
     and its trailing counters, e.g. "pp-k(k=16, prefetch=1, inner=inl)" *)
  let chosen_method explain_text =
    let find_sub s sub from =
      let n = String.length s and m = String.length sub in
      let rec go i =
        if i + m > n then None
        else if String.sub s i m = sub then Some i
        else go (i + 1)
      in
      go from
    in
    match find_sub explain_text "method=" 0 with
    | None -> "(no join)"
    | Some i -> (
      let start = i + String.length "method=" in
      match find_sub explain_text " (est" start with
      | Some stop -> String.sub explain_text start (stop - start)
      | None -> "(unparsed)")
  in
  let ppk_k_of method_ =
    let marker = "pp-k(k=" in
    let n = String.length method_ and m = String.length marker in
    if n > m && String.sub method_ 0 m = marker then
      let rec digits i =
        if i < n && method_.[i] >= '0' && method_.[i] <= '9' then digits (i + 1)
        else i
      in
      int_of_string_opt (String.sub method_ m (digits m - m))
    else None
  in
  let sweep = if smoke then [ 100_000 ] else [ 1_000; 10_000; 100_000 ] in
  List.iter
    (fun rows ->
      let demo =
        Demo.create ~customers ~orders_per_customer:0 ~cards_per_customer
          ~db_latency:latency ()
      in
      let card_table =
        ok_exn (Database.find_table demo.Demo.card_db "CREDIT_CARD")
      in
      ok_exn (Table.create_index card_table ~name:"card_cid" [ "CID" ]);
      let pad = rows - (customers * cards_per_customer) in
      let pad_rows =
        List.init (max 0 pad) (fun i ->
            [| Sql_value.Int (1_000_000 + i);
               Sql_value.Str (Printf.sprintf "PAD%06d" i);
               Sql_value.Str "0000-0000-0000";
               Sql_value.Null |])
      in
      ignore (ok_exn (Table.insert_many card_table pad_rows));
      let run_variant label ~indexed options =
        Database.set_use_indexes demo.Demo.customer_db indexed;
        Database.set_use_indexes demo.Demo.card_db indexed;
        let server =
          Server.create ~optimizer_options:options demo.Demo.registry
        in
        let explain_text = ok_exn (Server.explain ~analyze:false server q) in
        let method_ = chosen_method explain_text in
        (* warm once (compilation out of the timing), then median of 3 *)
        ignore (ok_exn (Server.run server q));
        Demo.reset_stats demo;
        let runs =
          List.init 3 (fun _ -> time (fun () -> ok_exn (Server.run server q)))
        in
        let t, r =
          match List.sort (fun (a, _) (b, _) -> compare a b) runs with
          | [ _; median; _ ] -> median
          | _ -> assert false
        in
        let card_stats = demo.Demo.card_db.Database.stats in
        let roundtrips = card_stats.Database.statements / 3 in
        record_result "cost-model"
          ~params:
            [ ("rows", string_of_int rows);
              ("variant", Printf.sprintf "\"%s\"" label) ]
          t;
        Printf.printf "%10d %-12s %-34s %10d %10.1f\n" rows label method_
          roundtrips (t *. 1000.);
        (t, method_, explain_text, card_stats.Database.full_scans,
         List.length r)
      in
      let forced k = { Optimizer.default_options with ppk_k = k; cost_based = false } in
      let t_chosen, method_, explain_text, full_scans, n_chosen =
        run_variant "chosen" ~indexed:true Optimizer.default_options
      in
      (* the chosen plan's EXPLAIN, for inspection / CI artifact upload *)
      let artifact = Printf.sprintf "EXPLAIN_cost_model_%d.txt" rows in
      let oc = open_out artifact in
      output_string oc explain_text;
      close_out oc;
      (match ppk_k_of method_ with
      | Some k when k >= 5 && k <= 50 -> ()
      | Some k ->
        failwith
          (Printf.sprintf
             "CST: chosen k=%d outside [5, 50] at %d rows (see %s)" k rows
             artifact)
      | None ->
        failwith
          (Printf.sprintf
             "CST: cost model did not choose PP-k at %d rows (method %s, \
              see %s)"
             rows method_ artifact));
      if full_scans > 0 then
        failwith
          (Printf.sprintf
             "CST: chosen plan fell back to %d full scan(s) at %d rows \
              (see %s)"
             full_scans rows artifact);
      let t_k1, _, _, _, n_k1 =
        run_variant "forced k=1" ~indexed:true (forced 1)
      in
      let t_k20, _, _, _, n_k20 =
        run_variant "forced k=20" ~indexed:true (forced 20)
      in
      let t_scan, _, _, _, n_scan =
        run_variant "full scan" ~indexed:false (forced 20)
      in
      Database.set_use_indexes demo.Demo.customer_db true;
      Database.set_use_indexes demo.Demo.card_db true;
      if not (n_chosen = n_k1 && n_k1 = n_k20 && n_k20 = n_scan) then
        failwith "CST: variants disagree on result row count";
      let best = List.fold_left Float.min t_k1 [ t_k20; t_scan ] in
      Printf.printf
        "%10s chosen %.1f ms vs best forced %.1f ms (%.2fx), full-scan \
         baseline %.1f ms\n"
        "" (t_chosen *. 1000.) (best *. 1000.)
        (t_chosen /. best)
        (t_scan *. 1000.);
      if (not smoke) && rows = 100_000 && t_chosen > 1.2 *. best then
        failwith
          (Printf.sprintf
             "CST: chosen plan %.1f ms is more than 20%% off the best \
              forced config %.1f ms at 100k rows"
             (t_chosen *. 1000.) (best *. 1000.)))
    sweep;
  print_endline
    "shape: the model lands at the knee of the PP-k curve (k ~ sqrt of\n\
     latency/row-cost) with the index probe path, within 20% of the best\n\
     hand-forced configuration and orders of magnitude off the scan\n\
     baseline — without any per-query knob tuning."

(* ------------------------------------------------------------------ *)
(* Group-by: pre-clustered streaming vs sort fallback (§4.2, §5.2)      *)

let bench_group_by () =
  banner "Group-by: pre-clustered streaming operator vs sort fallback (§5.2)";
  (* operator-level comparison on identical input: a clause pipeline
     iterating n pre-clustered tuples, grouped with the streaming operator
     (clustered=true) vs the fallback (clustered=false). *)
  let module C = Cexpr in
  let registry = Metadata.create () in
  let rt = Eval.runtime registry in
  let n = 60_000 in
  let groups = 2_000 in
  let input =
    (* items pre-clustered on key: 0,0,0,1,1,1,... *)
    List.init n (fun i -> Item.integer (i / (n / groups)))
  in
  let make clustered =
    C.Flwor
      { clauses =
          [ C.For { var = "x"; source = C.Var "input" };
            C.Group
              { aggs = [ ("x", "xs") ];
                keys = [ (C.Data (C.Var "x"), "k") ];
                clustered } ];
        return_ =
          C.Elem
            { name = Qname.local "G";
              optional = false;
              attrs = [];
              content =
                C.Call { fn = Names.fn "count"; args = [ C.Var "xs" ] } } }
  in
  Printf.printf "%d pre-clustered tuples, %d groups\n" n groups;
  Printf.printf "%-38s %10s %10s\n" "variant" "groups" "time(ms)";
  let measure label plan =
    (* lower outside the timed section: measure execution, not compilation *)
    let ir = Plan_ir.compile registry plan in
    let t, r =
      time (fun () ->
          ok_exn (Eval.execute rt ~bindings:[ ("input", input) ] ir))
    in
    Printf.printf "%-38s %10d %10.1f\n" label (List.length r) (t *. 1000.)
  in
  measure "pre-clustered streaming operator" (make true);
  measure "sort/hash fallback" (make false);
  (* and the streaming operator yields its first group without consuming
     the whole input *)
  print_endline
    "shape: with clustering established by the join order, grouping is a\n\
     single adjacent-key pass — no sort, constant memory (§4.2, §5.2)."

(* ------------------------------------------------------------------ *)
(* SRT: bounded-memory external sort                                    *)

(* ORDER BY over a middleware-resident scan (pushdown off; the [mod]
   sort key is untranslatable anyway), run unbounded then with a 4096-row
   budget. The spilled run must produce byte-identical output while its
   peak resident rows stay within the budget — the unbounded sort holds
   the whole input. Smoke mode runs only the 100k point; the structural
   assertions (byte identity, >= 2 runs spilled, peak resident <= budget)
   hold in every mode. *)
let bench_extsort ?(smoke = false) () =
  banner "SRT: external sort — spill-to-disk vs in-memory (bounded memory)";
  let budget = 4096 in
  let q =
    "for $c in CUSTOMER() order by fn:string-length($c/FIRST_NAME) mod 3, \
     $c/CID descending return <R>{$c/CID}</R>"
  in
  Printf.printf
    "middleware ORDER BY (multi-key, asc/desc), unbounded vs budget %d rows\n"
    budget;
  Printf.printf "%10s %12s %10s %12s %12s %12s\n" "rows" "mode" "runs"
    "spill(KB)" "peak rows" "time(ms)";
  let sweep = if smoke then [ 100_000 ] else [ 10_000; 100_000 ] in
  List.iter
    (fun rows ->
      let make budget_rows =
        Demo.create ~customers:rows ~orders_per_customer:0
          ~cards_per_customer:0
          ~optimizer_options:
            { Optimizer.default_options with
              Optimizer.pushdown = false;
              (* pinned (not defaulted) so ALDSP_SORT_BUDGET in the
                 environment cannot leak into the unbounded baseline *)
              Optimizer.sort_budget_rows = budget_rows }
          ()
      in
      let unbounded = make None in
      let t_mem, expected =
        time (fun () ->
            Server.serialize_result unbounded.Demo.server
              (ok_exn (Server.run unbounded.Demo.server q)))
      in
      let st_mem = Server.stats unbounded.Demo.server in
      if st_mem.Server.st_spill_runs <> 0 then
        failwith "SRT: the unbounded sort spilled";
      record_result "extsort"
        ~params:
          [ ("rows", string_of_int rows);
            ("mode", "\"unbounded\"");
            ("spill_runs", "0");
            ("spill_bytes", "0");
            ("peak_resident_rows", string_of_int rows) ]
        t_mem;
      Printf.printf "%10d %12s %10d %12d %12d %12.1f\n" rows "unbounded" 0 0
        rows (t_mem *. 1000.);
      let spilled = make (Some budget) in
      let t_spill, got =
        time (fun () ->
            Server.serialize_result spilled.Demo.server
              (ok_exn (Server.run spilled.Demo.server q)))
      in
      let st = Server.stats spilled.Demo.server in
      if not (String.equal expected got) then
        failwith
          (Printf.sprintf "SRT: spilled output diverged at %d rows" rows);
      if st.Server.st_spill_runs < 2 then
        failwith
          (Printf.sprintf "SRT: expected >= 2 spilled runs, saw %d"
             st.Server.st_spill_runs);
      if st.Server.st_spill_peak_resident > budget then
        failwith
          (Printf.sprintf
             "SRT: peak resident rows %d exceeded the %d-row budget"
             st.Server.st_spill_peak_resident budget);
      record_result "extsort"
        ~params:
          [ ("rows", string_of_int rows);
            ("mode", "\"spilled\"");
            ("spill_runs", string_of_int st.Server.st_spill_runs);
            ("spill_bytes", string_of_int st.Server.st_spill_bytes);
            ("peak_resident_rows",
             string_of_int st.Server.st_spill_peak_resident) ]
        t_spill;
      Printf.printf "%10d %12s %10d %12d %12d %12.1f\n" rows "spilled"
        st.Server.st_spill_runs
        (st.Server.st_spill_bytes / 1024)
        st.Server.st_spill_peak_resident (t_spill *. 1000.))
    sweep;
  print_endline
    "shape: identical bytes either way; the spilled sort trades a modest\n\
     constant factor (Marshal framing + one disk round trip per row) for\n\
     peak resident rows bounded by the budget instead of the input."

(* ------------------------------------------------------------------ *)
(* Async (§5.4)                                                        *)

let bench_async () =
  banner "fn-bea:async: overlapping independent source calls (§5.4)";
  let latency = 0.03 in
  let demo = Demo.create ~customers:1 ~service_latency:latency () in
  let rating name ssn =
    Printf.sprintf
      "fn:data(getRating(<getRating><lName>{\"%s\"}</lName><ssn>{\"%s\"}</ssn></getRating>)/getRatingResult)"
      name ssn
  in
  let parts =
    [ rating "a" "1"; rating "b" "2"; rating "c" "3"; rating "d" "4" ]
  in
  let sync_q = Printf.sprintf "<R>{%s}</R>" (String.concat ", " parts) in
  let async_q =
    Printf.sprintf "<R>{%s}</R>"
      (String.concat ", "
         (List.map (fun p -> Printf.sprintf "fn-bea:async(%s)" p) parts))
  in
  let t_sync, _ = time (fun () -> run demo sync_q) in
  let t_async, _ = time (fun () -> run demo async_q) in
  record_result "ASY" ~params:[ ("variant", "\"sequential\"") ] t_sync;
  record_result "ASY" ~params:[ ("variant", "\"async\"") ] t_async;
  Printf.printf "4 independent calls, %.0f ms each:\n" (latency *. 1000.);
  Printf.printf "  sequential : %6.1f ms (~ 4 x latency)\n" (t_sync *. 1000.);
  Printf.printf "  async      : %6.1f ms (~ 1 x latency)\n" (t_async *. 1000.);
  Printf.printf "  speedup    : %6.2fx\n" (t_sync /. t_async)

(* ------------------------------------------------------------------ *)
(* Asynchronous source orchestration: pool size x PP-k prefetch depth   *)
(* x source latency (§4.2 + §6 asynchronous adaptors)                   *)

let bench_async_orchestration () =
  banner
    "Async orchestration: worker pool x PP-k prefetch depth x latency";
  let customers = 400 in
  let k = 5 in
  let q =
    "for $c in CUSTOMER(), $x in CREDIT_CARD() where $c/CID eq $x/CID return <R>{$c/CID, $x/NUM}</R>"
  in
  Printf.printf
    "PP-k join (k = %d, %d block roundtrips) over %d left tuples; prefetch\n\
     keeps depth+1 block queries in flight on the pool while the\n\
     middleware join runs\n"
    k (customers / k) customers;
  (* sweep pool sizes up to what the machine actually has rather than a
     fixed ladder: 1 (the overlap-free baseline), 2, half the cores, and
     the full core count *)
  let cores = Domain.recommended_domain_count () in
  let pool_sizes = List.sort_uniq compare [ 1; 2; max 1 (cores / 2); cores ] in
  Printf.printf "pool sizes swept: %s (machine has %d cores)\n"
    (String.concat ", " (List.map string_of_int pool_sizes))
    cores;
  Printf.printf "%12s %6s %10s %10s %12s %10s %10s\n" "latency(ms)" "pool"
    "prefetch" "time(ms)" "roundtrips" "overlap" "speedup";
  List.iter
    (fun latency ->
      let demo =
        Demo.create ~customers ~orders_per_customer:0 ~db_latency:latency ()
      in
      let baseline_ms = ref 0. in
      let baseline_out = ref "" in
      List.iter
        (fun workers ->
          let pool = Pool.create ~workers () in
          List.iter
            (fun prefetch ->
              let options =
                { Optimizer.default_options with
                  Optimizer.ppk_k = k;
                  Optimizer.ppk_prefetch = prefetch;
                  cost_based = false }
              in
              let obs = Observed.create () in
              let server =
                Server.create ~optimizer_options:options ~pool ~observed:obs
                  demo.Demo.registry
              in
              (* warm once so compilation is out of the timing, then take
                 the median of 3 execution-only runs *)
              ignore (ok_exn (Server.run server q));
              Demo.reset_stats demo;
              let runs =
                List.init 3 (fun _ ->
                    time (fun () -> ok_exn (Server.run server q)))
              in
              let t, r =
                match List.sort (fun (a, _) (b, _) -> compare a b) runs with
                | [ _; median; _ ] -> median
                | _ -> assert false
              in
              let stats = Server.stats server in
              if workers = 1 && prefetch = 0 then begin
                baseline_ms := t;
                baseline_out := Item.serialize r
              end
              else if Item.serialize r <> !baseline_out then
                failwith "async orchestration: result differs from baseline!";
              let speedup = !baseline_ms /. t in
              record_result "PPk-pipeline"
                ~params:
                  [ ("latency_ms", Printf.sprintf "%g" (latency *. 1000.));
                    ("pool", string_of_int workers);
                    ("prefetch", string_of_int prefetch);
                    ("roundtrips", string_of_int stats.Server.st_roundtrips);
                    ("speedup", Printf.sprintf "%.2f" speedup) ]
                t;
              Printf.printf "%12.1f %6d %10d %10.1f %12d %9.1fms %9.2fx\n"
                (latency *. 1000.) workers prefetch (t *. 1000.)
                stats.Server.st_roundtrips
                (stats.Server.st_overlap_saved *. 1000.)
                speedup)
            [ 0; 1; 2; 4 ])
        pool_sizes)
    [ 0.0005; 0.002 ];
  print_endline
    "shape: identical results at every depth and pool size (blocks are\n\
     emitted in submission order); with prefetch >= 1 the block roundtrips\n\
     overlap the middleware join and each other, so the latency column of\n\
     the PP-k sweep is paid ~once per depth+1 blocks."

(* ------------------------------------------------------------------ *)
(* Concurrent serving layer (§5.4): client sweep through admission      *)

(* N client sessions hammer one shared server through Server.submit with
   a generous per-query deadline. The workload is the PP-k cross-database
   join whose cost is dominated by simulated source latency, so with
   [max_concurrent] executing slots the roundtrip sleeps of concurrent
   queries overlap and throughput scales until the slots saturate.
   Latency percentiles for every sweep point are written to
   CCX_latency.json. Assertions: every answer byte-identical, zero
   rejections, zero deadline aborts (the deadline is generous), balanced
   admission counters, and throughput monotone 1 -> 4 clients (smoke) /
   > 2x at 16 clients vs 1 (full run). *)
let bench_concurrent_serving ?(smoke = false) () =
  banner "CCX: concurrent serving layer — admission-controlled client sweep";
  let customers = 200 in
  let latency = 0.002 in
  let k = 5 in
  let q =
    "for $c in CUSTOMER(), $x in CREDIT_CARD() where $c/CID eq $x/CID return <R>{$c/CID, $x/NUM}</R>"
  in
  let demo =
    Demo.create ~customers ~orders_per_customer:0 ~db_latency:latency ()
  in
  let options =
    { Optimizer.default_options with Optimizer.ppk_k = k; cost_based = false }
  in
  let max_concurrent = 16 in
  let sweep = if smoke then [ 1; 4 ] else [ 1; 4; 16; 64 ] in
  let per_client = if smoke then 3 else 5 in
  Printf.printf
    "PP-k join (k=%d) over %d left tuples, %.1f ms per block roundtrip;\n\
     %d executing slots, %d queries per client, 60 s deadline per query\n"
    k customers (latency *. 1000.) max_concurrent per_client;
  Printf.printf "%8s %10s %12s %10s %10s %10s %12s\n" "clients" "queries"
    "wall(ms)" "qps" "p50(ms)" "p95(ms)" "p99(ms)";
  let percentile sorted p =
    let n = Array.length sorted in
    sorted.(min (n - 1) (int_of_float (ceil (p /. 100. *. float_of_int n)) - 1))
  in
  let qps = Hashtbl.create 4 in
  let json_lines = ref [] in
  let expected = ref "" in
  List.iter
    (fun clients ->
      let server =
        Server.create ~optimizer_options:options ~max_concurrent
          ~admission_queue:128 demo.Demo.registry
      in
      (* warm: compilation out of the timing, and the canonical answer *)
      expected := Item.serialize (ok_exn (Server.run server q));
      let total = clients * per_client in
      let lats = Array.make total 0. in
      let failures = ref [] in
      let fail_lock = Mutex.create () in
      let worker cid () =
        let ses = Server.session server ~deadline:60.0 () in
        for j = 0 to per_client - 1 do
          let tq0 = Unix.gettimeofday () in
          (match Server.session_run ses q with
          | Ok items when Item.serialize items = !expected -> ()
          | Ok _ ->
            Mutex.lock fail_lock;
            failures := "result bytes diverged" :: !failures;
            Mutex.unlock fail_lock
          | Error e ->
            Mutex.lock fail_lock;
            failures := Server.submit_error_to_string e :: !failures;
            Mutex.unlock fail_lock);
          lats.((cid * per_client) + j) <- Unix.gettimeofday () -. tq0
        done
      in
      let wall, () =
        time (fun () ->
            let ts =
              List.init clients (fun cid -> Thread.create (worker cid) ())
            in
            List.iter Thread.join ts)
      in
      (match !failures with
      | [] -> ()
      | msg :: _ ->
        failwith (Printf.sprintf "CCX: %d clients: %s" clients msg));
      let adm = Server.admission_stats server in
      if adm.Server.ad_deadline_aborts <> 0 then
        failwith
          (Printf.sprintf
             "CCX: %d deadline aborts under a generous 60 s deadline"
             adm.Server.ad_deadline_aborts);
      if adm.Server.ad_rejected <> 0 then
        failwith
          (Printf.sprintf "CCX: %d queries rejected Overloaded"
             adm.Server.ad_rejected);
      if adm.Server.ad_submitted <> total || adm.Server.ad_completed <> total
         || adm.Server.ad_active <> 0 || adm.Server.ad_queued <> 0 then
        failwith "CCX: admission counters do not balance after the run";
      Array.sort compare lats;
      let throughput = float_of_int total /. wall in
      let p50 = percentile lats 50. and p95 = percentile lats 95. in
      let p99 = percentile lats 99. in
      Hashtbl.replace qps clients throughput;
      record_result "CCX"
        ~params:
          [ ("clients", string_of_int clients);
            ("qps", Printf.sprintf "%.1f" throughput);
            ("p95_ms", Printf.sprintf "%.2f" (p95 *. 1000.)) ]
        wall;
      json_lines :=
        Printf.sprintf
          "{\"clients\": %d, \"queries\": %d, \"wall_ms\": %.3f, \"qps\": \
           %.2f, \"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f, \
           \"peak_active\": %d, \"peak_queued\": %d}"
          clients total (wall *. 1000.) throughput (p50 *. 1000.)
          (p95 *. 1000.) (p99 *. 1000.) adm.Server.ad_peak_active
          adm.Server.ad_peak_queued
        :: !json_lines;
      Printf.printf "%8d %10d %12.1f %10.1f %10.1f %10.1f %12.1f\n" clients
        total (wall *. 1000.) throughput (p50 *. 1000.) (p95 *. 1000.)
        (p99 *. 1000.))
    sweep;
  let oc = open_out "CCX_latency.json" in
  output_string oc
    ("[\n  " ^ String.concat ",\n  " (List.rev !json_lines) ^ "\n]\n");
  close_out oc;
  print_endline "latency percentiles written to CCX_latency.json";
  let q1 = Hashtbl.find qps 1 and q4 = Hashtbl.find qps 4 in
  if q4 <= q1 then
    failwith
      (Printf.sprintf
         "CCX: throughput not monotone 1 -> 4 clients (%.1f -> %.1f qps)" q1
         q4);
  if not smoke then begin
    let q16 = Hashtbl.find qps 16 in
    if q16 <= 2. *. q1 then
      failwith
        (Printf.sprintf
           "CCX: 16 clients reached only %.1f qps vs %.1f at 1 client \
            (need > 2x)"
           q16 q1);
    Printf.printf "scaling: %.1fx at 4 clients, %.1fx at 16 clients\n"
      (q4 /. q1) (q16 /. q1)
  end
  else Printf.printf "scaling: %.1fx at 4 clients\n" (q4 /. q1);
  print_endline
    "shape: queries spend their time inside source roundtrips, so the\n\
     serving layer overlaps them across sessions; throughput climbs with\n\
     clients until the executing slots saturate, then queueing shows up\n\
     as p95/p99 latency instead of lost work."

(* ------------------------------------------------------------------ *)
(* Cross-session work sharing (tentpole): single-flight coalescing +    *)
(* batched backend dispatch                                             *)

let find_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go 0

let json_float_field line key =
  match find_substring line (Printf.sprintf "\"%s\": " key) with
  | None -> None
  | Some i ->
    let start = i + String.length key + 4 in
    let n = String.length line in
    let stop = ref start in
    while
      !stop < n
      && (match line.[!stop] with '0' .. '9' | '.' | '-' -> true | _ -> false)
    do
      incr stop
    done;
    float_of_string_opt (String.sub line start (!stop - start))

(* The p99 of a given client count recorded in a CCX_latency.json file —
   used to guard the shared run against the serving-layer baseline the
   previous change committed. *)
let ccx_baseline_p99 path ~clients =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in path in
    let needle = Printf.sprintf "\"clients\": %d," clients in
    let found = ref None in
    (try
       while true do
         let line = input_line ic in
         if !found = None && find_substring line needle <> None then
           found := json_float_field line "p99_ms"
       done
     with End_of_file -> ());
    close_in ic;
    !found
  end

(* N clients replay an overlapping query mix — the same cross-database
   PP-k join plus single-key customer probes — through Server.submit,
   once with work sharing off and once with it on. The join's block
   statements are byte-identical across sessions, so concurrent sessions
   convoy on one single-flight execution per block; the probes differ
   only in the key, so the accumulation window merges them into one
   IN-list-style roundtrip. Sharing must be invisible in result bytes
   and visible in the counters: dedup_roundtrips_saved = coalesced_hits
   + batch_merges at quiescence, backend roundtrips sublinear in
   clients, and >= 2x throughput at 64 clients (the engine work a
   follower skips is serialized on the runtime lock, so saved roundtrips
   are saved wall time). Per-sweep-point numbers land in
   CCX_shared.json. *)
let bench_shared_workload ?(smoke = false) ?baseline_p99_ms () =
  banner "CCS: cross-session work sharing — coalescing + batched dispatch";
  let customers = 60 in
  let latency = 0.0002 in
  let join_q =
    "for $c in CUSTOMER(), $x in CREDIT_CARD() where $c/CID eq $x/CID return <R>{$c/CID, $x/NUM}</R>"
  in
  let probe_q i =
    Printf.sprintf
      "for $c in CUSTOMER() where $c/CID eq \"CUST%04d\" return <P>{$c/CID, $c/FIRST_NAME}</P>"
      ((i mod 32) + 1)
  in
  let demo =
    Demo.create ~customers ~orders_per_customer:0 ~cards_per_customer:1
      ~db_latency:latency ()
  in
  (* pad the probe side so every PP-k block statement carries real engine
     work: what a coalesced follower skips is CPU, not just a sleep *)
  let card_table =
    ok_exn (Database.find_table demo.Demo.card_db "CREDIT_CARD")
  in
  let pad = 12_000 in
  let pad_rows =
    List.init pad (fun i ->
        [| Sql_value.Int (1_000_000 + i);
           Sql_value.Str (Printf.sprintf "PAD%06d" i);
           Sql_value.Str "0000-0000-0000";
           Sql_value.Null |])
  in
  ignore (ok_exn (Table.insert_many card_table pad_rows));
  let options =
    { Optimizer.default_options with Optimizer.ppk_k = 20; cost_based = false }
  in
  let max_concurrent = 32 in
  let sweep = if smoke then [ 64 ] else [ 1; 8; 64 ] in
  let per_client = if smoke then 2 else 4 in
  let query_for cid j = if j mod 2 = 0 then join_q else probe_q (cid + j) in
  Printf.printf
    "PP-k join (k=20, %d-row padded probe side) + single-key probes;\n\
     %.1f ms per roundtrip, %d executing slots, %d queries per client;\n\
     every sweep point runs sharing OFF then ON over the same data\n"
    (pad + customers) (latency *. 1000.) max_concurrent per_client;
  (* canonical bytes per distinct query: serial, sharing off, same options *)
  let expected : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let warm_server =
    Server.create ~optimizer_options:options demo.Demo.registry
  in
  List.iter
    (fun clients ->
      for cid = 0 to clients - 1 do
        for j = 0 to per_client - 1 do
          let q = query_for cid j in
          if not (Hashtbl.mem expected q) then
            Hashtbl.replace expected q
              (Item.serialize (ok_exn (Server.run warm_server q)))
        done
      done)
    sweep;
  let percentile sorted p =
    let n = Array.length sorted in
    sorted.(min (n - 1) (int_of_float (ceil (p /. 100. *. float_of_int n)) - 1))
  in
  Printf.printf "%8s %8s %12s %10s %10s %12s %10s %8s %12s\n" "clients"
    "sharing" "wall(ms)" "qps" "p99(ms)" "roundtrips" "coalesced" "merges"
    "saved";
  let results = Hashtbl.create 8 in
  let json_lines = ref [] in
  List.iter
    (fun clients ->
      let one shared =
        let server =
          Server.create ~optimizer_options:options ~max_concurrent
            ~admission_queue:256 demo.Demo.registry
        in
        (* plan cache warm (serial, so no sharing counters move) *)
        Hashtbl.iter
          (fun q _ -> ignore (ok_exn (Server.run server q)))
          expected;
        Server.set_work_sharing server shared;
        Demo.reset_stats demo;
        let total = clients * per_client in
        let lats = Array.make total 0. in
        let failures = ref [] and fail_lock = Mutex.create () in
        let worker cid () =
          let ses = Server.session server ~deadline:120.0 () in
          for j = 0 to per_client - 1 do
            let q = query_for cid j in
            let t0 = Unix.gettimeofday () in
            (match Server.session_run ses q with
            | Ok items
              when String.equal (Item.serialize items) (Hashtbl.find expected q)
              -> ()
            | Ok _ ->
              Mutex.lock fail_lock;
              failures :=
                Printf.sprintf "client %d query %d: result bytes diverged" cid j
                :: !failures;
              Mutex.unlock fail_lock
            | Error e ->
              Mutex.lock fail_lock;
              failures := Server.submit_error_to_string e :: !failures;
              Mutex.unlock fail_lock);
            lats.((cid * per_client) + j) <- Unix.gettimeofday () -. t0
          done
        in
        let wall, () =
          time (fun () ->
              let ts =
                List.init clients (fun cid -> Thread.create (worker cid) ())
              in
              List.iter Thread.join ts)
        in
        let st = Server.stats server in
        let adm = Server.admission_stats server in
        Server.set_work_sharing server false;
        (match !failures with
        | [] -> ()
        | msg :: _ ->
          failwith
            (Printf.sprintf "CCS: %d clients%s: %s" clients
               (if shared then " [shared]" else "")
               msg));
        if
          adm.Server.ad_completed <> total || adm.Server.ad_active <> 0
          || adm.Server.ad_queued <> 0 || adm.Server.ad_rejected <> 0
        then failwith "CCS: admission counters do not balance after the run";
        if
          st.Server.st_dedup_roundtrips_saved
          <> st.Server.st_coalesced_hits + st.Server.st_batch_merges
        then
          failwith
            (Printf.sprintf
               "CCS: sharing counters do not balance: saved=%d coalesced=%d \
                merges=%d"
               st.Server.st_dedup_roundtrips_saved st.Server.st_coalesced_hits
               st.Server.st_batch_merges);
        if (not shared) && st.Server.st_dedup_roundtrips_saved <> 0 then
          failwith "CCS: roundtrips saved with sharing disabled";
        Array.sort compare lats;
        let qps = float_of_int total /. wall in
        let p99 = percentile lats 99. *. 1000. in
        let roundtrips = st.Server.st_backend.Database.statements in
        record_result "CCS"
          ~params:
            [ ("clients", string_of_int clients);
              ("shared", if shared then "true" else "false");
              ("qps", Printf.sprintf "%.1f" qps);
              ("saved", string_of_int st.Server.st_dedup_roundtrips_saved) ]
          wall;
        Printf.printf "%8d %8s %12.1f %10.1f %10.1f %12d %10d %8d %12d\n"
          clients
          (if shared then "on" else "off")
          (wall *. 1000.) qps p99 roundtrips st.Server.st_coalesced_hits
          st.Server.st_batch_merges st.Server.st_dedup_roundtrips_saved;
        Hashtbl.replace results (clients, shared) (qps, p99, roundtrips, st)
      in
      one false;
      one true;
      let (qps_off, p99_off, rt_off, _) = Hashtbl.find results (clients, false) in
      let (qps_on, p99_on, rt_on, st) = Hashtbl.find results (clients, true) in
      json_lines :=
        Printf.sprintf
          "{\"clients\": %d, \"qps_unshared\": %.2f, \"qps_shared\": %.2f, \
           \"p99_unshared_ms\": %.3f, \"p99_shared_ms\": %.3f, \
           \"roundtrips_unshared\": %d, \"roundtrips_shared\": %d, \
           \"coalesced_hits\": %d, \"batch_merges\": %d, \
           \"dedup_roundtrips_saved\": %d}"
          clients qps_off qps_on p99_off p99_on rt_off rt_on
          st.Server.st_coalesced_hits st.Server.st_batch_merges
          st.Server.st_dedup_roundtrips_saved
        :: !json_lines)
    sweep;
  let oc = open_out "CCX_shared.json" in
  output_string oc
    ("[\n  " ^ String.concat ",\n  " (List.rev !json_lines) ^ "\n]\n");
  close_out oc;
  print_endline "work-sharing sweep written to CCX_shared.json";
  let top = List.fold_left max 1 sweep in
  let (qps_off, _, rt_off, _) = Hashtbl.find results (top, false) in
  let (qps_on, p99_on, rt_on, st_top) = Hashtbl.find results (top, true) in
  if st_top.Server.st_dedup_roundtrips_saved <= 0 then
    failwith
      (Printf.sprintf
         "CCS: no roundtrips saved at %d clients with sharing on" top);
  if st_top.Server.st_coalesced_hits <= 0 then
    failwith
      (Printf.sprintf "CCS: no coalesced statements at %d clients" top);
  if rt_on >= rt_off then
    failwith
      (Printf.sprintf
         "CCS: sharing did not reduce backend roundtrips at %d clients (%d \
          -> %d)"
         top rt_off rt_on);
  if top >= 64 && qps_on < 2. *. qps_off then
    failwith
      (Printf.sprintf
         "CCS: %d clients reached only %.1f qps shared vs %.1f unshared \
          (need >= 2x)"
         top qps_on qps_off);
  Printf.printf "sharing speedup at %d clients: %.1fx (%.1f -> %.1f qps)\n" top
    (qps_on /. qps_off) qps_off qps_on;
  if not smoke then begin
    (* roundtrips sublinear in clients: 64 clients of shared traffic must
       cost well under 64x one client's roundtrips *)
    let (_, _, rt_one, _) = Hashtbl.find results (1, true) in
    if 2 * rt_on >= 64 * rt_one then
      failwith
        (Printf.sprintf
           "CCS: shared roundtrips not sublinear: %d at 64 clients vs %d at 1"
           rt_on rt_one);
    let (_, _, _, st1) = Hashtbl.find results (64, true) in
    if st1.Server.st_batch_merges <= 0 then
      failwith "CCS: no batched probe merges at 64 clients"
  end;
  (* tail-latency guard against the committed serving-layer baseline: the
     sharing machinery must not wedge the 64-client p99 *)
  (match baseline_p99_ms with
  | Some base when top >= 64 ->
    Printf.printf "p99 at %d clients: %.1f ms shared vs %.1f ms baseline\n"
      top p99_on base;
    if p99_on > 1.5 *. base then
      failwith
        (Printf.sprintf
           "CCS: shared p99 %.1f ms regressed past 1.5x the serving-layer \
            baseline %.1f ms"
           p99_on base)
  | _ -> print_endline "p99 baseline unavailable; regression guard skipped");
  print_endline
    "shape: concurrent identical block statements convoy on one execution\n\
     (single-flight) and near-simultaneous single-key probes merge into\n\
     one accumulated roundtrip; answers stay byte-identical while the\n\
     backend sees sublinear traffic."

(* ------------------------------------------------------------------ *)
(* STRM: streamed delivery — time-to-first-token and peak live tokens  *)

(* The same pushed select-project runs twice per sweep point: through the
   materialized path (Server.run + serialize — the first byte is
   deliverable only when the last one is, and the whole token stream is
   live at once) and through the streamed path (session_run_stream:
   backend cursor -> operator stream -> bounded SPSC handoff — the first
   token arrives while the backend result is still draining and at most
   [buffer] tokens are ever live between producer and consumer). Both
   runs must produce byte-identical output. In smoke mode only the
   100k-row point runs, with the structural assertions: streamed TTFT
   under 20% of the streamed end-to-end wall, and peak buffered tokens
   within the queue capacity. *)
let bench_streaming ?(smoke = false) () =
  banner "STRM: streamed vs materialized delivery";
  let q =
    "for $c in CUSTOMER() where $c/SINCE ge 1900 return <R>{$c/CID}{$c/LAST_NAME}</R>"
  in
  let buffer = 64 in
  Printf.printf
    "pushed select-project over CUSTOMER, delivered materialized (run +\n\
     serialize) then streamed (cursor -> SPSC queue, capacity %d); TTFT is\n\
     the wall time to the first delivered token\n"
    buffer;
  Printf.printf "%10s %14s %12s %10s %12s %12s\n" "rows" "mode" "ttft(ms)"
    "ttft/wall" "live tokens" "time(ms)";
  let sweep = if smoke then [ 100_000 ] else [ 1_000; 10_000; 100_000 ] in
  List.iter
    (fun rows ->
      let demo = Demo.create ~customers:rows ~orders_per_customer:0 () in
      let server = demo.Demo.server in
      (* materialized: TTFT is the full wall — nothing is deliverable
         before the result set is complete *)
      let t0 = Unix.gettimeofday () in
      let items = ok_exn (Server.run server q) in
      let expected = Server.serialize_result server items in
      let t_mat = Unix.gettimeofday () -. t0 in
      let live_mat = Token_stream.length (Token_stream.of_sequence items) in
      record_result "streaming"
        ~params:
          [ ("rows", string_of_int rows);
            ("mode", "\"materialized\"");
            ("ttft_ms", Printf.sprintf "%.3f" (t_mat *. 1000.));
            ("peak_live_tokens", string_of_int live_mat) ]
        t_mat;
      Printf.printf "%10d %14s %12.1f %10s %12d %12.1f\n" rows "materialized"
        (t_mat *. 1000.) "1.00" live_mat (t_mat *. 1000.);
      (* streamed *)
      let ses = Server.session server () in
      let t0 = Unix.gettimeofday () in
      match Server.session_run_stream ses ~buffer q with
      | Error e -> failwith (Server.submit_error_to_string e)
      | Ok stream ->
        let ttft = ref 0. in
        let tokens = ref [] in
        let rec drain () =
          match Server.stream_read stream with
          | Ok (Some tok) ->
            if !ttft = 0. then ttft := Unix.gettimeofday () -. t0;
            tokens := tok :: !tokens;
            drain ()
          | Ok None -> ()
          | Error e -> failwith (Server.submit_error_to_string e)
        in
        drain ();
        let t_stream = Unix.gettimeofday () -. t0 in
        let peak = Server.stream_peak_buffered stream in
        let buf = Buffer.create (String.length expected) in
        Token_stream.serialize_to buf (List.to_seq (List.rev !tokens));
        if not (String.equal expected (Buffer.contents buf)) then
          failwith "STRM: streamed delivery diverged from materialized";
        if peak > buffer then
          failwith
            (Printf.sprintf
               "STRM: peak buffered tokens %d exceeded queue capacity %d" peak
               buffer);
        let frac = !ttft /. t_stream in
        record_result "streaming"
          ~params:
            [ ("rows", string_of_int rows);
              ("mode", "\"streamed\"");
              ("ttft_ms", Printf.sprintf "%.3f" (!ttft *. 1000.));
              ("peak_live_tokens", string_of_int peak) ]
          t_stream;
        Printf.printf "%10d %14s %12.1f %10.2f %12d %12.1f\n" rows "streamed"
          (!ttft *. 1000.) frac peak (t_stream *. 1000.);
        if rows = 100_000 && frac >= 0.2 then
          failwith
            (Printf.sprintf
               "STRM: first token at %.0f%% of the streamed wall — the 100k \
                scan is not streaming"
               (frac *. 100.)))
    sweep;
  print_endline
    "shape: materialized TTFT grows with the result (delivery starts after\n\
     the last row) while streamed TTFT stays flat — the first token costs\n\
     one backend chunk — and peak live tokens drop from the whole result\n\
     to the queue capacity."

(* ------------------------------------------------------------------ *)
(* Function cache (§5.5)                                               *)

let bench_function_cache () =
  banner "Function cache: slow service call -> single-row lookup (§5.5)";
  let cache = Function_cache.create (Database.create "CacheDB") in
  let demo =
    Demo.create ~customers:2 ~service_latency:0.03 ~function_cache:cache ()
  in
  let name = Qname.make ~uri:"fn" "getProfileByID" in
  Metadata.set_cacheable demo.Demo.registry name true;
  Function_cache.enable cache name ~ttl_seconds:600.;
  let call () =
    ok_exn (Server.call demo.Demo.server name [ [ Item.string "CUST0001" ] ])
  in
  let t_miss, _ = time call in
  let hit_samples = List.init 20 (fun _ -> fst (time call)) in
  let t_hit =
    List.fold_left ( +. ) 0. hit_samples
    /. float_of_int (List.length hit_samples)
  in
  record_result "CCH" ~params:[ ("variant", "\"miss\"") ] t_miss;
  record_result "CCH" ~params:[ ("variant", "\"hit\"") ] t_hit;
  Printf.printf "  miss (computes, calls services) : %7.2f ms\n"
    (t_miss *. 1000.);
  Printf.printf "  hit  (one cache-table SELECT)   : %7.3f ms (avg of 20)\n"
    (t_hit *. 1000.);
  Printf.printf "  cache stats: %d hits / %d misses\n"
    (Function_cache.hits cache) (Function_cache.misses cache);
  print_endline
    "shape: a high-latency data service call becomes a single-row database\n\
     lookup; entries are shared across users because filtering runs after\n\
     the cache (§7)."

(* ------------------------------------------------------------------ *)
(* Timeout / fail-over (§5.6)                                          *)

let bench_failover () =
  banner "fn-bea:timeout / fail-over on slow and unavailable sources (§5.6)";
  let demo = Demo.create ~customers:1 () in
  let rating =
    "fn:data(getRating(<getRating><lName>{\"x\"}</lName><ssn>{\"9\"}</ssn></getRating>)/getRatingResult)"
  in
  Printf.printf "%-42s %10s %16s\n" "scenario" "time(ms)" "result";
  let scenario label q =
    let t, r = time (fun () -> run demo q) in
    Printf.printf "%-42s %10.1f %16s\n" label (t *. 1000.) (Item.serialize r)
  in
  demo.Demo.rating_service.Web_service.latency <- 0.002;
  scenario "healthy source, timeout 100ms"
    (Printf.sprintf "fn-bea:timeout(%s, 100, -1)" rating);
  demo.Demo.rating_service.Web_service.latency <- 0.25;
  scenario "slow source (250ms), timeout 25ms"
    (Printf.sprintf "fn-bea:timeout(%s, 25, -1)" rating);
  demo.Demo.rating_service.Web_service.latency <- 0.0;
  Web_service.set_unavailable demo.Demo.rating_service true;
  scenario "unavailable source, fail-over alternate"
    (Printf.sprintf "fn-bea:fail-over(%s, -1)" rating);
  scenario "unavailable source, () partial result"
    (Printf.sprintf "<P>{fn-bea:fail-over(%s, ())}</P>" rating);
  Web_service.set_unavailable demo.Demo.rating_service false;
  print_endline
    "shape: an incomplete-but-fast result is available at the deadline\n\
     regardless of source health."

(* ------------------------------------------------------------------ *)
(* View unfolding + source-access elimination (§4.2)                   *)

let bench_view_unfolding () =
  banner "View unfolding and source-access elimination (§4.2)";
  let customers = 50 in
  let q = "for $p in getProfile() return $p/LAST_NAME" in
  Printf.printf
    "query: %s\n(the view also integrates orders, cards and the rating \
     service)\n" q;
  Printf.printf "%-26s %12s %12s %12s %10s\n" "optimizer" "CustomerDB"
    "CardDB" "rating WS" "time(ms)";
  let variant label options =
    let demo = Demo.create ~customers ~orders_per_customer:2 () in
    let server = Server.create ?optimizer_options:options demo.Demo.registry in
    Demo.reset_stats demo;
    let t, _ = time (fun () -> ok_exn (Server.run server q)) in
    Printf.printf "%-26s %12d %12d %12d %10.1f\n" label
      demo.Demo.customer_db.Database.stats.Database.statements
      demo.Demo.card_db.Database.stats.Database.statements
      demo.Demo.rating_service.Web_service.stats.Web_service.calls
      (t *. 1000.)
  in
  variant "unfold + eliminate (on)" None;
  variant "elimination disabled"
    (Some
       { Optimizer.default_options with
         Optimizer.eliminate_constructors = false });
  print_endline
    "shape: with elimination on, unused branches of the view are never\n\
     computed — the rating service is not called at all."

(* ------------------------------------------------------------------ *)
(* Plan cache + view-plan cache (§2.2, §4.2)                           *)

let bench_plan_cache () =
  banner "Plan cache and view sub-optimizer cache (§2.2, §4.2)";
  let demo = Demo.create ~customers:5 () in
  let q =
    "for $p in getProfile() where $p/LAST_NAME eq \"Jones\" return $p/CID"
  in
  let t_first, _ = time (fun () -> ok_exn (Server.run demo.Demo.server q)) in
  let t_cached, _ = time (fun () -> ok_exn (Server.run demo.Demo.server q)) in
  record_result "PLC" ~params:[ ("variant", "\"first\"") ] t_first;
  record_result "PLC" ~params:[ ("variant", "\"cached\"") ] t_cached;
  Printf.printf "same query text twice:\n";
  Printf.printf "  first run (compile + execute): %7.2f ms\n"
    (t_first *. 1000.);
  Printf.printf "  second run (plan cache hit)  : %7.2f ms\n"
    (t_cached *. 1000.);
  Printf.printf "  plan cache: %d hits / %d misses\n"
    (Server.plan_cache_hits demo.Demo.server)
    (Server.plan_cache_misses demo.Demo.server);
  let opt = Server.optimizer demo.Demo.server in
  let distinct_queries =
    List.init 8 (fun i ->
        Printf.sprintf
          "for $p in getProfile() where $p/CID eq \"CUST%04d\" return $p/LAST_NAME"
          (i + 1))
  in
  let t_all, _ =
    time (fun () ->
        List.iter
          (fun q -> ignore (Server.compile demo.Demo.server q))
          distinct_queries)
  in
  Printf.printf
    "8 distinct queries over the same view: %.2f ms total;\n\
     view sub-optimizer cache: %d hits / %d misses (the view body is\n\
     partially optimized once and reused, §4.2)\n"
    (t_all *. 1000.)
    (Optimizer.view_cache_hits opt)
    (Optimizer.view_cache_misses opt)

(* ------------------------------------------------------------------ *)
(* Inverse functions (§4.5)                                            *)

let bench_inverse () =
  banner "Inverse functions: pushing a transformed predicate (§4.5)";
  let customers = 300 in
  let q =
    "for $p in getProfile() where $p/SINCE gt xs:dateTime(\"1970-09-01T00:00:00Z\") return $p/CID"
  in
  Printf.printf "query: %s\n" q;
  Printf.printf "%-24s %16s %14s %12s\n" "inverse functions" "rows shipped"
    "selected" "time(ms)";
  let variant label use_inverse =
    let demo = Demo.create ~customers ~orders_per_customer:0 () in
    let options =
      { Optimizer.default_options with
        Optimizer.use_inverse_functions = use_inverse }
    in
    let server = Server.create ~optimizer_options:options demo.Demo.registry in
    Demo.reset_stats demo;
    let t, r = time (fun () -> ok_exn (Server.run server q)) in
    Printf.printf "%-24s %16d %14d %12.1f\n" label
      demo.Demo.customer_db.Database.stats.Database.rows_shipped
      (List.length r) (t *. 1000.);
    match Server.compile server q with
    | Ok compiled ->
      List.iter
        (fun (db, sql) -> Printf.printf "  SQL[%s]: %s\n" db sql)
        compiled.Server.sql
    | Error _ -> ()
  in
  variant "registered (on)" true;
  variant "disabled" false;
  print_endline
    "shape: with date2int registered as int2date's inverse, the selection\n\
     is evaluated by the database (SINCE > ?); without it every row is\n\
     shipped and filtered in the middleware."

(* ------------------------------------------------------------------ *)
(* Observed-cost reordering (§9 roadmap, implemented)                  *)

let bench_observed () =
  banner "Observed cost-based ordering (§9 roadmap item, implemented)";
  (* SLOW: 4 rows behind a 2ms-per-statement source; FAST: 150 rows behind
     a 0.05ms source. An inequality join forces dependent nested-loop
     evaluation, so the outer/inner choice dominates cost. *)
  let build () =
    let slow_db = Database.create "SlowDB" ~roundtrip_latency:0.002 in
    Database.add_table slow_db
      (Table.create ~primary_key:[ "K" ] "SLOW"
         [ Table.column ~nullable:false "K" Table.T_int ]);
    let t = Result.get_ok (Database.find_table slow_db "SLOW") in
    for i = 1 to 4 do
      Result.get_ok (Table.insert t [| Sql_value.Int (i * 40) |])
    done;
    let fast_db = Database.create "FastDB" ~roundtrip_latency:0.00005 in
    Database.add_table fast_db
      (Table.create ~primary_key:[ "K" ] "FAST"
         [ Table.column ~nullable:false "K" Table.T_int ]);
    let t = Result.get_ok (Database.find_table fast_db "FAST") in
    for i = 1 to 150 do
      Result.get_ok (Table.insert t [| Sql_value.Int i |])
    done;
    let registry = Metadata.create () in
    Metadata.introspect_relational registry slow_db;
    Metadata.introspect_relational registry fast_db;
    registry
  in
  let q =
    "for $f in FAST(), $s in SLOW() where $s/K gt $f/K order by $f/K return <R>{$f/K, $s/K}</R>"
  in
  Printf.printf "query (FAST listed first): %s\n" q;
  Printf.printf "%-30s %10s %8s\n" "optimizer" "time(ms)" "rows";
  let registry = build () in
  let plain = Server.create registry in
  let t_plain, r_plain = time (fun () -> ok_exn (Server.run plain q)) in
  Printf.printf "%-30s %10.1f %8d\n" "written order (FAST outer)"
    (t_plain *. 1000.) (List.length r_plain);
  let obs = Observed.create () in
  let observed_server = Server.create ~observed:obs registry in
  (* warm-up observations *)
  ignore (ok_exn (Server.run observed_server "count(SLOW())"));
  ignore (ok_exn (Server.run observed_server "count(FAST())"));
  let t_obs, r_obs = time (fun () -> ok_exn (Server.run observed_server q)) in
  Printf.printf "%-30s %10.1f %8d\n" "observed-cost reorder"
    (t_obs *. 1000.) (List.length r_obs);
  Printf.printf "  identical results: %b;  observations: %s\n"
    (Item.serialize r_plain = Item.serialize r_obs)
    (String.concat ", "
       (List.map
          (fun (fn, s) ->
            Printf.sprintf "%s lat=%.2fms card=%.0f" fn.Qname.local
              (s.Observed.mean_latency *. 1000.)
              s.Observed.mean_cardinality)
          (Observed.report obs)));
  print_endline
    "shape: with only observed behaviour (no static cost model) the\n\
     small/slow source becomes the outer branch, avoiding per-tuple\n\
     roundtrips to the expensive source."

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                             *)

let bechamel_micro () =
  banner "Bechamel microbenchmarks (compiler and runtime hot paths)";
  let open Bechamel in
  let open Toolkit in
  let demo = Demo.create ~customers:10 ~orders_per_customer:2 () in
  let compile_q =
    "for $c in CUSTOMER(), $o in ORDER_T() where $c/CID eq $o/CID return <CO>{$c/CID, $o/OID}</CO>"
  in
  let registry = demo.Demo.registry in
  let tests =
    [ Test.make ~name:"parse"
        (Staged.stage (fun () -> ignore (Xq_parser.parse_expr compile_q)));
      Test.make ~name:"compile-pipeline"
        (Staged.stage (fun () ->
             let diag = Diag.collector Diag.Fail_fast in
             let ctx =
               Normalize.context
                 ~schema_lookup:(Metadata.find_schema registry) diag
             in
             let core =
               Normalize.expr ctx (ok_exn (Xq_parser.parse_expr compile_q))
             in
             let env = Typecheck.env registry diag in
             let _, typed = Typecheck.check env core in
             let opt = Optimizer.create registry in
             let optimized, _ = Optimizer.optimize opt typed in
             ignore
               (Optimizer.select_methods opt (Pushdown.push registry optimized))));
      Test.make ~name:"execute-join-query"
        (Staged.stage (fun () ->
             ignore (ok_exn (Server.run demo.Demo.server compile_q))));
      Test.make ~name:"tuple-array-field"
        (Staged.stage (fun () ->
             let open Aldsp_tokens in
             let t =
               Tuple.of_sequences Tuple.Array_repr
                 [ [ Item.integer 1 ]; [ Item.string "x" ] ]
             in
             ignore (Tuple.field_items t 1)));
      Test.make ~name:"token-stream-roundtrip"
        (Staged.stage (fun () ->
             let open Aldsp_tokens in
             let node =
               Aldsp_xml.Node.element (Qname.local "R")
                 [ Aldsp_xml.Node.element (Qname.local "A")
                     [ Aldsp_xml.Node.atom (Atomic.Integer 7) ] ]
             in
             ignore (Token_stream.to_items (Token_stream.of_node node)))) ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false
             ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-28s %12.0f ns/run\n" name est
          | _ -> Printf.printf "%-28s (no estimate)\n" name)
        results)
    tests

(* ------------------------------------------------------------------ *)

let () =
  let micro = Array.exists (fun a -> a = "micro") Sys.argv in
  let smoke = Array.exists (fun a -> a = "smoke") Sys.argv in
  Printf.printf
    "ALDSP query processing benchmarks — regenerating the paper's tables,\n\
     figures and quantitative claims. Absolute numbers come from the\n\
     in-memory substrates with simulated latencies; the shapes are the\n\
     experiment (see EXPERIMENTS.md).\n";
  (* the committed serving-layer baseline, read before any experiment
     rewrites CCX_latency.json (the smoke CCX sweep has no 64-client
     point; the checked-in file from the serving-layer change does) *)
  let baseline_p99_ms = ccx_baseline_p99 "CCX_latency.json" ~clients:64 in
  if smoke then begin
    (* CI smoke: one tiny access-path sweep point, plus the cost-model
       structural assertions at 100k rows (chosen plan is PP-k with k in
       [5, 50] on the index probe path), with the full result plumbing *)
    bench_scan_vs_index ~smoke:true ();
    bench_cost_model ~smoke:true ();
    bench_concurrent_serving ~smoke:true ();
    bench_shared_workload ~smoke:true ?baseline_p99_ms ();
    bench_streaming ~smoke:true ();
    bench_extsort ~smoke:true ();
    write_results "BENCH_results.json";
    print_endline "\nsmoke run completed";
    exit 0
  end;
  bench_pushdown_patterns ();
  bench_tuple_representations ();
  bench_ppk ();
  bench_scan_vs_index ();
  bench_cost_model ();
  bench_group_by ();
  bench_extsort ();
  bench_async ();
  bench_async_orchestration ();
  bench_function_cache ();
  bench_failover ();
  bench_view_unfolding ();
  bench_plan_cache ();
  bench_inverse ();
  bench_observed ();
  bench_concurrent_serving ();
  (* the full CCX sweep just refreshed CCX_latency.json with a same-machine
     64-client point: prefer it over the committed baseline *)
  let baseline_p99_ms =
    match ccx_baseline_p99 "CCX_latency.json" ~clients:64 with
    | Some _ as fresh -> fresh
    | None -> baseline_p99_ms
  in
  bench_shared_workload ?baseline_p99_ms ();
  bench_streaming ();
  if micro then bechamel_micro ();
  write_results "BENCH_results.json";
  print_endline "\nall experiments completed"
