(* Tests for the physical plan IR and the unified cross-layer EXPLAIN:
   per-operator counters against the server's own rollups, plan-cache
   staleness across metadata generations, and golden EXPLAIN renderings
   across the five SQL dialects. *)

open Aldsp_core
open Aldsp_xml
open Aldsp_relational
open Aldsp_check

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int
let check_string = Alcotest.check Alcotest.string

let ok_exn = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let compile_exn server q =
  match Server.compile server q with
  | Ok c -> c
  | Error ds ->
    Alcotest.failf "compile failed: %s"
      (String.concat "; " (List.map Diag.to_string ds))

let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* The unified tree: middleware operators, counters, backend lines     *)

let test_unified_tree () =
  let demo = Aldsp_demo.Demo.create ~customers:4 ~orders_per_customer:2 () in
  let q =
    "for $c in CUSTOMER() where $c/LAST_NAME eq \"Smith\" return \
     <R>{$c/CID}</R>"
  in
  let text = ok_exn (Server.explain demo.Aldsp_demo.Demo.server q) in
  check_bool "static type line" true (contains text "static type:");
  check_bool "plan header" true (contains text "plan:");
  check_bool "pushed region carries db and dialect" true
    (contains text "sql[CustomerDB dialect=Oracle]");
  check_bool "statement printed in dialect" true
    (contains text "WHERE t1.\"LAST_NAME\" = 'Smith'");
  check_bool "backend access path nested under region" true
    (contains text "backend: scan CUSTOMER");
  check_bool "counters on operator lines" true (contains text "act=");
  check_bool "estimates on operator lines" true (contains text "est=");
  check_bool "no wall times by default" true (not (contains text "wall="));
  (* timings mode adds wall-clock fields *)
  let timed = ok_exn (Server.explain ~timings:true demo.Aldsp_demo.Demo.server q) in
  check_bool "timings adds wall fields" true (contains timed "wall=");
  (* analyze:false on a fresh server renders the static tree: no backend
     capture, zero counters *)
  let fresh = Aldsp_demo.Demo.create ~customers:4 ~orders_per_customer:2 () in
  let static_ =
    ok_exn (Server.explain ~analyze:false fresh.Aldsp_demo.Demo.server q)
  in
  check_bool "static render has no backend lines" true
    (not (contains static_ "backend:"));
  check_bool "static render has zero rows" true (contains static_ "act=0");
  check_bool "static render never executed" true
    (not (contains static_ "act=4"))

let test_explain_deterministic () =
  let demo = Aldsp_demo.Demo.create ~customers:5 ~orders_per_customer:2 () in
  let q =
    "for $c in CUSTOMER(), $o in ORDER_T() where $c/CID eq $o/CID order by \
     $c/CID return <R>{$c/CID, $o/OID}</R>"
  in
  let t1 = ok_exn (Server.explain demo.Aldsp_demo.Demo.server q) in
  let t2 = ok_exn (Server.explain demo.Aldsp_demo.Demo.server q) in
  check_string "EXPLAIN is byte-stable across runs" t1 t2

(* ------------------------------------------------------------------ *)
(* Counters vs the server rollups                                      *)

(* PP-k with k=2 over 6 outer rows: the inner pushed region must report
   ceil(6/2) = 3 roundtrips, and the same number must appear in the
   Observed rollup surfaced by Server.stats. *)
let test_ppk_roundtrip_counters () =
  let demo =
    Aldsp_demo.Demo.create ~customers:6 ~orders_per_customer:0
      ~cards_per_customer:1 ()
  in
  let obs = Observed.create () in
  let server =
    Server.create
      ~optimizer_options:
        { Optimizer.default_options with
          Optimizer.ppk_k = 2;
          ppk_prefetch = 0;
          cost_based = false (* the test pins k=2 block accounting *) }
      ~observed:obs demo.Aldsp_demo.Demo.registry
  in
  let q =
    "for $c in CUSTOMER(), $k in CREDIT_CARD() where $c/CID eq $k/CID \
     return <R>{$c/CID, $k/NUM}</R>"
  in
  let compiled = compile_exn server q in
  let items = ok_exn (Server.run server q) in
  check_int "six joined rows" 6 (List.length items);
  (match Plan_ir.regions compiled.Server.ir with
  | [ outer; inner ] ->
    check_string "outer region db" "CustomerDB" outer.Plan_ir.sql_db;
    check_string "inner region db" "CardDB" inner.Plan_ir.sql_db;
    check_bool "backend plan captured for inner region" true
      (inner.Plan_ir.sql_backend <> [])
  | rs -> Alcotest.failf "expected 2 pushed regions, found %d" (List.length rs));
  (* counters live on the operator lines (same labels render prints) *)
  let sql_ops =
    List.filter
      (fun (label, _) -> contains label "sql[")
      (Plan_ir.operators compiled.Server.ir)
  in
  (match sql_ops with
  | [ (outer_l, outer_c); (inner_l, inner_c) ] ->
    check_bool "outer op is CustomerDB" true (contains outer_l "CustomerDB");
    check_bool "inner op is CardDB" true (contains inner_l "CardDB");
    check_int "outer: one statement" 1 outer_c.Plan_ir.c_roundtrips;
    check_int "outer: all customers shipped" 6 outer_c.Plan_ir.c_rows;
    check_int "inner: ceil(6/2) PP-k blocks" 3 inner_c.Plan_ir.c_roundtrips;
    check_int "inner: six card rows" 6 inner_c.Plan_ir.c_rows
  | ops -> Alcotest.failf "expected 2 sql operators, found %d" (List.length ops));
  let stats = Server.stats server in
  check_int "EXPLAIN roundtrips match Observed rollup" 3
    stats.Server.st_roundtrips

(* A cacheable call site: first run misses (computes), second hits; the
   plan's call-site counters must agree with the function-cache rollup in
   Server.stats. *)
let test_cache_hit_counters () =
  let cache = Function_cache.create (Database.create "CacheDB") in
  let demo =
    Aldsp_demo.Demo.create ~customers:3 ~orders_per_customer:1
      ~function_cache:cache ()
  in
  let server = demo.Aldsp_demo.Demo.server in
  let name = Qname.make ~uri:"fn" "getCustomerNames" in
  Metadata.set_cacheable demo.Aldsp_demo.Demo.registry name true;
  Function_cache.enable cache name ~ttl_seconds:60.;
  let q = "count(getCustomerNames())" in
  let compiled = compile_exn server q in
  let r1 = ok_exn (Server.run server q) in
  let r2 = ok_exn (Server.run server q) in
  check_string "cached run identical" (Item.serialize r1) (Item.serialize r2);
  let hits, misses =
    List.fold_left
      (fun (h, m) (_, c) ->
        (h + c.Plan_ir.c_cache_hits, m + c.Plan_ir.c_cache_misses))
      (0, 0)
      (Plan_ir.operators compiled.Server.ir)
  in
  check_int "one computed call on the site" 1 misses;
  check_int "one cache hit on the site" 1 hits;
  let stats = Server.stats server in
  check_int "matches st_function_cache_hits" stats.Server.st_function_cache_hits
    hits;
  check_int "matches st_function_cache_misses"
    stats.Server.st_function_cache_misses misses;
  (* and the rendered tree marks the site cacheable with its counters *)
  let text = ok_exn (Server.explain ~analyze:false server q) in
  check_bool "call site marked cacheable" true (contains text "[cacheable]")

(* ------------------------------------------------------------------ *)
(* Plan cache across metadata generations                              *)

let test_plan_cache_staleness () =
  let demo = Aldsp_demo.Demo.create ~customers:3 ~orders_per_customer:1 () in
  let server = demo.Aldsp_demo.Demo.server in
  let q = "count(CUSTOMER())" in
  ignore (compile_exn server q);
  let m1 = Server.plan_cache_misses server in
  let h1 = Server.plan_cache_hits server in
  ignore (compile_exn server q);
  check_int "second compile is a hit" m1 (Server.plan_cache_misses server);
  check_int "hit recorded" (h1 + 1) (Server.plan_cache_hits server);
  (* any registry mutation moves the generation; the cached plan must not
     be served across it *)
  Metadata.set_cacheable demo.Aldsp_demo.Demo.registry
    (Qname.make ~uri:"fn" "getCustomerNames")
    true;
  ignore (compile_exn server q);
  check_int "metadata change forces recompilation" (m1 + 1)
    (Server.plan_cache_misses server);
  ignore (compile_exn server q);
  check_int "steady state hits again" (m1 + 1)
    (Server.plan_cache_misses server)

let test_compile_once_execute_twice () =
  let demo = Aldsp_demo.Demo.create ~customers:5 ~orders_per_customer:2 () in
  let server = demo.Aldsp_demo.Demo.server in
  let q =
    "for $c in CUSTOMER() order by $c/CID return <R>{$c/CID, $c/LAST_NAME}</R>"
  in
  let a = ok_exn (Server.run server q) in
  let misses = Server.plan_cache_misses server in
  let b = ok_exn (Server.run server q) in
  check_string "cold and cached runs byte-identical" (Item.serialize a)
    (Item.serialize b);
  check_int "zero compilations on the second run" misses
    (Server.plan_cache_misses server)

(* ------------------------------------------------------------------ *)
(* spill= rendering: present with its companions exactly when the sort
   overflowed its budget, absent otherwise                              *)

(* a sort key the SQL translator cannot push, so the ORDER BY runs in
   the middleware where the budget applies *)
let spill_query =
  "for $c in CUSTOMER() order by fn:string-length($c/FIRST_NAME) mod 3, \
   $c/CID descending return $c/CID"

let spill_demo budget customers =
  Aldsp_demo.Demo.create ~customers ~orders_per_customer:1
    ~optimizer_options:
      { Optimizer.default_options with Optimizer.sort_budget_rows = budget }
    ()

let test_spill_counters () =
  (* 12 rows through a 2-row budget: the sort must spill and say so *)
  let demo = spill_demo (Some 2) 12 in
  let text = ok_exn (Server.explain demo.Aldsp_demo.Demo.server spill_query) in
  check_bool "sort stayed in the middleware" true (contains text "sort");
  check_bool "spill= rendered on the sort line" true (contains text "spill=");
  check_bool "spilled every row" true (contains text "spill-rows=12");
  check_bool "spill bytes rendered" true (contains text "spill-bytes=");
  check_bool "merge fan-in rendered" true (contains text "fanin=");
  (* and the server's rollup agrees *)
  let st = Server.stats demo.Aldsp_demo.Demo.server in
  check_bool "st_spill_runs rolled up" true (st.Server.st_spill_runs >= 6);
  check_int "st_spill_rows rolled up" 12 st.Server.st_spill_rows;
  check_bool "st_spill_bytes rolled up" true (st.Server.st_spill_bytes > 0);
  check_bool "peak resident recorded" true (st.Server.st_spill_peak_resident > 0)

let test_zero_spill_renders_as_before () =
  (* same query, unbounded budget: not a byte of spill output *)
  let demo = spill_demo None 12 in
  let unbounded =
    ok_exn (Server.explain demo.Aldsp_demo.Demo.server spill_query)
  in
  check_bool "no spill fields" true (not (contains unbounded "spill"));
  check_bool "no fanin field" true (not (contains unbounded "fanin="));
  let st = Server.stats demo.Aldsp_demo.Demo.server in
  check_int "no spill rollup" 0 st.Server.st_spill_runs;
  (* a budget the input never overflows is also spill-free *)
  let roomy = spill_demo (Some 1000) 12 in
  let text = ok_exn (Server.explain roomy.Aldsp_demo.Demo.server spill_query) in
  check_bool "roomy budget never spills" true (not (contains text "spill"));
  check_string "roomy budget renders identically" unbounded text

(* ------------------------------------------------------------------ *)
(* Golden EXPLAIN renderings across the five dialects                  *)

(* EXPERIMENTS.md pattern-catalog queries (Tables 1-2) plus the
   cross-database PP-k join, over the harness catalog built from a fixed
   spec: the rendering (statements, binds, counters, backend lines) is
   pinned per dialect. *)
let golden_queries =
  [ ( "T1a select-project",
      "for $c in CUSTOMER() where $c/CID eq \"CUST0001\" return \
       $c/FIRST_NAME" );
    ( "T1b inner join",
      "for $c in CUSTOMER(), $o in ORDER_T() where $c/CID eq $o/CID return \
       <CUSTOMER_ORDER>{$c/CID, $o/OID}</CUSTOMER_ORDER>" );
    ( "T1e group-by with aggregation",
      "for $c in CUSTOMER() group $c as $p by $c/LAST_NAME as $l return \
       <CUSTOMER>{$l, count($p)}</CUSTOMER>" );
    ( "T2i row window",
      "let $cs := for $c in CUSTOMER() let $oc := count(for $o in ORDER_T() \
       where $c/CID eq $o/CID return $o) order by $oc descending return \
       <CUSTOMER>{data($c/CID), $oc}</CUSTOMER> return subsequence($cs, 2, \
       3)" );
    ( "PP-k cross-database join",
      "for $c in CUSTOMER(), $k in CREDIT_CARD() where $c/CID eq $k/CID \
       return <R>{$c/CID, $k/NUM}</R>" ) ]

let explain_catalog vendor =
  let spec =
    { Catalog.seed = 7;
      main_vendor = vendor;
      card_vendor = vendor;
      customers = 6;
      orders_per_customer = 2;
      cards_per_customer = 1;
      regions = 3 }
  in
  let cat = Catalog.build spec in
  (* budget pinned to unbounded so the goldens stay byte-stable however
     ALDSP_SORT_BUDGET is set in the environment (the CI forced-spill
     run); zero-spill rendering is pinned by these files, spilling
     rendering by test_spill_counters *)
  let server =
    Server.create
      ~optimizer_options:
        { Optimizer.default_options with Optimizer.sort_budget_rows = None }
      cat.Catalog.registry
  in
  let buf = Buffer.create 4096 in
  List.iter
    (fun (name, q) ->
      Buffer.add_string buf (Printf.sprintf "== %s\n-- %s\n" name q);
      (match Server.explain server q with
      | Ok text -> Buffer.add_string buf text
      | Error msg -> Buffer.add_string buf ("error: " ^ msg ^ "\n"));
      Buffer.add_char buf '\n')
    golden_queries;
  Buffer.contents buf

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* ALDSP_GOLDEN_PROMOTE=1 rewrites the goldens in place (run from test/);
   otherwise a mismatch writes explain_<dialect>.actual beside the test
   binary so CI can upload the diff as an artifact. *)
let promote = Sys.getenv_opt "ALDSP_GOLDEN_PROMOTE" = Some "1"

let test_golden vendor () =
  let name = Catalog.vendor_to_string vendor in
  let path = Printf.sprintf "golden/explain_%s.txt" name in
  let actual = explain_catalog vendor in
  if promote then write_file path actual
  else
    let expected = if Sys.file_exists path then read_file path else "" in
    if not (String.equal actual expected) then begin
      let out = Printf.sprintf "explain_%s.actual" name in
      write_file out actual;
      Alcotest.failf
        "EXPLAIN golden mismatch for dialect %s (wrote %s; run with \
         ALDSP_GOLDEN_PROMOTE=1 from test/ to accept)"
        name out
    end

let () =
  let t name f = Alcotest.test_case name `Quick f in
  Alcotest.run "explain"
    [ ( "unified-tree",
        [ t "middleware + backend in one tree" test_unified_tree;
          t "deterministic rendering" test_explain_deterministic ] );
      ( "counters",
        [ t "pp-k roundtrips match Observed" test_ppk_roundtrip_counters;
          t "cache hits match Server.stats" test_cache_hit_counters ] );
      ( "plan-cache",
        [ t "stale generations recompile" test_plan_cache_staleness;
          t "compile once, execute twice" test_compile_once_execute_twice ] );
      ( "spill",
        [ t "spill= counters on a spilled sort" test_spill_counters;
          t "zero-spill plans render as before"
            test_zero_spill_renders_as_before ] );
      ( "golden",
        Array.to_list
          (Array.map
             (fun v ->
               t
                 (Printf.sprintf "dialect %s" (Catalog.vendor_to_string v))
                 (test_golden v))
             Catalog.vendors) ) ]
