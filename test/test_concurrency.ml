(* Tests for the concurrent serving layer: cancellation tokens, pool
   shutdown under contention, per-query deadlines cutting through
   fn-bea:timeout windows and backend roundtrips, admission control with
   backpressure and drain, and cache/statistics invalidation under
   concurrent DML. *)

open Aldsp_core
open Aldsp_xml
open Aldsp_relational

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int

let ok_exn = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let serialize_submit = function
  | Ok items -> "result: " ^ Item.serialize items
  | Error e -> "error: " ^ Server.submit_error_to_string e

let scan_query = "for $c in CUSTOMER() return $c/CID"

(* ------------------------------------------------------------------ *)
(* Cancel tokens                                                       *)

let test_cancel_basics () =
  check_bool "inert token never cancelled" false (Cancel.cancelled Cancel.none);
  Cancel.cancel Cancel.none;
  check_bool "inert token ignores cancel" false (Cancel.cancelled Cancel.none);
  let tok = Cancel.make () in
  check_bool "fresh token live" false (Cancel.cancelled tok);
  Cancel.cancel tok;
  check_bool "flag observed" true (Cancel.cancelled tok);
  let expired = Cancel.with_deadline (-0.001) in
  check_bool "past deadline is cancelled" true (Cancel.cancelled expired);
  check_bool "remaining clamps at zero" true
    (Cancel.remaining expired = Some 0.)

let test_cancel_ambient_nesting () =
  let outer = Cancel.make () and inner = Cancel.make () in
  Cancel.with_token outer (fun () ->
      check_bool "outer installed" true (Cancel.current () == outer);
      Cancel.with_token inner (fun () ->
          check_bool "inner shadows" true (Cancel.current () == inner));
      check_bool "outer restored" true (Cancel.current () == outer));
  check_bool "inert restored" true (Cancel.current () == Cancel.none)

let test_cancel_sleep_interrupted () =
  let tok = Cancel.make () in
  let t0 = Unix.gettimeofday () in
  let _ =
    Thread.create
      (fun () ->
        Thread.delay 0.03;
        Cancel.cancel tok)
      ()
  in
  (match Cancel.with_token tok (fun () -> Cancel.sleepf 5.0) with
  | () -> Alcotest.fail "sleep should have been interrupted"
  | exception Cancel.Cancelled _ -> ());
  let waited = Unix.gettimeofday () -. t0 in
  check_bool
    (Printf.sprintf "interrupted promptly (%.0f ms)" (waited *. 1000.))
    true (waited < 1.0)

(* ------------------------------------------------------------------ *)
(* Pool shutdown under contention                                      *)

let test_pool_double_shutdown () =
  let pool = Pool.create ~workers:2 () in
  check_int "warm-up task" 3 (Pool.await pool (Pool.submit pool (fun () -> 3)));
  Pool.shutdown pool;
  Pool.shutdown pool;
  Pool.shutdown ~wait:true pool;
  Pool.shutdown ~wait:true pool;
  (* tasks submitted after shutdown still complete via help-draining *)
  check_int "post-shutdown task" 9
    (Pool.await pool (Pool.submit pool (fun () -> 9)))

let test_pool_shutdown_with_inflight () =
  let pool = Pool.create ~workers:3 () in
  let futs =
    List.init 12 (fun i ->
        Pool.submit pool (fun () ->
            Thread.delay 0.01;
            i))
  in
  (* workers are mid-task (or the queue still holds work) right here *)
  Pool.shutdown ~wait:true pool;
  List.iteri (fun i fut -> check_int "task survived shutdown" i (Pool.await pool fut)) futs;
  let s = Pool.stats pool in
  check_int "nothing abandoned" s.Pool.st_submitted
    (s.Pool.st_completed + s.Pool.st_helped)

let test_pool_concurrent_shutdowns () =
  let pool = Pool.create ~workers:2 () in
  ignore (Pool.await pool (Pool.submit pool (fun () -> ())));
  let ts =
    List.init 4 (fun _ -> Thread.create (fun () -> Pool.shutdown ~wait:true pool) ())
  in
  List.iter Thread.join ts

(* ------------------------------------------------------------------ *)
(* Deadlines                                                           *)

let test_deadline_under_backend_latency () =
  let demo = Aldsp_demo.Demo.create ~customers:5 ~db_latency:0.5 () in
  let server = demo.Aldsp_demo.Demo.server in
  let t0 = Unix.gettimeofday () in
  (match Server.submit server ~deadline:0.05 scan_query with
  | Error (Server.Cancelled _) -> ()
  | other -> Alcotest.failf "expected Cancelled, got %s" (serialize_submit other));
  let wall = Unix.gettimeofday () -. t0 in
  check_bool
    (Printf.sprintf "aborted well before the roundtrip (%.0f ms)" (wall *. 1000.))
    true (wall < 0.4);
  let adm = Server.admission_stats server in
  check_int "deadline abort counted" 1 adm.Server.ad_deadline_aborts;
  check_int "slot released" 0 adm.Server.ad_active;
  (* no leaked worker / wedged slot: the same server still serves *)
  demo.Aldsp_demo.Demo.customer_db.Database.roundtrip_latency <- 0.;
  (match Server.submit server scan_query with
  | Ok items -> check_int "subsequent query serves" 5 (List.length items)
  | Error e -> Alcotest.failf "recovery query failed: %s" (Server.submit_error_to_string e))

let timeout_query ms =
  Printf.sprintf
    "fn-bea:timeout(fn:data(getRating(<getRating><lName>{\"x\"}</lName><ssn>{\"9\"}</ssn></getRating>)/getRatingResult), %d, -1)"
    ms

let test_deadline_mid_timeout_window () =
  (* the fn-bea:timeout window (2 s) is clamped by the session deadline
     (0.1 s): the await wakes at the deadline and the query aborts — it
     must NOT fail over to the alternate, a deadline is not a timeout *)
  let demo = Aldsp_demo.Demo.create ~customers:1 ~service_latency:0.5 () in
  let server = demo.Aldsp_demo.Demo.server in
  let t0 = Unix.gettimeofday () in
  (match Server.submit server ~deadline:0.1 (timeout_query 2000) with
  | Error (Server.Cancelled _) -> ()
  | other ->
    Alcotest.failf "expected Cancelled mid-window, got %s" (serialize_submit other));
  let wall = Unix.gettimeofday () -. t0 in
  check_bool
    (Printf.sprintf "woke at the deadline, not the window (%.0f ms)" (wall *. 1000.))
    true (wall < 0.45)

let test_timeout_inside_generous_deadline () =
  (* the converse composition: the 30 ms fn-bea:timeout fires first and
     fails over normally; the generous session deadline stays out of it *)
  let demo = Aldsp_demo.Demo.create ~customers:1 ~service_latency:0.3 () in
  let server = demo.Aldsp_demo.Demo.server in
  match Server.submit server ~deadline:10.0 (timeout_query 30) with
  | Ok items ->
    check_bool "alternate returned" true
      (Item.equal_sequence items [ Item.integer (-1) ])
  | Error e ->
    Alcotest.failf "expected the timeout alternate: %s"
      (Server.submit_error_to_string e)

let test_explicit_session_cancel () =
  let demo = Aldsp_demo.Demo.create ~customers:3 ~db_latency:0.5 () in
  let server = demo.Aldsp_demo.Demo.server in
  let ses = Server.session server () in
  let result = ref (Error Server.Overloaded) in
  let th =
    Thread.create (fun () -> result := Server.session_run ses scan_query) ()
  in
  Thread.delay 0.1;
  let t0 = Unix.gettimeofday () in
  Server.session_cancel ses;
  Thread.join th;
  let wall = Unix.gettimeofday () -. t0 in
  (match !result with
  | Error (Server.Cancelled _) -> ()
  | other -> Alcotest.failf "expected Cancelled, got %s" (serialize_submit other));
  check_bool
    (Printf.sprintf "cancel took effect promptly (%.0f ms)" (wall *. 1000.))
    true (wall < 0.4)

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)

let slow_server demo ~max_concurrent ~admission_queue =
  Server.create ~max_concurrent ~admission_queue
    demo.Aldsp_demo.Demo.registry

let test_admission_overload_rejection () =
  let demo = Aldsp_demo.Demo.create ~customers:3 ~db_latency:0.4 () in
  let server = slow_server demo ~max_concurrent:1 ~admission_queue:0 in
  let th = Thread.create (fun () -> Server.submit server scan_query) () in
  Thread.delay 0.15;
  (* the only slot is mid-roundtrip and the queue admits nobody *)
  (match Server.submit server scan_query with
  | Error Server.Overloaded -> ()
  | other -> Alcotest.failf "expected Overloaded, got %s" (serialize_submit other));
  ignore (Thread.join th);
  let adm = Server.admission_stats server in
  check_int "rejection counted" 1 adm.Server.ad_rejected;
  check_int "peak concurrency capped" 1 adm.Server.ad_peak_active;
  (* with the slot free again, the front door reopens *)
  (match Server.submit server scan_query with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "post-overload submit failed: %s"
                 (Server.submit_error_to_string e))

let test_admission_queueing () =
  let demo = Aldsp_demo.Demo.create ~customers:3 ~db_latency:0.1 () in
  let server = slow_server demo ~max_concurrent:1 ~admission_queue:8 in
  let results = Array.make 6 (Error Server.Overloaded) in
  let ts =
    List.init 6 (fun i ->
        Thread.create (fun () -> results.(i) <- Server.submit server scan_query) ())
  in
  List.iter Thread.join ts;
  Array.iteri
    (fun i r ->
      match r with
      | Ok _ -> ()
      | Error e ->
        Alcotest.failf "queued query %d failed: %s" i
          (Server.submit_error_to_string e))
    results;
  let adm = Server.admission_stats server in
  check_int "all admitted" 6 adm.Server.ad_admitted;
  check_int "all completed" 6 adm.Server.ad_completed;
  check_int "serialized through one slot" 1 adm.Server.ad_peak_active;
  check_bool "queue actually formed" true (adm.Server.ad_peak_queued >= 1);
  check_int "nothing left behind" 0 (adm.Server.ad_active + adm.Server.ad_queued)

let test_drain () =
  let demo = Aldsp_demo.Demo.create ~customers:3 ~db_latency:0.3 () in
  let server = slow_server demo ~max_concurrent:4 ~admission_queue:8 in
  let inflight = ref (Error Server.Overloaded) in
  let th = Thread.create (fun () -> inflight := Server.submit server scan_query) () in
  Thread.delay 0.1;
  check_bool "not draining yet" false (Server.draining server);
  Server.drain server;
  (* drain returned: the in-flight query ran to completion first *)
  Thread.join th;
  (match !inflight with
  | Ok _ -> ()
  | Error e ->
    Alcotest.failf "in-flight query should finish during drain: %s"
      (Server.submit_error_to_string e));
  check_bool "draining is sticky" true (Server.draining server);
  (match Server.submit server scan_query with
  | Error Server.Overloaded -> ()
  | other ->
    Alcotest.failf "post-drain submit must be shed, got %s"
      (serialize_submit other));
  let adm = Server.admission_stats server in
  check_int "quiescent after drain" 0 (adm.Server.ad_active + adm.Server.ad_queued)

(* ------------------------------------------------------------------ *)
(* Cache / statistics invalidation under concurrent DML                *)

let count_query = "fn:count(CUSTOMER())"

let test_concurrent_dml_never_stale () =
  let demo = Aldsp_demo.Demo.create ~customers:8 () in
  let server = demo.Aldsp_demo.Demo.server in
  let customer =
    Result.get_ok (Database.find_table demo.Aldsp_demo.Demo.customer_db "CUSTOMER")
  in
  let module V = Sql_value in
  let insert i =
    Result.get_ok
      (Table.insert customer
         [| V.Str (Printf.sprintf "NEW%05d" i);
            V.Str "Race";
            V.Str "Rex";
            V.Str (Printf.sprintf "999-00-%04d" i);
            V.Int (i * 86400) |])
  in
  let writers = 2 and per_writer = 25 and readers = 4 in
  let failures = ref [] in
  let fail_lock = Mutex.create () in
  let note_failure msg =
    Mutex.lock fail_lock;
    failures := msg :: !failures;
    Mutex.unlock fail_lock
  in
  let writer w () =
    for i = 1 to per_writer do
      insert ((w * per_writer) + i);
      Thread.delay 0.0005
    done
  in
  let reader () =
    for _ = 1 to 40 do
      match Server.submit server count_query with
      | Ok [ item ] -> (
        match int_of_string_opt (Item.string_value item) with
        | Some n when n >= 8 && n <= 8 + (writers * per_writer) -> ()
        | _ -> note_failure ("implausible count: " ^ Item.serialize [ item ]))
      | Ok items -> note_failure ("count returned " ^ Item.serialize items)
      | Error e -> note_failure (Server.submit_error_to_string e)
    done
  in
  let ts =
    List.init writers (fun w -> Thread.create (writer w) ())
    @ List.init readers (fun _ -> Thread.create reader ())
  in
  List.iter Thread.join ts;
  (match !failures with
  | [] -> ()
  | msg :: _ -> Alcotest.failf "concurrent DML raced the cache: %s" msg);
  (* end state: the cached plan must see every inserted row — a stale
     plan (or stale statistics-driven choice) would disagree with a
     freshly-built reference server over the same registry *)
  let final = Item.serialize (ok_exn (Server.run server count_query)) in
  let reference = Server.reference demo.Aldsp_demo.Demo.registry in
  let expected = Item.serialize (ok_exn (Server.run reference count_query)) in
  check_bool
    (Printf.sprintf "final count %s matches reference %s" final expected)
    true
    (String.equal final expected);
  let adm = Server.admission_stats server in
  check_int "admission balanced" adm.Server.ad_admitted
    (adm.Server.ad_completed + adm.Server.ad_deadline_aborts)

(* Single-schedule property: after ANY prefix of DML, a re-submitted
   query must reflect the mutation immediately — the plan cache may hit
   only while the statistics generation is unchanged. *)
let test_invalidation_property =
  QCheck.Test.make ~count:15
    ~name:"plan cache never serves a row count from before a mutation"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 12) bool)
    (fun ops ->
      let demo = Aldsp_demo.Demo.create ~customers:4 () in
      let server = demo.Aldsp_demo.Demo.server in
      let customer =
        Result.get_ok
          (Database.find_table demo.Aldsp_demo.Demo.customer_db "CUSTOMER")
      in
      let module V = Sql_value in
      let expected = ref 4 in
      let fresh = ref 0 in
      List.iter
        (fun mutate ->
          if mutate then begin
            incr fresh;
            incr expected;
            ignore
              (Result.get_ok
                 (Table.insert customer
                    [| V.Str (Printf.sprintf "PROP%04d" !fresh);
                       V.Str "Prop";
                       V.Null;
                       V.Str (Printf.sprintf "888-00-%04d" !fresh);
                       V.Int 86400 |]))
          end;
          match Server.submit server count_query with
          | Ok [ item ] ->
            let got = int_of_string_opt (Item.string_value item) in
            if got <> Some !expected then
              QCheck.Test.fail_reportf
                "after %d inserts the server counted %s, expected %d" !fresh
                (Item.string_value item) !expected
          | Ok items ->
            QCheck.Test.fail_reportf "count returned %s" (Item.serialize items)
          | Error e ->
            QCheck.Test.fail_reportf "submit failed: %s"
              (Server.submit_error_to_string e))
        ops;
      true)

(* ------------------------------------------------------------------ *)
(* Single-flight coalescing                                            *)

module Singleflight = Aldsp_concurrency.Singleflight

(* a broadcast gate: [wait] blocks until [release] *)
let gate () =
  let m = Mutex.create () and c = Condition.create () and opened = ref false in
  let wait () =
    Mutex.lock m;
    while not !opened do
      Condition.wait c m
    done;
    Mutex.unlock m
  and release () =
    Mutex.lock m;
    opened := true;
    Condition.broadcast c;
    Mutex.unlock m
  in
  (wait, release)

let test_singleflight_coalesces () =
  let sf = Singleflight.create () in
  let wait, release = gate () in
  let computed = ref 0 in
  let results = Array.make 8 (-1) in
  let worker i () =
    match Singleflight.run sf "k" (fun () -> incr computed; wait (); 42) with
    | Singleflight.Led v | Singleflight.Joined v -> results.(i) <- v
  in
  let leader = Thread.create (worker 0) () in
  (* the leader's flight must be up before the followers arrive *)
  while Singleflight.flights sf = 0 do
    Thread.yield ()
  done;
  let followers = List.init 7 (fun i -> Thread.create (worker (i + 1)) ()) in
  Thread.delay 0.05;
  release ();
  Thread.join leader;
  List.iter Thread.join followers;
  check_int "computed exactly once" 1 !computed;
  Array.iter (fun v -> check_int "every caller got the value" 42 v) results;
  check_int "one flight led" 1 (Singleflight.led sf);
  check_int "seven joined" 7 (Singleflight.joined sf);
  check_int "no flight left behind" 0 (Singleflight.flights sf)

let test_singleflight_leader_failure () =
  let sf = Singleflight.create () in
  let wait, release = gate () in
  let attempts = ref 0 and attempts_lock = Mutex.create () in
  let compute () =
    let n =
      Mutex.lock attempts_lock;
      incr attempts;
      let n = !attempts in
      Mutex.unlock attempts_lock;
      n
    in
    if n = 1 then begin
      wait ();
      failwith "leader died"
    end
    else begin
      (* slow enough that the other retrying followers join this flight *)
      Thread.delay 0.05;
      7
    end
  in
  let leader_failed = ref false in
  let leader =
    Thread.create
      (fun () ->
        match Singleflight.run sf "k" compute with
        | exception Failure _ -> leader_failed := true
        | _ -> ())
      ()
  in
  while Singleflight.flights sf = 0 do
    Thread.yield ()
  done;
  let results = Array.make 3 (-1) in
  let followers =
    List.init 3 (fun i ->
        Thread.create
          (fun () ->
            match Singleflight.run sf "k" compute with
            | Singleflight.Led v | Singleflight.Joined v -> results.(i) <- v)
          ())
  in
  Thread.delay 0.05;
  release ();
  Thread.join leader;
  List.iter Thread.join followers;
  check_bool "only the leader saw its own failure" true !leader_failed;
  Array.iter (fun v -> check_int "followers retried to the value" 7 v) results;
  check_int "one broken flight" 1 (Singleflight.broken sf);
  check_int "the retry executed once" 2 !attempts

let test_singleflight_follower_cancel () =
  let sf = Singleflight.create () in
  let wait, release = gate () in
  let tok = Cancel.make () in
  let cancelled = ref false and survivor = ref (-1) in
  let leader =
    Thread.create
      (fun () -> ignore (Singleflight.run sf "k" (fun () -> wait (); 11)))
      ()
  in
  while Singleflight.flights sf = 0 do
    Thread.yield ()
  done;
  let doomed =
    Thread.create
      (fun () ->
        Cancel.with_token tok (fun () ->
            match Singleflight.run sf "k" (fun () -> 0) with
            | exception Cancel.Cancelled _ -> cancelled := true
            | _ -> ()))
      ()
  in
  let bystander =
    Thread.create
      (fun () ->
        match Singleflight.run sf "k" (fun () -> 0) with
        | Singleflight.Led v | Singleflight.Joined v -> survivor := v)
      ()
  in
  Thread.delay 0.05;
  Cancel.cancel tok;
  Thread.join doomed;
  check_bool "cancelled follower aborted alone" true !cancelled;
  (* ... without taking the shared computation down with it *)
  check_int "flight still up after the cancel" 1 (Singleflight.flights sf);
  release ();
  Thread.join leader;
  Thread.join bystander;
  check_int "remaining waiter still served" 11 !survivor

(* ------------------------------------------------------------------ *)
(* Cross-session work sharing: function cache, plan cache, freshness   *)

let test_function_cache_coalesced_miss () =
  (* how many backend statements one cold computation issues *)
  let per_compute =
    let cache = Function_cache.create (Database.create "CacheDB") in
    let demo = Aldsp_demo.Demo.create ~customers:3 ~function_cache:cache () in
    let name = Qname.make ~uri:"fn" "getCustomerNames" in
    Metadata.set_cacheable demo.Aldsp_demo.Demo.registry name true;
    Function_cache.enable cache name ~ttl_seconds:60.;
    ignore (ok_exn (Server.call demo.Aldsp_demo.Demo.server name []));
    demo.Aldsp_demo.Demo.customer_db.Database.stats.Database.statements
  in
  let cache = Function_cache.create (Database.create "CacheDB") in
  let demo =
    Aldsp_demo.Demo.create ~customers:3 ~db_latency:0.1 ~function_cache:cache ()
  in
  let server = demo.Aldsp_demo.Demo.server in
  let name = Qname.make ~uri:"fn" "getCustomerNames" in
  Metadata.set_cacheable demo.Aldsp_demo.Demo.registry name true;
  Function_cache.enable cache name ~ttl_seconds:60.;
  let results = Array.make 4 "" in
  let ts =
    List.init 4 (fun i ->
        Thread.create
          (fun () ->
            results.(i) <- Item.serialize (ok_exn (Server.call server name [])))
          ())
  in
  List.iter Thread.join ts;
  Array.iter
    (fun r -> check_bool "all sessions agree" true (String.equal r results.(0)))
    results;
  check_int "three misses coalesced onto one computation" 3
    (Function_cache.coalesced cache);
  check_int "backend computed once" per_compute
    demo.Aldsp_demo.Demo.customer_db.Database.stats.Database.statements;
  check_int "no warm hits during the fan-out" 0 (Function_cache.hits cache);
  (* and the leader's store landed: the next call is a plain warm hit *)
  ignore (ok_exn (Server.call server name []));
  check_int "subsequent call hits" 1 (Function_cache.hits cache)

let test_function_cache_materialized_bound () =
  let cache = Function_cache.create ~capacity:2 (Database.create "CacheDB") in
  let name = Qname.make ~uri:"fn" "f" in
  Function_cache.enable cache name ~ttl_seconds:60.;
  for i = 1 to 5 do
    Function_cache.store cache name
      [ [ Item.string (string_of_int i) ] ]
      [ Item.string (Printf.sprintf "value %d" i) ]
  done;
  check_int "typed-value table bounded at capacity" 2
    (Function_cache.materialized_count cache);
  (* an evicted entry is not lost: the persistent row serves a cold hit *)
  match Function_cache.lookup cache name [ [ Item.string "1" ] ] with
  | Some v ->
    check_bool "cold hit rebuilt from storage" true
      (String.equal (Item.serialize v) (Item.serialize [ Item.string "value 1" ]))
  | None -> Alcotest.fail "evicted entry lost entirely"

let test_plan_cache_balance () =
  let key i =
    { Plan_cache.k_query = Printf.sprintf "q%d" i;
      k_options = "o";
      k_generation = 1;
      k_stats = 0 }
  in
  let cache = Plan_cache.create ~capacity:4 in
  let finds = ref 0 in
  for i = 1 to 20 do
    Plan_cache.add cache (key i) i;
    incr finds;
    ignore (Plan_cache.find cache (key i));
    incr finds;
    ignore (Plan_cache.find cache (key (i / 2)))
  done;
  (* re-adding a resident key is a replacement, not an eviction *)
  Plan_cache.add cache (key 20) 200;
  check_int "bounded at capacity" 4 (Plan_cache.size cache);
  check_int "distinct adds - evictions = size" (Plan_cache.size cache)
    (20 - Plan_cache.evictions cache);
  check_int "every find is a hit or a miss" !finds
    (Plan_cache.hits cache + Plan_cache.misses cache);
  check_bool "just-added keys always hit" true (Plan_cache.hits cache >= 20)

(* Freshness under sharing: a reader admitted AFTER an insert completed
   must never be served a coalesced result from before that insert — the
   statement-sharing key carries the backend's statistics version, so a
   DML bump splits the flights into epochs. *)
let test_sharing_freshness_property =
  QCheck.Test.make ~count:6
    ~name:"DML racing a coalesced fan-out never serves pre-admission data"
    QCheck.(int_range 3 8)
    (fun inserts ->
      let demo = Aldsp_demo.Demo.create ~customers:4 ~db_latency:0.004 () in
      let server = demo.Aldsp_demo.Demo.server in
      Server.set_work_sharing server true;
      let customer =
        Result.get_ok
          (Database.find_table demo.Aldsp_demo.Demo.customer_db "CUSTOMER")
      in
      let module V = Sql_value in
      let completed = ref 0 and lock = Mutex.create () in
      let failure = ref None in
      let note msg =
        Mutex.lock lock;
        if !failure = None then failure := Some msg;
        Mutex.unlock lock
      in
      let writer () =
        for i = 1 to inserts do
          ignore
            (Result.get_ok
               (Table.insert customer
                  [| V.Str (Printf.sprintf "RACE%04d" i);
                     V.Str "Race";
                     V.Null;
                     V.Str (Printf.sprintf "777-00-%04d" i);
                     V.Int 86400 |]));
          Mutex.lock lock;
          completed := i;
          Mutex.unlock lock;
          Thread.delay 0.003
        done
      in
      let reader () =
        for _ = 1 to 12 do
          (* admission-time snapshot: inserts known complete before we ask *)
          let c0 =
            Mutex.lock lock;
            let c = !completed in
            Mutex.unlock lock;
            c
          in
          match Server.submit server count_query with
          | Ok [ item ] -> (
            match int_of_string_opt (Item.string_value item) with
            | Some n when n >= 4 + c0 -> ()
            | Some n ->
              note
                (Printf.sprintf
                   "served %d rows when %d inserts had already completed (floor %d)"
                   n c0 (4 + c0))
            | None -> note ("non-integer count: " ^ Item.serialize [ item ]))
          | Ok items -> note ("count returned " ^ Item.serialize items)
          | Error e -> note (Server.submit_error_to_string e)
        done
      in
      let ts =
        Thread.create writer () :: List.init 3 (fun _ -> Thread.create reader ())
      in
      List.iter Thread.join ts;
      let st = Server.stats server in
      Server.set_work_sharing server false;
      (match !failure with
      | Some msg -> QCheck.Test.fail_report msg
      | None -> ());
      if
        st.Server.st_dedup_roundtrips_saved
        <> st.Server.st_coalesced_hits + st.Server.st_batch_merges
      then
        QCheck.Test.fail_reportf
          "sharing counters unbalanced: saved=%d coalesced=%d merges=%d"
          st.Server.st_dedup_roundtrips_saved st.Server.st_coalesced_hits
          st.Server.st_batch_merges;
      true)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "concurrency"
    [ ( "cancel",
        [ Alcotest.test_case "token basics" `Quick test_cancel_basics;
          Alcotest.test_case "ambient nesting" `Quick test_cancel_ambient_nesting;
          Alcotest.test_case "interruptible sleep" `Quick
            test_cancel_sleep_interrupted ] );
      ( "pool-shutdown",
        [ Alcotest.test_case "double shutdown" `Quick test_pool_double_shutdown;
          Alcotest.test_case "shutdown with inflight work" `Quick
            test_pool_shutdown_with_inflight;
          Alcotest.test_case "concurrent shutdowns" `Quick
            test_pool_concurrent_shutdowns ] );
      ( "deadlines",
        [ Alcotest.test_case "deadline under backend latency" `Quick
            test_deadline_under_backend_latency;
          Alcotest.test_case "deadline mid fn-bea:timeout window" `Quick
            test_deadline_mid_timeout_window;
          Alcotest.test_case "fn-bea:timeout inside generous deadline" `Quick
            test_timeout_inside_generous_deadline;
          Alcotest.test_case "explicit session cancel" `Quick
            test_explicit_session_cancel ] );
      ( "admission",
        [ Alcotest.test_case "overload rejection" `Quick
            test_admission_overload_rejection;
          Alcotest.test_case "bounded queueing" `Quick test_admission_queueing;
          Alcotest.test_case "graceful drain" `Quick test_drain ] );
      ( "invalidation",
        [ Alcotest.test_case "concurrent DML never stale" `Quick
            test_concurrent_dml_never_stale;
          QCheck_alcotest.to_alcotest test_invalidation_property ] );
      ( "singleflight",
        [ Alcotest.test_case "concurrent callers coalesce" `Quick
            test_singleflight_coalesces;
          Alcotest.test_case "leader failure rebroadcast, followers retry"
            `Quick test_singleflight_leader_failure;
          Alcotest.test_case "follower cancel leaves the flight alive" `Quick
            test_singleflight_follower_cancel ] );
      ( "work-sharing",
        [ Alcotest.test_case "function-cache misses coalesce" `Quick
            test_function_cache_coalesced_miss;
          Alcotest.test_case "materialized table bounded with LRU" `Quick
            test_function_cache_materialized_bound;
          Alcotest.test_case "plan-cache add/evict balance" `Quick
            test_plan_cache_balance;
          QCheck_alcotest.to_alcotest test_sharing_freshness_property ] ) ]
