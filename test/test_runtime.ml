(* Tests for the runtime: join methods (incl. PP-k block accounting),
   streaming group-by, async/fail-over/timeout, the function cache, the
   plan cache, security filtering, and the server APIs. *)

open Aldsp_core
open Aldsp_xml
open Aldsp_relational
open Aldsp_services

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int

let ok_exn = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let err_exn = function
  | Ok _ -> Alcotest.fail "expected an error"
  | Error msg -> msg

let setup ?customers ?orders_per_customer ?service_latency ?function_cache
    ?security ?audit () =
  Aldsp_demo.Demo.create ?customers ?orders_per_customer ?service_latency
    ?function_cache ?security ?audit ()

let run demo q = ok_exn (Server.run demo.Aldsp_demo.Demo.server q)

(* ------------------------------------------------------------------ *)
(* Join methods                                                        *)

let cross_db_join demo ~k =
  (* force a specific PP-k block size via optimizer options; cost-based
     selection would override the knob, so switch it off *)
  let options =
    { Optimizer.default_options with Optimizer.ppk_k = k; cost_based = false }
  in
  let server =
    Server.create ~optimizer_options:options demo.Aldsp_demo.Demo.registry
  in
  ok_exn
    (Server.run server
       "for $c in CUSTOMER(), $x in CREDIT_CARD() where $c/CID eq $x/CID return <R>{$c/CID, $x/NUM}</R>")

let test_ppk_roundtrips_scale_with_k () =
  (* n=20 left tuples: k=5 -> 4 card-db roundtrips; k=20 -> 1 *)
  let demo = setup ~customers:20 () in
  let count_roundtrips k =
    Aldsp_demo.Demo.reset_stats demo;
    let r = cross_db_join demo ~k in
    check_int "result size stable" 20 (List.length r);
    demo.Aldsp_demo.Demo.card_db.Database.stats.Database.statements
  in
  let r5 = count_roundtrips 5 in
  let r20 = count_roundtrips 20 in
  let r1 = count_roundtrips 1 in
  check_int "k=5 -> 4 blocks" 4 r5;
  check_int "k=20 -> 1 block" 1 r20;
  check_int "k=1 -> one per tuple" 20 r1

let test_ppk_results_match_nl () =
  let demo = setup ~customers:7 () in
  let ppk = cross_db_join demo ~k:3 in
  (* nested loop reference: disable join introduction entirely *)
  let options =
    { Optimizer.default_options with Optimizer.introduce_joins = false }
  in
  let server =
    Server.create ~optimizer_options:options demo.Aldsp_demo.Demo.registry
  in
  let nl =
    ok_exn
      (Server.run server
         "for $c in CUSTOMER(), $x in CREDIT_CARD() where $c/CID eq $x/CID return <R>{$c/CID, $x/NUM}</R>")
  in
  check_bool "PP-k == NL" true (Item.serialize ppk = Item.serialize nl)

let test_streaming_group_constant_memory_shape () =
  (* the pre-clustered group operator must be streaming: consuming the
     first group must not force the whole input *)
  let demo = setup ~customers:50 ~orders_per_customer:2 () in
  let stream =
    ok_exn
      (Server.run_stream demo.Aldsp_demo.Demo.server
         "for $c in CUSTOMER() return <C>{$c/CID, for $o in ORDER_T() where $o/CID eq $c/CID return $o/OID}</C>")
  in
  (* just forcing the head must succeed *)
  match stream () with
  | Seq.Cons (_, _) -> ()
  | Seq.Nil -> Alcotest.fail "empty stream"

let test_group_fallback_sorts () =
  (* unclustered group-by still groups correctly *)
  let demo = setup ~customers:9 () in
  let r =
    run demo
      "for $c in CUSTOMER() group $c as $g by $c/LAST_NAME as $l order by $l return <G name=\"{$l}\">{count($g)}</G>"
  in
  let total =
    List.fold_left
      (fun acc item ->
        match item with
        | Item.Node n -> acc + int_of_string (Node.string_value n)
        | _ -> acc)
      0 r
  in
  check_int "groups partition the input" 9 total

(* ------------------------------------------------------------------ *)
(* Async / fail-over / timeout (§5.4-5.6)                              *)

let test_async_overlaps_latency () =
  let demo = setup ~customers:1 ~service_latency:0.05 () in
  let q_sync =
    "<R>{getRating(<getRating><lName>{\"a\"}</lName><ssn>{\"1\"}</ssn></getRating>), \
     getRating(<getRating><lName>{\"b\"}</lName><ssn>{\"2\"}</ssn></getRating>), \
     getRating(<getRating><lName>{\"c\"}</lName><ssn>{\"3\"}</ssn></getRating>)}</R>"
  in
  let q_async =
    "<R>{fn-bea:async(getRating(<getRating><lName>{\"a\"}</lName><ssn>{\"1\"}</ssn></getRating>)), \
     fn-bea:async(getRating(<getRating><lName>{\"b\"}</lName><ssn>{\"2\"}</ssn></getRating>)), \
     fn-bea:async(getRating(<getRating><lName>{\"c\"}</lName><ssn>{\"3\"}</ssn></getRating>))}</R>"
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let t_sync, r_sync = time (fun () -> run demo q_sync) in
  let t_async, r_async = time (fun () -> run demo q_async) in
  check_bool "same results" true
    (Item.serialize r_sync = Item.serialize r_async);
  check_bool "sync pays 3 latencies" true (t_sync >= 0.14);
  check_bool "async overlaps" true (t_async < t_sync /. 1.5)

let test_fail_over_to_alternate () =
  let demo = setup ~customers:2 () in
  Web_service.set_unavailable demo.Aldsp_demo.Demo.rating_service true;
  let r =
    run demo
      "fn-bea:fail-over(fn:data(getRating(<getRating><lName>{\"x\"}</lName><ssn>{\"9\"}</ssn></getRating>)/getRatingResult), 0)"
  in
  check_bool "alternate returned" true
    (Item.equal_sequence r [ Item.integer 0 ]);
  Web_service.set_unavailable demo.Aldsp_demo.Demo.rating_service false;
  let r2 =
    run demo
      "fn-bea:fail-over(fn:data(getRating(<getRating><lName>{\"x\"}</lName><ssn>{\"9\"}</ssn></getRating>)/getRatingResult), 0)"
  in
  check_bool "primary when healthy" true (r2 <> [ Item.integer 0 ])

let test_fail_over_empty_partial_result () =
  (* "if a partial result is desired, the empty sequence can be returned as
     the alternate" *)
  let demo = setup ~customers:2 () in
  Web_service.set_unavailable demo.Aldsp_demo.Demo.rating_service true;
  let r =
    run demo
      "<P>{fn-bea:fail-over(getRating(<getRating><lName>{\"x\"}</lName><ssn>{\"9\"}</ssn></getRating>), ())}</P>"
  in
  check_bool "empty partial" true (Item.serialize r = "<P/>")

let test_timeout_slow_source () =
  let demo = setup ~customers:1 ~service_latency:0.2 () in
  let q =
    "fn-bea:timeout(fn:data(getRating(<getRating><lName>{\"x\"}</lName><ssn>{\"9\"}</ssn></getRating>)/getRatingResult), 30, -1)"
  in
  let r = run demo q in
  check_bool "timed out to alternate" true
    (Item.equal_sequence r [ Item.integer (-1) ]);
  (* generous budget: primary completes *)
  demo.Aldsp_demo.Demo.rating_service.Web_service.latency <- 0.0;
  let r2 =
    run demo
      "fn-bea:timeout(fn:data(getRating(<getRating><lName>{\"x\"}</lName><ssn>{\"9\"}</ssn></getRating>)/getRatingResult), 500, -1)"
  in
  check_bool "primary result" true (r2 <> [ Item.integer (-1) ])

let test_timeout_failure_also_fails_over () =
  let demo = setup ~customers:1 () in
  Web_service.set_unavailable demo.Aldsp_demo.Demo.rating_service true;
  let r =
    run demo
      "fn-bea:timeout(fn:data(getRating(<getRating><lName>{\"x\"}</lName><ssn>{\"9\"}</ssn></getRating>)/getRatingResult), 200, -1)"
  in
  check_bool "failure within window fails over" true
    (Item.equal_sequence r [ Item.integer (-1) ])

(* ------------------------------------------------------------------ *)
(* Function cache (§5.5)                                               *)

let make_cache ?clock () =
  let cache_db = Database.create "CacheDB" in
  Function_cache.create ?clock cache_db

let test_function_cache_hits () =
  let now = ref 0. in
  let cache = make_cache ~clock:(fun () -> !now) () in
  let demo = setup ~customers:3 ~function_cache:cache () in
  let name = Qname.make ~uri:"fn" "getCustomerNames" in
  Metadata.set_cacheable demo.Aldsp_demo.Demo.registry name true;
  Function_cache.enable cache name ~ttl_seconds:60.;
  let r1 = ok_exn (Server.call demo.Aldsp_demo.Demo.server name []) in
  check_int "first call misses" 1 (Function_cache.misses cache);
  Aldsp_demo.Demo.reset_stats demo;
  let r2 = ok_exn (Server.call demo.Aldsp_demo.Demo.server name []) in
  check_int "second call hits" 1 (Function_cache.hits cache);
  check_bool "same result" true (Item.serialize r1 = Item.serialize r2);
  (* the backing source is NOT touched on a hit *)
  check_int "no customer-db statement" 0
    demo.Aldsp_demo.Demo.customer_db.Database.stats.Database.statements;
  (* TTL expiry forces recompute *)
  now := 120.;
  ignore (ok_exn (Server.call demo.Aldsp_demo.Demo.server name []));
  check_int "stale entry missed" 2 (Function_cache.misses cache)

let test_function_cache_requires_designer_permission () =
  let cache = make_cache () in
  let demo = setup ~customers:3 ~function_cache:cache () in
  let name = Qname.make ~uri:"fn" "getCustomerNames" in
  (* enabled administratively but NOT designer-allowed: no caching *)
  Function_cache.enable cache name ~ttl_seconds:60.;
  ignore (ok_exn (Server.call demo.Aldsp_demo.Demo.server name []));
  ignore (ok_exn (Server.call demo.Aldsp_demo.Demo.server name []));
  check_int "no hits" 0 (Function_cache.hits cache)

let test_function_cache_args_distinguish () =
  let cache = make_cache () in
  let demo = setup ~customers:3 ~function_cache:cache () in
  let name = Qname.make ~uri:"fn" "getProfileByID" in
  Metadata.set_cacheable demo.Aldsp_demo.Demo.registry name true;
  Function_cache.enable cache name ~ttl_seconds:60.;
  let r1 =
    ok_exn
      (Server.call demo.Aldsp_demo.Demo.server name [ [ Item.string "CUST0001" ] ])
  in
  let r2 =
    ok_exn
      (Server.call demo.Aldsp_demo.Demo.server name [ [ Item.string "CUST0002" ] ])
  in
  check_bool "different args, different results" true
    (Item.serialize r1 <> Item.serialize r2);
  check_int "both missed" 2 (Function_cache.misses cache)

(* ------------------------------------------------------------------ *)
(* Plan cache                                                          *)

let test_plan_cache () =
  let demo = setup ~customers:3 () in
  let q = "for $c in CUSTOMER() return $c/CID" in
  ignore (run demo q);
  ignore (run demo q);
  ignore (run demo q);
  check_bool "hits" true (Server.plan_cache_hits demo.Aldsp_demo.Demo.server >= 2)

let test_plan_cache_lru () =
  let key q =
    { Plan_cache.k_query = q; k_options = "opts"; k_generation = 1;
      k_stats = 0 }
  in
  let cache = Plan_cache.create ~capacity:2 in
  Plan_cache.add cache (key "a") 1;
  Plan_cache.add cache (key "b") 2;
  ignore (Plan_cache.find cache (key "a"));
  Plan_cache.add cache (key "c") 3;
  (* b was least recently used *)
  check_bool "b evicted" true (Plan_cache.find cache (key "b") = None);
  check_bool "a kept" true (Plan_cache.find cache (key "a") = Some 1);
  check_int "size bounded" 2 (Plan_cache.size cache);
  (* staleness: same query under another generation misses, and the sweep
     drops old-generation entries *)
  let newer = { (key "a") with Plan_cache.k_generation = 2 } in
  check_bool "stale gen misses" true (Plan_cache.find cache newer = None);
  Plan_cache.add cache newer 4;
  Plan_cache.purge_stale cache ~generation:2 ~stats:0;
  check_int "purged to current gen" 1 (Plan_cache.size cache);
  check_bool "current kept" true (Plan_cache.find cache newer = Some 4);
  (* a data mutation moves the statistics generation; plans costed against
     the old statistics are swept the same way *)
  Plan_cache.purge_stale cache ~generation:2 ~stats:1;
  check_int "stale stats purged" 0 (Plan_cache.size cache)

(* ------------------------------------------------------------------ *)
(* Security (§7)                                                       *)

let test_function_acl () =
  let demo = setup ~customers:2 () in
  let sec = Server.security demo.Aldsp_demo.Demo.server in
  let name = Qname.make ~uri:"fn" "getProfile" in
  Security.restrict_function sec name ~roles:[ "hr" ];
  let clerk = { Security.user_name = "clerk"; roles = [ "support" ] } in
  let hr = { Security.user_name = "pat"; roles = [ "hr" ] } in
  ignore (err_exn (Server.call demo.Aldsp_demo.Demo.server ~user:clerk name []));
  ignore (ok_exn (Server.call demo.Aldsp_demo.Demo.server ~user:hr name []))

let test_element_level_filtering () =
  let demo = setup ~customers:2 () in
  let sec = Server.security demo.Aldsp_demo.Demo.server in
  Security.add_resource sec
    { Security.resource_label = "ssn-ish";
      resource_path = [ Qname.local "PROFILE"; Qname.local "RATING" ];
      allowed_roles = [ "credit" ];
      on_deny = Security.Replace (Atomic.String "***") };
  Security.add_resource sec
    { Security.resource_label = "orders";
      resource_path = [ Qname.local "PROFILE"; Qname.local "ORDERS" ];
      allowed_roles = [ "sales" ];
      on_deny = Security.Remove };
  let clerk = { Security.user_name = "clerk"; roles = [ "support" ] } in
  let r =
    ok_exn
      (Server.run demo.Aldsp_demo.Demo.server ~user:clerk
         "getProfileByID(\"CUST0001\")")
  in
  let text = Item.serialize r in
  check_bool "rating masked" true
    (let rec contains i =
       i + 16 <= String.length text
       && (String.sub text i 16 = "<RATING>***</RAT" || contains (i + 1))
     in
     contains 0);
  check_bool "orders removed" false
    (let rec contains i =
       i + 8 <= String.length text
       && (String.sub text i 8 = "<ORDERS>" || contains (i + 1))
     in
     contains 0);
  (* admin sees everything *)
  let r_admin =
    ok_exn (Server.run demo.Aldsp_demo.Demo.server "getProfileByID(\"CUST0001\")")
  in
  let t_admin = Item.serialize r_admin in
  check_bool "admin unfiltered" true
    (let rec contains i =
       i + 8 <= String.length t_admin
       && (String.sub t_admin i 8 = "<ORDERS>" || contains (i + 1))
     in
     contains 0)

let test_security_after_cache () =
  (* cache stores the unfiltered result; a restricted user still gets the
     filtered view on a cache hit (§7) *)
  let cache = make_cache () in
  let demo = setup ~customers:2 ~function_cache:cache () in
  let sec = Server.security demo.Aldsp_demo.Demo.server in
  let name = Qname.make ~uri:"fn" "getProfileByID" in
  Metadata.set_cacheable demo.Aldsp_demo.Demo.registry name true;
  Function_cache.enable cache name ~ttl_seconds:60.;
  Security.add_resource sec
    { Security.resource_label = "rating";
      resource_path = [ Qname.local "PROFILE"; Qname.local "RATING" ];
      allowed_roles = [ "credit" ];
      on_deny = Security.Remove };
  (* admin populates the cache with the full result *)
  ignore
    (ok_exn
       (Server.call demo.Aldsp_demo.Demo.server name [ [ Item.string "CUST0001" ] ]));
  let clerk = { Security.user_name = "clerk"; roles = [] } in
  let r =
    ok_exn
      (Server.call demo.Aldsp_demo.Demo.server ~user:clerk name
         [ [ Item.string "CUST0001" ] ])
  in
  check_int "served from cache" 1 (Function_cache.hits cache);
  check_bool "still filtered" false
    (let t = Item.serialize r in
     let rec contains i =
       i + 8 <= String.length t && (String.sub t i 8 = "<RATING>" || contains (i + 1))
     in
     contains 0)

let test_audit_records () =
  let audit = Audit.create ~level:Audit.Summary () in
  let demo = setup ~customers:2 ~audit () in
  ignore
    (ok_exn
       (Server.call demo.Aldsp_demo.Demo.server
          (Qname.make ~uri:"fn" "getCustomerNames")
          []));
  check_bool "service calls audited" true
    (List.exists
       (fun e -> e.Audit.category = "service-call")
       (Audit.events audit));
  (* detail level gating *)
  check_bool "summary drops detail" true
    (List.for_all (fun e -> e.Audit.detail = None) (Audit.events audit))

(* ------------------------------------------------------------------ *)
(* Server APIs                                                          *)

let test_design_time_check_reports_all () =
  let demo = setup ~customers:2 () in
  let diags =
    Server.design_time_check demo.Aldsp_demo.Demo.server
      {|declare function a:bad1() { $nope };
declare function a:bad2() { fn:no-such(1) };
declare function a:good() { 1 };|}
  in
  check_bool "multiple diagnostics" true (List.length diags >= 2);
  (* and the live registry is untouched *)
  check_bool "not registered" true
    (Metadata.find_function demo.Aldsp_demo.Demo.registry
       (Qname.make ~uri:"urn:a" "good") 0
    = None)

let test_prolog_variables () =
  let demo = setup ~customers:5 () in
  let q =
    "declare variable $threshold := 2000;\n     declare variable $label := \"CUST\";\n     for $c in CUSTOMER() where $c/SINCE gt $threshold and fn:starts-with($c/CID, $label) return $c/CID"
  in
  let r = run demo q in
  check_bool "variables usable in the body" true (List.length r > 0);
  (* and inside declared functions *)
  let q2 =
    "declare namespace my = \"urn:my\";\n     declare variable $base := 40;\n     declare function my:f($x as xs:integer) as xs:integer { $x + $base };\n     my:f(2)"
  in
  check_bool "variables usable in functions" true
    (Item.serialize (run demo q2) = "42")

let test_declarative_hints () =
  (* §9 roadmap: query-level hints tune the optimizer per compilation *)
  let demo = setup ~customers:12 () in
  let hinted =
    "(::pragma hint ppk-k=\"4\" ::)\nfor $c in CUSTOMER(), $x in CREDIT_CARD() where $c/CID eq $x/CID return <R>{$c/CID}</R>"
  in
  Aldsp_demo.Demo.reset_stats demo;
  let r = run demo hinted in
  check_int "result intact" 12 (List.length r);
  check_int "k=4 over 12 tuples -> 3 blocks" 3
    demo.Aldsp_demo.Demo.card_db.Database.stats.Database.statements;
  (* inline-views="false" keeps the view call visible in the plan *)
  let no_inline =
    "(::pragma hint inline-views=\"false\" ::)\ngetCustomerNames()"
  in
  (match Server.compile demo.Aldsp_demo.Demo.server no_inline with
  | Ok compiled -> (
    match compiled.Server.plan with
    | Cexpr.Call { fn; _ } ->
      check_bool "call preserved" true (fn.Qname.local = "getCustomerNames")
    | p -> Alcotest.failf "view inlined despite hint: %s" (Cexpr.to_string p))
  | Error _ -> Alcotest.fail "compile failed")

let test_run_stream () =
  let demo = setup ~customers:2 () in
  let stream =
    ok_exn (Server.run_stream demo.Aldsp_demo.Demo.server "getCustomerNames()")
  in
  let items = ok_exn (Aldsp_tokens.Token_stream.to_items stream) in
  check_int "two names" 2 (List.length items)

let () =
  let t name f = Alcotest.test_case name `Quick f in
  Alcotest.run "runtime"
    [ ( "joins",
        [ t "PP-k roundtrips scale with k" test_ppk_roundtrips_scale_with_k;
          t "PP-k matches NL" test_ppk_results_match_nl;
          t "streaming group" test_streaming_group_constant_memory_shape;
          t "group fallback" test_group_fallback_sorts ] );
      ( "resilience",
        [ t "async overlap" test_async_overlaps_latency;
          t "fail-over" test_fail_over_to_alternate;
          t "fail-over empty" test_fail_over_empty_partial_result;
          t "timeout slow" test_timeout_slow_source;
          t "timeout on failure" test_timeout_failure_also_fails_over ] );
      ( "function-cache",
        [ t "hit/miss/ttl" test_function_cache_hits;
          t "designer permission" test_function_cache_requires_designer_permission;
          t "args distinguish" test_function_cache_args_distinguish ] );
      ( "plan-cache",
        [ t "server reuses plans" test_plan_cache; t "LRU" test_plan_cache_lru ] );
      ( "security",
        [ t "function ACL" test_function_acl;
          t "element filtering" test_element_level_filtering;
          t "filter after cache" test_security_after_cache;
          t "audit" test_audit_records ] );
      ( "server",
        [ t "design-time check" test_design_time_check_reports_all;
          t "prolog variables" test_prolog_variables;
          t "declarative hints" test_declarative_hints;
          t "streaming API" test_run_stream ] ) ]
