(* Tests for the asynchronous source orchestration: the bounded worker
   pool, pipelined PP-k prefetch (determinism across depths and pool
   sizes), concurrent independent let-bound source calls, the
   condition-variable await_timeout, and concurrency safety of the
   function cache. *)

open Aldsp_core
open Aldsp_xml
open Aldsp_relational

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int
let check_string = Alcotest.check Alcotest.string

let ok_exn = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

(* ------------------------------------------------------------------ *)
(* batch_seq                                                           *)

let blocks k l = List.of_seq (Seq.map Array.of_list (Eval.batch_seq k (List.to_seq l)))

let test_batch_seq_edges () =
  check_int "empty input -> no blocks" 0 (List.length (blocks 3 []));
  check_bool "k=1 -> singletons" true
    (blocks 1 [ 1; 2; 3 ] = [ [| 1 |]; [| 2 |]; [| 3 |] ]);
  check_bool "k > input -> one short block" true
    (blocks 10 [ 1; 2; 3 ] = [ [| 1; 2; 3 |] ]);
  check_bool "non-multiple length -> short last block" true
    (blocks 2 [ 1; 2; 3; 4; 5 ] = [ [| 1; 2 |]; [| 3; 4 |]; [| 5 |] ]);
  check_bool "k=0 treated as 1" true (blocks 0 [ 1; 2 ] = [ [| 1 |]; [| 2 |] ]);
  check_bool "negative k treated as 1" true
    (blocks (-4) [ 1; 2 ] = [ [| 1 |]; [| 2 |] ])

let test_batch_seq_lazy () =
  (* forcing block n consumes exactly the first n*k elements *)
  let pulled = ref 0 in
  let input =
    Seq.map
      (fun i ->
        incr pulled;
        i)
      (Seq.init 100 Fun.id)
  in
  let bs = Eval.batch_seq 10 input in
  (match bs () with
  | Seq.Cons (b, _) -> check_int "first block" 10 (List.length b)
  | Seq.Nil -> Alcotest.fail "expected a block");
  check_int "only one block's worth pulled" 10 !pulled

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)

let test_pool_bound_and_completion () =
  let workers = 3 in
  let pool = Pool.create ~workers () in
  let futs =
    List.init 40 (fun i ->
        Pool.submit pool (fun () ->
            Thread.delay 0.002;
            i * i))
  in
  List.iteri
    (fun i fut -> check_int "task result" (i * i) (Pool.await pool fut))
    futs;
  let s = Pool.stats pool in
  check_int "all submitted" 40 s.Pool.st_submitted;
  check_bool "thread bound respected" true (s.Pool.st_max_busy <= workers);
  check_bool "queue drained" true (s.Pool.st_queue_depth = 0)

let test_pool_nested_await () =
  (* a task that submits and awaits further tasks must not deadlock even
     on a single-worker pool (the waiter helps drain the queue) *)
  let pool = Pool.create ~workers:1 () in
  let outer =
    Pool.submit pool (fun () ->
        let inner = List.init 5 (fun i -> Pool.submit pool (fun () -> i + 1)) in
        List.fold_left (fun acc f -> acc + Pool.await pool f) 0 inner)
  in
  check_int "nested submit/await" 15 (Pool.await pool outer)

let test_pool_exception () =
  let pool = Pool.create ~workers:2 () in
  let fut = Pool.submit pool (fun () -> failwith "boom") in
  (match Pool.await pool fut with
  | _ -> Alcotest.fail "expected the task's exception"
  | exception Failure m -> check_string "exception propagates" "boom" m);
  (* the worker survives the exception *)
  check_int "pool still works" 7 (Pool.await pool (Pool.submit pool (fun () -> 7)))

let test_pipeline_ordered () =
  let pool = Pool.create ~workers:4 () in
  (* later tasks finish first; output order must be input order *)
  let f i =
    Thread.delay (float_of_int ((17 * i) mod 5) *. 0.001);
    i * 10
  in
  List.iter
    (fun depth ->
      let out =
        List.of_seq (Pool.pipeline pool ~depth f (Seq.init 20 Fun.id))
      in
      check_bool
        (Printf.sprintf "depth %d preserves order" depth)
        true
        (out = List.init 20 (fun i -> i * 10)))
    [ 0; 1; 3; 8; 50 ];
  check_int "empty input" 0
    (List.length (List.of_seq (Pool.pipeline pool ~depth:2 f Seq.empty)))

(* ------------------------------------------------------------------ *)
(* Future.await_timeout                                                *)

let test_await_timeout () =
  let never = Future.create () in
  let t0 = Unix.gettimeofday () in
  check_bool "times out -> None" true (Future.await_timeout never 0.05 = None);
  let waited = Unix.gettimeofday () -. t0 in
  check_bool "waited about the timeout" true (waited >= 0.045 && waited < 1.0);
  let fut = Future.create () in
  let _ =
    Thread.create
      (fun () ->
        Thread.delay 0.01;
        Future.fulfill_with fut (fun () -> 42))
      ()
  in
  check_bool "resolves before the deadline" true
    (Future.await_timeout fut 5.0 = Some 42)

(* ------------------------------------------------------------------ *)
(* PP-k pipelining: byte equality as a property over random            *)
(* (k, prefetch, workers) configurations                               *)

let ppk_query =
  "for $c in CUSTOMER(), $x in CREDIT_CARD() where $c/CID eq $x/CID return <R>{$c/CID, $x/NUM}</R>"

let run_ppk demo ~k ~prefetch ~workers =
  (* the property sweeps explicit (k, prefetch) pairs; cost-based
     selection would override both knobs, so switch it off *)
  let options =
    { Optimizer.default_options with
      Optimizer.ppk_k = k;
      Optimizer.ppk_prefetch = prefetch;
      Optimizer.cost_based = false }
  in
  let pool = Pool.create ~workers () in
  let server =
    Server.create ~optimizer_options:options ~pool
      demo.Aldsp_demo.Demo.registry
  in
  let out = Item.serialize (ok_exn (Server.run server ppk_query)) in
  let stats = Pool.stats pool in
  Pool.shutdown pool;
  (out, stats)

let ppk_demo =
  lazy (Aldsp_demo.Demo.create ~customers:33 ~orders_per_customer:0 ())

let ppk_reference =
  lazy (fst (run_ppk (Lazy.force ppk_demo) ~k:1 ~prefetch:0 ~workers:1))

let ppk_config =
  QCheck.(triple (1 -- 8) (0 -- 8) (1 -- 8))

let test_ppk_byte_equality =
  QCheck.Test.make ~count:20 ~name:"ppk byte equality over random configs"
    ppk_config (fun (k, prefetch, workers) ->
      let reference = Lazy.force ppk_reference in
      let out, s = run_ppk (Lazy.force ppk_demo) ~k ~prefetch ~workers in
      if out <> reference then
        QCheck.Test.fail_reportf
          "k=%d prefetch=%d workers=%d changed the result bytes" k prefetch
          workers;
      if s.Pool.st_max_busy > workers then
        QCheck.Test.fail_reportf "pool exceeded its %d-worker bound" workers;
      (* with real prefetch depth and real blocks, the block queries must
         actually go through the pool *)
      if k >= 2 && prefetch >= 1 && s.Pool.st_submitted = 0 then
        QCheck.Test.fail_reportf
          "k=%d prefetch=%d submitted nothing to the pool" k prefetch;
      true)

let test_ppk_prefetch_hint () =
  (* the declarative hint reaches the compiled plan *)
  let demo = Aldsp_demo.Demo.create ~customers:6 ~orders_per_customer:0 () in
  let q = "(::pragma hint ppk-k=\"3\" ppk-prefetch=\"2\"::) " ^ ppk_query in
  match Server.compile demo.Aldsp_demo.Demo.server q with
  | Error ds ->
    Alcotest.failf "compile failed: %s"
      (String.concat "; " (List.map Diag.to_string ds))
  | Ok compiled ->
    let plan = Cexpr.to_string compiled.Server.plan in
    check_bool "plan names pp-3+2"
      true
      (try
         ignore (Str.search_forward (Str.regexp_string "pp-3+2") plan 0);
         true
       with Not_found -> false)

(* ------------------------------------------------------------------ *)
(* Concurrent independent let-bound source calls                        *)

let rating name ssn =
  Printf.sprintf
    "getRating(<getRating><lName>{\"%s\"}</lName><ssn>{\"%s\"}</ssn></getRating>)"
    name ssn

let test_concurrent_lets () =
  let latency = 0.04 in
  let demo = Aldsp_demo.Demo.create ~customers:1 ~service_latency:latency () in
  let q =
    Printf.sprintf
      "let $a := %s let $b := %s let $c := %s return <R>{$a/getRatingResult, $b/getRatingResult, $c/getRatingResult}</R>"
      (rating "a" "1") (rating "b" "2") (rating "c" "3")
  in
  let t0 = Unix.gettimeofday () in
  let r = ok_exn (Server.run demo.Aldsp_demo.Demo.server q) in
  let wall = Unix.gettimeofday () -. t0 in
  check_int "one result element" 1 (List.length r);
  check_int "three service calls" 3
    demo.Aldsp_demo.Demo.rating_service.Aldsp_services.Web_service.stats
      .Aldsp_services.Web_service.calls;
  (* sequential would be >= 3 x latency; overlapped is ~1 x latency *)
  check_bool
    (Printf.sprintf "independent lets overlap (%.0f ms < %.0f ms)"
       (wall *. 1000.)
       (2.2 *. latency *. 1000.))
    true
    (wall < 2.2 *. latency)

let test_dependent_lets_still_correct () =
  (* $b depends on $a, so it must see $a's value; and an unused async-ish
     let must not change results *)
  let demo = Aldsp_demo.Demo.create ~customers:2 () in
  let q =
    "let $a := 2 let $b := $a + 3 let $r := " ^ rating "x" "9"
    ^ " return <R>{$b, $r/getRatingResult}</R>"
  in
  let r = ok_exn (Server.run demo.Aldsp_demo.Demo.server q) in
  let s = Item.serialize r in
  check_bool "dependent let sees its input" true
    (try
       ignore (Str.search_forward (Str.regexp_string "5") s 0);
       true
     with Not_found -> false)

(* ------------------------------------------------------------------ *)
(* Function cache under concurrency                                    *)

let test_function_cache_hammer () =
  let cache = Function_cache.create (Database.create "CacheDB") in
  let fn = Qname.local "f" in
  Function_cache.enable cache fn ~ttl_seconds:600.;
  let threads = 8 and per_thread = 50 in
  let errors = ref 0 in
  let err_lock = Mutex.create () in
  let worker tid () =
    for i = 1 to per_thread do
      let args = [ [ Item.integer ((tid + i) mod 4) ] ] in
      let value = [ Item.integer (((tid + i) mod 4) * 100) ] in
      Function_cache.store cache fn args value;
      match Function_cache.lookup cache fn args with
      | Some got when Item.serialize got = Item.serialize value -> ()
      | Some _ | None ->
        (* a concurrent store of the same key writes the same value, so a
           fresh hit must return it *)
        Mutex.lock err_lock;
        incr errors;
        Mutex.unlock err_lock
    done
  in
  let ts = List.init threads (fun tid -> Thread.create (worker tid) ()) in
  List.iter Thread.join ts;
  check_int "no lost or torn entries" 0 !errors;
  check_int "every lookup hit" (threads * per_thread)
    (Function_cache.hits cache)

(* ------------------------------------------------------------------ *)
(* Cache counter consistency as properties: replay a random operation
   sequence against a trivial pure model and demand identical hit/miss
   counters                                                            *)

let test_function_cache_counters =
  QCheck.Test.make ~count:30
    ~name:"function-cache hit/miss counters match a pure model"
    QCheck.(list (pair (int_bound 3) bool))
    (fun ops ->
      let cache = Function_cache.create (Database.create "CounterDB") in
      let fn = Qname.local "g" in
      Function_cache.enable cache fn ~ttl_seconds:600.;
      let stored = Hashtbl.create 8 in
      let hits = ref 0 and misses = ref 0 in
      List.iter
        (fun (key, is_store) ->
          let args = [ [ Item.integer key ] ] in
          if is_store then begin
            Hashtbl.replace stored key ();
            Function_cache.store cache fn args [ Item.integer (key * 7) ]
          end
          else begin
            if Hashtbl.mem stored key then incr hits else incr misses;
            ignore (Function_cache.lookup cache fn args)
          end)
        ops;
      if Function_cache.hits cache <> !hits then
        QCheck.Test.fail_reportf "hits: cache %d, model %d"
          (Function_cache.hits cache) !hits;
      if Function_cache.misses cache <> !misses then
        QCheck.Test.fail_reportf "misses: cache %d, model %d"
          (Function_cache.misses cache) !misses;
      true)

let plan_cache_queries = [| "1"; "1 + 1"; "\"x\""; "(1, 2, 3)" |]

let test_plan_cache_counters =
  QCheck.Test.make ~count:30
    ~name:"plan-cache hit/miss counters match an LRU model"
    QCheck.(pair (1 -- 4) (list_of_size (Gen.return 25) (int_bound 3)))
    (fun (capacity, picks) ->
      let server =
        Server.create ~plan_cache_capacity:capacity (Metadata.create ())
      in
      let lru = ref [] in
      let hits = ref 0 and misses = ref 0 in
      List.iter
        (fun i ->
          let q = plan_cache_queries.(i) in
          (match Server.run server q with
          | Ok _ -> ()
          | Error e -> QCheck.Test.fail_reportf "query %S failed: %s" q e);
          if List.mem q !lru then begin
            incr hits;
            lru := q :: List.filter (fun x -> x <> q) !lru
          end
          else begin
            incr misses;
            lru := q :: !lru;
            if List.length !lru > capacity then
              lru := List.filteri (fun idx _ -> idx < capacity) !lru
          end)
        picks;
      if Server.plan_cache_hits server <> !hits then
        QCheck.Test.fail_reportf "hits: server %d, model %d (capacity %d)"
          (Server.plan_cache_hits server) !hits capacity;
      if Server.plan_cache_misses server <> !misses then
        QCheck.Test.fail_reportf "misses: server %d, model %d (capacity %d)"
          (Server.plan_cache_misses server) !misses capacity;
      true)

(* ------------------------------------------------------------------ *)
(* Server.stats                                                        *)

let test_server_stats () =
  let demo = Aldsp_demo.Demo.create ~customers:20 ~orders_per_customer:0 () in
  let obs = Observed.create () in
  let pool = Pool.create ~workers:2 () in
  let options =
    { Optimizer.default_options with
      Optimizer.ppk_k = 4;
      Optimizer.ppk_prefetch = 2;
      Optimizer.cost_based = false }
  in
  let server =
    Server.create ~optimizer_options:options ~pool ~observed:obs
      demo.Aldsp_demo.Demo.registry
  in
  ignore (ok_exn (Server.run server ppk_query));
  let s = Server.stats server in
  check_bool "roundtrips counted" true (s.Server.st_roundtrips >= 5);
  check_bool "pool saw the block queries" true
    (s.Server.st_pool.Pool.st_submitted >= 5);
  check_bool "source wall accumulated" true (s.Server.st_source_wall > 0.);
  check_bool "overlap never negative" true (s.Server.st_overlap_saved >= 0.);
  check_bool "pool bound respected" true
    (s.Server.st_pool.Pool.st_max_busy <= 2);
  check_int "plan compiled once" 1 s.Server.st_plan_cache_misses

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "async"
    [ ( "batch-seq",
        [ Alcotest.test_case "edge cases" `Quick test_batch_seq_edges;
          Alcotest.test_case "laziness" `Quick test_batch_seq_lazy ] );
      ( "pool",
        [ Alcotest.test_case "bound + completion" `Quick
            test_pool_bound_and_completion;
          Alcotest.test_case "nested await" `Quick test_pool_nested_await;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_exception;
          Alcotest.test_case "pipeline ordering" `Quick test_pipeline_ordered ] );
      ( "future",
        [ Alcotest.test_case "await_timeout" `Quick test_await_timeout ] );
      ( "ppk-pipeline",
        [ QCheck_alcotest.to_alcotest test_ppk_byte_equality;
          Alcotest.test_case "prefetch hint" `Quick test_ppk_prefetch_hint ] );
      ( "concurrent-lets",
        [ Alcotest.test_case "independent overlap" `Quick test_concurrent_lets;
          Alcotest.test_case "dependent stay correct" `Quick
            test_dependent_lets_still_correct ] );
      ( "function-cache",
        [ Alcotest.test_case "concurrent hammer" `Quick
            test_function_cache_hammer ] );
      ( "cache-counters",
        [ QCheck_alcotest.to_alcotest test_function_cache_counters;
          QCheck_alcotest.to_alcotest test_plan_cache_counters ] );
      ( "server-stats",
        [ Alcotest.test_case "visibility" `Quick test_server_stats ] ) ]
