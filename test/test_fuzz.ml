(* Bounded fixed-seed slice of the differential fuzzer (lib/check): the
   oracle comparison, scenario determinism, the planted-bug mutation
   self-test with shrinking, SQL round-trips over fixture and generated
   queries, the fault-schedule regression scenarios, the
   recoverable-failure policy, and replay of the shrunk-counterexample
   corpus. The open-ended version of the same machinery is bin/fuzz. *)

open Aldsp_check

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int
let check_string = Alcotest.check Alcotest.string

let slice_seed = 2026

(* every pool in lib/check is cached process-wide; stop them once all
   suites have run *)
let () = at_exit Oracle.shutdown_pools

(* ------------------------------------------------------------------ *)
(* Oracle slice: a bounded run of the exact scenario stream bin/fuzz
   walks, faults included                                              *)

let test_oracle_slice () =
  match Harness.run ~seed:slice_seed ~count:30 () with
  | Ok n -> check_int "all scenarios ran" 30 n
  | Error cx ->
    Alcotest.failf "counterexample:\n%s" (Harness.cx_to_string cx)

let test_determinism () =
  List.iter
    (fun index ->
      let a = Harness.scenario_of ~seed:slice_seed ~index in
      let b = Harness.scenario_of ~seed:slice_seed ~index in
      check_string
        (Printf.sprintf "query %d reproducible" index)
        (Gen.render a.Shrink.query) (Gen.render b.Shrink.query);
      check_string
        (Printf.sprintf "spec %d reproducible" index)
        (Catalog.spec_to_string a.Shrink.spec)
        (Catalog.spec_to_string b.Shrink.spec);
      check_string
        (Printf.sprintf "config %d reproducible" index)
        (Oracle.config_to_string a.Shrink.config)
        (Oracle.config_to_string b.Shrink.config))
    [ 0; 1; 7; 19; 42 ];
  (* different indices do differ (the stream is not constant) *)
  let q i = Gen.render (Harness.scenario_of ~seed:slice_seed ~index:i).Shrink.query in
  check_bool "stream is not constant" true
    (List.sort_uniq compare (List.init 10 q) |> List.length > 1)

let test_vendor_coverage () =
  (* consecutive indices cycle the catalog's main vendor through all five
     dialect printers *)
  let vendors =
    List.init 10 (fun index ->
        let s = Harness.scenario_of ~seed:slice_seed ~index in
        Catalog.vendor_to_string s.Shrink.spec.Catalog.main_vendor)
  in
  check_int "all five dialects appear" 5
    (List.length (List.sort_uniq compare vendors))

(* ------------------------------------------------------------------ *)
(* Mutation self-test: the planted dropped-Where rewrite bug must be
   caught and shrunk to a minimal counterexample                       *)

let test_mutation_caught_and_shrunk () =
  match Harness.run ~mutate:true ~with_faults:false ~seed:1 ~count:50 () with
  | Ok n ->
    Alcotest.failf "planted rewrite bug survived %d scenarios" n
  | Error cx ->
    check_bool "flagged as a mutation catch" true
      (cx.Harness.cx_kind = Harness.K_mutation);
    let query = Gen.render cx.Harness.cx_scenario.Shrink.query in
    let lines = List.length (String.split_on_char '\n' query) in
    check_bool
      (Printf.sprintf "counterexample is <= 5 lines (got %d):\n%s" lines query)
      true (lines <= 5);
    (* the dropped clause must still be present in the minimum — a
       where-free query cannot witness the bug *)
    check_bool "minimal query retains a where clause" true
      (let re = Str.regexp_string "where" in
       try ignore (Str.search_forward re query 0); true
       with Not_found -> false);
    (* and the counterexample replays: the same scenario still fails *)
    check_bool "counterexample replays" true
      (Harness.check ~mutate:true cx.Harness.cx_scenario <> None)

(* ------------------------------------------------------------------ *)
(* SQL round-trip: fixture queries on the demo schema plus the first
   generated queries of the slice stream                               *)

let fixture_queries =
  [ "for $c in CUSTOMER() where $c/CID eq \"CUST0001\" return $c/FIRST_NAME";
    "for $c in CUSTOMER(), $o in ORDER_T() where $c/CID eq $o/CID return <CO>{$c/CID, $o/OID}</CO>";
    "for $c in CUSTOMER() return <CUSTOMER>{$c/CID, for $o in ORDER_T() where $c/CID eq $o/CID return $o/OID}</CUSTOMER>";
    "for $c in CUSTOMER() return <C>{data(if ($c/CID eq \"CUST0001\") then $c/LAST_NAME else $c/SSN)}</C>";
    "for $c in CUSTOMER() group $c as $p by $c/LAST_NAME as $l return <G>{$l, count($p)}</G>";
    "for $c in CUSTOMER() group by $c/LAST_NAME as $l return $l";
    "for $c in CUSTOMER() where some $o in ORDER_T() satisfies $c/CID eq $o/CID return $c/CID";
    "for $c in CUSTOMER() return <U>{fn:upper-case($c/LAST_NAME)}</U>" ]

let test_roundtrip_fixtures () =
  let demo = Aldsp_demo.Demo.create ~customers:12 ~orders_per_customer:2 () in
  let checked =
    List.fold_left
      (fun acc q ->
        match Sql_roundtrip.check_query demo.Aldsp_demo.Demo.server q with
        | Ok n -> acc + n
        | Error e -> Alcotest.failf "round-trip failed on %s:\n%s" q e)
      0 fixture_queries
  in
  (* the CASE fixture passes the vendor-gate leg but is skipped by the
     SQL92 re-parse leg: Generic_sql92 has supports_case = false, so its
     region counts 0 *)
  check_bool
    (Printf.sprintf "fixtures exercised pushdown (%d regions)" checked)
    true (checked >= List.length fixture_queries - 1)

let test_roundtrip_generated () =
  (* same deterministic stream as the oracle slice, through the SQL
     round-trip sweep instead *)
  let checked = ref 0 in
  for index = 0 to 24 do
    let s = Harness.scenario_of ~seed:slice_seed ~index in
    let cat = Catalog.build s.Shrink.spec in
    let server = Oracle.subject_server cat s.Shrink.config in
    match Sql_roundtrip.check_query server (Gen.render s.Shrink.query) with
    | Ok n -> checked := !checked + n
    | Error e ->
      Alcotest.failf "round-trip failed on scenario %d:\n%s" index e
  done;
  check_bool
    (Printf.sprintf "generated queries exercised pushdown (%d regions)"
       !checked)
    true (!checked > 0)

(* ------------------------------------------------------------------ *)
(* Fault-schedule scenarios: the fixed §5.4–5.6 regression set plus a
   deterministic batch of randomized ones                              *)

let fault_spec =
  match (Harness.scenario_of ~seed:slice_seed ~index:0).Shrink.spec with
  | spec -> { spec with Catalog.customers = 3 }

let test_fault_scenarios () =
  List.iter
    (fun sc ->
      (* fresh catalog per scenario: schedules and counters start clean *)
      let cat = Catalog.build fault_spec in
      match sc.Fault.sc_run cat with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" sc.Fault.sc_name e)
    Fault.scenarios

let test_fault_randomized () =
  for i = 0 to 9 do
    let cat = Catalog.build fault_spec in
    let st = Random.State.make [| slice_seed; i; 0xfa17 |] in
    match Fault.run_random cat st with
    | Ok () -> ()
    | Error e -> Alcotest.failf "randomized fault scenario %d: %s" i e
  done

let test_recoverable_failure_policy () =
  (* the fail-over/timeout adaptors may catch operational failures but
     must never swallow programming errors or the control exceptions the
     evaluator steers with *)
  let open Aldsp_core in
  check_bool "Failure is recoverable" true
    (Eval.recoverable_failure (Failure "service down"));
  check_bool "Eval_error is recoverable" true
    (Eval.recoverable_failure (Eval.Eval_error "err:FODC0002"));
  check_bool "Unix_error is recoverable" true
    (Eval.recoverable_failure (Unix.Unix_error (Unix.ECONNREFUSED, "connect", "")));
  check_bool "Not_found is recoverable (adaptor lookup misses)" true
    (Eval.recoverable_failure Not_found);
  check_bool "Assert_failure is not" false
    (Eval.recoverable_failure (Assert_failure ("x", 0, 0)));
  check_bool "Out_of_memory is not" false
    (Eval.recoverable_failure Out_of_memory);
  check_bool "Stack_overflow is not" false
    (Eval.recoverable_failure Stack_overflow)

(* ------------------------------------------------------------------ *)
(* Corpus replay: previously shrunk counterexamples stay fixed         *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let corpus_files () =
  Sys.readdir "corpus" |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".txt")
  |> List.sort compare
  |> List.map (fun f -> Filename.concat "corpus" f)

let test_corpus_replay () =
  let files = corpus_files () in
  check_bool "corpus is not empty" true (files <> []);
  List.iter
    (fun path ->
      match Harness.replay_corpus (read_file path) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" path e)
    files

(* Cost-based plan selection must be invisible in results: every corpus
   entry and the head of the scenario stream re-run with [cost_based]
   forced on, compared byte-for-byte against the reference, with the
   backend index layer both on and off. *)
let test_cost_based_agrees () =
  let check_one what cat config query =
    List.iter
      (fun indexes ->
        let config =
          { config with Oracle.cost_based = true; indexes }
        in
        match Oracle.compare_query cat config query with
        | Ok () -> ()
        | Error e ->
          Alcotest.failf "%s (indexes=%b) disagrees:\n%s" what indexes e)
      [ true; false ]
  in
  List.iter
    (fun path ->
      match Harness.corpus_entry_of_string (read_file path) with
      | Error e -> Alcotest.failf "%s: %s" path e
      | Ok (spec, config, query) ->
        check_one path (Catalog.build spec) config query)
    (corpus_files ());
  for index = 0 to 19 do
    let s = Harness.scenario_of ~seed:slice_seed ~index in
    check_one
      (Printf.sprintf "scenario %d" index)
      (Catalog.build s.Shrink.spec)
      s.Shrink.config
      (Gen.render s.Shrink.query)
  done

(* The external sort must be invisible in results: every corpus entry
   and the head of the scenario stream re-run with [spill] forced on — a
   tiny row budget (Oracle.spill_budget) makes every ORDER BY and
   unclustered GROUP BY spill sorted runs to disk and merge them back —
   compared byte-for-byte against the unbounded in-memory reference. *)
let test_spill_agrees () =
  let check_one what cat config query =
    let config = { config with Oracle.spill = true } in
    match Oracle.compare_query cat config query with
    | Ok () -> ()
    | Error e -> Alcotest.failf "%s (spill forced on) disagrees:\n%s" what e
  in
  List.iter
    (fun path ->
      match Harness.corpus_entry_of_string (read_file path) with
      | Error e -> Alcotest.failf "%s: %s" path e
      | Ok (spec, config, query) ->
        check_one path (Catalog.build spec) config query)
    (corpus_files ());
  for index = 0 to 19 do
    let s = Harness.scenario_of ~seed:slice_seed ~index in
    check_one
      (Printf.sprintf "scenario %d" index)
      (Catalog.build s.Shrink.spec)
      s.Shrink.config
      (Gen.render s.Shrink.query)
  done

(* ------------------------------------------------------------------ *)
(* Concurrent serving-layer oracle: a bounded fixed-seed slice of the
   stream bin/fuzz --concurrent-sessions walks, plus an explicit
   indexes × cost-based sweep at 16 sessions                           *)

let test_concurrent_slice () =
  match Harness.run_concurrent ~sessions:16 ~seed:slice_seed ~count:6 () with
  | Ok n -> check_int "all concurrent scenarios ran" 6 n
  | Error cx ->
    Alcotest.failf "concurrent counterexample:\n%s" (Harness.cx_to_string cx)

let test_concurrent_matrix () =
  (* 16 sessions against one shared server must stay byte-identical to
     the serial reference whichever way the backend index layer and
     cost-based selection are switched *)
  let s = Harness.scenario_of ~seed:slice_seed ~index:3 in
  let queries = Harness.concurrent_queries ~seed:slice_seed ~index:3 ~count:16 s in
  List.iter
    (fun (indexes, cost_based) ->
      let cat = Catalog.build s.Shrink.spec in
      let config = { s.Shrink.config with Oracle.indexes; cost_based } in
      match Oracle.compare_concurrent cat config ~sessions:16 queries with
      | Ok () -> ()
      | Error e ->
        Alcotest.failf "indexes=%b cost=%b diverged under 16 sessions:\n%s"
          indexes cost_based e)
    [ (true, true); (true, false); (false, true); (false, false) ]

let () =
  Alcotest.run "fuzz"
    [ ( "oracle",
        [ Alcotest.test_case "bounded slice" `Slow test_oracle_slice;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "vendor coverage" `Quick test_vendor_coverage ] );
      ( "mutation",
        [ Alcotest.test_case "caught and shrunk" `Slow
            test_mutation_caught_and_shrunk ] );
      ( "sql-roundtrip",
        [ Alcotest.test_case "fixtures" `Quick test_roundtrip_fixtures;
          Alcotest.test_case "generated" `Slow test_roundtrip_generated ] );
      ( "faults",
        [ Alcotest.test_case "regression set" `Slow test_fault_scenarios;
          Alcotest.test_case "randomized" `Slow test_fault_randomized;
          Alcotest.test_case "recoverable-failure policy" `Quick
            test_recoverable_failure_policy ] );
      ( "corpus",
        [ Alcotest.test_case "replay" `Quick test_corpus_replay;
          Alcotest.test_case "cost-based agrees" `Slow
            test_cost_based_agrees;
          Alcotest.test_case "spill agrees" `Slow test_spill_agrees ] );
      ( "concurrent",
        [ Alcotest.test_case "bounded slice" `Slow test_concurrent_slice;
          Alcotest.test_case "indexes x cost-based matrix" `Slow
            test_concurrent_matrix ] ) ]
