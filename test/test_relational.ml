(* Tests for the relational substrate: values & 3VL, tables, the SQL
   parser, the executor, dialect printing, DML, and transactions. *)

open Aldsp_relational
module V = Sql_value

let check = Alcotest.check
let check_bool = check Alcotest.bool
let check_int = check Alcotest.int
let check_string = check Alcotest.string

let ok_exn = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let err_exn = function
  | Ok _ -> Alcotest.fail "expected an error"
  | Error msg -> msg

(* Demo database mirroring the paper's running example. *)
let make_db () =
  let db = Database.create ~vendor:Database.Oracle "CustomerDB" in
  let customer =
    Table.create ~primary_key:[ "CID" ] "CUSTOMER"
      [ Table.column ~nullable:false "CID" Table.T_varchar;
        Table.column ~nullable:false "LAST_NAME" Table.T_varchar;
        Table.column "FIRST_NAME" Table.T_varchar;
        Table.column "SINCE" Table.T_int ]
  in
  let order_ =
    Table.create ~primary_key:[ "OID" ]
      ~foreign_keys:
        [ { Table.fk_columns = [ "CID" ];
            references_table = "CUSTOMER";
            references_columns = [ "CID" ] } ]
      "ORDER_T"
      [ Table.column ~nullable:false "OID" Table.T_int;
        Table.column ~nullable:false "CID" Table.T_varchar;
        Table.column "AMOUNT" Table.T_decimal ]
  in
  Database.add_table db customer;
  Database.add_table db order_;
  let ins t row = ok_exn (Table.insert t row) in
  ins customer [| V.Str "C1"; V.Str "Jones"; V.Str "Ann"; V.Int 1000 |];
  ins customer [| V.Str "C2"; V.Str "Smith"; V.Str "Bob"; V.Int 2000 |];
  ins customer [| V.Str "C3"; V.Str "Jones"; V.Null; V.Int 3000 |];
  ins order_ [| V.Int 1; V.Str "C1"; V.Float 10. |];
  ins order_ [| V.Int 2; V.Str "C1"; V.Float 20. |];
  ins order_ [| V.Int 3; V.Str "C2"; V.Float 30. |];
  db

let run db sql =
  match ok_exn (Sql_parser.parse sql) with
  | Sql_ast.Query s -> ok_exn (Sql_exec.query db s)
  | Sql_ast.Dml _ -> Alcotest.fail "expected a query"

let run_dml db ?params sql =
  match ok_exn (Sql_parser.parse sql) with
  | Sql_ast.Dml d -> ok_exn (Sql_exec.execute_dml db ?params d)
  | Sql_ast.Query _ -> Alcotest.fail "expected DML"

(* ------------------------------------------------------------------ *)
(* Values                                                              *)

let test_three_valued_logic () =
  check_bool "null = null is unknown" true
    (V.truth_of_comparison (( = ) 0) V.Null V.Null = V.Unknown);
  check_bool "unknown AND false = false" true
    (V.and_ V.Unknown V.False = V.False);
  check_bool "unknown OR true = true" true (V.or_ V.Unknown V.True = V.True);
  check_bool "not unknown" true (V.not_ V.Unknown = V.Unknown);
  check_bool "grouping equality treats nulls equal" true (V.equal V.Null V.Null)

let test_value_conversions () =
  check_bool "null -> missing" true (V.to_atomic V.Null = None);
  check_bool "int" true
    (V.to_atomic (V.Int 3) = Some (Aldsp_xml.Atomic.Integer 3));
  check_bool "atomic roundtrip" true
    (V.of_atomic (Aldsp_xml.Atomic.String "x") = V.Str "x");
  check_string "literal escaping" "'O''Brien'" (V.to_string (V.Str "O'Brien"))

(* ------------------------------------------------------------------ *)
(* Table constraints                                                   *)

let test_table_constraints () =
  let t =
    Table.create ~primary_key:[ "K" ] "T"
      [ Table.column ~nullable:false "K" Table.T_int;
        Table.column "S" Table.T_varchar ]
  in
  ignore (ok_exn (Table.insert t [| V.Int 1; V.Str "a" |]));
  ignore (err_exn (Table.insert t [| V.Int 1; V.Str "dup" |]));
  ignore (err_exn (Table.insert t [| V.Null; V.Str "null key" |]));
  ignore (err_exn (Table.insert t [| V.Str "wrong type"; V.Null |]));
  ignore (err_exn (Table.insert t [| V.Int 2 |]));
  check_int "rows" 1 (Table.row_count t)

(* ------------------------------------------------------------------ *)
(* Executor                                                            *)

let test_select_project () =
  let db = make_db () in
  let r = run db "SELECT c.FIRST_NAME FROM CUSTOMER c WHERE c.CID = 'C1'" in
  check_int "one row" 1 (List.length r.Sql_exec.rows);
  check_bool "value" true ((List.hd r.Sql_exec.rows).(0) = V.Str "Ann")

let test_where_null_filtered () =
  let db = make_db () in
  (* C3 has NULL first name: comparison yields unknown -> filtered out *)
  let r = run db "SELECT c.CID FROM CUSTOMER c WHERE c.FIRST_NAME <> 'Ann'" in
  check_int "only C2" 1 (List.length r.Sql_exec.rows)

let test_inner_join () =
  let db = make_db () in
  let r =
    run db
      "SELECT c.CID, o.OID FROM CUSTOMER c JOIN ORDER_T o ON c.CID = o.CID"
  in
  check_int "three pairs" 3 (List.length r.Sql_exec.rows)

let test_left_outer_join () =
  let db = make_db () in
  let r =
    run db
      "SELECT c.CID, o.OID FROM CUSTOMER c LEFT OUTER JOIN ORDER_T o ON c.CID = o.CID ORDER BY c.CID"
  in
  check_int "3 + null-extended C3" 4 (List.length r.Sql_exec.rows);
  let last = List.nth r.Sql_exec.rows 3 in
  check_bool "C3 null extended" true (last.(1) = V.Null)

let test_group_by_aggregates () =
  let db = make_db () in
  let r =
    run db
      "SELECT c.LAST_NAME, COUNT(*) AS n FROM CUSTOMER c GROUP BY c.LAST_NAME ORDER BY c.LAST_NAME"
  in
  check_int "two groups" 2 (List.length r.Sql_exec.rows);
  let jones = List.hd r.Sql_exec.rows in
  check_bool "Jones x2" true (jones.(0) = V.Str "Jones" && jones.(1) = V.Int 2)

let test_outer_join_aggregation () =
  (* Table 2(g): per-customer order count, zero included *)
  let db = make_db () in
  let r =
    run db
      "SELECT c.CID, COUNT(o.CID) AS n FROM CUSTOMER c LEFT OUTER JOIN ORDER_T o ON c.CID = o.CID GROUP BY c.CID ORDER BY c.CID"
  in
  check_int "three customers" 3 (List.length r.Sql_exec.rows);
  let counts = List.map (fun row -> row.(1)) r.Sql_exec.rows in
  check_bool "counts 2,1,0" true (counts = [ V.Int 2; V.Int 1; V.Int 0 ])

let test_aggregates_skip_nulls () =
  let db = make_db () in
  let r =
    run db "SELECT COUNT(c.FIRST_NAME) AS n, COUNT(*) AS m FROM CUSTOMER c"
  in
  let row = List.hd r.Sql_exec.rows in
  check_bool "count col skips null" true (row.(0) = V.Int 2);
  check_bool "count star does not" true (row.(1) = V.Int 3)

let test_sum_avg_min_max () =
  let db = make_db () in
  let r =
    run db
      "SELECT SUM(o.AMOUNT) AS s, AVG(o.AMOUNT) AS a, MIN(o.OID) AS mn, MAX(o.OID) AS mx FROM ORDER_T o"
  in
  let row = List.hd r.Sql_exec.rows in
  check_bool "sum" true (row.(0) = V.Float 60.);
  check_bool "avg" true (row.(1) = V.Float 20.);
  check_bool "min" true (row.(2) = V.Int 1);
  check_bool "max" true (row.(3) = V.Int 3)

let test_distinct () =
  let db = make_db () in
  let r = run db "SELECT DISTINCT c.LAST_NAME FROM CUSTOMER c" in
  check_int "two distinct names" 2 (List.length r.Sql_exec.rows)

let test_exists_semijoin () =
  (* Table 2(h) *)
  let db = make_db () in
  let r =
    run db
      "SELECT c.CID FROM CUSTOMER c WHERE EXISTS(SELECT 1 AS one FROM ORDER_T o WHERE c.CID = o.CID) ORDER BY c.CID"
  in
  check_int "customers with orders" 2 (List.length r.Sql_exec.rows)

let test_case_expression () =
  (* Table 1(d) *)
  let db = make_db () in
  let r =
    run db
      "SELECT CASE WHEN c.CID = 'C1' THEN c.FIRST_NAME ELSE c.LAST_NAME END AS v FROM CUSTOMER c ORDER BY c.CID"
  in
  let values = List.map (fun row -> row.(0)) r.Sql_exec.rows in
  check_bool "case per row" true
    (values = [ V.Str "Ann"; V.Str "Smith"; V.Str "Jones" ])

let test_scalar_subquery_and_in () =
  let db = make_db () in
  let r =
    run db
      "SELECT c.CID FROM CUSTOMER c WHERE c.CID IN (SELECT o.CID FROM ORDER_T o) ORDER BY c.CID"
  in
  check_int "in-select" 2 (List.length r.Sql_exec.rows);
  let r2 =
    run db
      "SELECT (SELECT COUNT(*) AS n FROM ORDER_T o WHERE o.CID = c.CID) AS cnt FROM CUSTOMER c WHERE c.CID = 'C1'"
  in
  check_bool "correlated scalar" true ((List.hd r2.Sql_exec.rows).(0) = V.Int 2)

let test_order_by_desc_and_window () =
  let db = make_db () in
  let select =
    { (ok_exn (Sql_parser.parse_select
                 "SELECT o.OID FROM ORDER_T o ORDER BY o.OID DESC"))
      with Sql_ast.window = Some { Sql_ast.start = 2; count = Some 1 } }
  in
  let r = ok_exn (Sql_exec.query db select) in
  check_int "windowed" 1 (List.length r.Sql_exec.rows);
  check_bool "second row of desc order" true
    ((List.hd r.Sql_exec.rows).(0) = V.Int 2)

let test_select_star () =
  let db = make_db () in
  let r = run db "SELECT * FROM ORDER_T o WHERE o.OID = 1" in
  check_int "all columns" 3 (List.length r.Sql_exec.columns)

let test_params () =
  let db = make_db () in
  let s = ok_exn (Sql_parser.parse_select "SELECT c.CID FROM CUSTOMER c WHERE c.SINCE > ?") in
  let r = ok_exn (Sql_exec.query db ~params:[| V.Int 1500 |] s) in
  check_int "two customers" 2 (List.length r.Sql_exec.rows)

let test_disjunctive_param_query () =
  (* the PP-k request shape: WHERE (c = ?) OR (c = ?) ... *)
  let db = make_db () in
  let s =
    ok_exn
      (Sql_parser.parse_select
         "SELECT o.OID FROM ORDER_T o WHERE o.CID = ? OR o.CID = ?")
  in
  let r = ok_exn (Sql_exec.query db ~params:[| V.Str "C1"; V.Str "C2" |] s) in
  check_int "all three orders" 3 (List.length r.Sql_exec.rows)

let test_string_functions_like () =
  let db = make_db () in
  let r =
    run db
      "SELECT UPPER(c.FIRST_NAME) AS u FROM CUSTOMER c WHERE c.LAST_NAME LIKE 'Jo%' AND c.FIRST_NAME IS NOT NULL"
  in
  check_bool "upper+like" true ((List.hd r.Sql_exec.rows).(0) = V.Str "ANN")

let test_derived_table () =
  let db = make_db () in
  let r =
    run db
      "SELECT t.n AS n FROM (SELECT COUNT(*) AS n FROM ORDER_T o) t"
  in
  check_bool "derived" true ((List.hd r.Sql_exec.rows).(0) = V.Int 3)

let test_having () =
  let db = make_db () in
  let r =
    run db
      "SELECT c.LAST_NAME, COUNT(*) AS n FROM CUSTOMER c GROUP BY c.LAST_NAME HAVING COUNT(*) > 1"
  in
  check_int "only Jones" 1 (List.length r.Sql_exec.rows)

let test_error_cases () =
  let db = make_db () in
  (match Sql_parser.parse "SELECT c.NOPE FROM CUSTOMER c" with
  | Ok (Sql_ast.Query s) -> ignore (err_exn (Sql_exec.query db s))
  | _ -> Alcotest.fail "parse failed");
  (match Sql_parser.parse "SELECT x.y FROM NO_TABLE x" with
  | Ok (Sql_ast.Query s) -> ignore (err_exn (Sql_exec.query db s))
  | _ -> Alcotest.fail "parse failed");
  ignore (err_exn (Sql_parser.parse "SELECT FROM"));
  ignore (err_exn (Sql_parser.parse "SELECT 1 AS x FROM T WHERE"))

(* ------------------------------------------------------------------ *)
(* DML + transactions                                                  *)

let test_dml_roundtrip () =
  let db = make_db () in
  check_int "insert" 1
    (run_dml db
       "INSERT INTO ORDER_T (OID, CID, AMOUNT) VALUES (4, 'C3', 5.5)");
  check_int "update" 2
    (run_dml db "UPDATE ORDER_T SET AMOUNT = 99.0 WHERE CID = 'C1'");
  let r = run db "SELECT o.AMOUNT FROM ORDER_T o WHERE o.OID = 1" in
  check_bool "updated" true ((List.hd r.Sql_exec.rows).(0) = V.Float 99.);
  check_int "delete" 1 (run_dml db "DELETE FROM ORDER_T WHERE OID = 4")

let test_optimistic_update_where () =
  (* update conditioned on original values, as submit generates (§6) *)
  let db = make_db () in
  check_int "matches original value" 1
    (run_dml db
       "UPDATE CUSTOMER SET LAST_NAME = 'Smith' WHERE CID = 'C1' AND LAST_NAME = 'Jones'");
  check_int "stale original misses" 0
    (run_dml db
       "UPDATE CUSTOMER SET LAST_NAME = 'Again' WHERE CID = 'C1' AND LAST_NAME = 'Jones'")

let test_transaction_rollback () =
  let db = make_db () in
  let result =
    Txn.with_transaction db (fun () ->
        ignore (run_dml db "DELETE FROM ORDER_T WHERE OID = 1");
        Error "boom")
  in
  ignore (err_exn result);
  check_int "rolled back" 3
    (List.length (run db "SELECT o.OID FROM ORDER_T o").Sql_exec.rows)

let test_two_phase_commit () =
  let db1 = make_db () in
  let db2 = make_db () in
  let outcome =
    Txn.two_phase_commit ~participants:[ db1; db2 ] ~work:(fun () ->
        ignore (run_dml db1 "UPDATE CUSTOMER SET LAST_NAME = 'A' WHERE CID = 'C1'");
        ignore (run_dml db2 "UPDATE CUSTOMER SET LAST_NAME = 'B' WHERE CID = 'C1'");
        Error "second source failed")
  in
  (match outcome with
  | Txn.Rolled_back _ -> ()
  | Txn.Committed -> Alcotest.fail "should have rolled back");
  let name db =
    (List.hd (run db "SELECT c.LAST_NAME FROM CUSTOMER c WHERE c.CID = 'C1'").Sql_exec.rows).(0)
  in
  check_bool "db1 restored" true (name db1 = V.Str "Jones");
  check_bool "db2 restored" true (name db2 = V.Str "Jones")

let test_stats_accounting () =
  let db = make_db () in
  Database.reset_stats db;
  ignore (run db "SELECT c.CID FROM CUSTOMER c");
  ignore (run db "SELECT o.OID FROM ORDER_T o");
  check_int "two roundtrips" 2 db.Database.stats.Database.statements;
  check_int "rows shipped" 6 db.Database.stats.Database.rows_shipped

(* ------------------------------------------------------------------ *)
(* Dialect printing                                                    *)

let parse_select_exn s = ok_exn (Sql_parser.parse_select s)

let test_print_simple_select_paper_shape () =
  (* Table 1(a) *)
  let s =
    parse_select_exn
      "SELECT t1.FIRST_NAME AS c1 FROM CUSTOMER t1 WHERE t1.CID = 'CUST001'"
  in
  check_string "pattern (a)"
    "SELECT t1.\"FIRST_NAME\" AS c1 FROM \"CUSTOMER\" t1 WHERE t1.\"CID\" = 'CUST001'"
    (Sql_print.select_to_string Database.Oracle s)

let test_print_outer_join () =
  let s =
    parse_select_exn
      "SELECT t1.CID AS c1, t2.OID AS c2 FROM CUSTOMER t1 LEFT OUTER JOIN ORDER_T t2 ON t1.CID = t2.CID"
  in
  check_string "pattern (c)"
    "SELECT t1.\"CID\" AS c1, t2.\"OID\" AS c2 FROM \"CUSTOMER\" t1 LEFT OUTER JOIN \"ORDER_T\" t2 ON t1.\"CID\" = t2.\"CID\""
    (Sql_print.select_to_string Database.Oracle s)

let test_print_case_group () =
  let s =
    parse_select_exn
      "SELECT t1.LAST_NAME AS c1, COUNT(*) AS c2 FROM CUSTOMER t1 GROUP BY t1.LAST_NAME"
  in
  check_string "pattern (e)"
    "SELECT t1.\"LAST_NAME\" AS c1, COUNT(*) AS c2 FROM \"CUSTOMER\" t1 GROUP BY t1.\"LAST_NAME\""
    (Sql_print.select_to_string Database.Db2 s)

let test_print_window_dialects () =
  let base =
    { (parse_select_exn
         "SELECT t1.CID AS c1 FROM CUSTOMER t1 ORDER BY t1.CID")
      with Sql_ast.window = Some { Sql_ast.start = 10; count = Some 10 } }
  in
  let oracle = Sql_print.select_to_string Database.Oracle base in
  check_bool "oracle uses ROWNUM wrapper" true
    (let re = Str.regexp_string "ROWNUM" in
     try ignore (Str.search_forward re oracle 0); true with Not_found -> false);
  (* SQL92 cannot push a window *)
  (try
     ignore (Sql_print.select_to_string Database.Generic_sql92 base);
     Alcotest.fail "SQL92 accepted a window"
   with Sql_print.Unsupported _ -> ());
  (* top-1 page on SQL Server uses TOP *)
  let top =
    { base with Sql_ast.window = Some { Sql_ast.start = 1; count = Some 5 } }
  in
  let mssql = Sql_print.select_to_string Database.Sql_server top in
  check_bool "TOP" true
    (try ignore (Str.search_forward (Str.regexp_string "TOP 5") mssql 0); true
     with Not_found -> false)

let test_print_concat_operator () =
  let s = ok_exn (Sql_parser.parse_expr "a.X || a.Y") in
  check_string "oracle ||" "a.\"X\" || a.\"Y\""
    (Sql_print.expr_to_string Database.Oracle s);
  check_string "mssql +" "a.\"X\" + a.\"Y\""
    (Sql_print.expr_to_string Database.Sql_server s)

let test_print_parse_roundtrip () =
  (* printing then reparsing yields an equivalent query (executes same) *)
  let db = make_db () in
  let sqls =
    [ "SELECT c.CID, o.OID FROM CUSTOMER c JOIN ORDER_T o ON c.CID = o.CID WHERE o.AMOUNT > 15.0 ORDER BY o.OID DESC";
      "SELECT c.LAST_NAME, COUNT(*) AS n FROM CUSTOMER c GROUP BY c.LAST_NAME HAVING COUNT(*) > 0";
      "SELECT DISTINCT c.LAST_NAME FROM CUSTOMER c" ]
  in
  List.iter
    (fun sql ->
      let s = parse_select_exn sql in
      let printed = Sql_print.select_to_string Database.Generic_sql92 s in
      let s2 = parse_select_exn printed in
      let r1 = ok_exn (Sql_exec.query db s) in
      let r2 = ok_exn (Sql_exec.query db s2) in
      check_bool ("roundtrip: " ^ sql) true (r1.Sql_exec.rows = r2.Sql_exec.rows))
    sqls

(* ------------------------------------------------------------------ *)
(* Indexing and access-path selection                                  *)

let contains hay needle =
  try
    ignore (Str.search_forward (Str.regexp_string needle) hay 0);
    true
  with Not_found -> false

let test_auto_indexes () =
  let db = make_db () in
  let customer = ok_exn (Database.find_table db "CUSTOMER") in
  let order_ = ok_exn (Database.find_table db "ORDER_T") in
  check_bool "customer pk index" true (Table.pk_index customer <> None);
  check_bool "order fk index on CID" true
    (Table.find_index order_ [ "CID" ] <> None);
  check_int "customer: pk only" 1 (List.length (Table.indexes customer));
  check_int "order: pk + fk" 2 (List.length (Table.indexes order_))

let test_create_index () =
  let db = make_db () in
  let customer = ok_exn (Database.find_table db "CUSTOMER") in
  ok_exn (Table.create_index customer ~name:"cust_name" [ "LAST_NAME" ]);
  check_bool "registered" true
    (Table.find_index customer [ "LAST_NAME" ] <> None);
  ignore (err_exn (Table.create_index customer ~name:"cust_name" [ "CID" ]));
  ignore (err_exn (Table.create_index customer ~name:"bad" [ "NOPE" ]));
  Database.reset_stats db;
  let r = run db "SELECT c.CID FROM CUSTOMER c WHERE c.LAST_NAME = 'Jones'" in
  check_int "two Joneses" 2 (List.length r.Sql_exec.rows);
  check_int "served by the new index" 0
    db.Database.stats.Database.full_scans

let test_index_access_path () =
  let db = make_db () in
  Database.reset_stats db;
  let r = run db "SELECT c.FIRST_NAME FROM CUSTOMER c WHERE c.CID = 'C1'" in
  check_bool "value" true ((List.hd r.Sql_exec.rows).(0) = V.Str "Ann");
  check_int "no full scan" 0 db.Database.stats.Database.full_scans;
  check_int "one probe" 1 db.Database.stats.Database.index_lookups;
  check_bool "explain shows the probe" true
    (contains (Database.explain_last db) "index probe");
  Database.set_use_indexes db false;
  Database.reset_stats db;
  let r2 = run db "SELECT c.FIRST_NAME FROM CUSTOMER c WHERE c.CID = 'C1'" in
  Database.set_use_indexes db true;
  check_bool "same rows either way" true (r.Sql_exec.rows = r2.Sql_exec.rows);
  check_int "scan path scans" 1 db.Database.stats.Database.full_scans;
  check_bool "explain shows the scan" true
    (contains (Database.explain_last db) "scan CUSTOMER")

let test_join_algorithms () =
  let db = make_db () in
  (* right side carries the fk index on CID: index nested loop *)
  Database.reset_stats db;
  let r =
    run db "SELECT c.CID, o.OID FROM CUSTOMER c JOIN ORDER_T o ON c.CID = o.CID"
  in
  check_int "pairs" 3 (List.length r.Sql_exec.rows);
  check_int "index-nl join" 1 db.Database.stats.Database.index_joins;
  check_int "no plain nested loop" 0 db.Database.stats.Database.nl_joins;
  (* equi-join on an unindexed right column: hash join *)
  Database.reset_stats db;
  let r2 =
    run db
      "SELECT c.CID, d.CID FROM CUSTOMER c JOIN CUSTOMER d ON c.LAST_NAME = d.LAST_NAME"
  in
  check_int "name pairs" 5 (List.length r2.Sql_exec.rows);
  check_int "hash join" 1 db.Database.stats.Database.hash_joins;
  (* non-equality ON condition: nested loop remains *)
  Database.reset_stats db;
  let r3 =
    run db "SELECT c.CID, o.OID FROM CUSTOMER c JOIN ORDER_T o ON c.CID <> o.CID"
  in
  check_int "anti pairs" 6 (List.length r3.Sql_exec.rows);
  check_int "nested loop" 1 db.Database.stats.Database.nl_joins

let test_insert_many_atomicity () =
  let t =
    Table.create ~primary_key:[ "K" ] "T"
      [ Table.column ~nullable:false "K" Table.T_int ]
  in
  check_int "bulk ok" 3
    (ok_exn (Table.insert_many t [ [| V.Int 1 |]; [| V.Int 2 |]; [| V.Int 3 |] ]));
  ignore
    (err_exn (Table.insert_many t [ [| V.Int 4 |]; [| V.Int 2 |]; [| V.Int 5 |] ]));
  check_int "failed batch fully unwound" 3 (Table.row_count t);
  (* the unwound key 4 is gone from the pk index too *)
  check_int "re-insert unwound key" 1
    (ok_exn (Table.insert_many t [ [| V.Int 4 |] ]))

let test_rollback_rebuilds_indexes () =
  let db = make_db () in
  ignore
    (err_exn
       (Txn.with_transaction db (fun () ->
            ignore (run_dml db "DELETE FROM ORDER_T WHERE CID = 'C1'");
            ignore
              (run_dml db
                 "INSERT INTO ORDER_T (OID, CID, AMOUNT) VALUES (9, 'C3', 1.0)");
            Error "boom")));
  Database.reset_stats db;
  let r = run db "SELECT o.OID FROM ORDER_T o WHERE o.CID = 'C1'" in
  check_int "deletes rolled back, via index" 2 (List.length r.Sql_exec.rows);
  check_int "no full scan" 0 db.Database.stats.Database.full_scans;
  let r9 = run db "SELECT o.OID FROM ORDER_T o WHERE o.OID = 9" in
  check_int "insert rolled back" 0 (List.length r9.Sql_exec.rows)

let test_window_early_exit () =
  let db = make_db () in
  let with_window sql start count =
    { (ok_exn (Sql_parser.parse_select sql)) with
      Sql_ast.window = Some { Sql_ast.start; count } }
  in
  let rows s = (ok_exn (Sql_exec.query db s)).Sql_exec.rows in
  let oids = with_window "SELECT o.OID FROM ORDER_T o ORDER BY o.OID" 1 (Some 2) in
  check_bool "first two" true
    (List.map (fun row -> row.(0)) (rows oids) = [ V.Int 1; V.Int 2 ]);
  let distinct_page =
    with_window "SELECT DISTINCT c.LAST_NAME FROM CUSTOMER c ORDER BY c.CID" 2
      (Some 1)
  in
  check_bool "second distinct name" true
    (List.map (fun row -> row.(0)) (rows distinct_page) = [ V.Str "Smith" ]);
  check_int "page past the end" 0
    (List.length (rows (with_window "SELECT c.CID FROM CUSTOMER c" 5 (Some 3))));
  check_int "zero-row page" 0
    (List.length (rows (with_window "SELECT c.CID FROM CUSTOMER c" 1 (Some 0))))

(* Property (fixed derivation from the generated int): index and scan
   access paths agree byte-for-byte on random tables with NULL and
   duplicate keys, across point, IN-list, OR-of-equalities (the PP-k
   probe shape) and join queries. *)
let prop_index_scan_agree =
  QCheck.Test.make ~name:"index and scan access paths agree" ~count:200
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let st = Random.State.make [| 0xA11CE; seed |] in
      let db = Database.create "fuzzdb" in
      let t1 =
        Table.create "T1"
          [ Table.column "K" Table.T_int; Table.column "S" Table.T_varchar ]
      in
      let t2 =
        Table.create "T2"
          [ Table.column "K" Table.T_int; Table.column "V" Table.T_int ]
      in
      (match Table.create_index t1 ~name:"t1_k" [ "K" ] with
      | Ok () -> ()
      | Error e -> failwith e);
      (match Table.create_index t2 ~name:"t2_k" [ "K" ] with
      | Ok () -> ()
      | Error e -> failwith e);
      Database.add_table db t1;
      Database.add_table db t2;
      let rand_key () =
        if Random.State.int st 10 = 0 then V.Null
        else V.Int (Random.State.int st 6)
      in
      for _ = 1 to 5 + Random.State.int st 40 do
        match
          Table.insert t1
            [| rand_key ();
               V.Str (String.make 1 (Char.chr (97 + Random.State.int st 4))) |]
        with
        | Ok () -> ()
        | Error e -> failwith e
      done;
      for _ = 1 to Random.State.int st 20 do
        match
          Table.insert t2 [| rand_key (); V.Int (Random.State.int st 100) |]
        with
        | Ok () -> ()
        | Error e -> failwith e
      done;
      let queries =
        [ ("SELECT t.K, t.S FROM T1 t WHERE t.K = ?", [| rand_key () |]);
          ( "SELECT t.K, t.S FROM T1 t WHERE t.K = ? OR t.K = ?",
            [| rand_key (); rand_key () |] );
          ("SELECT t.S FROM T1 t WHERE t.K IN (0, 1, ?)", [| rand_key () |]);
          ("SELECT t.K FROM T1 t WHERE t.K = ? OR t.K IS NULL", [| rand_key () |]);
          ("SELECT a.K, a.S, b.V FROM T1 a JOIN T2 b ON a.K = b.K", [||]);
          ("SELECT a.K, b.V FROM T1 a LEFT OUTER JOIN T2 b ON a.K = b.K", [||])
        ]
      in
      List.for_all
        (fun (sql, params) ->
          let s =
            match Sql_parser.parse_select sql with
            | Ok s -> s
            | Error e -> failwith e
          in
          let run_with flag =
            Database.set_use_indexes db flag;
            Sql_exec.query db ~params s
          in
          let indexed = run_with true in
          let scanned = run_with false in
          Database.set_use_indexes db true;
          match (indexed, scanned) with
          | Ok a, Ok b -> a.Sql_exec.rows = b.Sql_exec.rows
          | Error a, Error b -> String.equal a b
          | _ -> false)
        queries)

(* Property (fixed derivation from the generated int): the incrementally
   maintained planner statistics agree with a from-scratch recomputation
   over the live rows after any interleaving of inserts, updates, deletes
   and transactions (committed and rolled back): exact row count, exact
   live NDV on the indexed column, exact numeric min/max, and NDV never
   exceeding the row count. *)
let prop_statistics_maintained =
  QCheck.Test.make ~name:"statistics survive DML and rollback" ~count:150
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let st = Random.State.make [| 0x57A7; seed |] in
      let db = Database.create "statsdb" in
      let t =
        Table.create "T"
          [ Table.column "K" Table.T_int; Table.column "V" Table.T_int ]
      in
      (match Table.create_index t ~name:"t_k" [ "K" ] with
      | Ok () -> ()
      | Error e -> failwith e);
      Database.add_table db t;
      let rand_key () =
        if Random.State.int st 8 = 0 then V.Null
        else V.Int (Random.State.int st 10)
      in
      let live_ids () =
        let ids = ref [] in
        Table.iter_rows t (fun id _ -> ids := id :: !ids);
        !ids
      in
      let random_op () =
        match Random.State.int st 4 with
        | 0 | 1 ->
          ignore
            (Table.insert t [| rand_key (); V.Int (Random.State.int st 100) |])
        | 2 -> (
          match live_ids () with
          | [] -> ()
          | ids ->
            Table.delete_row t
              (List.nth ids (Random.State.int st (List.length ids))))
        | _ -> (
          match live_ids () with
          | [] -> ()
          | ids ->
            Table.update_row t
              (List.nth ids (Random.State.int st (List.length ids)))
              [| rand_key (); V.Int (Random.State.int st 100) |])
      in
      let consistent () =
        let rows = Table.all_rows t in
        let keys =
          List.filter_map
            (fun row -> match row.(0) with V.Int k -> Some k | _ -> None)
            rows
        in
        (* NULL occupies its own key bucket in the index, so it counts as
           one distinct key when any live row has a NULL key *)
        let has_null =
          List.exists (fun row -> row.(0) = V.Null) rows
        in
        let distinct =
          List.length (List.sort_uniq compare keys)
          + if has_null then 1 else 0
        in
        let stats = Table.statistics t in
        let cs =
          List.find
            (fun cs -> cs.Table.cs_columns = [ "K" ])
            stats.Table.stat_columns
        in
        let bounds_ok =
          cs.Table.cs_distinct >= 0
          && cs.Table.cs_distinct <= stats.Table.stat_rows
        in
        let range_ok =
          match (cs.Table.cs_min, cs.Table.cs_max, keys) with
          | None, None, [] -> true
          | Some lo, Some hi, _ :: _ ->
            lo = float_of_int (List.fold_left min max_int keys)
            && hi = float_of_int (List.fold_left max min_int keys)
          | _ -> false
        in
        stats.Table.stat_rows = List.length rows
        && cs.Table.cs_distinct = distinct
        && bounds_ok && range_ok
      in
      let steps = 10 + Random.State.int st 30 in
      let ok = ref true in
      for _ = 1 to steps do
        (match Random.State.int st 5 with
        | 0 ->
          (* a transaction that makes a few changes then aborts: the
             statistics must roll back with the data *)
          let rows_before = (Table.statistics t).Table.stat_rows in
          ignore
            (Txn.with_transaction db (fun () ->
                 for _ = 1 to 1 + Random.State.int st 4 do
                   random_op ()
                 done;
                 Error "abort"));
          ok := !ok && (Table.statistics t).Table.stat_rows = rows_before
        | 1 ->
          ignore
            (Txn.with_transaction db (fun () ->
                 for _ = 1 to 1 + Random.State.int st 4 do
                   random_op ()
                 done;
                 Ok ()))
        | _ -> random_op ());
        ok := !ok && consistent ()
      done;
      !ok)

(* Concurrent DML on disjoint key ranges: each thread inserts, updates
   and deletes only rows whose K lies in its own range, all against one
   table. After the threads join, the incrementally maintained statistics
   must equal a from-scratch recomputation over the live rows — a lost
   update under the table lock would leave them skewed. *)
let test_statistics_concurrent_dml () =
  let t =
    Table.create "T"
      [ Table.column "K" Table.T_int; Table.column "V" Table.T_int ]
  in
  (match Table.create_index t ~name:"t_k" [ "K" ] with
  | Ok () -> ()
  | Error e -> failwith e);
  let threads = 6 and keys_per = 40 in
  let worker tid () =
    let base = tid * 1000 in
    for k = base to base + keys_per - 1 do
      Result.get_ok (Table.insert t [| V.Int k; V.Int tid |])
    done;
    (* touch only this thread's rows: update every 3rd, delete every 4th *)
    let mine = ref [] in
    Table.iter_rows t (fun id row ->
        match row.(0) with
        | V.Int k when k >= base && k < base + keys_per ->
          mine := (id, k) :: !mine
        | _ -> ());
    List.iter
      (fun (id, k) ->
        if k mod 4 = 0 then Table.delete_row t id
        else if k mod 3 = 0 then
          Table.update_row t id [| V.Int k; V.Int (tid + 100) |])
      !mine
  in
  let ts = List.init threads (fun tid -> Thread.create (worker tid) ()) in
  List.iter Thread.join ts;
  let rows = Table.all_rows t in
  let keys =
    List.filter_map
      (fun row -> match row.(0) with V.Int k -> Some k | _ -> None)
      rows
  in
  let stats = Table.statistics t in
  let cs =
    List.find (fun cs -> cs.Table.cs_columns = [ "K" ]) stats.Table.stat_columns
  in
  Alcotest.check Alcotest.int "row count matches recompute"
    (List.length rows) stats.Table.stat_rows;
  Alcotest.check Alcotest.int "NDV matches recompute"
    (List.length (List.sort_uniq compare keys))
    cs.Table.cs_distinct;
  Alcotest.check Alcotest.(option (float 0.)) "min matches recompute"
    (Some (float_of_int (List.fold_left min max_int keys)))
    cs.Table.cs_min;
  Alcotest.check Alcotest.(option (float 0.)) "max matches recompute"
    (Some (float_of_int (List.fold_left max min_int keys)))
    cs.Table.cs_max

(* Property: LIKE matching agrees with a reference regex translation. *)
let prop_like =
  let pat_gen =
    QCheck.Gen.string_size ~gen:(QCheck.Gen.oneofl [ 'a'; 'b'; '%'; '_' ])
      (QCheck.Gen.int_range 0 6)
  in
  let txt_gen =
    QCheck.Gen.string_size ~gen:(QCheck.Gen.oneofl [ 'a'; 'b' ])
      (QCheck.Gen.int_range 0 6)
  in
  QCheck.Test.make ~name:"LIKE agrees with regex reference" ~count:500
    (QCheck.make (QCheck.Gen.pair pat_gen txt_gen))
    (fun (pattern, text) ->
      let regex =
        let buf = Buffer.create 16 in
        String.iter
          (function
            | '%' -> Buffer.add_string buf ".*"
            | '_' -> Buffer.add_char buf '.'
            | c -> Buffer.add_char buf c)
          pattern;
        Str.regexp ("^" ^ Buffer.contents buf ^ "$")
      in
      let expected = Str.string_match regex text 0 in
      let db = Database.create "t" in
      let tbl = Table.create "T" [ Table.column "S" Table.T_varchar ] in
      (match Table.insert tbl [| V.Str text |] with Ok () -> () | Error _ -> ());
      Database.add_table db tbl;
      let s =
        match Sql_parser.parse_select "SELECT t.S FROM T t WHERE t.S LIKE ?" with
        | Ok s -> s
        | Error e -> failwith e
      in
      match Sql_exec.query db ~params:[| V.Str pattern |] s with
      | Ok r -> List.length r.Sql_exec.rows = if expected then 1 else 0
      | Error e -> failwith e)

let () =
  let t name f = Alcotest.test_case name `Quick f in
  Alcotest.run "relational"
    [ ( "values",
        [ t "three-valued logic" test_three_valued_logic;
          t "conversions" test_value_conversions ] );
      ("table", [ t "constraints" test_table_constraints ]);
      ( "executor",
        [ t "select-project" test_select_project;
          t "where null" test_where_null_filtered;
          t "inner join" test_inner_join;
          t "left outer join" test_left_outer_join;
          t "group by" test_group_by_aggregates;
          t "outer join + agg" test_outer_join_aggregation;
          t "aggregates skip nulls" test_aggregates_skip_nulls;
          t "sum/avg/min/max" test_sum_avg_min_max;
          t "distinct" test_distinct;
          t "exists semijoin" test_exists_semijoin;
          t "case" test_case_expression;
          t "subqueries" test_scalar_subquery_and_in;
          t "order+window" test_order_by_desc_and_window;
          t "select *" test_select_star;
          t "params" test_params;
          t "disjunctive params (PP-k shape)" test_disjunctive_param_query;
          t "string funcs + like" test_string_functions_like;
          t "derived table" test_derived_table;
          t "having" test_having;
          t "errors" test_error_cases;
          QCheck_alcotest.to_alcotest prop_like ] );
      ( "indexing",
        [ t "auto pk/fk indexes" test_auto_indexes;
          t "create index" test_create_index;
          t "point lookup path" test_index_access_path;
          t "join algorithms" test_join_algorithms;
          t "insert_many atomicity" test_insert_many_atomicity;
          t "rollback rebuilds indexes" test_rollback_rebuilds_indexes;
          t "window early exit" test_window_early_exit;
          QCheck_alcotest.to_alcotest prop_index_scan_agree ] );
      ( "dml+txn",
        [ t "dml" test_dml_roundtrip;
          t "optimistic where" test_optimistic_update_where;
          t "rollback" test_transaction_rollback;
          t "two-phase commit" test_two_phase_commit;
          t "stats" test_stats_accounting;
          t "statistics under concurrent DML" test_statistics_concurrent_dml;
          QCheck_alcotest.to_alcotest prop_statistics_maintained ] );
      ( "dialects",
        [ t "paper pattern (a)" test_print_simple_select_paper_shape;
          t "outer join" test_print_outer_join;
          t "group-by" test_print_case_group;
          t "window dialects" test_print_window_dialects;
          t "concat operator" test_print_concat_operator;
          t "print/parse roundtrip" test_print_parse_roundtrip ] ) ]
