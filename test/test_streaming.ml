(* End-to-end streaming execution: the bounded SPSC delivery queue, the
   relational cursor API, and the streamed session path — pinned against
   the materialized path byte-for-byte, with the bounded-buffer guarantee
   (peak buffered tokens never exceed the queue capacity) under a slow
   consumer, and mid-stream cancellation. *)

open Aldsp_core
module Spsc = Aldsp_concurrency.Spsc
module Db = Aldsp_relational.Database
module Sql_ast = Aldsp_relational.Sql_ast
module Sql_exec = Aldsp_relational.Sql_exec
module Token_stream = Aldsp_tokens.Token_stream

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int
let check_string = Alcotest.check Alcotest.string

(* ------------------------------------------------------------------ *)
(* SPSC queue units                                                    *)

let test_spsc_fifo () =
  let q = Spsc.create ~capacity:8 in
  List.iter (fun i -> check_bool "push accepted" true (Spsc.push q i)) [ 1; 2; 3 ];
  Spsc.close q;
  List.iter
    (fun i ->
      match Spsc.pop q with
      | `Item j -> check_int "fifo order" i j
      | `Closed | `Failed _ -> Alcotest.fail "queue ended early")
    [ 1; 2; 3 ];
  check_bool "closed after drain" true (Spsc.pop q = `Closed);
  (* close is sticky *)
  check_bool "still closed" true (Spsc.pop q = `Closed)

let test_spsc_backpressure () =
  let n = 200 in
  let q = Spsc.create ~capacity:4 in
  let producer =
    Thread.create
      (fun () ->
        for i = 0 to n - 1 do
          ignore (Spsc.push q i)
        done;
        Spsc.close q)
      ()
  in
  let received = ref [] in
  let rec drain () =
    match Spsc.pop q with
    | `Item i ->
      received := i :: !received;
      (* a deliberately slow consumer: the producer must block, not
         buffer past capacity *)
      if i mod 16 = 0 then Thread.delay 0.002;
      drain ()
    | `Closed -> ()
    | `Failed m -> Alcotest.failf "unexpected failure: %s" m
  in
  drain ();
  Thread.join producer;
  check_int "all elements delivered" n (List.length !received);
  check_bool "delivered in order" true
    (List.rev !received = List.init n Fun.id);
  check_bool
    (Printf.sprintf "peak occupancy %d within capacity 4"
       (Spsc.peak_occupancy q))
    true
    (Spsc.peak_occupancy q <= 4)

let test_spsc_fail_drains_first () =
  let q = Spsc.create ~capacity:8 in
  ignore (Spsc.push q "a");
  ignore (Spsc.push q "b");
  Spsc.fail q "boom";
  Spsc.fail q "ignored: first failure wins";
  check_bool "buffered items drain" true (Spsc.pop q = `Item "a");
  check_bool "buffered items drain" true (Spsc.pop q = `Item "b");
  check_bool "then the failure surfaces" true (Spsc.pop q = `Failed "boom")

let test_spsc_abort_releases_producer () =
  let q = Spsc.create ~capacity:2 in
  ignore (Spsc.push q 0);
  ignore (Spsc.push q 1);
  let rejected = ref false in
  let producer =
    Thread.create
      (fun () ->
        (* the queue is full: this blocks until the consumer aborts,
           then reports the abort by returning false *)
        rejected := not (Spsc.push q 2))
      ()
  in
  Thread.delay 0.01;
  Spsc.abort q;
  Thread.join producer;
  check_bool "blocked push returned false after abort" true !rejected;
  check_bool "pushes after abort are rejected too" true (not (Spsc.push q 3))

(* ------------------------------------------------------------------ *)
(* Relational cursors                                                  *)

let customer_select db =
  match Db.find_table db "CUSTOMER" with
  | Error m -> Alcotest.fail m
  | Ok t ->
    Sql_ast.select
      ~projections:
        (List.map
           (fun c -> (Sql_ast.col "t0" c.Aldsp_relational.Table.col_name,
                      c.Aldsp_relational.Table.col_name))
           t.Aldsp_relational.Table.columns)
      (Sql_ast.Table { table = "CUSTOMER"; alias = "t0" })

let test_cursor_matches_query () =
  let demo = Aldsp_demo.Demo.create ~customers:12 ~orders_per_customer:0 () in
  let db = demo.Aldsp_demo.Demo.customer_db in
  let select = customer_select db in
  let expected =
    match Sql_exec.query db select with
    | Ok rs -> rs
    | Error m -> Alcotest.fail m
  in
  match Sql_exec.open_cursor db select with
  | Error m -> Alcotest.fail m
  | Ok cur ->
    check_bool "columns match" true
      (Sql_exec.cursor_columns cur = expected.Sql_exec.columns);
    let rec drain acc =
      match Sql_exec.fetch_chunk ~rows:5 cur with
      | Error m -> Alcotest.fail m
      | Ok [] -> List.rev acc
      | Ok rows ->
        check_bool "chunk within requested size" true (List.length rows <= 5);
        drain (List.rev_append rows acc)
    in
    let rows = drain [] in
    check_int "row count matches" (List.length expected.Sql_exec.rows)
      (List.length rows);
    check_bool "rows byte-identical in order" true
      (rows = expected.Sql_exec.rows);
    (* a drained cursor keeps answering end-of-rows *)
    check_bool "drained cursor stays empty" true
      (Sql_exec.fetch_chunk cur = Ok [])

let test_cursor_accounting () =
  let demo = Aldsp_demo.Demo.create ~customers:9 ~orders_per_customer:0 () in
  let db = demo.Aldsp_demo.Demo.customer_db in
  let select = customer_select db in
  Aldsp_demo.Demo.reset_stats demo;
  (match Sql_exec.open_cursor db select with
  | Error m -> Alcotest.fail m
  | Ok cur ->
    check_int "statement accounted at open" 1 db.Db.stats.Db.statements;
    check_int "no rows shipped before the first fetch" 0
      db.Db.stats.Db.rows_shipped;
    let rec drain () =
      match Sql_exec.fetch_chunk ~rows:4 cur with
      | Error m -> Alcotest.fail m
      | Ok [] -> ()
      | Ok _ -> drain ()
    in
    drain ());
  check_int "one statement total: chunks are engine-side iteration" 1
    db.Db.stats.Db.statements;
  check_int "rows shipped as fetched" 9 db.Db.stats.Db.rows_shipped

(* ------------------------------------------------------------------ *)
(* Streamed session delivery                                           *)

let stream_queries =
  [ "for $c in CUSTOMER() where $c/SINCE ge 1995 return <R>{$c/CID}{$c/LAST_NAME}</R>";
    "for $c in CUSTOMER(), $o in ORDER_T() where $c/CID eq $o/CID return <CO>{$c/CID, $o/OID}</CO>";
    "for $c in CUSTOMER() group by $c/LAST_NAME as $l return $l";
    "for $c in CUSTOMER() order by $c/LAST_NAME, $c/CID return $c/LAST_NAME";
    "count(CUSTOMER())";
    "getProfile()" ]

let streamed_bytes ?buffer server q =
  let ses = Server.session server () in
  match Server.session_run_stream ses ?buffer q with
  | Error e -> Error (Server.submit_error_to_string e)
  | Ok stream -> (
    let buf = Buffer.create 256 in
    match Server.stream_serialize stream (Buffer.add_string buf) with
    | Ok () -> Ok (Buffer.contents buf, Server.stream_peak_buffered stream)
    | Error e -> Error (Server.submit_error_to_string e))

let test_streamed_matches_materialized () =
  let demo = Aldsp_demo.Demo.create ~customers:25 ~orders_per_customer:3 () in
  let server = demo.Aldsp_demo.Demo.server in
  List.iter
    (fun q ->
      let expected =
        match Server.run server q with
        | Ok items -> Server.serialize_result server items
        | Error m -> Alcotest.failf "materialized run failed on %s: %s" q m
      in
      match streamed_bytes ~buffer:8 server q with
      | Error e -> Alcotest.failf "streamed run failed on %s: %s" q e
      | Ok (got, peak) ->
        check_string q expected got;
        check_bool
          (Printf.sprintf "peak %d within buffer 8 on %s" peak q)
          true (peak <= 8))
    stream_queries

(* The qcheck property over the fuzzer's deterministic scenario stream:
   whatever query, catalog and config the generator produces, streamed
   delivery byte-matches the materialized result pushed through the same
   token serializer. (The corpus of shrunk counterexamples replays
   through this same path in test_fuzz via Oracle.compare_query's
   streaming pass.) *)
let test_fuzz_scenarios_stream_identical =
  QCheck.Test.make ~count:25 ~name:"fuzz scenarios: streamed = materialized"
    QCheck.(0 -- 200)
    (fun index ->
      let open Aldsp_check in
      let s = Harness.scenario_of ~seed:4242 ~index in
      let cat = Catalog.build s.Shrink.spec in
      Oracle.set_indexes cat s.Shrink.config.Oracle.indexes;
      let server = Oracle.subject_server cat s.Shrink.config in
      let q = Gen.render s.Shrink.query in
      match Server.run server q with
      | Error _ -> true (* error scenarios are the oracle's business *)
      | Ok items -> (
        let expected = Server.serialize_result server items in
        match streamed_bytes ~buffer:16 server q with
        | Error e ->
          QCheck.Test.fail_reportf
            "scenario %d: streamed run failed: %s\nquery: %s" index e q
        | Ok (got, peak) ->
          if not (String.equal expected got) then
            QCheck.Test.fail_reportf
              "scenario %d diverged\nquery: %s\nmaterialized: %s\nstreamed: %s"
              index q expected got;
          if peak > 16 then
            QCheck.Test.fail_reportf
              "scenario %d: peak buffered %d exceeds capacity 16" index peak;
          true))

let test_bounded_buffer_slow_consumer () =
  let demo = Aldsp_demo.Demo.create ~customers:150 ~orders_per_customer:1 () in
  let server = demo.Aldsp_demo.Demo.server in
  let q = "for $c in CUSTOMER() return <R>{$c/CID}{$c/LAST_NAME}{$c/SINCE}</R>" in
  let ses = Server.session server () in
  match Server.session_run_stream ses ~buffer:8 q with
  | Error e -> Alcotest.fail (Server.submit_error_to_string e)
  | Ok stream ->
    let tokens = ref 0 in
    let rec drain () =
      match Server.stream_read stream with
      | Ok (Some _) ->
        incr tokens;
        (* lag hard every 32 tokens: the producer runs far ahead of the
           consumer and must park on the full queue *)
        if !tokens mod 32 = 0 then Thread.delay 0.002;
        drain ()
      | Ok None -> ()
      | Error e -> Alcotest.fail (Server.submit_error_to_string e)
    in
    drain ();
    let peak = Server.stream_peak_buffered stream in
    check_bool "stream produced tokens" true (!tokens > 100);
    check_bool
      (Printf.sprintf "peak buffered %d within capacity 8" peak)
      true
      (peak >= 1 && peak <= 8)

let test_mid_stream_cancel () =
  let demo = Aldsp_demo.Demo.create ~customers:300 ~orders_per_customer:1 () in
  let server = demo.Aldsp_demo.Demo.server in
  let q = "for $c in CUSTOMER() return <R>{$c/CID}{$c/LAST_NAME}</R>" in
  let ses = Server.session server () in
  (match Server.session_run_stream ses ~buffer:4 q with
  | Error e -> Alcotest.fail (Server.submit_error_to_string e)
  | Ok stream ->
    (* consume a few tokens so the query is demonstrably mid-flight,
       then cancel and keep reading: the stream must end in a Cancelled
       error, never a clean end-of-stream for a truncated result *)
    for _ = 1 to 5 do
      match Server.stream_read stream with
      | Ok (Some _) -> ()
      | Ok None -> Alcotest.fail "stream ended before cancel"
      | Error e -> Alcotest.fail (Server.submit_error_to_string e)
    done;
    Server.stream_cancel stream;
    let rec drain_to_end () =
      match Server.stream_read stream with
      | Ok (Some _) -> drain_to_end ()
      | Ok None -> Alcotest.fail "cancelled stream reported clean completion"
      | Error (Server.Cancelled _) -> ()
      | Error e ->
        Alcotest.failf "expected Cancelled, got %s"
          (Server.submit_error_to_string e)
    in
    drain_to_end ());
  (* the producer must release its admission slot: wait for quiescence *)
  let deadline = Unix.gettimeofday () +. 5. in
  let rec wait () =
    let adm = Server.admission_stats server in
    if adm.Server.ad_active = 0 then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail "producer never released its admission slot"
    else begin
      Thread.delay 0.002;
      wait ()
    end
  in
  wait ();
  let adm = Server.admission_stats server in
  check_int "cancel accounted as a deadline abort" 1
    adm.Server.ad_deadline_aborts

let test_tokens_streamed_counter () =
  let demo = Aldsp_demo.Demo.create ~customers:20 ~orders_per_customer:0 () in
  let server = demo.Aldsp_demo.Demo.server in
  let q = "for $c in CUSTOMER() return <R>{$c/CID}</R>" in
  let items =
    match Server.run server q with
    | Ok items -> items
    | Error m -> Alcotest.fail m
  in
  let expected_tokens = Token_stream.length (Token_stream.of_sequence items) in
  let before = (Server.stats server).Server.st_tokens_streamed in
  ignore (Server.serialize_result server items);
  let after_serialize = (Server.stats server).Server.st_tokens_streamed in
  check_int "materialized serialization is counted" expected_tokens
    (after_serialize - before);
  (match streamed_bytes server q with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let after_stream = (Server.stats server).Server.st_tokens_streamed in
  check_int "streamed delivery is counted" expected_tokens
    (after_stream - after_serialize)

let test_explain_timings_ttft () =
  let demo = Aldsp_demo.Demo.create ~customers:10 ~orders_per_customer:2 () in
  let q = "for $c in CUSTOMER() where $c/SINCE ge 1995 return $c/CID" in
  (match Server.explain ~analyze:true ~timings:true demo.Aldsp_demo.Demo.server q with
  | Error m -> Alcotest.fail m
  | Ok text ->
    check_bool "EXPLAIN ANALYZE --timings reports ttft on the root" true
      (try
         ignore (Str.search_forward (Str.regexp_string "ttft=") text 0);
         true
       with Not_found -> false));
  (* without --timings the field stays out, keeping golden output stable *)
  match Server.explain ~analyze:true ~timings:false demo.Aldsp_demo.Demo.server q with
  | Error m -> Alcotest.fail m
  | Ok text ->
    check_bool "deterministic EXPLAIN omits ttft" true
      (not
         (try
            ignore (Str.search_forward (Str.regexp_string "ttft=") text 0);
            true
          with Not_found -> false))

let () = at_exit Aldsp_check.Oracle.shutdown_pools

let () =
  Alcotest.run "streaming"
    [ ( "spsc",
        [ Alcotest.test_case "fifo and close" `Quick test_spsc_fifo;
          Alcotest.test_case "backpressure bounds occupancy" `Quick
            test_spsc_backpressure;
          Alcotest.test_case "fail drains buffered items first" `Quick
            test_spsc_fail_drains_first;
          Alcotest.test_case "abort releases a blocked producer" `Quick
            test_spsc_abort_releases_producer ] );
      ( "cursor",
        [ Alcotest.test_case "chunked drain matches query" `Quick
            test_cursor_matches_query;
          Alcotest.test_case "one statement, rows shipped as fetched" `Quick
            test_cursor_accounting ] );
      ( "delivery",
        [ Alcotest.test_case "streamed = materialized (fixtures)" `Quick
            test_streamed_matches_materialized;
          QCheck_alcotest.to_alcotest test_fuzz_scenarios_stream_identical;
          Alcotest.test_case "bounded buffer under a slow consumer" `Quick
            test_bounded_buffer_slow_consumer;
          Alcotest.test_case "mid-stream cancel" `Quick test_mid_stream_cancel;
          Alcotest.test_case "st_tokens_streamed counts every path" `Quick
            test_tokens_streamed_counter;
          Alcotest.test_case "ttft rides with --timings only" `Quick
            test_explain_timings_ttft ] ) ]
