(* The bounded-memory external sort (lib/core/extsort.ml): run-file
   framing, k-way merge correctness and stability, budget edge cases,
   temp-file hygiene under normal completion and cancellation, and
   QCheck spilled-vs-in-memory identity — at the Extsort level and
   end-to-end through the server for ORDER BY and unclustered GROUP BY. *)

open Aldsp_core

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int
let pairs = Alcotest.(list (pair int int))

let ok_exn = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

let cmp_fst a b = compare (fst a) (fst b)

(* a scratch directory under the system temp dir, emptied of any debris a
   previous crashed run may have left *)
let fresh_dir name =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) name in
  (try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Array.iter
    (fun sub ->
      let p = Filename.concat dir sub in
      if Sys.is_directory p then begin
        Array.iter (fun f -> Sys.remove (Filename.concat p f)) (Sys.readdir p);
        Unix.rmdir p
      end
      else Sys.remove p)
    (Sys.readdir dir);
  dir

let entries dir = Array.length (Sys.readdir dir)

(* ------------------------------------------------------------------ *)
(* Run-file framing                                                    *)

let test_run_framing () =
  let arr = Array.init 17 (fun i -> ((i * 7) mod 5, i)) in
  let round_trip chunk_rows =
    let path = Filename.temp_file "aldsp-extsort-test" ".run" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        let bytes = Extsort.write_run_file ~chunk_rows path arr in
        check_bool "bytes reported" true (bytes > 0);
        check_int "file is exactly the reported bytes" bytes
          (Unix.stat path).Unix.st_size;
        Alcotest.check pairs
          (Printf.sprintf "round trip at chunk_rows=%d" chunk_rows)
          (Array.to_list arr) (Extsort.read_run_file path))
  in
  (* one row per frame, a mid-size frame that does not divide the run
     evenly, and a frame wider than the whole run *)
  round_trip 1;
  round_trip 4;
  round_trip 100;
  (* the empty run is zero frames, and reads back empty *)
  let path = Filename.temp_file "aldsp-extsort-test" ".run" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let bytes = Extsort.write_run_file ~chunk_rows:4 path [||] in
      check_int "empty run writes nothing" 0 bytes;
      Alcotest.check pairs "empty run reads back empty" []
        (Extsort.read_run_file path))

(* ------------------------------------------------------------------ *)
(* Merge correctness and stability                                     *)

let spill_sort ?stats ?max_fanin ~budget input =
  List.of_seq
    (Extsort.sort ?stats ?max_fanin ~budget_rows:budget ~cmp:cmp_fst
       (List.to_seq input))

(* duplicate-heavy keys, distinct payloads: agreement with
   [List.stable_sort] under a key-only comparator proves both order and
   stability in one check *)
let dup_input n = List.init n (fun i -> ((i * 37) mod 10, i))

let test_merge_correct_and_stable () =
  let input = dup_input 1000 in
  let expected = List.stable_sort cmp_fst input in
  let stats = Extsort.zero_stats () in
  let got = spill_sort ~stats ~budget:(Some 16) input in
  Alcotest.check pairs "spilled merge equals in-memory stable sort" expected
    got;
  check_bool "the sort actually spilled" true (stats.Extsort.runs_spilled > 0);
  check_int "every row hit the disk" 1000 stats.Extsort.rows_spilled;
  check_bool "merge was k-way" true (stats.Extsort.merge_fanin > 2);
  check_bool "peak resident tracked" true (stats.Extsort.peak_resident > 0)

let test_merge_bounded_fanin () =
  (* 1000 rows / budget 8 = 125 initial runs; fan-in 2 forces several
     intermediate re-spill passes, so more runs are written than the
     initial pass produced and no merge ever exceeds the cap *)
  let input = dup_input 1000 in
  let expected = List.stable_sort cmp_fst input in
  let stats = Extsort.zero_stats () in
  let got = spill_sort ~stats ~max_fanin:2 ~budget:(Some 8) input in
  Alcotest.check pairs "multi-pass merge equals stable sort" expected got;
  check_bool "intermediate passes re-spilled" true
    (stats.Extsort.runs_spilled > 125);
  check_bool "rows re-spilled across passes" true
    (stats.Extsort.rows_spilled > 1000);
  check_int "fan-in never exceeded the cap" 2 stats.Extsort.merge_fanin

(* ------------------------------------------------------------------ *)
(* Budget edge cases                                                   *)

let test_budget_edges () =
  let input = dup_input 50 in
  let expected = List.stable_sort cmp_fst input in
  (* budget of 1: every row is its own run *)
  let stats = Extsort.zero_stats () in
  Alcotest.check pairs "budget of 1" expected
    (spill_sort ~stats ~budget:(Some 1) input);
  check_bool "budget 1 spilled every row at least once" true
    (stats.Extsort.rows_spilled >= 50);
  (* budget larger than the input: pure in-memory, zero spill traffic *)
  let roomy = Extsort.zero_stats () in
  Alcotest.check pairs "budget larger than input" expected
    (spill_sort ~stats:roomy ~budget:(Some 1000) input);
  check_int "no runs spilled" 0 roomy.Extsort.runs_spilled;
  check_int "no rows spilled" 0 roomy.Extsort.rows_spilled;
  check_int "no bytes spilled" 0 roomy.Extsort.bytes_spilled;
  (* no budget at all: the plain stable sort *)
  let unbounded = Extsort.zero_stats () in
  Alcotest.check pairs "no budget" expected
    (spill_sort ~stats:unbounded ~budget:None input);
  check_int "unbounded never spills" 0 unbounded.Extsort.runs_spilled;
  (* degenerate inputs under a tiny budget *)
  Alcotest.check pairs "empty input" [] (spill_sort ~budget:(Some 1) []);
  Alcotest.check pairs "singleton input" [ (3, 0) ]
    (spill_sort ~budget:(Some 1) [ (3, 0) ])

(* ------------------------------------------------------------------ *)
(* Temp-file hygiene                                                   *)

let test_cleanup_after_completion () =
  let dir = fresh_dir "aldsp-extsort-test-cleanup" in
  let seq =
    Extsort.sort ~temp_dir:dir ~budget_rows:(Some 4) ~cmp:cmp_fst
      (List.to_seq (dup_input 100))
  in
  (* the sort is lazy: nothing touches the disk before the first pull *)
  check_int "nothing spilled before the first element" 0 (entries dir);
  ignore (List.of_seq seq);
  check_int "temp dir empty after the run drained" 0 (entries dir);
  Unix.rmdir dir

let test_cleanup_after_cancel_mid_merge () =
  let dir = fresh_dir "aldsp-extsort-test-cancel" in
  let tok = Cancel.make () in
  let raised = ref false in
  Cancel.with_token tok (fun () ->
    let seq =
      Extsort.sort ~temp_dir:dir ~budget_rows:(Some 4) ~cmp:cmp_fst
        (List.to_seq (dup_input 100))
    in
    match seq () with
    | Seq.Nil -> Alcotest.fail "expected a first element"
    | Seq.Cons (_, rest) ->
      (* mid-merge: run files are live on disk right now *)
      check_bool "spill files exist while merging" true (entries dir > 0);
      Cancel.cancel tok;
      (try ignore (rest ())
       with Cancel.Cancelled _ -> raised := true));
  check_bool "next pull after cancel raised Cancelled" true !raised;
  check_int "cancelled merge removed its temp files" 0 (entries dir);
  Unix.rmdir dir

let test_cleanup_after_cancel_mid_spill () =
  (* token already fired when the first pull starts the spill phase: the
     write loop's per-frame poll must abort and leave nothing behind *)
  let dir = fresh_dir "aldsp-extsort-test-cancel-spill" in
  let tok = Cancel.make () in
  Cancel.cancel tok;
  let raised = ref false in
  Cancel.with_token tok (fun () ->
    let seq =
      Extsort.sort ~temp_dir:dir ~budget_rows:(Some 4) ~cmp:cmp_fst
        (List.to_seq (dup_input 100))
    in
    try ignore (seq ()) with Cancel.Cancelled _ -> raised := true);
  check_bool "first pull raised Cancelled" true !raised;
  check_int "cancelled spill removed its temp files" 0 (entries dir);
  Unix.rmdir dir

(* ------------------------------------------------------------------ *)
(* QCheck: spilled-vs-in-memory identity at the Extsort level          *)

let prop_extsort_identity =
  QCheck.Test.make ~count:200
    ~name:"random input/budget/fan-in: spilled sort equals stable sort"
    QCheck.(
      triple
        (list_of_size Gen.(int_range 0 150) small_signed_int)
        (int_range 1 8) (int_range 2 5))
    (fun (xs, budget, fanin) ->
      let input = List.mapi (fun i x -> (x, i)) xs in
      List.stable_sort cmp_fst input
      = spill_sort ~max_fanin:fanin ~budget:(Some budget) input)

(* ------------------------------------------------------------------ *)
(* End-to-end byte identity through the server                         *)

let serialize server q =
  Server.serialize_result server (ok_exn (Server.run server q))

let demo ?(pushdown = true) ~budget customers =
  Aldsp_demo.Demo.create ~customers ~orders_per_customer:0
    ~cards_per_customer:0
    ~optimizer_options:
      { Optimizer.default_options with
        Optimizer.pushdown;
        (* the unbounded side pins None explicitly so the CI forced-spill
           environment (ALDSP_SORT_BUDGET) cannot leak into the baseline *)
        Optimizer.sort_budget_rows = budget }
    ()

(* multi-key, asc/desc mix; the [mod] keeps the sort in the middleware
   where the budget applies *)
let order_query =
  "for $c in CUSTOMER() order by fn:string-length($c/FIRST_NAME) mod 3, \
   $c/CID descending return <R>{$c/CID}</R>"

let prop_order_by_identity =
  QCheck.Test.make ~count:12
    ~name:"ORDER BY: spilled bytes = in-memory bytes"
    QCheck.(pair (int_range 1 40) (int_range 1 6))
    (fun (customers, budget) ->
      let unbounded = demo ~budget:None customers in
      let spilled = demo ~budget:(Some budget) customers in
      String.equal
        (serialize unbounded.Aldsp_demo.Demo.server order_query)
        (serialize spilled.Aldsp_demo.Demo.server order_query))

(* pushdown off so the GROUP BY runs in the middleware, where no sort
   feeds it and the unclustered fallback (sort + cluster) applies *)
let group_query =
  "for $c in CUSTOMER() group $c as $g by $c/LAST_NAME as $l return \
   <G>{$l, count($g)}</G>"

let prop_group_by_identity =
  QCheck.Test.make ~count:12
    ~name:"unclustered GROUP BY: spilled bytes = in-memory bytes"
    QCheck.(pair (int_range 1 40) (int_range 1 6))
    (fun (customers, budget) ->
      let unbounded = demo ~pushdown:false ~budget:None customers in
      let spilled = demo ~pushdown:false ~budget:(Some budget) customers in
      String.equal
        (serialize unbounded.Aldsp_demo.Demo.server group_query)
        (serialize spilled.Aldsp_demo.Demo.server group_query))

(* ------------------------------------------------------------------ *)
(* The quadratic-fallback regression: 50k distinct keys                *)

let test_group_50k_distinct_keys () =
  (* every CID is its own group; the old fallback scanned a [seen] list
     per row — O(n²), minutes at this size. The sort-based fallback must
     finish well under a second (bounded at 1.5s for slow CI boxes). *)
  let d = demo ~pushdown:false ~budget:None 50_000 in
  let q =
    "for $c in CUSTOMER() group $c as $g by $c/CID as $k return count($g)"
  in
  let t0 = Unix.gettimeofday () in
  let items = ok_exn (Server.run d.Aldsp_demo.Demo.server q) in
  let dt = Unix.gettimeofday () -. t0 in
  check_int "one group per customer" 50_000 (List.length items);
  check_bool
    (Printf.sprintf "grouped 50k distinct keys in %.2fs (budget 1.5s)" dt)
    true (dt < 1.5)

(* ------------------------------------------------------------------ *)

let () =
  let t name f = Alcotest.test_case name `Quick f in
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "extsort"
    [ ( "framing",
        [ t "run-file round trip" test_run_framing ] );
      ( "merge",
        [ t "correct and stable on duplicate keys"
            test_merge_correct_and_stable;
          t "bounded fan-in forces intermediate passes"
            test_merge_bounded_fanin ] );
      ( "budget",
        [ t "edge cases: 1, larger-than-input, none" test_budget_edges ] );
      ( "hygiene",
        [ t "temp files removed after completion"
            test_cleanup_after_completion;
          t "temp files removed after mid-merge cancel"
            test_cleanup_after_cancel_mid_merge;
          t "temp files removed after cancel during spill"
            test_cleanup_after_cancel_mid_spill ] );
      ( "identity",
        [ q prop_extsort_identity;
          q prop_order_by_identity;
          q prop_group_by_identity ] );
      ( "perf",
        [ Alcotest.test_case "50k distinct keys group fast" `Slow
            test_group_50k_distinct_keys ] ) ]
