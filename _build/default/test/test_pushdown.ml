(* Tests for SQL pushdown: every pattern of Tables 1 and 2, parameter
   passing, vendor capability gating, join parameterization for PP-k, and
   pushed-vs-middleware result equivalence. *)

open Aldsp_core
open Aldsp_xml

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int

let ok_exn = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let setup ?customers:(n = 6) () = Aldsp_demo.Demo.create ~customers:n ()

(* full pipeline via the server, returning pushed SQL + result *)
let compile_run demo q =
  let open Aldsp_demo.Demo in
  let compiled = ok_exn (Result.map_error (fun ds -> String.concat ";" (List.map Diag.to_string ds)) (Server.compile demo.server q)) in
  let result = ok_exn (Server.run demo.server q) in
  (compiled.Server.sql, result)

(* middleware-only compile: optimizer with everything on, but no pushdown *)
let run_unpushed demo q =
  let open Aldsp_demo.Demo in
  let diag = Diag.collector Diag.Fail_fast in
  let ctx =
    Normalize.context ~schema_lookup:(Metadata.find_schema demo.registry) diag
  in
  let core = Normalize.expr ctx (ok_exn (Xq_parser.parse_expr q)) in
  let env = Typecheck.env demo.registry diag in
  let _, typed = Typecheck.check env core in
  let rt = Eval.runtime demo.registry in
  ok_exn (Eval.eval rt typed)

let assert_equivalent demo q =
  let _, pushed = compile_run demo q in
  let unpushed = run_unpushed demo q in
  if Item.serialize pushed <> Item.serialize unpushed then
    Alcotest.failf "pushdown changed %s:\n%s\nvs\n%s" q (Item.serialize pushed)
      (Item.serialize unpushed)

let sql_of demo q =
  let sqls, _ = compile_run demo q in
  String.concat "\n" (List.map snd sqls)

(* ------------------------------------------------------------------ *)
(* Patterns of Tables 1 and 2                                          *)

let test_t1a_select_project () =
  let demo = setup () in
  let q = "for $c in CUSTOMER() where $c/CID eq \"CUST0001\" return $c/FIRST_NAME" in
  let sql = sql_of demo q in
  check_bool "where pushed" true (contains sql "WHERE t");
  check_bool "literal" true (contains sql "'CUST0001'");
  assert_equivalent demo q

let test_t1b_inner_join () =
  let demo = setup () in
  let q =
    "for $c in CUSTOMER(), $o in ORDER_T() where $c/CID eq $o/CID return <CO>{$c/CID, $o/OID}</CO>"
  in
  let sql = sql_of demo q in
  check_bool "join" true (contains sql "JOIN \"ORDER_T\"");
  check_bool "not outer" false (contains sql "LEFT OUTER JOIN");
  assert_equivalent demo q

let test_t1c_outer_join () =
  let demo = setup () in
  let q =
    "for $c in CUSTOMER() return <CUSTOMER>{$c/CID, for $o in ORDER_T() where $c/CID eq $o/CID return $o/OID}</CUSTOMER>"
  in
  let sql = sql_of demo q in
  check_bool "left outer join" true (contains sql "LEFT OUTER JOIN \"ORDER_T\"");
  assert_equivalent demo q

let test_t1d_if_then_else_case () =
  let demo = setup () in
  let q =
    "for $c in CUSTOMER() return <C>{data(if ($c/CID eq \"CUST0001\") then $c/LAST_NAME else $c/SSN)}</C>"
  in
  let sql = sql_of demo q in
  check_bool "CASE pushed" true (contains sql "CASE WHEN");
  assert_equivalent demo q

let test_t1e_group_by_aggregation () =
  let demo = setup () in
  let q =
    "for $c in CUSTOMER() group $c as $p by $c/LAST_NAME as $l return <G>{$l, count($p)}</G>"
  in
  let sql = sql_of demo q in
  check_bool "GROUP BY" true (contains sql "GROUP BY t");
  check_bool "COUNT(*)" true (contains sql "COUNT(*)");
  assert_equivalent demo q

let test_t1f_distinct () =
  let demo = setup () in
  let q = "for $c in CUSTOMER() group by $c/LAST_NAME as $l return $l" in
  let sql = sql_of demo q in
  check_bool "DISTINCT" true (contains sql "SELECT DISTINCT");
  assert_equivalent demo q

let test_t2g_outer_join_aggregation () =
  let demo = setup () in
  let q =
    "for $c in CUSTOMER() return <C>{$c/CID, <N>{count(for $o in ORDER_T() where $o/CID eq $c/CID return $o)}</N>}</C>"
  in
  let sql = sql_of demo q in
  check_bool "outer join" true (contains sql "LEFT OUTER JOIN");
  check_bool "count of right col" true (contains sql "COUNT(t");
  check_bool "group by" true (contains sql "GROUP BY");
  assert_equivalent demo q

let test_t2h_exists_semijoin () =
  let demo = setup () in
  let q =
    "for $c in CUSTOMER() where some $o in ORDER_T() satisfies $c/CID eq $o/CID return $c/CID"
  in
  let sql = sql_of demo q in
  check_bool "EXISTS" true (contains sql "EXISTS(SELECT 1");
  assert_equivalent demo q

let test_t2i_subsequence_window () =
  let demo = setup () in
  let q =
    "let $cs := for $c in CUSTOMER() let $oc := count(for $o in ORDER_T() where $c/CID eq $o/CID return $o) order by $oc descending return <C>{data($c/CID), $oc}</C> return subsequence($cs, 2, 3)"
  in
  let sql = sql_of demo q in
  (* CustomerDB is Oracle in the demo: ROWNUM wrapper *)
  check_bool "ROWNUM" true (contains sql "ROWNUM");
  check_bool "order by count desc" true (contains sql "ORDER BY COUNT(");
  assert_equivalent demo q

(* ------------------------------------------------------------------ *)
(* Parameters, capabilities, cross-database joins                      *)

let test_parameterized_nonpushable () =
  (* the §4.5 example: int2date is opaque until the inverse rewrites it,
     then date2int($start) ships as a parameter *)
  let demo = setup () in
  let q =
    "for $p in getProfile() where $p/SINCE gt xs:dateTime(\"1970-01-03T00:00:00Z\") return $p/CID"
  in
  let sql = sql_of demo q in
  check_bool "SINCE > ?" true (contains sql "\"SINCE\" > ?");
  assert_equivalent demo q

let test_string_function_pushdown () =
  let demo = setup () in
  let q =
    "for $c in CUSTOMER() return <U>{fn:upper-case($c/LAST_NAME)}</U>"
  in
  let sql = sql_of demo q in
  check_bool "UPPER pushed" true (contains sql "UPPER(t");
  assert_equivalent demo q

let test_cross_database_ppk () =
  let demo = setup () in
  let q =
    "for $c in CUSTOMER(), $k in CREDIT_CARD() where $c/CID eq $k/CID return <CK>{$c/CID, $k/NUM}</CK>"
  in
  let compiled =
    match Server.compile demo.Aldsp_demo.Demo.server q with
    | Ok c -> c
    | Error _ -> Alcotest.fail "compile"
  in
  (* the CardDB side must be a parameterized query *)
  let card_sql =
    List.filter (fun (db, _) -> db = "CardDB") compiled.Server.sql
  in
  check_int "one CardDB region" 1 (List.length card_sql);
  check_bool "parameterized" true (contains (snd (List.hd card_sql)) "= ?");
  (* and the join must be PP-k *)
  let rec has_ppk e =
    let found = ref false in
    (match e with
    | Cexpr.Flwor { clauses; _ } ->
      List.iter
        (function
          | Cexpr.Join { method_ = Cexpr.Ppk _; _ } -> found := true
          | _ -> ())
        clauses
    | _ -> ());
    ignore (Cexpr.map_children (fun c -> (if has_ppk c then found := true); c) e);
    !found
  in
  check_bool "PP-k selected" true (has_ppk compiled.Server.plan);
  assert_equivalent demo q

let test_sql92_conservative () =
  (* a Generic_sql92 source must not receive CASE or windows *)
  let open Aldsp_relational in
  let db = Database.create ~vendor:Database.Generic_sql92 "plain" in
  Database.add_table db
    (Table.create ~primary_key:[ "K" ] "T"
       [ Table.column ~nullable:false "K" Table.T_int;
         Table.column ~nullable:false "S" Table.T_varchar ]);
  Result.get_ok (Table.insert (Result.get_ok (Database.find_table db "T")) [| Sql_value.Int 1; Sql_value.Str "a" |]);
  let reg = Metadata.create () in
  Metadata.introspect_relational reg db;
  let server = Server.create reg in
  let q = "for $t in T() return <R>{data(if ($t/K eq 1) then $t/S else $t/S)}</R>" in
  let compiled = ok_exn (Result.map_error (fun _ -> "compile") (Server.compile server q)) in
  check_bool "no CASE for SQL92" false
    (List.exists (fun (_, sql) -> contains sql "CASE") compiled.Server.sql);
  (* and it still evaluates correctly in the middleware *)
  match Server.run server q with
  | Ok items -> check_bool "value" true (contains (Item.serialize items) "<R>a</R>")
  | Error m -> Alcotest.fail m

let test_unused_columns_pruned () =
  let demo = setup () in
  let q = "for $c in CUSTOMER() return $c/LAST_NAME" in
  let sql = sql_of demo q in
  check_bool "SSN not fetched" false (contains sql "SSN");
  check_bool "LAST_NAME fetched" true (contains sql "LAST_NAME");
  assert_equivalent demo q

let test_whole_row_reconstruction () =
  (* returning $c itself must reconstruct the row element with NULLs as
     missing elements *)
  let demo = setup ~customers:8 () in
  let q = "for $c in CUSTOMER() where $c/CID eq \"CUST0007\" return $c" in
  let _, result = compile_run demo q in
  match result with
  | [ Item.Node n ] ->
    (* customer 7 has a NULL first name: element absent *)
    check_int "no FIRST_NAME child" 0
      (List.length (Node.child_elements n (Qname.local "FIRST_NAME")));
    check_int "CID child present" 1
      (List.length (Node.child_elements n (Qname.local "CID")))
  | other -> Alcotest.failf "unexpected: %s" (Item.serialize other)

let test_roundtrips_counted () =
  (* a fully pushed query executes exactly one statement *)
  let demo = setup () in
  let q = "for $c in CUSTOMER() where $c/CID eq \"CUST0002\" return $c/LAST_NAME" in
  ignore (compile_run demo q);
  Aldsp_demo.Demo.reset_stats demo;
  ignore (ok_exn (Server.run demo.Aldsp_demo.Demo.server q));
  check_int "single roundtrip" 1
    demo.Aldsp_demo.Demo.customer_db.Aldsp_relational.Database.stats
      .Aldsp_relational.Database.statements

(* Property: pushdown preserves results across a family of queries with a
   random filter literal. *)
let prop_pushdown_equivalence =
  QCheck.Test.make ~name:"pushdown preserves semantics on random filters"
    ~count:25
    QCheck.(int_range 1 9)
    (fun i ->
      let demo = setup ~customers:9 () in
      let q =
        Printf.sprintf
          "for $c in CUSTOMER() where $c/CID eq \"CUST%04d\" return <R>{$c/LAST_NAME, count(for $o in ORDER_T() where $o/CID eq $c/CID return $o)}</R>"
          i
      in
      let _, pushed = compile_run demo q in
      let unpushed = run_unpushed demo q in
      Item.serialize pushed = Item.serialize unpushed)

let () =
  let t name f = Alcotest.test_case name `Quick f in
  Alcotest.run "pushdown"
    [ ( "table1",
        [ t "(a) select-project" test_t1a_select_project;
          t "(b) inner join" test_t1b_inner_join;
          t "(c) outer join" test_t1c_outer_join;
          t "(d) if-then-else CASE" test_t1d_if_then_else_case;
          t "(e) group-by aggregation" test_t1e_group_by_aggregation;
          t "(f) distinct" test_t1f_distinct ] );
      ( "table2",
        [ t "(g) outer join aggregation" test_t2g_outer_join_aggregation;
          t "(h) exists semijoin" test_t2h_exists_semijoin;
          t "(i) subsequence window" test_t2i_subsequence_window ] );
      ( "mechanics",
        [ t "parameterized non-pushable" test_parameterized_nonpushable;
          t "string functions" test_string_function_pushdown;
          t "cross-db PP-k" test_cross_database_ppk;
          t "SQL92 conservative" test_sql92_conservative;
          t "column pruning" test_unused_columns_pruned;
          t "row reconstruction" test_whole_row_reconstruction;
          t "roundtrip accounting" test_roundtrips_counted;
          QCheck_alcotest.to_alcotest prop_pushdown_equivalence ] ) ]
