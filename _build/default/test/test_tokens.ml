(* Tests for the token-stream substrate: stream <-> tree conversions and the
   three tuple representations of Figure 4. *)

open Aldsp_xml
open Aldsp_tokens

let check = Alcotest.check
let check_bool = check Alcotest.bool
let check_int = check Alcotest.int

let ok_exn = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let sample_node =
  Node.element
    ~attributes:[ (Qname.local "id", Atomic.Integer 5) ]
    (Qname.local "CUSTOMER")
    [ Node.element (Qname.local "CID") [ Node.atom (Atomic.Integer 100) ];
      Node.element (Qname.local "LAST_NAME")
        [ Node.atom (Atomic.String "al") ];
      Node.text "note" ]

let test_stream_roundtrip () =
  let stream = Token_stream.of_node sample_node in
  match ok_exn (Token_stream.to_items stream) with
  | [ Item.Node n ] -> check_bool "roundtrip" true (Node.equal n sample_node)
  | _ -> Alcotest.fail "expected one node"

let test_stream_of_sequence () =
  let seq = [ Item.integer 1; Item.Node sample_node; Item.string "x" ] in
  let items = ok_exn (Token_stream.to_items (Token_stream.of_sequence seq)) in
  check_bool "sequence roundtrip" true (Item.equal_sequence seq items)

let test_stream_malformed () =
  let bad = List.to_seq [ Token.Start_element (Qname.local "a") ] in
  (match Token_stream.to_items bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unterminated element accepted");
  let bad2 = List.to_seq [ Token.End_element ] in
  match Token_stream.to_items bad2 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "stray end accepted"

let test_box_unbox () =
  let stream = Token_stream.of_node sample_node in
  let boxed = Token_stream.box stream in
  let items = ok_exn (Token_stream.to_items (Token_stream.unbox boxed)) in
  check_bool "box/unbox" true
    (Item.equal_sequence [ Item.Node sample_node ] items);
  (* boxed tokens are transparent to to_items *)
  let items2 = ok_exn (Token_stream.to_items (Seq.return boxed)) in
  check_bool "transparent" true
    (Item.equal_sequence [ Item.Node sample_node ] items2)

let test_stream_laziness () =
  (* of_node must not force the whole tree: consuming one token from a big
     element is fine even if we never finish. *)
  let wide =
    Node.element (Qname.local "R")
      (List.init 10000 (fun i ->
           Node.element (Qname.local "X") [ Node.atom (Atomic.Integer i) ]))
  in
  match (Token_stream.of_node wide) () with
  | Seq.Cons (Token.Start_element n, _) ->
    check_bool "first token" true (Qname.equal n (Qname.local "R"))
  | _ -> Alcotest.fail "expected start element"

(* ------------------------------------------------------------------ *)
(* Tuples (Figure 4)                                                   *)

let reprs = [ Tuple.Stream_repr; Tuple.Single_repr; Tuple.Array_repr ]

let fields_fixture : Item.sequence list =
  [ [ Item.integer 100 ]; [ Item.string "al" ]; [ Item.Node sample_node ] ]

let test_tuple_field_access () =
  List.iter
    (fun repr ->
      let t = Tuple.of_sequences repr fields_fixture in
      check_int "width" 3 (Tuple.width t);
      List.iteri
        (fun i expected ->
          check_bool
            (Printf.sprintf "field %d" i)
            true
            (Item.equal_sequence expected (Tuple.field_items t i)))
        fields_fixture)
    reprs

let test_tuple_concat_subtuple () =
  List.iter
    (fun repr ->
      let a = Tuple.of_sequences repr [ [ Item.integer 1 ]; [ Item.integer 2 ] ] in
      let b = Tuple.of_sequences repr [ [ Item.string "x" ] ] in
      let c = Tuple.concat a b in
      check_int "concat width" 3 (Tuple.width c);
      check_bool "concat keeps repr" true (Tuple.repr c = repr);
      check_bool "last field" true
        (Item.equal_sequence [ Item.string "x" ] (Tuple.field_items c 2));
      let sub = Tuple.subtuple c 1 2 in
      check_int "subtuple width" 2 (Tuple.width sub);
      check_bool "subtuple field" true
        (Item.equal_sequence [ Item.integer 2 ] (Tuple.field_items sub 0)))
    reprs

let test_tuple_convert_equal () =
  let base = Tuple.of_sequences Tuple.Array_repr fields_fixture in
  List.iter
    (fun repr ->
      let converted = Tuple.convert repr base in
      check_bool "repr set" true (Tuple.repr converted = repr);
      check_bool "equal across reprs" true (Tuple.equal base converted))
    reprs

let test_tuple_stream_encoding () =
  let t =
    Tuple.of_sequences Tuple.Stream_repr
      [ [ Item.integer 100 ]; [ Item.string "al" ] ]
  in
  let tokens = List.of_seq (Tuple.to_stream t) in
  check_bool "delimited form" true
    (match tokens with
    | Token.Begin_tuple :: Token.Atom (Atomic.Integer 100)
      :: Token.Field_separator :: Token.Atom (Atomic.String "al")
      :: [ Token.End_tuple ] ->
      true
    | _ -> false)

let test_tuple_empty_field () =
  (* empty sequences in fields must survive all representations *)
  List.iter
    (fun repr ->
      let t = Tuple.of_sequences repr [ []; [ Item.integer 9 ] ] in
      check_int "width with empty" 2 (Tuple.width t);
      check_bool "empty field" true (Tuple.field_items t 0 = []);
      check_bool "second field" true
        (Item.equal_sequence [ Item.integer 9 ] (Tuple.field_items t 1)))
    reprs

(* ------------------------------------------------------------------ *)
(* Streaming serialization                                             *)

let test_serialize_stream_matches_tree () =
  let buf = Buffer.create 64 in
  Token_stream.serialize_to buf (Token_stream.of_node sample_node);
  Alcotest.check Alcotest.string "same as tree serialization"
    (Node.serialize sample_node) (Buffer.contents buf)

let test_serialize_stream_incremental () =
  (* chunks appear without forcing the whole stream *)
  let wide =
    Node.element (Qname.local "R")
      (List.init 1000 (fun i ->
           Node.element (Qname.local "X") [ Node.atom (Atomic.Integer i) ]))
  in
  let chunks = Token_stream.serialize_chunks (Token_stream.of_node wide) in
  (match chunks () with
  | Seq.Cons (first, _) -> Alcotest.check Alcotest.string "first chunk" "<R" first
  | Seq.Nil -> Alcotest.fail "no chunks")

let test_serialize_escaping_and_empty () =
  let node =
    Node.element
      ~attributes:[ (Qname.local "a", Atomic.String "x<y") ]
      (Qname.local "E")
      [ Node.text "a&b" ]
  in
  let buf = Buffer.create 32 in
  Token_stream.serialize_to buf (Token_stream.of_node node);
  Alcotest.check Alcotest.string "escaped" "<E a=\"x&lt;y\">a&amp;b</E>"
    (Buffer.contents buf);
  let empty = Node.element (Qname.local "Z") [] in
  let buf2 = Buffer.create 8 in
  Token_stream.serialize_to buf2 (Token_stream.of_node empty);
  Alcotest.check Alcotest.string "self-closing" "<Z/>" (Buffer.contents buf2)

let test_serialize_malformed () =
  let bad = List.to_seq [ Token.End_element ] in
  match Token_stream.serialize_to (Buffer.create 4) bad with
  | () -> Alcotest.fail "accepted unbalanced stream"
  | exception Invalid_argument _ -> ()

(* Property: streaming serialization of any shallow tree equals the tree
   serializer. *)
let prop_serialize_agree =
  let leaf_gen =
    QCheck.Gen.oneof
      [ QCheck.Gen.map (fun i -> Node.atom (Atomic.Integer i)) QCheck.Gen.small_signed_int;
        QCheck.Gen.map (fun s -> Node.text ("t" ^ s)) QCheck.Gen.small_string ]
  in
  let node_gen =
    QCheck.Gen.map
      (fun leaves ->
        Node.element (Qname.local "R")
          (List.map
             (fun l -> Node.element (Qname.local "C") [ l ])
             leaves))
      (QCheck.Gen.list_size (QCheck.Gen.int_range 0 6) leaf_gen)
  in
  QCheck.Test.make ~name:"streaming serializer agrees with tree serializer"
    ~count:200 (QCheck.make node_gen) (fun tree ->
      let buf = Buffer.create 64 in
      Token_stream.serialize_to buf (Token_stream.of_node tree);
      Buffer.contents buf = Node.serialize tree)

(* Property: conversion between representations preserves equality. *)
let prop_tuple_roundtrip =
  let field_gen =
    QCheck.map
      (fun xs -> List.map (fun i -> Item.integer i) xs)
      QCheck.(list_of_size (Gen.int_range 0 3) small_signed_int)
  in
  let tuple_gen = QCheck.(list_of_size (Gen.int_range 1 5) field_gen) in
  QCheck.Test.make ~name:"tuple repr conversions preserve value" ~count:200
    tuple_gen (fun fields ->
      let a = Tuple.of_sequences Tuple.Array_repr fields in
      let s = Tuple.convert Tuple.Stream_repr a in
      let g = Tuple.convert Tuple.Single_repr s in
      Tuple.equal a s && Tuple.equal s g
      && Tuple.equal (Tuple.convert Tuple.Array_repr g) a)

let prop_stream_roundtrip =
  (* random shallow trees survive streaming *)
  let leaf_gen =
    QCheck.Gen.oneof
      [ QCheck.Gen.map (fun i -> Node.atom (Atomic.Integer i)) QCheck.Gen.small_signed_int;
        QCheck.Gen.map (fun s -> Node.text ("t" ^ s)) QCheck.Gen.small_string ]
  in
  let tree_gen =
    QCheck.Gen.map
      (fun leaves -> Node.element (Qname.local "R") leaves)
      (QCheck.Gen.list_size (QCheck.Gen.int_range 0 8) leaf_gen)
  in
  QCheck.Test.make ~name:"token stream roundtrips trees" ~count:200
    (QCheck.make tree_gen) (fun tree ->
      match Token_stream.to_items (Token_stream.of_node tree) with
      | Ok [ Item.Node n ] -> Node.equal n tree
      | _ -> false)

let () =
  let t name f = Alcotest.test_case name `Quick f in
  Alcotest.run "tokens"
    [ ( "stream",
        [ t "roundtrip" test_stream_roundtrip;
          t "sequence" test_stream_of_sequence;
          t "malformed" test_stream_malformed;
          t "box/unbox" test_box_unbox;
          t "laziness" test_stream_laziness;
          QCheck_alcotest.to_alcotest prop_stream_roundtrip ] );
      ( "serialize",
        [ t "matches tree" test_serialize_stream_matches_tree;
          t "incremental" test_serialize_stream_incremental;
          t "escaping + empty" test_serialize_escaping_and_empty;
          t "malformed" test_serialize_malformed;
          QCheck_alcotest.to_alcotest prop_serialize_agree ] );
      ( "tuple",
        [ t "field access" test_tuple_field_access;
          t "concat/subtuple" test_tuple_concat_subtuple;
          t "convert+equal" test_tuple_convert_equal;
          t "stream encoding" test_tuple_stream_encoding;
          t "empty field" test_tuple_empty_field;
          QCheck_alcotest.to_alcotest prop_tuple_roundtrip ] ) ]
