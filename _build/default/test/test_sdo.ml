(* Tests for SDO updates (§6): change tracking, lineage analysis, update
   propagation with optimistic concurrency, inverse functions on the write
   path, two-phase commit, and update overrides. *)

open Aldsp_core
open Aldsp_xml
open Aldsp_relational
open Aldsp_sdo

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int
let check_string = Alcotest.check Alcotest.string

let ok_exn = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let err_exn = function
  | Ok _ -> Alcotest.fail "expected an error"
  | Error msg -> msg

let provider = Qname.make ~uri:"fn" "getProfile"

let setup () = Aldsp_demo.Demo.create ~customers:4 ~orders_per_customer:1 ()

let read_profile demo cid =
  match
    ok_exn
      (Server.run demo.Aldsp_demo.Demo.server
         (Printf.sprintf "getProfileByID(\"%s\")" cid))
  with
  | [ Item.Node n ] -> Sdo.of_result ~ds_function:provider n
  | other -> Alcotest.failf "unexpected profile: %s" (Item.serialize other)

let last_name demo cid =
  match
    ok_exn
      (Server.run demo.Aldsp_demo.Demo.server
         (Printf.sprintf
            "for $c in CUSTOMER() where $c/CID eq \"%s\" return fn:data($c/LAST_NAME)"
            cid))
  with
  | [ Item.Atom a ] -> Atomic.to_string a
  | other -> Alcotest.failf "unexpected: %s" (Item.serialize other)

let path names = List.map Qname.local names

(* ------------------------------------------------------------------ *)
(* SDO change tracking                                                 *)

let test_change_tracking () =
  let demo = setup () in
  let sdo = read_profile demo "CUST0001" in
  check_bool "fresh object unchanged" false (Sdo.is_changed sdo);
  ok_exn (Sdo.set_field sdo (path [ "PROFILE"; "LAST_NAME" ]) (Atomic.String "Lee"));
  check_bool "changed" true (Sdo.is_changed sdo);
  (match sdo.Sdo.change_log with
  | [ { Sdo.old_value = Some old; new_value = Some nv; change_path } ] ->
    check_string "old" "Smith"
      (* CUST0001 has last name from the demo table *)
      (match old with Atomic.String s -> s | a -> Atomic.to_string a)
    |> ignore;
    ignore nv;
    check_int "path depth" 2 (List.length change_path)
  | _ -> Alcotest.fail "one change expected");
  (* current reflects the change, original does not *)
  check_bool "current updated" true
    (Sdo.get_field sdo (path [ "PROFILE"; "LAST_NAME" ]) = Some (Atomic.String "Lee"))

let test_set_same_value_is_noop () =
  let demo = setup () in
  let sdo = read_profile demo "CUST0001" in
  let current = Option.get (Sdo.get_field sdo (path [ "PROFILE"; "LAST_NAME" ])) in
  ok_exn (Sdo.set_field sdo (path [ "PROFILE"; "LAST_NAME" ]) current);
  check_bool "no-op" false (Sdo.is_changed sdo)

let test_serialized_change_log () =
  let demo = setup () in
  let sdo = read_profile demo "CUST0002" in
  ok_exn (Sdo.set_field sdo (path [ "PROFILE"; "LAST_NAME" ]) (Atomic.String "Zed"));
  let log = Sdo.serialize_change_log sdo in
  check_bool "has change element" true
    (let rec contains i =
       i + 7 <= String.length log && (String.sub log i 7 = "<change" || contains (i + 1))
     in
     contains 0);
  check_bool "records new value" true
    (let rec contains i =
       i + 8 <= String.length log && (String.sub log i 8 = "<new>Zed" || contains (i + 1))
     in
     contains 0)

(* ------------------------------------------------------------------ *)
(* Lineage (§6)                                                        *)

let test_lineage_of_logical_service () =
  let demo = setup () in
  let lineage = ok_exn (Lineage.analyze demo.Aldsp_demo.Demo.registry provider) in
  (match Lineage.source_of lineage (path [ "PROFILE"; "LAST_NAME" ]) with
  | Some cs ->
    check_string "table" "CUSTOMER" cs.Lineage.cs_table;
    check_string "db" "CustomerDB" cs.Lineage.cs_db;
    check_bool "no transform" true (cs.Lineage.cs_via = None)
  | None -> Alcotest.fail "LAST_NAME lineage missing");
  (* the SINCE path went through int2date *)
  (match Lineage.source_of lineage (path [ "PROFILE"; "SINCE" ]) with
  | Some cs ->
    check_bool "via int2date" true
      (match cs.Lineage.cs_via with
      | Some f -> f.Qname.local = "int2date"
      | None -> false)
  | None -> Alcotest.fail "SINCE lineage missing");
  (* RATING comes from the web service: not updatable *)
  check_bool "rating not updatable" true
    (Lineage.source_of lineage (path [ "PROFILE"; "RATING" ]) = None);
  check_bool "CUSTOMER table updatable" true
    (List.mem ("CustomerDB", "CUSTOMER") (Lineage.updatable_tables lineage))

let test_lineage_of_physical_service () =
  let demo = setup () in
  let lineage =
    ok_exn (Lineage.analyze demo.Aldsp_demo.Demo.registry (Qname.local "CUSTOMER"))
  in
  check_bool "every column mapped" true
    (Lineage.source_of lineage (path [ "CUSTOMER"; "SSN" ]) <> None)

(* ------------------------------------------------------------------ *)
(* Submit (§6, Figure 5)                                               *)

let test_submit_updates_only_affected_source () =
  let demo = setup () in
  let sdo = read_profile demo "CUST0001" in
  ok_exn (Sdo.set_field sdo (path [ "PROFILE"; "LAST_NAME" ]) (Atomic.String "Lee"));
  Aldsp_demo.Demo.reset_stats demo;
  let report = ok_exn (Submit.submit demo.Aldsp_demo.Demo.registry [ sdo ]) in
  check_int "one update" 1 (List.length report.Submit.updates);
  check_bool "only CustomerDB" true
    (report.Submit.sources_touched = [ "CustomerDB" ]);
  check_int "card db untouched" 0
    demo.Aldsp_demo.Demo.card_db.Database.stats.Database.statements;
  check_string "value written" "Lee" (last_name demo "CUST0001");
  check_bool "change log cleared" false (Sdo.is_changed sdo)

let test_submit_optimistic_conflict_rolls_back () =
  let demo = setup () in
  let sdo = read_profile demo "CUST0001" in
  ok_exn (Sdo.set_field sdo (path [ "PROFILE"; "LAST_NAME" ]) (Atomic.String "Lee"));
  (* concurrent writer changes the row after our read *)
  ignore
    (ok_exn
       (Sql_exec.execute_dml demo.Aldsp_demo.Demo.customer_db
          (Result.get_ok
             (Sql_parser.parse
                "UPDATE CUSTOMER SET LAST_NAME = 'Hijacked' WHERE CID = 'CUST0001'")
          |> function
          | Sql_ast.Dml d -> d
          | _ -> assert false)));
  let msg = err_exn (Submit.submit demo.Aldsp_demo.Demo.registry [ sdo ]) in
  check_bool "conflict reported" true
    (let rec contains i =
       i + 8 <= String.length msg && (String.sub msg i 8 = "conflict" || contains (i + 1))
     in
     contains 0);
  check_string "hijacker's value stands" "Hijacked" (last_name demo "CUST0001");
  check_bool "log kept for retry" true (Sdo.is_changed sdo)

let test_submit_policy_all_read_values () =
  let demo = setup () in
  let sdo = read_profile demo "CUST0002" in
  ok_exn (Sdo.set_field sdo (path [ "PROFILE"; "LAST_NAME" ]) (Atomic.String "Lee"));
  (* a concurrent change to a DIFFERENT column we read *)
  ignore
    (ok_exn
       (Sql_exec.execute_dml demo.Aldsp_demo.Demo.customer_db
          (Result.get_ok (Sql_parser.parse
             "UPDATE CUSTOMER SET SINCE = 999999 WHERE CID = 'CUST0002'")
          |> function Sql_ast.Dml d -> d | _ -> assert false)));
  (* updated-values-only: succeeds *)
  ignore (ok_exn (Submit.submit demo.Aldsp_demo.Demo.registry [ sdo ]));
  (* all-read-values: a second change now conflicts on SINCE *)
  let sdo2 = read_profile demo "CUST0003" in
  ok_exn (Sdo.set_field sdo2 (path [ "PROFILE"; "LAST_NAME" ]) (Atomic.String "Kay"));
  ignore
    (ok_exn
       (Sql_exec.execute_dml demo.Aldsp_demo.Demo.customer_db
          (Result.get_ok (Sql_parser.parse
             "UPDATE CUSTOMER SET SINCE = 123 WHERE CID = 'CUST0003'")
          |> function Sql_ast.Dml d -> d | _ -> assert false)));
  ignore
    (err_exn
       (Submit.submit ~policy:Submit.All_read_values
          demo.Aldsp_demo.Demo.registry [ sdo2 ]))

let test_submit_designated_policy () =
  let demo = setup () in
  let sdo = read_profile demo "CUST0004" in
  ok_exn (Sdo.set_field sdo (path [ "PROFILE"; "LAST_NAME" ]) (Atomic.String "Kim"));
  (* designate SINCE as the guard; a conflicting SINCE change must abort *)
  ignore
    (ok_exn
       (Sql_exec.execute_dml demo.Aldsp_demo.Demo.customer_db
          (Result.get_ok (Sql_parser.parse
             "UPDATE CUSTOMER SET SINCE = 777 WHERE CID = 'CUST0004'")
          |> function Sql_ast.Dml d -> d | _ -> assert false)));
  ignore
    (err_exn
       (Submit.submit
          ~policy:(Submit.Designated [ path [ "PROFILE"; "SINCE" ] ])
          demo.Aldsp_demo.Demo.registry [ sdo ]))

let test_submit_through_inverse_function () =
  (* Figure 5 + §4.5: updating the transformed SINCE element maps back
     through date2int *)
  let demo = setup () in
  let sdo = read_profile demo "CUST0001" in
  ok_exn
    (Sdo.set_field sdo (path [ "PROFILE"; "SINCE" ]) (Atomic.Date_time 864000.));
  let report = ok_exn (Submit.submit demo.Aldsp_demo.Demo.registry [ sdo ]) in
  check_int "one update" 1 (List.length report.Submit.updates);
  (* the stored value is the epoch integer *)
  match
    ok_exn
      (Server.run demo.Aldsp_demo.Demo.server
         "for $c in CUSTOMER() where $c/CID eq \"CUST0001\" return fn:data($c/SINCE)")
  with
  | [ Item.Atom (Atomic.Integer 864000) ] -> ()
  | other -> Alcotest.failf "stored value wrong: %s" (Item.serialize other)

let test_submit_non_updatable_path_rejected () =
  let demo = setup () in
  let sdo = read_profile demo "CUST0001" in
  ok_exn (Sdo.set_field sdo (path [ "PROFILE"; "RATING" ]) (Atomic.Integer 9));
  let msg = err_exn (Submit.submit demo.Aldsp_demo.Demo.registry [ sdo ]) in
  check_bool "mentions lineage" true
    (let rec contains i =
       i + 7 <= String.length msg && (String.sub msg i 7 = "lineage" || contains (i + 1))
     in
     contains 0);
  (* nothing was written *)
  check_string "last name intact" "Smith" (last_name demo "CUST0001")

let test_submit_multiple_objects_atomic () =
  let demo = setup () in
  let a = read_profile demo "CUST0001" in
  let b = read_profile demo "CUST0002" in
  ok_exn (Sdo.set_field a (path [ "PROFILE"; "LAST_NAME" ]) (Atomic.String "A1"));
  ok_exn (Sdo.set_field b (path [ "PROFILE"; "RATING" ]) (Atomic.Integer 1));
  (* b's change is invalid: the whole submit must roll back, incl. a's *)
  ignore (err_exn (Submit.submit demo.Aldsp_demo.Demo.registry [ a; b ]));
  check_bool "a's change not applied" true (last_name demo "CUST0001" <> "A1")

let test_update_override () =
  let demo = setup () in
  let sdo = read_profile demo "CUST0001" in
  ok_exn (Sdo.set_field sdo (path [ "PROFILE"; "LAST_NAME" ]) (Atomic.String "Ovr"));
  let overrides = Submit.no_overrides () in
  let called = ref false in
  Submit.register_override overrides provider (fun _ ->
      called := true;
      Ok ());
  let report =
    ok_exn (Submit.submit ~overrides demo.Aldsp_demo.Demo.registry [ sdo ])
  in
  check_bool "override called" true !called;
  check_bool "flag set" true report.Submit.overridden;
  (* default propagation skipped: the table is unchanged *)
  check_bool "table untouched" true (last_name demo "CUST0001" <> "Ovr")

(* ------------------------------------------------------------------ *)
(* Multi-argument transformations (§4.5: full name vs first/last name)  *)

let fullname_setup () =
  let db = Database.create ~vendor:Database.Oracle "PeopleDB" in
  Database.add_table db
    (Table.create ~primary_key:[ "ID" ] "PERSON"
       [ Table.column ~nullable:false "ID" Table.T_int;
         Table.column ~nullable:false "FIRST" Table.T_varchar;
         Table.column ~nullable:false "LAST" Table.T_varchar ]);
  let t = Result.get_ok (Database.find_table db "PERSON") in
  List.iter
    (fun r -> Result.get_ok (Table.insert t r))
    [ [| Sql_value.Int 1; Sql_value.Str "Ann"; Sql_value.Str "Smith" |];
      [| Sql_value.Int 2; Sql_value.Str "Bob"; Sql_value.Str "Jones" |] ];
  let registry = Metadata.create () in
  Metadata.introspect_relational registry db;
  let uri = "urn:names" in
  let fullname = Qname.make ~uri "fullname" in
  let first_of = Qname.make ~uri "first-of" in
  let last_of = Qname.make ~uri "last-of" in
  let split full =
    match String.index_opt full ' ' with
    | Some i ->
      ( String.sub full 0 i,
        String.sub full (i + 1) (String.length full - i - 1) )
    | None -> (full, "")
  in
  Metadata.register_custom_function registry
    { Aldsp_services.Custom_function.fn_name = fullname;
      param_types = [ Atomic.T_string; Atomic.T_string ];
      return_type = Atomic.T_string;
      body =
        (function
          | [ Atomic.String f; Atomic.String l ] ->
            Ok (Atomic.String (f ^ " " ^ l))
          | _ -> Error "fullname: bad args") };
  Metadata.register_custom_function registry
    { Aldsp_services.Custom_function.fn_name = first_of;
      param_types = [ Atomic.T_string ];
      return_type = Atomic.T_string;
      body =
        (function
          | [ Atomic.String full ] -> Ok (Atomic.String (fst (split full)))
          | _ -> Error "first-of: bad args") };
  Metadata.register_custom_function registry
    { Aldsp_services.Custom_function.fn_name = last_of;
      param_types = [ Atomic.T_string ];
      return_type = Atomic.T_string;
      body =
        (function
          | [ Atomic.String full ] -> Ok (Atomic.String (snd (split full)))
          | _ -> Error "last-of: bad args") };
  Metadata.register_multi_inverse registry ~f:fullname
    ~projections:[ first_of; last_of ];
  let server = Server.create registry in
  (match
     Server.register_data_service server ~name:"PersonDS"
       {|declare namespace nm = "urn:names";
(::pragma function kind="read" ::)
declare function getPerson() as element(PERSON)* {
  for $p in PERSON()
  return <PERSON>
    <ID>{fn:data($p/ID)}</ID>
    <NAME>{nm:fullname($p/FIRST, $p/LAST)}</NAME>
  </PERSON>
};|}
   with
  | Ok () -> ()
  | Error ds ->
    Alcotest.failf "registration failed: %s"
      (String.concat "; " (List.map Diag.to_string ds)));
  (db, registry, server)

let person_provider = Qname.make ~uri:"fn" "getPerson"

let test_multi_arg_lineage () =
  let _, registry, _ = fullname_setup () in
  let lineage = ok_exn (Lineage.analyze registry person_provider) in
  let sources =
    Lineage.sources_of lineage (path [ "PERSON"; "NAME" ])
  in
  check_int "one path, two columns" 2 (List.length sources);
  let cols = List.map (fun cs -> cs.Lineage.cs_column) sources in
  check_bool "FIRST and LAST" true
    (List.mem "FIRST" cols && List.mem "LAST" cols);
  check_bool "writebacks recorded" true
    (List.for_all (fun cs -> cs.Lineage.cs_writeback <> None) sources)

let test_multi_arg_update () =
  let db, registry, server = fullname_setup () in
  let sdo =
    match Server.run server "getPerson()[ID eq 1]" with
    | Ok [ Item.Node n ] -> Sdo.of_result ~ds_function:person_provider n
    | Ok other -> Alcotest.failf "unexpected: %s" (Item.serialize other)
    | Error m -> Alcotest.fail m
  in
  check_bool "composed on read" true
    (Sdo.get_field sdo (path [ "PERSON"; "NAME" ])
    = Some (Atomic.String "Ann Smith"));
  ok_exn
    (Sdo.set_field sdo (path [ "PERSON"; "NAME" ]) (Atomic.String "Jane Roe"));
  let report = ok_exn (Submit.submit registry [ sdo ]) in
  (* one UPDATE setting both decomposed columns *)
  check_int "one statement" 1 (List.length report.Submit.updates);
  let sql = (List.hd report.Submit.updates).Submit.tu_sql in
  let contains needle =
    let n = String.length needle and h = String.length sql in
    let rec go i = i + n <= h && (String.sub sql i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "FIRST assigned" true (contains "\"FIRST\" = 'Jane'");
  check_bool "LAST assigned" true (contains "\"LAST\" = 'Roe'");
  ignore db;
  (match Server.run server "getPerson()[ID eq 1]" with
  | Ok [ Item.Node n ] ->
    check_bool "recomposed" true
      (let s = Node.serialize n in
       let rec go i =
         i + 8 <= String.length s
         && (String.sub s i 8 = "Jane Roe" || go (i + 1))
       in
       go 0)
  | _ -> Alcotest.fail "read back failed")

let test_multi_arg_equality_pushdown () =
  let _, _, server = fullname_setup () in
  let q = "for $p in getPerson() where $p/NAME eq \"Ann Smith\" return $p/ID" in
  (match Server.compile server q with
  | Ok compiled ->
    let sql = String.concat " " (List.map snd compiled.Aldsp_core.Server.sql) in
    let contains needle =
      let n = String.length needle and h = String.length sql in
      let rec go i = i + n <= h && (String.sub sql i n = needle || go (i + 1)) in
      go 0
    in
    check_bool "decomposed to FIRST = ? AND LAST = ?" true
      (contains "\"FIRST\" = ?" && contains "\"LAST\" = ?")
  | Error _ -> Alcotest.fail "compile failed");
  match Server.run server q with
  | Ok r -> check_bool "selects the right person" true (Item.serialize r = "<ID>1</ID>")
  | Error m -> Alcotest.fail m

let () =
  let t name f = Alcotest.test_case name `Quick f in
  Alcotest.run "sdo"
    [ ( "change-tracking",
        [ t "tracking" test_change_tracking;
          t "same-value no-op" test_set_same_value_is_noop;
          t "serialized log" test_serialized_change_log ] );
      ( "lineage",
        [ t "logical service" test_lineage_of_logical_service;
          t "physical service" test_lineage_of_physical_service ] );
      ( "submit",
        [ t "affected source only" test_submit_updates_only_affected_source;
          t "optimistic conflict" test_submit_optimistic_conflict_rolls_back;
          t "all-read-values policy" test_submit_policy_all_read_values;
          t "designated policy" test_submit_designated_policy;
          t "inverse on write path" test_submit_through_inverse_function;
          t "non-updatable path" test_submit_non_updatable_path_rejected;
          t "multi-object atomicity" test_submit_multiple_objects_atomic;
          t "update override" test_update_override ] );
      ( "multi-argument transforms",
        [ t "lineage" test_multi_arg_lineage;
          t "decomposed update" test_multi_arg_update;
          t "equality pushdown" test_multi_arg_equality_pushdown ] ) ]
