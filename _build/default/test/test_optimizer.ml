(* Tests for the optimizer: view unfolding, source-access elimination, join
   introduction, join method selection, inverse functions, the view
   sub-optimizer cache — plus equivalence checks that optimization
   preserves semantics. *)

open Aldsp_core
open Aldsp_xml

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int

let ok_exn = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let setup ?customers:(n = 6) () = Aldsp_demo.Demo.create ~customers:n ()

let stages ?optimizer_options demo q =
  let open Aldsp_demo.Demo in
  let diag = Diag.collector Diag.Fail_fast in
  let ctx =
    Normalize.context ~schema_lookup:(Metadata.find_schema demo.registry) diag
  in
  let core = Normalize.expr ctx (ok_exn (Xq_parser.parse_expr q)) in
  let env = Typecheck.env demo.registry diag in
  let _, typed = Typecheck.check env core in
  let opt = Optimizer.create ?options:optimizer_options demo.registry in
  let optimized, stats = Optimizer.optimize opt typed in
  let final = Optimizer.select_methods opt optimized in
  (typed, optimized, final, stats, opt)

let eval demo e =
  let rt = Eval.runtime demo.Aldsp_demo.Demo.registry in
  ok_exn (Eval.eval rt e)

let rule_fired stats name = List.mem_assoc name stats.Rewrite.applications

let rec find_join e acc =
  let acc =
    match e with
    | Cexpr.Flwor { clauses; _ } ->
      List.fold_left
        (fun acc c ->
          match c with Cexpr.Join { method_; _ } -> method_ :: acc | _ -> acc)
        acc clauses
    | _ -> acc
  in
  let r = ref acc in
  ignore
    (Cexpr.map_children
       (fun c ->
         r := find_join c !r;
         c)
       e);
  !r

(* ------------------------------------------------------------------ *)

let test_view_unfolding () =
  let demo = setup () in
  let _, _, final, stats, _ =
    stages demo "for $n in getCustomerNames() return $n"
  in
  check_bool "inline fired" true (rule_fired stats "inline-view");
  let calls = ref 0 in
  let rec scan e =
    (match e with
    | Cexpr.Call { fn; _ } when fn.Qname.local = "getCustomerNames" ->
      incr calls
    | _ -> ());
    ignore (Cexpr.map_children (fun c -> scan c; c) e)
  in
  scan final;
  check_int "no residual view calls" 0 !calls

let test_source_access_elimination () =
  (* only LAST_NAME is used: the plan must not call the rating service *)
  let demo = setup () in
  let _, _, final, _, _ =
    stages demo "for $p in getProfile() return $p/LAST_NAME"
  in
  let mentions = ref [] in
  let rec scan e =
    (match e with
    | Cexpr.Call { fn; _ } -> mentions := fn.Qname.local :: !mentions
    | _ -> ());
    ignore (Cexpr.map_children (fun c -> scan c; c) e)
  in
  scan final;
  check_bool "no rating call survives" false (List.mem "getRating" !mentions)

let test_constructor_elimination_example () =
  (* the paper's §4.2 example: the ORDERS branch disappears entirely *)
  let demo = setup () in
  let q =
    "let $x := <CUSTOMER><LAST_NAME>{\"Li\"}</LAST_NAME><ORDERS>{ORDER_T()}</ORDERS></CUSTOMER> \
     return fn:data($x/LAST_NAME)"
  in
  let _, _, final, _, _ = stages demo q in
  check_bool "reduced to the constant" true
    (final = Cexpr.Const (Atomic.String "Li")
    || final = Cexpr.Data (Cexpr.Const (Atomic.String "Li")));
  check_bool "evaluates" true
    (Item.equal_sequence (eval demo final) [ Item.string "Li" ])

let test_join_introduction_inner () =
  let demo = setup () in
  let _, _, final, stats, _ =
    stages demo
      "for $c in CUSTOMER(), $o in ORDER_T() where $c/CID eq $o/CID return $o/OID"
  in
  check_bool "join introduced" true (rule_fired stats "join-introduction");
  check_bool "INL selected for independent equi join" true
    (List.mem Cexpr.Index_nested_loop (find_join final []))

let test_outer_join_from_nested_flwor () =
  let demo = setup () in
  let _, _, final, stats, _ =
    stages demo
      "for $c in CUSTOMER() return <C>{$c/CID, for $o in ORDER_T() where $o/CID eq $c/CID return $o/OID}</C>"
  in
  check_bool "hoist fired" true (rule_fired stats "return-flwor-hoist");
  let kinds = ref [] in
  let rec scan e =
    (match e with
    | Cexpr.Flwor { clauses; _ } ->
      List.iter
        (function
          | Cexpr.Join { kind; export = Cexpr.Grouped _; _ } ->
            kinds := kind :: !kinds
          | _ -> ())
        clauses
    | _ -> ());
    ignore (Cexpr.map_children (fun c -> scan c; c) e)
  in
  scan final;
  check_bool "grouped left outer join" true (List.mem Cexpr.J_left_outer !kinds)

let test_let_count_to_outer_join () =
  let demo = setup () in
  let _, _, _, stats, _ =
    stages demo
      "for $c in CUSTOMER() let $n := count(for $o in ORDER_T() where $o/CID eq $c/CID return $o) return <C>{$c/CID, $n}</C>"
  in
  check_bool "outer-join rewrite fired" true
    (rule_fired stats "let-flwor-to-outer-join"
    || rule_fired stats "return-flwor-hoist")

let test_inverse_function_rewrite () =
  let demo = setup () in
  let q =
    "for $p in getProfile() where $p/SINCE gt xs:dateTime(\"1970-01-03T00:00:00Z\") return $p/CID"
  in
  let _, _, final, stats, _ = stages demo q in
  check_bool "inverse rule fired" true (rule_fired stats "inverse-function");
  let names = ref [] in
  let rec scan e =
    (match e with
    | Cexpr.Call { fn; _ } -> names := fn.Qname.local :: !names
    | _ -> ());
    ignore (Cexpr.map_children (fun c -> scan c; c) e)
  in
  scan final;
  check_bool "date2int introduced" true (List.mem "date2int" !names)

let test_inverse_disabled_by_option () =
  let demo = setup () in
  let options =
    { Optimizer.default_options with Optimizer.use_inverse_functions = false }
  in
  let _, _, _, stats, _ =
    stages ~optimizer_options:options demo
      "for $p in getProfile() where $p/SINCE gt xs:dateTime(\"1970-01-03T00:00:00Z\") return $p/CID"
  in
  check_bool "rule off" false (rule_fired stats "inverse-function")

let test_view_cache () =
  let demo = setup () in
  let opt = Optimizer.create demo.Aldsp_demo.Demo.registry in
  let q = "for $n in getCustomerNames() return $n" in
  let compile () =
    let diag = Diag.collector Diag.Fail_fast in
    let ctx =
      Normalize.context
        ~schema_lookup:(Metadata.find_schema demo.Aldsp_demo.Demo.registry)
        diag
    in
    let core = Normalize.expr ctx (ok_exn (Xq_parser.parse_expr q)) in
    let env = Typecheck.env demo.Aldsp_demo.Demo.registry diag in
    let _, typed = Typecheck.check env core in
    ignore (Optimizer.optimize opt typed)
  in
  compile ();
  let misses_after_first = Optimizer.view_cache_misses opt in
  compile ();
  compile ();
  check_bool "first compile misses" true (misses_after_first >= 1);
  check_int "no further misses" misses_after_first
    (Optimizer.view_cache_misses opt);
  check_bool "hits recorded" true (Optimizer.view_cache_hits opt >= 2)

let test_cacheable_functions_not_inlined () =
  let demo = setup () in
  Metadata.set_cacheable demo.Aldsp_demo.Demo.registry
    (Qname.make ~uri:"fn" "getCustomerNames")
    true;
  let _, _, final, _, _ = stages demo "getCustomerNames()" in
  match final with
  | Cexpr.Call { fn; _ } when fn.Qname.local = "getCustomerNames" -> ()
  | e ->
    Alcotest.failf "cache-enabled view was inlined: %s" (Cexpr.to_string e)

let test_equi_join_keys () =
  let on_ =
    Cexpr.Ebv
      (Cexpr.Binop
         ( Cexpr.And,
           Cexpr.Ebv (Cexpr.Binop (Cexpr.V_eq, Cexpr.Var "l", Cexpr.Var "r")),
           Cexpr.Ebv
             (Cexpr.Binop
                (Cexpr.V_gt, Cexpr.Var "l2", Cexpr.Const (Atomic.Integer 3)))
         ))
  in
  match Optimizer.equi_join_keys ~right_vars:[ "r" ] on_ with
  | Some ([ (Cexpr.Var "l", Cexpr.Var "r") ], residual) ->
    check_int "one residual" 1 (List.length residual)
  | _ -> Alcotest.fail "equi key extraction"

let equivalence_queries =
  [ "for $c in CUSTOMER() where $c/CID eq \"CUST0002\" return $c/LAST_NAME";
    "for $c in CUSTOMER(), $o in ORDER_T() where $c/CID eq $o/CID return <R>{$c/CID, $o/OID}</R>";
    "for $c in CUSTOMER() return <C>{$c/CID, for $o in ORDER_T() where $o/CID eq $c/CID return $o/OID}</C>";
    "for $c in CUSTOMER() group $c as $g by $c/LAST_NAME as $l return <G>{$l, count($g)}</G>";
    "for $c in CUSTOMER() order by $c/CID descending return $c/LAST_NAME";
    "for $c in CUSTOMER() where some $o in ORDER_T() satisfies $o/CID eq $c/CID return $c/CID";
    "fn:subsequence(for $c in CUSTOMER() order by $c/CID return $c/CID, 2, 3)";
    "for $p in getProfile() return $p/RATING";
    "getProfileByID(\"CUST0003\")" ]

let test_optimizer_preserves_semantics () =
  let demo = setup ~customers:5 () in
  List.iter
    (fun q ->
      let typed, _, final, _, _ = stages demo q in
      let before = eval demo typed in
      let after = eval demo final in
      if not (Item.serialize before = Item.serialize after) then
        Alcotest.failf "query %s changed: %s vs %s" q (Item.serialize before)
          (Item.serialize after))
    equivalence_queries

let () =
  let t name f = Alcotest.test_case name `Quick f in
  Alcotest.run "optimizer"
    [ ( "rules",
        [ t "view unfolding" test_view_unfolding;
          t "source access elimination" test_source_access_elimination;
          t "constructor elimination" test_constructor_elimination_example;
          t "join introduction" test_join_introduction_inner;
          t "nested flwor -> outer join" test_outer_join_from_nested_flwor;
          t "let count -> outer join" test_let_count_to_outer_join;
          t "inverse functions" test_inverse_function_rewrite;
          t "inverse off" test_inverse_disabled_by_option;
          t "equi keys" test_equi_join_keys ] );
      ( "view cache",
        [ t "memoized" test_view_cache;
          t "cacheable not inlined" test_cacheable_functions_not_inlined ] );
      ( "equivalence",
        [ t "optimized = unoptimized" test_optimizer_preserves_semantics ] ) ]
