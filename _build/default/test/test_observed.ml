(* Tests for the observed-cost roadmap feature (§9): instrumentation of
   source calls and cost-based reordering of independent iterations. *)

open Aldsp_core
open Aldsp_xml
open Aldsp_relational
open Aldsp_services

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int

let ok_exn = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

(* ------------------------------------------------------------------ *)

let test_recording_and_cost () =
  let obs = Observed.create () in
  let fn = Qname.local "SRC" in
  check_bool "unknown at first" true (Observed.cost obs fn = None);
  Observed.record obs fn ~latency:0.010 ~cardinality:100;
  (match Observed.observed obs fn with
  | Some s ->
    check_int "calls" 1 s.Observed.calls;
    check_bool "latency" true (abs_float (s.Observed.mean_latency -. 0.010) < 1e-9)
  | None -> Alcotest.fail "missing sample");
  (* exponentially weighted: a shift in behaviour moves the mean *)
  for _ = 1 to 30 do
    Observed.record obs fn ~latency:0.002 ~cardinality:10
  done;
  (match Observed.observed obs fn with
  | Some s ->
    check_bool "mean tracks the shift" true (s.Observed.mean_latency < 0.004);
    check_bool "cardinality tracks" true (s.Observed.mean_cardinality < 20.)
  | None -> Alcotest.fail "missing sample");
  check_bool "cost available" true (Observed.cost obs fn <> None)

(* Two independent sources with very different profiles: SLOW (3 rows,
   slow) and FAST (60 rows, fast). The best outer is the small/slow one. *)
let two_source_registry ~slow_latency ~fast_latency =
  let slow_db = Database.create "SlowDB" ~roundtrip_latency:slow_latency in
  Database.add_table slow_db
    (Table.create ~primary_key:[ "K" ] "SLOW"
       [ Table.column ~nullable:false "K" Table.T_int ]);
  let t = Result.get_ok (Database.find_table slow_db "SLOW") in
  for i = 1 to 3 do
    Result.get_ok (Table.insert t [| Sql_value.Int i |])
  done;
  let fast_db = Database.create "FastDB" ~roundtrip_latency:fast_latency in
  Database.add_table fast_db
    (Table.create ~primary_key:[ "K" ] "FAST"
       [ Table.column ~nullable:false "K" Table.T_int ]);
  let t = Result.get_ok (Database.find_table fast_db "FAST") in
  for i = 1 to 60 do
    Result.get_ok (Table.insert t [| Sql_value.Int i |])
  done;
  let registry = Metadata.create () in
  Metadata.introspect_relational registry slow_db;
  Metadata.introspect_relational registry fast_db;
  (registry, slow_db, fast_db)

(* an inequality join: no equi key, so evaluation is a dependent nested
   loop and iteration order matters *)
let query =
  "for $f in FAST(), $s in SLOW() where $s/K gt $f/K order by $f/K return <R>{$f/K, $s/K}</R>"

let observe registry obs =
  (* one instrumented warm-up call per source *)
  let server = Server.create ~observed:obs registry in
  ignore (ok_exn (Server.run server "count(SLOW())"));
  ignore (ok_exn (Server.run server "count(FAST())"));
  server

let test_reorder_puts_small_source_outer () =
  let obs = Observed.create () in
  let registry, _, _ = two_source_registry ~slow_latency:0.001 ~fast_latency:0.0001 in
  let server = observe registry obs in
  let compiled = ok_exn (Result.map_error (fun _ -> "compile") (Server.compile server query)) in
  (* the plan's first source access must be SLOW (3 rows) even though the
     query listed FAST first *)
  let rec first_rel e =
    match e with
    | Cexpr.Flwor { clauses; _ } -> (
      match
        List.find_map
          (function Cexpr.Rel r -> Some r.Cexpr.db | _ -> None)
          clauses
      with
      | Some db -> Some db
      | None -> None)
    | _ ->
      let found = ref None in
      ignore
        (Cexpr.map_children
           (fun c ->
             (if !found = None then
                match first_rel c with Some db -> found := Some db | None -> ());
             c)
           e);
      !found
  in
  (match first_rel compiled.Server.plan with
  | Some "SlowDB" -> ()
  | Some other -> Alcotest.failf "outer source is %s, expected SlowDB" other
  | None -> Alcotest.fail "no relational access in plan");
  (* and results are unchanged vs an un-instrumented server *)
  let plain = Server.create registry in
  let a = ok_exn (Server.run server query) in
  let b = ok_exn (Server.run plain query) in
  check_bool "same results" true (Item.serialize a = Item.serialize b)

let test_no_reorder_without_order_by () =
  (* without an order-by the FLWOR's tuple order is observable: the
     optimizer must leave the clause order alone *)
  let obs = Observed.create () in
  let registry, _, _ = two_source_registry ~slow_latency:0.001 ~fast_latency:0.0001 in
  let server = observe registry obs in
  let unordered =
    "for $f in FAST(), $s in SLOW() where $s/K gt $f/K return <R>{$f/K, $s/K}</R>"
  in
  let with_obs = ok_exn (Server.run server unordered) in
  let plain = Server.create registry in
  let without = ok_exn (Server.run plain unordered) in
  check_bool "order preserved" true
    (Item.serialize with_obs = Item.serialize without)

let test_report_ranks_by_latency () =
  let obs = Observed.create () in
  Observed.record obs (Qname.local "A") ~latency:0.5 ~cardinality:1;
  Observed.record obs (Qname.local "B") ~latency:0.1 ~cardinality:1;
  Observed.record obs (Qname.local "C") ~latency:0.9 ~cardinality:1;
  match Observed.report obs with
  | (c, _) :: (a, _) :: (b, _) :: [] ->
    check_bool "order" true
      (c.Qname.local = "C" && a.Qname.local = "A" && b.Qname.local = "B")
  | _ -> Alcotest.fail "report shape"

let test_instrumentation_through_server () =
  let obs = Observed.create () in
  let demo = Aldsp_demo.Demo.create ~customers:3 () in
  let server = Server.create ~observed:obs demo.Aldsp_demo.Demo.registry in
  ignore (ok_exn (Server.run server "count(CUSTOMER())"));
  (match Observed.observed obs (Qname.local "CUSTOMER") with
  | Some s ->
    check_int "one observation" 1 s.Observed.calls;
    check_bool "cardinality observed" true
      (abs_float (s.Observed.mean_cardinality -. 3.) < 1e-9)
  | None -> Alcotest.fail "CUSTOMER not observed");
  ignore Web_service.invoke

let () =
  let t name f = Alcotest.test_case name `Quick f in
  Alcotest.run "observed"
    [ ( "statistics",
        [ t "recording + cost" test_recording_and_cost;
          t "report ranking" test_report_ranks_by_latency;
          t "server instrumentation" test_instrumentation_through_server ] );
      ( "reordering",
        [ t "small source becomes outer" test_reorder_puts_small_source_outer;
          t "no reorder without order-by" test_no_reorder_without_order_by ] )
    ]
