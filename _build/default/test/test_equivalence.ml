(* End-to-end equivalence property: random FLWOR queries over the demo
   enterprise evaluate to the same result through three pipelines —
   (1) the normalized expression interpreted directly,
   (2) after the rule optimizer (joins introduced, views unfolded),
   (3) the full server pipeline including SQL pushdown and join-method
   selection.

   This is the repository's broadest correctness net: any rewrite or
   pushdown rule that changes semantics on any generated query shape
   fails here. *)

open Aldsp_core

let ok_exn = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

(* ------------------------------------------------------------------ *)
(* Query generator over the demo schema                                 *)

(* CUSTOMER(CID, LAST_NAME, FIRST_NAME?, SSN, SINCE) and
   ORDER_T(OID, CID, AMOUNT) in CustomerDB;
   CREDIT_CARD(CCID, CID, NUM, LIMIT_) in CardDB. *)

let pick xs st = List.nth xs (QCheck.Gen.generate1 ~rand:st (QCheck.Gen.int_bound (List.length xs - 1)))

let customer_string_fields = [ "CID"; "LAST_NAME"; "SSN" ]
let order_number_fields = [ "OID"; "AMOUNT" ]

let string_literal st =
  pick
    [ "\"CUST0001\""; "\"CUST0003\""; "\"Jones\""; "\"Smith\""; "\"zzz\"" ]
    st

let number_literal st = pick [ "1002"; "2001"; "30.0"; "0"; "99999" ] st

let comparison st = pick [ "eq"; "ne"; "lt"; "le"; "gt"; "ge" ] st

(* a predicate over $v bound to CUSTOMER rows *)
let rec customer_pred depth st =
  let base () =
    match QCheck.Gen.generate1 ~rand:st (QCheck.Gen.int_bound 3) with
    | 0 ->
      Printf.sprintf "$c/%s %s %s" (pick customer_string_fields st)
        (comparison st) (string_literal st)
    | 1 -> Printf.sprintf "$c/SINCE %s %s" (comparison st) (number_literal st)
    | 2 ->
      Printf.sprintf
        "some $q in ORDER_T() satisfies $q/CID eq $c/CID"
    | _ ->
      Printf.sprintf
        "fn:exists(for $q in ORDER_T() where $q/CID eq $c/CID return $q)"
  in
  if depth = 0 then base ()
  else
    match QCheck.Gen.generate1 ~rand:st (QCheck.Gen.int_bound 3) with
    | 0 ->
      Printf.sprintf "%s and %s"
        (customer_pred (depth - 1) st)
        (customer_pred (depth - 1) st)
    | 1 ->
      Printf.sprintf "%s or %s"
        (customer_pred (depth - 1) st)
        (customer_pred (depth - 1) st)
    | _ -> base ()

let return_expr st =
  match QCheck.Gen.generate1 ~rand:st (QCheck.Gen.int_bound 4) with
  | 0 -> "$c/LAST_NAME"
  | 1 -> "fn:data($c/CID)"
  | 2 -> "<R>{$c/CID, $c/LAST_NAME}</R>"
  | 3 ->
    "<R>{$c/CID, for $o in ORDER_T() where $o/CID eq $c/CID return $o/OID}</R>"
  | _ ->
    "<R>{$c/CID, <N>{count(for $o in ORDER_T() where $o/CID eq $c/CID return $o)}</N>}</R>"

let order_by st =
  match QCheck.Gen.generate1 ~rand:st (QCheck.Gen.int_bound 3) with
  | 0 -> ""
  | 1 -> " order by $c/CID"
  | 2 -> " order by $c/LAST_NAME descending"
  | _ -> " order by $c/SINCE descending"

let generate_query st =
  match QCheck.Gen.generate1 ~rand:st (QCheck.Gen.int_bound 6) with
  | 0 ->
    (* filtered scan *)
    Printf.sprintf "for $c in CUSTOMER() where %s%s return %s"
      (customer_pred 1 st) (order_by st) (return_expr st)
  | 1 ->
    (* same-database join *)
    Printf.sprintf
      "for $c in CUSTOMER(), $o in ORDER_T() where $c/CID eq $o/CID and $o/%s %s %s return <J>{$c/CID, $o/OID}</J>"
      (pick order_number_fields st) (comparison st) (number_literal st)
  | 2 ->
    (* cross-database join (PP-k) *)
    Printf.sprintf
      "for $c in CUSTOMER(), $k in CREDIT_CARD() where $c/CID eq $k/CID%s return <K>{$c/CID, $k/NUM}</K>"
      (match QCheck.Gen.generate1 ~rand:st QCheck.Gen.bool with
      | true -> " and $k/LIMIT_ gt 500.0"
      | false -> "")
  | 3 ->
    (* FLWGOR grouping *)
    Printf.sprintf
      "for $c in CUSTOMER() group $c as $g by $c/%s as $key order by $key return <G>{$key, count($g)}</G>"
      (pick [ "LAST_NAME"; "FIRST_NAME" ] st)
  | 4 ->
    (* view reuse with predicate *)
    Printf.sprintf
      "for $p in getProfile() where $p/%s %s %s return $p/CID"
      (pick [ "CID"; "LAST_NAME" ] st)
      (comparison st) (string_literal st)
  | 5 ->
    (* subsequence over an ordered scan *)
    Printf.sprintf
      "fn:subsequence(for $c in CUSTOMER()%s return fn:data($c/CID), %d, %d)"
      (order_by st)
      (1 + QCheck.Gen.generate1 ~rand:st (QCheck.Gen.int_bound 4))
      (1 + QCheck.Gen.generate1 ~rand:st (QCheck.Gen.int_bound 5))
  | _ ->
    (* quantified + aggregate mix *)
    Printf.sprintf
      "for $c in CUSTOMER() where %s return <A>{$c/CID, <T>{sum(for $o in ORDER_T() where $o/CID eq $c/CID return $o/AMOUNT)}</T>}</A>"
      (customer_pred 0 st)

(* ------------------------------------------------------------------ *)

let pipelines demo q =
  let open Aldsp_demo.Demo in
  let diag = Diag.collector Diag.Fail_fast in
  let ctx =
    Normalize.context ~schema_lookup:(Metadata.find_schema demo.registry) diag
  in
  let ast = ok_exn (Xq_parser.parse_expr q) in
  let core = Normalize.expr ctx ast in
  let env = Typecheck.env demo.registry diag in
  let _, typed = Typecheck.check env core in
  let rt = Eval.runtime demo.registry in
  let raw = ok_exn (Eval.eval rt typed) in
  let opt = Optimizer.create demo.registry in
  let optimized, _ = Optimizer.optimize opt typed in
  let optimized = Optimizer.select_methods opt optimized in
  let opt_result = ok_exn (Eval.eval rt optimized) in
  let full = ok_exn (Server.run demo.server q) in
  (raw, opt_result, full)

let test_equivalence_seeded seed () =
  let st = Random.State.make [| seed |] in
  let demo =
    Aldsp_demo.Demo.create ~customers:9 ~orders_per_customer:2
      ~cards_per_customer:1 ()
  in
  for _ = 1 to 12 do
    let q = generate_query st in
    let raw, optimized, full = pipelines demo q in
    let s_raw = Aldsp_xml.Item.serialize raw in
    let s_opt = Aldsp_xml.Item.serialize optimized in
    let s_full = Aldsp_xml.Item.serialize full in
    if s_raw <> s_opt then
      Alcotest.failf "optimizer changed semantics of:\n%s\nraw:  %s\nopt:  %s"
        q s_raw s_opt;
    if s_raw <> s_full then
      Alcotest.failf "pushdown changed semantics of:\n%s\nraw:  %s\nfull: %s"
        q s_raw s_full
  done

let () =
  let t name f = Alcotest.test_case name `Slow f in
  Alcotest.run "equivalence"
    [ ( "random-queries",
        List.map
          (fun seed ->
            t (Printf.sprintf "seed %d" seed) (test_equivalence_seeded seed))
          [ 11; 23; 37; 41; 59; 67; 73; 89 ] ) ]
