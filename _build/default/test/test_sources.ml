(* Tests for the remaining source kinds of §2.2 and their integration:
   CSV (delimited) file sources, XML file sources, stored procedures —
   plus the design view (Figure 1) and the extended function library. *)

open Aldsp_core
open Aldsp_xml
open Aldsp_relational

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int
let check_string = Alcotest.check Alcotest.string

let ok_exn = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let err_exn = function
  | Ok _ -> Alcotest.fail "expected an error"
  | Error msg -> msg

(* ------------------------------------------------------------------ *)
(* CSV parsing                                                         *)

let test_csv_parse_basic () =
  let rows = ok_exn (Aldsp_services.Csv_source.parse "a,b,c\n1,2,3\n") in
  check_bool "rows" true (rows = [ [ "a"; "b"; "c" ]; [ "1"; "2"; "3" ] ])

let test_csv_parse_quoting () =
  let rows =
    ok_exn
      (Aldsp_services.Csv_source.parse
         "name,note\n\"Jones, Ann\",\"said \"\"hi\"\"\"\n\"multi\nline\",x\n")
  in
  check_bool "quoted comma" true
    (List.nth rows 1 = [ "Jones, Ann"; "said \"hi\"" ]);
  check_bool "embedded newline" true (List.nth rows 2 = [ "multi\nline"; "x" ])

let test_csv_parse_crlf_and_separator () =
  let rows =
    ok_exn (Aldsp_services.Csv_source.parse ~separator:';' "a;b\r\n1;2\r\n")
  in
  check_bool "crlf + custom separator" true
    (rows = [ [ "a"; "b" ]; [ "1"; "2" ] ]);
  ignore (err_exn (Aldsp_services.Csv_source.parse "\"unterminated"))

let rate_schema =
  Schema.element_decl (Qname.local "RATE")
    (Schema.Complex
       [ Schema.particle (Schema.simple (Qname.local "CODE") Atomic.T_string);
         Schema.particle (Schema.simple (Qname.local "BASIS") Atomic.T_integer);
         Schema.particle ~occurs:Schema.Optional
           (Schema.simple (Qname.local "NOTE") Atomic.T_string) ])

let test_csv_typed_rows () =
  let nodes =
    ok_exn
      (Aldsp_services.Csv_source.load ~schema:rate_schema
         "CODE,BASIS,NOTE\nUSD,100,base\nEUR,92,\n")
  in
  check_int "two rows" 2 (List.length nodes);
  let eur = List.nth nodes 1 in
  (* BASIS enters typed *)
  (match Node.child_elements eur (Qname.local "BASIS") with
  | [ b ] -> check_bool "typed integer" true (Node.typed_value b = [ Atomic.Integer 92 ])
  | _ -> Alcotest.fail "BASIS missing");
  (* empty NOTE field = absent optional element *)
  check_int "NOTE absent" 0
    (List.length (Node.child_elements eur (Qname.local "NOTE")))

let test_csv_errors () =
  ignore
    (err_exn
       (Aldsp_services.Csv_source.load ~schema:rate_schema
          "WRONG,HEADER,ROW\nUSD,100,x\n"));
  ignore
    (err_exn
       (Aldsp_services.Csv_source.load ~schema:rate_schema
          "CODE,BASIS,NOTE\nUSD,not-a-number,x\n"));
  (* missing required field *)
  ignore
    (err_exn
       (Aldsp_services.Csv_source.load ~schema:rate_schema
          "CODE,BASIS,NOTE\nUSD,,x\n"))

let test_csv_registered_and_queryable () =
  let registry = Metadata.create () in
  ok_exn
    (Metadata.register_csv_source registry ~name:"RATES" ~schema:rate_schema
       "CODE,BASIS,NOTE\nUSD,100,base\nEUR,92,\nGBP,80,brexit\n");
  let server = Server.create registry in
  let r =
    ok_exn
      (Server.run server
         "for $r in RATES() where $r/BASIS lt 95 return $r/CODE")
  in
  check_string "filtered codes" "<CODE>EUR</CODE> <CODE>GBP</CODE>"
    (Item.serialize r)

(* ------------------------------------------------------------------ *)
(* XML file sources                                                    *)

let test_xml_file_source () =
  let registry = Metadata.create () in
  let docs =
    [ ok_exn (Xml_parser.parse "<RATE><CODE>JPY</CODE><BASIS>70</BASIS></RATE>");
      ok_exn (Xml_parser.parse "<RATE><CODE>CHF</CODE><BASIS>105</BASIS></RATE>") ]
  in
  ok_exn
    (Metadata.register_file_source registry ~name:"XRATES" ~schema:rate_schema
       docs);
  let server = Server.create registry in
  let r =
    ok_exn
      (Server.run server "for $r in XRATES() return fn:data($r/BASIS)")
  in
  (* file data is typed at registration time (§5.3) *)
  check_bool "typed integers" true
    (Item.equal_sequence r [ Item.integer 70; Item.integer 105 ]);
  (* invalid documents are rejected at registration *)
  let bad = [ ok_exn (Xml_parser.parse "<RATE><CODE>X</CODE></RATE>") ] in
  ignore
    (err_exn
       (Metadata.register_file_source registry ~name:"BAD" ~schema:rate_schema
          bad))

(* ------------------------------------------------------------------ *)
(* Stored procedures                                                   *)

let proc_db () =
  let db = Database.create "ProcDB" in
  Database.add_table db
    (Table.create ~primary_key:[ "ID" ] "ACCOUNT"
       [ Table.column ~nullable:false "ID" Table.T_int;
         Table.column ~nullable:false "BALANCE" Table.T_decimal ]);
  let t = Result.get_ok (Database.find_table db "ACCOUNT") in
  List.iter
    (fun r -> Result.get_ok (Table.insert t r))
    [ [| Sql_value.Int 1; Sql_value.Float 100. |];
      [| Sql_value.Int 2; Sql_value.Float 250. |];
      [| Sql_value.Int 3; Sql_value.Float 40. |] ];
  Procedure.register db
    { Procedure.proc_name = "RICH_ACCOUNTS";
      proc_params = [ ("threshold", Table.T_decimal) ];
      result =
        Procedure.Returns_rows
          [ ("ID", Table.T_int); ("BALANCE", Table.T_decimal) ];
      body =
        (fun db args ->
          match args with
          | [ threshold ] -> (
            match
              Sql_exec.query db
                ~params:[| threshold |]
                (Result.get_ok
                   (Sql_parser.parse_select
                      "SELECT a.ID, a.BALANCE FROM ACCOUNT a WHERE a.BALANCE >= ? ORDER BY a.ID"))
            with
            | Ok r -> Ok r.Sql_exec.rows
            | Error m -> Error m)
          | _ -> Error "bad args") };
  Procedure.register db
    { Procedure.proc_name = "TOTAL_BALANCE";
      proc_params = [];
      result = Procedure.Returns_scalar Table.T_decimal;
      body =
        (fun db _ ->
          match
            Sql_exec.query db
              (Result.get_ok
                 (Sql_parser.parse_select
                    "SELECT SUM(a.BALANCE) AS s FROM ACCOUNT a"))
          with
          | Ok { Sql_exec.rows = [ row ]; _ } -> Ok [ row ]
          | Ok _ -> Error "unexpected"
          | Error m -> Error m) };
  db

let test_procedure_call_direct () =
  let db = proc_db () in
  let rows =
    ok_exn (Procedure.call db "RICH_ACCOUNTS" [ Sql_value.Float 100. ])
  in
  check_int "two rich accounts" 2 (List.length rows);
  ignore (err_exn (Procedure.call db "RICH_ACCOUNTS" []));
  ignore (err_exn (Procedure.call db "RICH_ACCOUNTS" [ Sql_value.Str "x" ]));
  ignore (err_exn (Procedure.call db "NOPE" []))

let test_procedure_as_xquery_function () =
  let db = proc_db () in
  let registry = Metadata.create () in
  Metadata.introspect_procedure registry db
    (Option.get (Procedure.find db "RICH_ACCOUNTS"));
  Metadata.introspect_procedure registry db
    (Option.get (Procedure.find db "TOTAL_BALANCE"));
  let server = Server.create registry in
  let r =
    ok_exn
      (Server.run server
         "for $a in RICH_ACCOUNTS(50.0) return $a/ID")
  in
  check_string "rows as elements" "<ID>1</ID> <ID>2</ID>" (Item.serialize r);
  let total = ok_exn (Server.run server "TOTAL_BALANCE()") in
  check_bool "scalar result" true
    (Item.serialize total = "390");
  (* roundtrip accounting: one statement per call on the hosting db *)
  Database.reset_stats db;
  ignore (ok_exn (Server.run server "RICH_ACCOUNTS(0.0)"));
  check_bool "statements counted" true
    (db.Database.stats.Database.statements >= 1)

(* ------------------------------------------------------------------ *)
(* Design view (Figure 1)                                              *)

let test_design_view () =
  let demo = Aldsp_demo.Demo.create ~customers:2 () in
  let text =
    ok_exn (Design_view.render demo.Aldsp_demo.Demo.registry "ProfileDS")
  in
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "read methods listed" true (contains "getProfileByID");
  check_bool "lineage provider shown" true (contains "lineage provider");
  check_bool "dependencies shown" true (contains "RatingService");
  check_bool "customer dependency" true (contains "CustomerDB.CUSTOMER");
  ignore (err_exn (Design_view.render demo.Aldsp_demo.Demo.registry "Nope"))

(* ------------------------------------------------------------------ *)
(* Extended function library                                           *)

let run_scalar q =
  let registry = Metadata.create () in
  let server = Server.create registry in
  Item.serialize (ok_exn (Server.run server q))

let test_string_functions () =
  check_string "ends-with" "true" (run_scalar "fn:ends-with(\"aldsp\", \"sp\")");
  check_string "substring-before" "2006"
    (run_scalar "fn:substring-before(\"2006-09-12\", \"-\")");
  check_string "substring-after" "09-12"
    (run_scalar "fn:substring-after(\"2006-09-12\", \"-\")");
  check_string "translate" "ALDSP"
    (run_scalar "fn:translate(\"aldsp\", \"alds p\", \"ALDS P\")");
  check_string "string-join" "a-b-c"
    (run_scalar "fn:string-join((\"a\", \"b\", \"c\"), \"-\")")

let test_sequence_functions () =
  check_string "index-of" "2 4" (run_scalar "fn:index-of((1, 7, 3, 7), 7)");
  check_string "remove" "1 3" (run_scalar "fn:remove((1, 2, 3), 2)");
  check_string "reverse" "3 2 1" (run_scalar "fn:reverse((1, 2, 3))");
  check_string "insert-before" "1 9 2"
    (run_scalar "fn:insert-before((1, 2), 2, 9)");
  check_string "distinct-values" "1 2 3"
    (run_scalar "fn:distinct-values((1, 2, 1, 3, 2))");
  check_string "exactly-one ok" "5" (run_scalar "fn:exactly-one((5))");
  (match
     Server.run (Server.create (Metadata.create ())) "fn:exactly-one((1, 2))"
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "exactly-one accepted a pair")

let test_date_functions () =
  check_string "year" "2006"
    (run_scalar "fn:year-from-dateTime(xs:dateTime(\"2006-09-12T08:00:00Z\"))");
  check_string "month" "9"
    (run_scalar "fn:month-from-dateTime(xs:dateTime(\"2006-09-12T08:00:00Z\"))");
  check_string "day" "12"
    (run_scalar "fn:day-from-dateTime(xs:dateTime(\"2006-09-12T08:00:00Z\"))")

(* ------------------------------------------------------------------ *)
(* SDO create / delete (§6)                                            *)

let provider = Qname.make ~uri:"fn" "getProfile"

let test_sdo_insert () =
  (* insertion goes through the physical data service, whose lineage
     covers every column (the logical PROFILE shape cannot supply the
     NOT-NULL SSN — submit correctly refuses that, tested below) *)
  let demo = Aldsp_demo.Demo.create ~customers:2 ~orders_per_customer:0 () in
  let new_row =
    Node.element (Qname.local "CUSTOMER")
      [ Node.element (Qname.local "CID") [ Node.atom (Atomic.String "CUST9999") ];
        Node.element (Qname.local "LAST_NAME") [ Node.atom (Atomic.String "New") ];
        Node.element (Qname.local "SSN") [ Node.atom (Atomic.String "999-99-9999") ];
        Node.element (Qname.local "SINCE") [ Node.atom (Atomic.Integer 86400) ] ]
  in
  let sdo =
    Aldsp_sdo.Sdo.create ~ds_function:(Qname.local "CUSTOMER") new_row
  in
  let report =
    ok_exn (Aldsp_sdo.Submit.submit demo.Aldsp_demo.Demo.registry [ sdo ])
  in
  check_bool "insert statement" true
    (List.exists
       (fun u ->
         let s = u.Aldsp_sdo.Submit.tu_sql in
         String.length s >= 6 && String.sub s 0 6 = "INSERT")
       report.Aldsp_sdo.Submit.updates);
  let r =
    ok_exn
      (Server.run demo.Aldsp_demo.Demo.server
         "for $c in CUSTOMER() where $c/CID eq \"CUST9999\" return fn:data($c/LAST_NAME)")
  in
  check_bool "row visible" true (Item.equal_sequence r [ Item.string "New" ]);
  (* a logical-shape insert that cannot supply a NOT NULL column fails
     atomically *)
  let incomplete =
    Node.element (Qname.local "PROFILE")
      [ Node.element (Qname.local "CID") [ Node.atom (Atomic.String "CUST8888") ];
        Node.element (Qname.local "LAST_NAME") [ Node.atom (Atomic.String "X") ];
        Node.element (Qname.local "SINCE") [ Node.atom (Atomic.Date_time 0.) ] ]
  in
  let bad = Aldsp_sdo.Sdo.create ~ds_function:provider incomplete in
  ignore (err_exn (Aldsp_sdo.Submit.submit demo.Aldsp_demo.Demo.registry [ bad ]))

let test_sdo_delete () =
  let demo = Aldsp_demo.Demo.create ~customers:3 ~orders_per_customer:0 () in
  let sdo =
    match
      Server.run demo.Aldsp_demo.Demo.server "getProfileByID(\"CUST0002\")"
    with
    | Ok [ Item.Node n ] -> Aldsp_sdo.Sdo.of_result ~ds_function:provider n
    | _ -> Alcotest.fail "read failed"
  in
  Aldsp_sdo.Sdo.mark_deleted sdo;
  check_bool "deleted counts as changed" true (Aldsp_sdo.Sdo.is_changed sdo);
  let report =
    ok_exn (Aldsp_sdo.Submit.submit demo.Aldsp_demo.Demo.registry [ sdo ])
  in
  check_bool "delete statement" true
    (List.exists
       (fun u ->
         let s = u.Aldsp_sdo.Submit.tu_sql in
         String.length s >= 6 && String.sub s 0 6 = "DELETE")
       report.Aldsp_sdo.Submit.updates);
  let remaining =
    ok_exn
      (Server.run demo.Aldsp_demo.Demo.server
         "count(for $c in CUSTOMER() return $c)")
  in
  check_bool "two customers left" true
    (Item.equal_sequence remaining [ Item.integer 2 ])

let () =
  let t name f = Alcotest.test_case name `Quick f in
  Alcotest.run "sources"
    [ ( "csv",
        [ t "parse basic" test_csv_parse_basic;
          t "quoting" test_csv_parse_quoting;
          t "crlf+separator" test_csv_parse_crlf_and_separator;
          t "typed rows" test_csv_typed_rows;
          t "errors" test_csv_errors;
          t "registered + queryable" test_csv_registered_and_queryable ] );
      ("xml-file", [ t "typed + validated" test_xml_file_source ]);
      ( "procedures",
        [ t "direct call" test_procedure_call_direct;
          t "as XQuery function" test_procedure_as_xquery_function ] );
      ("design-view", [ t "figure 1" test_design_view ]);
      ( "fn-lib",
        [ t "strings" test_string_functions;
          t "sequences" test_sequence_functions;
          t "dates" test_date_functions ] );
      ( "sdo-lifecycle",
        [ t "insert" test_sdo_insert; t "delete" test_sdo_delete ] ) ]
