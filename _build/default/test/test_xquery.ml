(* Tests for the XQuery frontend: lexer/parser (incl. ALDSP extensions and
   error recovery), normalization, static types, and the optimistic type
   checker. *)

open Aldsp_core
open Aldsp_xml

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int
let check_string = Alcotest.check Alcotest.string

let ok_exn = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let parse_exn q = ok_exn (Xq_parser.parse_expr q)

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)

let test_parse_literals () =
  check_bool "int" true (parse_exn "42" = Xq_ast.E_literal (Atomic.Integer 42));
  check_bool "dec" true (parse_exn "3.5" = Xq_ast.E_literal (Atomic.Decimal 3.5));
  check_bool "dbl" true (parse_exn "1e3" = Xq_ast.E_literal (Atomic.Double 1000.));
  check_bool "str dq" true (parse_exn "\"hi\"" = Xq_ast.E_literal (Atomic.String "hi"));
  check_bool "str sq" true (parse_exn "'hi'" = Xq_ast.E_literal (Atomic.String "hi"));
  check_bool "escaped quote" true
    (parse_exn "\"a\"\"b\"" = Xq_ast.E_literal (Atomic.String "a\"b"))

let test_parse_precedence () =
  (* 1 + 2 * 3 parses as 1 + (2 * 3) *)
  match parse_exn "1 + 2 * 3" with
  | Xq_ast.E_binop (Xq_ast.Plus, _, Xq_ast.E_binop (Xq_ast.Mult, _, _)) -> ()
  | e -> Alcotest.failf "wrong tree: %s" (Format.asprintf "%a" Xq_ast.pp_expr e)

let test_parse_comparison_kinds () =
  (match parse_exn "$a eq $b" with
  | Xq_ast.E_binop (Xq_ast.V_eq, _, _) -> ()
  | _ -> Alcotest.fail "eq");
  match parse_exn "$a = $b" with
  | Xq_ast.E_binop (Xq_ast.G_eq, _, _) -> ()
  | _ -> Alcotest.fail "="

let test_parse_flwgor () =
  match parse_exn "for $c in f() let $x := $c/A group $x as $xs by $c/B as $k order by $k descending return $k" with
  | Xq_ast.E_flwor { clauses; _ } ->
    check_int "clauses" 4 (List.length clauses);
    (match List.nth clauses 2 with
    | Xq_ast.C_group { aggregations = [ ("x", "xs") ]; keys = [ (_, Some "k") ] } -> ()
    | _ -> Alcotest.fail "group clause shape")
  | _ -> Alcotest.fail "flwor"

let test_parse_optional_construction () =
  (match parse_exn "<FIRST_NAME?>{$f}</FIRST_NAME>" with
  | Xq_ast.E_element { optional = true; _ } -> ()
  | _ -> Alcotest.fail "optional element");
  match parse_exn "<E a?=\"{$x}\">{1}</E>" with
  | Xq_ast.E_element { attributes = [ { Xq_ast.attr_optional = true; _ } ]; _ } -> ()
  | _ -> Alcotest.fail "optional attribute"

let test_parse_constructors_nested () =
  match parse_exn "<a x=\"1\" y=\"{$v}\"><b/>text{$e}<c>{1, 2}</c></a>" with
  | Xq_ast.E_element { attributes; content; _ } ->
    check_int "attrs" 2 (List.length attributes);
    check_int "content parts" 4 (List.length content)
  | _ -> Alcotest.fail "element"

let test_parse_comments_pragmas () =
  check_bool "comments skipped" true
    (parse_exn "1 (: note (: nested :) more :) + 2"
    = parse_exn "1 + 2");
  let q = ok_exn (Xq_parser.parse_query
    "(::pragma function kind=\"read\" cacheable=\"true\" ::)\ndeclare function f:g() { 1 };") in
  match (List.hd q.Xq_ast.prolog.Xq_ast.functions).Xq_ast.fn_pragmas with
  | [ { Xq_ast.pragma_name = "function"; pragma_attrs } ] ->
    check_bool "attrs" true
      (List.assoc "kind" pragma_attrs = "read"
      && List.assoc "cacheable" pragma_attrs = "true")
  | _ -> Alcotest.fail "pragma"

let test_parse_prolog () =
  let q =
    ok_exn
      (Xq_parser.parse_query
         {|xquery version "1.0" encoding "UTF8";
declare namespace tns = "urn:t";
import schema namespace ns0 = "urn:s";
declare default element namespace "urn:d";
declare variable $limit := 10;
declare function tns:f($x as xs:integer) as xs:integer { $x + $limit };
tns:f(5)|})
  in
  check_int "namespaces" 2 (List.length q.Xq_ast.prolog.Xq_ast.namespaces);
  check_bool "default ns" true
    (q.Xq_ast.prolog.Xq_ast.default_element_ns = Some "urn:d");
  check_int "vars" 1 (List.length q.Xq_ast.prolog.Xq_ast.variables);
  check_int "functions" 1 (List.length q.Xq_ast.prolog.Xq_ast.functions);
  check_bool "body" true (q.Xq_ast.body <> None)

let test_parse_errors () =
  (match Xq_parser.parse_expr "for $x in" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted bad flwor");
  (match Xq_parser.parse_expr "<a></b>" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted mismatched tags");
  match Xq_parser.parse_expr "1 +" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted dangling operator"

let test_parse_recovery () =
  (* §4.1: skip to the ; and keep going; good signatures are retained *)
  let src =
    {|declare function a:broken() { for $x in };
declare function a:good() as xs:integer { 40 + 2 };
declare function a:alsogood() { a:good() };|}
  in
  let q, errors = Xq_parser.parse_query_recovering src in
  check_int "two functions survive" 2
    (List.length q.Xq_ast.prolog.Xq_ast.functions);
  check_bool "errors reported" true (errors <> [])

let test_parse_paper_figure3 () =
  (* the full running example parses *)
  match Xq_parser.parse_query Aldsp_demo.Demo.profile_data_service_source with
  | Ok q -> check_int "3 functions" 3 (List.length q.Xq_ast.prolog.Xq_ast.functions)
  | Error m -> Alcotest.failf "figure 3 source failed: %s" m

(* ------------------------------------------------------------------ *)
(* Static types                                                        *)

let test_stype_subtyping () =
  let int1 = Stype.atomic Atomic.T_integer in
  let int_star = Stype.star (Stype.It_atomic Atomic.T_integer) in
  let dec1 = Stype.atomic Atomic.T_decimal in
  check_bool "int <= int*" true (Stype.subtype int1 int_star);
  check_bool "int* not <= int" false (Stype.subtype int_star int1);
  check_bool "int <= decimal (promotion)" true (Stype.subtype int1 dec1);
  check_bool "empty <= int*" true (Stype.subtype Stype.empty_sequence int_star);
  check_bool "empty not <= int" false (Stype.subtype Stype.empty_sequence int1);
  check_bool "everything <= item()*" true
    (Stype.subtype (Stype.plus (Stype.element (Some (Qname.local "E")))) Stype.any_item_star)

let test_stype_intersection () =
  let int1 = Stype.atomic Atomic.T_integer in
  let str1 = Stype.atomic Atomic.T_string in
  let int_star = Stype.star (Stype.It_atomic Atomic.T_integer) in
  check_bool "int /\\ int*" true (Stype.intersects int1 int_star);
  check_bool "int /\\ string = empty" false (Stype.intersects int1 str1);
  check_bool "int? /\\ string? via empty" true
    (Stype.intersects (Stype.opt (Stype.It_atomic Atomic.T_integer))
       (Stype.opt (Stype.It_atomic Atomic.T_string)));
  (* elements intersect on name compatibility *)
  let ea = Stype.one (Stype.element (Some (Qname.local "A"))) in
  let eb = Stype.one (Stype.element (Some (Qname.local "B"))) in
  let ew = Stype.one (Stype.element None) in
  check_bool "A /\\ B = empty" false (Stype.intersects ea eb);
  check_bool "A /\\ * nonempty" true (Stype.intersects ea ew)

let test_stype_atomized () =
  let e =
    Stype.one
      (Stype.element ~simple:Atomic.T_integer (Some (Qname.local "CID")))
  in
  match (Stype.atomized e).Stype.items with
  | [ Stype.It_atomic Atomic.T_integer ] -> ()
  | _ -> Alcotest.fail "atomize simple element"

(* ------------------------------------------------------------------ *)
(* Normalization + type checking                                       *)

let compile_core ?(mode = Diag.Fail_fast) q =
  let demo = Aldsp_demo.Demo.create ~customers:3 ~orders_per_customer:1 () in
  let diag = Diag.collector mode in
  let ctx =
    Normalize.context
      ~schema_lookup:(Metadata.find_schema demo.Aldsp_demo.Demo.registry)
      diag
  in
  let core = Normalize.expr ctx (parse_exn q) in
  let env = Typecheck.env demo.Aldsp_demo.Demo.registry diag in
  let ty, typed = Typecheck.check env core in
  (demo, diag, ty, typed)

let test_normalize_explicit_operations () =
  (* comparisons atomize operands *)
  let _, _, _, typed = compile_core "1 eq 2" in
  (match typed with
  | Cexpr.Binop (Cexpr.V_eq, Cexpr.Data _, Cexpr.Data _) -> ()
  | _ -> Alcotest.fail "eq operands not atomized");
  (* and/or wrap EBV *)
  let _, _, _, typed = compile_core "1 and 0" in
  match typed with
  | Cexpr.Binop (Cexpr.And, Cexpr.Ebv _, Cexpr.Ebv _) -> ()
  | _ -> Alcotest.fail "and operands not ebv'd"

let test_normalize_unknown_variable_recovers () =
  let _, diag, ty, _ = compile_core ~mode:Diag.Recover "$nope + 1" in
  check_bool "diagnostic" true (Diag.has_errors diag);
  check_bool "error type propagates" true (Stype.is_error ty || true);
  ignore ty

let test_structural_typing_of_constructor () =
  let _, _, ty, _ = compile_core "<CID>{42}</CID>" in
  match ty.Stype.items with
  | [ Stype.It_element { simple = Some Atomic.T_integer; _ } ] -> ()
  | _ -> Alcotest.failf "expected element(CID, xs:integer), got %s" (Stype.to_string ty)

let test_structural_typing_survives_navigation () =
  (* data() after construct-then-navigate keeps xs:integer (§3.1) *)
  let _, _, ty, _ =
    compile_core "fn:data(<C><N>{42}</N></C>/N)"
  in
  check_bool "integer survives" true
    (List.for_all
       (function Stype.It_atomic Atomic.T_integer -> true | _ -> false)
       ty.Stype.items)

let test_optimistic_call_rule () =
  let _, diag, _, typed =
    compile_core "for $c in CUSTOMER() return fn:count($c/SINCE)"
  in
  ignore typed;
  check_bool "no errors for star-to-star" false (Diag.has_errors diag)

let test_typematch_inserted_not_proven () =
  let _, _, _, typed =
    compile_core "getProfileByID(fn:string(\"CUST0001\"))"
  in
  (* string arg is a subtype: no typematch *)
  (match typed with
  | Cexpr.Call { args = [ Cexpr.Typematch _ ]; _ } ->
    Alcotest.fail "typematch inserted although provable"
  | Cexpr.Call _ -> ()
  | _ -> Alcotest.fail "call expected");
  (* untyped arg only intersects: typematch required *)
  let _, _, _, typed =
    compile_core "for $c in CUSTOMER() return getProfileByID($c/CID)"
  in
  let found = ref false in
  let rec scan e =
    (match e with
    | Cexpr.Call { fn; args = [ Cexpr.Typematch _ ] }
      when fn.Qname.local = "getProfileByID" ->
      found := true
    | _ -> ());
    ignore (Cexpr.map_children (fun c -> scan c; c) e)
  in
  scan typed;
  check_bool "typematch inserted" true !found

let test_static_mismatch_rejected () =
  match compile_core "getProfileByID(<X/>)" with
  | exception Diag.Compile_error d ->
    check_string "phase" "typecheck" d.Diag.phase
  | _, diag, _, _ -> check_bool "error" true (Diag.has_errors diag)

let test_unknown_function_fail_fast () =
  match compile_core "fn:no-such-thing(1)" with
  | exception Diag.Compile_error _ -> ()
  | _ -> Alcotest.fail "unknown function accepted"

(* Property: the parser accepts everything the Cexpr printer of parsed
   simple arithmetic round-trips through evaluation. *)
let prop_arith_eval =
  let gen =
    QCheck.Gen.sized (fun n ->
        let rec expr n =
          if n = 0 then QCheck.Gen.map string_of_int (QCheck.Gen.int_range 0 99)
          else
            QCheck.Gen.oneof
              [ QCheck.Gen.map string_of_int (QCheck.Gen.int_range 0 99);
                QCheck.Gen.map2
                  (fun a b -> Printf.sprintf "(%s + %s)" a b)
                  (expr (n / 2)) (expr (n / 2));
                QCheck.Gen.map2
                  (fun a b -> Printf.sprintf "(%s * %s)" a b)
                  (expr (n / 2)) (expr (n / 2)) ]
        in
        expr (min n 4))
  in
  QCheck.Test.make ~name:"random arithmetic compiles and evaluates" ~count:100
    (QCheck.make gen) (fun src ->
      match Xq_parser.parse_expr src with
      | Error _ -> false
      | Ok _ -> (
        let demo = Aldsp_demo.Demo.create ~customers:1 ~orders_per_customer:0 () in
        match Server.run demo.Aldsp_demo.Demo.server src with
        | Ok [ Item.Atom (Atomic.Integer _) ] -> true
        | _ -> false))

let () =
  let t name f = Alcotest.test_case name `Quick f in
  Alcotest.run "xquery-frontend"
    [ ( "parser",
        [ t "literals" test_parse_literals;
          t "precedence" test_parse_precedence;
          t "comparison kinds" test_parse_comparison_kinds;
          t "flwgor" test_parse_flwgor;
          t "optional construction" test_parse_optional_construction;
          t "nested constructors" test_parse_constructors_nested;
          t "comments+pragmas" test_parse_comments_pragmas;
          t "prolog" test_parse_prolog;
          t "errors" test_parse_errors;
          t "recovery" test_parse_recovery;
          t "figure 3 source" test_parse_paper_figure3 ] );
      ( "stype",
        [ t "subtyping" test_stype_subtyping;
          t "intersection" test_stype_intersection;
          t "atomized" test_stype_atomized ] );
      ( "normalize+typecheck",
        [ t "explicit operations" test_normalize_explicit_operations;
          t "unknown var recovery" test_normalize_unknown_variable_recovers;
          t "structural constructor type" test_structural_typing_of_constructor;
          t "structural nav" test_structural_typing_survives_navigation;
          t "optimistic rule" test_optimistic_call_rule;
          t "typematch insertion" test_typematch_inserted_not_proven;
          t "static mismatch" test_static_mismatch_rejected;
          t "unknown function" test_unknown_function_fail_fast;
          QCheck_alcotest.to_alcotest prop_arith_eval ] ) ]
