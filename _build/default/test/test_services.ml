(* Tests for the functional-source simulator: web services with latency and
   failure injection, and the external function registry. *)

open Aldsp_xml
open Aldsp_services

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int

let ok_exn = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let err_exn = function
  | Ok _ -> Alcotest.fail "expected an error"
  | Error msg -> msg

(* The credit-rating service from the paper's running example (Figure 3). *)
let rating_request_schema =
  Schema.element_decl (Qname.local "getRating")
    (Schema.Complex
       [ Schema.particle (Schema.simple (Qname.local "lName") Atomic.T_string);
         Schema.particle (Schema.simple (Qname.local "ssn") Atomic.T_string) ])

let rating_response_schema =
  Schema.element_decl (Qname.local "getRatingResponse")
    (Schema.Complex
       [ Schema.particle
           (Schema.simple (Qname.local "getRatingResult") Atomic.T_integer) ])

let make_rating_service ?latency () =
  let implementation request =
    let ssn =
      match Node.child_elements request (Qname.local "ssn") with
      | [ n ] -> Node.string_value n
      | _ -> ""
    in
    let rating = 500 + (String.length ssn * 13 mod 350) in
    Ok
      (Node.element (Qname.local "getRatingResponse")
         [ Node.element (Qname.local "getRatingResult")
             [ Node.text (string_of_int rating) ] ])
  in
  Web_service.create ?latency ~wsdl_url:"http://ratings.example.com/rate?wsdl"
    "RatingService"
    [ Web_service.operation ~name:"getRating" ~input:rating_request_schema
        ~output:rating_response_schema implementation ]

let request lname ssn =
  Node.element (Qname.local "getRating")
    [ Node.element (Qname.local "lName") [ Node.text lname ];
      Node.element (Qname.local "ssn") [ Node.text ssn ] ]

let test_invoke_types_response () =
  let ws = make_rating_service () in
  let response = ok_exn (Web_service.invoke ws "getRating" (request "Jones" "123-45-6789")) in
  match Node.child_elements response (Qname.local "getRatingResult") with
  | [ result ] -> (
    match Node.typed_value result with
    | [ Atomic.Integer _ ] -> ()
    | _ -> Alcotest.fail "result not typed as integer")
  | _ -> Alcotest.fail "missing result element"

let test_invalid_request_rejected () =
  let ws = make_rating_service () in
  let bad = Node.element (Qname.local "getRating") [] in
  ignore (err_exn (Web_service.invoke ws "getRating" bad));
  ignore (err_exn (Web_service.invoke ws "noSuchOp" bad))

let test_failure_injection () =
  let ws = make_rating_service () in
  Web_service.inject_failures ws 2;
  ignore (err_exn (Web_service.invoke ws "getRating" (request "a" "1")));
  ignore (err_exn (Web_service.invoke ws "getRating" (request "a" "1")));
  ignore (ok_exn (Web_service.invoke ws "getRating" (request "a" "1")));
  check_int "calls counted" 3 ws.Web_service.stats.Web_service.calls;
  check_int "failures counted" 2 ws.Web_service.stats.Web_service.failures

let test_unavailability () =
  let ws = make_rating_service () in
  Web_service.set_unavailable ws true;
  ignore (err_exn (Web_service.invoke ws "getRating" (request "a" "1")));
  Web_service.set_unavailable ws false;
  ignore (ok_exn (Web_service.invoke ws "getRating" (request "a" "1")))

let test_latency_applied () =
  let ws = make_rating_service ~latency:0.02 () in
  let t0 = Unix.gettimeofday () in
  ignore (ok_exn (Web_service.invoke ws "getRating" (request "a" "1")));
  let elapsed = Unix.gettimeofday () -. t0 in
  check_bool "took at least the simulated latency" true (elapsed >= 0.015)

let test_custom_functions () =
  let reg = Custom_function.create_registry () in
  Custom_function.install_date_conversions reg;
  let date =
    ok_exn (Custom_function.call reg Custom_function.int2date [ Atomic.Integer 86400 ])
  in
  check_bool "int2date" true (date = Atomic.Date_time 86400.);
  let back = ok_exn (Custom_function.call reg Custom_function.date2int [ date ]) in
  check_bool "inverse roundtrip" true (back = Atomic.Integer 86400);
  (* arity and unknown-function errors *)
  ignore (err_exn (Custom_function.call reg Custom_function.int2date []));
  ignore
    (err_exn (Custom_function.call reg (Qname.local "nope") [ Atomic.Integer 1 ]));
  (* loose typing: a castable argument is accepted *)
  let casted =
    ok_exn (Custom_function.call reg Custom_function.int2date [ Atomic.Untyped "60" ])
  in
  check_bool "castable arg" true (casted = Atomic.Date_time 60.)

let () =
  let t name f = Alcotest.test_case name `Quick f in
  Alcotest.run "services"
    [ ( "web-service",
        [ t "invoke types response" test_invoke_types_response;
          t "invalid request" test_invalid_request_rejected;
          t "failure injection" test_failure_injection;
          t "unavailability" test_unavailability;
          t "latency" test_latency_applied ] );
      ("custom-functions", [ t "registry" test_custom_functions ]) ]
