test/test_optimizer.ml: Alcotest Aldsp_core Aldsp_demo Aldsp_xml Atomic Cexpr Diag Eval Item List Metadata Normalize Optimizer Qname Rewrite Typecheck Xq_parser
