test/test_xquery.ml: Alcotest Aldsp_core Aldsp_demo Aldsp_xml Atomic Cexpr Diag Format Item List Metadata Normalize Printf QCheck QCheck_alcotest Qname Server Stype Typecheck Xq_ast Xq_parser
