test/test_observed.ml: Alcotest Aldsp_core Aldsp_demo Aldsp_relational Aldsp_services Aldsp_xml Cexpr Database Item List Metadata Observed Qname Result Server Sql_value Table Web_service
