test/test_equivalence.ml: Alcotest Aldsp_core Aldsp_demo Aldsp_xml Diag Eval List Metadata Normalize Optimizer Printf QCheck Random Server Typecheck Xq_parser
