test/test_observed.mli:
