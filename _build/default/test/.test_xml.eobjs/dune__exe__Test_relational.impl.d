test/test_relational.ml: Alcotest Aldsp_relational Aldsp_xml Array Buffer Database List QCheck QCheck_alcotest Sql_ast Sql_exec Sql_parser Sql_print Sql_value Str String Table Txn
