test/test_services.ml: Alcotest Aldsp_services Aldsp_xml Atomic Custom_function Node Qname Schema String Unix Web_service
