test/test_tokens.ml: Alcotest Aldsp_tokens Aldsp_xml Atomic Buffer Gen Item List Node Printf QCheck QCheck_alcotest Qname Seq Token Token_stream Tuple
