test/test_xml.ml: Alcotest Aldsp_xml Atomic Int Item List Node QCheck QCheck_alcotest Qname Schema Xml_parser
