test/test_sources.mli:
