test/test_sdo.mli:
