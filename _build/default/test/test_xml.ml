(* Tests for the XML/XDM substrate: atomic values, node trees, the XML
   parser, and schema validation. *)

open Aldsp_xml

let check = Alcotest.check
let check_string = check Alcotest.string
let check_bool = check Alcotest.bool
let check_int = check Alcotest.int

let ok_exn = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let err_exn = function
  | Ok _ -> Alcotest.fail "expected an error"
  | Error msg -> msg

(* ------------------------------------------------------------------ *)
(* Qname                                                               *)

let test_qname_roundtrip () =
  let q = Qname.make ~uri:"urn:demo" "CUSTOMER" in
  check_bool "equal after roundtrip" true
    (Qname.equal q (Qname.of_string (Qname.to_string q)));
  check_string "clark" "{urn:demo}CUSTOMER" (Qname.to_string q);
  check_string "no-ns" "CID" (Qname.to_string (Qname.local "CID"))

let test_qname_compare () =
  let a = Qname.make ~uri:"a" "x" and b = Qname.make ~uri:"b" "x" in
  check_bool "uri orders first" true (Qname.compare a b < 0);
  check_bool "same" true (Qname.compare a a = 0);
  check_bool "local breaks ties" true
    (Qname.compare (Qname.local "a") (Qname.local "b") < 0)

(* ------------------------------------------------------------------ *)
(* Atomic                                                              *)

let test_atomic_lexical () =
  check_string "integer" "42" (Atomic.to_string (Atomic.Integer 42));
  check_string "negative" "-7" (Atomic.to_string (Atomic.Integer (-7)));
  check_string "boolean" "true" (Atomic.to_string (Atomic.Boolean true));
  check_string "decimal whole" "3" (Atomic.to_string (Atomic.Decimal 3.));
  check_string "decimal frac" "3.25" (Atomic.to_string (Atomic.Decimal 3.25));
  check_string "date" "2006-09-12"
    (Atomic.to_string (Atomic.Date { year = 2006; month = 9; day = 12 }))

let test_atomic_parse () =
  check_bool "int" true (Atomic.parse Atomic.T_integer "17" = Ok (Atomic.Integer 17));
  check_bool "bool" true (Atomic.parse Atomic.T_boolean "false" = Ok (Atomic.Boolean false));
  check_bool "trim" true (Atomic.parse Atomic.T_integer " 5 " = Ok (Atomic.Integer 5));
  ignore (err_exn (Atomic.parse Atomic.T_integer "abc"));
  ignore (err_exn (Atomic.parse Atomic.T_date "not-a-date"))

let test_datetime_roundtrip () =
  let lex = "2006-09-12T08:30:00Z" in
  let t = ok_exn (Atomic.date_time_of_string lex) in
  check_string "roundtrip" lex (Atomic.date_time_to_string t);
  (* epoch zero *)
  check_string "epoch" "1970-01-01T00:00:00Z" (Atomic.date_time_to_string 0.)

let test_date_conversions () =
  let d = { Atomic.year = 2000; month = 3; day = 1 } in
  check_bool "date roundtrip" true
    (Atomic.date_of_epoch (Atomic.epoch_of_date d) = d);
  (* leap year boundary *)
  let feb29 = { Atomic.year = 2004; month = 2; day = 29 } in
  check_bool "leap day" true
    (Atomic.date_of_epoch (Atomic.epoch_of_date feb29) = feb29)

let test_atomic_compare () =
  let ok_cmp a b = ok_exn (Atomic.compare_values a b) in
  check_int "int/int" (-1) (ok_cmp (Atomic.Integer 1) (Atomic.Integer 2));
  check_int "int/decimal promote" 0
    (ok_cmp (Atomic.Integer 2) (Atomic.Decimal 2.));
  check_int "untyped as double vs int" 0
    (ok_cmp (Atomic.Untyped "3") (Atomic.Integer 3));
  check_int "string" 1 (ok_cmp (Atomic.String "b") (Atomic.String "a"));
  check_int "date vs dateTime" (-1)
    (ok_cmp
       (Atomic.Date { year = 2005; month = 1; day = 1 })
       (Atomic.Date_time (Atomic.epoch_of_date { year = 2005; month = 1; day = 2 })));
  ignore (err_exn (Atomic.compare_values (Atomic.Boolean true) (Atomic.Integer 1)))

let test_atomic_arith () =
  check_bool "int add stays int" true
    (Atomic.add (Atomic.Integer 2) (Atomic.Integer 3) = Ok (Atomic.Integer 5));
  check_bool "div yields decimal" true
    (Atomic.div (Atomic.Integer 7) (Atomic.Integer 2) = Ok (Atomic.Decimal 3.5));
  check_bool "idiv" true
    (Atomic.idiv (Atomic.Integer 7) (Atomic.Integer 2) = Ok (Atomic.Integer 3));
  check_bool "mod" true
    (Atomic.modulo (Atomic.Integer 7) (Atomic.Integer 2) = Ok (Atomic.Integer 1));
  ignore (err_exn (Atomic.div (Atomic.Integer 1) (Atomic.Integer 0)));
  check_bool "double contaminates" true
    (Atomic.add (Atomic.Integer 1) (Atomic.Double 0.5) = Ok (Atomic.Double 1.5));
  check_bool "dateTime + seconds" true
    (Atomic.add (Atomic.Date_time 100.) (Atomic.Integer 20)
    = Ok (Atomic.Date_time 120.))

let test_atomic_cast () =
  check_bool "string->int" true
    (Atomic.cast Atomic.T_integer (Atomic.String "12") = Ok (Atomic.Integer 12));
  check_bool "int->string" true
    (Atomic.cast Atomic.T_string (Atomic.Integer 12) = Ok (Atomic.String "12"));
  check_bool "int->dateTime (epoch)" true
    (Atomic.cast Atomic.T_date_time (Atomic.Integer 86400)
    = Ok (Atomic.Date_time 86400.));
  check_bool "date->dateTime" true
    (Atomic.cast Atomic.T_date_time (Atomic.Date { year = 1970; month = 1; day = 2 })
    = Ok (Atomic.Date_time 86400.));
  ignore (err_exn (Atomic.cast Atomic.T_integer (Atomic.String "oops")))

let test_atomic_ebv () =
  check_bool "empty string" true (Atomic.ebv (Atomic.String "") = Ok false);
  check_bool "nonzero" true (Atomic.ebv (Atomic.Integer 5) = Ok true);
  check_bool "zero" true (Atomic.ebv (Atomic.Integer 0) = Ok false);
  ignore (err_exn (Atomic.ebv (Atomic.Date { year = 2000; month = 1; day = 1 })))

(* Property: date conversions invert each other over a wide range. *)
let prop_date_roundtrip =
  QCheck.Test.make ~name:"civil date <-> epoch roundtrip" ~count:500
    QCheck.(int_range (-200000) 200000)
    (fun day ->
      let date = Atomic.date_of_epoch (float_of_int (day * 86400)) in
      Atomic.epoch_of_date date = float_of_int (day * 86400))

let prop_compare_antisym =
  let gen =
    QCheck.oneof
      [ QCheck.map (fun i -> Atomic.Integer i) QCheck.small_signed_int;
        QCheck.map (fun f -> Atomic.Decimal f) (QCheck.float_bound_inclusive 1000.);
        QCheck.map (fun s -> Atomic.String s) QCheck.small_printable_string ]
  in
  QCheck.Test.make ~name:"compare_values antisymmetric" ~count:500
    (QCheck.pair gen gen) (fun (a, b) ->
      match (Atomic.compare_values a b, Atomic.compare_values b a) with
      | Ok x, Ok y -> Int.compare x 0 = Int.compare 0 y
      | Error _, Error _ -> true
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Node                                                                *)

let customer =
  Node.element (Qname.local "CUSTOMER")
    [ Node.element (Qname.local "CID") [ Node.atom (Atomic.Integer 1) ];
      Node.element (Qname.local "LAST_NAME") [ Node.atom (Atomic.String "Jones") ] ]

let test_node_access () =
  check_int "children" 2 (List.length (Node.children customer));
  let cid = List.hd (Node.child_elements customer (Qname.local "CID")) in
  check_string "string value" "1" (Node.string_value cid);
  check_bool "typed value keeps type" true
    (Node.typed_value cid = [ Atomic.Integer 1 ]);
  check_bool "absent child" true
    (Node.child_elements customer (Qname.local "NOPE") = [])

let test_node_typed_value_mixed () =
  let n =
    Node.element (Qname.local "X")
      [ Node.element (Qname.local "Y") [ Node.text "a" ] ]
  in
  (* element with element children atomizes to untyped string value *)
  check_bool "complex content -> untyped" true
    (Node.typed_value n = [ Atomic.Untyped "a" ])

let test_node_serialize () =
  check_string "serialization"
    "<CUSTOMER><CID>1</CID><LAST_NAME>Jones</LAST_NAME></CUSTOMER>"
    (Node.serialize customer);
  let with_attr =
    Node.element
      ~attributes:[ (Qname.local "name", Atomic.String "Jones") ]
      (Qname.local "CUSTOMER_IDS")
      []
  in
  check_string "attributes + empty" "<CUSTOMER_IDS name=\"Jones\"/>"
    (Node.serialize with_attr);
  let escaped = Node.element (Qname.local "E") [ Node.text "a<b&c" ] in
  check_string "escaping" "<E>a&lt;b&amp;c</E>" (Node.serialize escaped)

let test_node_equal () =
  check_bool "equal" true (Node.equal customer customer);
  check_bool "text vs atom differ" false
    (Node.equal
       (Node.element (Qname.local "E") [ Node.text "1" ])
       (Node.element (Qname.local "E") [ Node.atom (Atomic.Integer 1) ]))

(* ------------------------------------------------------------------ *)
(* Item                                                                *)

let test_item_atomize () =
  let seq = [ Item.Node customer; Item.integer 9 ] in
  let atoms = ok_exn (Item.atomize seq) in
  (* CUSTOMER has element children -> single untyped; then the 9 *)
  check_int "two atoms" 2 (List.length atoms)

let test_item_ebv () =
  check_bool "empty false" true (Item.ebv [] = Ok false);
  check_bool "node true" true (Item.ebv [ Item.Node customer ] = Ok true);
  check_bool "singleton bool" true
    (Item.ebv [ Item.boolean false ] = Ok false);
  ignore (err_exn (Item.ebv [ Item.integer 1; Item.integer 2 ]))

(* ------------------------------------------------------------------ *)
(* Xml_parser                                                          *)

let test_parse_simple () =
  let doc = ok_exn (Xml_parser.parse "<a x=\"1\"><b>hi</b><c/></a>") in
  check_int "children" 2 (List.length (Node.children doc));
  check_bool "attr" true
    (Node.attribute doc (Qname.local "x") = Some (Atomic.Untyped "1"));
  check_string "text" "hi" (Node.string_value doc)

let test_parse_entities () =
  let doc = ok_exn (Xml_parser.parse "<a>x &lt;&amp;&gt; y &#65;</a>") in
  check_string "decoded" "x <&> y A" (Node.string_value doc)

let test_parse_namespaces () =
  let doc =
    ok_exn
      (Xml_parser.parse
         "<p:a xmlns:p=\"urn:x\" xmlns=\"urn:d\"><b/></p:a>")
  in
  check_bool "prefixed" true
    (Node.name doc = Some (Qname.make ~uri:"urn:x" "a"));
  match Node.children doc with
  | [ child ] ->
    check_bool "default ns" true
      (Node.name child = Some (Qname.make ~uri:"urn:d" "b"))
  | _ -> Alcotest.fail "expected one child"

let test_parse_cdata_comment () =
  let doc =
    ok_exn (Xml_parser.parse "<a><!-- note --><![CDATA[<raw>]]></a>")
  in
  check_string "cdata kept raw" "<raw>" (Node.string_value doc)

let test_parse_errors () =
  ignore (err_exn (Xml_parser.parse "<a><b></a>"));
  ignore (err_exn (Xml_parser.parse "<a>"));
  ignore (err_exn (Xml_parser.parse "<a/><b/>"));
  check_bool "fragment allows siblings" true
    (match Xml_parser.parse_fragment "<a/><b/>" with
    | Ok [ _; _ ] -> true
    | _ -> false)

let test_parse_serialize_roundtrip () =
  let input = "<r><a k=\"v\">t</a><b><c>1</c></b></r>" in
  let doc = ok_exn (Xml_parser.parse input) in
  let again = ok_exn (Xml_parser.parse (Node.serialize doc)) in
  check_bool "roundtrip" true (Node.equal doc again)

(* ------------------------------------------------------------------ *)
(* Schema                                                              *)

let profile_schema =
  Schema.element_decl (Qname.local "PROFILE")
    (Schema.Complex
       [ Schema.particle (Schema.simple (Qname.local "CID") Atomic.T_integer);
         Schema.particle ~occurs:Schema.Optional
           (Schema.simple (Qname.local "LAST_NAME") Atomic.T_string);
         Schema.particle ~occurs:Schema.Zero_or_more
           (Schema.simple (Qname.local "ORDER_ID") Atomic.T_integer) ])

let test_schema_validate_types_content () =
  let raw =
    ok_exn
      (Xml_parser.parse
         "<PROFILE><CID>7</CID><LAST_NAME>Smith</LAST_NAME><ORDER_ID>1</ORDER_ID><ORDER_ID>2</ORDER_ID></PROFILE>")
  in
  let typed = ok_exn (Schema.validate profile_schema raw) in
  let cid = List.hd (Node.child_elements typed (Qname.local "CID")) in
  check_bool "CID becomes integer" true
    (Node.typed_value cid = [ Atomic.Integer 7 ]);
  check_int "repeated ok" 2
    (List.length (Node.child_elements typed (Qname.local "ORDER_ID")))

let test_schema_occurrence_violations () =
  let missing = ok_exn (Xml_parser.parse "<PROFILE></PROFILE>") in
  ignore (err_exn (Schema.validate profile_schema missing));
  let dup =
    ok_exn (Xml_parser.parse "<PROFILE><CID>1</CID><CID>2</CID></PROFILE>")
  in
  ignore (err_exn (Schema.validate profile_schema dup))

let test_schema_undeclared () =
  let bad =
    ok_exn (Xml_parser.parse "<PROFILE><CID>1</CID><HUH/></PROFILE>")
  in
  ignore (err_exn (Schema.validate profile_schema bad))

let test_schema_lexical_error () =
  let bad = ok_exn (Xml_parser.parse "<PROFILE><CID>xyz</CID></PROFILE>") in
  ignore (err_exn (Schema.validate profile_schema bad))

let test_schema_attributes () =
  let decl =
    Schema.element_decl
      ~attributes:
        [ Schema.attribute_decl ~required:true (Qname.local "id")
            Atomic.T_integer ]
      (Qname.local "E") Schema.Empty_content
  in
  let ok_doc = ok_exn (Xml_parser.parse "<E id=\"3\"/>") in
  let typed = ok_exn (Schema.validate decl ok_doc) in
  check_bool "typed attribute" true
    (Node.attribute typed (Qname.local "id") = Some (Atomic.Integer 3));
  let missing = ok_exn (Xml_parser.parse "<E/>") in
  ignore (err_exn (Schema.validate decl missing))

let () =
  let t name f = Alcotest.test_case name `Quick f in
  Alcotest.run "xml"
    [ ( "qname",
        [ t "roundtrip" test_qname_roundtrip; t "compare" test_qname_compare ]
      );
      ( "atomic",
        [ t "lexical" test_atomic_lexical;
          t "parse" test_atomic_parse;
          t "datetime roundtrip" test_datetime_roundtrip;
          t "date conversions" test_date_conversions;
          t "compare" test_atomic_compare;
          t "arith" test_atomic_arith;
          t "cast" test_atomic_cast;
          t "ebv" test_atomic_ebv;
          QCheck_alcotest.to_alcotest prop_date_roundtrip;
          QCheck_alcotest.to_alcotest prop_compare_antisym ] );
      ( "node",
        [ t "access" test_node_access;
          t "typed value mixed" test_node_typed_value_mixed;
          t "serialize" test_node_serialize;
          t "equal" test_node_equal ] );
      ( "item",
        [ t "atomize" test_item_atomize; t "ebv" test_item_ebv ] );
      ( "parser",
        [ t "simple" test_parse_simple;
          t "entities" test_parse_entities;
          t "namespaces" test_parse_namespaces;
          t "cdata+comment" test_parse_cdata_comment;
          t "errors" test_parse_errors;
          t "roundtrip" test_parse_serialize_roundtrip ] );
      ( "schema",
        [ t "types content" test_schema_validate_types_content;
          t "occurrence violations" test_schema_occurrence_violations;
          t "undeclared" test_schema_undeclared;
          t "lexical error" test_schema_lexical_error;
          t "attributes" test_schema_attributes ] ) ]
