(* Figure 5: reading a profile as a Service Data Object, changing a field,
   and submitting the change — lineage analysis routes the update to the
   one affected source, with an optimistic-concurrency WHERE clause.

   Run with: dune exec examples/updates_sdo.exe *)

open Aldsp_core
open Aldsp_xml
open Aldsp_sdo
open Aldsp_demo

let section title = Printf.printf "\n=== %s ===\n" title

let provider = Qname.make ~uri:"fn" "getProfile"

let () =
  let demo = Demo.create ~customers:3 ~orders_per_customer:1 () in
  let server = demo.Demo.server in

  (* PROFILEDoc sdo = ProfileDS.getProfileById("0815");  -- Figure 5 *)
  section "Read a profile";
  let sdo =
    match Server.run server "getProfileByID(\"CUST0001\")" with
    | Ok [ Item.Node profile ] ->
      print_endline (Node.serialize profile);
      Sdo.of_result ~ds_function:provider profile
    | Ok other -> failwith (Item.serialize other)
    | Error m -> failwith m
  in

  (* sdo.setLAST_NAME("Smith"); *)
  section "Change the last name";
  Result.get_ok
    (Sdo.set_field sdo
       [ Qname.local "PROFILE"; Qname.local "LAST_NAME" ]
       (Atomic.String "Smith"));
  Printf.printf "change log: %s\n" (Sdo.serialize_change_log sdo);

  section "Lineage of the data service";
  (match Lineage.analyze demo.Demo.registry provider with
  | Ok lineage -> Format.printf "%a@." Lineage.pp lineage
  | Error m -> print_endline m);

  (* ProfileDS.submit(sdo); *)
  section "Submit";
  (match Submit.submit demo.Demo.registry [ sdo ] with
  | Ok report ->
    List.iter
      (fun u ->
        Printf.printf "[%s] %s  (%d row)\n" u.Submit.tu_db u.Submit.tu_sql
          u.Submit.tu_rows)
      report.Submit.updates;
    Printf.printf "sources touched: %s (CardDB and the rating service were \
                   not involved)\n"
      (String.concat ", " report.Submit.sources_touched)
  | Error m -> Printf.printf "submit failed: %s\n" m);

  section "Read back";
  (match Server.run server "getProfileByID(\"CUST0001\")" with
  | Ok items -> print_endline (Item.serialize items)
  | Error m -> print_endline m);

  section "Optimistic concurrency: a stale object is rejected";
  let stale =
    match Server.run server "getProfileByID(\"CUST0002\")" with
    | Ok [ Item.Node profile ] -> Sdo.of_result ~ds_function:provider profile
    | _ -> failwith "read failed"
  in
  Result.get_ok
    (Sdo.set_field stale
       [ Qname.local "PROFILE"; Qname.local "LAST_NAME" ]
       (Atomic.String "Stale"));
  (* concurrent writer gets there first *)
  let concurrent =
    match Server.run server "getProfileByID(\"CUST0002\")" with
    | Ok [ Item.Node profile ] -> Sdo.of_result ~ds_function:provider profile
    | _ -> failwith "read failed"
  in
  Result.get_ok
    (Sdo.set_field concurrent
       [ Qname.local "PROFILE"; Qname.local "LAST_NAME" ]
       (Atomic.String "First"));
  ignore (Result.get_ok (Submit.submit demo.Demo.registry [ concurrent ]));
  (match Submit.submit demo.Demo.registry [ stale ] with
  | Ok _ -> print_endline "unexpected success"
  | Error m -> Printf.printf "rejected as expected: %s\n" m);

  section "Updating a transformed field maps back through the inverse";
  let sdo2 =
    match Server.run server "getProfileByID(\"CUST0003\")" with
    | Ok [ Item.Node profile ] -> Sdo.of_result ~ds_function:provider profile
    | _ -> failwith "read failed"
  in
  Result.get_ok
    (Sdo.set_field sdo2
       [ Qname.local "PROFILE"; Qname.local "SINCE" ]
       (Atomic.Date_time 432000.));
  (match Submit.submit demo.Demo.registry [ sdo2 ] with
  | Ok report ->
    List.iter
      (fun u -> Printf.printf "[%s] %s\n" u.Submit.tu_db u.Submit.tu_sql)
      report.Submit.updates
  | Error m -> print_endline m)
