(* The paper's running example (Figures 1 and 3): a logical data service
   integrating two relational databases and a credit-rating web service
   into a single customer profile.

   Run with: dune exec examples/customer_profile.exe *)

open Aldsp_core
open Aldsp_demo

let section title = Printf.printf "\n=== %s ===\n" title

let () =
  let demo = Demo.create ~customers:5 ~orders_per_customer:2 () in
  let server = demo.Demo.server in

  section "The data service source (Figure 3)";
  print_endline Demo.profile_data_service_source;

  section "getProfile(): integrated profiles from 2 databases + 1 service";
  (match Server.run server "getProfileByID(\"CUST0001\")" with
  | Ok items -> print_endline (Aldsp_xml.Item.serialize items)
  | Error m -> print_endline m);

  section "Reuse with an extra predicate: the filter reaches the SQL";
  (match
     Server.explain server
       "for $p in getProfile() where $p/LAST_NAME eq \"Jones\" return $p/CID"
   with
  | Ok text -> print_endline text
  | Error m -> print_endline m);

  section "Inverse functions (§4.5): a dateTime predicate over the \
           integer SINCE column";
  (match
     Server.explain server
       "for $p in getProfile() where $p/SINCE gt xs:dateTime(\"1970-01-03T00:00:00Z\") return $p/CID"
   with
  | Ok text -> print_endline text
  | Error m -> print_endline m);
  (match
     Server.run server
       "for $p in getProfile() where $p/SINCE gt xs:dateTime(\"1970-01-03T00:00:00Z\") return $p/CID"
   with
  | Ok items ->
    Printf.printf "customers since 1970-01-03: %s\n"
      (Aldsp_xml.Item.serialize items)
  | Error m -> print_endline m);

  section "Source statistics: who was asked what";
  Printf.printf "CustomerDB: %d statements, %d rows shipped\n"
    demo.Demo.customer_db.Aldsp_relational.Database.stats
      .Aldsp_relational.Database.statements
    demo.Demo.customer_db.Aldsp_relational.Database.stats
      .Aldsp_relational.Database.rows_shipped;
  Printf.printf "CardDB:     %d statements, %d rows shipped\n"
    demo.Demo.card_db.Aldsp_relational.Database.stats
      .Aldsp_relational.Database.statements
    demo.Demo.card_db.Aldsp_relational.Database.stats
      .Aldsp_relational.Database.rows_shipped;
  Printf.printf "RatingService: %d calls\n"
    demo.Demo.rating_service.Aldsp_services.Web_service.stats
      .Aldsp_services.Web_service.calls
