examples/resilience.ml: Aldsp_core Aldsp_demo Aldsp_relational Aldsp_services Aldsp_xml Database Demo Function_cache Metadata Printf Server Unix Web_service
