examples/customer_profile.mli:
