examples/security_demo.ml: Aldsp_core Aldsp_demo Aldsp_xml Atomic Audit Demo Item List Printf Qname Security Server String
