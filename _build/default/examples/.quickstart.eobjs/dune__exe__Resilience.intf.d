examples/resilience.mli:
