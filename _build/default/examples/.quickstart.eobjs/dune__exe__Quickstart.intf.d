examples/quickstart.mli:
