examples/updates_sdo.ml: Aldsp_core Aldsp_demo Aldsp_sdo Aldsp_xml Atomic Demo Format Item Lineage List Node Printf Qname Result Sdo Server String Submit
