examples/quickstart.ml: Aldsp_core Aldsp_relational Aldsp_xml Database List Metadata Printf Result Server Sql_value Table
