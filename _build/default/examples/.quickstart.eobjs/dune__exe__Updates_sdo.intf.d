examples/updates_sdo.mli:
