examples/customer_profile.ml: Aldsp_core Aldsp_demo Aldsp_relational Aldsp_services Aldsp_xml Demo Printf Server
