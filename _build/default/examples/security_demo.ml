(* Fine-grained data security (§7): function-level access control and
   element-level resources with removal / replacement, applied after the
   cache so plans and cached results are shared across users.

   Run with: dune exec examples/security_demo.exe *)

open Aldsp_core
open Aldsp_xml
open Aldsp_demo

let section title = Printf.printf "\n=== %s ===\n" title

let () =
  let audit = Audit.create ~level:Audit.Summary () in
  let demo = Demo.create ~customers:2 ~audit () in
  let server = demo.Demo.server in
  let sec = Server.security server in

  (* policies *)
  Security.restrict_function sec
    (Qname.make ~uri:"fn" "getProfile")
    ~roles:[ "support"; "credit" ];
  Security.add_resource sec
    { Security.resource_label = "credit-rating";
      resource_path = [ Qname.local "PROFILE"; Qname.local "RATING" ];
      allowed_roles = [ "credit" ];
      on_deny = Security.Replace (Atomic.String "confidential") };
  Security.add_resource sec
    { Security.resource_label = "card-numbers";
      resource_path =
        [ Qname.local "PROFILE"; Qname.local "CREDIT_CARDS";
          Qname.local "CREDIT_CARD"; Qname.local "NUM" ];
      allowed_roles = [ "credit" ];
      on_deny = Security.Remove };

  let intern = { Security.user_name = "intern"; roles = [] } in
  let support = { Security.user_name = "sam"; roles = [ "support" ] } in
  let credit = { Security.user_name = "chris"; roles = [ "credit" ] } in

  let show user =
    Printf.printf "\n-- as %s (roles: %s)\n" user.Security.user_name
      (String.concat "," user.Security.roles);
    match Server.run server ~user "getProfileByID(\"CUST0001\")" with
    | Ok items -> print_endline (Item.serialize items)
    | Error m -> Printf.printf "denied: %s\n" m
  in

  section "Function-level access control";
  show intern;  (* denied? no: run is a query; ACL applies to call API *)
  (match
     Server.call server ~user:intern (Qname.make ~uri:"fn" "getProfile") []
   with
  | Ok _ -> print_endline "unexpected"
  | Error m -> Printf.printf "intern calling getProfile: %s\n" m);

  section "Element-level policies: same query, different views";
  show support;
  show credit;

  section "Audit trail";
  List.iter
    (fun e -> Printf.printf "[%s] %s\n" e.Audit.category e.Audit.summary)
    (Audit.events audit)
