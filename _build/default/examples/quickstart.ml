(* Quickstart: stand up a data services layer over one relational database
   and run XQuery against it.

   Run with: dune exec examples/quickstart.exe *)

open Aldsp_core
open Aldsp_relational
module V = Sql_value

let () =
  (* 1. An enterprise data source: a small product database. *)
  let db = Database.create ~vendor:Database.Oracle "ShopDB" in
  let products =
    Table.create ~primary_key:[ "PID" ] "PRODUCT"
      [ Table.column ~nullable:false "PID" Table.T_int;
        Table.column ~nullable:false "NAME" Table.T_varchar;
        Table.column ~nullable:false "PRICE" Table.T_decimal;
        Table.column "CATEGORY" Table.T_varchar ]
  in
  Database.add_table db products;
  List.iter
    (fun row -> Result.get_ok (Table.insert products row))
    [ [| V.Int 1; V.Str "Laptop"; V.Float 1200.; V.Str "electronics" |];
      [| V.Int 2; V.Str "Desk"; V.Float 340.; V.Str "furniture" |];
      [| V.Int 3; V.Str "Monitor"; V.Float 280.; V.Str "electronics" |];
      [| V.Int 4; V.Str "Stapler"; V.Float 12.5; V.Null |] ];

  (* 2. Introspection: the table becomes an XQuery function PRODUCT(). *)
  let registry = Metadata.create () in
  Metadata.introspect_relational registry db;

  (* 3. A server with the full compiler pipeline. *)
  let server = Server.create registry in

  let run label q =
    Printf.printf "--- %s\n%s\n" label q;
    match Server.run server q with
    | Ok items -> Printf.printf "=> %s\n\n" (Aldsp_xml.Item.serialize items)
    | Error msg -> Printf.printf "!! %s\n\n" msg
  in

  run "All product names"
    "for $p in PRODUCT() return $p/NAME";

  run "Filter pushed to SQL (see explain below)"
    "for $p in PRODUCT() where $p/PRICE gt 300.0 return <EXPENSIVE>{$p/NAME, $p/PRICE}</EXPENSIVE>";

  run "Grouping with the ALDSP FLWGOR extension"
    "for $p in PRODUCT() group $p as $g by $p/CATEGORY as $cat return <CAT name=\"{$cat}\">{count($g)}</CAT>";

  run "Ragged data: CATEGORY is NULL for the stapler, so the optional \
       element is absent"
    "for $p in PRODUCT() where $p/PID eq 4 return $p";

  (* 4. Explain shows the generated SQL and the physical plan. *)
  match
    Server.explain server
      "for $p in PRODUCT() where $p/PRICE gt 300.0 return $p/NAME"
  with
  | Ok text -> Printf.printf "--- explain\n%s\n" text
  | Error msg -> Printf.printf "!! %s\n" msg
