(* Slow and unavailable sources (§5.4-5.6): asynchronous execution,
   fn-bea:timeout, fn-bea:fail-over, and the function cache.

   Run with: dune exec examples/resilience.exe *)

open Aldsp_core
open Aldsp_relational
open Aldsp_services
open Aldsp_demo

let section title = Printf.printf "\n=== %s ===\n" title

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

let rating name ssn =
  Printf.sprintf
    "fn:data(getRating(<getRating><lName>{\"%s\"}</lName><ssn>{\"%s\"}</ssn></getRating>)/getRatingResult)"
    name ssn

let () =
  let cache = Function_cache.create (Database.create "CacheDB") in
  let demo =
    Demo.create ~customers:3 ~service_latency:0.05 ~function_cache:cache ()
  in
  let server = demo.Demo.server in
  let run q =
    match Server.run server q with
    | Ok items -> Aldsp_xml.Item.serialize items
    | Error m -> "error: " ^ m
  in

  section "Async: three independent 50ms service calls";
  let sync_q =
    Printf.sprintf "<R>{%s, %s, %s}</R>" (rating "a" "1") (rating "b" "2")
      (rating "c" "3")
  in
  let async_q =
    Printf.sprintf "<R>{fn-bea:async(%s), fn-bea:async(%s), fn-bea:async(%s)}</R>"
      (rating "a" "1") (rating "b" "2") (rating "c" "3")
  in
  let t_sync, r_sync = time (fun () -> run sync_q) in
  let t_async, r_async = time (fun () -> run async_q) in
  Printf.printf "sequential: %.0f ms -> %s\n" (t_sync *. 1000.) r_sync;
  Printf.printf "async:      %.0f ms -> %s (latencies overlapped)\n"
    (t_async *. 1000.) r_async;

  section "Timeout: fail over when the source is too slow";
  demo.Demo.rating_service.Web_service.latency <- 0.25;
  let q = Printf.sprintf "fn-bea:timeout(%s, 50, -1)" (rating "x" "9") in
  let t, r = time (fun () -> run q) in
  Printf.printf "timeout(50ms) on a 250ms source: %.0f ms -> %s\n"
    (t *. 1000.) r;
  demo.Demo.rating_service.Web_service.latency <- 0.0;

  section "Fail-over: an unavailable source, an alternate expression";
  Web_service.set_unavailable demo.Demo.rating_service true;
  Printf.printf "primary down, alternate value: %s\n"
    (run (Printf.sprintf "fn-bea:fail-over(%s, 0)" (rating "x" "9")));
  Printf.printf "partial result with () alternate: %s\n"
    (run
       (Printf.sprintf "<PROFILE><RATING?>{fn-bea:fail-over(%s, ())}</RATING></PROFILE>"
          (rating "x" "9")));
  Web_service.set_unavailable demo.Demo.rating_service false;

  section "Function cache: a slow call becomes a single-row lookup";
  demo.Demo.rating_service.Web_service.latency <- 0.1;
  let name = Aldsp_xml.Qname.make ~uri:"fn" "getProfileByID" in
  Metadata.set_cacheable demo.Demo.registry name true;
  Function_cache.enable cache name ~ttl_seconds:300.;
  let call () =
    Server.call server name [ [ Aldsp_xml.Item.string "CUST0001" ] ]
  in
  let t_miss, _ = time call in
  let t_hit, _ = time call in
  Printf.printf "first call (miss): %.0f ms\n" (t_miss *. 1000.);
  Printf.printf "second call (hit): %.0f ms  — cache hits: %d, misses: %d\n"
    (t_hit *. 1000.) (Function_cache.hits cache)
    (Function_cache.misses cache)
