(** Update propagation: the submit path (§6).

    A submit call is the unit of update execution. For each changed data
    object, lineage analysis of its data service determines which source
    tables the changed paths map to; only affected sources participate.
    Per affected table, a single SQL UPDATE is generated whose SET clause
    carries the new values (mapped through registered inverse functions
    when the read path applied a transformation) and whose WHERE clause
    identifies the row by primary key {e and} expresses the chosen
    optimistic concurrency policy — requiring all values read, only
    updated values, or a designated subset (e.g. a timestamp) to still
    match their read-time values. When every affected source is
    relational, the whole submit executes under the two-phase-commit
    coordinator and rolls back completely if any statement misses
    (a concurrent change) or fails.

    An update {e override} registered for a data service replaces the
    default propagation for its objects (§6). *)

open Aldsp_xml

(** Optimistic concurrency options offered to the data service designer. *)
type concurrency_policy =
  | All_read_values
  | Updated_values_only
  | Designated of Qname.t list list
      (** Result paths (e.g. a timestamp element) that must be unchanged. *)

type table_update = {
  tu_db : string;
  tu_table : string;
  tu_sql : string;  (** The UPDATE statement, in the source's dialect. *)
  tu_rows : int;
}

type report = {
  updates : table_update list;
  sources_touched : string list;  (** Databases that participated. *)
  overridden : bool;
}

type overrides

val no_overrides : unit -> overrides

val register_override :
  overrides -> Qname.t -> (Sdo.t -> (unit, string) result) -> unit
(** Replaces default propagation for objects of the given data service
    function. *)

val submit :
  ?policy:concurrency_policy ->
  ?overrides:overrides ->
  Aldsp_core.Metadata.t ->
  Sdo.t list ->
  (report, string) result
(** Propagates all changes atomically. Default policy:
    [Updated_values_only]. On success the objects' change logs are
    cleared. *)
