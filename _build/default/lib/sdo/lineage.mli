(** Lineage analysis (§6).

    Change propagation requires identifying where changed data originated.
    ALDSP computes a data service's lineage automatically from the query
    body of its designated {e lineage provider} function (by default the
    first — "get all" — read method): primary key information, query
    predicates, and the query's result shape together determine which data
    in which sources is affected by an update. The analysis is a rule set
    over the same core algebra the optimizer rewrites; it recognizes the
    shape [result-element content = data(field of a table row variable)],
    including values transformed by a registered external function with a
    declared inverse — such values are updatable by applying the inverse
    on the way back (§4.5, §6). *)

open Aldsp_xml

type column_source = {
  cs_db : string;
  cs_table : string;
  cs_column : string;
  cs_nullable : bool;
  cs_via : Qname.t option;
      (** Function applied to the stored value on the way out (e.g.
          [int2date]). *)
  cs_writeback : Qname.t option;
      (** Function mapping a document value back to the stored value: the
          registered inverse for single-argument transforms, the
          per-argument projection for multi-argument ones (§4.5). *)
}

type table_key = {
  tk_db : string;
  tk_table : string;
  tk_columns : (string * Qname.t list) list;
      (** Primary key column → result path carrying its value. *)
}

type t = {
  provider : Qname.t;
  columns : (Qname.t list * column_source) list;
      (** Result element path → source column. *)
  keys : table_key list;
      (** Row identification for every updatable table. *)
}

val analyze : Aldsp_core.Metadata.t -> Qname.t -> (t, string) result
(** Lineage of the data service whose lineage provider is the named
    function. Fails when the function is unknown or its body is not
    analyzable. *)

val source_of : t -> Qname.t list -> column_source option
(** First column source of a path (a multi-argument transformation maps
    one path to several; see {!sources_of}). *)

val sources_of : t -> Qname.t list -> column_source list

val updatable_tables : t -> (string * string) list
(** Distinct (database, table) pairs with usable keys. *)

val pp : Format.formatter -> t -> unit
