open Aldsp_xml
module C = Aldsp_core.Cexpr
module Metadata = Aldsp_core.Metadata
open Aldsp_relational

type column_source = {
  cs_db : string;
  cs_table : string;
  cs_column : string;
  cs_nullable : bool;
  cs_via : Qname.t option;
  cs_writeback : Qname.t option;
      (* function mapping the document value back to the stored value:
         the inverse for single-argument transforms, the per-argument
         projection for multi-argument ones *)
}

type table_key = {
  tk_db : string;
  tk_table : string;
  tk_columns : (string * Qname.t list) list;
}

type t = {
  provider : Qname.t;
  columns : (Qname.t list * column_source) list;
  keys : table_key list;
}

(* row variable -> its table *)
type row = { r_var : C.var; r_db : Database.t; r_table : Table.t }

let rec strip = function
  | C.Typematch (e, _) -> strip e
  | C.Data e -> strip e
  | e -> e

(* Recognize "field of a row variable", possibly through a function with a
   registered inverse. *)
let rec field_of registry rows e =
  match strip e with
  | C.Child (C.Var v, name) -> (
    match List.find_opt (fun r -> r.r_var = v) rows with
    | Some row -> (
      match Table.column_type row.r_table name.Qname.local with
      | Some _ -> Some (row, name.Qname.local, None)
      | None -> None)
    | None -> None)
  | C.Call { fn; args = [ arg ] } -> (
    match Metadata.inverse_of registry fn with
    | Some _ -> (
      match field_of registry rows arg with
      | Some (row, col, None) -> Some (row, col, Some fn)
      | _ -> None)
    | None -> None)
  | C.Cast (inner, _) -> field_of registry rows inner
  | _ -> None

(* All column sources of one result element's content: either one plain /
   single-transform field, or a multi-argument transformation whose every
   argument is a plain field — each argument column writes back through
   its registered projection (§4.5). *)
let fields_of registry rows e =
  match field_of registry rows e with
  | Some (row, col, via) ->
    let writeback =
      match via with
      | Some f -> Metadata.inverse_of registry f
      | None -> None
    in
    Some [ (row, col, via, writeback) ]
  | None -> (
    match strip e with
    | C.Call { fn; args } when List.length args >= 2 -> (
      match Metadata.projections_of registry fn with
      | Some projections when List.length projections = List.length args ->
        let resolved =
          List.map2
            (fun arg proj ->
              match field_of registry rows arg with
              | Some (row, col, None) -> Some (row, col, Some fn, Some proj)
              | _ -> None)
            args projections
        in
        if List.for_all Option.is_some resolved then
          Some (List.map Option.get resolved)
        else None
      | _ -> None)
    | _ -> None)

let nullable_of table col =
  List.exists
    (fun c -> c.Table.col_name = col && c.Table.nullable)
    table.Table.columns

(* Collect row variables bound by for-clauses over table functions. *)
let rec collect_rows registry clauses =
  List.concat_map
    (fun clause ->
      match clause with
      | C.For { var; source = C.Call { fn; args = [] } } -> (
        match Metadata.resolve_call registry fn 0 with
        | Some
            { Metadata.fd_impl =
                Metadata.External (Metadata.Relational_table { db; table; _ });
              _ } -> (
          match Database.find_table db table with
          | Ok t -> [ { r_var = var; r_db = db; r_table = t } ]
          | Error _ -> [])
        | _ -> [])
      | C.Join { right; _ } -> collect_rows registry right
      | _ -> [])
    clauses

(* Walk the constructed result shape. *)
let rec walk registry rows path content acc =
  let parts = match content with C.Seq es -> es | C.Empty -> [] | e -> [ e ] in
  List.fold_left
    (fun acc part ->
      match part with
      | C.Elem { name; content; _ } -> (
        let child_path = path @ [ name ] in
        match fields_of registry rows content with
        | Some sources ->
          List.rev_append
            (List.map
               (fun (row, col, via, writeback) ->
                 ( child_path,
                   { cs_db = row.r_db.Database.db_name;
                     cs_table = row.r_table.Table.table_name;
                     cs_column = col;
                     cs_nullable = nullable_of row.r_table col;
                     cs_via = via;
                     cs_writeback = writeback } ))
               sources)
            acc
        | None -> walk registry rows child_path content acc)
      | _ -> acc)
    acc parts

let resolve registry provider =
  match Metadata.find_function registry provider 0 with
  | Some fd -> Some fd
  | None -> (
    match Metadata.resolve_call registry provider 0 with
    | Some fd -> Some fd
    | None ->
      (* unprefixed data service functions live in the default function
         namespace *)
      Metadata.find_function registry
        (Qname.make ~uri:"fn" provider.Qname.local)
        0)

let analyze registry provider =
  match resolve registry provider with
  | None ->
    Error
      (Printf.sprintf "no zero-argument lineage provider %s"
         (Qname.to_string provider))
  | Some { Metadata.fd_impl = Metadata.External _; _ } ->
    (* a physical data service: the row element maps 1:1 onto the table *)
    (match resolve registry provider with
    | Some
        { Metadata.fd_impl =
            Metadata.External (Metadata.Relational_table { db; table; row_name });
          _ } -> (
      match Database.find_table db table with
      | Error msg -> Error msg
      | Ok t ->
        let columns =
          List.map
            (fun c ->
              ( [ row_name; Qname.local c.Table.col_name ],
                { cs_db = db.Database.db_name;
                  cs_table = table;
                  cs_column = c.Table.col_name;
                  cs_nullable = c.Table.nullable;
                  cs_via = None;
                  cs_writeback = None } ))
            t.Table.columns
        in
        let keys =
          [ { tk_db = db.Database.db_name;
              tk_table = table;
              tk_columns =
                List.map
                  (fun k -> (k, [ row_name; Qname.local k ]))
                  t.Table.primary_key } ]
        in
        Ok { provider; columns; keys })
    | _ -> Error "unsupported external lineage provider")
  | Some { Metadata.fd_impl = Metadata.Body body; _ } -> (
    (* the body may be wrapped in the typematch inserted against the
       declared return type *)
    match strip body with
    | C.Flwor { clauses; return_ = C.Elem { name; content; _ } } ->
      let rows = collect_rows registry clauses in
      if rows = [] then
        Error "lineage provider reads no relational source"
      else
        let columns = List.rev (walk registry rows [ name ] content []) in
        (* a table is updatable when every primary key column has a result
           path (needed to identify the row) *)
        let keys =
          List.filter_map
            (fun row ->
              let pk = row.r_table.Table.primary_key in
              let paths =
                List.map
                  (fun k ->
                    ( k,
                      List.find_map
                        (fun (path, cs) ->
                          if
                            cs.cs_table = row.r_table.Table.table_name
                            && cs.cs_db = row.r_db.Database.db_name
                            && cs.cs_column = k
                          then Some path
                          else None)
                        columns ))
                  pk
              in
              if pk <> [] && List.for_all (fun (_, p) -> p <> None) paths then
                Some
                  { tk_db = row.r_db.Database.db_name;
                    tk_table = row.r_table.Table.table_name;
                    tk_columns =
                      List.map (fun (k, p) -> (k, Option.get p)) paths }
              else None)
            rows
        in
        Ok { provider; columns; keys }
    | _ -> Error "lineage provider body is not a FLWOR over an element constructor")

let source_of t path =
  List.find_map
    (fun (p, cs) ->
      if
        List.length p = List.length path && List.for_all2 Qname.equal p path
      then Some cs
      else None)
    t.columns

let sources_of t path =
  List.filter_map
    (fun (p, cs) ->
      if List.length p = List.length path && List.for_all2 Qname.equal p path
      then Some cs
      else None)
    t.columns

let updatable_tables t =
  List.map (fun k -> (k.tk_db, k.tk_table)) t.keys

let pp ppf t =
  Format.fprintf ppf "@[<v>lineage of %a:@ %a@ keys: %a@]" Qname.pp t.provider
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf (path, cs) ->
         Format.fprintf ppf "%s -> %s.%s.%s%s"
           (String.concat "/" (List.map Qname.to_string path))
           cs.cs_db cs.cs_table cs.cs_column
           (match cs.cs_via with
           | Some f -> Printf.sprintf " (via %s)" (Qname.to_string f)
           | None -> "")))
    t.columns
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf k ->
         Format.fprintf ppf "%s.%s: %s" k.tk_db k.tk_table
           (String.concat ", " (List.map fst k.tk_columns))))
    t.keys
