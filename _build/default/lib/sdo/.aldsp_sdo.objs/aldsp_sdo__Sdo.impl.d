lib/sdo/sdo.ml: Aldsp_xml Atomic Format List Node Printf Qname String
