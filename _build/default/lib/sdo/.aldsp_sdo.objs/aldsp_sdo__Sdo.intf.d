lib/sdo/sdo.mli: Aldsp_xml Atomic Format Node Qname
