lib/sdo/lineage.mli: Aldsp_core Aldsp_xml Format Qname
