lib/sdo/submit.mli: Aldsp_core Aldsp_xml Qname Sdo
