lib/sdo/submit.ml: Aldsp_core Aldsp_relational Aldsp_services Aldsp_xml Database Hashtbl Lineage List Option Printf Qname Result Sdo Sql_ast Sql_exec Sql_print Sql_value String Txn
