lib/sdo/lineage.ml: Aldsp_core Aldsp_relational Aldsp_xml Database Format List Option Printf Qname String Table
