open Aldsp_xml

type change = {
  change_path : Qname.t list;
  old_value : Atomic.t option;
  new_value : Atomic.t option;
}

type status = Unchanged | Modified | Created | Deleted

type t = {
  ds_function : Qname.t;
  original : Node.t;
  mutable current : Node.t;
  mutable change_log : change list;
  mutable status : status;
}

let of_result ~ds_function node =
  { ds_function; original = node; current = node; change_log = [];
    status = Unchanged }

let create ~ds_function node =
  { ds_function; original = node; current = node; change_log = [];
    status = Created }

let mark_deleted t = t.status <- Deleted

let rec value_at node = function
  | [] -> (
    match Node.typed_value node with
    | [ v ] -> Some v
    | _ -> None)
  | name :: rest -> (
    match Node.child_elements node name with
    | [ child ] -> value_at child rest
    | _ -> None)

let get_field t path =
  (* the path's first component may name the root element itself *)
  match path with
  | root :: rest when Node.name t.current = Some root -> value_at t.current rest
  | path -> value_at t.current path

(* Rebuild the tree with the element at [path] replaced (or removed). *)
let rec update_node node path new_value =
  match (node, path) with
  | Node.Element e, [ last ] ->
    let found = ref false in
    let children =
      List.concat_map
        (fun child ->
          match Node.name child with
          | Some n when Qname.equal n last ->
            found := true;
            (match new_value with
            | Some v -> [ Node.element last [ Node.atom v ] ]
            | None -> [])
          | _ -> [ child ])
        e.Node.children
    in
    if !found then
      Ok (Node.Element { e with Node.children })
    else (
      (* absent element: insert at the end when setting a value *)
      match new_value with
      | Some v ->
        Ok
          (Node.Element
             { e with
               Node.children = e.Node.children @ [ Node.element last [ Node.atom v ] ] })
      | None -> Error (Printf.sprintf "no element %s to remove" (Qname.to_string last)))
  | Node.Element e, step :: rest -> (
    let updated = ref None in
    let children =
      List.map
        (fun child ->
          match Node.name child with
          | Some n when Qname.equal n step && !updated = None -> (
            match update_node child rest new_value with
            | Ok child' ->
              updated := Some (Ok ());
              child'
            | Error msg ->
              updated := Some (Error msg);
              child)
          | _ -> child)
        e.Node.children
    in
    match !updated with
    | Some (Ok ()) -> Ok (Node.Element { e with Node.children })
    | Some (Error msg) -> Error msg
    | None -> Error (Printf.sprintf "no element %s on path" (Qname.to_string step)))
  | (Node.Text _ | Node.Atom _), _ -> Error "path descends into a leaf"
  | Node.Element _, [] -> Error "empty path"

let strip_root t path =
  match path with
  | root :: rest when Node.name t.current = Some root -> rest
  | path -> path

let record t path old_value new_value =
  if t.status = Unchanged then t.status <- Modified;
  t.change_log <-
    t.change_log @ [ { change_path = path; old_value; new_value } ]

let set_field t path value =
  let rel = strip_root t path in
  if rel = [] then Error "cannot replace the object root"
  else
    let old_value = value_at t.current rel in
    if old_value = Some value then Ok ()
    else
      match update_node t.current rel (Some value) with
      | Ok current ->
        t.current <- current;
        record t path old_value (Some value);
        Ok ()
      | Error _ as e -> e

let remove_field t path =
  let rel = strip_root t path in
  if rel = [] then Error "cannot remove the object root"
  else
    let old_value = value_at t.current rel in
    match update_node t.current rel None with
    | Ok current ->
      t.current <- current;
      record t path old_value None;
      Ok ()
    | Error _ as e -> e

let is_changed t =
  t.change_log <> [] || t.status = Created || t.status = Deleted

let serialize_change_log t =
  let change_node c =
    let value_elem name = function
      | Some v -> [ Node.element (Qname.local name) [ Node.atom v ] ]
      | None -> []
    in
    Node.element
      ~attributes:
        [ ( Qname.local "path",
            Atomic.String
              (String.concat "/" (List.map Qname.to_string c.change_path)) ) ]
      (Qname.local "change")
      (value_elem "old" c.old_value @ value_elem "new" c.new_value)
  in
  Node.serialize
    (Node.element (Qname.local "changeLog") (List.map change_node t.change_log))

let pp ppf t =
  Format.fprintf ppf "@[<v>data object from %a:@ %s@ %s@]" Qname.pp
    t.ds_function
    (Node.serialize t.current)
    (serialize_change_log t)
