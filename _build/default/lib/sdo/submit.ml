open Aldsp_xml
module Metadata = Aldsp_core.Metadata
open Aldsp_relational
module Sql = Sql_ast

type concurrency_policy =
  | All_read_values
  | Updated_values_only
  | Designated of Qname.t list list

type table_update = {
  tu_db : string;
  tu_table : string;
  tu_sql : string;
  tu_rows : int;
}

type report = {
  updates : table_update list;
  sources_touched : string list;
  overridden : bool;
}

type overrides = (Qname.t, Sdo.t -> (unit, string) result) Hashtbl.t

let no_overrides () : overrides = Hashtbl.create 4

let register_override overrides fn handler = Hashtbl.replace overrides fn handler

let ( let* ) = Result.bind

(* map a document value back to the stored value, applying the write-back
   function lineage recorded (the inverse for single-argument transforms,
   the per-argument projection for multi-argument ones, §4.5) *)
let stored_value registry (cs : Lineage.column_source) = function
  | None -> Ok Sql_value.Null
  | Some atom -> (
    match (cs.Lineage.cs_writeback, cs.Lineage.cs_via) with
    | None, None -> Ok (Sql_value.of_atomic atom)
    | None, Some via ->
      Error
        (Printf.sprintf "no inverse registered for %s; %s.%s not updatable"
           (Qname.to_string via) cs.Lineage.cs_table cs.Lineage.cs_column)
    | Some writeback, _ -> (
      match
        Aldsp_services.Custom_function.call
          (Metadata.custom_registry registry)
          writeback [ atom ]
      with
      | Ok stored -> Ok (Sql_value.of_atomic stored)
      | Error msg -> Error msg))

let original_value sdo path =
  Sdo.get_field
    { sdo with Sdo.current = sdo.Sdo.original }
    path

(* lineage paths a policy requires to be unchanged, per table *)
let concurrency_columns policy lineage sdo table_db table_name changed_paths =
  match policy with
  | Updated_values_only -> changed_paths
  | All_read_values ->
    List.filter_map
      (fun (path, cs) ->
        if
          cs.Lineage.cs_db = table_db
          && cs.Lineage.cs_table = table_name
          && original_value sdo path <> None
        then Some path
        else None)
      lineage.Lineage.columns
  | Designated paths ->
    List.filter
      (fun path ->
        match Lineage.source_of lineage path with
        | Some cs ->
          cs.Lineage.cs_db = table_db && cs.Lineage.cs_table = table_name
        | None -> false)
      paths

let propagate_object registry policy lineage (sdo : Sdo.t) =
  (* group the changed paths by their source table *)
  let changes_by_table = Hashtbl.create 4 in
  let* () =
    List.fold_left
      (fun acc change ->
        let* () = acc in
        match Lineage.sources_of lineage change.Sdo.change_path with
        | [] ->
          Error
            (Printf.sprintf "path %s has no updatable lineage"
               (String.concat "/"
                  (List.map Qname.to_string change.Sdo.change_path)))
        | sources ->
          (* a multi-argument transformation maps one changed path to one
             assignment per underlying column *)
          List.iter
            (fun cs ->
              let key = (cs.Lineage.cs_db, cs.Lineage.cs_table) in
              let existing =
                Option.value (Hashtbl.find_opt changes_by_table key)
                  ~default:[]
              in
              Hashtbl.replace changes_by_table key (existing @ [ (change, cs) ]))
            sources;
          Ok ())
      (Ok ()) sdo.Sdo.change_log
  in
  (* one UPDATE per affected table *)
  Hashtbl.fold
    (fun (db_name, table_name) changes acc ->
      let* acc = acc in
      let* key =
        match
          List.find_opt
            (fun k ->
              k.Lineage.tk_db = db_name && k.Lineage.tk_table = table_name)
            lineage.Lineage.keys
        with
        | Some k -> Ok k
        | None ->
          Error
            (Printf.sprintf "table %s.%s has no usable primary key" db_name
               table_name)
      in
      let* db =
        match Metadata.find_database registry db_name with
        | Some db -> Ok db
        | None -> Error (Printf.sprintf "unknown database %s" db_name)
      in
      (* SET: new values (through inverses) *)
      let* assignments =
        List.fold_left
          (fun acc (change, cs) ->
            let* acc = acc in
            let* v = stored_value registry cs change.Sdo.new_value in
            Ok (acc @ [ (cs.Lineage.cs_column, Sql.Lit v) ]))
          (Ok []) changes
      in
      (* WHERE: primary key + optimistic concurrency predicate, both from
         read-time (original) values *)
      let* key_conds =
        List.fold_left
          (fun acc (col, path) ->
            let* acc = acc in
            match original_value sdo path with
            | Some v ->
              Ok
                (acc
                @ [ Sql.Binop
                      ( Sql.Eq,
                        Sql.Col (None, col),
                        Sql.Lit (Sql_value.of_atomic v) ) ])
            | None ->
              Error
                (Printf.sprintf "object lacks key value for %s.%s" table_name col))
          (Ok [])
          key.Lineage.tk_columns
      in
      let changed_paths = List.map (fun (c, _) -> c.Sdo.change_path) changes in
      let guard_paths =
        concurrency_columns policy lineage sdo db_name table_name changed_paths
      in
      let* guard_conds =
        List.fold_left
          (fun acc path ->
            let* acc = acc in
            match Lineage.source_of lineage path with
            | None -> Ok acc
            | Some cs ->
              let cond =
                match original_value sdo path with
                | Some v -> (
                  let* stored = stored_value registry cs (Some v) in
                  Ok
                    (Sql.Binop
                       (Sql.Eq, Sql.Col (None, cs.Lineage.cs_column),
                        Sql.Lit stored)))
                | None -> Ok (Sql.Is_null (Sql.Col (None, cs.Lineage.cs_column)))
              in
              let* cond = cond in
              Ok (acc @ [ cond ]))
          (Ok []) guard_paths
      in
      let where =
        List.fold_left
          (fun acc c ->
            match acc with
            | None -> Some c
            | Some a -> Some (Sql.Binop (Sql.And, a, c)))
          None (key_conds @ guard_conds)
      in
      let dml = Sql.Update { table = table_name; assignments; where } in
      Ok ((db, dml) :: acc))
    changes_by_table (Ok [])

(* INSERT for a Created object: one row per updatable table, populated
   from every lineage column whose path has a value in the document. *)
let insert_object registry lineage (sdo : Sdo.t) =
  let current_value path =
    Sdo.get_field sdo path
  in
  List.fold_left
    (fun acc (key : Lineage.table_key) ->
      let* acc = acc in
      let* db =
        match Metadata.find_database registry key.Lineage.tk_db with
        | Some db -> Ok db
        | None -> Error (Printf.sprintf "unknown database %s" key.Lineage.tk_db)
      in
      let* () =
        if
          List.for_all
            (fun (_, path) -> current_value path <> None)
            key.Lineage.tk_columns
        then Ok ()
        else
          Error
            (Printf.sprintf "new object lacks key values for %s.%s"
               key.Lineage.tk_db key.Lineage.tk_table)
      in
      let* cells =
        List.fold_left
          (fun acc (path, cs) ->
            let* acc = acc in
            if
              cs.Lineage.cs_db <> key.Lineage.tk_db
              || cs.Lineage.cs_table <> key.Lineage.tk_table
            then Ok acc
            else
              match current_value path with
              | None -> Ok acc
              | Some v ->
                let* stored = stored_value registry cs (Some v) in
                Ok (acc @ [ (cs.Lineage.cs_column, Sql.Lit stored) ]))
          (Ok []) lineage.Lineage.columns
      in
      let dml =
        Sql.Insert
          { table = key.Lineage.tk_table;
            columns = List.map fst cells;
            values = List.map snd cells }
      in
      Ok ((db, dml) :: acc))
    (Ok []) lineage.Lineage.keys

(* DELETE for a Deleted object: remove the row from each updatable table,
   identified by primary key (plus the policy's guards). *)
let delete_object registry policy lineage (sdo : Sdo.t) =
  List.fold_left
    (fun acc (key : Lineage.table_key) ->
      let* acc = acc in
      let* db =
        match Metadata.find_database registry key.Lineage.tk_db with
        | Some db -> Ok db
        | None -> Error (Printf.sprintf "unknown database %s" key.Lineage.tk_db)
      in
      let* key_conds =
        List.fold_left
          (fun acc (col, path) ->
            let* acc = acc in
            match original_value sdo path with
            | Some v ->
              Ok
                (acc
                @ [ Sql.Binop
                      ( Sql.Eq,
                        Sql.Col (None, col),
                        Sql.Lit (Sql_value.of_atomic v) ) ])
            | None ->
              Error
                (Printf.sprintf "object lacks key value for %s.%s"
                   key.Lineage.tk_table col))
          (Ok []) key.Lineage.tk_columns
      in
      let guard_paths =
        concurrency_columns policy lineage sdo key.Lineage.tk_db
          key.Lineage.tk_table []
      in
      let* guard_conds =
        List.fold_left
          (fun acc path ->
            let* acc = acc in
            match Lineage.source_of lineage path with
            | None -> Ok acc
            | Some cs -> (
              match original_value sdo path with
              | Some v ->
                let* stored = stored_value registry cs (Some v) in
                Ok
                  (acc
                  @ [ Sql.Binop
                        (Sql.Eq, Sql.Col (None, cs.Lineage.cs_column),
                         Sql.Lit stored) ])
              | None ->
                Ok (acc @ [ Sql.Is_null (Sql.Col (None, cs.Lineage.cs_column)) ])))
          (Ok []) guard_paths
      in
      let where =
        List.fold_left
          (fun acc c ->
            match acc with
            | None -> Some c
            | Some a -> Some (Sql.Binop (Sql.And, a, c)))
          None (key_conds @ guard_conds)
      in
      Ok ((db, Sql.Delete { table = key.Lineage.tk_table; where }) :: acc))
    (Ok []) lineage.Lineage.keys

let submit ?(policy = Updated_values_only) ?overrides registry sdos =
  let overrides = match overrides with Some o -> o | None -> no_overrides () in
  let changed = List.filter Sdo.is_changed sdos in
  if changed = [] then
    Ok { updates = []; sources_touched = []; overridden = false }
  else begin
    (* overrides replace default propagation per data service *)
    let overridden, default =
      List.partition
        (fun sdo -> Hashtbl.mem overrides sdo.Sdo.ds_function)
        changed
    in
    let* () =
      List.fold_left
        (fun acc sdo ->
          let* () = acc in
          (Hashtbl.find overrides sdo.Sdo.ds_function) sdo)
        (Ok ()) overridden
    in
    (* plan all statements first so lineage errors abort before any write *)
    let* planned =
      List.fold_left
        (fun acc sdo ->
          let* acc = acc in
          let provider =
            (* the object's data service function is its lineage provider
               unless the registry's data service says otherwise *)
            sdo.Sdo.ds_function
          in
          let* lineage = Lineage.analyze registry provider in
          let* stmts =
            match sdo.Sdo.status with
            | Sdo.Created -> insert_object registry lineage sdo
            | Sdo.Deleted -> delete_object registry policy lineage sdo
            | Sdo.Modified | Sdo.Unchanged ->
              propagate_object registry policy lineage sdo
          in
          Ok (acc @ stmts))
        (Ok []) default
    in
    let participants =
      List.sort_uniq compare (List.map (fun (db, _) -> db) planned)
    in
    let executed = ref [] in
    let outcome =
      Txn.two_phase_commit ~participants ~work:(fun () ->
          List.fold_left
            (fun acc (db, dml) ->
              let* () = acc in
              match Sql_exec.execute_dml db dml with
              | Error msg -> Error msg
              | Ok 0 ->
                Error
                  (Printf.sprintf
                     "optimistic concurrency conflict: %s matched no row"
                     (Sql_print.statement db.Database.vendor (Sql.Dml dml)))
              | Ok n ->
                executed :=
                  { tu_db = db.Database.db_name;
                    tu_table =
                      (match dml with
                      | Sql.Update { table; _ } -> table
                      | Sql.Insert { table; _ } | Sql.Delete { table; _ } ->
                        table);
                    tu_sql = Sql_print.statement db.Database.vendor (Sql.Dml dml);
                    tu_rows = n }
                  :: !executed;
                Ok ())
            (Ok ()) planned)
    in
    match outcome with
    | Txn.Rolled_back msg -> Error msg
    | Txn.Committed ->
      List.iter
        (fun (sdo : Sdo.t) ->
          sdo.Sdo.change_log <- [];
          sdo.Sdo.status <- Sdo.Unchanged)
        changed;
      Ok
        { updates = List.rev !executed;
          sources_touched =
            List.map (fun db -> db.Database.db_name) participants;
          overridden = overridden <> [] }
  end
