(** Service Data Objects (§6, Figure 5).

    A data object wraps a business-object instance returned by a data
    service read method. Mutations through {!set_field} / {!remove_field}
    are tracked: the object keeps the new XML data plus a change log
    recording which portions changed and their previous values — exactly
    what a changed SDO sends back to ALDSP on submit. *)

open Aldsp_xml

type change = {
  change_path : Qname.t list;
      (** Element path from the object root, e.g. [PROFILE/LAST_NAME]. *)
  old_value : Atomic.t option;  (** [None]: the element was absent. *)
  new_value : Atomic.t option;  (** [None]: the element was removed. *)
}

(** Object life-cycle: read objects start [Unchanged] and move to
    [Modified] on the first field change; [Created] and [Deleted] objects
    propagate as INSERT and DELETE statements respectively. *)
type status = Unchanged | Modified | Created | Deleted

type t = {
  ds_function : Qname.t;
      (** The data service function this object was read from (its data
          service's lineage provider drives update propagation). *)
  original : Node.t;
  mutable current : Node.t;
  mutable change_log : change list;  (** Oldest first. *)
  mutable status : status;
}

val of_result : ds_function:Qname.t -> Node.t -> t

val create : ds_function:Qname.t -> Node.t -> t
(** A brand-new business object to be inserted on submit. *)

val mark_deleted : t -> unit
(** The object's rows are removed from the affected sources on submit. *)

val get_field : t -> Qname.t list -> Atomic.t option
(** Reads the typed value at a path of the current data. *)

val set_field : t -> Qname.t list -> Atomic.t -> (unit, string) result
(** Replaces the simple content of the element at the path, recording the
    change. Setting the same value is a no-op. *)

val remove_field : t -> Qname.t list -> (unit, string) result
(** Removes an (optional) element, recording the change. *)

val is_changed : t -> bool

val serialize_change_log : t -> string
(** The wire form of the change log: one [<change>] element per entry,
    with the path and the old and new values. *)

val pp : Format.formatter -> t -> unit
