open Aldsp_xml

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Timestamp of float

type truth = True | False | Unknown

let is_null = function Null -> true | _ -> false

let as_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Timestamp f -> Some f
  | Null | Str _ | Bool _ -> None

let compare_sql a b =
  match (a, b) with
  | Null, _ | _, Null -> None
  | Int x, Int y -> Some (compare x y)
  | Str x, Str y -> Some (String.compare x y)
  | Bool x, Bool y -> Some (compare x y)
  | Timestamp x, Timestamp y -> Some (Float.compare x y)
  | _ -> (
    match (as_float a, as_float b) with
    | Some x, Some y -> Some (Float.compare x y)
    | _ -> None)

let equal a b =
  match (a, b) with
  | Null, Null -> true
  | Null, _ | _, Null -> false
  | _ -> compare_sql a b = Some 0

let truth_of_comparison pred a b =
  match compare_sql a b with
  | None -> Unknown
  | Some c -> if pred c then True else False

let and_ a b =
  match (a, b) with
  | False, _ | _, False -> False
  | True, True -> True
  | _ -> Unknown

let or_ a b =
  match (a, b) with
  | True, _ | _, True -> True
  | False, False -> False
  | _ -> Unknown

let not_ = function True -> False | False -> True | Unknown -> Unknown

let to_atomic = function
  | Null -> None
  | Int i -> Some (Atomic.Integer i)
  | Float f -> Some (Atomic.Decimal f)
  | Str s -> Some (Atomic.String s)
  | Bool b -> Some (Atomic.Boolean b)
  | Timestamp f -> Some (Atomic.Date_time f)

let of_atomic = function
  | Atomic.Integer i -> Int i
  | Atomic.Decimal f | Atomic.Double f -> Float f
  | Atomic.String s | Atomic.Untyped s -> Str s
  | Atomic.Boolean b -> Bool b
  | Atomic.Date d -> Timestamp (Atomic.epoch_of_date d)
  | Atomic.Date_time f -> Timestamp f

let to_string = function
  | Null -> "NULL"
  | Int i -> string_of_int i
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
    else Printf.sprintf "%g" f
  | Str s ->
    let escaped = String.concat "''" (String.split_on_char '\'' s) in
    Printf.sprintf "'%s'" escaped
  | Bool b -> if b then "TRUE" else "FALSE"
  | Timestamp f -> Printf.sprintf "TIMESTAMP '%s'" (Atomic.date_time_to_string f)

let pp ppf v = Format.pp_print_string ppf (to_string v)
