(** A named in-memory database: the queryable-source substrate.

    Stands in for the Oracle/DB2/SQL Server/Sybase backends of the paper.
    Each database carries a vendor tag (driving SQL dialect generation), a
    simulated per-roundtrip latency (so distributed-join tradeoffs such as
    PP-k's block size are observable), and execution statistics (roundtrips,
    rows shipped) that the benchmarks report. *)

type vendor = Oracle | Db2 | Sql_server | Sybase | Generic_sql92

type stats = {
  mutable statements : int;  (** Statements executed (= roundtrips). *)
  mutable rows_shipped : int;  (** Result rows returned to the caller. *)
  mutable params_bound : int;
}

type t = {
  db_name : string;
  vendor : vendor;
  tables : (string, Table.t) Hashtbl.t;
  stats : stats;
  mutable roundtrip_latency : float;
      (** Simulated seconds of network+parse cost per statement; applied
          with [Unix.sleepf] when positive. *)
}

val create : ?vendor:vendor -> ?roundtrip_latency:float -> string -> t

val add_table : t -> Table.t -> unit
val find_table : t -> string -> (Table.t, string) result
val table_names : t -> string list

val vendor_name : vendor -> string

val reset_stats : t -> unit

val record_statement : t -> params:int -> rows:int -> unit
(** Accounts one roundtrip and applies the simulated latency. Used by the
    executor; exposed so functional-source simulators can share the
    accounting. *)
