(** SQL values with NULL and three-valued logic.

    NULL is a first-class value here (unlike the XML side, where relational
    NULLs are modeled as {e missing elements}, §4.4); the relational adaptor
    performs that translation at the boundary. *)

open Aldsp_xml

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Timestamp of float  (** Seconds since the Unix epoch, UTC. *)

(** Result of a three-valued-logic predicate. *)
type truth = True | False | Unknown

val is_null : t -> bool

val compare_sql : t -> t -> int option
(** SQL comparison: [None] when either side is NULL or the types are
    incomparable, [Some c] otherwise. Numeric types compare across Int and
    Float. *)

val equal : t -> t -> bool
(** Structural equality ([Null = Null] holds) — used for grouping and
    DISTINCT, where SQL treats NULLs as equal. *)

val truth_of_comparison : (int -> bool) -> t -> t -> truth

val and_ : truth -> truth -> truth
val or_ : truth -> truth -> truth
val not_ : truth -> truth

val to_atomic : t -> Atomic.t option
(** Boundary conversion to the XML side; NULL maps to [None] (missing
    element). *)

val of_atomic : Atomic.t -> t

val to_string : t -> string
(** SQL literal syntax: strings quoted with [''], NULL as [NULL]. *)

val pp : Format.formatter -> t -> unit
