(** Table schemas and row storage.

    Rows are value arrays positionally aligned with the column list. Primary
    and foreign keys are part of the schema; ALDSP's introspector reads them
    to generate read and navigation functions (§2.1). *)

type sql_type = T_int | T_varchar | T_decimal | T_boolean | T_timestamp

type column = { col_name : string; col_type : sql_type; nullable : bool }

type foreign_key = {
  fk_columns : string list;
  references_table : string;
  references_columns : string list;
}

type t = {
  table_name : string;
  columns : column list;
  primary_key : string list;
  foreign_keys : foreign_key list;
  mutable rows : Sql_value.t array list;  (** Reverse insertion order. *)
}

val create :
  ?primary_key:string list ->
  ?foreign_keys:foreign_key list ->
  string ->
  column list ->
  t

val column : ?nullable:bool -> string -> sql_type -> column

val column_index : t -> string -> int option
val column_type : t -> string -> sql_type option

val insert : t -> Sql_value.t array -> (unit, string) result
(** Validates arity, NOT NULL constraints, basic type conformance and
    primary-key uniqueness, then appends the row. *)

val all_rows : t -> Sql_value.t array list
(** Rows in insertion order. *)

val row_count : t -> int

val type_check : sql_type -> Sql_value.t -> bool

val atomic_type_of_sql : sql_type -> Aldsp_xml.Atomic.atomic_type
(** The SQL-to-XML type mapping used when introspection builds the XML
    shape of a table (§4.4). *)
