(** Stored procedures — a functional-source kind of §2.2 hosted by a
    database.

    "Functional sources are sources which ALDSP can only interact with by
    calling specific functions with parameters; Web services, Java
    functions, and stored procedures all fall into this category." A
    procedure has a typed parameter list and either returns rows (a
    result-set procedure, surfaced like a parameterized view) or a single
    scalar. Invocation is accounted as one roundtrip on the hosting
    database. *)

type result_kind =
  | Returns_rows of (string * Table.sql_type) list
      (** Column names/types of the produced result set. *)
  | Returns_scalar of Table.sql_type

type t = {
  proc_name : string;
  proc_params : (string * Table.sql_type) list;
  result : result_kind;
  body : Database.t -> Sql_value.t list -> (Sql_value.t array list, string) result;
      (** Scalar procedures return one single-cell row. *)
}

val register : Database.t -> t -> unit
(** Attaches the procedure to the database (by name, per database). *)

val find : Database.t -> string -> t option

val call :
  Database.t -> string -> Sql_value.t list ->
  (Sql_value.t array list, string) result
(** Arity- and type-checks the arguments, runs the body, accounts one
    statement on the database's statistics (with its simulated latency),
    and checks the produced rows against the declared result shape. *)
