type sql_type = T_int | T_varchar | T_decimal | T_boolean | T_timestamp

type column = { col_name : string; col_type : sql_type; nullable : bool }

type foreign_key = {
  fk_columns : string list;
  references_table : string;
  references_columns : string list;
}

type t = {
  table_name : string;
  columns : column list;
  primary_key : string list;
  foreign_keys : foreign_key list;
  mutable rows : Sql_value.t array list;
}

let create ?(primary_key = []) ?(foreign_keys = []) table_name columns =
  { table_name; columns; primary_key; foreign_keys; rows = [] }

let column ?(nullable = true) col_name col_type = { col_name; col_type; nullable }

let column_index t name =
  let rec go i = function
    | [] -> None
    | c :: _ when String.equal c.col_name name -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 t.columns

let column_type t name =
  List.find_map
    (fun c -> if String.equal c.col_name name then Some c.col_type else None)
    t.columns

let type_check ty v =
  match (ty, v) with
  | _, Sql_value.Null -> true
  | T_int, Sql_value.Int _ -> true
  | T_varchar, Sql_value.Str _ -> true
  | T_decimal, (Sql_value.Int _ | Sql_value.Float _) -> true
  | T_boolean, Sql_value.Bool _ -> true
  | T_timestamp, (Sql_value.Timestamp _ | Sql_value.Int _) -> true
  | _ -> false

let key_of_row t row =
  List.map
    (fun k ->
      match column_index t k with
      | Some i -> row.(i)
      | None -> Sql_value.Null)
    t.primary_key

let insert t row =
  if Array.length row <> List.length t.columns then
    Error
      (Printf.sprintf "table %s: row has %d values, expected %d" t.table_name
         (Array.length row) (List.length t.columns))
  else
    let violations =
      List.filteri
        (fun i c ->
          (Sql_value.is_null row.(i) && not c.nullable)
          || not (type_check c.col_type row.(i)))
        t.columns
    in
    match violations with
    | c :: _ ->
      Error
        (Printf.sprintf "table %s: constraint violation on column %s"
           t.table_name c.col_name)
    | [] ->
      if t.primary_key <> [] then begin
        let key = key_of_row t row in
        let duplicate =
          List.exists
            (fun existing ->
              List.for_all2 Sql_value.equal key (key_of_row t existing))
            t.rows
        in
        if duplicate then
          Error
            (Printf.sprintf "table %s: duplicate primary key" t.table_name)
        else begin
          t.rows <- row :: t.rows;
          Ok ()
        end
      end
      else begin
        t.rows <- row :: t.rows;
        Ok ()
      end

let all_rows t = List.rev t.rows

let row_count t = List.length t.rows

let atomic_type_of_sql = function
  | T_int -> Aldsp_xml.Atomic.T_integer
  | T_varchar -> Aldsp_xml.Atomic.T_string
  | T_decimal -> Aldsp_xml.Atomic.T_decimal
  | T_boolean -> Aldsp_xml.Atomic.T_boolean
  | T_timestamp -> Aldsp_xml.Atomic.T_date_time
