type vendor = Oracle | Db2 | Sql_server | Sybase | Generic_sql92

type stats = {
  mutable statements : int;
  mutable rows_shipped : int;
  mutable params_bound : int;
}

type t = {
  db_name : string;
  vendor : vendor;
  tables : (string, Table.t) Hashtbl.t;
  stats : stats;
  mutable roundtrip_latency : float;
}

let create ?(vendor = Generic_sql92) ?(roundtrip_latency = 0.) db_name =
  { db_name;
    vendor;
    tables = Hashtbl.create 16;
    stats = { statements = 0; rows_shipped = 0; params_bound = 0 };
    roundtrip_latency }

let add_table t table = Hashtbl.replace t.tables table.Table.table_name table

let find_table t name =
  match Hashtbl.find_opt t.tables name with
  | Some table -> Ok table
  | None -> Error (Printf.sprintf "database %s: no table %s" t.db_name name)

let table_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.tables []
  |> List.sort String.compare

let vendor_name = function
  | Oracle -> "Oracle"
  | Db2 -> "DB2"
  | Sql_server -> "SQL Server"
  | Sybase -> "Sybase"
  | Generic_sql92 -> "SQL92"

let reset_stats t =
  t.stats.statements <- 0;
  t.stats.rows_shipped <- 0;
  t.stats.params_bound <- 0

let record_statement t ~params ~rows =
  t.stats.statements <- t.stats.statements + 1;
  t.stats.params_bound <- t.stats.params_bound + params;
  t.stats.rows_shipped <- t.stats.rows_shipped + rows;
  if t.roundtrip_latency > 0. then Unix.sleepf t.roundtrip_latency
