type binop =
  | Eq | Neq | Lt | Le | Gt | Ge
  | Add | Sub | Mul | Div
  | And | Or
  | Concat
  | Like

type func = Upper | Lower | Substr | Char_length | Abs | Coalesce | Trim | Modulo

type set_quantifier = All | Distinct_agg

type expr =
  | Col of string option * string
  | Lit of Sql_value.t
  | Param of int
  | Binop of binop * expr * expr
  | Not of expr
  | Is_null of expr
  | Is_not_null of expr
  | In_list of expr * expr list
  | In_select of expr * select
  | Exists of select
  | Not_exists of select
  | Case of (expr * expr) list * expr option
  | Func of func * expr list
  | Count_star
  | Agg of agg_kind * set_quantifier * expr
  | Scalar_select of select

and agg_kind = Count | Sum | Min | Max | Avg

and order_item = { sort_expr : expr; descending : bool }

and join_kind = Inner | Left_outer

and table_ref =
  | Table of { table : string; alias : string }
  | Derived of { query : select; alias : string }

and join = { jkind : join_kind; jtable : table_ref; on_condition : expr }

and select = {
  distinct : bool;
  projections : (expr * string) list;
  from : table_ref;
  joins : join list;
  where : expr option;
  group_by : expr list;
  having : expr option;
  order_by : order_item list;
  window : window option;
}

and window = { start : int; count : int option }

type dml =
  | Insert of { table : string; columns : string list; values : expr list }
  | Update of {
      table : string;
      assignments : (string * expr) list;
      where : expr option;
    }
  | Delete of { table : string; where : expr option }

type statement = Query of select | Dml of dml

let select ?(distinct = false) ?(joins = []) ?where ?(group_by = []) ?having
    ?(order_by = []) ?window ~projections from =
  { distinct; projections; from; joins; where; group_by; having; order_by;
    window }

let table ?alias name =
  Table { table = name; alias = Option.value alias ~default:name }

let col alias name = Col (Some alias, name)

let rec expr_params acc = function
  | Param i -> max acc i
  | Col _ | Lit _ | Count_star -> acc
  | Binop (_, a, b) -> expr_params (expr_params acc a) b
  | Not e | Is_null e | Is_not_null e | Agg (_, _, e) -> expr_params acc e
  | In_list (e, es) -> List.fold_left expr_params (expr_params acc e) es
  | In_select (e, s) -> select_params (expr_params acc e) s
  | Exists s | Not_exists s | Scalar_select s -> select_params acc s
  | Case (branches, default) ->
    let acc =
      List.fold_left
        (fun acc (c, v) -> expr_params (expr_params acc c) v)
        acc branches
    in
    Option.fold ~none:acc ~some:(expr_params acc) default
  | Func (_, args) -> List.fold_left expr_params acc args

and select_params acc s =
  let acc = List.fold_left (fun acc (e, _) -> expr_params acc e) acc s.projections in
  let acc = table_ref_params acc s.from in
  let acc =
    List.fold_left
      (fun acc j -> expr_params (table_ref_params acc j.jtable) j.on_condition)
      acc s.joins
  in
  let acc = Option.fold ~none:acc ~some:(expr_params acc) s.where in
  let acc = List.fold_left expr_params acc s.group_by in
  let acc = Option.fold ~none:acc ~some:(expr_params acc) s.having in
  List.fold_left (fun acc o -> expr_params acc o.sort_expr) acc s.order_by

and table_ref_params acc = function
  | Table _ -> acc
  | Derived { query; _ } -> select_params acc query

let param_count = function
  | Query s -> select_params 0 s
  | Dml (Insert { values; _ }) -> List.fold_left expr_params 0 values
  | Dml (Update { assignments; where; _ }) ->
    let acc = List.fold_left (fun acc (_, e) -> expr_params acc e) 0 assignments in
    Option.fold ~none:acc ~some:(expr_params acc) where
  | Dml (Delete { where; _ }) ->
    Option.fold ~none:0 ~some:(expr_params 0) where
