lib/relational/table.mli: Aldsp_xml Sql_value
