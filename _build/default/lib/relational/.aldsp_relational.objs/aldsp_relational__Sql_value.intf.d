lib/relational/sql_value.mli: Aldsp_xml Atomic Format
