lib/relational/database.ml: Hashtbl List Printf String Table Unix
