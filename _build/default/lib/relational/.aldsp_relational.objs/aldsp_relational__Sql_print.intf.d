lib/relational/sql_print.mli: Database Sql_ast
