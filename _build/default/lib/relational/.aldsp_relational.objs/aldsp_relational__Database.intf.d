lib/relational/database.mli: Hashtbl Table
