lib/relational/sql_ast.mli: Sql_value
