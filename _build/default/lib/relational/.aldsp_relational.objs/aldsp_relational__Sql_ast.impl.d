lib/relational/sql_ast.ml: List Option Sql_value
