lib/relational/txn.mli: Database
