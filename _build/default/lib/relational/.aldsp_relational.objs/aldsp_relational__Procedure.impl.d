lib/relational/procedure.ml: Array Database Hashtbl List Printf Sql_value Table
