lib/relational/sql_parser.ml: Buffer List Printf Result Sql_ast Sql_value String
