lib/relational/procedure.mli: Database Sql_value Table
