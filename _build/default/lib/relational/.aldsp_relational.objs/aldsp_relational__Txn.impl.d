lib/relational/txn.ml: Database Hashtbl List Sql_value Table
