lib/relational/sql_print.ml: Buffer Database List Option Printf Sql_ast Sql_value String
