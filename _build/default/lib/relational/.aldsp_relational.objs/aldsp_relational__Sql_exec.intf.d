lib/relational/sql_exec.mli: Database Sql_ast Sql_value
