lib/relational/table.ml: Aldsp_xml Array List Printf Sql_value String
