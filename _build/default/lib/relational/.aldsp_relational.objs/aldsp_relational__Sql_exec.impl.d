lib/relational/sql_exec.ml: Array Database Float List Option Printf Sql_ast Sql_value String Table
