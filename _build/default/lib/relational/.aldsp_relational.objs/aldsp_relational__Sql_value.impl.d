lib/relational/sql_value.ml: Aldsp_xml Atomic Float Format Printf String
