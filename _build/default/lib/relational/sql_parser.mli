(** Parser for SQL text, serving the JDBC/SQL client interface of Figure 2.

    ALDSP exposes a JDBC/SQL entry point alongside the XQuery ones; this
    parser accepts the same subset the generator emits (plus [SELECT *]) so
    that tests and the CLI can submit textual SQL against the in-memory
    backends. Keywords are case-insensitive; identifiers may be
    double-quoted; string literals use single quotes; [?] denotes positional
    parameters. *)

val parse : string -> (Sql_ast.statement, string) result

val parse_select : string -> (Sql_ast.select, string) result

val parse_expr : string -> (Sql_ast.expr, string) result
