(** Transactions and the XA-style two-phase commit used by submit.

    "In the event that all data sources are relational and can participate
    in a two-phase commit (XA) protocol, the entire submit is executed as an
    atomic transaction across the affected sources" (§6). The in-memory
    engine implements this with per-database snapshots: begin snapshots the
    affected tables; prepare validates; commit discards the snapshot;
    rollback restores it. The coordinator drives the classic two phases and
    rolls everything back if any participant fails to prepare. *)

type txn

val begin_txn : Database.t -> txn
(** Snapshots every table of the database. *)

val commit : txn -> unit
val rollback : txn -> unit

(** Two-phase-commit outcome for a multi-source unit of work. *)
type outcome = Committed | Rolled_back of string

val with_transaction :
  Database.t -> (unit -> ('a, string) result) -> ('a, string) result
(** Single-source convenience: commits on [Ok], rolls back on [Error]. *)

val two_phase_commit :
  participants:Database.t list ->
  work:(unit -> (unit, string) result) ->
  outcome
(** Runs [work] with all participants enlisted; on error every participant
    is rolled back, so partial updates never become visible (§6). *)
