type result_kind =
  | Returns_rows of (string * Table.sql_type) list
  | Returns_scalar of Table.sql_type

type t = {
  proc_name : string;
  proc_params : (string * Table.sql_type) list;
  result : result_kind;
  body : Database.t -> Sql_value.t list -> (Sql_value.t array list, string) result;
}

(* Procedures live beside the databases that host them, keyed by
   (database, procedure) name — a process-global catalog, like a driver
   registry. *)
let catalog : (string * string, t) Hashtbl.t = Hashtbl.create 16

let register db proc =
  Hashtbl.replace catalog (db.Database.db_name, proc.proc_name) proc

let find db name = Hashtbl.find_opt catalog (db.Database.db_name, name)

let check_result proc rows =
  match proc.result with
  | Returns_scalar ty -> (
    match rows with
    | [ [| v |] ] when Table.type_check ty v -> Ok rows
    | _ ->
      Error
        (Printf.sprintf "procedure %s: expected a single %s value"
           proc.proc_name
           (match ty with
           | Table.T_int -> "integer"
           | Table.T_varchar -> "varchar"
           | Table.T_decimal -> "decimal"
           | Table.T_boolean -> "boolean"
           | Table.T_timestamp -> "timestamp")))
  | Returns_rows columns ->
    let width = List.length columns in
    let ok =
      List.for_all
        (fun row ->
          Array.length row = width
          && List.for_all2 Table.type_check (List.map snd columns)
               (Array.to_list row))
        rows
    in
    if ok then Ok rows
    else Error (Printf.sprintf "procedure %s: result shape mismatch" proc.proc_name)

let call db name args =
  match find db name with
  | None ->
    Error
      (Printf.sprintf "database %s: no stored procedure %s"
         db.Database.db_name name)
  | Some proc ->
    if List.length args <> List.length proc.proc_params then
      Error
        (Printf.sprintf "procedure %s expects %d arguments, got %d" name
           (List.length proc.proc_params)
           (List.length args))
    else if
      not
        (List.for_all2
           (fun (_, ty) v -> Table.type_check ty v)
           proc.proc_params args)
    then Error (Printf.sprintf "procedure %s: argument type mismatch" name)
    else begin
      match proc.body db args with
      | Error _ as e ->
        Database.record_statement db ~params:(List.length args) ~rows:0;
        e
      | Ok rows ->
        Database.record_statement db ~params:(List.length args)
          ~rows:(List.length rows);
        check_result proc rows
    end
