(** Abstract syntax of the SQL subset ALDSP generates.

    This AST is the contract between the XQuery compiler's SQL-generation
    phase (§4.4) and the backends: the compiler emits it, the dialect
    printers ({!Sql_print}) render it in vendor syntax, and the in-memory
    engine ({!Sql_exec}) executes it directly. It covers exactly the
    pushable repertoire of the paper: select-project-join with inner and
    left outer joins, CASE, scalar functions, aggregates with GROUP BY,
    DISTINCT, EXISTS/IN (semi/anti-semi joins), ORDER BY, row-number
    windows (for [fn:subsequence]) and [?] parameters. *)

type binop =
  | Eq | Neq | Lt | Le | Gt | Ge
  | Add | Sub | Mul | Div
  | And | Or
  | Concat
  | Like

type func = Upper | Lower | Substr | Char_length | Abs | Coalesce | Trim | Modulo

type set_quantifier = All | Distinct_agg

type expr =
  | Col of string option * string  (** [alias.column] or bare [column]. *)
  | Lit of Sql_value.t
  | Param of int  (** 1-based positional [?] parameter. *)
  | Binop of binop * expr * expr
  | Not of expr
  | Is_null of expr
  | Is_not_null of expr
  | In_list of expr * expr list
  | In_select of expr * select
  | Exists of select
  | Not_exists of select
  | Case of (expr * expr) list * expr option
  | Func of func * expr list
  | Count_star
  | Agg of agg_kind * set_quantifier * expr
  | Scalar_select of select

and agg_kind = Count | Sum | Min | Max | Avg

and order_item = { sort_expr : expr; descending : bool }

and join_kind = Inner | Left_outer

and table_ref =
  | Table of { table : string; alias : string }
  | Derived of { query : select; alias : string }

and join = { jkind : join_kind; jtable : table_ref; on_condition : expr }

and select = {
  distinct : bool;
  projections : (expr * string) list;  (** [expr AS alias]. *)
  from : table_ref;
  joins : join list;
  where : expr option;
  group_by : expr list;
  having : expr option;
  order_by : order_item list;
  window : window option;
}

(** A row window over the ordered result: 1-based [start], keep [count]
    rows ([None] = to the end). Translates to ROWNUM / ROW_NUMBER / FETCH
    FIRST per dialect. *)
and window = { start : int; count : int option }

type dml =
  | Insert of { table : string; columns : string list; values : expr list }
  | Update of {
      table : string;
      assignments : (string * expr) list;
      where : expr option;
    }
  | Delete of { table : string; where : expr option }

type statement = Query of select | Dml of dml

val select :
  ?distinct:bool ->
  ?joins:join list ->
  ?where:expr ->
  ?group_by:expr list ->
  ?having:expr ->
  ?order_by:order_item list ->
  ?window:window ->
  projections:(expr * string) list ->
  table_ref ->
  select

val table : ?alias:string -> string -> table_ref
val col : string -> string -> expr
val param_count : statement -> int
(** Highest parameter index used, i.e. how many bindings execution needs. *)
