open Sql_ast

type token =
  | Ident of string
  | Quoted of string
  | Number of string
  | Str_lit of string
  | Punct of string
  | Question
  | Eof

exception Error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let i = ref 0 in
  let push t = tokens := t :: !tokens in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '?' then begin
      push Question;
      incr i
    end
    else if c = '\'' then begin
      (* string literal with '' escaping *)
      let buf = Buffer.create 16 in
      incr i;
      let closed = ref false in
      while not !closed do
        if !i >= n then fail "unterminated string literal"
        else if input.[!i] = '\'' then
          if !i + 1 < n && input.[!i + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else begin
          Buffer.add_char buf input.[!i];
          incr i
        end
      done;
      push (Str_lit (Buffer.contents buf))
    end
    else if c = '"' then begin
      let j = try String.index_from input (!i + 1) '"' with Not_found -> fail "unterminated quoted identifier" in
      push (Quoted (String.sub input (!i + 1) (j - !i - 1)));
      i := j + 1
    end
    else if (c >= '0' && c <= '9') || (c = '.' && !i + 1 < n && input.[!i + 1] >= '0' && input.[!i + 1] <= '9') then begin
      let start = !i in
      while
        !i < n
        && ((input.[!i] >= '0' && input.[!i] <= '9') || input.[!i] = '.')
      do
        incr i
      done;
      push (Number (String.sub input start (!i - start)))
    end
    else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' then begin
      let start = !i in
      while
        !i < n
        && ((input.[!i] >= 'a' && input.[!i] <= 'z')
           || (input.[!i] >= 'A' && input.[!i] <= 'Z')
           || (input.[!i] >= '0' && input.[!i] <= '9')
           || input.[!i] = '_')
      do
        incr i
      done;
      push (Ident (String.sub input start (!i - start)))
    end
    else if !i + 1 < n && (let two = String.sub input !i 2 in two = "<>" || two = "<=" || two = ">=" || two = "||" || two = "!=") then begin
      push (Punct (String.sub input !i 2));
      i := !i + 2
    end
    else begin
      push (Punct (String.make 1 c));
      incr i
    end
  done;
  push Eof;
  List.rev !tokens

type parser_state = { mutable toks : token list }

let peek st = match st.toks with [] -> Eof | t :: _ -> t

let next st =
  match st.toks with
  | [] -> Eof
  | t :: rest ->
    st.toks <- rest;
    t

let keyword_of = function
  | Ident s -> Some (String.uppercase_ascii s)
  | _ -> None

let at_keyword st kw = keyword_of (peek st) = Some kw

let eat_keyword st kw =
  if at_keyword st kw then begin
    ignore (next st);
    true
  end
  else false

let expect_keyword st kw =
  if not (eat_keyword st kw) then fail "expected %s" kw

let expect_punct st p =
  match next st with
  | Punct q when q = p -> ()
  | t ->
    fail "expected %s, found %s" p
      (match t with
      | Ident s -> s
      | Quoted s -> "\"" ^ s ^ "\""
      | Number s -> s
      | Str_lit s -> "'" ^ s ^ "'"
      | Punct s -> s
      | Question -> "?"
      | Eof -> "<eof>")

let ident st =
  match next st with
  | Ident s -> s
  | Quoted s -> s
  | _ -> fail "expected an identifier"

let is_reserved s =
  match String.uppercase_ascii s with
  | "SELECT" | "FROM" | "WHERE" | "GROUP" | "HAVING" | "ORDER" | "BY" | "AS"
  | "JOIN" | "LEFT" | "OUTER" | "INNER" | "ON" | "AND" | "OR" | "NOT" | "IN"
  | "EXISTS" | "NULL" | "TRUE" | "FALSE" | "CASE" | "WHEN" | "THEN" | "ELSE"
  | "END" | "IS" | "LIKE" | "DISTINCT" | "INSERT" | "INTO" | "VALUES"
  | "UPDATE" | "SET" | "DELETE" | "DESC" | "ASC" | "COUNT" | "SUM" | "MIN"
  | "MAX" | "AVG" ->
    true
  | _ -> false

let agg_of_name = function
  | "COUNT" -> Some Count
  | "SUM" -> Some Sum
  | "MIN" -> Some Min
  | "MAX" -> Some Max
  | "AVG" -> Some Avg
  | _ -> None

let func_of_name = function
  | "UPPER" -> Some Upper
  | "LOWER" -> Some Lower
  | "SUBSTR" | "SUBSTRING" -> Some Substr
  | "CHAR_LENGTH" | "LENGTH" | "LEN" -> Some Char_length
  | "ABS" -> Some Abs
  | "COALESCE" -> Some Coalesce
  | "TRIM" -> Some Trim
  | "MOD" -> Some Modulo
  | _ -> None

let param_counter = ref 0

let rec parse_or st =
  let left = parse_and st in
  if eat_keyword st "OR" then Binop (Or, left, parse_or st) else left

and parse_and st =
  let left = parse_not st in
  if eat_keyword st "AND" then Binop (And, left, parse_and st) else left

and parse_not st =
  if eat_keyword st "NOT" then Not (parse_not st) else parse_comparison st

and parse_comparison st =
  let left = parse_additive st in
  match peek st with
  | Punct ("=" | "<" | ">" | "<=" | ">=" | "<>" | "!=") -> (
    match next st with
    | Punct "=" -> Binop (Eq, left, parse_additive st)
    | Punct "<" -> Binop (Lt, left, parse_additive st)
    | Punct ">" -> Binop (Gt, left, parse_additive st)
    | Punct "<=" -> Binop (Le, left, parse_additive st)
    | Punct ">=" -> Binop (Ge, left, parse_additive st)
    | Punct ("<>" | "!=") -> Binop (Neq, left, parse_additive st)
    | _ -> assert false)
  | Ident s when String.uppercase_ascii s = "IS" ->
    ignore (next st);
    if eat_keyword st "NOT" then begin
      expect_keyword st "NULL";
      Is_not_null left
    end
    else begin
      expect_keyword st "NULL";
      Is_null left
    end
  | Ident s when String.uppercase_ascii s = "LIKE" ->
    ignore (next st);
    Binop (Like, left, parse_additive st)
  | Ident s when String.uppercase_ascii s = "NOT" -> (
    ignore (next st);
    if eat_keyword st "IN" then parse_in ~negated:true st left
    else if eat_keyword st "LIKE" then
      Not (Binop (Like, left, parse_additive st))
    else fail "expected IN or LIKE after NOT")
  | Ident s when String.uppercase_ascii s = "IN" ->
    ignore (next st);
    parse_in ~negated:false st left
  | _ -> left

and parse_in ~negated st left =
  expect_punct st "(";
  let result =
    if at_keyword st "SELECT" then begin
      let sub = parse_select_body st in
      In_select (left, sub)
    end
    else begin
      let rec items acc =
        let e = parse_or st in
        if peek st = Punct "," then begin
          ignore (next st);
          items (e :: acc)
        end
        else List.rev (e :: acc)
      in
      In_list (left, items [])
    end
  in
  expect_punct st ")";
  if negated then Not result else result

and parse_additive st =
  let rec go left =
    match peek st with
    | Punct "+" ->
      ignore (next st);
      go (Binop (Add, left, parse_multiplicative st))
    | Punct "-" ->
      ignore (next st);
      go (Binop (Sub, left, parse_multiplicative st))
    | Punct "||" ->
      ignore (next st);
      go (Binop (Concat, left, parse_multiplicative st))
    | _ -> left
  in
  go (parse_multiplicative st)

and parse_multiplicative st =
  let rec go left =
    match peek st with
    | Punct "*" ->
      ignore (next st);
      go (Binop (Mul, left, parse_primary st))
    | Punct "/" ->
      ignore (next st);
      go (Binop (Div, left, parse_primary st))
    | _ -> left
  in
  go (parse_primary st)

and parse_primary st =
  match peek st with
  | Question ->
    ignore (next st);
    incr param_counter;
    Param !param_counter
  | Number s ->
    ignore (next st);
    if String.contains s '.' then Lit (Sql_value.Float (float_of_string s))
    else Lit (Sql_value.Int (int_of_string s))
  | Str_lit s ->
    ignore (next st);
    Lit (Sql_value.Str s)
  | Punct "(" -> (
    ignore (next st);
    if at_keyword st "SELECT" then begin
      let sub = parse_select_body st in
      expect_punct st ")";
      Scalar_select sub
    end
    else
      let e = parse_or st in
      expect_punct st ")";
      e)
  | Punct "-" ->
    ignore (next st);
    Binop (Sub, Lit (Sql_value.Int 0), parse_primary st)
  | Punct "*" ->
    ignore (next st);
    Col (None, "*")
  | Quoted q -> (
    ignore (next st);
    match peek st with
    | Punct "." ->
      ignore (next st);
      Col (Some q, ident st)
    | _ -> Col (None, q))
  | Ident s -> (
    let upper = String.uppercase_ascii s in
    match upper with
    | "NULL" ->
      ignore (next st);
      Lit Sql_value.Null
    | "TRUE" ->
      ignore (next st);
      Lit (Sql_value.Bool true)
    | "FALSE" ->
      ignore (next st);
      Lit (Sql_value.Bool false)
    | "CASE" ->
      ignore (next st);
      let rec branches acc =
        if eat_keyword st "WHEN" then begin
          let cond = parse_or st in
          expect_keyword st "THEN";
          let v = parse_or st in
          branches ((cond, v) :: acc)
        end
        else List.rev acc
      in
      let bs = branches [] in
      let default = if eat_keyword st "ELSE" then Some (parse_or st) else None in
      expect_keyword st "END";
      Case (bs, default)
    | "EXISTS" ->
      ignore (next st);
      expect_punct st "(";
      let sub = parse_select_body st in
      expect_punct st ")";
      Exists sub
    | _ -> (
      ignore (next st);
      match peek st with
      | Punct "(" -> (
        ignore (next st);
        match agg_of_name upper with
        | Some kind ->
          if peek st = Punct "*" then begin
            ignore (next st);
            expect_punct st ")";
            if kind = Count then Count_star else fail "%s(*) is invalid" upper
          end
          else begin
            let quantifier =
              if eat_keyword st "DISTINCT" then Distinct_agg else All
            in
            let e = parse_or st in
            expect_punct st ")";
            Agg (kind, quantifier, e)
          end
        | None -> (
          match func_of_name upper with
          | Some f ->
            let rec args acc =
              if peek st = Punct ")" then List.rev acc
              else
                let e = parse_or st in
                if peek st = Punct "," then begin
                  ignore (next st);
                  args (e :: acc)
                end
                else List.rev (e :: acc)
            in
            let a = args [] in
            expect_punct st ")";
            Func (f, a)
          | None -> fail "unknown SQL function %s" s))
      | Punct "." ->
        ignore (next st);
        if peek st = Punct "*" then begin
          ignore (next st);
          Col (None, "*")
        end
        else Col (Some s, ident st)
      | _ -> Col (None, s)))
  | t ->
    fail "unexpected token %s"
      (match t with
      | Punct p -> p
      | Eof -> "<eof>"
      | _ -> "?")

and parse_table_ref st =
  if peek st = Punct "(" then begin
    ignore (next st);
    let sub = parse_select_body st in
    expect_punct st ")";
    let alias = ident st in
    Derived { query = sub; alias }
  end
  else
    let name = ident st in
    let alias =
      match peek st with
      | Ident a when not (is_reserved a) -> (
        ignore (next st);
        a)
      | Quoted a ->
        ignore (next st);
        a
      | _ -> name
    in
    Table { table = name; alias }

and parse_select_body st =
  expect_keyword st "SELECT";
  let distinct = eat_keyword st "DISTINCT" in
  let rec projections acc =
    let e = parse_or st in
    let alias =
      if eat_keyword st "AS" then ident st
      else
        match peek st with
        | Ident a when not (is_reserved a) ->
          ignore (next st);
          a
        | _ -> (
          match e with
          | Col (_, c) -> c
          | _ -> Printf.sprintf "c%d" (List.length acc + 1))
    in
    let acc = (e, alias) :: acc in
    if peek st = Punct "," then begin
      ignore (next st);
      projections acc
    end
    else List.rev acc
  in
  let projections = projections [] in
  expect_keyword st "FROM";
  let from = parse_table_ref st in
  let rec joins acc =
    if eat_keyword st "JOIN" || eat_keyword st "INNER" then begin
      if at_keyword st "JOIN" then expect_keyword st "JOIN";
      let t = parse_table_ref st in
      expect_keyword st "ON";
      let on_condition = parse_or st in
      joins ({ jkind = Inner; jtable = t; on_condition } :: acc)
    end
    else if at_keyword st "LEFT" then begin
      expect_keyword st "LEFT";
      ignore (eat_keyword st "OUTER");
      expect_keyword st "JOIN";
      let t = parse_table_ref st in
      expect_keyword st "ON";
      let on_condition = parse_or st in
      joins ({ jkind = Left_outer; jtable = t; on_condition } :: acc)
    end
    else List.rev acc
  in
  let joins = joins [] in
  let where = if eat_keyword st "WHERE" then Some (parse_or st) else None in
  let group_by =
    if eat_keyword st "GROUP" then begin
      expect_keyword st "BY";
      let rec go acc =
        let e = parse_or st in
        if peek st = Punct "," then begin
          ignore (next st);
          go (e :: acc)
        end
        else List.rev (e :: acc)
      in
      go []
    end
    else []
  in
  let having = if eat_keyword st "HAVING" then Some (parse_or st) else None in
  let order_by =
    if eat_keyword st "ORDER" then begin
      expect_keyword st "BY";
      let rec go acc =
        let e = parse_or st in
        let descending =
          if eat_keyword st "DESC" then true
          else begin
            ignore (eat_keyword st "ASC");
            false
          end
        in
        let acc = { sort_expr = e; descending } :: acc in
        if peek st = Punct "," then begin
          ignore (next st);
          go acc
        end
        else List.rev acc
      in
      go []
    end
    else []
  in
  { distinct; projections; from; joins; where; group_by; having; order_by;
    window = None }

let parse_dml st =
  if eat_keyword st "INSERT" then begin
    expect_keyword st "INTO";
    let table = ident st in
    expect_punct st "(";
    let rec cols acc =
      let c = ident st in
      if peek st = Punct "," then begin
        ignore (next st);
        cols (c :: acc)
      end
      else List.rev (c :: acc)
    in
    let columns = cols [] in
    expect_punct st ")";
    expect_keyword st "VALUES";
    expect_punct st "(";
    let rec values acc =
      let e = parse_or st in
      if peek st = Punct "," then begin
        ignore (next st);
        values (e :: acc)
      end
      else List.rev (e :: acc)
    in
    let values = values [] in
    expect_punct st ")";
    Insert { table; columns; values }
  end
  else if eat_keyword st "UPDATE" then begin
    let table = ident st in
    expect_keyword st "SET";
    let rec assigns acc =
      let c = ident st in
      expect_punct st "=";
      let e = parse_or st in
      if peek st = Punct "," then begin
        ignore (next st);
        assigns ((c, e) :: acc)
      end
      else List.rev ((c, e) :: acc)
    in
    let assignments = assigns [] in
    let where = if eat_keyword st "WHERE" then Some (parse_or st) else None in
    Update { table; assignments; where }
  end
  else if eat_keyword st "DELETE" then begin
    expect_keyword st "FROM";
    let table = ident st in
    let where = if eat_keyword st "WHERE" then Some (parse_or st) else None in
    Delete { table; where }
  end
  else fail "expected INSERT, UPDATE or DELETE"

let run_parser input f =
  param_counter := 0;
  let st = { toks = tokenize input } in
  try
    let result = f st in
    (match peek st with
    | Eof -> ()
    | Punct ";" -> ignore (next st)
    | _ -> fail "trailing tokens after statement");
    Ok result
  with Error msg -> Result.Error ("SQL parse error: " ^ msg)

let parse input =
  run_parser input (fun st ->
      if at_keyword st "SELECT" then Query (parse_select_body st)
      else Dml (parse_dml st))

let parse_select input = run_parser input parse_select_body

let parse_expr input = run_parser input parse_or
