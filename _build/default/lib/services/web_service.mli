(** Simulated web services — the functional-source substrate.

    Functional sources are sources ALDSP "can only interact with by calling
    specific functions with parameters" (§2.2): web services, Java
    functions, stored procedures. The paper's experiments around slow and
    unavailable sources (§5.4-5.6) depend only on call latency and failure
    behaviour, so this simulator provides WSDL-like operation metadata,
    a pluggable implementation per operation, configurable latency, and
    failure injection. Responses are validated against the declared result
    schema to produce typed token content, as ALDSP does for document-style
    services (§5.3). *)

open Aldsp_xml

type style = Document_literal | Rpc_encoded

type operation = {
  op_name : string;
  input_schema : Schema.element_decl;
  output_schema : Schema.element_decl;
  implementation : Node.t -> (Node.t, string) result;
}

type t = {
  service_name : string;
  wsdl_url : string;  (** Captured in the physical data service's pragma. *)
  style : style;
  operations : operation list;
  mutable latency : float;  (** Seconds of simulated call latency. *)
  mutable fail_next : int;  (** Fail this many upcoming calls. *)
  mutable unavailable : bool;  (** Hard-down: every call fails. *)
  stats : stats;
}

and stats = { mutable calls : int; mutable failures : int }

val create :
  ?style:style ->
  ?latency:float ->
  wsdl_url:string ->
  string ->
  operation list ->
  t

val operation :
  name:string ->
  input:Schema.element_decl ->
  output:Schema.element_decl ->
  (Node.t -> (Node.t, string) result) ->
  operation

val invoke : t -> string -> Node.t -> (Node.t, string) result
(** [invoke service op input] runs the 5-step source-invocation protocol of
    §5.3: validate the input against the operation's input schema, simulate
    the wire latency, run the implementation (honouring failure injection),
    validate the response against the output schema (producing typed
    content), and account the call. *)

val find_operation : t -> string -> operation option

val inject_failures : t -> int -> unit
(** The next [n] calls raise a simulated transport error. *)

val set_unavailable : t -> bool -> unit
val reset_stats : t -> unit
