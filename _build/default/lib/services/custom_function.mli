(** Registry of externally provided ("Java") functions.

    ALDSP allows externally provided Java functions to be registered for use
    in queries (§4.5) — e.g. the [int2date] conversion of the inverse-
    function example. Here they are OCaml functions over atomic values,
    registered by name with a typed signature; the XQuery compiler models
    them as external functions exactly like the paper's, including their
    role as black boxes for pushdown until an inverse is declared. *)

open Aldsp_xml

type t = {
  fn_name : Qname.t;
  param_types : Atomic.atomic_type list;
  return_type : Atomic.atomic_type;
  body : Atomic.t list -> (Atomic.t, string) result;
}

type registry

val create_registry : unit -> registry

val register :
  registry ->
  name:Qname.t ->
  params:Atomic.atomic_type list ->
  returns:Atomic.atomic_type ->
  (Atomic.t list -> (Atomic.t, string) result) ->
  unit

val find : registry -> Qname.t -> t option

val call : registry -> Qname.t -> Atomic.t list -> (Atomic.t, string) result
(** Arity- and (loosely) type-checked invocation. *)

val int2date : Qname.t
(** Name under which {!install_date_conversions} registers the
    seconds-since-epoch → [xs:dateTime] conversion of §4.5. *)

val date2int : Qname.t
(** Its inverse. *)

val install_date_conversions : registry -> unit
(** Registers the [int2date]/[date2int] pair from the paper's running
    inverse-function example. *)
