open Aldsp_xml

let parse ?(separator = ',') input =
  let n = String.length input in
  let rows = ref [] in
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let field_started = ref false in
  let push_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf;
    field_started := false
  in
  let push_row () =
    (* ignore completely empty lines *)
    if !fields <> [] || Buffer.length buf > 0 || !field_started then begin
      push_field ();
      rows := List.rev !fields :: !rows;
      fields := []
    end
  in
  let rec plain i =
    if i >= n then begin
      push_row ();
      Ok ()
    end
    else
      match input.[i] with
      | c when c = separator ->
        push_field ();
        plain (i + 1)
      | '\r' when i + 1 < n && input.[i + 1] = '\n' ->
        push_row ();
        plain (i + 2)
      | '\n' ->
        push_row ();
        plain (i + 1)
      | '"' when Buffer.length buf = 0 && not !field_started ->
        field_started := true;
        quoted (i + 1)
      | c ->
        field_started := true;
        Buffer.add_char buf c;
        plain (i + 1)
  and quoted i =
    if i >= n then Error "unterminated quoted CSV field"
    else
      match input.[i] with
      | '"' when i + 1 < n && input.[i + 1] = '"' ->
        Buffer.add_char buf '"';
        quoted (i + 2)
      | '"' -> plain (i + 1)
      | c ->
        Buffer.add_char buf c;
        quoted (i + 1)
  in
  match plain 0 with
  | Ok () -> Ok (List.rev !rows)
  | Error _ as e -> e

let column_names (schema : Schema.element_decl) =
  match schema.Schema.content with
  | Schema.Complex particles ->
    Ok (List.map (fun p -> p.Schema.decl.Schema.elem_name) particles)
  | Schema.Atomic_content _ | Schema.Empty_content ->
    Error "CSV schema must declare complex content naming the columns"

let rows_to_nodes ~schema ?(header = true) rows =
  let ( let* ) = Result.bind in
  let* columns = column_names schema in
  let* data_rows =
    match (header, rows) with
    | false, rows -> Ok rows
    | true, [] -> Error "CSV input has no header row"
    | true, head :: rest ->
      let expected = List.map (fun (q : Qname.t) -> q.Qname.local) columns in
      if List.map String.trim head = expected then Ok rest
      else
        Error
          (Printf.sprintf "CSV header mismatch: expected %s, found %s"
             (String.concat "," expected)
             (String.concat "," head))
  in
  let row_to_node index fields =
    if List.length fields > List.length columns then
      Error
        (Printf.sprintf "CSV row %d has %d fields, schema declares %d columns"
           (index + 1) (List.length fields) (List.length columns))
    else begin
      let children =
        List.concat
          (List.mapi
             (fun i name ->
               match List.nth_opt fields i with
               | Some field when String.trim field <> "" ->
                 (* raw text; validation types it below *)
                 [ Node.element name [ Node.text field ] ]
               | Some _ | None -> [])  (* empty field = missing element *)
             columns)
      in
      let raw = Node.element schema.Schema.elem_name children in
      Result.map_error
        (fun msg -> Printf.sprintf "CSV row %d: %s" (index + 1) msg)
        (Schema.validate schema raw)
    end
  in
  let* nodes =
    List.fold_left
      (fun acc (i, row) ->
        let* acc = acc in
        let* node = row_to_node i row in
        Ok (node :: acc))
      (Ok [])
      (List.mapi (fun i r -> (i, r)) data_rows)
  in
  Ok (List.rev nodes)

let load ~schema ?separator ?header input =
  Result.bind (parse ?separator input) (rows_to_nodes ~schema ?header)
