(** Delimited (CSV) file sources — the other non-queryable source kind of
    §2.2 (next to XML files).

    "For files, XML schemas are required at file registration time, and
    are used to validate the data for typed processing" (§5.3). A CSV file
    is parsed into row elements named after the registered schema, one
    child element per column (empty fields become missing elements, like
    relational NULLs), then validated so content enters the system
    typed. *)

open Aldsp_xml

val parse :
  ?separator:char -> string -> (string list list, string) result
(** Parses CSV text: quoted fields with [""] escaping, embedded
    separators/newlines inside quotes, CRLF tolerance. Returns rows of
    fields. *)

val rows_to_nodes :
  schema:Schema.element_decl ->
  ?header:bool ->
  string list list ->
  (Node.t list, string) result
(** Converts parsed rows into validated row elements. The schema must
    declare an element with complex content whose particles name the
    columns in order. With [header] (default true) the first row names the
    columns and is checked against the schema's particle order. Empty
    fields become absent elements — the schema decides whether that is
    allowed. *)

val load :
  schema:Schema.element_decl ->
  ?separator:char ->
  ?header:bool ->
  string ->
  (Node.t list, string) result
(** [parse] + [rows_to_nodes] on CSV text. *)
