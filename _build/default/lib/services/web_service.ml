open Aldsp_xml

type style = Document_literal | Rpc_encoded

type operation = {
  op_name : string;
  input_schema : Schema.element_decl;
  output_schema : Schema.element_decl;
  implementation : Node.t -> (Node.t, string) result;
}

type t = {
  service_name : string;
  wsdl_url : string;
  style : style;
  operations : operation list;
  mutable latency : float;
  mutable fail_next : int;
  mutable unavailable : bool;
  stats : stats;
}

and stats = { mutable calls : int; mutable failures : int }

let create ?(style = Document_literal) ?(latency = 0.) ~wsdl_url service_name
    operations =
  { service_name; wsdl_url; style; operations; latency; fail_next = 0;
    unavailable = false; stats = { calls = 0; failures = 0 } }

let operation ~name ~input ~output implementation =
  { op_name = name; input_schema = input; output_schema = output;
    implementation }

let find_operation t name =
  List.find_opt (fun op -> String.equal op.op_name name) t.operations

let invoke t op_name input =
  t.stats.calls <- t.stats.calls + 1;
  let fail msg =
    t.stats.failures <- t.stats.failures + 1;
    Error msg
  in
  match find_operation t op_name with
  | None ->
    fail (Printf.sprintf "service %s: no operation %s" t.service_name op_name)
  | Some op -> (
    match Schema.validate op.input_schema input with
    | Error msg ->
      fail (Printf.sprintf "service %s.%s: invalid request: %s" t.service_name op_name msg)
    | Ok typed_input ->
      if t.latency > 0. then Unix.sleepf t.latency;
      if t.unavailable then
        fail (Printf.sprintf "service %s is unavailable" t.service_name)
      else if t.fail_next > 0 then begin
        t.fail_next <- t.fail_next - 1;
        fail (Printf.sprintf "service %s.%s: simulated transport failure" t.service_name op_name)
      end
      else
        match op.implementation typed_input with
        | Error msg -> fail (Printf.sprintf "service %s.%s: %s" t.service_name op_name msg)
        | Ok response -> (
          match Schema.validate op.output_schema response with
          | Ok typed -> Ok typed
          | Error msg ->
            fail
              (Printf.sprintf "service %s.%s: response failed validation: %s"
                 t.service_name op_name msg)))

let inject_failures t n = t.fail_next <- n

let set_unavailable t flag = t.unavailable <- flag

let reset_stats t =
  t.stats.calls <- 0;
  t.stats.failures <- 0
