lib/services/web_service.ml: Aldsp_xml List Node Printf Schema String Unix
