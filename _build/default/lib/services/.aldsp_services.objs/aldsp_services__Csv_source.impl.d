lib/services/csv_source.ml: Aldsp_xml Buffer List Node Printf Qname Result Schema String
