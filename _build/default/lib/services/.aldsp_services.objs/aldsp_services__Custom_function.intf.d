lib/services/custom_function.mli: Aldsp_xml Atomic Qname
