lib/services/custom_function.ml: Aldsp_xml Atomic Hashtbl List Printf Qname Result
