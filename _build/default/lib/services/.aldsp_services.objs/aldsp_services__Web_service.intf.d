lib/services/web_service.mli: Aldsp_xml Node Schema
