lib/services/csv_source.mli: Aldsp_xml Node Schema
