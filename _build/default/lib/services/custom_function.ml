open Aldsp_xml

type t = {
  fn_name : Qname.t;
  param_types : Atomic.atomic_type list;
  return_type : Atomic.atomic_type;
  body : Atomic.t list -> (Atomic.t, string) result;
}

type registry = (Qname.t, t) Hashtbl.t

let create_registry () : registry = Hashtbl.create 16

let register registry ~name ~params ~returns body =
  Hashtbl.replace registry name
    { fn_name = name; param_types = params; return_type = returns; body }

let find registry name = Hashtbl.find_opt registry name

let call registry name args =
  match find registry name with
  | None ->
    Error (Printf.sprintf "no external function %s" (Qname.to_string name))
  | Some fn ->
    if List.length args <> List.length fn.param_types then
      Error
        (Printf.sprintf "external function %s expects %d arguments, got %d"
           (Qname.to_string name)
           (List.length fn.param_types)
           (List.length args))
    else
      let coerced =
        List.map2
          (fun expected arg ->
            if Atomic.subtype (Atomic.type_of arg) expected then Ok arg
            else Atomic.cast expected arg)
          fn.param_types args
      in
      let rec collect acc = function
        | [] -> Ok (List.rev acc)
        | Ok v :: rest -> collect (v :: acc) rest
        | (Error _ as e) :: _ -> e
      in
      Result.bind (collect [] coerced) fn.body

let ext_uri = "urn:external"

let int2date = Qname.make ~uri:ext_uri "int2date"
let date2int = Qname.make ~uri:ext_uri "date2int"

let install_date_conversions registry =
  register registry ~name:int2date ~params:[ Atomic.T_integer ]
    ~returns:Atomic.T_date_time (function
    | [ Atomic.Integer secs ] -> Ok (Atomic.Date_time (float_of_int secs))
    | _ -> Error "int2date: expected one integer");
  register registry ~name:date2int ~params:[ Atomic.T_date_time ]
    ~returns:Atomic.T_integer (function
    | [ Atomic.Date_time t ] -> Ok (Atomic.Integer (int_of_float t))
    | _ -> Error "date2int: expected one dateTime")
