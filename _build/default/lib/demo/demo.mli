(** The paper's demo enterprise, used by the examples, tests and benches.

    Reproduces the environment of the running example (Figure 1/3): a
    customer database (CUSTOMER, ORDER_T tables with a foreign key), a
    separate credit-card database, a credit-rating web service, and the
    [int2date]/[date2int] external functions with their inverse
    registration. Sizes and latencies are parameters so benches can sweep
    them. *)

open Aldsp_relational
open Aldsp_services

type t = {
  customer_db : Database.t;
  card_db : Database.t;
  rating_service : Web_service.t;
  registry : Aldsp_core.Metadata.t;
  server : Aldsp_core.Server.t;
}

val create :
  ?customers:int ->
  ?orders_per_customer:int ->
  ?cards_per_customer:int ->
  ?db_latency:float ->
  ?service_latency:float ->
  ?function_cache:Aldsp_core.Function_cache.t ->
  ?security:Aldsp_core.Security.t ->
  ?audit:Aldsp_core.Audit.t ->
  ?optimizer_options:Aldsp_core.Optimizer.options ->
  unit ->
  t
(** Builds and populates the databases ([customers] rows, [CUST0001]-style
    ids, deterministic last names with duplicates so grouping is
    interesting), registers the service and the external conversions, and
    stands up a server with the Figure 3 [getProfile] data service
    registered. *)

val profile_data_service_source : string
(** The XQuery source of the Figure 3 logical data service (getProfile,
    getProfileByID, plus a thin read view), as registered by {!create}. *)

val reset_stats : t -> unit
(** Clears all database and service counters. *)
