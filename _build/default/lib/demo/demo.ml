open Aldsp_xml
open Aldsp_relational
open Aldsp_services
open Aldsp_core
module V = Sql_value

type t = {
  customer_db : Database.t;
  card_db : Database.t;
  rating_service : Web_service.t;
  registry : Metadata.t;
  server : Server.t;
}

let last_names =
  [| "Jones"; "Smith"; "Chen"; "Garcia"; "Okafor"; "Patel"; "Kim"; "Novak" |]

let first_names = [| "Ann"; "Bob"; "Carla"; "Dev"; "Elena"; "Farid" |]

let profile_data_service_source =
  {|declare namespace ext = "urn:external";
(::pragma function kind="read" ::)
declare function getProfile() as element(PROFILE)* {
  for $CUSTOMER in CUSTOMER()
  return
    <PROFILE>
      <CID>{fn:data($CUSTOMER/CID)}</CID>
      <LAST_NAME>{fn:data($CUSTOMER/LAST_NAME)}</LAST_NAME>
      <FIRST_NAME?>{fn:data($CUSTOMER/FIRST_NAME)}</FIRST_NAME>
      <SINCE>{ext:int2date($CUSTOMER/SINCE)}</SINCE>
      <ORDERS>{ getORDER_T($CUSTOMER) }</ORDERS>
      <CREDIT_CARDS>{ CREDIT_CARD()[CID eq $CUSTOMER/CID] }</CREDIT_CARDS>
      <RATING>{
        fn:data(getRating(
          <getRating>
            <lName>{data($CUSTOMER/LAST_NAME)}</lName>
            <ssn>{data($CUSTOMER/SSN)}</ssn>
          </getRating>)/getRatingResult)
      }</RATING>
    </PROFILE>
};
(::pragma function kind="read" ::)
declare function getProfileByID($id as xs:string) as element(PROFILE)* {
  getProfile()[CID eq $id]
};
(::pragma function kind="read" ::)
declare function getCustomerNames() as element(NAME)* {
  for $c in CUSTOMER()
  return <NAME>{fn:data($c/LAST_NAME)}</NAME>
};|}

let make_customer_db ~customers ~orders_per_customer ~latency =
  let db =
    Database.create ~vendor:Database.Oracle ~roundtrip_latency:latency
      "CustomerDB"
  in
  let customer =
    Table.create ~primary_key:[ "CID" ] "CUSTOMER"
      [ Table.column ~nullable:false "CID" Table.T_varchar;
        Table.column ~nullable:false "LAST_NAME" Table.T_varchar;
        Table.column "FIRST_NAME" Table.T_varchar;
        Table.column ~nullable:false "SSN" Table.T_varchar;
        Table.column ~nullable:false "SINCE" Table.T_int ]
  in
  let order_ =
    Table.create ~primary_key:[ "OID" ]
      ~foreign_keys:
        [ { Table.fk_columns = [ "CID" ];
            references_table = "CUSTOMER";
            references_columns = [ "CID" ] } ]
      "ORDER_T"
      [ Table.column ~nullable:false "OID" Table.T_int;
        Table.column ~nullable:false "CID" Table.T_varchar;
        Table.column "AMOUNT" Table.T_decimal ]
  in
  Database.add_table db customer;
  Database.add_table db order_;
  for i = 1 to customers do
    let cid = Printf.sprintf "CUST%04d" i in
    let first =
      (* every 7th customer has no first name: ragged data *)
      if i mod 7 = 0 then V.Null
      else V.Str first_names.(i mod Array.length first_names)
    in
    Result.get_ok
      (Table.insert customer
         [| V.Str cid;
            V.Str last_names.(i mod Array.length last_names);
            first;
            V.Str (Printf.sprintf "%03d-%02d-%04d" i (i mod 100) (i * 13 mod 10000));
            V.Int (i * 86400) |]);
    for j = 1 to orders_per_customer do
      Result.get_ok
        (Table.insert order_
           [| V.Int ((i * 1000) + j);
              V.Str cid;
              V.Float (float_of_int ((i + j) * 10)) |])
    done
  done;
  db

let make_card_db ~customers ~cards_per_customer ~latency =
  let db =
    Database.create ~vendor:Database.Sql_server ~roundtrip_latency:latency
      "CardDB"
  in
  let card =
    Table.create ~primary_key:[ "CCID" ] "CREDIT_CARD"
      [ Table.column ~nullable:false "CCID" Table.T_int;
        Table.column ~nullable:false "CID" Table.T_varchar;
        Table.column ~nullable:false "NUM" Table.T_varchar;
        Table.column "LIMIT_" Table.T_decimal ]
  in
  Database.add_table db card;
  for i = 1 to customers do
    for j = 1 to cards_per_customer do
      Result.get_ok
        (Table.insert card
           [| V.Int ((i * 100) + j);
              V.Str (Printf.sprintf "CUST%04d" i);
              V.Str (Printf.sprintf "4400-%04d-%04d" i j);
              V.Float (float_of_int (1000 * j)) |])
    done
  done;
  db

let rating_request_schema =
  Schema.element_decl (Qname.local "getRating")
    (Schema.Complex
       [ Schema.particle (Schema.simple (Qname.local "lName") Atomic.T_string);
         Schema.particle (Schema.simple (Qname.local "ssn") Atomic.T_string) ])

let rating_response_schema =
  Schema.element_decl (Qname.local "getRatingResponse")
    (Schema.Complex
       [ Schema.particle
           (Schema.simple (Qname.local "getRatingResult") Atomic.T_integer) ])

let make_rating_service ~latency =
  let implementation request =
    let ssn =
      match Node.child_elements request (Qname.local "ssn") with
      | [ n ] -> Node.string_value n
      | _ -> ""
    in
    let rating =
      500 + (Hashtbl.hash ssn mod 350)
    in
    Ok
      (Node.element (Qname.local "getRatingResponse")
         [ Node.element (Qname.local "getRatingResult")
             [ Node.text (string_of_int rating) ] ])
  in
  Web_service.create ~latency
    ~wsdl_url:"http://ratings.example.com/rate?wsdl" "RatingService"
    [ Web_service.operation ~name:"getRating" ~input:rating_request_schema
        ~output:rating_response_schema implementation ]

let create ?(customers = 20) ?(orders_per_customer = 3)
    ?(cards_per_customer = 1) ?(db_latency = 0.) ?(service_latency = 0.)
    ?function_cache ?security ?audit ?optimizer_options () =
  let customer_db =
    make_customer_db ~customers ~orders_per_customer ~latency:db_latency
  in
  let card_db =
    make_card_db ~customers ~cards_per_customer ~latency:db_latency
  in
  let rating_service = make_rating_service ~latency:service_latency in
  let registry = Metadata.create () in
  Metadata.introspect_relational registry customer_db;
  Metadata.introspect_relational registry card_db;
  Metadata.introspect_service registry rating_service;
  Custom_function.install_date_conversions (Metadata.custom_registry registry);
  let register_conversion name param_ty return_ty =
    Metadata.add_function registry
      { Metadata.fd_name = name;
        fd_params = [ ("x", Stype.atomic param_ty) ];
        fd_return = Stype.atomic return_ty;
        fd_impl =
          Metadata.External
            (Metadata.External_custom (Metadata.custom_registry registry));
        fd_kind = Metadata.Library;
        fd_cacheable = false;
        fd_pragmas = [ ("kind", "javaFunction") ] }
  in
  register_conversion Custom_function.int2date Atomic.T_integer
    Atomic.T_date_time;
  register_conversion Custom_function.date2int Atomic.T_date_time
    Atomic.T_integer;
  Metadata.register_inverse registry ~f:Custom_function.int2date
    ~inverse:Custom_function.date2int;
  let server =
    Server.create ?optimizer_options ?function_cache ?security ?audit registry
  in
  (match
     Server.register_data_service server ~name:"ProfileDS"
       profile_data_service_source
   with
  | Ok () -> ()
  | Error ds ->
    failwith
      ("demo data service failed to register: "
      ^ String.concat "; " (List.map Diag.to_string ds)));
  { customer_db; card_db; rating_service; registry; server }

let reset_stats t =
  Database.reset_stats t.customer_db;
  Database.reset_stats t.card_db;
  Web_service.reset_stats t.rating_service
