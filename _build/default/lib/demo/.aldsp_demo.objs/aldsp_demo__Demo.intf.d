lib/demo/demo.mli: Aldsp_core Aldsp_relational Aldsp_services Database Web_service
