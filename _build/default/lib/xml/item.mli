(** Items and sequences — the values of the XQuery Data Model.

    Every XQuery expression evaluates to a sequence of items, where an item
    is either an atomic value or a node. Sequences are flat (no nesting) and
    a singleton is identical to the item itself. *)

type t = Atom of Atomic.t | Node of Node.t

type sequence = t list

val atom : Atomic.t -> t
val node : Node.t -> t

val integer : int -> t
val string : string -> t
val boolean : bool -> t

val atomize : sequence -> (Atomic.t list, string) result
(** [fn:data]: each node contributes its typed value, atomics pass
    through. *)

val ebv : sequence -> (bool, string) result
(** Effective boolean value: empty is false, a sequence whose first item is
    a node is true, a singleton atomic delegates to {!Atomic.ebv}, other
    sequences are errors. *)

val string_value : t -> string

val equal : t -> t -> bool

val equal_sequence : sequence -> sequence -> bool

val serialize : sequence -> string
(** Serializes a sequence for display: nodes as XML, atomics in lexical
    form, separated by spaces. *)

val pp : Format.formatter -> t -> unit
val pp_sequence : Format.formatter -> sequence -> unit
