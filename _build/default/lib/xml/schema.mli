(** An XML Schema subset: the "shape" language of data services.

    A data service's shape (§2.1 of the paper) is an XML Schema describing
    its business-object type. This module provides just enough of XML
    Schema for ALDSP's data-centric use: named element declarations with
    either simple (atomic) content or a sequence of child element particles
    with occurrence indicators, plus typed attributes. Validation turns an
    untyped tree (e.g. from {!Xml_parser} or a web-service payload) into a
    typed tree, the form all adaptors feed into the runtime. *)

type occurrence = Exactly_one | Optional | Zero_or_more | One_or_more

type content =
  | Atomic_content of Atomic.atomic_type
  | Complex of particle list
  | Empty_content

and particle = { decl : element_decl; occurs : occurrence }

and element_decl = {
  elem_name : Qname.t;
  content : content;
  decl_attributes : attribute_decl list;
}

and attribute_decl = {
  attr_name : Qname.t;
  attr_type : Atomic.atomic_type;
  required : bool;
}

val element_decl :
  ?attributes:attribute_decl list -> Qname.t -> content -> element_decl

val attribute_decl :
  ?required:bool -> Qname.t -> Atomic.atomic_type -> attribute_decl

val simple : Qname.t -> Atomic.atomic_type -> element_decl
(** [simple name ty] declares an element with atomic content of type
    [ty]. *)

val particle : ?occurs:occurrence -> element_decl -> particle

val validate : element_decl -> Node.t -> (Node.t, string) result
(** [validate decl node] checks [node] against [decl] and returns the typed
    equivalent: text content of simple-typed elements is parsed into typed
    atomic leaves, attributes are typed, child sequences are checked against
    particles (in order, with occurrence constraints). Unknown elements,
    missing required content, and lexical errors are reported with a path. *)

val find_child_decl : element_decl -> Qname.t -> element_decl option
(** Looks up the declaration of a child element in a complex type. *)

val pp : Format.formatter -> element_decl -> unit
(** Renders the declaration in a compact XML-Schema-like notation, for
    design-view display and debugging. *)
