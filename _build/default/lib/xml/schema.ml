type occurrence = Exactly_one | Optional | Zero_or_more | One_or_more

type content =
  | Atomic_content of Atomic.atomic_type
  | Complex of particle list
  | Empty_content

and particle = { decl : element_decl; occurs : occurrence }

and element_decl = {
  elem_name : Qname.t;
  content : content;
  decl_attributes : attribute_decl list;
}

and attribute_decl = {
  attr_name : Qname.t;
  attr_type : Atomic.atomic_type;
  required : bool;
}

let element_decl ?(attributes = []) elem_name content =
  { elem_name; content; decl_attributes = attributes }

let attribute_decl ?(required = false) attr_name attr_type =
  { attr_name; attr_type; required }

let simple name ty = element_decl name (Atomic_content ty)

let particle ?(occurs = Exactly_one) decl = { decl; occurs }

let find_child_decl decl qname =
  match decl.content with
  | Complex particles ->
    List.find_map
      (fun p -> if Qname.equal p.decl.elem_name qname then Some p.decl else None)
      particles
  | Atomic_content _ | Empty_content -> None

let occurrence_ok occurs count =
  match occurs with
  | Exactly_one -> count = 1
  | Optional -> count <= 1
  | Zero_or_more -> true
  | One_or_more -> count >= 1

let occurrence_to_string = function
  | Exactly_one -> ""
  | Optional -> "?"
  | Zero_or_more -> "*"
  | One_or_more -> "+"

let rec validate_at path decl node =
  let fail msg = Error (Printf.sprintf "%s: %s" path msg) in
  match node with
  | Node.Text _ | Node.Atom _ -> fail "expected an element"
  | Node.Element e ->
    if not (Qname.equal e.Node.name decl.elem_name) then
      fail
        (Printf.sprintf "expected element %s, found %s"
           (Qname.to_string decl.elem_name)
           (Qname.to_string e.Node.name))
    else
      let ( let* ) = Result.bind in
      let* attributes = validate_attributes path decl e in
      let* children = validate_content path decl e in
      Ok (Node.element ~attributes decl.elem_name children)

and validate_attributes path decl e =
  let fail msg = Error (Printf.sprintf "%s: %s" path msg) in
  let rec typed acc = function
    | [] -> Ok (List.rev acc)
    | ad :: rest -> (
      let found =
        List.find_opt
          (fun (n, _) -> Qname.equal n ad.attr_name)
          e.Node.attributes
      in
      match found with
      | None ->
        if ad.required then
          fail
            (Printf.sprintf "missing required attribute %s"
               (Qname.to_string ad.attr_name))
        else typed acc rest
      | Some (_, v) -> (
        match Atomic.parse ad.attr_type (Atomic.to_string v) with
        | Ok tv -> typed ((ad.attr_name, tv) :: acc) rest
        | Error msg -> fail msg))
  in
  typed [] decl.decl_attributes

and validate_content path decl e =
  let fail msg = Error (Printf.sprintf "%s: %s" path msg) in
  match decl.content with
  | Empty_content ->
    if e.Node.children = [] then Ok []
    else fail "element declared empty has content"
  | Atomic_content ty -> (
    let text = Node.string_value (Node.Element e) in
    if String.trim text = "" && e.Node.children = [] then Ok []
    else
      match Atomic.parse ty text with
      | Ok v -> Ok [ Node.atom v ]
      | Error msg -> fail msg)
  | Complex particles ->
    let element_children =
      List.filter
        (function
          | Node.Element _ -> true
          | Node.Text s -> String.trim s <> ""
          | Node.Atom _ -> true)
        e.Node.children
    in
    let ( let* ) = Result.bind in
    let* () =
      if
        List.exists
          (function Node.Element _ -> false | Node.Text _ | Node.Atom _ -> true)
          element_children
      then fail "unexpected character data in complex content"
      else Ok ()
    in
    (* Validate each particle's occurrences in declaration order; children
       may interleave but must all be declared. *)
    let rec check_particles acc = function
      | [] -> Ok acc
      | p :: rest ->
        let matches =
          List.filter
            (fun child ->
              match Node.name child with
              | Some n -> Qname.equal n p.decl.elem_name
              | None -> false)
            element_children
        in
        if not (occurrence_ok p.occurs (List.length matches)) then
          fail
            (Printf.sprintf "element %s occurs %d times, declared %s%s"
               (Qname.to_string p.decl.elem_name)
               (List.length matches)
               (Qname.to_string p.decl.elem_name)
               (occurrence_to_string p.occurs))
        else
          let rec validate_all acc = function
            | [] -> check_particles acc rest
            | child :: more -> (
              let child_path =
                Printf.sprintf "%s/%s" path p.decl.elem_name.Qname.local
              in
              match validate_at child_path p.decl child with
              | Ok typed -> validate_all ((child, typed) :: acc) more
              | Error _ as e -> e)
          in
          validate_all acc matches
    in
    let* validated = check_particles [] particles in
    let* () =
      let declared child =
        match Node.name child with
        | Some n ->
          List.exists (fun p -> Qname.equal p.decl.elem_name n) particles
        | None -> false
      in
      match List.find_opt (fun c -> not (declared c)) element_children with
      | Some (Node.Element e') ->
        fail
          (Printf.sprintf "undeclared element %s" (Qname.to_string e'.Node.name))
      | Some _ | None -> Ok ()
    in
    (* Preserve document order of the original children. *)
    let typed_of child =
      List.find_map
        (fun (orig, typed) -> if orig == child then Some typed else None)
        validated
    in
    Ok (List.filter_map typed_of element_children)

let validate decl node = validate_at ("/" ^ decl.elem_name.Qname.local) decl node

let rec pp ppf decl =
  let open Format in
  match decl.content with
  | Atomic_content ty ->
    fprintf ppf "%a : %s" Qname.pp decl.elem_name (Atomic.type_name ty)
  | Empty_content -> fprintf ppf "%a : empty" Qname.pp decl.elem_name
  | Complex particles ->
    fprintf ppf "@[<v 2>%a {@ %a@]@ }" Qname.pp decl.elem_name
      (pp_print_list ~pp_sep:pp_print_space (fun ppf p ->
           fprintf ppf "%a%s" pp p.decl (occurrence_to_string p.occurs)))
      particles
