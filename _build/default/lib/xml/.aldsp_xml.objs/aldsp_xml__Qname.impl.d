lib/xml/qname.ml: Format Hashtbl Printf String
