lib/xml/schema.ml: Atomic Format List Node Printf Qname Result String
