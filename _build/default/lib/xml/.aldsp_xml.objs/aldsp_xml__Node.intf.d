lib/xml/node.mli: Atomic Format Qname
