lib/xml/atomic.ml: Float Format Printf Scanf String
