lib/xml/qname.mli: Format
