lib/xml/xml_parser.ml: Atomic Buffer Char List Node Printf Qname String
