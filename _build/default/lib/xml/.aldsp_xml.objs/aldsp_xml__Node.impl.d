lib/xml/node.ml: Atomic Buffer Format List Qname String
