lib/xml/item.ml: Atomic Format List Node String
