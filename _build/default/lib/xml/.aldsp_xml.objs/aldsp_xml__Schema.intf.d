lib/xml/schema.mli: Atomic Format Node Qname
