type t = Atom of Atomic.t | Node of Node.t

type sequence = t list

let atom a = Atom a
let node n = Node n
let integer i = Atom (Atomic.Integer i)
let string s = Atom (Atomic.String s)
let boolean b = Atom (Atomic.Boolean b)

let atomize seq =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | Atom a :: rest -> go (a :: acc) rest
    | Node n :: rest -> go (List.rev_append (Node.typed_value n) acc) rest
  in
  go [] seq

let ebv = function
  | [] -> Ok false
  | Node _ :: _ -> Ok true
  | [ Atom a ] -> Atomic.ebv a
  | Atom _ :: _ :: _ ->
    Error "effective boolean value of a multi-item atomic sequence"

let string_value = function
  | Atom a -> Atomic.to_string a
  | Node n -> Node.string_value n

let equal a b =
  match (a, b) with
  | Atom x, Atom y -> Atomic.equal x y
  | Node x, Node y -> Node.equal x y
  | (Atom _ | Node _), _ -> false

let equal_sequence a b =
  List.length a = List.length b && List.for_all2 equal a b

let serialize seq =
  let item_to_string = function
    | Atom a -> Atomic.to_string a
    | Node n -> Node.serialize n
  in
  String.concat " " (List.map item_to_string seq)

let pp ppf = function
  | Atom a -> Atomic.pp ppf a
  | Node n -> Node.pp ppf n

let pp_sequence ppf seq =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
    pp ppf seq
