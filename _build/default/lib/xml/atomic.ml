type atomic_type =
  | T_string
  | T_integer
  | T_decimal
  | T_double
  | T_boolean
  | T_date
  | T_date_time
  | T_untyped

type date = { year : int; month : int; day : int }

type t =
  | String of string
  | Integer of int
  | Decimal of float
  | Double of float
  | Boolean of bool
  | Date of date
  | Date_time of float
  | Untyped of string

let type_of = function
  | String _ -> T_string
  | Integer _ -> T_integer
  | Decimal _ -> T_decimal
  | Double _ -> T_double
  | Boolean _ -> T_boolean
  | Date _ -> T_date
  | Date_time _ -> T_date_time
  | Untyped _ -> T_untyped

let type_name = function
  | T_string -> "xs:string"
  | T_integer -> "xs:integer"
  | T_decimal -> "xs:decimal"
  | T_double -> "xs:double"
  | T_boolean -> "xs:boolean"
  | T_date -> "xs:date"
  | T_date_time -> "xs:dateTime"
  | T_untyped -> "xs:untypedAtomic"

let type_of_name s =
  let s =
    if String.length s > 3 && String.sub s 0 3 = "xs:" then
      String.sub s 3 (String.length s - 3)
    else s
  in
  match s with
  | "string" -> Some T_string
  | "integer" | "int" | "long" | "short" | "byte" -> Some T_integer
  | "decimal" -> Some T_decimal
  | "double" | "float" -> Some T_double
  | "boolean" -> Some T_boolean
  | "date" -> Some T_date
  | "dateTime" -> Some T_date_time
  | "untypedAtomic" | "anyAtomicType" -> Some T_untyped
  | _ -> None

let is_numeric_type = function
  | T_integer | T_decimal | T_double -> true
  | T_string | T_boolean | T_date | T_date_time | T_untyped -> false

let subtype a b =
  a = b
  ||
  match (a, b) with
  | T_integer, (T_decimal | T_double) -> true
  | T_decimal, T_double -> true
  | T_date, T_date_time -> false
  | _ -> false

(* Civil-calendar <-> epoch-day conversions (Howard Hinnant's algorithms).
   Exact over the proleptic Gregorian calendar; no timezone handling — the
   engine works in UTC throughout. *)
let days_from_civil { year = y; month = m; day = d } =
  let y = if m <= 2 then y - 1 else y in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - era * 400 in
  let mp = (m + 9) mod 12 in
  let doy = ((153 * mp + 2) / 5) + d - 1 in
  let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
  (era * 146097) + doe - 719468

let civil_from_days z =
  let z = z + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - (era * 146097) in
  let yoe = (doe - (doe / 1460) + (doe / 36524) - (doe / 146096)) / 365 in
  let y = yoe + (era * 400) in
  let doy = doe - ((365 * yoe) + (yoe / 4) - (yoe / 100)) in
  let mp = ((5 * doy) + 2) / 153 in
  let d = doy - (((153 * mp) + 2) / 5) + 1 in
  let m = if mp < 10 then mp + 3 else mp - 9 in
  { year = (if m <= 2 then y + 1 else y); month = m; day = d }

let epoch_of_date date = float_of_int (days_from_civil date * 86400)

let date_of_epoch secs =
  let day = int_of_float (Float.round (floor (secs /. 86400.))) in
  civil_from_days day

let date_to_string { year; month; day } =
  Printf.sprintf "%04d-%02d-%02d" year month day

let date_time_to_string secs =
  let date = date_of_epoch secs in
  let rem = secs -. epoch_of_date date in
  let rem = int_of_float (Float.round rem) in
  Printf.sprintf "%sT%02d:%02d:%02dZ" (date_to_string date) (rem / 3600)
    (rem mod 3600 / 60) (rem mod 60)

let float_to_lexical f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let to_string = function
  | String s | Untyped s -> s
  | Integer i -> string_of_int i
  | Decimal f | Double f -> float_to_lexical f
  | Boolean b -> if b then "true" else "false"
  | Date d -> date_to_string d
  | Date_time s -> date_time_to_string s

let pp ppf v = Format.pp_print_string ppf (to_string v)

let parse_date s =
  try
    Scanf.sscanf s "%d-%d-%d" (fun year month day ->
        Ok (Date { year; month; day }))
  with Scanf.Scan_failure _ | Failure _ | End_of_file ->
    Error (Printf.sprintf "invalid xs:date literal %S" s)

let date_time_of_string s =
  try
    Scanf.sscanf s "%d-%d-%dT%d:%d:%d" (fun year month day h m sec ->
        Ok
          (epoch_of_date { year; month; day }
          +. float_of_int ((h * 3600) + (m * 60) + sec)))
  with Scanf.Scan_failure _ | Failure _ | End_of_file ->
    Error (Printf.sprintf "invalid xs:dateTime literal %S" s)

let parse ty s =
  let bad () = Error (Printf.sprintf "cannot parse %S as %s" s (type_name ty)) in
  match ty with
  | T_string -> Ok (String s)
  | T_untyped -> Ok (Untyped s)
  | T_integer -> (
    match int_of_string_opt (String.trim s) with
    | Some i -> Ok (Integer i)
    | None -> bad ())
  | T_decimal -> (
    match float_of_string_opt (String.trim s) with
    | Some f -> Ok (Decimal f)
    | None -> bad ())
  | T_double -> (
    match float_of_string_opt (String.trim s) with
    | Some f -> Ok (Double f)
    | None -> bad ())
  | T_boolean -> (
    match String.trim s with
    | "true" | "1" -> Ok (Boolean true)
    | "false" | "0" -> Ok (Boolean false)
    | _ -> bad ())
  | T_date -> parse_date (String.trim s)
  | T_date_time -> (
    match date_time_of_string (String.trim s) with
    | Ok f -> Ok (Date_time f)
    | Error e -> Error e)

let cast ty v =
  if type_of v = ty then Ok v
  else
    match (ty, v) with
    | _, (String s | Untyped s) -> parse ty s
    | T_string, v -> Ok (String (to_string v))
    | T_untyped, v -> Ok (Untyped (to_string v))
    | T_integer, Decimal f | T_integer, Double f ->
      Ok (Integer (int_of_float f))
    | T_integer, Boolean b -> Ok (Integer (if b then 1 else 0))
    | T_integer, Date_time s -> Ok (Integer (int_of_float s))
    | T_decimal, Integer i -> Ok (Decimal (float_of_int i))
    | T_decimal, Double f -> Ok (Decimal f)
    | T_double, Integer i -> Ok (Double (float_of_int i))
    | T_double, Decimal f -> Ok (Double f)
    | T_boolean, Integer i -> Ok (Boolean (i <> 0))
    | T_boolean, (Decimal f | Double f) -> Ok (Boolean (f <> 0.))
    | T_date, Date_time s -> Ok (Date (date_of_epoch s))
    | T_date_time, Date d -> Ok (Date_time (epoch_of_date d))
    | T_date_time, Integer i -> Ok (Date_time (float_of_int i))
    | _ ->
      Error
        (Printf.sprintf "cannot cast %s %S to %s"
           (type_name (type_of v))
           (to_string v) (type_name ty))

let as_double = function
  | Integer i -> Some (float_of_int i)
  | Decimal f | Double f -> Some f
  | Untyped s -> float_of_string_opt s
  | String _ | Boolean _ | Date _ | Date_time _ -> None

let compare_values a b =
  let err () =
    Error
      (Printf.sprintf "cannot compare %s with %s"
         (type_name (type_of a))
         (type_name (type_of b)))
  in
  match (a, b) with
  | Integer x, Integer y -> Ok (compare x y)
  | Boolean x, Boolean y -> Ok (compare x y)
  | (String x | Untyped x), (String y | Untyped y) -> Ok (String.compare x y)
  | Date x, Date y -> Ok (compare (days_from_civil x) (days_from_civil y))
  | Date_time x, Date_time y -> Ok (Float.compare x y)
  | Date x, Date_time y -> Ok (Float.compare (epoch_of_date x) y)
  | Date_time x, Date y -> Ok (Float.compare x (epoch_of_date y))
  | (Untyped s, (Date _ | Date_time _)) -> (
    match parse (type_of b) s with
    | Ok a' -> (
      match (a', b) with
      | Date x, Date y -> Ok (compare x y)
      | Date_time x, Date_time y -> Ok (Float.compare x y)
      | _ -> err ())
    | Error e -> Error e)
  | ((Date _ | Date_time _), Untyped s) -> (
    match parse (type_of a) s with
    | Ok b' -> (
      match (a, b') with
      | Date x, Date y -> Ok (compare x y)
      | Date_time x, Date_time y -> Ok (Float.compare x y)
      | _ -> err ())
    | Error e -> Error e)
  | _ -> (
    match (as_double a, as_double b) with
    | Some x, Some y -> Ok (Float.compare x y)
    | _ -> err ())

let equal a b = type_of a = type_of b && compare_values a b = Ok 0

let general_equal a b =
  match compare_values a b with Ok 0 -> true | Ok _ | Error _ -> false

(* Arithmetic follows XQuery numeric promotion: integer op integer stays
   integer (except div), anything involving a double yields a double, and
   decimals otherwise. *)
let arith name int_op float_op a b =
  let err () =
    Error
      (Printf.sprintf "operator %s not defined on %s, %s" name
         (type_name (type_of a))
         (type_name (type_of b)))
  in
  match (a, b) with
  | Integer x, Integer y -> (
    match int_op with
    | Some f -> Ok (Integer (f x y))
    | None -> Ok (Decimal (float_op (float_of_int x) (float_of_int y))))
  | _ -> (
    match (as_double a, as_double b) with
    | Some x, Some y ->
      let r = float_op x y in
      if type_of a = T_double || type_of b = T_double || type_of a = T_untyped
         || type_of b = T_untyped
      then Ok (Double r)
      else Ok (Decimal r)
    | _ -> err ())

let add a b =
  match (a, b) with
  | Date_time t, Integer i | Integer i, Date_time t ->
    Ok (Date_time (t +. float_of_int i))
  | _ -> arith "+" (Some ( + )) ( +. ) a b

let sub a b =
  match (a, b) with
  | Date_time t, Integer i -> Ok (Date_time (t -. float_of_int i))
  | Date_time t1, Date_time t2 -> Ok (Integer (int_of_float (t1 -. t2)))
  | _ -> arith "-" (Some ( - )) ( -. ) a b

let mul a b = arith "*" (Some ( * )) ( *. ) a b

let div a b =
  match b with
  | Integer 0 | Decimal 0. -> Error "division by zero"
  | _ -> arith "div" None ( /. ) a b

let idiv a b =
  match (a, b) with
  | _, Integer 0 -> Error "integer division by zero"
  | Integer x, Integer y -> Ok (Integer (x / y))
  | _ -> (
    match (as_double a, as_double b) with
    | Some x, Some y when y <> 0. -> Ok (Integer (int_of_float (x /. y)))
    | Some _, Some _ -> Error "integer division by zero"
    | _ -> Error "idiv requires numeric operands")

let modulo a b =
  match (a, b) with
  | _, Integer 0 -> Error "modulo by zero"
  | Integer x, Integer y -> Ok (Integer (x mod y))
  | _ -> (
    match (as_double a, as_double b) with
    | Some x, Some y when y <> 0. -> Ok (Double (Float.rem x y))
    | Some _, Some _ -> Error "modulo by zero"
    | _ -> Error "mod requires numeric operands")

let neg = function
  | Integer i -> Ok (Integer (-i))
  | Decimal f -> Ok (Decimal (-.f))
  | Double f -> Ok (Double (-.f))
  | v ->
    Error
      (Printf.sprintf "unary - not defined on %s" (type_name (type_of v)))

let ebv = function
  | Boolean b -> Ok b
  | String s | Untyped s -> Ok (s <> "")
  | Integer i -> Ok (i <> 0)
  | Decimal f | Double f -> Ok (f <> 0. && not (Float.is_nan f))
  | (Date _ | Date_time _) as v ->
    Error
      (Printf.sprintf "no effective boolean value for %s"
         (type_name (type_of v)))
