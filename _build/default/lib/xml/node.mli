(** XML node trees.

    ALDSP's runtime is a typed token stream; this module is the materialized
    (tree) form of the same data. Element content mixes text nodes (untyped
    character data) with {e typed} atomic leaves — the latter is how typed
    data survives element construction under structural typing (§3.1 of the
    paper): constructing [<CID>{42}</CID>] around an [xs:integer] keeps the
    integer annotation on the content. *)

type t =
  | Element of element
  | Text of string
  | Atom of Atomic.t  (** A typed leaf inside element content. *)

and element = {
  name : Qname.t;
  attributes : (Qname.t * Atomic.t) list;
  children : t list;
}

val element : ?attributes:(Qname.t * Atomic.t) list -> Qname.t -> t list -> t
val text : string -> t
val atom : Atomic.t -> t

val name : t -> Qname.t option
(** The element name, if the node is an element. *)

val children : t -> t list
val attributes : t -> (Qname.t * Atomic.t) list

val child_elements : t -> Qname.t -> t list
(** [child_elements n q] returns the element children of [n] named [q]. *)

val attribute : t -> Qname.t -> Atomic.t option

val string_value : t -> string
(** The concatenated string value of the node's descendants. *)

val typed_value : t -> Atomic.t list
(** Atomization of a node: its typed atomic leaves if it has only typed /
    text content, else a single untyped atomic of its string value. An
    element with element children atomizes to its string value (untyped), as
    in the data model's untyped-element rule. *)

val equal : t -> t -> bool
(** Deep equality; typed leaves compare by value, and a text node never
    equals a typed leaf even when the lexical forms coincide. *)

val escape_text : string -> string
(** XML character-data escaping of ampersand, angle brackets and quotes. *)

val serialize : ?indent:bool -> t -> string
(** XML serialization. Typed leaves are emitted in their lexical form. *)

val pp : Format.formatter -> t -> unit
