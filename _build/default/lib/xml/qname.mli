(** Qualified names.

    A qualified name pairs a namespace URI with a local name. Prefixes are a
    lexical artifact and are resolved away by the parsers; two qnames are
    equal iff their URIs and local names are equal. *)

type t = {
  uri : string;  (** Namespace URI; [""] means "no namespace". *)
  local : string;  (** Local part. *)
}

val make : ?uri:string -> string -> t
(** [make ?uri local] builds a qname. [uri] defaults to [""]. *)

val local : string -> t
(** [local n] is [make n]: a qname in no namespace. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val to_string : t -> string
(** Clark notation: [{uri}local] when a URI is present, else [local]. *)

val of_string : string -> t
(** Parses Clark notation produced by {!to_string}. *)

val pp : Format.formatter -> t -> unit
