(* Recursive-descent XML parser. The grammar is small enough that a
   hand-rolled cursor over the input string is the clearest implementation;
   error positions are tracked by offset. *)

type cursor = { input : string; mutable pos : int }

exception Parse_error of string

let error cursor msg =
  raise (Parse_error (Printf.sprintf "XML parse error at offset %d: %s" cursor.pos msg))

let peek c = if c.pos < String.length c.input then Some c.input.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let looking_at c s =
  let n = String.length s in
  c.pos + n <= String.length c.input && String.sub c.input c.pos n = s

let expect c s =
  if looking_at c s then c.pos <- c.pos + String.length s
  else error c (Printf.sprintf "expected %S" s)

let skip_ws c =
  let is_ws = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false in
  while (match peek c with Some ch -> is_ws ch | None -> false) do
    advance c
  done

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | ':' -> true
  | _ -> false

let read_name c =
  let start = c.pos in
  while (match peek c with Some ch -> is_name_char ch | None -> false) do
    advance c
  done;
  if c.pos = start then error c "expected a name";
  String.sub c.input start (c.pos - start)

let decode_entities c s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if s.[!i] = '&' then begin
      match String.index_from_opt s !i ';' with
      | None -> error c "unterminated entity reference"
      | Some j ->
        let entity = String.sub s (!i + 1) (j - !i - 1) in
        let add =
          match entity with
          | "lt" -> "<"
          | "gt" -> ">"
          | "amp" -> "&"
          | "quot" -> "\""
          | "apos" -> "'"
          | _ ->
            if String.length entity > 1 && entity.[0] = '#' then
              let code =
                if entity.[1] = 'x' then
                  int_of_string_opt ("0x" ^ String.sub entity 2 (String.length entity - 2))
                else int_of_string_opt (String.sub entity 1 (String.length entity - 1))
              in
              match code with
              | Some code when code < 128 -> String.make 1 (Char.chr code)
              | Some _ -> "?"
              | None -> error c ("bad character reference &" ^ entity ^ ";")
            else error c ("unknown entity &" ^ entity ^ ";")
        in
        Buffer.add_string buf add;
        i := j + 1
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

(* Namespace environment: prefix -> URI. The default namespace is the ""
   prefix. *)
let resolve_qname env ~is_attribute raw =
  match String.index_opt raw ':' with
  | Some i ->
    let prefix = String.sub raw 0 i in
    let local = String.sub raw (i + 1) (String.length raw - i - 1) in
    let uri = try List.assoc prefix env with Not_found -> "" in
    Qname.make ~uri local
  | None ->
    (* Unprefixed attributes are in no namespace per the spec. *)
    if is_attribute then Qname.local raw
    else
      let uri = try List.assoc "" env with Not_found -> "" in
      Qname.make ~uri raw

let skip_misc c =
  let progressed = ref true in
  while !progressed do
    progressed := false;
    skip_ws c;
    if looking_at c "<!--" then begin
      progressed := true;
      match
        let rec find i =
          if i + 3 > String.length c.input then None
          else if String.sub c.input i 3 = "-->" then Some i
          else find (i + 1)
        in
        find c.pos
      with
      | Some i -> c.pos <- i + 3
      | None -> error c "unterminated comment"
    end
    else if looking_at c "<?" then begin
      progressed := true;
      match String.index_from_opt c.input c.pos '>' with
      | Some i -> c.pos <- i + 1
      | None -> error c "unterminated processing instruction"
    end
  done

let read_attr_value c =
  let quote =
    match peek c with
    | Some (('"' | '\'') as q) ->
      advance c;
      q
    | _ -> error c "expected attribute value"
  in
  let start = c.pos in
  while (match peek c with Some ch -> ch <> quote | None -> false) do
    advance c
  done;
  (match peek c with Some _ -> () | None -> error c "unterminated attribute value");
  let raw = String.sub c.input start (c.pos - start) in
  advance c;
  decode_entities c raw

let rec parse_element c env =
  expect c "<";
  let raw_name = read_name c in
  let rec read_attrs attrs env =
    skip_ws c;
    match peek c with
    | Some ('>' | '/') -> (List.rev attrs, env)
    | _ ->
      let name = read_name c in
      skip_ws c;
      expect c "=";
      skip_ws c;
      let value = read_attr_value c in
      if name = "xmlns" then read_attrs attrs (("", value) :: env)
      else if String.length name > 6 && String.sub name 0 6 = "xmlns:" then
        let prefix = String.sub name 6 (String.length name - 6) in
        read_attrs attrs ((prefix, value) :: env)
      else read_attrs ((name, value) :: attrs) env
  in
  let raw_attrs, env = read_attrs [] env in
  let name = resolve_qname env ~is_attribute:false raw_name in
  let attributes =
    List.map
      (fun (n, v) ->
        (resolve_qname env ~is_attribute:true n, Atomic.Untyped v))
      raw_attrs
  in
  match peek c with
  | Some '/' ->
    advance c;
    expect c ">";
    Node.element ~attributes name []
  | Some '>' ->
    advance c;
    let children = parse_content c env in
    expect c "</";
    let close = read_name c in
    if close <> raw_name then
      error c (Printf.sprintf "mismatched close tag </%s> for <%s>" close raw_name);
    skip_ws c;
    expect c ">";
    Node.element ~attributes name children
  | _ -> error c "malformed start tag"

and parse_content c env =
  let children = ref [] in
  let flush_text start stop =
    if stop > start then begin
      let raw = String.sub c.input start (stop - start) in
      let decoded = decode_entities c raw in
      if String.trim decoded <> "" then children := Node.text decoded :: !children
    end
  in
  let rec loop text_start =
    if looking_at c "</" then flush_text text_start c.pos
    else if looking_at c "<!--" then begin
      flush_text text_start c.pos;
      skip_misc c;
      loop c.pos
    end
    else if looking_at c "<![CDATA[" then begin
      flush_text text_start c.pos;
      c.pos <- c.pos + 9;
      let rec find i =
        if i + 3 > String.length c.input then error c "unterminated CDATA"
        else if String.sub c.input i 3 = "]]>" then i
        else find (i + 1)
      in
      let stop = find c.pos in
      children := Node.text (String.sub c.input c.pos (stop - c.pos)) :: !children;
      c.pos <- stop + 3;
      loop c.pos
    end
    else if looking_at c "<?" then begin
      flush_text text_start c.pos;
      skip_misc c;
      loop c.pos
    end
    else if looking_at c "<" then begin
      flush_text text_start c.pos;
      let child = parse_element c env in
      children := child :: !children;
      loop c.pos
    end
    else
      match peek c with
      | Some _ ->
        advance c;
        loop text_start
      | None -> error c "unexpected end of input inside element"
  in
  loop c.pos;
  List.rev !children

let parse input =
  let c = { input; pos = 0 } in
  try
    skip_misc c;
    if looking_at c "<?xml" then skip_misc c;
    skip_misc c;
    let root = parse_element c [] in
    skip_misc c;
    if c.pos < String.length c.input then error c "trailing content after document element";
    Ok root
  with Parse_error msg -> Error msg

let parse_fragment input =
  let c = { input; pos = 0 } in
  try
    let rec loop acc =
      skip_misc c;
      if c.pos >= String.length c.input then List.rev acc
      else loop (parse_element c [] :: acc)
    in
    Ok (loop [])
  with Parse_error msg -> Error msg
