type t =
  | Element of element
  | Text of string
  | Atom of Atomic.t

and element = {
  name : Qname.t;
  attributes : (Qname.t * Atomic.t) list;
  children : t list;
}

let element ?(attributes = []) name children =
  Element { name; attributes; children }

let text s = Text s
let atom a = Atom a
let name = function Element e -> Some e.name | Text _ | Atom _ -> None
let children = function Element e -> e.children | Text _ | Atom _ -> []
let attributes = function Element e -> e.attributes | Text _ | Atom _ -> []

let child_elements node qname =
  let named = function
    | Element e -> Qname.equal e.name qname
    | Text _ | Atom _ -> false
  in
  List.filter named (children node)

let attribute node qname =
  List.find_map
    (fun (n, v) -> if Qname.equal n qname then Some v else None)
    (attributes node)

let rec string_value = function
  | Text s -> s
  | Atom a -> Atomic.to_string a
  | Element e -> String.concat "" (List.map string_value e.children)

let typed_value node =
  match node with
  | Text s -> [ Atomic.Untyped s ]
  | Atom a -> [ a ]
  | Element e ->
    let simple_content =
      List.for_all
        (function Atom _ | Text _ -> true | Element _ -> false)
        e.children
    in
    if simple_content then
      let atoms =
        List.filter_map
          (function
            | Atom a -> Some a
            | Text s when String.trim s <> "" -> Some (Atomic.Untyped s)
            | Text _ | Element _ -> None)
          e.children
      in
      (* An element with only whitespace text atomizes to the empty
         untyped atomic, matching the data model. *)
      if atoms = [] && e.children <> [] then [ Atomic.Untyped "" ]
      else if atoms = [] then []
      else atoms
    else [ Atomic.Untyped (string_value node) ]

let rec equal a b =
  match (a, b) with
  | Text x, Text y -> String.equal x y
  | Atom x, Atom y -> Atomic.equal x y
  | Element x, Element y ->
    Qname.equal x.name y.name
    && List.length x.attributes = List.length y.attributes
    && List.for_all2
         (fun (n1, v1) (n2, v2) -> Qname.equal n1 n2 && Atomic.equal v1 v2)
         x.attributes y.attributes
    && List.length x.children = List.length y.children
    && List.for_all2 equal x.children y.children
  | (Text _ | Atom _ | Element _), _ -> false

let escape_text s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let serialize ?(indent = false) node =
  let buf = Buffer.create 256 in
  let pad depth =
    if indent && depth > 0 then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * depth) ' ')
    end
  in
  let rec go depth first = function
    | Text s -> Buffer.add_string buf (escape_text s)
    | Atom a -> Buffer.add_string buf (escape_text (Atomic.to_string a))
    | Element e ->
      if not first then pad depth;
      Buffer.add_char buf '<';
      Buffer.add_string buf e.name.Qname.local;
      List.iter
        (fun (n, v) ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf n.Qname.local;
          Buffer.add_string buf "=\"";
          Buffer.add_string buf (escape_text (Atomic.to_string v));
          Buffer.add_char buf '"')
        e.attributes;
      if e.children = [] then Buffer.add_string buf "/>"
      else begin
        Buffer.add_char buf '>';
        let has_element_child =
          List.exists
            (function Element _ -> true | Text _ | Atom _ -> false)
            e.children
        in
        List.iter (go (depth + 1) false) e.children;
        if indent && has_element_child then pad depth;
        Buffer.add_string buf "</";
        Buffer.add_string buf e.name.Qname.local;
        Buffer.add_char buf '>'
      end
  in
  go 0 true node;
  Buffer.contents buf

let pp ppf node = Format.pp_print_string ppf (serialize node)
