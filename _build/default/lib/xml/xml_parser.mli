(** A small, dependency-free XML parser for the file adaptor.

    Supports elements, attributes, character data with the five predefined
    entities, numeric character references, comments, processing
    instructions, CDATA sections, and [xmlns]/[xmlns:p] namespace
    declarations. Parsed character data enters the tree untyped; the schema
    validator ({!Schema.validate}) turns it into typed content, matching
    ALDSP's rule that file sources are validated at registration time. *)

val parse : string -> (Node.t, string) result
(** Parses a complete XML document (a single root element, optionally
    preceded by an XML declaration). *)

val parse_fragment : string -> (Node.t list, string) result
(** Parses a sequence of top-level elements (no declaration required). *)
