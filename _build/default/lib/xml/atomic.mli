(** Typed atomic values — the XQuery Data Model atomic types used by ALDSP's
    data-centric subset.

    ALDSP always works with the {e typed} token stream: every leaf value
    carries its XML Schema simple type. This module provides the value
    representation together with the casting, comparison and arithmetic
    semantics that the compiler's normalization phase makes explicit. *)

(** The atomic type lattice (a practical subset of XML Schema). *)
type atomic_type =
  | T_string
  | T_integer
  | T_decimal
  | T_double
  | T_boolean
  | T_date
  | T_date_time
  | T_untyped  (** [xs:untypedAtomic] — text with no schema type. *)

type date = { year : int; month : int; day : int }

type t =
  | String of string
  | Integer of int
  | Decimal of float
  | Double of float
  | Boolean of bool
  | Date of date
  | Date_time of float  (** Seconds since the Unix epoch, UTC. *)
  | Untyped of string

val type_of : t -> atomic_type

val type_name : atomic_type -> string
(** The [xs:] name of an atomic type, e.g. ["xs:integer"]. *)

val type_of_name : string -> atomic_type option
(** Inverse of {!type_name}; also accepts names without the [xs:] prefix. *)

val is_numeric_type : atomic_type -> bool

val subtype : atomic_type -> atomic_type -> bool
(** [subtype a b] holds when a value of type [a] is usable where [b] is
    expected without cast (numeric promotion counts as usable). *)

val to_string : t -> string
(** The XML Schema lexical form (what serialization emits). *)

val pp : Format.formatter -> t -> unit

val parse : atomic_type -> string -> (t, string) result
(** [parse ty s] interprets the lexical form [s] as type [ty]. *)

val cast : atomic_type -> t -> (t, string) result
(** XQuery [cast as] semantics for the supported types, including
    untyped-atomic promotion and date/dateTime/epoch conversions. *)

val compare_values : t -> t -> (int, string) result
(** Value comparison with numeric promotion; untyped operands are compared
    as strings against strings and as doubles against numerics. Errors on
    incomparable types. *)

val equal : t -> t -> bool
(** Structural equality of value and type. *)

val general_equal : t -> t -> bool
(** XQuery general-comparison equality ([=]) for two atomics: value
    comparison, treating incomparable pairs as unequal. *)

val add : t -> t -> (t, string) result
val sub : t -> t -> (t, string) result
val mul : t -> t -> (t, string) result
val div : t -> t -> (t, string) result
val idiv : t -> t -> (t, string) result
val modulo : t -> t -> (t, string) result
val neg : t -> (t, string) result

val ebv : t -> (bool, string) result
(** Effective boolean value of a singleton atomic. *)

val epoch_of_date : date -> float
(** Midnight UTC at the start of [date], as seconds since the epoch. *)

val date_of_epoch : float -> date

val date_time_to_string : float -> string
(** ISO-8601 [YYYY-MM-DDThh:mm:ssZ] rendering of an epoch time. *)

val date_time_of_string : string -> (float, string) result
