lib/tokens/tuple.ml: Array Format List Seq Token Token_stream
