lib/tokens/tuple.mli: Aldsp_xml Format Token_stream
