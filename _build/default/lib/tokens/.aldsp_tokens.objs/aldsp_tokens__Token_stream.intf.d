lib/tokens/token_stream.mli: Aldsp_xml Buffer Format Item Node Seq Token
