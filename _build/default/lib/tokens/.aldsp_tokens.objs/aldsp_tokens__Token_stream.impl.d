lib/tokens/token_stream.ml: Aldsp_xml Array Atomic Buffer Format Item List Node Printf Seq Token
