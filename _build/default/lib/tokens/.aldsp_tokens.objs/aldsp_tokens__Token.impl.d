lib/tokens/token.ml: Aldsp_xml Array Atomic Format Qname String
