lib/tokens/token.mli: Aldsp_xml Atomic Format Qname
