(** The three tuple representations of Figure 4.

    XQuery has no user-visible tuples, but FLWOR variable bindings imply
    them internally (§5.1). ALDSP's runtime keeps three encodings and lets
    the optimizer pick per use site:

    - {b Stream}: [(Begin_tuple, …, Field_separator, …, End_tuple)] — low
      memory, cheap when fields are skipped wholesale, expensive random
      field access;
    - {b Single}: the whole tuple packed into one boxed token — cheap to
      route as a unit, must be unpacked to read fields;
    - {b Array}: one boxed token per field — highest memory, O(1) access to
      every field; the natural shape for relational rows.

    All three encode the same abstract value: a fixed-width record of token
    streams (one per field). *)

type repr = Stream_repr | Single_repr | Array_repr

type t

val repr : t -> repr
val width : t -> int

val make : repr -> Token_stream.t list -> t
(** Builds a tuple with the given representation from its field streams. *)

val of_sequences : repr -> Aldsp_xml.Item.sequence list -> t

val field : t -> int -> Token_stream.t
(** [field t i] is the stream of field [i] (0-based). For the stream
    representation this scans past the preceding fields, reproducing the
    representation's access-cost profile. *)

val field_items : t -> int -> Aldsp_xml.Item.sequence

val fields : t -> Token_stream.t list

val concat : t -> t -> t
(** [concat-tuples]: joins two tuples into one wider tuple, keeping the
    representation of the first operand. *)

val subtuple : t -> int -> int -> t
(** [extract-subtuple t start len] — the converse of {!concat}. *)

val convert : repr -> t -> t

val to_stream : t -> Token_stream.t
(** The stream encoding ([Begin_tuple]/…/[End_tuple]) of any tuple. *)

val equal : t -> t -> bool
(** Representation-independent equality of the encoded record. *)

val pp : Format.formatter -> t -> unit
