open Aldsp_xml

type t =
  | Start_element of Qname.t
  | End_element
  | Attribute of Qname.t * Atomic.t
  | Atom of Atomic.t
  | Text of string
  | Begin_tuple
  | End_tuple
  | Field_separator
  | Boxed of t array

let rec equal a b =
  match (a, b) with
  | Start_element x, Start_element y -> Qname.equal x y
  | End_element, End_element -> true
  | Attribute (n1, v1), Attribute (n2, v2) ->
    Qname.equal n1 n2 && Atomic.equal v1 v2
  | Atom x, Atom y -> Atomic.equal x y
  | Text x, Text y -> String.equal x y
  | Begin_tuple, Begin_tuple -> true
  | End_tuple, End_tuple -> true
  | Field_separator, Field_separator -> true
  | Boxed x, Boxed y ->
    Array.length x = Array.length y
    && Array.for_all2 (fun a b -> equal a b) x y
  | ( ( Start_element _ | End_element | Attribute _ | Atom _ | Text _
      | Begin_tuple | End_tuple | Field_separator | Boxed _ ),
      _ ) ->
    false

let rec pp ppf = function
  | Start_element n -> Format.fprintf ppf "<%a>" Qname.pp n
  | End_element -> Format.fprintf ppf "</>"
  | Attribute (n, v) -> Format.fprintf ppf "@%a=%a" Qname.pp n Atomic.pp v
  | Atom a -> Format.fprintf ppf "%s(%a)" (Atomic.type_name (Atomic.type_of a)) Atomic.pp a
  | Text s -> Format.fprintf ppf "%S" s
  | Begin_tuple -> Format.pp_print_string ppf "[Tup"
  | End_tuple -> Format.pp_print_string ppf "Tup]"
  | Field_separator -> Format.pp_print_string ppf "|"
  | Boxed ts ->
    Format.fprintf ppf "Boxed(%a)"
      (Format.pp_print_seq ~pp_sep:Format.pp_print_space pp)
      (Array.to_seq ts)

let to_string t = Format.asprintf "%a" pp t
