(** The typed XML token stream (after the BEA streaming XQuery processor,
    [11] in the paper).

    A token stream is a flat event encoding of XQuery Data Model instances:
    it is what adaptors feed into the ALDSP runtime and what runtime
    operators consume and produce. Unlike SAX/StAX it represents the full
    data model — atomic values keep their types — and it adds the tuple
    delimiters ALDSP introduced for its data-centric workloads
    ([Begin_tuple] / [Field_separator] / [End_tuple], §5.1). *)

open Aldsp_xml

type t =
  | Start_element of Qname.t
  | End_element
  | Attribute of Qname.t * Atomic.t
  | Atom of Atomic.t  (** A typed atomic value in content position. *)
  | Text of string
  | Begin_tuple
  | End_tuple
  | Field_separator
  | Boxed of t array
      (** A nested stream packed into one token — the "single token" tuple
          representation of Figure 4. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
