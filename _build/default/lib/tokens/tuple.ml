type repr = Stream_repr | Single_repr | Array_repr

(* The stream representation keeps one flat token array with delimiters
   (materialized, since a tuple must be re-readable); the single
   representation boxes the delimited stream into one token; the array
   representation boxes each field separately. *)
type t =
  | Stream of Token.t array  (* Begin_tuple ... Field_separator ... End_tuple *)
  | Single of Token.t * int  (* boxed delimited stream, width *)
  | Array of Token.t array   (* one Boxed token per field *)

let repr = function
  | Stream _ -> Stream_repr
  | Single _ -> Single_repr
  | Array _ -> Array_repr

let delimited fields =
  let buf = ref [ Token.Begin_tuple ] in
  List.iteri
    (fun i field ->
      if i > 0 then buf := Token.Field_separator :: !buf;
      Seq.iter (fun tok -> buf := tok :: !buf) field)
    fields;
  buf := Token.End_tuple :: !buf;
  Array.of_list (List.rev !buf)

(* Splits a delimited token array back into field streams. Delimiters nest
   only through boxing, so a linear scan tracking element depth suffices. *)
let split_fields tokens =
  let n = Array.length tokens in
  assert (n >= 2 && tokens.(0) = Token.Begin_tuple);
  let fields = ref [] in
  let current = ref [] in
  let depth = ref 0 in
  for i = 1 to n - 2 do
    match tokens.(i) with
    | Token.Field_separator when !depth = 0 ->
      fields := List.rev !current :: !fields;
      current := []
    | Token.Start_element _ as tok ->
      incr depth;
      current := tok :: !current
    | Token.End_element as tok ->
      decr depth;
      current := tok :: !current
    | tok -> current := tok :: !current
  done;
  fields := List.rev !current :: !fields;
  List.rev !fields

(* Note: the delimited encoding cannot distinguish a zero-width tuple from a
   one-field tuple with empty content, so tuples are always width >= 1. *)
let width = function
  | Stream tokens -> List.length (split_fields tokens)
  | Single (_, w) -> w
  | Array fields -> Array.length fields

let make repr fields =
  match repr with
  | Stream_repr -> Stream (delimited fields)
  | Single_repr ->
    Single (Token.Boxed (delimited fields), List.length fields)
  | Array_repr ->
    Array
      (Array.of_list
         (List.map (fun field -> Token_stream.box field) fields))

let of_sequences repr seqs =
  make repr (List.map Token_stream.of_sequence seqs)

let fields = function
  | Stream tokens ->
    List.map List.to_seq (split_fields tokens)
  | Single (boxed, _) -> (
    match boxed with
    | Token.Boxed tokens -> List.map List.to_seq (split_fields tokens)
    | _ -> assert false)
  | Array boxed -> Array.to_list (Array.map Token_stream.unbox boxed)

let field t i =
  match t with
  | Array boxed -> Token_stream.unbox boxed.(i)
  | Stream _ | Single _ -> List.nth (fields t) i

let field_items t i =
  match Token_stream.to_items (field t i) with
  | Ok items -> items
  | Error msg -> invalid_arg ("Tuple.field_items: " ^ msg)

let concat a b = make (repr a) (fields a @ fields b)

let subtuple t start len =
  let selected =
    fields t |> List.filteri (fun i _ -> i >= start && i < start + len)
  in
  make (repr t) selected

let convert target t = if repr t = target then t else make target (fields t)

let to_stream t =
  match t with
  | Stream tokens -> Array.to_seq tokens
  | Single (boxed, _) -> Token_stream.unbox boxed
  | Array _ -> Array.to_seq (delimited (fields t))

let equal a b =
  let fa = fields a and fb = fields b in
  List.length fa = List.length fb
  && List.for_all2
       (fun x y ->
         let lx = List.of_seq x and ly = List.of_seq y in
         List.length lx = List.length ly && List.for_all2 Token.equal lx ly)
       fa fb

let pp ppf t =
  Format.fprintf ppf "@[<h>tuple/%s(%a)@]"
    (match repr t with
    | Stream_repr -> "stream"
    | Single_repr -> "single"
    | Array_repr -> "array")
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " | ")
       Token_stream.pp)
    (fields t)
