open Aldsp_xml

type item_type =
  | It_atomic of Atomic.atomic_type
  | It_element of element_type
  | It_attribute of Qname.t option * Atomic.atomic_type
  | It_text
  | It_node
  | It_item
  | It_error

and element_type = {
  elem_name : Qname.t option;
  content : t;
  simple : Atomic.atomic_type option;
}

and occurrence = { at_least_one : bool; at_most_one : bool }

and t = { items : item_type list; occ : occurrence }

let occ_one = { at_least_one = true; at_most_one = true }
let occ_opt = { at_least_one = false; at_most_one = true }
let occ_star = { at_least_one = false; at_most_one = false }
let occ_plus = { at_least_one = true; at_most_one = false }

let empty_sequence = { items = []; occ = { at_least_one = false; at_most_one = true } }

let one it = { items = [ it ]; occ = occ_one }
let opt it = { items = [ it ]; occ = occ_opt }
let star it = { items = [ it ]; occ = occ_star }
let plus it = { items = [ it ]; occ = occ_plus }

let atomic ty = one (It_atomic ty)
let any_item_star = star It_item
let error_type = one It_error

let is_error t = List.exists (function It_error -> true | _ -> false) t.items

let element ?simple ?(content = empty_sequence) name =
  It_element { elem_name = name; content; simple }

let with_occ occ t = { t with occ }

let occ_union a b =
  { at_least_one = a.at_least_one && b.at_least_one;
    at_most_one = a.at_most_one && b.at_most_one }

let occ_seq a b =
  { at_least_one = a.at_least_one || b.at_least_one;
    at_most_one =
      (a.at_most_one && not b.at_least_one && b.at_most_one)
      || (b.at_most_one && not a.at_least_one && a.at_most_one) }

let rec item_subtype a b =
  match (a, b) with
  | _, It_item -> true
  | It_error, _ | _, It_error -> true
  | It_atomic x, It_atomic y -> Atomic.subtype x y
  | (It_element _ | It_attribute _ | It_text | It_node), It_node -> true
  | It_element x, It_element y ->
    (match y.elem_name with
    | None -> true
    | Some ny -> ( match x.elem_name with Some nx -> Qname.equal nx ny | None -> false))
    && (match y.simple with
       | None -> true
       | Some sy -> ( match x.simple with Some sx -> Atomic.subtype sx sy | None -> false))
    && subtype x.content y.content
  | It_attribute (nx, tx), It_attribute (ny, ty) ->
    (match ny with
    | None -> true
    | Some ny -> ( match nx with Some nx -> Qname.equal nx ny | None -> false))
    && Atomic.subtype tx ty
  | It_text, It_text -> true
  | _, _ -> false

and subtype a b =
  (* The empty type is a subtype of anything that admits empty. Otherwise
     the occurrence range of [a] must fit inside [b]'s and every item type
     of [a] must be covered by some item type of [b]. *)
  if a.items = [] then not b.occ.at_least_one
  else
    b.occ.at_least_one <= a.occ.at_least_one
    && b.occ.at_most_one <= a.occ.at_most_one
    && List.for_all
         (fun ia -> List.exists (fun ib -> item_subtype ia ib) b.items)
         a.items

let union a b = { items = a.items @ b.items; occ = occ_union a.occ b.occ }

let sequence a b =
  if a.items = [] then b
  else if b.items = [] then a
  else { items = a.items @ b.items; occ = occ_seq a.occ b.occ }

let iterate t = { items = (if t.items = [] then [] else t.items); occ = occ_one }

let rec atomized_item = function
  | It_atomic ty -> [ It_atomic ty ]
  | It_element { simple = Some ty; _ } -> [ It_atomic ty ]
  | It_element { simple = None; content; _ } ->
    (* structural: atomizing an element with typed content yields the
       content's atomized types; untyped otherwise *)
    if content.items = [] then [ It_atomic Atomic.T_untyped ]
    else
      let atoms = List.concat_map atomized_item content.items in
      if atoms = [] then [ It_atomic Atomic.T_untyped ] else atoms
  | It_attribute (_, ty) -> [ It_atomic ty ]
  | It_text -> [ It_atomic Atomic.T_untyped ]
  | It_node | It_item -> [ It_atomic Atomic.T_untyped ]
  | It_error -> [ It_error ]

let atomized t =
  let items = List.concat_map atomized_item t.items in
  (* a node can atomize to several values, so the upper bound loosens
     unless every item is already atomic *)
  let all_atomic =
    List.for_all (function It_atomic _ | It_error -> true | _ -> false) t.items
  in
  let occ = if all_atomic then t.occ else { t.occ with at_most_one = false } in
  { items; occ }

(* Item-level intersection is deliberately coarser than mutual subtyping:
   two element types intersect when their names and simple content types
   are compatible, regardless of structural content — the runtime
   typematch checks the same properties, so the optimistic rule and the
   runtime check agree (§4.1). *)
let items_intersect a b =
  match (a, b) with
  | It_element x, It_element y ->
    (match (x.elem_name, y.elem_name) with
    | Some nx, Some ny -> Qname.equal nx ny
    | None, _ | _, None -> true)
    && (match (x.simple, y.simple) with
       | Some sx, Some sy -> Atomic.subtype sx sy || Atomic.subtype sy sx
       | _ -> true)
  | _ -> item_subtype a b || item_subtype b a

let intersects a b =
  if is_error a || is_error b then true
  else
    let empty_ok =
      (not a.occ.at_least_one) && not b.occ.at_least_one
    in
    let item_overlap =
      List.exists (fun ia -> List.exists (items_intersect ia) b.items) a.items
    in
    empty_ok || item_overlap

let occ_to_string occ =
  match (occ.at_least_one, occ.at_most_one) with
  | true, true -> ""
  | false, true -> "?"
  | false, false -> "*"
  | true, false -> "+"

let rec item_to_string = function
  | It_atomic ty -> Atomic.type_name ty
  | It_element { elem_name; simple; content } ->
    let name = match elem_name with Some n -> Qname.to_string n | None -> "*" in
    let detail =
      match simple with
      | Some ty -> ", " ^ Atomic.type_name ty
      | None ->
        if content.items = [] then ""
        else ", {" ^ to_string content ^ "}"
    in
    Printf.sprintf "element(%s%s)" name detail
  | It_attribute (name, ty) ->
    Printf.sprintf "attribute(%s, %s)"
      (match name with Some n -> Qname.to_string n | None -> "*")
      (Atomic.type_name ty)
  | It_text -> "text()"
  | It_node -> "node()"
  | It_item -> "item()"
  | It_error -> "error()"

and to_string t =
  match t.items with
  | [] -> "empty-sequence()"
  | [ it ] -> item_to_string it ^ occ_to_string t.occ
  | items ->
    "(" ^ String.concat " | " (List.map item_to_string items) ^ ")"
    ^ occ_to_string t.occ

let pp ppf t = Format.pp_print_string ppf (to_string t)
