(** Fine-grained data security (§7).

    Access control is available at two granularities:

    - {b function level}: who is allowed to call which data service
      functions;
    - {b element level}: an individual subtree of a data service's shape is
      a labeled security resource with its own policy. Unauthorized
      accessors either see nothing (silent removal, legitimate when the
      schema marks the subtree optional) or an administratively-specified
      replacement value.

    Element-level filtering happens at a late stage of query processing —
    {e after} the function cache — so plans and cached function results are
    shared across users, and the filter is applied to cache hits too. *)

open Aldsp_xml

type user = { user_name : string; roles : string list }

val admin : user
(** A built-in user with the ["admin"] role. *)

type on_deny =
  | Remove  (** Silently drop the subtree (schema should allow absence). *)
  | Replace of Atomic.t  (** Show a replacement value instead. *)

type resource_policy = {
  resource_label : string;
  resource_path : Qname.t list;
      (** Element path from the result root, e.g. [PROFILE/SSN]. *)
  allowed_roles : string list;
  on_deny : on_deny;
}

type t

val create : ?audit:Audit.t -> unit -> t

val restrict_function : t -> Qname.t -> roles:string list -> unit
(** Only users holding one of [roles] may call the function; unrestricted
    functions are callable by everyone. *)

val add_resource : t -> resource_policy -> unit

val check_call : t -> user -> Qname.t -> (unit, string) result

val filter_result : t -> user -> Item.sequence -> Item.sequence
(** Applies every element-level policy the user fails: matching subtrees
    are removed or replaced. Applied after evaluation and after cache
    hits. *)

val policies : t -> resource_policy list
