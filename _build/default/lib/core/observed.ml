open Aldsp_xml

type sample = {
  calls : int;
  mean_latency : float;
  mean_cardinality : float;
}

type t = (Qname.t, sample) Hashtbl.t

let create () : t = Hashtbl.create 32

let alpha = 0.2

let record t fn ~latency ~cardinality =
  let card = float_of_int cardinality in
  let sample =
    match Hashtbl.find_opt t fn with
    | None -> { calls = 1; mean_latency = latency; mean_cardinality = card }
    | Some s ->
      { calls = s.calls + 1;
        mean_latency = ((1. -. alpha) *. s.mean_latency) +. (alpha *. latency);
        mean_cardinality =
          ((1. -. alpha) *. s.mean_cardinality) +. (alpha *. card) }
  in
  Hashtbl.replace t fn sample

let observed t fn = Hashtbl.find_opt t fn

(* per-item processing charge: 2us — small against any real source call,
   enough to order two in-memory sources by cardinality *)
let per_item_charge = 2e-6

let cost t fn =
  Option.map
    (fun s -> s.mean_latency +. (per_item_charge *. s.mean_cardinality))
    (observed t fn)

let wrapper t fd args compute =
  let t0 = Unix.gettimeofday () in
  let result = compute () in
  record t fd.Metadata.fd_name
    ~latency:(Unix.gettimeofday () -. t0)
    ~cardinality:(List.length result);
  ignore args;
  result

let report t =
  Hashtbl.fold (fun fn s acc -> (fn, s) :: acc) t []
  |> List.sort (fun (_, a) (_, b) ->
         Float.compare b.mean_latency a.mean_latency)
