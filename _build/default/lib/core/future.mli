(** Minimal futures over system threads, backing [fn-bea:async],
    [fn-bea:timeout] and [fn-bea:fail-over] (§5.4, §5.6).

    A future starts computing on its own thread at {!spawn} time — which is
    exactly the paper's semantics for [fn-bea:async]: evaluation proceeds on
    another thread while the main query execution thread continues, and
    latencies of independent source accesses overlap. *)

type 'a t

val spawn : (unit -> 'a) -> 'a t

val await : 'a t -> 'a
(** Blocks until completion; re-raises the computation's exception. *)

val await_timeout : 'a t -> float -> 'a option
(** [await_timeout f seconds] waits at most [seconds]; [None] on timeout
    (the computation keeps running detached, its result discarded, matching
    [fn-bea:timeout]'s fail-over behaviour). Re-raises on failure within
    the window. *)

val is_done : 'a t -> bool
