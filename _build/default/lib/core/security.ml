open Aldsp_xml

type user = { user_name : string; roles : string list }

let admin = { user_name = "admin"; roles = [ "admin" ] }

type on_deny = Remove | Replace of Atomic.t

type resource_policy = {
  resource_label : string;
  resource_path : Qname.t list;
  allowed_roles : string list;
  on_deny : on_deny;
}

type t = {
  function_acl : (Qname.t, string list) Hashtbl.t;
  mutable resources : resource_policy list;
  audit : Audit.t option;
}

let create ?audit () =
  { function_acl = Hashtbl.create 16; resources = []; audit }

let restrict_function t fn ~roles = Hashtbl.replace t.function_acl fn roles

let add_resource t policy = t.resources <- t.resources @ [ policy ]

(* holders of the built-in "admin" role pass every policy *)
let has_role user roles =
  List.mem "admin" user.roles
  || List.exists (fun r -> List.mem r user.roles) roles

let audit_record t ~category ?detail summary =
  match t.audit with
  | Some a -> Audit.record a ~category ?detail summary
  | None -> ()

let check_call t user fn =
  match Hashtbl.find_opt t.function_acl fn with
  | None -> Ok ()
  | Some roles ->
    if has_role user roles then begin
      audit_record t ~category:"security"
        (Printf.sprintf "allow call %s by %s" (Qname.to_string fn)
           user.user_name);
      Ok ()
    end
    else begin
      audit_record t ~category:"security"
        (Printf.sprintf "deny call %s by %s" (Qname.to_string fn)
           user.user_name);
      Error
        (Printf.sprintf "access denied: %s may not call %s" user.user_name
           (Qname.to_string fn))
    end

(* Walks the result trees; [path] is the chain of element names from the
   root. A policy fires when its path matches and the user lacks every
   allowed role. *)
let filter_result t user seq =
  let failing =
    List.filter (fun p -> not (has_role user p.allowed_roles)) t.resources
  in
  if failing = [] then seq
  else begin
    let rec filter_node path node =
      match node with
      | Node.Element e -> (
        let here = path @ [ e.Node.name ] in
        let fired =
          List.find_opt
            (fun p ->
              List.length p.resource_path = List.length here
              && List.for_all2 Qname.equal p.resource_path here)
            failing
        in
        match fired with
        | Some { on_deny = Remove; resource_label; _ } ->
          audit_record t ~category:"security"
            ~detail:(Node.serialize node)
            (Printf.sprintf "remove resource %s for %s" resource_label
               user.user_name);
          []
        | Some { on_deny = Replace v; resource_label; _ } ->
          audit_record t ~category:"security"
            (Printf.sprintf "replace resource %s for %s" resource_label
               user.user_name);
          [ Node.element ~attributes:e.Node.attributes e.Node.name
              [ Node.atom v ] ]
        | None ->
          [ Node.Element
              { e with
                Node.children =
                  List.concat_map (filter_node here) e.Node.children } ])
      | Node.Text _ | Node.Atom _ -> [ node ]
    in
    List.concat_map
      (function
        | Item.Node n -> List.map (fun n -> Item.Node n) (filter_node [] n)
        | Item.Atom _ as a -> [ a ])
      seq
  end

let policies t = t.resources
