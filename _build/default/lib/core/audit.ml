type level = Off | Summary | Detailed

type event = {
  category : string;
  summary : string;
  detail : string option;
}

type t = { mutable lvl : level; mutable log : event list }

let create ?(level = Off) () = { lvl = level; log = [] }
let set_level t lvl = t.lvl <- lvl
let level t = t.lvl

let record t ~category ?detail summary =
  match t.lvl with
  | Off -> ()
  | Summary -> t.log <- { category; summary; detail = None } :: t.log
  | Detailed -> t.log <- { category; summary; detail } :: t.log

let events t = List.rev t.log
let clear t = t.log <- []
