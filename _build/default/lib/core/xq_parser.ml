open Aldsp_xml
open Xq_ast

exception Error of int * string

let fail pos fmt = Printf.ksprintf (fun m -> raise (Error (pos, m))) fmt

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)

type token =
  | T_name of string option * string  (* possibly prefixed QName *)
  | T_var of string
  | T_int of int
  | T_dec of float
  | T_dbl of float
  | T_str of string
  | T_lparen | T_rparen
  | T_lbracket | T_rbracket
  | T_lbrace | T_rbrace
  | T_comma | T_semi
  | T_assign  (* := *)
  | T_slash | T_dslash
  | T_at | T_dot
  | T_star | T_plus | T_minus | T_qmark
  | T_eq | T_neq | T_lt | T_le | T_gt | T_ge
  | T_lt_tag  (* '<' opening a direct constructor *)
  | T_pragma of pragma
  | T_eof

type state = {
  input : string;
  mutable pos : int;
  mutable buffered : (token * int * int) option;
      (* token, its start offset, cursor offset after it *)
}

let make_state input = { input; pos = 0; buffered = None }

let is_ws = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let is_name_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' -> true
  | _ -> false

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' -> true
  | _ -> false

let is_digit = function '0' .. '9' -> true | _ -> false

let peek_char st =
  if st.pos < String.length st.input then Some st.input.[st.pos] else None

let char_at st i =
  if i < String.length st.input then Some st.input.[i] else None

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.input && String.sub st.input st.pos n = s

(* Comments (: ... :) nest; pragmas (::pragma ... ::) are lexed whole. *)
let rec skip_trivia st =
  match peek_char st with
  | Some c when is_ws c ->
    st.pos <- st.pos + 1;
    skip_trivia st
  | Some '(' when looking_at st "(::pragma" -> ()  (* handled by scan *)
  | Some '(' when looking_at st "(:" ->
    let rec skip depth i =
      if i + 1 >= String.length st.input then fail i "unterminated comment"
      else if st.input.[i] = '(' && st.input.[i + 1] = ':' then
        skip (depth + 1) (i + 2)
      else if st.input.[i] = ':' && st.input.[i + 1] = ')' then
        if depth = 1 then i + 2 else skip (depth - 1) (i + 2)
      else skip depth (i + 1)
    in
    st.pos <- skip 1 (st.pos + 2);
    skip_trivia st
  | _ -> ()

let read_name_raw st =
  let start = st.pos in
  while (match peek_char st with Some c -> is_name_char c | None -> false) do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then fail start "expected a name";
  String.sub st.input start (st.pos - start)

let read_string_literal st quote =
  st.pos <- st.pos + 1;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek_char st with
    | None -> fail st.pos "unterminated string literal"
    | Some c when c = quote ->
      if char_at st (st.pos + 1) = Some quote then begin
        Buffer.add_char buf quote;
        st.pos <- st.pos + 2;
        go ()
      end
      else st.pos <- st.pos + 1
    | Some c ->
      Buffer.add_char buf c;
      st.pos <- st.pos + 1;
      go ()
  in
  go ();
  Buffer.contents buf

let lex_pragma st =
  (* at "(::pragma" *)
  st.pos <- st.pos + String.length "(::pragma";
  let finish = ref None in
  (* find closing ::) *)
  let rec find i =
    if i + 2 >= String.length st.input then fail st.pos "unterminated pragma"
    else if st.input.[i] = ':' && st.input.[i + 1] = ':' && st.input.[i + 2] = ')'
    then finish := Some i
    else find (i + 1)
  in
  find st.pos;
  let stop = Option.get !finish in
  let body = String.sub st.input st.pos (stop - st.pos) in
  st.pos <- stop + 3;
  (* body: name (attr="value")*  — parse loosely; unknown chunks ignored *)
  let sub = make_state body in
  skip_trivia sub;
  let name =
    if (match peek_char sub with Some c -> is_name_start c | None -> false)
    then read_name_raw sub
    else ""
  in
  let attrs = ref [] in
  let rec attrs_loop () =
    skip_trivia sub;
    match peek_char sub with
    | Some c when is_name_start c -> (
      let key = read_name_raw sub in
      skip_trivia sub;
      match peek_char sub with
      | Some '=' -> (
        sub.pos <- sub.pos + 1;
        skip_trivia sub;
        match peek_char sub with
        | Some (('"' | '\'') as q) ->
          let v = read_string_literal sub q in
          attrs := (key, v) :: !attrs;
          attrs_loop ()
        | _ ->
          (* unquoted value up to whitespace *)
          let start = sub.pos in
          while
            match peek_char sub with
            | Some c -> not (is_ws c)
            | None -> false
          do
            sub.pos <- sub.pos + 1
          done;
          attrs := (key, String.sub body start (sub.pos - start)) :: !attrs;
          attrs_loop ())
      | _ -> attrs_loop ())
    | Some _ ->
      sub.pos <- sub.pos + 1;
      attrs_loop ()
    | None -> ()
  in
  attrs_loop ();
  { pragma_name = name; pragma_attrs = List.rev !attrs }

let scan st : token * int =
  skip_trivia st;
  let start = st.pos in
  match peek_char st with
  | None -> (T_eof, start)
  | Some '(' when looking_at st "(::pragma" -> (T_pragma (lex_pragma st), start)
  | Some c when is_name_start c -> (
    let first = read_name_raw st in
    (* prefixed name: name ':' name with no space and not '::=' *)
    if
      peek_char st = Some ':'
      && (match char_at st (st.pos + 1) with
         | Some c -> is_name_start c
         | None -> false)
      && char_at st (st.pos + 1) <> Some '='
    then begin
      st.pos <- st.pos + 1;
      let second = read_name_raw st in
      (T_name (Some first, second), start)
    end
    else (T_name (None, first), start))
  | Some '$' ->
    st.pos <- st.pos + 1;
    let name = read_name_raw st in
    (* allow $p:v but keep only the local part; data service vars are local *)
    if
      peek_char st = Some ':'
      && (match char_at st (st.pos + 1) with
         | Some c -> is_name_start c
         | None -> false)
    then begin
      st.pos <- st.pos + 1;
      (T_var (read_name_raw st), start)
    end
    else (T_var name, start)
  | Some c when is_digit c ->
    let nstart = st.pos in
    while (match peek_char st with Some c -> is_digit c | None -> false) do
      st.pos <- st.pos + 1
    done;
    let is_dec = peek_char st = Some '.' in
    if is_dec then begin
      st.pos <- st.pos + 1;
      while (match peek_char st with Some c -> is_digit c | None -> false) do
        st.pos <- st.pos + 1
      done
    end;
    let is_dbl =
      match peek_char st with Some ('e' | 'E') -> true | _ -> false
    in
    if is_dbl then begin
      st.pos <- st.pos + 1;
      (match peek_char st with
      | Some ('+' | '-') -> st.pos <- st.pos + 1
      | _ -> ());
      while (match peek_char st with Some c -> is_digit c | None -> false) do
        st.pos <- st.pos + 1
      done
    end;
    let text = String.sub st.input nstart (st.pos - nstart) in
    if is_dbl then (T_dbl (float_of_string text), start)
    else if is_dec then (T_dec (float_of_string text), start)
    else (T_int (int_of_string text), start)
  | Some (('"' | '\'') as q) -> (T_str (read_string_literal st q), start)
  | Some '(' ->
    st.pos <- st.pos + 1;
    (T_lparen, start)
  | Some ')' ->
    st.pos <- st.pos + 1;
    (T_rparen, start)
  | Some '[' ->
    st.pos <- st.pos + 1;
    (T_lbracket, start)
  | Some ']' ->
    st.pos <- st.pos + 1;
    (T_rbracket, start)
  | Some '{' ->
    st.pos <- st.pos + 1;
    (T_lbrace, start)
  | Some '}' ->
    st.pos <- st.pos + 1;
    (T_rbrace, start)
  | Some ',' ->
    st.pos <- st.pos + 1;
    (T_comma, start)
  | Some ';' ->
    st.pos <- st.pos + 1;
    (T_semi, start)
  | Some ':' when char_at st (st.pos + 1) = Some '=' ->
    st.pos <- st.pos + 2;
    (T_assign, start)
  | Some '/' when char_at st (st.pos + 1) = Some '/' ->
    st.pos <- st.pos + 2;
    (T_dslash, start)
  | Some '/' ->
    st.pos <- st.pos + 1;
    (T_slash, start)
  | Some '@' ->
    st.pos <- st.pos + 1;
    (T_at, start)
  | Some '.' ->
    st.pos <- st.pos + 1;
    (T_dot, start)
  | Some '*' ->
    st.pos <- st.pos + 1;
    (T_star, start)
  | Some '+' ->
    st.pos <- st.pos + 1;
    (T_plus, start)
  | Some '-' ->
    st.pos <- st.pos + 1;
    (T_minus, start)
  | Some '?' ->
    st.pos <- st.pos + 1;
    (T_qmark, start)
  | Some '=' ->
    st.pos <- st.pos + 1;
    (T_eq, start)
  | Some '!' when char_at st (st.pos + 1) = Some '=' ->
    st.pos <- st.pos + 2;
    (T_neq, start)
  | Some '<' -> (
    match char_at st (st.pos + 1) with
    | Some '=' ->
      st.pos <- st.pos + 2;
      (T_le, start)
    | Some c when is_name_start c ->
      st.pos <- st.pos + 1;
      (T_lt_tag, start)
    | _ ->
      st.pos <- st.pos + 1;
      (T_lt, start))
  | Some '>' when char_at st (st.pos + 1) = Some '=' ->
    st.pos <- st.pos + 2;
    (T_ge, start)
  | Some '>' ->
    st.pos <- st.pos + 1;
    (T_gt, start)
  | Some c -> fail start "unexpected character %C" c

let peek st =
  match st.buffered with
  | Some (t, _, _) -> t
  | None ->
    let before = st.pos in
    let t, tok_start = scan st in
    let after = st.pos in
    st.pos <- before;
    st.buffered <- Some (t, tok_start, after);
    (* keep cursor before token; buffered carries the post-token position *)
    ignore tok_start;
    t

let next st =
  match st.buffered with
  | Some (t, _, after) ->
    st.buffered <- None;
    st.pos <- after;
    t
  | None -> fst (scan st)

let token_pos st =
  match st.buffered with Some (_, p, _) -> p | None -> st.pos

type mark = { mark_pos : int }

let save st : mark =
  ignore (peek st);
  (* ensure buffered reflects a consistent point: drop buffer, keep pos *)
  match st.buffered with
  | Some (_, p, _) ->
    st.buffered <- None;
    st.pos <- p;
    { mark_pos = p }
  | None -> { mark_pos = st.pos }

let restore st m =
  st.buffered <- None;
  st.pos <- m.mark_pos

let describe = function
  | T_name (None, n) -> n
  | T_name (Some p, n) -> p ^ ":" ^ n
  | T_var v -> "$" ^ v
  | T_int i -> string_of_int i
  | T_dec f | T_dbl f -> string_of_float f
  | T_str s -> Printf.sprintf "%S" s
  | T_lparen -> "(" | T_rparen -> ")"
  | T_lbracket -> "[" | T_rbracket -> "]"
  | T_lbrace -> "{" | T_rbrace -> "}"
  | T_comma -> "," | T_semi -> ";"
  | T_assign -> ":="
  | T_slash -> "/" | T_dslash -> "//"
  | T_at -> "@" | T_dot -> "."
  | T_star -> "*" | T_plus -> "+" | T_minus -> "-" | T_qmark -> "?"
  | T_eq -> "=" | T_neq -> "!=" | T_lt -> "<" | T_le -> "<="
  | T_gt -> ">" | T_ge -> ">="
  | T_lt_tag -> "<tag"
  | T_pragma _ -> "(::pragma ...::)"
  | T_eof -> "<eof>"

let expect st tok =
  let got = next st in
  if got <> tok then
    fail (token_pos st) "expected %s, found %s" (describe tok) (describe got)

let at_name st kw =
  match peek st with T_name (None, n) -> n = kw | _ -> false

let eat_name st kw =
  if at_name st kw then begin
    ignore (next st);
    true
  end
  else false

let expect_name st kw =
  if not (eat_name st kw) then
    fail (token_pos st) "expected %s, found %s" kw (describe (peek st))

let uqname_of_token st =
  match next st with
  | T_name (prefix, local) -> { prefix; local_name = local }
  | t -> fail (token_pos st) "expected a name, found %s" (describe t)

(* ------------------------------------------------------------------ *)
(* Sequence types                                                      *)

let rec parse_sequence_type st =
  if at_name st "empty-sequence" then begin
    ignore (next st);
    expect st T_lparen;
    expect st T_rparen;
    { stype = St_empty; occ = Occ_one }
  end
  else if at_name st "item" then begin
    ignore (next st);
    expect st T_lparen;
    expect st T_rparen;
    { stype = St_item; occ = parse_occurrence st }
  end
  else if at_name st "node" then begin
    ignore (next st);
    expect st T_lparen;
    expect st T_rparen;
    { stype = St_node; occ = parse_occurrence st }
  end
  else if at_name st "element" then begin
    ignore (next st);
    expect st T_lparen;
    let name =
      match peek st with
      | T_rparen -> None
      | T_star ->
        ignore (next st);
        None
      | _ -> Some (uqname_of_token st)
    in
    (* optional ", TYPE" content annotation is accepted and ignored *)
    if peek st = T_comma then begin
      ignore (next st);
      ignore (uqname_of_token st)
    end;
    expect st T_rparen;
    { stype = St_element name; occ = parse_occurrence st }
  end
  else if at_name st "schema-element" then begin
    ignore (next st);
    expect st T_lparen;
    let name = uqname_of_token st in
    expect st T_rparen;
    { stype = St_schema_element name; occ = parse_occurrence st }
  end
  else
    let name = uqname_of_token st in
    { stype = St_atomic name; occ = parse_occurrence st }

and parse_occurrence st =
  match peek st with
  | T_qmark ->
    ignore (next st);
    Occ_opt
  | T_star ->
    ignore (next st);
    Occ_star
  | T_plus ->
    ignore (next st);
    Occ_plus
  | _ -> Occ_one

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)

let rec parse_expr_internal st = parse_sequence_expr st

and parse_sequence_expr st =
  let first = parse_single_expr st in
  if peek st = T_comma then begin
    let rec more acc =
      if peek st = T_comma then begin
        ignore (next st);
        more (parse_single_expr st :: acc)
      end
      else List.rev acc
    in
    E_seq (more [ first ])
  end
  else first

and parse_single_expr st =
  match peek st with
  | T_name (None, "for") | T_name (None, "let") -> parse_flwor st
  | T_name (None, "if") -> parse_if st
  | T_name (None, ("some" | "every")) -> parse_quantified st
  | _ -> parse_or_expr st

and parse_flwor st =
  let clauses = ref [] in
  let rec clause_loop () =
    match peek st with
    | T_name (None, "for") ->
      ignore (next st);
      let rec bindings acc =
        let v =
          match next st with
          | T_var v -> v
          | t -> fail (token_pos st) "expected a variable, found %s" (describe t)
        in
        (* optional type annotation: as TYPE *)
        if at_name st "as" then begin
          ignore (next st);
          ignore (parse_sequence_type st)
        end;
        expect_name st "in";
        let e = parse_single_expr st in
        if peek st = T_comma then begin
          ignore (next st);
          bindings ((v, e) :: acc)
        end
        else List.rev ((v, e) :: acc)
      in
      clauses := C_for (bindings []) :: !clauses;
      clause_loop ()
    | T_name (None, "let") ->
      ignore (next st);
      let rec bindings acc =
        let v =
          match next st with
          | T_var v -> v
          | t -> fail (token_pos st) "expected a variable, found %s" (describe t)
        in
        if at_name st "as" then begin
          ignore (next st);
          ignore (parse_sequence_type st)
        end;
        expect st T_assign;
        let e = parse_single_expr st in
        if peek st = T_comma then begin
          ignore (next st);
          bindings ((v, e) :: acc)
        end
        else List.rev ((v, e) :: acc)
      in
      clauses := C_let (bindings []) :: !clauses;
      clause_loop ()
    | T_name (None, "where") ->
      ignore (next st);
      clauses := C_where (parse_single_expr st) :: !clauses;
      clause_loop ()
    | T_name (None, "group") ->
      ignore (next st);
      (* grammar: group [$v as $vs {, $w as $ws}] by e [as $k] {, e [as $k]} *)
      let aggregations =
        let rec aggs acc =
          match peek st with
          | T_var _ -> (
            let v =
              match next st with T_var v -> v | _ -> assert false
            in
            expect_name st "as";
            let out =
              match next st with
              | T_var v -> v
              | t ->
                fail (token_pos st) "expected a variable, found %s" (describe t)
            in
            let acc = (v, out) :: acc in
            if peek st = T_comma then begin
              ignore (next st);
              aggs acc
            end
            else List.rev acc)
          | _ -> List.rev acc
        in
        aggs []
      in
      expect_name st "by";
      let keys =
        let rec keys acc =
          let e = parse_single_expr st in
          let alias =
            if at_name st "as" then begin
              ignore (next st);
              match next st with
              | T_var v -> Some v
              | t ->
                fail (token_pos st) "expected a variable, found %s" (describe t)
            end
            else None
          in
          let acc = (e, alias) :: acc in
          if peek st = T_comma then begin
            ignore (next st);
            keys acc
          end
          else List.rev acc
        in
        keys []
      in
      clauses := C_group { aggregations; keys } :: !clauses;
      clause_loop ()
    | T_name (None, "order") ->
      ignore (next st);
      expect_name st "by";
      let rec keys acc =
        let e = parse_single_expr st in
        let descending =
          if eat_name st "descending" then true
          else begin
            ignore (eat_name st "ascending");
            false
          end
        in
        let acc = (e, descending) :: acc in
        if peek st = T_comma then begin
          ignore (next st);
          keys acc
        end
        else List.rev acc
      in
      clauses := C_order (keys []) :: !clauses;
      clause_loop ()
    | T_name (None, "stable") ->
      ignore (next st);
      clause_loop ()
    | _ -> ()
  in
  clause_loop ();
  expect_name st "return";
  let return_ = parse_single_expr st in
  E_flwor { clauses = List.rev !clauses; return_ }

and parse_if st =
  expect_name st "if";
  expect st T_lparen;
  let cond = parse_expr_internal st in
  expect st T_rparen;
  expect_name st "then";
  let then_ = parse_single_expr st in
  expect_name st "else";
  let else_ = parse_single_expr st in
  E_if (cond, then_, else_)

and parse_quantified st =
  let universal =
    match next st with
    | T_name (None, "every") -> true
    | T_name (None, "some") -> false
    | _ -> assert false
  in
  let rec bindings acc =
    let v =
      match next st with
      | T_var v -> v
      | t -> fail (token_pos st) "expected a variable, found %s" (describe t)
    in
    expect_name st "in";
    let e = parse_single_expr st in
    if peek st = T_comma then begin
      ignore (next st);
      bindings ((v, e) :: acc)
    end
    else List.rev ((v, e) :: acc)
  in
  let bindings = bindings [] in
  (* accept the correct keyword and the paper's typo'd "satisifes" *)
  if not (eat_name st "satisfies" || eat_name st "satisifes") then
    fail (token_pos st) "expected satisfies";
  let satisfies = parse_single_expr st in
  E_quantified { universal; bindings; satisfies }

and parse_or_expr st =
  let left = parse_and_expr st in
  if at_name st "or" then begin
    ignore (next st);
    E_binop (Or, left, parse_or_expr st)
  end
  else left

and parse_and_expr st =
  let left = parse_comparison_expr st in
  if at_name st "and" then begin
    ignore (next st);
    E_binop (And, left, parse_and_expr st)
  end
  else left

and parse_comparison_expr st =
  let left = parse_range_expr st in
  let op =
    match peek st with
    | T_eq -> Some G_eq
    | T_neq -> Some G_ne
    | T_lt -> Some G_lt
    | T_le -> Some G_le
    | T_gt -> Some G_gt
    | T_ge -> Some G_ge
    | T_name (None, "eq") -> Some V_eq
    | T_name (None, "ne") -> Some V_ne
    | T_name (None, "lt") -> Some V_lt
    | T_name (None, "le") -> Some V_le
    | T_name (None, "gt") -> Some V_gt
    | T_name (None, "ge") -> Some V_ge
    | _ -> None
  in
  match op with
  | Some op ->
    ignore (next st);
    E_binop (op, left, parse_range_expr st)
  | None -> left

and parse_range_expr st =
  let left = parse_additive_expr st in
  if at_name st "to" then begin
    ignore (next st);
    E_binop (To, left, parse_additive_expr st)
  end
  else left

and parse_additive_expr st =
  let rec go left =
    match peek st with
    | T_plus ->
      ignore (next st);
      go (E_binop (Plus, left, parse_multiplicative_expr st))
    | T_minus ->
      ignore (next st);
      go (E_binop (Minus, left, parse_multiplicative_expr st))
    | _ -> left
  in
  go (parse_multiplicative_expr st)

and parse_multiplicative_expr st =
  let rec go left =
    match peek st with
    | T_star ->
      ignore (next st);
      go (E_binop (Mult, left, parse_typed_expr st))
    | T_name (None, "div") ->
      ignore (next st);
      go (E_binop (Div, left, parse_typed_expr st))
    | T_name (None, "idiv") ->
      ignore (next st);
      go (E_binop (Idiv, left, parse_typed_expr st))
    | T_name (None, "mod") ->
      ignore (next st);
      go (E_binop (Mod, left, parse_typed_expr st))
    | _ -> left
  in
  go (parse_typed_expr st)

and parse_typed_expr st =
  let left = parse_unary_expr st in
  if at_name st "instance" then begin
    ignore (next st);
    expect_name st "of";
    E_instance_of (left, parse_sequence_type st)
  end
  else if at_name st "castable" then begin
    ignore (next st);
    expect_name st "as";
    E_castable (left, parse_sequence_type st)
  end
  else if at_name st "cast" then begin
    ignore (next st);
    expect_name st "as";
    E_cast (left, parse_sequence_type st)
  end
  else left

and parse_unary_expr st =
  match peek st with
  | T_minus ->
    ignore (next st);
    E_unary_minus (parse_unary_expr st)
  | T_plus ->
    ignore (next st);
    parse_unary_expr st
  | _ -> parse_path_expr st

and parse_path_expr st =
  let base = parse_step_or_primary st in
  let rec steps acc =
    match peek st with
    | T_slash ->
      ignore (next st);
      steps (parse_step st :: acc)
    | T_dslash -> fail (token_pos st) "descendant axis (//) is not supported"
    | _ -> List.rev acc
  in
  let steps = steps [] in
  if steps = [] then base else E_path (base, steps)

and parse_step st =
  match peek st with
  | T_at ->
    ignore (next st);
    let test =
      if peek st = T_star then begin
        ignore (next st);
        Wildcard
      end
      else Name (uqname_of_token st)
    in
    { axis = Attribute_axis; test; predicates = parse_predicates st }
  | T_star ->
    ignore (next st);
    { axis = Child; test = Wildcard; predicates = parse_predicates st }
  | T_name _ ->
    let name = uqname_of_token st in
    { axis = Child; test = Name name; predicates = parse_predicates st }
  | t -> fail (token_pos st) "expected a path step, found %s" (describe t)

and parse_predicates st =
  let rec go acc =
    if peek st = T_lbracket then begin
      ignore (next st);
      let p = parse_expr_internal st in
      expect st T_rbracket;
      go (p :: acc)
    end
    else List.rev acc
  in
  go []

(* A primary expression possibly followed by predicates, or a bare name
   test which is a child step on the context item. *)
and parse_step_or_primary st =
  match peek st with
  | T_at | T_star ->
    let step = parse_step st in
    E_path (E_context_item, [ step ])
  | T_name _ -> (
    (* function call vs keyword vs bare child step *)
    let m = save st in
    let name = uqname_of_token st in
    match peek st with
    | T_lparen ->
      ignore (next st);
      let args =
        if peek st = T_rparen then []
        else
          let rec args acc =
            let a = parse_single_expr st in
            if peek st = T_comma then begin
              ignore (next st);
              args (a :: acc)
            end
            else List.rev (a :: acc)
          in
          args []
      in
      expect st T_rparen;
      with_predicates st (E_call (name, args))
    | _ ->
      restore st m;
      let step = parse_step st in
      E_path (E_context_item, [ step ]))
  | _ -> with_predicates st (parse_primary st)

and with_predicates st base =
  let preds = parse_predicates st in
  if preds = [] then base else E_filter (base, preds)

and parse_primary st =
  match peek st with
  | T_int i ->
    ignore (next st);
    E_literal (Atomic.Integer i)
  | T_dec f ->
    ignore (next st);
    E_literal (Atomic.Decimal f)
  | T_dbl f ->
    ignore (next st);
    E_literal (Atomic.Double f)
  | T_str s ->
    ignore (next st);
    E_literal (Atomic.String s)
  | T_var v ->
    ignore (next st);
    E_var v
  | T_dot ->
    ignore (next st);
    E_context_item
  | T_lparen ->
    ignore (next st);
    if peek st = T_rparen then begin
      ignore (next st);
      E_seq []
    end
    else begin
      let e = parse_expr_internal st in
      expect st T_rparen;
      e
    end
  | T_lt_tag -> parse_direct_constructor st
  | t -> fail (token_pos st) "unexpected %s" (describe t)

(* --------------- direct element constructors (char level) ---------- *)

and parse_direct_constructor st =
  (* the '<' has been consumed as T_lt_tag; cursor sits at the name *)
  expect st T_lt_tag;
  parse_tag_body st

and parse_tag_body st =
  (* char-level from here *)
  let read_qname () =
    let first = read_name_raw st in
    if
      peek_char st = Some ':'
      && (match char_at st (st.pos + 1) with
         | Some c -> is_name_start c
         | None -> false)
    then begin
      st.pos <- st.pos + 1;
      let second = read_name_raw st in
      { prefix = Some first; local_name = second }
    end
    else { prefix = None; local_name = first }
  in
  let skip_sp () =
    while (match peek_char st with Some c -> is_ws c | None -> false) do
      st.pos <- st.pos + 1
    done
  in
  let name = read_qname () in
  let optional = peek_char st = Some '?' in
  if optional then st.pos <- st.pos + 1;
  (* attributes *)
  let attributes = ref [] in
  let rec attr_loop () =
    skip_sp ();
    match peek_char st with
    | Some c when is_name_start c ->
      let attr_name = read_qname () in
      let attr_optional = peek_char st = Some '?' in
      if attr_optional then st.pos <- st.pos + 1;
      skip_sp ();
      (match peek_char st with
      | Some '=' -> st.pos <- st.pos + 1
      | _ -> fail st.pos "expected = in attribute");
      skip_sp ();
      let quote =
        match peek_char st with
        | Some (('"' | '\'') as q) ->
          st.pos <- st.pos + 1;
          q
        | _ -> fail st.pos "expected attribute value"
      in
      let pieces = ref [] in
      let buf = Buffer.create 16 in
      let flush_text () =
        if Buffer.length buf > 0 then begin
          pieces := A_text (Buffer.contents buf) :: !pieces;
          Buffer.clear buf
        end
      in
      let rec value_loop () =
        match peek_char st with
        | None -> fail st.pos "unterminated attribute value"
        | Some c when c = quote -> st.pos <- st.pos + 1
        | Some '{' ->
          st.pos <- st.pos + 1;
          flush_text ();
          let e = parse_expr_internal st in
          expect st T_rbrace;
          pieces := A_enclosed e :: !pieces;
          value_loop ()
        | Some c ->
          Buffer.add_char buf c;
          st.pos <- st.pos + 1;
          value_loop ()
      in
      value_loop ();
      flush_text ();
      attributes :=
        { attr_name; attr_optional; attr_value = List.rev !pieces }
        :: !attributes;
      attr_loop ()
    | _ -> ()
  in
  attr_loop ();
  skip_sp ();
  let attributes = List.rev !attributes in
  match peek_char st with
  | Some '/' when char_at st (st.pos + 1) = Some '>' ->
    st.pos <- st.pos + 2;
    E_element { name; optional; attributes; content = [] }
  | Some '>' ->
    st.pos <- st.pos + 1;
    let content = parse_element_content st in
    (* at '</' *)
    if not (looking_at st "</") then fail st.pos "expected closing tag";
    st.pos <- st.pos + 2;
    let close = read_qname () in
    if close.local_name <> name.local_name then
      fail st.pos "mismatched closing tag </%s> for <%s>" close.local_name
        name.local_name;
    skip_sp ();
    (match peek_char st with
    | Some '>' -> st.pos <- st.pos + 1
    | _ -> fail st.pos "expected > in closing tag");
    E_element { name; optional; attributes; content }
  | _ -> fail st.pos "malformed start tag"

and parse_element_content st =
  let content = ref [] in
  let buf = Buffer.create 16 in
  let flush_text () =
    let text = Buffer.contents buf in
    Buffer.clear buf;
    (* boundary whitespace is stripped, per default boundary-space policy *)
    if String.trim text <> "" then
      content := E_literal (Atomic.String text) :: !content
  in
  let rec loop () =
    match peek_char st with
    | None -> fail st.pos "unterminated element constructor"
    | Some '<' when char_at st (st.pos + 1) = Some '/' -> flush_text ()
    | Some '<' ->
      flush_text ();
      st.pos <- st.pos + 1;
      let child = parse_tag_body st in
      content := child :: !content;
      loop ()
    | Some '{' ->
      st.pos <- st.pos + 1;
      flush_text ();
      let e = parse_expr_internal st in
      expect st T_rbrace;
      content := e :: !content;
      loop ()
    | Some c ->
      Buffer.add_char buf c;
      st.pos <- st.pos + 1;
      loop ()
  in
  loop ();
  List.rev !content

(* ------------------------------------------------------------------ *)
(* Prolog                                                              *)

let parse_param_list st =
  expect st T_lparen;
  if peek st = T_rparen then begin
    ignore (next st);
    []
  end
  else begin
    let rec params acc =
      let v =
        match next st with
        | T_var v -> v
        | t -> fail (token_pos st) "expected a parameter, found %s" (describe t)
      in
      let ty =
        if at_name st "as" then begin
          ignore (next st);
          Some (parse_sequence_type st)
        end
        else None
      in
      if peek st = T_comma then begin
        ignore (next st);
        params ((v, ty) :: acc)
      end
      else List.rev ((v, ty) :: acc)
    in
    let ps = params [] in
    expect st T_rparen;
    ps
  end

let parse_function_decl st pragmas =
  (* after "declare function" *)
  let fn_name = uqname_of_token st in
  let fn_params = parse_param_list st in
  let fn_return =
    if at_name st "as" then begin
      ignore (next st);
      Some (parse_sequence_type st)
    end
    else None
  in
  let fn_body =
    if at_name st "external" then begin
      ignore (next st);
      None
    end
    else begin
      expect st T_lbrace;
      let body = parse_expr_internal st in
      expect st T_rbrace;
      Some body
    end
  in
  expect st T_semi;
  { fn_name; fn_params; fn_return; fn_body; fn_pragmas = pragmas }

let rec skip_to_semi st =
  match peek st with
  | T_eof -> ()
  | T_semi -> ignore (next st)
  | _ ->
    ignore (next st);
    skip_to_semi st

let ident_name st =
  match next st with
  | T_name (None, n) -> n
  | t -> fail (token_pos st) "expected an identifier, found %s" (describe t)

let parse_prolog ~recover st =
  let prolog = ref empty_prolog in
  let errors = ref [] in
  let pragmas = ref [] in
  let add_error pos msg =
    errors := Printf.sprintf "offset %d: %s" pos msg :: !errors
  in
  let rec loop () =
    match peek st with
    | T_pragma p ->
      ignore (next st);
      pragmas := p :: !pragmas;
      loop ()
    | T_name (None, "xquery") ->
      (* xquery version "1.0" encoding "...": *)
      ignore (next st);
      (try
         expect_name st "version";
         (match next st with T_str _ -> () | _ -> fail (token_pos st) "expected version string");
         if at_name st "encoding" then begin
           ignore (next st);
           match next st with
           | T_str _ -> ()
           | _ -> fail (token_pos st) "expected encoding string"
         end;
         expect st T_semi
       with Error (p, m) when recover ->
         add_error p m;
         skip_to_semi st);
      loop ()
    | T_name (None, "declare") | T_name (None, "import") -> (
      let is_import = at_name st "import" in
      ignore (next st);
      let run () =
        if is_import then begin
          (* import schema namespace p = "uri" (at "loc")? ; *)
          expect_name st "schema";
          let prefix =
            if eat_name st "namespace" then begin
              let p = ident_name st in
              expect st T_eq;
              Some p
            end
            else None
          in
          let uri =
            match next st with
            | T_str s -> s
            | t -> fail (token_pos st) "expected a URI string, found %s" (describe t)
          in
          if eat_name st "at" then
            ignore
              (match next st with
              | T_str s -> s
              | t -> fail (token_pos st) "expected location, found %s" (describe t));
          expect st T_semi;
          prolog :=
            { !prolog with
              schema_imports = !prolog.schema_imports @ [ (prefix, uri) ] };
          (match prefix with
          | Some p ->
            prolog :=
              { !prolog with namespaces = !prolog.namespaces @ [ (p, uri) ] }
          | None -> ())
        end
        else if at_name st "namespace" then begin
          ignore (next st);
          let p = ident_name st in
          expect st T_eq;
          let uri =
            match next st with
            | T_str s -> s
            | t -> fail (token_pos st) "expected a URI string, found %s" (describe t)
          in
          expect st T_semi;
          prolog :=
            { !prolog with namespaces = !prolog.namespaces @ [ (p, uri) ] }
        end
        else if at_name st "default" then begin
          ignore (next st);
          expect_name st "element";
          expect_name st "namespace";
          let uri =
            match next st with
            | T_str s -> s
            | t -> fail (token_pos st) "expected a URI string, found %s" (describe t)
          in
          expect st T_semi;
          prolog := { !prolog with default_element_ns = Some uri }
        end
        else if at_name st "variable" then begin
          ignore (next st);
          let v =
            match next st with
            | T_var v -> v
            | t -> fail (token_pos st) "expected a variable, found %s" (describe t)
          in
          let ty =
            if at_name st "as" then begin
              ignore (next st);
              Some (parse_sequence_type st)
            end
            else None
          in
          expect st T_assign;
          let e = parse_expr_internal st in
          expect st T_semi;
          prolog :=
            { !prolog with variables = !prolog.variables @ [ (v, ty, e) ] }
        end
        else if at_name st "function" then begin
          ignore (next st);
          let fp = List.rev !pragmas in
          pragmas := [];
          let decl = parse_function_decl st fp in
          prolog := { !prolog with functions = !prolog.functions @ [ decl ] }
        end
        else fail (token_pos st) "unknown declaration"
      in
      if recover then (
        try run ()
        with Error (p, m) ->
          add_error p m;
          skip_to_semi st)
      else run ();
      loop ())
    | _ -> ()
  in
  loop ();
  (* pragmas not attached to any declaration precede the query body:
     they are query-level hints *)
  (!prolog, List.rev !errors, List.rev !pragmas)

let parse_query_with ~recover input =
  let st = make_state input in
  let prolog, errors, query_pragmas = parse_prolog ~recover st in
  let body, errors =
    if peek st = T_eof then (None, errors)
    else if recover then (
      try
        let e = parse_expr_internal st in
        (match peek st with
        | T_eof -> ()
        | t -> fail (token_pos st) "trailing tokens: %s" (describe t));
        (Some e, errors)
      with Error (p, m) ->
        (None, errors @ [ Printf.sprintf "offset %d: %s" p m ]))
    else begin
      let e = parse_expr_internal st in
      (match peek st with
      | T_eof -> ()
      | t -> fail (token_pos st) "trailing tokens: %s" (describe t));
      (Some e, errors)
    end
  in
  ({ prolog; body; query_pragmas }, errors)

let parse_query input =
  match parse_query_with ~recover:false input with
  | q, _ -> Ok q
  | exception Error (pos, msg) ->
    Error (Printf.sprintf "XQuery parse error at offset %d: %s" pos msg)

let parse_expr input =
  let st = make_state input in
  match
    let e = parse_expr_internal st in
    (match peek st with
    | T_eof -> ()
    | t -> fail (token_pos st) "trailing tokens: %s" (describe t));
    e
  with
  | e -> Ok e
  | exception Error (pos, msg) ->
    Error (Printf.sprintf "XQuery parse error at offset %d: %s" pos msg)

let parse_query_recovering input =
  match parse_query_with ~recover:true input with
  | q, errors -> (q, errors)
  | exception Error (pos, msg) ->
    ( { prolog = empty_prolog; body = None; query_pragmas = [] },
      [ Printf.sprintf "offset %d: %s" pos msg ] )
