open Aldsp_xml

let fn_uri = "fn"
let xs_uri = "xs"
let bea_uri = "fn-bea"

let fn local = Qname.make ~uri:fn_uri local
let xs local = Qname.make ~uri:xs_uri local
let bea local = Qname.make ~uri:bea_uri local

let async = bea "async"
let fail_over = bea "fail-over"
let timeout = bea "timeout"

let default_namespaces =
  [ ("fn", fn_uri); ("xs", xs_uri); ("fn-bea", bea_uri) ]
