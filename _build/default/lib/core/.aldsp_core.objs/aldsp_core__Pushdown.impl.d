lib/core/pushdown.ml: Aldsp_relational Aldsp_xml Atomic Cexpr Database Fn_lib Hashtbl List Metadata Names Optimizer Option Printf Qname Sql_ast Sql_print Sql_value String Table
