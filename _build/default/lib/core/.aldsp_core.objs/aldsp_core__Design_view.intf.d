lib/core/design_view.mli: Metadata
