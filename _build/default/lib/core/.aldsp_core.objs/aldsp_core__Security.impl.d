lib/core/security.ml: Aldsp_xml Atomic Audit Hashtbl Item List Node Printf Qname
