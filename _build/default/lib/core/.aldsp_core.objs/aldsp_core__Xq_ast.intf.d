lib/core/xq_ast.mli: Aldsp_xml Atomic Format
