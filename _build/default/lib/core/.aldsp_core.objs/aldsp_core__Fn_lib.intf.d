lib/core/fn_lib.mli: Aldsp_relational Aldsp_xml Item Qname Stype
