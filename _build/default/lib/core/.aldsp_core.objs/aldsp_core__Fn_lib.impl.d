lib/core/fn_lib.ml: Aldsp_relational Aldsp_xml Atomic Buffer Float Hashtbl Item List Names Option Printf Qname Result String Stype
