lib/core/normalize.mli: Aldsp_xml Cexpr Diag Qname Schema Stype Xq_ast
