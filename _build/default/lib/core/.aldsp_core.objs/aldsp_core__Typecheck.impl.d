lib/core/typecheck.ml: Aldsp_xml Atomic Cexpr Diag Fn_lib List Metadata Printf Qname Stype
