lib/core/function_cache.mli: Aldsp_relational Aldsp_xml Item Metadata Qname
