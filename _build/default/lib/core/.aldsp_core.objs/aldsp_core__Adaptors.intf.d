lib/core/adaptors.mli: Aldsp_relational Aldsp_services Aldsp_xml Atomic Custom_function Database Item Node Qname Sql_ast Sql_exec Sql_value Web_service
