lib/core/names.ml: Aldsp_xml Qname
