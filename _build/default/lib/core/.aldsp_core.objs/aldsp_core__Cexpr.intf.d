lib/core/cexpr.mli: Aldsp_relational Aldsp_xml Atomic Format Hashtbl Qname Stype
