lib/core/optimizer.mli: Aldsp_xml Cexpr Metadata Observed Rewrite
