lib/core/rewrite.ml: Cexpr Hashtbl List Option String
