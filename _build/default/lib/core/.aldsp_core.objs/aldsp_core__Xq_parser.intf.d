lib/core/xq_parser.mli: Xq_ast
