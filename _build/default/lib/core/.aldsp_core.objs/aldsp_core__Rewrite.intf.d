lib/core/rewrite.mli: Cexpr
