lib/core/pushdown.mli: Cexpr Metadata
