lib/core/stype.ml: Aldsp_xml Atomic Format List Printf Qname String
