lib/core/optimizer.ml: Aldsp_xml Atomic Cexpr Fn_lib Hashtbl List Metadata Names Observed Option Printf Qname Rewrite Stype
