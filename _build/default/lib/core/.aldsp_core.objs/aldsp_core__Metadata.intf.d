lib/core/metadata.mli: Aldsp_relational Aldsp_services Aldsp_xml Atomic Cexpr Custom_function Database Node Procedure Qname Schema Stype Web_service
