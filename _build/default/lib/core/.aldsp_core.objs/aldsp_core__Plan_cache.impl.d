lib/core/plan_cache.ml: Hashtbl List String
