lib/core/future.mli:
