lib/core/eval.ml: Adaptors Aldsp_relational Aldsp_xml Array Atomic Cexpr Fn_lib Future Hashtbl Item List Map Metadata Names Node Option Printf Qname Result Seq String Stype
