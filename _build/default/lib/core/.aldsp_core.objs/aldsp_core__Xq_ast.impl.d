lib/core/xq_ast.ml: Aldsp_xml Atomic Format List
