lib/core/stype.mli: Aldsp_xml Atomic Format Qname
