lib/core/observed.mli: Aldsp_xml Item Metadata Qname
