lib/core/audit.ml: List
