lib/core/eval.mli: Aldsp_xml Cexpr Item Metadata Stype
