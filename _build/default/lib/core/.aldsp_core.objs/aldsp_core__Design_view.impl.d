lib/core/design_view.ml: Aldsp_xml Buffer Cexpr Format List Metadata Printf Qname Schema String Stype
