lib/core/observed.ml: Aldsp_xml Float Hashtbl List Metadata Option Qname Unix
