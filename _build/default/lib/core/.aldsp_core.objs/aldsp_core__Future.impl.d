lib/core/future.ml: Condition Mutex Thread Unix
