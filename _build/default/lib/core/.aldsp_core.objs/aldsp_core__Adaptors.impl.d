lib/core/adaptors.ml: Aldsp_relational Aldsp_services Aldsp_xml Array Atomic Custom_function Database Item List Node Printf Qname Result Sql_ast Sql_exec Sql_value Table Web_service
