lib/core/diag.mli: Format
