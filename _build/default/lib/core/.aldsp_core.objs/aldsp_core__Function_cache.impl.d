lib/core/function_cache.ml: Aldsp_relational Aldsp_xml Array Atomic Database Hashtbl Item List Metadata Option Printf Qname Sql_ast Sql_exec Sql_value String Table Unix Xml_parser
