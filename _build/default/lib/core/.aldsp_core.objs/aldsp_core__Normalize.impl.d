lib/core/normalize.ml: Aldsp_xml Atomic Cexpr Diag List Metadata Names Printf Qname Schema Stype Xq_ast
