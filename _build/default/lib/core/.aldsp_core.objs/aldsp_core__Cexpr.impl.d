lib/core/cexpr.ml: Aldsp_relational Aldsp_xml Atomic Format Hashtbl List Printf Qname String Stype
