lib/core/plan_cache.mli:
