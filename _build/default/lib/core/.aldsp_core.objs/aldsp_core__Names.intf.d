lib/core/names.mli: Aldsp_xml Qname
