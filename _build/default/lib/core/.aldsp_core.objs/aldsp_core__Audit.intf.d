lib/core/audit.mli:
