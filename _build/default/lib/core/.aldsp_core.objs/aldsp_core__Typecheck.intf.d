lib/core/typecheck.mli: Cexpr Diag Metadata Stype
