lib/core/server.mli: Aldsp_tokens Aldsp_xml Audit Cexpr Diag Function_cache Item Metadata Observed Optimizer Qname Security Seq Stype
