lib/core/xq_parser.ml: Aldsp_xml Atomic Buffer List Option Printf String Xq_ast
