lib/core/diag.ml: Format List Printf
