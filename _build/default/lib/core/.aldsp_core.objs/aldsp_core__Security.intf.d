lib/core/security.mli: Aldsp_xml Atomic Audit Item Qname
