(** The built-in XQuery function library.

    The data-centric subset the paper's queries use: aggregates, sequence
    functions ([subsequence], [empty], [exists], [distinct-values]), string
    functions, numeric functions, plus the [fn-bea:] extensions — which are
    {e special}: they are not pure item-sequence functions and are handled
    directly by the evaluator ([fn-bea:async] spawns a thread, §5.4;
    [fn-bea:fail-over]/[fn-bea:timeout] control evaluation, §5.6).

    Each builtin carries its static signature (for the optimistic
    type-checker) and, where applicable, its SQL translation tag (consulted
    by the pushdown framework, §4.4). *)

open Aldsp_xml

(** How the pushdown framework may translate a call (§4.4). *)
type sql_translation =
  | Sql_aggregate of Aldsp_relational.Sql_ast.agg_kind
  | Sql_function of Aldsp_relational.Sql_ast.func
  | Sql_concat
  | Sql_special  (** handled structurally, e.g. [subsequence], [exists] *)
  | Not_pushable

type builtin = {
  bname : Qname.t;
  min_arity : int;
  max_arity : int option;  (** [None] = variadic. *)
  param_types : Stype.t list;  (** Padded/cycled for variadic callees. *)
  return_type : int -> Stype.t;  (** May depend on call arity. *)
  translation : sql_translation;
  special : bool;  (** Evaluated by the engine, not by [eval]. *)
  eval : Item.sequence list -> (Item.sequence, string) result;
}

val find : Qname.t -> int -> builtin option
(** Lookup by name and call arity. *)

val is_aggregate : Qname.t -> bool

val all : builtin list
