(** Well-known namespaces and names.

    Short canonical URIs are used for readability ("fn", "xs", "fn-bea");
    the parser's default namespace map binds the usual prefixes to them, so
    [fn:data], unprefixed [data], and [fn-bea:async] all resolve here. *)

open Aldsp_xml

val fn_uri : string
val xs_uri : string
val bea_uri : string  (** The [fn-bea:] extension namespace (§5.4-5.6). *)

val fn : string -> Qname.t
val xs : string -> Qname.t
val bea : string -> Qname.t

val async : Qname.t
(** [fn-bea:async] *)

val fail_over : Qname.t
(** [fn-bea:fail-over] *)

val timeout : Qname.t
(** [fn-bea:timeout] *)

val default_namespaces : (string * string) list
(** Prefix bindings every compilation starts from: [fn], [xs], [fn-bea]. *)
