open Aldsp_xml
open Xq_ast
module C = Cexpr

type context = {
  namespaces : (string * string) list;
  default_element_ns : string option;
  schema_lookup : Qname.t -> Schema.element_decl option;
  diag : Diag.collector;
  counter : int ref;
}

let context ?(namespaces = []) ?default_element_ns
    ?(schema_lookup = fun _ -> None) diag =
  { namespaces = namespaces @ Names.default_namespaces;
    default_element_ns;
    schema_lookup;
    diag;
    counter = ref 0 }

let of_prolog ?schema_lookup diag (prolog : prolog) =
  context ~namespaces:prolog.namespaces
    ?default_element_ns:prolog.default_element_ns ?schema_lookup diag

let fresh_var ctx base =
  incr ctx.counter;
  Printf.sprintf "%s#%d" base !(ctx.counter)

let phase = "normalize"

let resolve_prefix ctx prefix =
  match List.assoc_opt prefix ctx.namespaces with
  | Some uri -> Some uri
  | None ->
    Diag.error ctx.diag ~phase "undeclared namespace prefix %s" prefix;
    None

let resolve_element_name ctx (u : uqname) =
  match u.prefix with
  | Some p -> (
    match resolve_prefix ctx p with
    | Some uri -> Qname.make ~uri u.local_name
    | None -> Qname.local u.local_name)
  | None -> (
    match ctx.default_element_ns with
    | Some uri -> Qname.make ~uri u.local_name
    | None -> Qname.local u.local_name)

let resolve_function_name ctx (u : uqname) =
  match u.prefix with
  | Some p -> (
    match resolve_prefix ctx p with
    | Some uri -> Qname.make ~uri u.local_name
    | None -> Qname.local u.local_name)
  | None ->
    (* unprefixed function names resolve to the default function
       namespace, fn *)
    Names.fn u.local_name

let atomic_type_of ctx (u : uqname) =
  match Atomic.type_of_name u.local_name with
  | Some ty -> Some ty
  | None ->
    Diag.error ctx.diag ~phase "unknown atomic type %s" u.local_name;
    None

let sequence_type ctx (st : Xq_ast.sequence_type) : Stype.t =
  let occ =
    match st.occ with
    | Occ_one -> Stype.occ_one
    | Occ_opt -> Stype.occ_opt
    | Occ_star -> Stype.occ_star
    | Occ_plus -> Stype.occ_plus
  in
  let item =
    match st.stype with
    | St_empty -> None
    | St_item -> Some Stype.It_item
    | St_node -> Some Stype.It_node
    | St_atomic u -> (
      match atomic_type_of ctx u with
      | Some ty -> Some (Stype.It_atomic ty)
      | None -> Some Stype.It_error)
    | St_element None -> Some (Stype.element None)
    | St_element (Some u) -> (
      let name = resolve_element_name ctx u in
      (* element(E): structural — use the registered shape if known; an
         unknown shape constrains the name but not the content *)
      match ctx.schema_lookup name with
      | Some decl -> Some (Metadata.stype_of_schema decl)
      | None -> Some (Stype.element ~content:Stype.any_item_star (Some name)))
    | St_schema_element u -> (
      let name = resolve_element_name ctx u in
      match ctx.schema_lookup name with
      | Some decl -> Some (Metadata.stype_of_schema decl)
      | None ->
        Diag.error ctx.diag ~phase
          "schema-element(%s): no such element declaration in scope"
          (Qname.to_string name);
        Some Stype.It_error)
  in
  match item with
  | None -> Stype.empty_sequence
  | Some it -> Stype.with_occ occ (Stype.one it)

(* variable environment: surface name -> unique *)
type venv = { vars : (string * C.var) list; dot : C.var option }

let lookup_var ctx venv name =
  match List.assoc_opt name venv.vars with
  | Some v -> C.Var v
  | None ->
    Diag.error ctx.diag ~phase "undefined variable $%s" name;
    C.Error_expr (Printf.sprintf "undefined variable $%s" name)

let rec expr_in ctx venv (e : Xq_ast.expr) : C.t =
  match e with
  | E_literal a -> C.Const a
  | E_var v -> lookup_var ctx venv v
  | E_context_item -> (
    match venv.dot with
    | Some dot -> C.Var dot
    | None ->
      Diag.error ctx.diag ~phase "no context item in scope";
      C.Error_expr "no context item in scope")
  | E_seq es -> C.seq (List.map (expr_in ctx venv) es)
  | E_flwor { clauses; return_ } ->
    let cclauses, venv' = clauses_in ctx venv clauses in
    C.Flwor { clauses = cclauses; return_ = expr_in ctx venv' return_ }
  | E_if (c, t, e) ->
    C.If
      { cond = C.Ebv (expr_in ctx venv c);
        then_ = expr_in ctx venv t;
        else_ = expr_in ctx venv e }
  | E_quantified { universal; bindings; satisfies } ->
    let rec build venv = function
      | [] -> C.Ebv (expr_in ctx venv satisfies)
      | (v, src) :: rest ->
        let uv = fresh_var ctx v in
        let source = expr_in ctx venv src in
        let inner = build { venv with vars = (v, uv) :: venv.vars } rest in
        C.Quantified { universal; var = uv; source; pred = inner }
    in
    (match bindings with
    | [] ->
      Diag.error ctx.diag ~phase "quantified expression with no bindings";
      C.Error_expr "quantified expression with no bindings"
    | _ -> build venv bindings)
  | E_call (name, args) -> call_in ctx venv name args
  | E_path (base, steps) ->
    let base = expr_in ctx venv base in
    List.fold_left (fun acc step -> step_in ctx venv acc step) base steps
  | E_filter (base, preds) ->
    let base = expr_in ctx venv base in
    List.fold_left (fun acc pred -> filter_in ctx venv acc pred) base preds
  | E_element { name; optional; attributes; content } ->
    let ename = resolve_element_name ctx name in
    let attrs =
      List.map
        (fun a ->
          let aname =
            (* unprefixed attribute names are in no namespace *)
            match a.attr_name.prefix with
            | Some _ -> resolve_element_name ctx a.attr_name
            | None -> Qname.local a.attr_name.local_name
          in
          { C.aname;
            avalue = attr_value_in ctx venv a.attr_value;
            aoptional = a.attr_optional })
        attributes
    in
    let content = C.seq (List.map (expr_in ctx venv) content) in
    C.Elem { name = ename; optional; attrs; content }
  | E_binop (op, a, b) -> binop_in ctx venv op a b
  | E_unary_minus e ->
    C.Binop (C.Sub, C.Const (Atomic.Integer 0), C.Data (expr_in ctx venv e))
  | E_instance_of (e, st) ->
    C.Instance_of (expr_in ctx venv e, sequence_type ctx st)
  | E_castable (e, st) -> (
    match st.stype with
    | St_atomic u -> (
      match atomic_type_of ctx u with
      | Some ty -> C.Castable (C.Data (expr_in ctx venv e), ty)
      | None -> C.Error_expr "castable: unknown type")
    | _ ->
      Diag.error ctx.diag ~phase "castable requires an atomic type";
      C.Error_expr "castable requires an atomic type")
  | E_cast (e, st) -> (
    match st.stype with
    | St_atomic u -> (
      match atomic_type_of ctx u with
      | Some ty -> C.Cast (C.Data (expr_in ctx venv e), ty)
      | None -> C.Error_expr "cast: unknown type")
    | _ ->
      Diag.error ctx.diag ~phase "cast requires an atomic type";
      C.Error_expr "cast requires an atomic type")

and binop_in ctx venv op a b =
  let na () = expr_in ctx venv a and nb () = expr_in ctx venv b in
  let data e = C.Data e in
  match op with
  | V_eq -> C.Binop (C.V_eq, data (na ()), data (nb ()))
  | V_ne -> C.Binop (C.V_ne, data (na ()), data (nb ()))
  | V_lt -> C.Binop (C.V_lt, data (na ()), data (nb ()))
  | V_le -> C.Binop (C.V_le, data (na ()), data (nb ()))
  | V_gt -> C.Binop (C.V_gt, data (na ()), data (nb ()))
  | V_ge -> C.Binop (C.V_ge, data (na ()), data (nb ()))
  | G_eq -> C.Binop (C.G_eq, data (na ()), data (nb ()))
  | G_ne -> C.Binop (C.G_ne, data (na ()), data (nb ()))
  | G_lt -> C.Binop (C.G_lt, data (na ()), data (nb ()))
  | G_le -> C.Binop (C.G_le, data (na ()), data (nb ()))
  | G_gt -> C.Binop (C.G_gt, data (na ()), data (nb ()))
  | G_ge -> C.Binop (C.G_ge, data (na ()), data (nb ()))
  | Plus -> C.Binop (C.Add, data (na ()), data (nb ()))
  | Minus -> C.Binop (C.Sub, data (na ()), data (nb ()))
  | Mult -> C.Binop (C.Mul, data (na ()), data (nb ()))
  | Div -> C.Binop (C.Div, data (na ()), data (nb ()))
  | Idiv -> C.Binop (C.Idiv, data (na ()), data (nb ()))
  | Mod -> C.Binop (C.Mod, data (na ()), data (nb ()))
  | And -> C.Binop (C.And, C.Ebv (na ()), C.Ebv (nb ()))
  | Or -> C.Binop (C.Or, C.Ebv (na ()), C.Ebv (nb ()))
  | To -> C.Binop (C.Range, data (na ()), data (nb ()))

and call_in ctx venv name args =
  let fn = resolve_function_name ctx name in
  let nargs () = List.map (expr_in ctx venv) args in
  if fn.Qname.uri = Names.xs_uri then
    (* xs:TYPE(e) constructor -> cast *)
    match (Atomic.type_of_name fn.Qname.local, args) with
    | Some ty, [ arg ] -> C.Cast (C.Data (expr_in ctx venv arg), ty)
    | Some _, _ ->
      Diag.error ctx.diag ~phase "constructor %s expects one argument"
        (Qname.to_string fn);
      C.Error_expr "bad constructor call"
    | None, _ ->
      Diag.error ctx.diag ~phase "unknown type constructor %s"
        (Qname.to_string fn);
      C.Error_expr "unknown type constructor"
  else if Qname.equal fn (Names.fn "data") then
    match nargs () with
    | [ arg ] -> C.Data arg
    | _ ->
      Diag.error ctx.diag ~phase "fn:data expects one argument";
      C.Error_expr "fn:data expects one argument"
  else C.Call { fn; args = nargs () }

and step_in ctx venv base (step : step) =
  let stepped =
    match (step.axis, step.test) with
    | Child, Name n -> C.Child (base, resolve_element_name ctx n)
    | Child, Wildcard -> C.Child_wild base
    | Attribute_axis, Name n ->
      (* attribute names are in no namespace unless prefixed *)
      let aname =
        match n.prefix with
        | Some _ -> resolve_element_name ctx n
        | None -> Qname.local n.local_name
      in
      C.Attr_of (base, aname)
    | Attribute_axis, Wildcard ->
      Diag.error ctx.diag ~phase "attribute wildcard @* is not supported";
      C.Error_expr "@* is not supported"
  in
  List.fold_left (fun acc pred -> filter_in ctx venv acc pred) stepped
    step.predicates

and filter_in ctx venv input pred =
  let dot = fresh_var ctx "dot" in
  let pos = fresh_var ctx "pos" in
  let pred_env = { venv with dot = Some dot } in
  C.Filter { input; dot; pos; pred = expr_in ctx pred_env pred }

and attr_value_in ctx venv pieces =
  match pieces with
  | [] -> C.Const (Atomic.String "")
  | [ A_enclosed e ] -> C.Data (expr_in ctx venv e)
  | pieces ->
    let parts =
      List.map
        (function
          | A_text s -> C.Const (Atomic.String s)
          | A_enclosed e ->
            C.Call
              { fn = Names.fn "string-join";
                args =
                  [ C.Data (expr_in ctx venv e);
                    C.Const (Atomic.String " ") ] })
        pieces
    in
    (match parts with
    | [ p ] -> p
    | _ -> C.Call { fn = Names.fn "concat"; args = parts })

and clauses_in ctx venv clauses : C.clause list * venv =
  match clauses with
  | [] -> ([], venv)
  | Xq_ast.C_for bindings :: rest ->
    let rec fold venv acc = function
      | [] -> (venv, List.rev acc)
      | (v, src) :: more ->
        let uv = fresh_var ctx v in
        let source = expr_in ctx venv src in
        fold
          { venv with vars = (v, uv) :: venv.vars }
          (C.For { var = uv; source } :: acc)
          more
    in
    let venv', cls = fold venv [] bindings in
    let rest_cls, venv_final = clauses_in ctx venv' rest in
    (cls @ rest_cls, venv_final)
  | Xq_ast.C_let bindings :: rest ->
    let rec fold venv acc = function
      | [] -> (venv, List.rev acc)
      | (v, value) :: more ->
        let uv = fresh_var ctx v in
        let value = expr_in ctx venv value in
        fold
          { venv with vars = (v, uv) :: venv.vars }
          (C.Let { var = uv; value } :: acc)
          more
    in
    let venv', cls = fold venv [] bindings in
    let rest_cls, venv_final = clauses_in ctx venv' rest in
    (cls @ rest_cls, venv_final)
  | Xq_ast.C_where e :: rest ->
    let cls = C.Where (C.Ebv (expr_in ctx venv e)) in
    let rest_cls, venv_final = clauses_in ctx venv rest in
    (cls :: rest_cls, venv_final)
  | Xq_ast.C_group { aggregations; keys } :: rest ->
    let aggs =
      List.filter_map
        (fun (v_in, v_out) ->
          match List.assoc_opt v_in venv.vars with
          | Some uv ->
            let out = fresh_var ctx v_out in
            Some ((v_out, out), (uv, out))
          | None ->
            Diag.error ctx.diag ~phase "group: undefined variable $%s" v_in;
            None)
        aggregations
    in
    let keys =
      List.mapi
        (fun i (e, alias) ->
          let surface = match alias with Some a -> a | None -> Printf.sprintf "_key%d" i in
          let out = fresh_var ctx surface in
          ((surface, out), (C.Data (expr_in ctx venv e), out)))
        keys
    in
    (* after grouping only the group outputs (plus outer-scope variables
       not bound in this FLWOR) are visible; approximating the paper's
       binding-tuple semantics, we expose outputs on top of the previous
       environment *)
    let new_vars = List.map fst aggs @ List.map fst keys in
    let venv' = { venv with vars = new_vars @ venv.vars } in
    let cls = C.Group { aggs = List.map snd aggs; keys = List.map snd keys; clustered = false } in
    let rest_cls, venv_final = clauses_in ctx venv' rest in
    (cls :: rest_cls, venv_final)
  | Xq_ast.C_order keys :: rest ->
    let cls =
      C.Order
        { keys = List.map (fun (e, d) -> (C.Data (expr_in ctx venv e), d)) keys }
    in
    let rest_cls, venv_final = clauses_in ctx venv rest in
    (cls :: rest_cls, venv_final)

let expr ?(params = []) ctx e =
  expr_in ctx { vars = params; dot = None } e

let function_signature ctx (decl : function_decl) =
  let name = resolve_function_name ctx decl.fn_name in
  let params =
    List.map
      (fun (v, ty) ->
        let uv = fresh_var ctx v in
        let sty =
          match ty with
          | Some st -> sequence_type ctx st
          | None -> Stype.any_item_star
        in
        (v, uv, sty))
      decl.fn_params
  in
  let return_type =
    match decl.fn_return with
    | Some st -> sequence_type ctx st
    | None -> Stype.any_item_star
  in
  (name, params, return_type)
