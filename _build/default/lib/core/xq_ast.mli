(** Surface abstract syntax of the ALDSP XQuery dialect.

    Covers the data-centric subset the paper exercises, plus both ALDSP
    syntax extensions of §3.1: the FLWGOR [group .. by ..] clause and the
    optional-construction ["?"] marker on element and attribute
    constructors. Names are unresolved here (prefix + local); the
    normalizer resolves them against the prolog's namespace declarations. *)

open Aldsp_xml

(** An unresolved name: optional prefix and local part. *)
type uqname = { prefix : string option; local_name : string }

(** Surface sequence types, e.g. [element(ns0:PROFILE)*] or [xs:string?]. *)
type seq_type =
  | St_atomic of uqname
  | St_element of uqname option  (** [element(N)] / [element()] *)
  | St_schema_element of uqname
  | St_item
  | St_empty
  | St_node

and occurrence_marker = Occ_one | Occ_opt | Occ_star | Occ_plus

type sequence_type = { stype : seq_type; occ : occurrence_marker }

type binop =
  (* value comparisons *)
  | V_eq | V_ne | V_lt | V_le | V_gt | V_ge
  (* general comparisons *)
  | G_eq | G_ne | G_lt | G_le | G_gt | G_ge
  (* arithmetic *)
  | Plus | Minus | Mult | Div | Idiv | Mod
  (* logic *)
  | And | Or
  (* range *)
  | To

type expr =
  | E_literal of Atomic.t
  | E_var of string
  | E_context_item
  | E_seq of expr list  (** Comma; [E_seq []] is [()] . *)
  | E_flwor of { clauses : clause list; return_ : expr }
  | E_if of expr * expr * expr
  | E_quantified of {
      universal : bool;
      bindings : (string * expr) list;
      satisfies : expr;
    }
  | E_call of uqname * expr list
  | E_path of expr * step list
  | E_filter of expr * expr list  (** [primary[p1][p2]]. *)
  | E_element of {
      name : uqname;
      optional : bool;  (** The ALDSP [<E?>] extension. *)
      attributes : attribute_constructor list;
      content : expr list;
    }
  | E_binop of binop * expr * expr
  | E_unary_minus of expr
  | E_instance_of of expr * sequence_type
  | E_castable of expr * sequence_type
  | E_cast of expr * sequence_type

and step = {
  axis : axis;
  test : name_test;
  predicates : expr list;
}

and axis = Child | Attribute_axis

and name_test = Name of uqname | Wildcard

and attribute_constructor = {
  attr_name : uqname;
  attr_optional : bool;
  attr_value : attr_piece list;
}

and attr_piece = A_text of string | A_enclosed of expr

and clause =
  | C_for of (string * expr) list  (** [for $v in e, $w in e']. *)
  | C_let of (string * expr) list
  | C_where of expr
  | C_group of {
      aggregations : (string * string) list;  (** [group $v as $vs]. *)
      keys : (expr * string option) list;  (** [by e as $k]. *)
    }
  | C_order of (expr * bool) list  (** [(key, descending)]. *)

(** One [(::pragma name attr="v" ... ::)] annotation. *)
type pragma = { pragma_name : string; pragma_attrs : (string * string) list }

type function_decl = {
  fn_name : uqname;
  fn_params : (string * sequence_type option) list;
  fn_return : sequence_type option;
  fn_body : expr option;  (** [None] for [external] functions. *)
  fn_pragmas : pragma list;
}

type prolog = {
  namespaces : (string * string) list;  (** prefix -> URI. *)
  default_element_ns : string option;
  schema_imports : (string option * string) list;  (** prefix, URI. *)
  functions : function_decl list;
  variables : (string * sequence_type option * expr) list;
}

type query = {
  prolog : prolog;
  body : expr option;
  query_pragmas : pragma list;
      (** Pragmas preceding the query body: declarative hints (§9). *)
}

val empty_prolog : prolog

val uq : ?prefix:string -> string -> uqname

val pp_expr : Format.formatter -> expr -> unit
(** Debug rendering of an expression tree. *)
