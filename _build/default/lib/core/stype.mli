(** Static sequence types with {e structural} element typing.

    ALDSP departs from the XQuery specification in two ways that this module
    embodies (§3.1, §4.1 of the paper):

    - {b Structural typing}: the static type of a constructed element
      [<E>{e}</E>] is an element type named [E] whose content type is the
      structural type of [e] — construction does not erase the content's
      types. Consequently [data(<E>{$x}</E>/child::...)]-style
      construct-then-navigate patterns preserve types, which is what makes
      view unfolding effective.
    - {b Optimistic checking}: a call [f($x)] is statically valid iff the
      type of [$x] has a {e non-empty intersection} with the parameter type
      (the spec demands subtyping); a runtime [typematch] is inserted unless
      subtyping can be proven.

    A sequence type is a union of item types plus an occurrence range. *)

open Aldsp_xml

type item_type =
  | It_atomic of Atomic.atomic_type
  | It_element of element_type
  | It_attribute of Qname.t option * Atomic.atomic_type
  | It_text
  | It_node  (** any node *)
  | It_item  (** any item *)
  | It_error  (** the error type assigned by design-time recovery (§4.1) *)

and element_type = {
  elem_name : Qname.t option;  (** [None] = wildcard. *)
  content : t;  (** Structural content type. *)
  simple : Atomic.atomic_type option;
      (** Typed-leaf content, when the element has simple content. *)
}

(** Occurrence indicators, forming the lattice [0..0 <= ? <= * ], [1 <= +]. *)
and occurrence = { at_least_one : bool; at_most_one : bool }

and t = { items : item_type list; occ : occurrence }

val empty_sequence : t
val one : item_type -> t
val opt : item_type -> t
val star : item_type -> t
val plus : item_type -> t

val atomic : Atomic.atomic_type -> t
val any_item_star : t
val error_type : t
val is_error : t -> bool

val element :
  ?simple:Atomic.atomic_type -> ?content:t -> Qname.t option -> item_type

val with_occ : occurrence -> t -> t
val occ_one : occurrence
val occ_opt : occurrence
val occ_star : occurrence
val occ_plus : occurrence

val union : t -> t -> t
(** Type of [if .. then a else b] / mixed sequences. *)

val sequence : t -> t -> t
(** Type of [a, b]: item union, occurrences added. *)

val iterate : t -> t
(** Per-item type for a [for] variable: the item union with occurrence 1. *)

val atomized : t -> t
(** Static type of [fn:data] applied to a value of this type. *)

val item_subtype : item_type -> item_type -> bool

val subtype : t -> t -> bool
(** [subtype a b]: every value of [a] is a value of [b]. Structural on
    element content. *)

val intersects : t -> t -> bool
(** Non-empty intersection — the ALDSP optimistic function-call rule. An
    empty-able occurrence intersection counts only if both sides admit the
    empty sequence or share an item type. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
