type severity = Error | Warning

type t = { severity : severity; phase : string; message : string }

type mode = Fail_fast | Recover

exception Compile_error of t

type collector = { coll_mode : mode; mutable items : t list }

let collector coll_mode = { coll_mode; items = [] }
let mode c = c.coll_mode

let error c ~phase fmt =
  Printf.ksprintf
    (fun message ->
      let d = { severity = Error; phase; message } in
      match c.coll_mode with
      | Fail_fast -> raise (Compile_error d)
      | Recover -> c.items <- d :: c.items)
    fmt

let warning c ~phase fmt =
  Printf.ksprintf
    (fun message ->
      c.items <- { severity = Warning; phase; message } :: c.items)
    fmt

let diagnostics c = List.rev c.items

let has_errors c =
  List.exists (fun d -> d.severity = Error) c.items

let to_string d =
  Printf.sprintf "[%s] %s: %s"
    (match d.severity with Error -> "error" | Warning -> "warning")
    d.phase d.message

let pp ppf d = Format.pp_print_string ppf (to_string d)
