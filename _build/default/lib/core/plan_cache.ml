type 'plan t = {
  capacity : int;
  table : (string, 'plan) Hashtbl.t;
  mutable lru : string list;  (* most recent first *)
  mutable hit_count : int;
  mutable miss_count : int;
}

let create ~capacity =
  { capacity; table = Hashtbl.create 32; lru = []; hit_count = 0;
    miss_count = 0 }

let touch t key =
  t.lru <- key :: List.filter (fun k -> not (String.equal k key)) t.lru

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some plan ->
    t.hit_count <- t.hit_count + 1;
    touch t key;
    Some plan
  | None ->
    t.miss_count <- t.miss_count + 1;
    None

let add t key plan =
  if not (Hashtbl.mem t.table key) && Hashtbl.length t.table >= t.capacity
  then begin
    match List.rev t.lru with
    | oldest :: _ ->
      Hashtbl.remove t.table oldest;
      t.lru <- List.filter (fun k -> not (String.equal k oldest)) t.lru
    | [] -> ()
  end;
  Hashtbl.replace t.table key plan;
  touch t key

let clear t =
  Hashtbl.reset t.table;
  t.lru <- []

let size t = Hashtbl.length t.table
let hits t = t.hit_count
let misses t = t.miss_count
