(** The query evaluator (§5).

    Interprets the core algebra. FLWOR blocks run as lazy streams of
    binding tuples, so pipelined operators (for/let/where, pre-clustered
    grouping, joins over streamed inputs) work incrementally; only sorting,
    hash-building and group-by over unclustered input materialize.

    Join clauses execute with the method the optimizer picked (§5.2):
    nested loop, index nested loop (a hash probe on extracted equi-keys),
    or PP-k — parameter passing in blocks of [k]: fetch [k] left tuples,
    issue one disjunctive parameterized SQL query for all their matches,
    middleware-join the block, repeat (§4.2). The [fn-bea:] functions are
    evaluated as special forms: [async] arguments start on their own
    threads ahead of time so independent source calls overlap (§5.4);
    [fail-over] and [timeout] guard slow or unavailable sources (§5.6).

    A hook lets the server interpose the function cache (§5.5) and security
    filters (§7) around data-service function calls. *)

open Aldsp_xml

type rt

exception Eval_error of string

(** Wrapper invoked around every metadata function call; the default just
    runs the thunk. The server installs caching/auditing here. *)
type call_wrapper =
  Metadata.function_def -> Item.sequence list -> (unit -> Item.sequence) ->
  Item.sequence

val runtime : ?call_wrapper:call_wrapper -> Metadata.t -> rt

val eval :
  rt ->
  ?bindings:(Cexpr.var * Item.sequence) list ->
  Cexpr.t ->
  (Item.sequence, string) result

val eval_exn :
  rt -> ?bindings:(Cexpr.var * Item.sequence) list -> Cexpr.t -> Item.sequence
(** Like {!eval} but raises {!Eval_error}. *)

val call_function :
  rt -> Aldsp_xml.Qname.t -> Item.sequence list -> (Item.sequence, string) result
(** Invokes a registered data-service function directly (the service-call
    API of §2.2). *)

val matches_stype : Item.sequence -> Stype.t -> bool
(** The runtime [typematch] check. *)
