(** Compiler diagnostics and the two-mode error-handling policy of §4.1.

    The compiler "fails on first error when invoked for query compilation on
    the server at runtime, but recovers as gracefully as possible when being
    used by the XQuery editor at data service design time". [Fail_fast]
    raises through {!error}; [Recover] records the diagnostic and lets the
    caller substitute an error expression / error type and continue. *)

type severity = Error | Warning

type t = { severity : severity; phase : string; message : string }

type mode = Fail_fast | Recover

exception Compile_error of t

type collector

val collector : mode -> collector
val mode : collector -> mode

val error : collector -> phase:string -> ('a, unit, string, unit) format4 -> 'a
(** Reports an error: raises {!Compile_error} in [Fail_fast] mode, records
    it in [Recover] mode. *)

val warning : collector -> phase:string -> ('a, unit, string, unit) format4 -> 'a

val diagnostics : collector -> t list
val has_errors : collector -> bool

val to_string : t -> string
val pp : Format.formatter -> t -> unit
