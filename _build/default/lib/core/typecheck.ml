open Aldsp_xml
module C = Cexpr

type env = {
  registry : Metadata.t;
  vars : (C.var * Stype.t) list;
  diag : Diag.collector;
}

let env ?(vars = []) registry diag = { registry; vars; diag }

let phase = "typecheck"

let bind env var ty = { env with vars = (var, ty) :: env.vars }

let bool_type = Stype.atomic Atomic.T_boolean

(* child-step typing: collect matching element item types from the content
   of the input's element types *)
let type_child input_ty name =
  let collect item =
    match item with
    | Stype.It_element { content; _ } ->
      List.filter
        (function
          | Stype.It_element { elem_name = Some n; _ } -> Qname.equal n name
          | Stype.It_element { elem_name = None; _ } -> true
          | _ -> false)
        content.Stype.items
    | Stype.It_item | Stype.It_node ->
      [ Stype.element (Some name) ]
    | _ -> []
  in
  let items = List.concat_map collect input_ty.Stype.items in
  let items =
    if items = [] then [] else items
  in
  { Stype.items; occ = Stype.occ_star }

let numeric_result a b =
  let numeric_items ty =
    List.filter_map
      (function
        | Stype.It_atomic t when Atomic.is_numeric_type t -> Some (Stype.It_atomic t)
        | Stype.It_atomic Atomic.T_untyped -> Some (Stype.It_atomic Atomic.T_double)
        | Stype.It_atomic (Atomic.T_date_time | Atomic.T_date) ->
          Some (Stype.It_atomic Atomic.T_date_time)
        | Stype.It_error -> Some Stype.It_error
        | _ -> None)
      ty.Stype.items
  in
  let items =
    match numeric_items a @ numeric_items b with
    | [] -> [ Stype.It_atomic Atomic.T_double ]
    | items -> items
  in
  let occ =
    if a.Stype.occ.Stype.at_least_one && b.Stype.occ.Stype.at_least_one then
      Stype.occ_one
    else Stype.occ_opt
  in
  { Stype.items; occ }

let rec check env (e : C.t) : Stype.t * C.t =
  match e with
  | C.Const a -> (Stype.atomic (Atomic.type_of a), e)
  | C.Empty -> (Stype.empty_sequence, e)
  | C.Seq es ->
    let typed = List.map (check env) es in
    let ty =
      List.fold_left
        (fun acc (t, _) -> Stype.sequence acc t)
        Stype.empty_sequence typed
    in
    (ty, C.Seq (List.map snd typed))
  | C.Var v -> (
    match List.assoc_opt v env.vars with
    | Some ty -> (ty, e)
    | None ->
      Diag.error env.diag ~phase "unbound variable $%s" v;
      (Stype.error_type, e))
  | C.Elem { name; optional; attrs; content } ->
    let content_ty, content = check env content in
    let attrs =
      List.map
        (fun a ->
          let _, av = check env a.C.avalue in
          { a with C.avalue = av })
        attrs
    in
    (* structural typing: the element type's content is the inferred
       structural type of the constructed content (§3.1) *)
    let simple =
      match content_ty.Stype.items with
      | [ Stype.It_atomic t ] when content_ty.Stype.occ.Stype.at_most_one ->
        Some t
      | _ -> None
    in
    let item =
      match simple with
      | Some t -> Stype.element ~simple:t (Some name)
      | None -> Stype.element ~content:content_ty (Some name)
    in
    let ty = if optional then Stype.opt item else Stype.one item in
    (ty, C.Elem { name; optional; attrs; content })
  | C.Flwor { clauses; return_ } ->
    let env', clauses, forces_star = check_clauses env clauses in
    let ret_ty, return_ = check env' return_ in
    let ty =
      if forces_star then { ret_ty with Stype.occ = Stype.occ_star }
      else ret_ty
    in
    (ty, C.Flwor { clauses; return_ })
  | C.If { cond; then_; else_ } ->
    let _, cond = check env cond in
    let t_ty, then_ = check env then_ in
    let e_ty, else_ = check env else_ in
    (Stype.union t_ty e_ty, C.If { cond; then_; else_ })
  | C.Quantified { universal; var; source; pred } ->
    let src_ty, source = check env source in
    let env' = bind env var (Stype.iterate src_ty) in
    let _, pred = check env' pred in
    (bool_type, C.Quantified { universal; var; source; pred })
  | C.Call { fn; args } -> check_call env fn args
  | C.Child (input, name) ->
    let in_ty, input = check env input in
    (type_child in_ty name, C.Child (input, name))
  | C.Child_wild input ->
    let _, input = check env input in
    (Stype.star Stype.It_node, C.Child_wild input)
  | C.Attr_of (input, name) ->
    let _, input = check env input in
    (Stype.opt (Stype.It_atomic Atomic.T_untyped), C.Attr_of (input, name))
  | C.Filter { input; dot; pos; pred } ->
    let in_ty, input = check env input in
    let item_ty = Stype.iterate in_ty in
    let env' = bind (bind env dot item_ty) pos (Stype.atomic Atomic.T_integer) in
    let _, pred = check env' pred in
    ( { in_ty with Stype.occ = { in_ty.Stype.occ with Stype.at_least_one = false } },
      C.Filter { input; dot; pos; pred } )
  | C.Data input ->
    let in_ty, input = check env input in
    (Stype.atomized in_ty, C.Data input)
  | C.Ebv input ->
    let _, input = check env input in
    (bool_type, C.Ebv input)
  | C.Binop (op, a, b) -> (
    let a_ty, a = check env a in
    let b_ty, b = check env b in
    let e = C.Binop (op, a, b) in
    match op with
    | C.V_eq | C.V_ne | C.V_lt | C.V_le | C.V_gt | C.V_ge ->
      let occ =
        if
          a_ty.Stype.occ.Stype.at_least_one
          && b_ty.Stype.occ.Stype.at_least_one
        then Stype.occ_one
        else Stype.occ_opt
      in
      (Stype.with_occ occ bool_type, e)
    | C.G_eq | C.G_ne | C.G_lt | C.G_le | C.G_gt | C.G_ge -> (bool_type, e)
    | C.And | C.Or -> (bool_type, e)
    | C.Add | C.Sub | C.Mul | C.Div | C.Idiv | C.Mod ->
      (numeric_result a_ty b_ty, e)
    | C.Range ->
      (Stype.star (Stype.It_atomic Atomic.T_integer), e))
  | C.Typematch (input, ty) ->
    let _, input = check env input in
    (ty, C.Typematch (input, ty))
  | C.Cast (input, ty) ->
    let in_ty, input = check env input in
    let occ =
      if in_ty.Stype.occ.Stype.at_least_one then Stype.occ_one else Stype.occ_opt
    in
    (Stype.with_occ occ (Stype.atomic ty), C.Cast (input, ty))
  | C.Castable (input, ty) ->
    let _, input = check env input in
    (bool_type, C.Castable (input, ty))
  | C.Instance_of (input, ty) ->
    let _, input = check env input in
    (bool_type, C.Instance_of (input, ty))
  | C.Error_expr _ -> (Stype.error_type, e)

and check_call env fn args =
  let typed_args = List.map (check env) args in
  let arity = List.length args in
  (* the optimistic rule: accept on non-empty intersection, insert a
     typematch unless subtyping is provable (§4.1) *)
  let apply_rule (params : Stype.t list) (args : (Stype.t * C.t) list) =
    List.map2
      (fun expected (actual_ty, arg) ->
        (* function conversion: atomize node arguments when the parameter
           expects atomic values *)
        let expects_atomic =
          expected.Stype.items <> []
          && List.for_all
               (function
                 | Stype.It_atomic _ | Stype.It_error -> true
                 | _ -> false)
               expected.Stype.items
        in
        let has_nodes =
          List.exists
            (function
              | Stype.It_element _ | Stype.It_attribute _ | Stype.It_text
              | Stype.It_node | Stype.It_item ->
                true
              | _ -> false)
            actual_ty.Stype.items
        in
        let actual_ty, arg =
          if expects_atomic && has_nodes then
            (Stype.atomized actual_ty, C.Data arg)
          else (actual_ty, arg)
        in
        if Stype.is_error actual_ty then arg
        else if Stype.subtype actual_ty expected then arg
        else if Stype.intersects actual_ty expected then
          C.Typematch (arg, expected)
        else begin
          Diag.error env.diag ~phase
            "static type mismatch in call to %s: %s does not intersect %s"
            (Qname.to_string fn) (Stype.to_string actual_ty)
            (Stype.to_string expected);
          C.Error_expr "static type mismatch"
        end)
      params args
  in
  match Metadata.resolve_call env.registry fn arity with
  | Some fd ->
    let params = List.map snd fd.Metadata.fd_params in
    let args = apply_rule params typed_args in
    (* canonicalize the name so later phases see the registered function *)
    (fd.Metadata.fd_return, C.Call { fn = fd.Metadata.fd_name; args })
  | None -> (
    match Fn_lib.find fn arity with
    | Some b ->
      (* pad/cycle declared param types for variadic builtins *)
      let rec take_params declared n =
        if n = 0 then []
        else
          match declared with
          | [] -> [ Stype.any_item_star ]
          | [ last ] -> last :: take_params [ last ] (n - 1)
          | p :: rest -> p :: take_params rest (n - 1)
      in
      let params = take_params b.Fn_lib.param_types arity in
      let args = apply_rule params typed_args in
      (b.Fn_lib.return_type arity, C.Call { fn; args })
    | None ->
      Diag.error env.diag ~phase "unknown function %s/%d" (Qname.to_string fn)
        arity;
      (Stype.error_type, C.Error_expr (Printf.sprintf "unknown function %s" (Qname.to_string fn))))

and check_clauses env clauses =
  let rec go env acc forces_star = function
    | [] -> (env, List.rev acc, forces_star)
    | C.For { var; source } :: rest ->
      let src_ty, source = check env source in
      let env' = bind env var (Stype.iterate src_ty) in
      go env' (C.For { var; source } :: acc) true rest
    | C.Let { var; value } :: rest ->
      let v_ty, value = check env value in
      let env' = bind env var v_ty in
      go env' (C.Let { var; value } :: acc) forces_star rest
    | C.Where cond :: rest ->
      let _, cond = check env cond in
      go env (C.Where cond :: acc) forces_star rest
    | C.Group { aggs; keys; clustered } :: rest ->
      let keys =
        List.map
          (fun (e, v) ->
            let ty, e = check env e in
            (e, v, ty))
          keys
      in
      let env' =
        List.fold_left
          (fun env (v_in, v_out) ->
            let in_ty =
              match List.assoc_opt v_in env.vars with
              | Some ty -> ty
              | None -> Stype.any_item_star
            in
            bind env v_out { in_ty with Stype.occ = Stype.occ_star })
          env aggs
      in
      let env' =
        List.fold_left
          (fun env (_, v, ty) -> bind env v (Stype.iterate ty))
          env' keys
      in
      go env'
        (C.Group { aggs; keys = List.map (fun (e, v, _) -> (e, v)) keys; clustered } :: acc)
        forces_star rest
    | C.Order { keys } :: rest ->
      let keys = List.map (fun (e, d) -> (snd (check env e), d)) keys in
      go env (C.Order { keys } :: acc) forces_star rest
    | C.Join { kind; method_; right; on_; export } :: rest ->
      (* joins are introduced after type checking; type them loosely *)
      let env_r, right, _ = go env [] forces_star right in
      let _, on_ = check env_r on_ in
      let env', export =
        match export with
        | C.Bindings -> (env_r, C.Bindings)
        | C.Grouped { gvar; gexpr } ->
          let g_ty, gexpr = check env_r gexpr in
          ( bind env gvar { g_ty with Stype.occ = Stype.occ_star },
            C.Grouped { gvar; gexpr } )
      in
      go env' (C.Join { kind; method_; right; on_; export } :: acc) true rest
    | C.Rel r :: rest ->
      let env' =
        List.fold_left
          (fun env b -> bind env b.C.bvar (Stype.opt (Stype.It_atomic b.C.btype)))
          env r.C.binds
      in
      go env' (C.Rel r :: acc) true rest
  in
  go env [] false clauses

let check_function_body env ~declared body =
  let body_ty, body = check env body in
  if Stype.is_error body_ty || Stype.subtype body_ty declared then
    (body_ty, body)
  else if Stype.intersects body_ty declared then
    (declared, C.Typematch (body, declared))
  else begin
    Diag.error env.diag ~phase
      "function body type %s does not intersect the declared return type %s"
      (Stype.to_string body_ty) (Stype.to_string declared);
    (Stype.error_type, C.Error_expr "return type mismatch")
  end
