(** Static type checking and inference (phase 4 of §3.3).

    Implements ALDSP's two departures from the XQuery specification
    (§3.1, §4.1):

    - element constructors are typed {e structurally} — the inferred content
      type survives construction, so navigation back into a constructed
      element keeps precise types;
    - function calls use the {e optimistic} rule: [f($x)] is statically
      valid iff the type of [$x] has a non-empty intersection with the
      parameter type. When the argument cannot be {e proven} a subtype, a
      [Typematch] operator is inserted to enforce the XQuery semantics at
      runtime; when it can, no check is emitted.

    In [Recover] mode, type errors assign the error type to the offending
    expression and analysis continues (§4.1). *)

type env

val env :
  ?vars:(Cexpr.var * Stype.t) list -> Metadata.t -> Diag.collector -> env

val check : env -> Cexpr.t -> Stype.t * Cexpr.t
(** Infers the static type and returns the expression with [Typematch]
    operators inserted where the optimistic rule requires them. *)

val check_function_body :
  env -> declared:Stype.t -> Cexpr.t -> Stype.t * Cexpr.t
(** Checks a function body against its declared return type with the same
    optimistic rule. *)
