(** Auditing (§7).

    "The ALDSP runtime has a fairly extensive set of auditing capabilities
    that utilize an auditing security service. Auditing can be
    administratively enabled in order to monitor security decisions, data
    values, and other operational behavior at varying levels of detail." *)

type level = Off | Summary | Detailed

type event = {
  category : string;  (** e.g. "security", "service-call", "update" *)
  summary : string;
  detail : string option;  (** Only recorded at [Detailed] level. *)
}

type t

val create : ?level:level -> unit -> t
val set_level : t -> level -> unit
val level : t -> level

val record : t -> category:string -> ?detail:string -> string -> unit
(** No-op at [Off]; drops [detail] at [Summary]. *)

val events : t -> event list
(** Oldest first. *)

val clear : t -> unit
