(** A textual rendering of a data service's design view (Figure 1).

    The graphical designer shows the data service's shape in the center,
    its read and navigation methods on the left, and the underlying data
    services it depends on on the right. This module produces the same
    information as text: the shape (from the registered schema, or
    reconstructed from the lineage provider's return type), the methods by
    kind with their signatures, and the dependencies discovered by
    scanning the function bodies for calls into other data services. *)

val dependencies : Metadata.t -> Metadata.data_service -> string list
(** Names of the data services whose functions this service's bodies
    call. *)

val render : Metadata.t -> string -> (string, string) result
(** [render registry name] renders the named data service's design view;
    fails when the service is unknown. *)
