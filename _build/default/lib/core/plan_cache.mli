(** The query plan cache (§2.2).

    "ALDSP maintains a query plan cache in order to avoid repeatedly
    compiling popular queries from the same or different users." An LRU
    map from query text to compiled plan; compiled plans are reusable
    because parameters are bound at execution time and security filtering
    happens post-evaluation (§7). *)

type 'plan t

val create : capacity:int -> 'plan t

val find : 'plan t -> string -> 'plan option
(** Refreshes the entry's recency on hit. *)

val add : 'plan t -> string -> 'plan -> unit
(** Inserts, evicting the least recently used entry at capacity. *)

val clear : 'plan t -> unit
val size : 'plan t -> int
val hits : 'plan t -> int
val misses : 'plan t -> int
