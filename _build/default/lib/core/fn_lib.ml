open Aldsp_xml
module Sql = Aldsp_relational.Sql_ast

type sql_translation =
  | Sql_aggregate of Sql.agg_kind
  | Sql_function of Sql.func
  | Sql_concat
  | Sql_special
  | Not_pushable

type builtin = {
  bname : Qname.t;
  min_arity : int;
  max_arity : int option;
  param_types : Stype.t list;
  return_type : int -> Stype.t;
  translation : sql_translation;
  special : bool;
  eval : Item.sequence list -> (Item.sequence, string) result;
}

let ( let* ) = Result.bind

let no_eval name _ =
  Error (Printf.sprintf "%s is evaluated by the engine, not directly" name)

let atomize_arg seq = Item.atomize seq

let singleton_string seq =
  match seq with
  | [] -> Ok None
  | [ item ] -> Ok (Some (Item.string_value item))
  | _ -> Error "expected at most one item"

let required_string name seq =
  let* s = singleton_string seq in
  match s with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "%s: empty sequence where a string is required" name)

let singleton_number name seq =
  let* atoms = atomize_arg seq in
  match atoms with
  | [] -> Ok None
  | [ a ] -> (
    match a with
    | Atomic.Integer _ | Atomic.Decimal _ | Atomic.Double _ -> Ok (Some a)
    | Atomic.Untyped s -> (
      match float_of_string_opt s with
      | Some f -> Ok (Some (Atomic.Double f))
      | None -> Error (Printf.sprintf "%s: %S is not a number" name s))
    | _ ->
      Error
        (Printf.sprintf "%s: %s is not numeric" name
           (Atomic.type_name (Atomic.type_of a))))
  | _ -> Error (Printf.sprintf "%s: expected at most one number" name)

let numeric_fold name op args =
  match args with
  | [ seq ] ->
    let* atoms = atomize_arg seq in
    let rec go acc = function
      | [] -> Ok acc
      | a :: rest ->
        let a =
          match a with
          | Atomic.Untyped s -> (
            match float_of_string_opt s with
            | Some f -> Ok (Atomic.Double f)
            | None -> Error (Printf.sprintf "%s: %S is not a number" name s))
          | a -> Ok a
        in
        let* a = a in
        let* acc' = op acc a in
        go acc' rest
    in
    (match atoms with
    | [] -> Ok []
    | first :: rest ->
      let first =
        match first with
        | Atomic.Untyped s -> (
          match float_of_string_opt s with
          | Some f -> Ok (Atomic.Double f)
          | None -> Error (Printf.sprintf "%s: %S is not a number" name s))
        | a -> Ok a
      in
      let* first = first in
      let* result = go first rest in
      Ok [ Item.Atom result ])
  | _ -> Error (Printf.sprintf "%s expects one argument" name)

let compare_fold name keep args =
  match args with
  | [ seq ] ->
    let* atoms = atomize_arg seq in
    (match atoms with
    | [] -> Ok []
    | first :: rest ->
      let rec go acc = function
        | [] -> Ok [ Item.Atom acc ]
        | a :: tail ->
          let* c = Atomic.compare_values a acc in
          go (if keep c then a else acc) tail
      in
      Result.map_error (fun e -> name ^ ": " ^ e) (go first rest))
  | _ -> Error (Printf.sprintf "%s expects one argument" name)

let star_item = Stype.any_item_star
let one_int = Stype.atomic Atomic.T_integer
let one_bool = Stype.atomic Atomic.T_boolean
let one_string = Stype.atomic Atomic.T_string
let opt_string = Stype.opt (Stype.It_atomic Atomic.T_string)
let opt_atom = { Stype.items = [ Stype.It_atomic Atomic.T_untyped; Stype.It_atomic Atomic.T_integer; Stype.It_atomic Atomic.T_decimal; Stype.It_atomic Atomic.T_double; Stype.It_atomic Atomic.T_string; Stype.It_atomic Atomic.T_boolean; Stype.It_atomic Atomic.T_date; Stype.It_atomic Atomic.T_date_time ]; occ = Stype.occ_opt }
let star_atom = { opt_atom with Stype.occ = Stype.occ_star }

let date_component name field args =
  let ( let* ) = Result.bind in
  match args with
  | [ seq ] -> (
    let* atoms = Item.atomize seq in
    match atoms with
    | [] -> Ok []
    | [ Atomic.Date_time t ] ->
      Ok [ Item.integer (field (Atomic.date_of_epoch t)) ]
    | [ Atomic.Date d ] -> Ok [ Item.integer (field d) ]
    | _ -> Error (name ^ ": expected a dateTime"))
  | _ -> Error (name ^ " expects one argument")

let mk ?(translation = Not_pushable) ?(special = false) ?max_arity name
    ~min_arity ~params ~returns eval =
  { bname = name;
    min_arity;
    max_arity = (match max_arity with Some m -> m | None -> Some min_arity);
    param_types = params;
    return_type = (fun _ -> returns);
    translation;
    special;
    eval }

let all =
  [ (* ---- cardinality / aggregates ---- *)
    mk (Names.fn "count") ~min_arity:1 ~params:[ star_item ] ~returns:one_int
      ~translation:(Sql_aggregate Sql.Count)
      (function
        | [ seq ] -> Ok [ Item.integer (List.length seq) ]
        | _ -> Error "count expects one argument");
    mk (Names.fn "sum") ~min_arity:1 ~params:[ star_atom ] ~returns:opt_atom
      ~translation:(Sql_aggregate Sql.Sum)
      (fun args ->
        match numeric_fold "sum" Atomic.add args with
        | Ok [] -> Ok [ Item.integer 0 ]
        | r -> r);
    mk (Names.fn "avg") ~min_arity:1 ~params:[ star_atom ] ~returns:opt_atom
      ~translation:(Sql_aggregate Sql.Avg)
      (fun args ->
        match args with
        | [ [] ] -> Ok []
        | [ seq ] -> (
          let* total = numeric_fold "avg" Atomic.add [ seq ] in
          match total with
          | [ Item.Atom t ] ->
            let* r = Atomic.div t (Atomic.Integer (List.length seq)) in
            Ok [ Item.Atom r ]
          | _ -> Ok [])
        | _ -> Error "avg expects one argument");
    mk (Names.fn "min") ~min_arity:1 ~params:[ star_atom ] ~returns:opt_atom
      ~translation:(Sql_aggregate Sql.Min)
      (compare_fold "min" (fun c -> c < 0));
    mk (Names.fn "max") ~min_arity:1 ~params:[ star_atom ] ~returns:opt_atom
      ~translation:(Sql_aggregate Sql.Max)
      (compare_fold "max" (fun c -> c > 0));
    (* ---- sequences ---- *)
    mk (Names.fn "empty") ~min_arity:1 ~params:[ star_item ] ~returns:one_bool
      ~translation:Sql_special
      (function
        | [ seq ] -> Ok [ Item.boolean (seq = []) ]
        | _ -> Error "empty expects one argument");
    mk (Names.fn "exists") ~min_arity:1 ~params:[ star_item ]
      ~returns:one_bool ~translation:Sql_special
      (function
        | [ seq ] -> Ok [ Item.boolean (seq <> []) ]
        | _ -> Error "exists expects one argument");
    mk (Names.fn "subsequence") ~min_arity:2 ~max_arity:(Some 3)
      ~params:[ star_item; Stype.atomic Atomic.T_double; Stype.atomic Atomic.T_double ]
      ~returns:star_item ~translation:Sql_special
      (fun args ->
        let to_num seq =
          match singleton_number "subsequence" seq with
          | Ok (Some a) -> (
            match a with
            | Atomic.Integer i -> Ok (float_of_int i)
            | Atomic.Decimal f | Atomic.Double f -> Ok f
            | _ -> Error "subsequence: non-numeric argument")
          | Ok None -> Error "subsequence: empty position"
          | Error e -> Error e
        in
        match args with
        | [ seq; start ] ->
          let* s = to_num start in
          let s = int_of_float (Float.round s) in
          Ok (List.filteri (fun i _ -> i + 1 >= s) seq)
        | [ seq; start; len ] ->
          let* s = to_num start in
          let* l = to_num len in
          let s = int_of_float (Float.round s) in
          let l = int_of_float (Float.round l) in
          Ok (List.filteri (fun i _ -> i + 1 >= s && i + 1 < s + l) seq)
        | _ -> Error "subsequence expects 2 or 3 arguments");
    mk (Names.fn "distinct-values") ~min_arity:1 ~params:[ star_atom ]
      ~returns:star_atom
      (function
        | [ seq ] ->
          let* atoms = atomize_arg seq in
          let result =
            List.fold_left
              (fun acc a ->
                if List.exists (fun b -> Atomic.general_equal a b) acc then acc
                else a :: acc)
              [] atoms
          in
          Ok (List.rev_map (fun a -> Item.Atom a) result)
        | _ -> Error "distinct-values expects one argument");
    mk (Names.fn "reverse") ~min_arity:1 ~params:[ star_item ]
      ~returns:star_item
      (function
        | [ seq ] -> Ok (List.rev seq)
        | _ -> Error "reverse expects one argument");
    mk (Names.fn "insert-before") ~min_arity:3
      ~params:[ star_item; one_int; star_item ] ~returns:star_item
      (function
        | [ seq; pos; ins ] -> (
          let* n = singleton_number "insert-before" pos in
          match n with
          | Some (Atomic.Integer p) ->
            let p = max 1 p in
            let before = List.filteri (fun i _ -> i + 1 < p) seq in
            let after = List.filteri (fun i _ -> i + 1 >= p) seq in
            Ok (before @ ins @ after)
          | _ -> Error "insert-before: bad position")
        | _ -> Error "insert-before expects three arguments");
    (* ---- booleans ---- *)
    mk (Names.fn "not") ~min_arity:1 ~params:[ star_item ] ~returns:one_bool
      ~translation:Sql_special
      (function
        | [ seq ] ->
          let* b = Item.ebv seq in
          Ok [ Item.boolean (not b) ]
        | _ -> Error "not expects one argument");
    mk (Names.fn "true") ~min_arity:0 ~params:[] ~returns:one_bool (fun _ ->
        Ok [ Item.boolean true ]);
    mk (Names.fn "false") ~min_arity:0 ~params:[] ~returns:one_bool (fun _ ->
        Ok [ Item.boolean false ]);
    mk (Names.fn "boolean") ~min_arity:1 ~params:[ star_item ]
      ~returns:one_bool
      (function
        | [ seq ] ->
          let* b = Item.ebv seq in
          Ok [ Item.boolean b ]
        | _ -> Error "boolean expects one argument");
    (* ---- strings ---- *)
    mk (Names.fn "string") ~min_arity:1 ~params:[ star_item ]
      ~returns:one_string
      (function
        | [ seq ] -> (
          let* s = singleton_string seq in
          match s with
          | Some s -> Ok [ Item.string s ]
          | None -> Ok [ Item.string "" ])
        | _ -> Error "string expects one argument");
    mk (Names.fn "concat") ~min_arity:2 ~max_arity:(Some 16)
      ~params:[ opt_atom; opt_atom ] ~returns:one_string
      ~translation:Sql_concat
      (fun args ->
        let* parts =
          List.fold_left
            (fun acc seq ->
              let* acc = acc in
              let* s = singleton_string seq in
              Ok (Option.value s ~default:"" :: acc))
            (Ok []) args
        in
        Ok [ Item.string (String.concat "" (List.rev parts)) ]);
    mk (Names.fn "string-join") ~min_arity:2 ~params:[ star_atom; one_string ]
      ~returns:one_string
      (function
        | [ seq; sep ] ->
          let* sep = required_string "string-join" sep in
          Ok [ Item.string (String.concat sep (List.map Item.string_value seq)) ]
        | _ -> Error "string-join expects two arguments");
    mk (Names.fn "contains") ~min_arity:2 ~params:[ opt_string; opt_string ]
      ~returns:one_bool
      (function
        | [ a; b ] ->
          let* hay = singleton_string a in
          let* needle = singleton_string b in
          let hay = Option.value hay ~default:"" in
          let needle = Option.value needle ~default:"" in
          let contained =
            let nh = String.length hay and nn = String.length needle in
            let rec at i =
              i + nn <= nh && (String.sub hay i nn = needle || at (i + 1))
            in
            nn = 0 || at 0
          in
          Ok [ Item.boolean contained ]
        | _ -> Error "contains expects two arguments");
    mk (Names.fn "starts-with") ~min_arity:2 ~params:[ opt_string; opt_string ]
      ~returns:one_bool
      (function
        | [ a; b ] ->
          let* s = singleton_string a in
          let* p = singleton_string b in
          let s = Option.value s ~default:"" in
          let p = Option.value p ~default:"" in
          Ok
            [ Item.boolean
                (String.length p <= String.length s
                && String.sub s 0 (String.length p) = p) ]
        | _ -> Error "starts-with expects two arguments");
    mk (Names.fn "string-length") ~min_arity:1 ~params:[ opt_string ]
      ~returns:one_int
      ~translation:(Sql_function Sql.Char_length)
      (function
        | [ seq ] ->
          let* s = singleton_string seq in
          Ok [ Item.integer (String.length (Option.value s ~default:"")) ]
        | _ -> Error "string-length expects one argument");
    mk (Names.fn "substring") ~min_arity:2 ~max_arity:(Some 3)
      ~params:[ opt_string; Stype.atomic Atomic.T_double; Stype.atomic Atomic.T_double ]
      ~returns:one_string
      ~translation:(Sql_function Sql.Substr)
      (fun args ->
        let get_num seq =
          match singleton_number "substring" seq with
          | Ok (Some (Atomic.Integer i)) -> Ok i
          | Ok (Some (Atomic.Decimal f)) | Ok (Some (Atomic.Double f)) ->
            Ok (int_of_float (Float.round f))
          | Ok (Some _) | Ok None -> Error "substring: bad position"
          | Error e -> Error e
        in
        match args with
        | [ s; start ] ->
          let* s = singleton_string s in
          let s = Option.value s ~default:"" in
          let* st = get_num start in
          let st = max 1 st in
          if st > String.length s then Ok [ Item.string "" ]
          else Ok [ Item.string (String.sub s (st - 1) (String.length s - st + 1)) ]
        | [ s; start; len ] ->
          let* s = singleton_string s in
          let s = Option.value s ~default:"" in
          let* st = get_num start in
          let* l = get_num len in
          let st = max 1 st in
          if st > String.length s || l <= 0 then Ok [ Item.string "" ]
          else
            let l = min l (String.length s - st + 1) in
            Ok [ Item.string (String.sub s (st - 1) l) ]
        | _ -> Error "substring expects 2 or 3 arguments");
    mk (Names.fn "upper-case") ~min_arity:1 ~params:[ opt_string ]
      ~returns:one_string
      ~translation:(Sql_function Sql.Upper)
      (function
        | [ seq ] ->
          let* s = singleton_string seq in
          Ok [ Item.string (String.uppercase_ascii (Option.value s ~default:"")) ]
        | _ -> Error "upper-case expects one argument");
    mk (Names.fn "lower-case") ~min_arity:1 ~params:[ opt_string ]
      ~returns:one_string
      ~translation:(Sql_function Sql.Lower)
      (function
        | [ seq ] ->
          let* s = singleton_string seq in
          Ok [ Item.string (String.lowercase_ascii (Option.value s ~default:"")) ]
        | _ -> Error "lower-case expects one argument");
    mk (Names.fn "normalize-space") ~min_arity:1 ~params:[ opt_string ]
      ~returns:one_string
      ~translation:(Sql_function Sql.Trim)
      (function
        | [ seq ] ->
          let* s = singleton_string seq in
          let words =
            String.split_on_char ' ' (Option.value s ~default:"")
            |> List.concat_map (String.split_on_char '\t')
            |> List.concat_map (String.split_on_char '\n')
            |> List.filter (fun w -> w <> "")
          in
          Ok [ Item.string (String.concat " " words) ]
        | _ -> Error "normalize-space expects one argument");
    (* ---- numerics ---- *)
    mk (Names.fn "abs") ~min_arity:1 ~params:[ opt_atom ] ~returns:opt_atom
      ~translation:(Sql_function Sql.Abs)
      (fun args ->
        match args with
        | [ seq ] -> (
          let* n = singleton_number "abs" seq in
          match n with
          | None -> Ok []
          | Some (Atomic.Integer i) -> Ok [ Item.integer (abs i) ]
          | Some (Atomic.Decimal f) -> Ok [ Item.Atom (Atomic.Decimal (Float.abs f)) ]
          | Some (Atomic.Double f) -> Ok [ Item.Atom (Atomic.Double (Float.abs f)) ]
          | Some _ -> Error "abs: non-numeric")
        | _ -> Error "abs expects one argument");
    mk (Names.fn "floor") ~min_arity:1 ~params:[ opt_atom ] ~returns:opt_atom
      (fun args ->
        match args with
        | [ seq ] -> (
          let* n = singleton_number "floor" seq in
          match n with
          | None -> Ok []
          | Some (Atomic.Integer i) -> Ok [ Item.integer i ]
          | Some (Atomic.Decimal f) -> Ok [ Item.Atom (Atomic.Decimal (Float.floor f)) ]
          | Some (Atomic.Double f) -> Ok [ Item.Atom (Atomic.Double (Float.floor f)) ]
          | Some _ -> Error "floor: non-numeric")
        | _ -> Error "floor expects one argument");
    mk (Names.fn "ceiling") ~min_arity:1 ~params:[ opt_atom ] ~returns:opt_atom
      (fun args ->
        match args with
        | [ seq ] -> (
          let* n = singleton_number "ceiling" seq in
          match n with
          | None -> Ok []
          | Some (Atomic.Integer i) -> Ok [ Item.integer i ]
          | Some (Atomic.Decimal f) -> Ok [ Item.Atom (Atomic.Decimal (Float.ceil f)) ]
          | Some (Atomic.Double f) -> Ok [ Item.Atom (Atomic.Double (Float.ceil f)) ]
          | Some _ -> Error "ceiling: non-numeric")
        | _ -> Error "ceiling expects one argument");
    mk (Names.fn "round") ~min_arity:1 ~params:[ opt_atom ] ~returns:opt_atom
      (fun args ->
        match args with
        | [ seq ] -> (
          let* n = singleton_number "round" seq in
          match n with
          | None -> Ok []
          | Some (Atomic.Integer i) -> Ok [ Item.integer i ]
          | Some (Atomic.Decimal f) -> Ok [ Item.Atom (Atomic.Decimal (Float.round f)) ]
          | Some (Atomic.Double f) -> Ok [ Item.Atom (Atomic.Double (Float.round f)) ]
          | Some _ -> Error "round: non-numeric")
        | _ -> Error "round expects one argument");
    mk (Names.fn "ends-with") ~min_arity:2 ~params:[ opt_string; opt_string ]
      ~returns:one_bool
      (function
        | [ a; b ] ->
          let* s = singleton_string a in
          let* p = singleton_string b in
          let s = Option.value s ~default:"" in
          let p = Option.value p ~default:"" in
          let ns = String.length s and np = String.length p in
          Ok [ Item.boolean (np <= ns && String.sub s (ns - np) np = p) ]
        | _ -> Error "ends-with expects two arguments");
    mk (Names.fn "substring-before") ~min_arity:2
      ~params:[ opt_string; opt_string ] ~returns:one_string
      (function
        | [ a; b ] -> (
          let* s = singleton_string a in
          let* p = singleton_string b in
          let s = Option.value s ~default:"" in
          let p = Option.value p ~default:"" in
          if p = "" then Ok [ Item.string "" ]
          else
            let np = String.length p in
            let rec find i =
              if i + np > String.length s then None
              else if String.sub s i np = p then Some i
              else find (i + 1)
            in
            match find 0 with
            | Some i -> Ok [ Item.string (String.sub s 0 i) ]
            | None -> Ok [ Item.string "" ])
        | _ -> Error "substring-before expects two arguments");
    mk (Names.fn "substring-after") ~min_arity:2
      ~params:[ opt_string; opt_string ] ~returns:one_string
      (function
        | [ a; b ] -> (
          let* s = singleton_string a in
          let* p = singleton_string b in
          let s = Option.value s ~default:"" in
          let p = Option.value p ~default:"" in
          if p = "" then Ok [ Item.string s ]
          else
            let np = String.length p in
            let rec find i =
              if i + np > String.length s then None
              else if String.sub s i np = p then Some (i + np)
              else find (i + 1)
            in
            match find 0 with
            | Some i -> Ok [ Item.string (String.sub s i (String.length s - i)) ]
            | None -> Ok [ Item.string "" ])
        | _ -> Error "substring-after expects two arguments");
    mk (Names.fn "translate") ~min_arity:3
      ~params:[ opt_string; one_string; one_string ] ~returns:one_string
      (function
        | [ a; map_from; map_to ] ->
          let* s = singleton_string a in
          let* from_ = required_string "translate" map_from in
          let* to_ = required_string "translate" map_to in
          let s = Option.value s ~default:"" in
          let buf = Buffer.create (String.length s) in
          String.iter
            (fun c ->
              match String.index_opt from_ c with
              | Some i ->
                if i < String.length to_ then Buffer.add_char buf to_.[i]
              | None -> Buffer.add_char buf c)
            s;
          Ok [ Item.string (Buffer.contents buf) ]
        | _ -> Error "translate expects three arguments");
    mk (Names.fn "index-of") ~min_arity:2 ~params:[ star_atom; opt_atom ]
      ~returns:(Stype.star (Stype.It_atomic Atomic.T_integer))
      (function
        | [ seq; target ] -> (
          let* atoms = atomize_arg seq in
          let* t = atomize_arg target in
          match t with
          | [ t ] ->
            Ok
              (List.concat
                 (List.mapi
                    (fun i a ->
                      if Atomic.general_equal a t then [ Item.integer (i + 1) ]
                      else [])
                    atoms))
          | _ -> Error "index-of: second argument must be a single atomic")
        | _ -> Error "index-of expects two arguments");
    mk (Names.fn "remove") ~min_arity:2 ~params:[ star_item; one_int ]
      ~returns:star_item
      (function
        | [ seq; pos ] -> (
          let* atoms = atomize_arg pos in
          match atoms with
          | [ Atomic.Integer p ] ->
            Ok (List.filteri (fun i _ -> i + 1 <> p) seq)
          | _ -> Error "remove: bad position")
        | _ -> Error "remove expects two arguments");
    mk (Names.fn "zero-or-one") ~min_arity:1 ~params:[ star_item ]
      ~returns:(Stype.opt Stype.It_item)
      (function
        | [ ([] | [ _ ]) as seq ] -> Ok seq
        | [ _ ] -> Error "fn:zero-or-one: more than one item"
        | _ -> Error "zero-or-one expects one argument");
    mk (Names.fn "exactly-one") ~min_arity:1 ~params:[ star_item ]
      ~returns:(Stype.one Stype.It_item)
      (function
        | [ [ item ] ] -> Ok [ item ]
        | [ _ ] -> Error "fn:exactly-one: not exactly one item"
        | _ -> Error "exactly-one expects one argument");
    mk (Names.fn "one-or-more") ~min_arity:1 ~params:[ star_item ]
      ~returns:(Stype.plus Stype.It_item)
      (function
        | [ (_ :: _ as seq) ] -> Ok seq
        | [ [] ] -> Error "fn:one-or-more: empty sequence"
        | _ -> Error "one-or-more expects one argument");
    (* ---- date component extractors ---- *)
    mk (Names.fn "year-from-dateTime") ~min_arity:1 ~params:[ opt_atom ]
      ~returns:(Stype.opt (Stype.It_atomic Atomic.T_integer))
      (fun args -> date_component "year-from-dateTime" (fun d -> d.Atomic.year) args);
    mk (Names.fn "month-from-dateTime") ~min_arity:1 ~params:[ opt_atom ]
      ~returns:(Stype.opt (Stype.It_atomic Atomic.T_integer))
      (fun args -> date_component "month-from-dateTime" (fun d -> d.Atomic.month) args);
    mk (Names.fn "day-from-dateTime") ~min_arity:1 ~params:[ opt_atom ]
      ~returns:(Stype.opt (Stype.It_atomic Atomic.T_integer))
      (fun args -> date_component "day-from-dateTime" (fun d -> d.Atomic.day) args);
    (* ---- fn-bea extensions (special: handled by the evaluator) ---- *)
    mk Names.async ~min_arity:1 ~params:[ star_item ] ~returns:star_item
      ~special:true (no_eval "fn-bea:async");
    mk Names.fail_over ~min_arity:2 ~params:[ star_item; star_item ]
      ~returns:star_item ~special:true (no_eval "fn-bea:fail-over");
    mk Names.timeout ~min_arity:3 ~params:[ star_item; one_int; star_item ]
      ~returns:star_item ~special:true (no_eval "fn-bea:timeout") ]

let table : (Qname.t, builtin) Hashtbl.t =
  let t = Hashtbl.create 64 in
  List.iter (fun b -> Hashtbl.replace t b.bname b) all;
  t

let find name arity =
  match Hashtbl.find_opt table name with
  | Some b
    when arity >= b.min_arity
         && (match b.max_arity with Some m -> arity <= m | None -> true) ->
    Some b
  | Some _ | None -> None

let is_aggregate name =
  match Hashtbl.find_opt table name with
  | Some { translation = Sql_aggregate _; _ } -> true
  | _ -> false
