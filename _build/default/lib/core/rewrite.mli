(** The rule-driven rewrite engine.

    Both the optimizer and the update-lineage analysis are driven by the
    same rule engine in ALDSP (§6); this module is that engine. Rules are
    named partial functions over the core algebra; the driver applies them
    bottom-up to a fixpoint (bounded), recording which rules fired — the
    trace backs the optimizer's explain output and the ablation benches. *)

type rule = {
  rule_name : string;
  apply : Cexpr.t -> Cexpr.t option;
      (** [None] or the unchanged expression means "did not fire". *)
}

type stats = { passes : int; applications : (string * int) list }

val run :
  ?max_passes:int ->
  ?max_applications:int ->
  rule list ->
  Cexpr.t ->
  Cexpr.t * stats
(** Applies the rules bottom-up over the tree, repeating whole passes until
    a fixpoint or a bound is hit. [max_applications] (default 20000) guards
    against diverging rule sets. *)
