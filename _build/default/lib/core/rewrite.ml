type rule = {
  rule_name : string;
  apply : Cexpr.t -> Cexpr.t option;
}

type stats = { passes : int; applications : (string * int) list }

let run ?(max_passes = 12) ?(max_applications = 20000) rules expr =
  let counts : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let total = ref 0 in
  let changed_in_pass = ref false in
  let record name =
    incr total;
    Hashtbl.replace counts name
      (1 + Option.value (Hashtbl.find_opt counts name) ~default:0);
    changed_in_pass := true
  in
  (* apply rules at one node until none fires; a global application budget
     guards against diverging rule sets, keeping the best result so far *)
  let rec apply_here fuel e =
    if fuel = 0 || !total >= max_applications then e
    else
      let fired =
        List.find_map
          (fun r ->
            match r.apply e with
            | Some e' when not (Cexpr.equal e' e) -> Some (r.rule_name, e')
            | Some _ | None -> None)
          rules
      in
      match fired with
      | Some (name, e') ->
        record name;
        apply_here (fuel - 1) e'
      | None -> e
  in
  let rec bottom_up e = apply_here 64 (Cexpr.map_children bottom_up e) in
  let rec passes n e =
    if n >= max_passes then (e, n)
    else begin
      changed_in_pass := false;
      let e' = bottom_up e in
      if !changed_in_pass then passes (n + 1) e' else (e', n + 1)
    end
  in
  let result, n_passes = passes 0 expr in
  ( result,
    { passes = n_passes;
      applications =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b) } )
