type 'a outcome = Value of 'a | Raised of exn

type 'a t = {
  mutable result : 'a outcome option;
  mutex : Mutex.t;
  done_ : Condition.t;
}

let spawn f =
  let fut = { result = None; mutex = Mutex.create (); done_ = Condition.create () } in
  let run () =
    let outcome = try Value (f ()) with e -> Raised e in
    Mutex.lock fut.mutex;
    fut.result <- Some outcome;
    Condition.broadcast fut.done_;
    Mutex.unlock fut.mutex
  in
  ignore (Thread.create run ());
  fut

let await fut =
  Mutex.lock fut.mutex;
  while fut.result = None do
    Condition.wait fut.done_ fut.mutex
  done;
  let result = fut.result in
  Mutex.unlock fut.mutex;
  match result with
  | Some (Value v) -> v
  | Some (Raised e) -> raise e
  | None -> assert false

(* [Condition] has no timed wait in the stdlib, so poll with a short sleep;
   granularity of 0.5ms is far below the latencies being simulated. *)
let await_timeout fut seconds =
  let deadline = Unix.gettimeofday () +. seconds in
  let rec poll () =
    Mutex.lock fut.mutex;
    let result = fut.result in
    Mutex.unlock fut.mutex;
    match result with
    | Some (Value v) -> Some v
    | Some (Raised e) -> raise e
    | None ->
      if Unix.gettimeofday () >= deadline then None
      else begin
        Thread.delay 0.0005;
        poll ()
      end
  in
  poll ()

let is_done fut =
  Mutex.lock fut.mutex;
  let d = fut.result <> None in
  Mutex.unlock fut.mutex;
  d
