(** Parser for the ALDSP XQuery dialect.

    A hand-written recursive-descent parser over a character cursor with
    single-token lookahead. Direct element constructors are lexed
    context-sensitively (a [<] at expression-start position followed by a
    name character opens a constructor). Supports the prolog subset used by
    data service files — namespace declarations, schema imports, variable
    and function declarations with [(::pragma ... ::)] annotations — and the
    ALDSP extensions: FLWGOR [group ... by ...] and optional construction
    [<E?>] / [name?="..."].

    Parse errors carry the offset and a message. Error {e recovery} (skip to
    the next [;] and continue, §4.1) is provided by {!parse_query_recovering}
    and used by the design-time compilation mode. *)

val parse_query : string -> (Xq_ast.query, string) result
(** Parses a whole query or data-service file: prolog followed by an
    optional query body. Fails on the first error (runtime mode, §4.1). *)

val parse_expr : string -> (Xq_ast.expr, string) result
(** Parses a single expression (no prolog). *)

val parse_query_recovering : string -> Xq_ast.query * string list
(** Design-time mode: on an error inside a prolog declaration, skip to the
    terminating [;] and continue with the next declaration, accumulating
    error messages. Functions whose body fails to parse are dropped while
    later declarations still parse (§4.1). *)
