(** Normalization: surface AST to core algebra (phase 3 of §3.3).

    Makes every implicit operation explicit — atomization ([Data]) around
    comparisons, arithmetic and typed constructions; effective boolean
    value ([Ebv]) around conditions; context items become real variables;
    every bound variable is renamed to a unique name so later phases can
    substitute without capture. Name resolution uses the prolog's namespace
    declarations on top of the built-in [fn]/[xs]/[fn-bea] bindings;
    [xs:TYPE(e)] constructor calls become casts.

    Errors (unknown variables, bad names, unresolvable schema references)
    follow the collector's mode: fail-fast at runtime, or substitute an
    [Error_expr] and continue at design time (§4.1). *)

open Aldsp_xml

type context

val context :
  ?namespaces:(string * string) list ->
  ?default_element_ns:string ->
  ?schema_lookup:(Qname.t -> Schema.element_decl option) ->
  Diag.collector ->
  context

val of_prolog :
  ?schema_lookup:(Qname.t -> Schema.element_decl option) ->
  Diag.collector ->
  Xq_ast.prolog ->
  context
(** Builds a context from a parsed prolog (namespace declarations and the
    default element namespace), layered over the built-in bindings. *)

val expr :
  ?params:(string * Cexpr.var) list -> context -> Xq_ast.expr -> Cexpr.t
(** Normalizes an expression. [params] pre-binds in-scope variables
    (function parameters) to their unique names. *)

val sequence_type : context -> Xq_ast.sequence_type -> Stype.t

val function_signature :
  context ->
  Xq_ast.function_decl ->
  Qname.t * (string * Cexpr.var * Stype.t) list * Stype.t
(** Resolved name, parameters as (surface name, unique name, type), and
    return type. The signature survives even when the body is in error
    (§4.1). *)

val fresh_var : context -> string -> Cexpr.var

val resolve_function_name : context -> Xq_ast.uqname -> Qname.t
val resolve_element_name : context -> Xq_ast.uqname -> Qname.t
