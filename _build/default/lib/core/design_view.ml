open Aldsp_xml
module C = Cexpr

let called_functions body =
  let acc = ref [] in
  let rec go e =
    (match e with
    | C.Call { fn; _ } -> acc := fn :: !acc
    | _ -> ());
    ignore
      (C.map_children
         (fun child ->
           go child;
           child)
         e)
  in
  go body;
  !acc

let owner_service registry fn =
  List.find_opt
    (fun ds -> List.exists (Qname.equal fn) ds.Metadata.ds_functions)
    (Metadata.data_services registry)

let dependencies registry (ds : Metadata.data_service) =
  let deps = ref [] in
  List.iter
    (fun fname ->
      List.iter
        (fun arity ->
          match Metadata.find_function registry fname arity with
          | Some { Metadata.fd_impl = Metadata.Body body; _ } ->
            List.iter
              (fun callee ->
                match owner_service registry callee with
                | Some owner
                  when owner.Metadata.ds_name <> ds.Metadata.ds_name
                       && not (List.mem owner.Metadata.ds_name !deps) ->
                  deps := owner.Metadata.ds_name :: !deps
                | _ -> ())
              (called_functions body)
          | _ -> ())
        [ 0; 1; 2; 3 ])
    ds.Metadata.ds_functions;
  List.rev !deps

let method_line registry buf fname =
  List.iter
    (fun arity ->
      match Metadata.find_function registry fname arity with
      | Some fd ->
        let params =
          String.concat ", "
            (List.map
               (fun (p, ty) -> Printf.sprintf "$%s as %s" p (Stype.to_string ty))
               fd.Metadata.fd_params)
        in
        Buffer.add_string buf
          (Printf.sprintf "    %s(%s) as %s%s\n"
             (Qname.to_string fd.Metadata.fd_name)
             params
             (Stype.to_string fd.Metadata.fd_return)
             (if fd.Metadata.fd_cacheable then "  [cacheable]" else ""))
      | None -> ())
    [ 0; 1; 2; 3 ]

let render registry name =
  match Metadata.find_data_service registry name with
  | None -> Error (Printf.sprintf "no data service named %s" name)
  | Some ds ->
    let buf = Buffer.create 512 in
    Buffer.add_string buf (Printf.sprintf "data service %s\n" ds.Metadata.ds_name);
    (* shape *)
    Buffer.add_string buf "  shape:\n";
    (match ds.Metadata.ds_shape with
    | Some schema ->
      Buffer.add_string buf
        (Format.asprintf "    @[%a@]@." Schema.pp schema)
    | None -> (
      (* derive from the lineage provider's return type *)
      match ds.Metadata.ds_lineage_provider with
      | Some provider -> (
        match Metadata.resolve_call registry provider 0 with
        | Some fd ->
          Buffer.add_string buf
            (Printf.sprintf "    %s\n" (Stype.to_string fd.Metadata.fd_return))
        | None -> Buffer.add_string buf "    (unknown)\n")
      | None -> Buffer.add_string buf "    (unknown)\n"));
    (* methods by kind *)
    let by_kind kind label =
      let names =
        List.filter
          (fun fname ->
            List.exists
              (fun arity ->
                match Metadata.find_function registry fname arity with
                | Some fd -> fd.Metadata.fd_kind = kind
                | None -> false)
              [ 0; 1; 2; 3 ])
          ds.Metadata.ds_functions
      in
      if names <> [] then begin
        Buffer.add_string buf (Printf.sprintf "  %s:\n" label);
        List.iter (method_line registry buf) names
      end
    in
    by_kind Metadata.Read "read methods";
    by_kind Metadata.Navigate "navigation methods";
    by_kind Metadata.Library "library functions";
    (match ds.Metadata.ds_lineage_provider with
    | Some p ->
      Buffer.add_string buf
        (Printf.sprintf "  lineage provider: %s\n" (Qname.to_string p))
    | None -> ());
    (* dependencies *)
    (match dependencies registry ds with
    | [] -> ()
    | deps ->
      Buffer.add_string buf "  depends on:\n";
      List.iter
        (fun d -> Buffer.add_string buf (Printf.sprintf "    %s\n" d))
        deps);
    Ok (Buffer.contents buf)
