open Aldsp_xml

type uqname = { prefix : string option; local_name : string }

type seq_type =
  | St_atomic of uqname
  | St_element of uqname option
  | St_schema_element of uqname
  | St_item
  | St_empty
  | St_node

and occurrence_marker = Occ_one | Occ_opt | Occ_star | Occ_plus

type sequence_type = { stype : seq_type; occ : occurrence_marker }

type binop =
  | V_eq | V_ne | V_lt | V_le | V_gt | V_ge
  | G_eq | G_ne | G_lt | G_le | G_gt | G_ge
  | Plus | Minus | Mult | Div | Idiv | Mod
  | And | Or
  | To

type expr =
  | E_literal of Atomic.t
  | E_var of string
  | E_context_item
  | E_seq of expr list
  | E_flwor of { clauses : clause list; return_ : expr }
  | E_if of expr * expr * expr
  | E_quantified of {
      universal : bool;
      bindings : (string * expr) list;
      satisfies : expr;
    }
  | E_call of uqname * expr list
  | E_path of expr * step list
  | E_filter of expr * expr list
  | E_element of {
      name : uqname;
      optional : bool;
      attributes : attribute_constructor list;
      content : expr list;
    }
  | E_binop of binop * expr * expr
  | E_unary_minus of expr
  | E_instance_of of expr * sequence_type
  | E_castable of expr * sequence_type
  | E_cast of expr * sequence_type

and step = { axis : axis; test : name_test; predicates : expr list }

and axis = Child | Attribute_axis

and name_test = Name of uqname | Wildcard

and attribute_constructor = {
  attr_name : uqname;
  attr_optional : bool;
  attr_value : attr_piece list;
}

and attr_piece = A_text of string | A_enclosed of expr

and clause =
  | C_for of (string * expr) list
  | C_let of (string * expr) list
  | C_where of expr
  | C_group of {
      aggregations : (string * string) list;
      keys : (expr * string option) list;
    }
  | C_order of (expr * bool) list

type pragma = { pragma_name : string; pragma_attrs : (string * string) list }

type function_decl = {
  fn_name : uqname;
  fn_params : (string * sequence_type option) list;
  fn_return : sequence_type option;
  fn_body : expr option;
  fn_pragmas : pragma list;
}

type prolog = {
  namespaces : (string * string) list;
  default_element_ns : string option;
  schema_imports : (string option * string) list;
  functions : function_decl list;
  variables : (string * sequence_type option * expr) list;
}

type query = {
  prolog : prolog;
  body : expr option;
  query_pragmas : pragma list;
}

let empty_prolog =
  { namespaces = []; default_element_ns = None; schema_imports = [];
    functions = []; variables = [] }

let uq ?prefix local_name = { prefix; local_name }

let uqname_to_string u =
  match u.prefix with
  | Some p -> p ^ ":" ^ u.local_name
  | None -> u.local_name

let rec pp_expr ppf e =
  let open Format in
  match e with
  | E_literal a -> fprintf ppf "%a" Atomic.pp a
  | E_var v -> fprintf ppf "$%s" v
  | E_context_item -> pp_print_string ppf "."
  | E_seq es ->
    fprintf ppf "(%a)"
      (pp_print_list ~pp_sep:(fun ppf () -> pp_print_string ppf ", ") pp_expr)
      es
  | E_flwor { clauses; return_ } ->
    fprintf ppf "@[<v>%a@ return %a@]"
      (pp_print_list ~pp_sep:pp_print_space pp_clause)
      clauses pp_expr return_
  | E_if (c, t, e) ->
    fprintf ppf "if (%a) then %a else %a" pp_expr c pp_expr t pp_expr e
  | E_quantified { universal; bindings; satisfies } ->
    fprintf ppf "%s %a satisfies %a"
      (if universal then "every" else "some")
      (pp_print_list ~pp_sep:(fun ppf () -> pp_print_string ppf ", ")
         (fun ppf (v, e) -> fprintf ppf "$%s in %a" v pp_expr e))
      bindings pp_expr satisfies
  | E_call (name, args) ->
    fprintf ppf "%s(%a)" (uqname_to_string name)
      (pp_print_list ~pp_sep:(fun ppf () -> pp_print_string ppf ", ") pp_expr)
      args
  | E_path (base, steps) ->
    pp_expr ppf base;
    List.iter
      (fun s ->
        let test =
          match s.test with Name n -> uqname_to_string n | Wildcard -> "*"
        in
        fprintf ppf "/%s%s"
          (match s.axis with Child -> "" | Attribute_axis -> "@")
          test;
        List.iter (fun p -> fprintf ppf "[%a]" pp_expr p) s.predicates)
      steps
  | E_filter (base, preds) ->
    pp_expr ppf base;
    List.iter (fun p -> fprintf ppf "[%a]" pp_expr p) preds
  | E_element { name; optional; attributes; content } ->
    fprintf ppf "<%s%s%a>{%a}</%s>" (uqname_to_string name)
      (if optional then "?" else "")
      (fun ppf attrs ->
        List.iter
          (fun a -> fprintf ppf " %s=..." (uqname_to_string a.attr_name))
          attrs)
      attributes
      (pp_print_list ~pp_sep:(fun ppf () -> pp_print_string ppf ", ") pp_expr)
      content (uqname_to_string name)
  | E_binop (op, a, b) ->
    let sym =
      match op with
      | V_eq -> "eq" | V_ne -> "ne" | V_lt -> "lt" | V_le -> "le"
      | V_gt -> "gt" | V_ge -> "ge"
      | G_eq -> "=" | G_ne -> "!=" | G_lt -> "<" | G_le -> "<="
      | G_gt -> ">" | G_ge -> ">="
      | Plus -> "+" | Minus -> "-" | Mult -> "*" | Div -> "div"
      | Idiv -> "idiv" | Mod -> "mod"
      | And -> "and" | Or -> "or" | To -> "to"
    in
    fprintf ppf "(%a %s %a)" pp_expr a sym pp_expr b
  | E_unary_minus e -> fprintf ppf "-(%a)" pp_expr e
  | E_instance_of (e, _) -> fprintf ppf "(%a instance of ...)" pp_expr e
  | E_castable (e, _) -> fprintf ppf "(%a castable as ...)" pp_expr e
  | E_cast (e, _) -> fprintf ppf "(%a cast as ...)" pp_expr e

and pp_clause ppf = function
  | C_for bindings ->
    Format.fprintf ppf "for %a"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf (v, e) -> Format.fprintf ppf "$%s in %a" v pp_expr e))
      bindings
  | C_let bindings ->
    Format.fprintf ppf "let %a"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf (v, e) -> Format.fprintf ppf "$%s := %a" v pp_expr e))
      bindings
  | C_where e -> Format.fprintf ppf "where %a" pp_expr e
  | C_group { aggregations; keys } ->
    Format.fprintf ppf "group %a by %a"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf (a, b) -> Format.fprintf ppf "$%s as $%s" a b))
      aggregations
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf (e, k) ->
           match k with
           | Some k -> Format.fprintf ppf "%a as $%s" pp_expr e k
           | None -> pp_expr ppf e))
      keys
  | C_order keys ->
    Format.fprintf ppf "order by %a"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf (e, desc) ->
           Format.fprintf ppf "%a%s" pp_expr e
             (if desc then " descending" else "")))
      keys
