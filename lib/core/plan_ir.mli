(** The physical plan IR (§5, Figure 4).

    The compile pipeline — normalize, typecheck, {!Optimizer.optimize},
    {!Pushdown.push}, {!Optimizer.select_methods} — ends here: the
    rewritten core expression is {e lowered} into an explicit typed
    operator tree whose nodes carry everything the runtime decided at
    compile time (join method with its k and prefetch depth, pushed-SQL
    regions with their dialect and parameter slots, async-let and guard
    placement, cacheable-call marking) plus a mutable counter block that
    the executor fills in as the plan runs.

    {!Eval} executes this IR; {!Plan_cache} caches it per
    (query, optimizer options, metadata generation); {!Server.explain}
    renders it — one tree covering the middleware operators with their
    runtime counters and, nested under each pushed region, the backend's
    own access-path plan lines captured at execution time. *)

open Aldsp_xml

(** Per-operator runtime counters. Zero at compile time; the executor
    accumulates across runs (use {!reset_counters} for per-run numbers).
    Updated without a lock, like the backend's operator statistics: single
    word writes, and the only concurrent writers (PP-k roundtrips on pool
    workers) touch counters no consumer reads mid-run. *)
type counters = {
  mutable c_est : int;
      (** Estimated items / binding tuples ({!Cost_model}), fixed at
          compile time; 0 when the model could not price the operator.
          Survives {!reset_counters}, so EXPLAIN prints [est=N act=M]. *)
  mutable c_starts : int;  (** Times the operator began producing. *)
  mutable c_rows : int;  (** Items / binding tuples emitted. *)
  mutable c_roundtrips : int;  (** Source statements this operator issued. *)
  mutable c_cache_hits : int;  (** Function-cache hits on this call site. *)
  mutable c_cache_misses : int;  (** Computed calls on a cacheable site. *)
  mutable c_shared : int;
      (** Of the issued statements, how many were served from another
          session's in-flight work (coalesced or batch-merged). Rendered
          as [shared=N] only when positive, so plans outside shared
          serving workloads are unchanged. *)
  mutable c_wall : float;  (** Seconds inside this operator's roundtrips. *)
  mutable c_first_row_ns : float;
      (** Wall-clock nanoseconds from the operator's first start to its
          first emitted row (time-to-first-token on the root). Stamped
          once per reset; rendered as [ttft=] only under [timings], like
          [wall=], because it is nondeterministic. *)
  mutable c_peak_buffer : int;
      (** Peak tokens buffered in the streaming delivery queue while this
          plan streamed (stamped on the root by the serving layer; bounded
          by the queue capacity). Rendered as [peak-buffer=N] only when
          positive, so non-streamed plans are unchanged. *)
  mutable c_spill_runs : int;
      (** Sorted runs this operator spilled to disk ({!Extsort}: ORDER BY
          and the unclustered GROUP BY fallback under a
          [sort_budget_rows]), counting intermediate merge passes.
          Rendered with its three companions as
          [spill=R spill-rows=N spill-bytes=B fanin=F] only when positive,
          so in-memory sorts render exactly as before. *)
  mutable c_spill_rows : int;  (** Rows written to spill files. *)
  mutable c_spill_bytes : int;  (** Marshal frame bytes spilled. *)
  mutable c_merge_fanin : int;  (** Widest merge fan-in performed. *)
}

(** What a call site resolved to at compile time (informational — the
    executor re-resolves so transiently registered prolog functions keep
    working). *)
type call_target =
  | T_function of { cacheable : bool; external_ : bool }
  | T_builtin
  | T_unresolved

(** How a let binding is scheduled (§5.4): [L_async] is an explicit
    [fn-bea:async] value, [L_concurrent] an independent external-source
    call auto-submitted to the worker pool, [L_plain] evaluates in
    place. *)
type let_mode = L_plain | L_async | L_concurrent

type t = { id : int; counters : counters; node : node }

and node =
  | P_const of Atomic.t
  | P_empty
  | P_seq of t list
  | P_var of Cexpr.var
  | P_construct of {
      name : Qname.t;
      optional : bool;
      attrs : pattr list;
      content : t;
    }
  | P_if of { cond : t; then_ : t; else_ : t }
  | P_quantified of {
      universal : bool;
      var : Cexpr.var;
      source : t;
      pred : t;
    }
  | P_call of { fn : Qname.t; target : call_target; args : t list }
  | P_async of t  (** [fn-bea:async]: eligible for ahead-of-use submission. *)
  | P_fail_over of { primary : t; alternate : t }
  | P_timeout of { primary : t; millis : t; alternate : t }
  | P_child of t * Qname.t
  | P_child_wild of t
  | P_attr_of of t * Qname.t
  | P_filter of { input : t; dot : Cexpr.var; pos : Cexpr.var; pred : t }
  | P_data of t
  | P_ebv of t
  | P_binop of Cexpr.binop * t * t
  | P_typematch of t * Stype.t
  | P_cast of t * Atomic.atomic_type
  | P_castable of t * Atomic.atomic_type
  | P_instance_of of t * Stype.t
  | P_error of string
  | P_pipeline of { ops : op list; return_ : t }
      (** A FLWOR block: a pipeline of tuple operators over binding
          tuples (§5.1). *)

and pattr = { p_aname : Qname.t; p_avalue : t; p_aoptional : bool }

and op = { op_id : int; op_counters : counters; op_node : op_node }

and op_node =
  | O_scan of { var : Cexpr.var; source : t }
  | O_let of { var : Cexpr.var; value : t; mode : let_mode }
  | O_select of t
  | O_group of {
      aggs : (Cexpr.var * Cexpr.var) list;
      keys : (t * Cexpr.var) list;
      clustered : bool;
    }
  | O_sort of { keys : (t * bool) list }
  | O_join of {
      kind : Cexpr.join_kind;
      method_ : Cexpr.join_method;
      right : op list;
      on_ : t;
      equi : pequi option;
          (** Precomputed for index nested loop: the hash-join keys the
              method selector found, so the executor never re-analyzes the
              predicate. [None] falls back to nested loop. *)
      export : pexport;
    }
  | O_sql of sql_region

and pequi = { eq_pairs : (t * t) list; eq_residual : t list }
    (** (left key, right key) pairs plus residual conjuncts. *)

and pexport = PE_bindings | PE_grouped of { gvar : Cexpr.var; gexpr : t }

(** A pushed SQL region: the statement is rendered once, at compile time,
    in the owning database's dialect; [sql_backend] is the backend's own
    access-path plan for the region's most recent statement, captured by
    the executor (in block order for PP-k, so it is deterministic). *)
and sql_region = {
  sql_db : string;
  sql_dialect : string;
  sql_text : string;
  sql_select : Aldsp_relational.Sql_ast.select;
  sql_params : t list;  (** Middleware expressions bound to [?] slots. *)
  sql_binds : Cexpr.sql_bind list;
  mutable sql_backend : string list;
}

val compile : Metadata.t -> Cexpr.t -> t
(** Lowers an optimized core expression into the physical IR: special
    forms ([fn-bea:async]/[fail-over]/[timeout]) become guard operators,
    call targets are resolved, adjacent-let runs are analyzed for
    concurrency eligibility, and every pushed region's SQL is rendered in
    its database's dialect. Pure — never executes anything. *)

val reset_counters : t -> unit
(** Zeroes every runtime counter block (and clears captured backend
    plans); compile-time estimates ([c_est]) are preserved. *)

val max_misestimate : t -> float
(** Worst [max(est/act, act/est)] over operators with both a nonzero
    estimate and nonzero actual rows; 1.0 when nothing qualifies — the
    per-query input to {!Server.stats}' misestimation rollup. *)

val operators : t -> (string * counters) list
(** Every operator of the plan, preorder, as (render label, counters) —
    the label is the same text {!render} prints for the operator's line.
    Used by tests to assert counter values without parsing the tree. *)

val regions : t -> sql_region list
(** All pushed SQL regions, preorder. *)

val render : ?timings:bool -> t -> string
(** The unified EXPLAIN rendering: one indented tree of middleware
    operators, each with its counters, and under each pushed region the
    region's dialect SQL, parameter slots, column bindings and the
    backend's captured access-path lines. [timings] adds wall-clock
    fields (off by default so the output is byte-stable for golden
    tests). *)
