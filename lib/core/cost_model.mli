(** The cost model behind statistics-driven plan selection.

    The paper treats join-method choice, PP-k block depth and pushdown
    shape as cost decisions (§4, §5.2); this module prices them from the
    per-table statistics the relational layer maintains incrementally
    ({!Aldsp_relational.Table.statistics}) and each source's declared
    latency/roundtrip profile. Estimates are deliberately coarse — exact
    row counts, exact NDV where an index exists, fixed fractions
    elsewhere — because the decisions they drive (NL vs index-NL vs PP-k,
    k, prefetch, parameterize-or-ship) only need the right order of
    magnitude. All methods are result-identical, so a misestimate costs
    time, never correctness.

    Formulas:
    - scan cardinality: exact live row count (tables, file sources)
    - equality selectivity: [1/NDV] via a covering single-column index,
      [1/3] otherwise; opaque predicates filter to [1/3]
    - equi-join cardinality: [max(outer, inner)] (exact for the PK-FK
      joins introspection generates)
    - PP-k: [Total(k) ~ outer·latency/k + outer·row_cost·k], minimized at
      [k* = sqrt(latency/row_cost)], clamped to [5, 50] and capped by the
      outer estimate; prefetch 2 at >= 1 ms latency, 1 when positive,
      the configured default at zero
    - parameterization gate: [ceil(outer/k)] probe roundtrips plus outer
      matches shipped, vs one roundtrip shipping the whole inner table;
      parameterize within a 2x margin (block probes overlap latency). *)

open Aldsp_xml

type profile = { p_latency : float; p_row_cost : float }
(** Seconds per statement roundtrip / per shipped row. *)

val row_cost : float
(** Default middleware cost of one shipped row (~2 µs, calibrated against
    the PP-k bench optimum). *)

val roundtrip_overhead : float
(** CPU floor of one statement even at zero source latency. *)

val selection_fraction : int
(** Divisor applied by predicates the model cannot see through. *)

val db_profile : Aldsp_relational.Database.t -> profile

val source_profile : Metadata.t -> Qname.t -> profile option
(** Declared cost profile of a registered source function (relational,
    stored procedure, web service, file/CSV). *)

val source_cardinality : Metadata.t -> Qname.t -> int option
(** Estimated items yielded by one call of an arity-0 source function;
    exact for tables and file sources, [None] where unknowable. *)

val source_cost : Metadata.t -> Qname.t -> float option
(** Estimated seconds to iterate a source once: latency + overhead +
    rows·row_cost. The static analogue of {!Observed.cost}. *)

val rel_cardinality : Metadata.t -> Cexpr.sql_access -> int option
(** Rows one execution of a pushed region ships: filtered table rows when
    unparameterized, per-probe matches (rows / best indexed NDV) when
    parameterized. *)

val expr_cardinality : Metadata.t -> Cexpr.t -> int option
val clauses_cardinality : Metadata.t -> Cexpr.clause list -> int option
(** Estimated binding tuples a FLWOR clause pipeline emits. *)

val choose_k : outer:int option -> latency:float -> int
(** Cost-optimal PP-k block size for this outer cardinality and source
    latency, clamped to [5, 50] and capped by the outer estimate. *)

val choose_prefetch : latency:float -> default:int -> int

val nested_loop_cost : outer:float -> inner:float -> float
val index_nl_cost : outer:float -> matches:float -> float

val parameterize_beneficial :
  outer:int option -> inner_rows:int option -> latency:float -> bool
(** The pushdown transfer-volume gate: false when probing the inner
    source block-by-block is estimated to cost more than twice shipping
    it whole. Unknown estimates default to parameterizing (status quo). *)

val misestimate : est:int -> actual:int -> float
(** [max(est/act, act/est)]; 1.0 when either side is zero. *)
