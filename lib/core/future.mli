(** Promises over system threads, backing the worker pool ({!Pool}) and the
    resilience special forms [fn-bea:async], [fn-bea:timeout] and
    [fn-bea:fail-over] (§5.4, §5.6).

    A future is a write-once cell with a condition variable. Producers are
    either {!Pool} workers (bounded concurrency — the normal case for source
    calls) or a dedicated thread via {!detach} (used where the computation
    may be abandoned, as in [fn-bea:timeout], and must not occupy a pool
    worker past its deadline). *)

type 'a t

val create : unit -> 'a t
(** An unresolved future. Resolve it with {!fulfill_with}. *)

val fulfill_with : 'a t -> (unit -> 'a) -> unit
(** Runs the thunk and stores its value (or the exception it raised). The
    first resolution wins; later ones are ignored. *)

val detach : (unit -> 'a) -> 'a t
(** Starts the computation on its own dedicated thread — unbounded, so
    reserved for work that may outlive its consumer (timeout fail-over).
    The spawning thread's ambient {!Cancel.t} token is captured and
    installed on the new thread, so session deadlines still apply. *)

val await : 'a t -> 'a
(** Blocks until completion; re-raises the computation's exception. *)

val poll : 'a t -> 'a option
(** [Some value] if completed, [None] if still running; re-raises if the
    computation failed. Never blocks. *)

val await_timeout : 'a t -> float -> 'a option
(** [await_timeout f seconds] waits at most [seconds]; [None] on timeout
    (the computation keeps running detached, its result discarded, matching
    [fn-bea:timeout]'s fail-over behaviour). Re-raises on failure within
    the window. The wait is a condition-variable sleep woken by a timer
    thread at the deadline — no busy-polling. *)

val is_done : 'a t -> bool
