open Aldsp_xml
open Aldsp_relational
open Aldsp_services

type source =
  | Relational_table of {
      db : Database.t;
      table : string;
      row_name : Qname.t;
    }
  | Stored_procedure of {
      db : Database.t;
      procedure : string;
      row_name : Qname.t;
      columns : (string * Atomic.atomic_type) list option;
          (* None: scalar result *)
    }
  | Service_op of { service : Web_service.t; operation : string }
  | External_custom of Custom_function.registry
  | File_docs of Node.t list

type kind = Read | Navigate | Library

type impl = Body of Cexpr.t | External of source

type function_def = {
  fd_name : Qname.t;
  fd_params : (Cexpr.var * Stype.t) list;
  fd_return : Stype.t;
  fd_impl : impl;
  fd_kind : kind;
  fd_cacheable : bool;
  fd_pragmas : (string * string) list;
}

type data_service = {
  ds_name : string;
  ds_shape : Schema.element_decl option;
  ds_functions : Qname.t list;
  ds_lineage_provider : Qname.t option;
}

type t = {
  functions : (Qname.t * int, function_def) Hashtbl.t;
  databases : (string, Database.t) Hashtbl.t;
  services : (string, data_service) Hashtbl.t;
  schemas : (Qname.t, Schema.element_decl) Hashtbl.t;
  custom : Custom_function.registry;
  inverses : (Qname.t, Qname.t) Hashtbl.t;
  transforms : (Qname.t, Qname.t) Hashtbl.t;  (* directional: f -> inverse *)
  multi_inverses : (Qname.t, Qname.t list) Hashtbl.t;
      (* f(a1..an) -> per-argument projections g_i with a_i = g_i(f(..)) *)
  lock : Mutex.t;
      (* guards every table and the generation counter: sessions compile
         concurrently (transient prolog functions mutate the registry)
         while others read, and an unlocked Hashtbl read during a resize
         is a crash, not just a stale answer. The lock is not reentrant:
         public operations lock exactly once and compound updates go
         through the unlocked internals inside a single critical
         section. *)
  mutable generation : int;
}

let create () =
  { functions = Hashtbl.create 64;
    databases = Hashtbl.create 8;
    services = Hashtbl.create 16;
    schemas = Hashtbl.create 32;
    custom = Custom_function.create_registry ();
    inverses = Hashtbl.create 8;
    transforms = Hashtbl.create 8;
    multi_inverses = Hashtbl.create 4;
    lock = Mutex.create ();
    generation = 0 }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect f ~finally:(fun () -> Mutex.unlock t.lock)

let copy t =
  locked t @@ fun () ->
  { functions = Hashtbl.copy t.functions;
    databases = Hashtbl.copy t.databases;
    services = Hashtbl.copy t.services;
    schemas = Hashtbl.copy t.schemas;
    custom = t.custom;
    inverses = Hashtbl.copy t.inverses;
    transforms = Hashtbl.copy t.transforms;
    multi_inverses = Hashtbl.copy t.multi_inverses;
    lock = Mutex.create ();
    generation = t.generation }

let generation t = locked t @@ fun () -> t.generation

let bump_unlocked t = t.generation <- t.generation + 1

let add_function t fd =
  locked t @@ fun () ->
  bump_unlocked t;
  Hashtbl.replace t.functions (fd.fd_name, List.length fd.fd_params) fd

let find_function t name arity =
  locked t @@ fun () -> Hashtbl.find_opt t.functions (name, arity)

(* Unprefixed calls resolve to the default function namespace (fn); when no
   builtin claims the name, fall back to the no-namespace registry so that
   introspected sources registered without a URI stay callable without a
   prefix. *)
let resolve_call t name arity =
  match find_function t name arity with
  | Some fd -> Some fd
  | None ->
    if String.equal name.Qname.uri Names.fn_uri then
      find_function t (Qname.local name.Qname.local) arity
    else None

let functions t =
  locked t @@ fun () ->
  Hashtbl.fold (fun _ fd acc -> fd :: acc) t.functions []
  |> List.sort (fun a b -> Qname.compare a.fd_name b.fd_name)

(* read-modify-write across every overload of [name]: one critical
   section, or a concurrent [add_function] could interleave between the
   fold and the replaces *)
let set_cacheable t name flag =
  locked t @@ fun () ->
  let updates =
    Hashtbl.fold
      (fun key fd acc ->
        if Qname.equal fd.fd_name name then (key, fd) :: acc else acc)
      t.functions []
  in
  bump_unlocked t;
  List.iter
    (fun (key, fd) ->
      Hashtbl.replace t.functions key { fd with fd_cacheable = flag })
    updates

let add_database t db =
  locked t @@ fun () ->
  bump_unlocked t;
  Hashtbl.replace t.databases db.Database.db_name db

let find_database t name =
  locked t @@ fun () -> Hashtbl.find_opt t.databases name

let databases t =
  locked t @@ fun () ->
  Hashtbl.fold (fun _ db acc -> db :: acc) t.databases []
  |> List.sort (fun a b -> String.compare a.Database.db_name b.Database.db_name)

(* The registry-wide table-statistics generation: any row mutation in any
   registered database moves it. Plan-cache keys carry it next to
   [generation] so cost-based decisions are recomputed once the data a
   plan was costed against has changed. *)
let stats_generation t =
  locked t @@ fun () ->
  Hashtbl.fold (fun _ db acc -> acc + Database.stats_version db) t.databases 0

let add_data_service t ds =
  locked t @@ fun () ->
  bump_unlocked t;
  Hashtbl.replace t.services ds.ds_name ds

let find_data_service t name =
  locked t @@ fun () -> Hashtbl.find_opt t.services name

let data_services t =
  locked t @@ fun () ->
  Hashtbl.fold (fun _ ds acc -> ds :: acc) t.services []
  |> List.sort (fun a b -> String.compare a.ds_name b.ds_name)

let add_schema t decl =
  locked t @@ fun () ->
  bump_unlocked t;
  Hashtbl.replace t.schemas decl.Schema.elem_name decl

let find_schema t name =
  locked t @@ fun () -> Hashtbl.find_opt t.schemas name

let custom_registry t = t.custom

let register_inverse t ~f ~inverse =
  locked t @@ fun () ->
  bump_unlocked t;
  Hashtbl.replace t.inverses f inverse;
  Hashtbl.replace t.inverses inverse f;
  (* the transformation rules of §4.5 are directional: comparisons against
     f(x) rewrite through the inverse, never the other way around *)
  Hashtbl.replace t.transforms f inverse

let inverse_of t f = locked t @@ fun () -> Hashtbl.find_opt t.inverses f

let transform_of t f = locked t @@ fun () -> Hashtbl.find_opt t.transforms f

let register_multi_inverse t ~f ~projections =
  locked t @@ fun () ->
  bump_unlocked t;
  Hashtbl.replace t.multi_inverses f projections

let projections_of t f =
  locked t @@ fun () -> Hashtbl.find_opt t.multi_inverses f

(* ------------------------------------------------------------------ *)
(* Shape conversion                                                    *)

let rec stype_of_schema (decl : Schema.element_decl) : Stype.item_type =
  match decl.Schema.content with
  | Schema.Atomic_content ty ->
    Stype.element ~simple:ty (Some decl.Schema.elem_name)
  | Schema.Empty_content -> Stype.element (Some decl.Schema.elem_name)
  | Schema.Complex particles ->
    let child_items =
      List.map (fun p -> stype_of_schema p.Schema.decl) particles
    in
    let content = { Stype.items = child_items; occ = Stype.occ_star } in
    Stype.element ~content (Some decl.Schema.elem_name)

let row_schema db table_name =
  match Database.find_table db table_name with
  | Error _ -> None
  | Ok table ->
    let particles =
      List.map
        (fun col ->
          let decl =
            Schema.simple
              (Qname.local col.Table.col_name)
              (Table.atomic_type_of_sql col.Table.col_type)
          in
          Schema.particle
            ~occurs:
              (if col.Table.nullable then Schema.Optional
               else Schema.Exactly_one)
            decl)
        table.Table.columns
    in
    Some (Schema.element_decl (Qname.local table_name) (Schema.Complex particles))

let row_stype db table_name =
  match row_schema db table_name with
  | Some decl -> stype_of_schema decl
  | None -> Stype.element (Some (Qname.local table_name))

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)

let table_function_name ?(uri = "") table = Qname.make ~uri table

let introspect_relational t ?(uri = "") db =
  add_database t db;
  let tables = Database.table_names db in
  (* read function + shape + data service per table *)
  List.iter
    (fun table_name ->
      let row_name = Qname.local table_name in
      let fname = table_function_name ~uri table_name in
      let return_item = row_stype db table_name in
      let table = Result.get_ok (Database.find_table db table_name) in
      let pragmas =
        [ ("kind", "read");
          ("connection", db.Database.db_name);
          ("vendor", Database.vendor_name db.Database.vendor);
          ("table", table_name);
          ("primaryKey", String.concat "," table.Table.primary_key) ]
      in
      add_function t
        { fd_name = fname;
          fd_params = [];
          fd_return = Stype.star return_item;
          fd_impl = External (Relational_table { db; table = table_name; row_name });
          fd_kind = Read;
          fd_cacheable = false;
          fd_pragmas = pragmas };
      (match row_schema db table_name with
      | Some decl -> add_schema t decl
      | None -> ());
      add_data_service t
        { ds_name = Printf.sprintf "%s.%s" db.Database.db_name table_name;
          ds_shape = row_schema db table_name;
          ds_functions = [ fname ];
          ds_lineage_provider = Some fname })
    tables;
  (* navigation functions from foreign keys, generated as XQuery bodies so
     that inlining + pushdown see through them *)
  List.iter
    (fun table_name ->
      let table = Result.get_ok (Database.find_table db table_name) in
      List.iter
        (fun fk ->
          let parent = fk.Table.references_table in
          let fname = Qname.make ~uri ("get" ^ table_name) in
          let arg_var = "arg" in
          let row_var = "row" in
          let conditions =
            List.map2
              (fun child_col parent_col ->
                Cexpr.Binop
                  ( Cexpr.V_eq,
                    Cexpr.Data
                      (Cexpr.Child (Cexpr.Var row_var, Qname.local child_col)),
                    Cexpr.Data
                      (Cexpr.Child (Cexpr.Var arg_var, Qname.local parent_col))
                  ))
              fk.Table.fk_columns fk.Table.references_columns
          in
          let pred =
            match conditions with
            | [] -> Cexpr.Const (Atomic.Boolean true)
            | first :: rest ->
              List.fold_left
                (fun acc c -> Cexpr.Binop (Cexpr.And, Cexpr.Ebv acc, Cexpr.Ebv c))
                first rest
          in
          let body =
            Cexpr.Flwor
              { clauses =
                  [ Cexpr.For
                      { var = row_var;
                        source =
                          Cexpr.Call
                            { fn = table_function_name ~uri table_name;
                              args = [] } };
                    Cexpr.Where (Cexpr.Ebv pred) ];
                return_ = Cexpr.Var row_var }
          in
          add_function t
            { fd_name = fname;
              fd_params = [ (arg_var, Stype.one (row_stype db parent)) ];
              fd_return = Stype.star (row_stype db table_name);
              fd_impl = Body body;
              fd_kind = Navigate;
              fd_cacheable = false;
              fd_pragmas =
                [ ("kind", "navigate");
                  ("connection", db.Database.db_name);
                  ("sourceTable", parent);
                  ("targetTable", table_name) ] };
          (* attach the navigation method to the parent's data service *)
          let ds_name = Printf.sprintf "%s.%s" db.Database.db_name parent in
          match find_data_service t ds_name with
          | Some ds ->
            if not (List.exists (Qname.equal fname) ds.ds_functions) then
              add_data_service t
                { ds with ds_functions = ds.ds_functions @ [ fname ] }
          | None -> ())
        table.Table.foreign_keys)
    tables

let introspect_service t ?(uri = "") (service : Web_service.t) =
  List.iter
    (fun (op : Web_service.operation) ->
      let fname = Qname.make ~uri op.Web_service.op_name in
      let input_item = stype_of_schema op.Web_service.input_schema in
      let output_item = stype_of_schema op.Web_service.output_schema in
      add_function t
        { fd_name = fname;
          fd_params = [ ("request", Stype.one input_item) ];
          fd_return = Stype.one output_item;
          fd_impl =
            External (Service_op { service; operation = op.Web_service.op_name });
          fd_kind = Read;
          fd_cacheable = false;
          fd_pragmas =
            [ ("kind", "read");
              ("wsdl", service.Web_service.wsdl_url);
              ("service", service.Web_service.service_name);
              ("operation", op.Web_service.op_name) ] };
      add_schema t op.Web_service.input_schema;
      add_schema t op.Web_service.output_schema)
    service.Web_service.operations;
  add_data_service t
    { ds_name = service.Web_service.service_name;
      ds_shape =
        (match service.Web_service.operations with
        | op :: _ -> Some op.Web_service.output_schema
        | [] -> None);
      ds_functions =
        List.map
          (fun op -> Qname.make ~uri op.Web_service.op_name)
          service.Web_service.operations;
      ds_lineage_provider = None }

let register_custom_function t (fn : Custom_function.t) =
  Custom_function.register t.custom ~name:fn.Custom_function.fn_name
    ~params:fn.Custom_function.param_types
    ~returns:fn.Custom_function.return_type fn.Custom_function.body;
  add_function t
    { fd_name = fn.Custom_function.fn_name;
      fd_params =
        List.mapi
          (fun i ty -> (Printf.sprintf "p%d" i, Stype.atomic ty))
          fn.Custom_function.param_types;
      fd_return = Stype.opt (Stype.It_atomic fn.Custom_function.return_type);
      fd_impl = External (External_custom t.custom);
      fd_kind = Library;
      fd_cacheable = false;
      fd_pragmas = [ ("kind", "javaFunction") ] }

let introspect_procedure t ?(uri = "") db (proc : Procedure.t) =
  add_database t db;
  let fname = Qname.make ~uri proc.Procedure.proc_name in
  let row_name = Qname.local (proc.Procedure.proc_name ^ "_ROW") in
  let params =
    List.map
      (fun (p, ty) -> (p, Stype.opt (Stype.It_atomic (Table.atomic_type_of_sql ty))))
      proc.Procedure.proc_params
  in
  let columns, fd_return =
    match proc.Procedure.result with
    | Procedure.Returns_scalar ty ->
      (None, Stype.opt (Stype.It_atomic (Table.atomic_type_of_sql ty)))
    | Procedure.Returns_rows cols ->
      let columns =
        List.map (fun (c, ty) -> (c, Table.atomic_type_of_sql ty)) cols
      in
      let content =
        { Stype.items =
            List.map
              (fun (c, ty) ->
                Stype.element ~simple:ty (Some (Qname.local c)))
              columns;
          occ = Stype.occ_star }
      in
      (Some columns, Stype.star (Stype.element ~content (Some row_name)))
  in
  add_function t
    { fd_name = fname;
      fd_params = params;
      fd_return;
      fd_impl =
        External
          (Stored_procedure
             { db; procedure = proc.Procedure.proc_name; row_name; columns });
      fd_kind = Read;
      fd_cacheable = false;
      fd_pragmas =
        [ ("kind", "read");
          ("connection", db.Database.db_name);
          ("storedProcedure", proc.Procedure.proc_name) ] }

let register_csv_source t ?uri ~name ~schema ?separator ?header text =
  match Csv_source.load ~schema ?separator ?header text with
  | Error _ as e -> e
  | Ok docs ->
    (* rows are already validated; register them directly *)
    let fname = Qname.make ?uri name in
    add_schema t schema;
    add_function t
      { fd_name = fname;
        fd_params = [];
        fd_return = Stype.star (stype_of_schema schema);
        fd_impl = External (File_docs docs);
        fd_kind = Read;
        fd_cacheable = false;
        fd_pragmas = [ ("kind", "read"); ("source", "csv") ] };
    add_data_service t
      { ds_name = name;
        ds_shape = Some schema;
        ds_functions = [ fname ];
        ds_lineage_provider = None };
    Ok ()

let register_file_source t ?(uri = "") ~name ~schema docs =
  let rec validate_all acc = function
    | [] -> Ok (List.rev acc)
    | doc :: rest -> (
      match Schema.validate schema doc with
      | Ok typed -> validate_all (typed :: acc) rest
      | Error msg -> Error (Printf.sprintf "file source %s: %s" name msg))
  in
  match validate_all [] docs with
  | Error _ as e -> e
  | Ok typed_docs ->
    let fname = Qname.make ~uri name in
    add_schema t schema;
    add_function t
      { fd_name = fname;
        fd_params = [];
        fd_return = Stype.star (stype_of_schema schema);
        fd_impl = External (File_docs typed_docs);
        fd_kind = Read;
        fd_cacheable = false;
        fd_pragmas = [ ("kind", "read"); ("source", "file") ] };
    add_data_service t
      { ds_name = name;
        ds_shape = Some schema;
        ds_functions = [ fname ];
        ds_lineage_provider = None };
    Ok ()
