(** The ALDSP server (Figure 2): compiler pipeline, caches, security, and
    the client-facing execution APIs.

    Query processing follows the phases of §3.3 — parsing, expression tree
    construction, normalization, type checking, optimization, code
    generation — then execution. Compiled plans are cached by query text;
    view bodies are sub-optimized and cached per function with eviction;
    the function cache (when configured) intercepts calls to
    cache-enabled data service functions; element-level security filtering
    runs last, after evaluation and after cache hits (§7).

    Mirroring the product's stateless client APIs, {!run} and {!call}
    materialize their results completely before returning; {!run_stream}
    is the server-side API that exposes the result as a token stream
    without materializing first (§2.2). *)

open Aldsp_xml

type t

type compiled = {
  source : string;
  plan : Cexpr.t;  (** The optimized core expression (pre-lowering). *)
  ir : Plan_ir.t;  (** The physical plan the executor runs. *)
  static_type : Stype.t;
  diagnostics : Diag.t list;
  sql : (string * string) list;  (** Pushed (database, SQL) regions. *)
}

type admission_stats = {
  ad_submitted : int;  (** Queries presented to {!submit}. *)
  ad_admitted : int;  (** Granted an executing slot (immediately or queued). *)
  ad_rejected : int;  (** Shed: queue full or server draining. *)
  ad_completed : int;  (** Ran to completion (success or orderly failure). *)
  ad_deadline_aborts : int;
      (** Cut short by a deadline or explicit cancel — while queued or
          mid-execution. *)
  ad_active : int;  (** Currently executing. *)
  ad_queued : int;  (** Currently waiting for a slot. *)
  ad_peak_active : int;  (** High-water concurrent executions. *)
  ad_peak_queued : int;  (** High-water queue depth. *)
}

type submit_error =
  | Overloaded
      (** Rejected at admission: the wait queue is at capacity, or the
          server is draining. The client should back off and retry. *)
  | Cancelled of string
      (** The query's deadline passed (while queued or mid-execution) or
          its token was cancelled; partial work has been abandoned. *)
  | Failed of string  (** Ordinary compilation or evaluation failure. *)

val submit_error_to_string : submit_error -> string

type stats = {
  st_plan_cache_hits : int;
  st_plan_cache_misses : int;
  st_function_cache_hits : int;
  st_function_cache_misses : int;
  st_pool : Pool.stats;
  st_roundtrips : int;  (** Middleware-issued source roundtrips (PP-k). *)
  st_overlap_saved : float;  (** Seconds of source latency hidden. *)
  st_source_wall : float;  (** Total wall time inside sources. *)
  st_tokens_streamed : int;  (** Tokens pulled through {!run_stream}. *)
  st_backend : Aldsp_relational.Database.stats;
      (** Operator counters (scans, index probes, join algorithms) summed
          over every registered database at the time of the call. *)
  st_max_misestimate : float;
      (** Worst per-operator est-vs-actual cardinality ratio
          ({!Cost_model.misestimate}) over every execution so far; 1.0
          when every estimate held or none applied. The feedback signal
          for judging the cost model's inputs. *)
  st_admission : admission_stats;
      (** Serving-layer counters; invariant: [ad_admitted = ad_completed +
          mid-execution deadline aborts + ad_active] once quiescent. *)
  st_coalesced_hits : int;
      (** Work served from another session's in-flight computation:
          backend single-flight coalescing ({!Database.stats}'
          [coalesced_hits] rolled over every source) plus function-cache
          miss coalescing ({!Function_cache.coalesced}). *)
  st_batch_merges : int;
      (** Single-key backend probes merged into another session's
          accumulated IN-list roundtrip (batched dispatch). *)
  st_dedup_roundtrips_saved : int;
      (** Backend roundtrips avoided by cross-session work sharing;
          0 unless {!set_work_sharing} is on. *)
  st_spill_runs : int;
      (** Sorted runs the external sort ({!Extsort}) spilled to disk
          across every query on this server; 0 unless
          {!Optimizer.options}' [sort_budget_rows] is set and a blocking
          sort overflowed it. *)
  st_spill_rows : int;  (** Rows written to spill files. *)
  st_spill_bytes : int;  (** Marshal frame bytes spilled. *)
  st_spill_peak_resident : int;
      (** Peak rows any single spilling sort held resident at once;
          bounded by the configured budget. *)
}

val create :
  ?optimizer_options:Optimizer.options ->
  ?plan_cache_capacity:int ->
  ?function_cache:Function_cache.t ->
  ?security:Security.t ->
  ?audit:Audit.t ->
  ?observed:Observed.t ->
  ?pool:Pool.t ->
  ?concurrent_lets:bool ->
  ?max_concurrent:int ->
  ?admission_queue:int ->
  Metadata.t ->
  t
(** [observed] turns on source instrumentation and observed-cost
    reordering of independent source accesses (§9 roadmap item).
    [pool] (default {!Pool.default}) runs asynchronous source work:
    PP-k prefetch, [fn-bea:async], and concurrent independent lets.
    [concurrent_lets] (default true) may be switched off to force
    strictly in-place, in-order evaluation of let bindings.
    [max_concurrent] (default 16) caps queries executing at once through
    {!submit}; [admission_queue] (default 64) bounds how many more may
    wait for a slot before new arrivals are rejected [Overloaded]. *)

val reference :
  ?plan_cache_capacity:int ->
  ?function_cache:Function_cache.t ->
  ?security:Security.t ->
  ?audit:Audit.t ->
  Metadata.t ->
  t
(** The differential-testing oracle configuration: a server compiled with
    {!Optimizer.reference_options} (no pushdown, no rewrites), a
    single-worker pool, zero prefetch, and sequential lets. The harness in
    [lib/check] compares optimized configurations against this server's
    serialized results byte-for-byte. *)

val registry : t -> Metadata.t
val optimizer : t -> Optimizer.t
val security : t -> Security.t
val function_cache : t -> Function_cache.t option
val pool : t -> Pool.t

val stats : t -> stats
(** A consolidated snapshot of the server's runtime counters: plan-cache
    hit rates, worker-pool utilization, and (when [observed] is
    configured) source roundtrips and overlap accounting. *)

val set_work_sharing : t -> bool -> unit
(** Flips cross-session work sharing (single-flight statement coalescing
    + batched single-key dispatch, {!Aldsp_relational.Database.set_share_work})
    on every database registered with this server. Off by default; the
    shared-workload serving benchmarks and the concurrent oracle's
    sharing pass turn it on. Function-cache miss coalescing is always
    active and unaffected by this switch. *)

val work_sharing : t -> bool
(** Whether any registered database currently shares work. *)

(** {2 Data service registration} *)

val register_data_service :
  t -> name:string -> string -> (unit, Diag.t list) result
(** Parses a data service file (prolog of function declarations with
    pragmas), registers its functions and the data service record. Uses
    fail-fast mode; see {!design_time_check} for the editor behaviour. *)

val design_time_check : t -> string -> Diag.t list
(** Design-time compilation (§4.1): parse and analyze as much of the file
    as possible, recovering after errors, and report every diagnostic
    found rather than stopping at the first. Nothing is registered. *)

(** {2 Compilation and execution} *)

val compile : t -> string -> (compiled, Diag.t list) result
(** Full pipeline on an ad hoc query, ending in the lowered {!Plan_ir}
    plan. Plans are cached keyed on (query text, optimizer options
    fingerprint, metadata generation, statistics generation); entries from
    older generations are purged before lookup, so neither a registry
    mutation nor a data mutation (which moves the table statistics the
    cost model priced the plan against) can be served a stale plan. *)

val run :
  t -> ?user:Security.user -> string -> (Item.sequence, string) result
(** Compile (through the plan cache) and execute, materializing the result
    (the stateless client API). Security filtering applied. *)

val run_stream :
  t -> ?user:Security.user -> string ->
  (Aldsp_tokens.Token.t Seq.t, string) result
(** The server-side streaming API: the result as a lazy token stream. *)

val serialize_result : t -> Item.sequence -> string
(** Serializes a materialized result through the server's counted token
    stream — the one serialization path, so every serialized result
    (client APIs, CLI, the differential oracle) contributes to
    [st_tokens_streamed] rather than only {!run_stream} consumers. *)

val call :
  t ->
  ?user:Security.user ->
  Qname.t ->
  Item.sequence list ->
  (Item.sequence, string) result
(** Direct data service function call (read/navigate methods), through
    function-level access control, the function cache, and result
    filtering. *)

(** {2 Serving layer}

    The concurrent front-end: many client domains submit queries against
    one shared server. Admission control grants up to [max_concurrent]
    executing slots; up to [admission_queue] further submitters wait for
    a slot, and beyond that arrivals are shed with {!Overloaded}
    (backpressure instead of unbounded backlog). An admitted query
    executes on the submitting thread; its cancellation token is ambient
    for that thread (and captured by any pool/async work it spawns), so a
    deadline or cancel reaches in-flight backend roundtrips and
    web-service calls. *)

val submit :
  t ->
  ?user:Security.user ->
  ?deadline:float ->
  ?token:Cancel.t ->
  string ->
  (Item.sequence, submit_error) result
(** Admission-controlled {!run}. [deadline] is seconds from now and
    covers queue wait plus execution. [token] supplies a caller-managed
    cancellation token instead (so another thread can cancel this query);
    when given, [deadline] is ignored — encode it in the token. *)

val drain : t -> unit
(** Graceful shutdown of the serving layer: new submissions are rejected
    {!Overloaded} from this point on, already-queued submitters still
    run, and the call returns once no query is active or queued. *)

val draining : t -> bool

type session
(** One client domain's connection: a fixed user, an optional default
    per-query deadline, and a handle on the in-flight query's token so
    the query can be cancelled from another thread. *)

val session : t -> ?user:Security.user -> ?deadline:float -> unit -> session

val session_run :
  session -> ?deadline:float -> string -> (Item.sequence, submit_error) result
(** {!submit} as this session's user, with a fresh cancellation token
    (deadline from the argument, else the session default, else none —
    but still explicitly cancellable via {!session_cancel}). *)

val session_cancel : session -> unit
(** Cancels the session's in-flight query, if any. Safe from any
    thread; a no-op when nothing is running. *)

type stream
(** A streamed result being delivered to this consumer: a dedicated
    producer thread executes the query through {!Eval.execute_stream}
    and pushes tokens into a bounded single-producer/single-consumer
    queue ({!Aldsp_concurrency.Spsc}). The queue is the backpressure
    boundary — the producer blocks once it is [buffer] tokens ahead, so
    a slow consumer holds live memory to the queue capacity instead of
    the materialized result. *)

val session_run_stream :
  session ->
  ?deadline:float ->
  ?buffer:int ->
  string ->
  (stream, submit_error) result
(** Admission-controlled streamed execution as this session's user.
    Admission and compilation happen on the calling thread (so
    {!Overloaded} and compile failures surface immediately); execution
    then proceeds on the producer thread while the caller drains the
    returned {!type-stream}. [buffer] (default 256) is the token queue
    capacity. The session's deadline semantics match {!session_run}, and
    {!session_cancel} (or {!stream_cancel}) aborts the producer
    mid-stream — in-flight backend roundtrips see the token, and the
    queue is torn down. *)

val stream_read : stream -> (Aldsp_tokens.Token.t option, submit_error) result
(** Pulls the next token, blocking while the queue is empty and the
    producer is still running. [Ok None] is end-of-stream (the query
    completed); [Error (Cancelled _)] a deadline/cancel abort;
    [Error (Failed _)] an evaluation failure. After [None] or an error,
    subsequent reads return [Ok None]. *)

val stream_serialize :
  stream -> (string -> unit) -> (unit, submit_error) result
(** Drains the whole stream through the incremental XML serializer,
    handing each text chunk to the writer as it is produced — the
    redirect-to-file delivery of §2.2: nothing is materialized, and the
    writer's pace backpressures the producer through the queue. *)

val stream_cancel : stream -> unit
(** Cancels this stream's query and unblocks both sides: the producer's
    next push aborts, the consumer's next read reports the cancel. *)

val stream_peak_buffered : stream -> int
(** High-water token occupancy of the delivery queue so far — never
    exceeds the [buffer] handed to {!session_run_stream}; also stamped
    on the plan root's [c_peak_buffer] counter when the producer
    finishes. *)

val admission_stats : t -> admission_stats
(** The serving-layer counters alone (also embedded in {!stats}). *)

val explain :
  t -> ?analyze:bool -> ?timings:bool -> string -> (string, string) result
(** Unified EXPLAIN: the static type, then one indented tree of middleware
    operators — joins with their method, k and prefetch depth; pushed-SQL
    regions with their dialect, statement, parameter slots and column
    binds; async/fail-over/timeout guards; cacheable call sites — each
    line carrying the operator's runtime counters, and under every pushed
    region the backend's own access-path plan lines. [analyze] (default
    true) executes the plan first (counters reset, EXPLAIN-ANALYZE style)
    so the counters and backend lines reflect a real run; [analyze:false]
    renders the static tree with zero counters. [timings] (default false)
    adds wall-clock fields; off, the output is deterministic and
    golden-testable. *)

val plan_cache_hits : t -> int
val plan_cache_misses : t -> int
