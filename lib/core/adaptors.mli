(** The runtime side of the adaptor framework (§5.3, Figure 2).

    Every source invocation follows the same 5-step protocol: establish a
    connection, translate parameters from the token-stream world into the
    source's data model, invoke the source, translate the result back into
    typed XML, and release the connection. For the in-memory substrates,
    connection management reduces to accounting, but the translation steps
    are real: relational rows become "ragged" row elements (NULL = missing
    element, §4.4), service payloads are schema-validated into typed trees,
    and custom-function arguments are atomized. *)

open Aldsp_xml
open Aldsp_relational
open Aldsp_services

val row_to_element :
  row_name:Qname.t ->
  columns:(string * Atomic.atomic_type) list ->
  Sql_value.t array ->
  Node.t
(** The SQL-to-XML mapping of §4.4: one child element per non-NULL column,
    values typed per the column's SQL type. *)

val relational_scan :
  Database.t -> table:string -> row_name:Qname.t -> (Item.sequence, string) result
(** Full-table read function: [SELECT * FROM table] through the executor
    (accounted as one roundtrip), rows converted to row elements. *)

val relational_select :
  Database.t ->
  Sql_ast.select ->
  params:Sql_value.t array ->
  (Sql_exec.result_set, string) result
(** Executes generated SQL with middleware-computed parameter bindings. *)

val relational_select_explained :
  Database.t ->
  Sql_ast.select ->
  params:Sql_value.t array ->
  (Sql_exec.result_set * string list, string) result
(** {!relational_select} plus the backend's access-path plan lines for the
    statement, captured race-free with the result (the plan executor
    stitches them under the pushed region in unified EXPLAIN). *)

val relational_select_shared :
  Database.t ->
  Sql_ast.select ->
  params:Sql_value.t array ->
  (Sql_exec.result_set * string list * bool, string) result
(** {!relational_select_explained} through {!Sql_exec.query_shared}: when
    the database opts into cross-session work sharing, byte-identical
    concurrent statements execute once and compatible single-key probes
    batch into one roundtrip. The boolean reports whether this statement
    was served from another session's work (surfaced as the plan's
    [shared=] counter). *)

val relational_select_stream :
  Database.t ->
  Sql_ast.select ->
  params:Sql_value.t array ->
  (Sql_exec.streamed, string) result
(** The cursor-shaped face of {!relational_select_shared}: a direct
    statement opens a {!Sql_exec.cursor} the executor drains chunk by
    chunk; under active work sharing the materialized shared result set
    rides along whole. *)

val relational_select_async :
  Pool.t ->
  Database.t ->
  Sql_ast.select ->
  params:Sql_value.t array ->
  ((Sql_exec.result_set, string) result * float) Future.t
(** {!relational_select} submitted to the worker pool — the asynchronous
    adaptor call of §6. The float is the roundtrip's wall time in seconds,
    measured on the worker. *)

val service_call :
  Web_service.t -> operation:string -> Item.sequence -> (Item.sequence, string) result
(** Document-style call: the argument must be a single element (the request
    document); the typed response element is returned. *)

val custom_call :
  Custom_function.registry ->
  Qname.t ->
  Item.sequence list ->
  (Item.sequence, string) result
(** Atomizes each argument to a singleton and invokes the registered
    external function; an empty result models the function's [?] type. *)

val atomic_to_sql : Atomic.t option -> Sql_value.t
(** Boundary conversion for parameter passing (missing = NULL). *)
