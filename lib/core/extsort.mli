(** Bounded-memory external merge sort (ROADMAP item: spill-to-disk for
    unclustered group-by and sort).

    The blocking operators of the executor — ORDER BY and the unclustered
    GROUP BY fallback — route their input through {!sort}. With no budget
    the sort is the familiar in-memory {!List.stable_sort} (byte-identical
    behaviour, zero I/O, zero extra allocation). With a budget of [n]
    rows, input is accumulated [n] rows at a time; each full run is
    stable-sorted in memory and spilled to a temp file as Marshal-framed
    chunks, and the run files are merged back lazily as a ['a Seq.t], so
    downstream operators keep streaming while peak resident rows stay
    bounded by the budget.

    Properties the executor relies on:
    - {b Stability}: equal elements come out in input order, whatever mix
      of in-memory runs, spills and merge passes produced them. Runs are
      stable-sorted, and every merge breaks ties toward the
      earlier-numbered run.
    - {b Bounded fan-in}: a merge reads at most [max_fanin] runs at once
      (intermediate passes re-spill), so file descriptors and resident
      merge frames stay bounded however many runs the input produced.
    - {b Cancellation}: spill writes, merge reads and every produced
      element poll the ambient {!Cancel} token; a cancelled sort removes
      its temp files before re-raising.
    - {b Cleanup}: the per-sort temp directory is removed when the output
      sequence is exhausted, and on any exception (including
      [Cancel.Cancelled]) raised while producing it.

    The output sequence of a spilled sort reads from files and is
    single-consumption; the executor wraps each sort in a fresh pipeline
    so this never observable. Elements must be marshalable (no closures —
    the executor forces [Later] bindings to values before sorting). *)

(** Live accounting for one sort, updated as the sort runs. All zero when
    the input fit in the budget (or no budget was set). *)
type stats = {
  mutable runs_spilled : int;  (** Run files written, all passes. *)
  mutable rows_spilled : int;  (** Rows written to disk, all passes. *)
  mutable bytes_spilled : int;  (** Marshal frame bytes written. *)
  mutable merge_fanin : int;  (** Fan-in of the widest merge performed. *)
  mutable peak_resident : int;
      (** Peak rows held in memory at once: the run accumulator while
          spilling, loaded merge frames while merging. *)
}

val zero_stats : unit -> stats

val default_max_fanin : int
(** Runs merged at once before an intermediate pass re-spills (64). *)

val sort :
  ?stats:stats ->
  ?temp_dir:string ->
  ?max_fanin:int ->
  budget_rows:int option ->
  cmp:('a -> 'a -> int) ->
  'a Seq.t ->
  'a Seq.t
(** [sort ~budget_rows ~cmp input] sorts [input] stably under [cmp].
    [budget_rows = None] (or a budget the input never exceeds) is a plain
    in-memory stable sort. Otherwise runs of [budget_rows] rows spill to
    fresh files under [temp_dir] (default: the system temp dir) and merge
    back lazily. The sort is lazy either way: nothing is consumed, sorted
    or spilled until the first element of the result is forced. *)

(** / *)

(** Run-file framing, exposed for tests and tooling: a run file is a
    sequence of Marshal frames, each an ['a array] chunk of at most
    [chunk_rows] elements, in run order. *)

val write_run_file : chunk_rows:int -> string -> 'a array -> int
(** Writes one sorted run to [path]; returns bytes written. Polls the
    ambient cancel token between frames. *)

val read_run_file : string -> 'a list
(** Reads a whole run file back (test helper; the merge itself streams
    frame by frame). *)
