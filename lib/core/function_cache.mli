(** The mid-tier function cache (§5.5).

    "ALDSP's cache is a function cache — rather like a Web service cache":
    a persistent, distributed map from (function, argument values) to the
    function result, suited to turning high-latency data service calls into
    single-row database lookups. Following the paper, the implementation
    employs a relational database for persistence/distribution: each entry
    is a row in an [ALDSP_FN_CACHE] table keyed by function name and
    serialized arguments, carrying the serialized result and its expiry.
    Lookups execute one parameterized single-row SELECT against the cache
    database (so cache hits are visible in that database's statistics); a
    per-process materialized value is kept alongside so hits preserve typed
    tokens, with the table's XML used on cold hits.

    Caching must be {e allowed} by the data service designer
    ([fd_cacheable]) and then {e enabled} administratively with a TTL per
    function. The cache stores unfiltered results; security filtering
    applies after the cache so entries are shared across users (§7).

    All operations are safe to call from worker-pool threads: a single
    lock guards the statistics, the TTL and materialized tables, and makes
    {!store}'s DELETE+INSERT atomic with respect to concurrent {!lookup}s.
    Result computation on a miss runs outside the lock, under a per-key
    {!Aldsp_concurrency.Singleflight} flight: concurrent misses on the
    same key coalesce on a single computation, the followers sharing the
    leader's value ({!coalesced} counts the computations avoided). The
    per-process materialized table is bounded ([capacity], LRU): evicting
    a typed value only loses its type annotations — the persistent row
    remains and serves cold hits. *)

open Aldsp_xml

type t

val table_name : string

val create :
  ?clock:(unit -> float) -> ?capacity:int ->
  Aldsp_relational.Database.t -> t
(** Uses (and creates if needed) the cache table in the given database.
    [clock] is injectable for TTL tests. [capacity] (default 256) bounds
    the per-process materialized typed-value table with LRU eviction;
    the persistent table is unaffected. *)

val enable : t -> Qname.t -> ttl_seconds:float -> unit
(** Administrative enablement with a time-to-live. *)

val disable : t -> Qname.t -> unit
val is_enabled : t -> Qname.t -> bool

val lookup :
  t -> Qname.t -> Item.sequence list -> Item.sequence option
(** [Some result] on a fresh hit; [None] on miss or stale entry. *)

val store : t -> Qname.t -> Item.sequence list -> Item.sequence -> unit

val invalidate : t -> Qname.t -> unit
(** Drops all entries of one function. *)

val wrapper : t -> Metadata.function_def -> Item.sequence list ->
  (unit -> Item.sequence) -> Item.sequence
(** An {!Eval.call_wrapper}: consults the cache for calls to functions that
    are designer-allowed and administratively enabled. *)

val hits : t -> int
val misses : t -> int

val coalesced : t -> int
(** Misses served from another session's in-flight computation — function
    invocations avoided by single-flight coalescing. *)

val materialized_count : t -> int
(** Live entries of the bounded per-process typed-value table. *)

val reset_stats : t -> unit
