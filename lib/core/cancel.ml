(* Re-export: cancellation lives below the relational/services layers
   (their simulated-latency sleeps must be interruptible) but is part of
   the core API surface — [Server.submit] hands tokens out and the
   evaluator checks them. *)
include Aldsp_concurrency.Cancel
