open Aldsp_xml
module C = Cexpr
module Database = Aldsp_relational.Database
module Sql_print = Aldsp_relational.Sql_print

type counters = {
  mutable c_est : int;
  mutable c_starts : int;
  mutable c_rows : int;
  mutable c_roundtrips : int;
  mutable c_cache_hits : int;
  mutable c_cache_misses : int;
  mutable c_shared : int;
  mutable c_wall : float;
  mutable c_first_row_ns : float;
  mutable c_peak_buffer : int;
  mutable c_spill_runs : int;
  mutable c_spill_rows : int;
  mutable c_spill_bytes : int;
  mutable c_merge_fanin : int;
}

type call_target =
  | T_function of { cacheable : bool; external_ : bool }
  | T_builtin
  | T_unresolved

type let_mode = L_plain | L_async | L_concurrent

type t = { id : int; counters : counters; node : node }

and node =
  | P_const of Atomic.t
  | P_empty
  | P_seq of t list
  | P_var of C.var
  | P_construct of {
      name : Qname.t;
      optional : bool;
      attrs : pattr list;
      content : t;
    }
  | P_if of { cond : t; then_ : t; else_ : t }
  | P_quantified of { universal : bool; var : C.var; source : t; pred : t }
  | P_call of { fn : Qname.t; target : call_target; args : t list }
  | P_async of t
  | P_fail_over of { primary : t; alternate : t }
  | P_timeout of { primary : t; millis : t; alternate : t }
  | P_child of t * Qname.t
  | P_child_wild of t
  | P_attr_of of t * Qname.t
  | P_filter of { input : t; dot : C.var; pos : C.var; pred : t }
  | P_data of t
  | P_ebv of t
  | P_binop of C.binop * t * t
  | P_typematch of t * Stype.t
  | P_cast of t * Atomic.atomic_type
  | P_castable of t * Atomic.atomic_type
  | P_instance_of of t * Stype.t
  | P_error of string
  | P_pipeline of { ops : op list; return_ : t }

and pattr = { p_aname : Qname.t; p_avalue : t; p_aoptional : bool }

and op = { op_id : int; op_counters : counters; op_node : op_node }

and op_node =
  | O_scan of { var : C.var; source : t }
  | O_let of { var : C.var; value : t; mode : let_mode }
  | O_select of t
  | O_group of {
      aggs : (C.var * C.var) list;
      keys : (t * C.var) list;
      clustered : bool;
    }
  | O_sort of { keys : (t * bool) list }
  | O_join of {
      kind : C.join_kind;
      method_ : C.join_method;
      right : op list;
      on_ : t;
      equi : pequi option;
      export : pexport;
    }
  | O_sql of sql_region

and pequi = { eq_pairs : (t * t) list; eq_residual : t list }

and pexport = PE_bindings | PE_grouped of { gvar : C.var; gexpr : t }

and sql_region = {
  sql_db : string;
  sql_dialect : string;
  sql_text : string;
  sql_select : Aldsp_relational.Sql_ast.select;
  sql_params : t list;
  sql_binds : C.sql_bind list;
  mutable sql_backend : string list;
}

let zero () =
  { c_est = 0; c_starts = 0; c_rows = 0; c_roundtrips = 0; c_cache_hits = 0;
    c_cache_misses = 0; c_shared = 0; c_wall = 0.; c_first_row_ns = 0.;
    c_peak_buffer = 0; c_spill_runs = 0; c_spill_rows = 0; c_spill_bytes = 0;
    c_merge_fanin = 0 }

(* ------------------------------------------------------------------ *)
(* Lowering                                                            *)

let compile registry root =
  let next = ref 0 in
  let fresh () = incr next; !next in
  let mk node = { id = fresh (); counters = zero (); node } in
  let mk_op op_node = { op_id = fresh (); op_counters = zero (); op_node } in
  let external_call = function
    | C.Call { fn; args } -> (
      match Metadata.resolve_call registry fn (List.length args) with
      | Some fd -> (
        match fd.Metadata.fd_impl with
        | Metadata.External _ -> true
        | Metadata.Body _ -> false)
      | None -> false)
    | _ -> false
  in
  (* Compile-time cardinality estimates, recorded alongside each
     operator's runtime counters so EXPLAIN --analyze can print
     est=/act= pairs. [advance] mirrors {!Cost_model.clauses_cardinality}
     one clause at a time: the estimate stored on an operator is the
     binding tuples it is expected to emit. *)
  let advance est clause =
    match est with
    | None -> None
    | Some tuples -> (
      match clause with
      | C.For { source; _ } -> (
        match Cost_model.expr_cardinality registry source with
        | Some n -> Some (tuples * n)
        | None -> None)
      | C.Let _ | C.Group _ | C.Order _ -> Some tuples
      | C.Where _ -> Some (max 1 (tuples / Cost_model.selection_fraction))
      | C.Rel r -> (
        match Cost_model.rel_cardinality registry r with
        | Some n -> Some (tuples * n)
        | None -> None)
      | C.Join { right; export; _ } -> (
        match export with
        | C.Grouped _ -> Some tuples
        | C.Bindings -> (
          match Cost_model.clauses_cardinality registry right with
          | Some inner -> Some (max tuples inner)
          | None -> None)))
  in
  let set_est c = function Some n -> c.c_est <- n | None -> () in
  let rec expr (e : C.t) : t =
    let p = expr_node e in
    set_est p.counters (Cost_model.expr_cardinality registry e);
    p
  and expr_node (e : C.t) : t =
    match e with
    | C.Const a -> mk (P_const a)
    | C.Empty -> mk P_empty
    | C.Seq es -> mk (P_seq (List.map expr es))
    | C.Var v -> mk (P_var v)
    | C.Elem { name; optional; attrs; content } ->
      mk
        (P_construct
           { name;
             optional;
             attrs =
               List.map
                 (fun (a : C.attr) ->
                   { p_aname = a.C.aname;
                     p_avalue = expr a.C.avalue;
                     p_aoptional = a.C.aoptional })
                 attrs;
             content = expr content })
    | C.Flwor { clauses; return_ } ->
      mk
        (P_pipeline
           { ops = lower_clauses (Some 1) clauses; return_ = expr return_ })
    | C.If { cond; then_; else_ } ->
      mk (P_if { cond = expr cond; then_ = expr then_; else_ = expr else_ })
    | C.Quantified { universal; var; source; pred } ->
      mk (P_quantified { universal; var; source = expr source; pred = expr pred })
    | C.Call { fn; args = [ arg ] } when Qname.equal fn Names.async ->
      mk (P_async (expr arg))
    | C.Call { fn; args = [ prim; alt ] } when Qname.equal fn Names.fail_over ->
      mk (P_fail_over { primary = expr prim; alternate = expr alt })
    | C.Call { fn; args = [ prim; millis; alt ] }
      when Qname.equal fn Names.timeout ->
      mk
        (P_timeout
           { primary = expr prim; millis = expr millis; alternate = expr alt })
    | C.Call { fn; args } ->
      let arity = List.length args in
      let target =
        match Metadata.resolve_call registry fn arity with
        | Some fd ->
          T_function
            { cacheable = fd.Metadata.fd_cacheable;
              external_ =
                (match fd.Metadata.fd_impl with
                | Metadata.External _ -> true
                | Metadata.Body _ -> false) }
        | None -> (
          match Fn_lib.find fn arity with
          | Some _ -> T_builtin
          | None -> T_unresolved)
      in
      mk (P_call { fn; target; args = List.map expr args })
    | C.Child (input, n) -> mk (P_child (expr input, n))
    | C.Child_wild input -> mk (P_child_wild (expr input))
    | C.Attr_of (input, n) -> mk (P_attr_of (expr input, n))
    | C.Filter { input; dot; pos; pred } ->
      mk (P_filter { input = expr input; dot; pos; pred = expr pred })
    | C.Data input -> mk (P_data (expr input))
    | C.Ebv input -> mk (P_ebv (expr input))
    | C.Binop (op, a, b) -> mk (P_binop (op, expr a, expr b))
    | C.Typematch (input, ty) -> mk (P_typematch (expr input, ty))
    | C.Cast (input, ty) -> mk (P_cast (expr input, ty))
    | C.Castable (input, ty) -> mk (P_castable (expr input, ty))
    | C.Instance_of (input, ty) -> mk (P_instance_of (expr input, ty))
    | C.Error_expr msg -> mk (P_error msg)
  (* A maximal run of adjacent lets is analyzed as one unit, mirroring the
     executor's binding step: an explicit fn-bea:async value, or an
     external-source call with no data dependence on the run's other
     bindings, is marked for ahead-of-use submission (§5.4). *)
  and lower_lets run =
    let run_vars =
      List.filter_map (function C.Let { var; _ } -> Some var | _ -> None) run
    in
    let independent e =
      let fv = C.free_vars e () in
      not (List.exists (fun v -> Hashtbl.mem fv v) run_vars)
    in
    List.map
      (fun cl ->
        match cl with
        | C.Let { var; value } ->
          let mode =
            match value with
            | C.Call { fn; args = [ _ ] } when Qname.equal fn Names.async ->
              L_async
            | value
              when List.length run_vars > 1
                   && external_call value && independent value ->
              L_concurrent
            | _ -> L_plain
          in
          mk_op (O_let { var; value = expr value; mode })
        | _ -> assert false)
      run
  and lower_clauses est clauses =
    match clauses with
    | [] -> []
    | C.Let _ :: _ ->
      let rec split run = function
        | (C.Let _ as l) :: rest -> split (l :: run) rest
        | rest -> (List.rev run, rest)
      in
      let run, rest = split [] clauses in
      let ops = lower_lets run in
      List.iter (fun o -> set_est o.op_counters est) ops;
      ops @ lower_clauses est rest
    | clause :: rest ->
      let est' = advance est clause in
      let op =
        match clause with
        | C.For { var; source } -> mk_op (O_scan { var; source = expr source })
        | C.Let _ -> assert false
        | C.Where cond -> mk_op (O_select (expr cond))
        | C.Group { aggs; keys; clustered } ->
          mk_op
            (O_group
               { aggs;
                 keys = List.map (fun (e, v) -> (expr e, v)) keys;
                 clustered })
        | C.Order { keys } ->
          mk_op (O_sort { keys = List.map (fun (e, d) -> (expr e, d)) keys })
        | C.Join { kind; method_; right; on_; export } ->
          let equi =
            match method_ with
            | C.Index_nested_loop -> (
              match
                Optimizer.equi_join_keys ~right_vars:(C.clause_vars right) on_
              with
              | Some (pairs, residual) ->
                Some
                  { eq_pairs =
                      List.map (fun (l, r) -> (expr l, expr r)) pairs;
                    eq_residual = List.map expr residual }
              | None -> None)
            | C.Nested_loop | C.Ppk _ -> None
          in
          mk_op
            (O_join
               { kind;
                 method_;
                 right = lower_clauses est right;
                 on_ = expr on_;
                 equi;
                 export =
                   (match export with
                   | C.Bindings -> PE_bindings
                   | C.Grouped { gvar; gexpr } ->
                     PE_grouped { gvar; gexpr = expr gexpr }) })
        | C.Rel r ->
          let dialect, vendor =
            match Metadata.find_database registry r.C.db with
            | Some db ->
              (Database.vendor_name db.Database.vendor, db.Database.vendor)
            | None -> ("sql92", Database.Generic_sql92)
          in
          let sql_text =
            try Sql_print.select_to_string vendor r.C.select
            with Sql_print.Unsupported reason ->
              "<unprintable: " ^ reason ^ ">"
          in
          mk_op
            (O_sql
               { sql_db = r.C.db;
                 sql_dialect = dialect;
                 sql_text;
                 sql_select = r.C.select;
                 sql_params = List.map expr r.C.sql_params;
                 sql_binds = r.C.binds;
                 sql_backend = [] })
      in
      set_est op.op_counters est';
      op :: lower_clauses est' rest
  in
  expr root

(* ------------------------------------------------------------------ *)
(* Traversal                                                           *)

let rec sub_plans p =
  match p.node with
  | P_const _ | P_empty | P_var _ | P_error _ -> []
  | P_seq es -> es
  | P_construct { attrs; content; _ } ->
    List.map (fun a -> a.p_avalue) attrs @ [ content ]
  | P_if { cond; then_; else_ } -> [ cond; then_; else_ ]
  | P_quantified { source; pred; _ } -> [ source; pred ]
  | P_call { args; _ } -> args
  | P_async p -> [ p ]
  | P_fail_over { primary; alternate } -> [ primary; alternate ]
  | P_timeout { primary; millis; alternate } -> [ primary; millis; alternate ]
  | P_child (p, _) | P_attr_of (p, _) | P_child_wild p -> [ p ]
  | P_filter { input; pred; _ } -> [ input; pred ]
  | P_data p | P_ebv p -> [ p ]
  | P_binop (_, a, b) -> [ a; b ]
  | P_typematch (p, _) | P_cast (p, _) | P_castable (p, _)
  | P_instance_of (p, _) ->
    [ p ]
  | P_pipeline { ops; return_ } ->
    List.concat_map op_sub_plans ops @ [ return_ ]

and op_sub_plans o =
  match o.op_node with
  | O_scan { source; _ } -> [ source ]
  | O_let { value; _ } -> [ value ]
  | O_select p -> [ p ]
  | O_group { keys; _ } -> List.map fst keys
  | O_sort { keys } -> List.map fst keys
  | O_join { right; on_; equi; export; _ } ->
    List.concat_map op_sub_plans right
    @ [ on_ ]
    @ (match equi with
      | None -> []
      | Some { eq_pairs; eq_residual } ->
        List.concat_map (fun (l, r) -> [ l; r ]) eq_pairs @ eq_residual)
    @ (match export with PE_bindings -> [] | PE_grouped { gexpr; _ } -> [ gexpr ])
  | O_sql r -> r.sql_params

let rec iter_counters f p =
  f p.counters;
  (match p.node with
  | P_pipeline { ops; _ } -> List.iter (iter_op_counters f) ops
  | _ -> ());
  List.iter (iter_counters f)
    (match p.node with
    | P_pipeline { return_; _ } -> [ return_ ]
    | _ -> sub_plans p)

and iter_op_counters f o =
  f o.op_counters;
  (match o.op_node with
  | O_join { right; _ } -> List.iter (iter_op_counters f) right
  | _ -> ());
  List.iter (iter_counters f) (op_sub_plans o)

let rec iter_regions f p =
  (match p.node with
  | P_pipeline { ops; _ } -> List.iter (iter_region_op f) ops
  | _ -> ());
  List.iter (iter_regions f)
    (match p.node with
    | P_pipeline { return_; _ } -> [ return_ ]
    | _ -> sub_plans p)

and iter_region_op f o =
  (match o.op_node with
  | O_sql r -> f r
  | O_join { right; _ } -> List.iter (iter_region_op f) right
  | _ -> ());
  List.iter (iter_regions f) (op_sub_plans o)

let regions p =
  let acc = ref [] in
  iter_regions (fun r -> acc := r :: !acc) p;
  List.rev !acc

(* c_est is a compile-time quantity and survives counter resets. *)
let reset_counters p =
  iter_counters
    (fun c ->
      c.c_starts <- 0;
      c.c_rows <- 0;
      c.c_roundtrips <- 0;
      c.c_cache_hits <- 0;
      c.c_cache_misses <- 0;
      c.c_shared <- 0;
      c.c_wall <- 0.;
      c.c_first_row_ns <- 0.;
      c.c_peak_buffer <- 0;
      c.c_spill_runs <- 0;
      c.c_spill_rows <- 0;
      c.c_spill_bytes <- 0;
      c.c_merge_fanin <- 0)
    p;
  List.iter (fun r -> r.sql_backend <- []) (regions p)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

(* Compact one-line form of an expression subtree, for operator labels. *)
let rec summary p =
  match p.node with
  | P_const a -> Format.asprintf "%a" Atomic.pp a
  | P_empty -> "()"
  | P_seq es -> "(" ^ String.concat ", " (List.map summary es) ^ ")"
  | P_var v -> "$" ^ v
  | P_construct { name; optional; content; _ } ->
    Printf.sprintf "element %s%s {%s}" (Qname.to_string name)
      (if optional then "?" else "")
      (summary content)
  | P_if { cond; then_; else_ } ->
    Printf.sprintf "if (%s) then %s else %s" (summary cond) (summary then_)
      (summary else_)
  | P_quantified { universal; var; source; pred } ->
    Printf.sprintf "%s $%s in %s satisfies %s"
      (if universal then "every" else "some")
      var (summary source) (summary pred)
  | P_call { fn; args; _ } ->
    Printf.sprintf "%s(%s)" (Qname.to_string fn)
      (String.concat ", " (List.map summary args))
  | P_async p -> Printf.sprintf "async(%s)" (summary p)
  | P_fail_over { primary; alternate } ->
    Printf.sprintf "fail-over(%s, %s)" (summary primary) (summary alternate)
  | P_timeout { primary; millis; alternate } ->
    Printf.sprintf "timeout(%s, %s, %s)" (summary primary) (summary millis)
      (summary alternate)
  | P_child (p, n) -> summary p ^ "/" ^ Qname.to_string n
  | P_child_wild p -> summary p ^ "/*"
  | P_attr_of (p, n) -> summary p ^ "/@" ^ Qname.to_string n
  | P_filter { input; dot; pred; _ } ->
    Printf.sprintf "%s[%s: %s]" (summary input) dot (summary pred)
  | P_data p -> Printf.sprintf "data(%s)" (summary p)
  | P_ebv p -> Printf.sprintf "ebv(%s)" (summary p)
  | P_binop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (summary a) (C.binop_name op) (summary b)
  | P_typematch (p, ty) ->
    Printf.sprintf "typematch(%s, %s)" (summary p) (Stype.to_string ty)
  | P_cast (p, ty) ->
    Printf.sprintf "cast(%s as %s)" (summary p) (Atomic.type_name ty)
  | P_castable (p, ty) ->
    Printf.sprintf "(%s castable as %s)" (summary p) (Atomic.type_name ty)
  | P_instance_of (p, ty) ->
    Printf.sprintf "(%s instance of %s)" (summary p) (Stype.to_string ty)
  | P_error msg -> Printf.sprintf "error(%S)" msg
  | P_pipeline _ -> "flwor {...}"

let cap s = if String.length s > 90 then String.sub s 0 87 ^ "..." else s

let method_label = function
  | C.Nested_loop -> "nested-loop"
  | C.Index_nested_loop -> "index-nl"
  | C.Ppk { k; prefetch; inner } ->
    Printf.sprintf "pp-k(k=%d, prefetch=%d, inner=%s)" k prefetch
      (match inner with C.Inner_nl -> "nl" | C.Inner_inl -> "inl")

(* Node kinds whose subtree is rendered as a tree rather than inlined:
   the "operator" nodes themselves plus any container on the path to
   one. *)
let rec structural p =
  match p.node with
  | P_pipeline _ | P_construct _ | P_async _ | P_fail_over _ | P_timeout _ ->
    true
  | P_call { target = T_function _; _ } -> true
  | _ -> List.exists structural (sub_plans p)

let node_label p =
  match p.node with
  | P_pipeline _ -> "flwor"
  | P_construct { name; optional; _ } ->
    Printf.sprintf "construct <%s%s>" (Qname.to_string name)
      (if optional then "?" else "")
  | P_call { fn; target; args } ->
    Printf.sprintf "call %s/%d%s" (Qname.to_string fn) (List.length args)
      (match target with
      | T_function { cacheable; external_ } ->
        (if external_ then " [external]" else "")
        ^ (if cacheable then " [cacheable]" else "")
      | T_builtin -> " [builtin]"
      | T_unresolved -> "")
  | P_async _ -> "async"
  | P_fail_over _ -> "fail-over"
  | P_timeout _ -> "timeout"
  | P_seq _ -> "seq"
  | P_if { cond; _ } -> "if " ^ cap (summary cond)
  | P_quantified { universal; var; _ } ->
    Printf.sprintf "%s $%s"
      (if universal then "every" else "some")
      var
  | P_filter { dot; pred; _ } ->
    Printf.sprintf "filter [%s: %s]" dot (cap (summary pred))
  | P_data _ -> "data"
  | P_ebv _ -> "ebv"
  | P_binop (op, _, _) -> "op " ^ C.binop_name op
  | P_child (_, n) -> "child " ^ Qname.to_string n
  | P_child_wild _ -> "child *"
  | P_attr_of (_, n) -> "attr @" ^ Qname.to_string n
  | P_typematch _ -> "typematch"
  | P_cast (_, ty) -> "cast as " ^ Atomic.type_name ty
  | P_castable (_, ty) -> "castable as " ^ Atomic.type_name ty
  | P_instance_of _ -> "instance-of"
  | P_const _ | P_empty | P_var _ | P_error _ -> cap (summary p)

let op_label o =
  match o.op_node with
  | O_scan { var; source } ->
    Printf.sprintf "scan $%s in %s" var (cap (summary source))
  | O_let { var; value; mode } ->
    Printf.sprintf "let%s $%s := %s"
      (match mode with
      | L_plain -> ""
      | L_async -> "[async]"
      | L_concurrent -> "[concurrent]")
      var (cap (summary value))
  | O_select p -> "select " ^ cap (summary p)
  | O_group { aggs; keys; clustered } ->
    Printf.sprintf "group-by%s %s by %s"
      (if clustered then "[pre-clustered]" else "")
      (String.concat ", "
         (List.map (fun (a, b) -> Printf.sprintf "$%s as $%s" a b) aggs))
      (String.concat ", "
         (List.map
            (fun (e, v) -> Printf.sprintf "%s as $%s" (cap (summary e)) v)
            keys))
  | O_sort { keys } ->
    "sort "
    ^ String.concat ", "
        (List.map
           (fun (e, desc) ->
             cap (summary e) ^ if desc then " descending" else "")
           keys)
  | O_join { kind; method_; export; _ } ->
    Printf.sprintf "join[%s] method=%s%s"
      (match kind with C.J_inner -> "inner" | C.J_left_outer -> "left-outer")
      (method_label method_)
      (match export with
      | PE_bindings -> ""
      | PE_grouped { gvar; _ } -> Printf.sprintf " grouped as $%s" gvar)
  | O_sql r -> Printf.sprintf "sql[%s dialect=%s]" r.sql_db r.sql_dialect

let counters_suffix ~timings c =
  let parts =
    [ Printf.sprintf "est=%d act=%d" c.c_est c.c_rows ]
    @ (if c.c_roundtrips > 0 then
         [ Printf.sprintf "roundtrips=%d" c.c_roundtrips ]
       else [])
    @ (if c.c_cache_hits > 0 || c.c_cache_misses > 0 then
         [ Printf.sprintf "cache-hits=%d cache-misses=%d" c.c_cache_hits
             c.c_cache_misses ]
       else [])
    (* only under active work sharing, so golden plans are unaffected *)
    @ (if c.c_shared > 0 then [ Printf.sprintf "shared=%d" c.c_shared ]
       else [])
    (* only after a streamed delivery of this plan, same reasoning *)
    @ (if c.c_peak_buffer > 0 then
         [ Printf.sprintf "peak-buffer=%d" c.c_peak_buffer ]
       else [])
    (* only when the operator actually spilled, so zero-spill plans (and
       every golden) render exactly as before *)
    @ (if c.c_spill_runs > 0 then
         [ Printf.sprintf "spill=%d spill-rows=%d spill-bytes=%d fanin=%d"
             c.c_spill_runs c.c_spill_rows c.c_spill_bytes c.c_merge_fanin ]
       else [])
    @ (if timings && c.c_wall > 0. then
         [ Printf.sprintf "wall=%.1fms" (c.c_wall *. 1000.) ]
       else [])
    @
    (* time-to-first-row is wall-clock, so it rides with --timings *)
    if timings && c.c_first_row_ns > 0. then
      [ Printf.sprintf "ttft=%.1fms" (c.c_first_row_ns /. 1e6) ]
    else []
  in
  " (" ^ String.concat " " parts ^ ")"

let render ?(timings = false) plan =
  let buf = Buffer.create 1024 in
  let line indent text =
    Buffer.add_string buf (String.make (indent * 2) ' ');
    Buffer.add_string buf text;
    Buffer.add_char buf '\n'
  in
  let rec node indent prefix p =
    if structural p then begin
      line indent
        (prefix ^ node_label p ^ counters_suffix ~timings p.counters);
      match p.node with
      | P_pipeline { ops; return_ } ->
        List.iter (op (indent + 1)) ops;
        node (indent + 1) "return " return_
      | P_construct { attrs; content; _ } ->
        List.iter
          (fun a ->
            node (indent + 1)
              (Printf.sprintf "@%s%s := " (Qname.to_string a.p_aname)
                 (if a.p_aoptional then "?" else ""))
              a.p_avalue)
          attrs;
        node (indent + 1) "" content
      | P_call { args; _ } ->
        List.iteri
          (fun i a -> node (indent + 1) (Printf.sprintf "arg%d " (i + 1)) a)
          args
      | P_async p -> node (indent + 1) "" p
      | P_fail_over { primary; alternate } ->
        node (indent + 1) "primary " primary;
        node (indent + 1) "alternate " alternate
      | P_timeout { primary; millis; alternate } ->
        node (indent + 1) "primary " primary;
        node (indent + 1) "after " millis;
        node (indent + 1) "alternate " alternate
      | _ -> List.iter (node (indent + 1) "") (sub_plans p)
    end
    else line indent (prefix ^ cap (summary p))
  and op indent o =
    line indent (op_label o ^ counters_suffix ~timings o.op_counters);
    match o.op_node with
    | O_scan { source; _ } -> if structural source then node (indent + 1) "" source
    | O_let { value; _ } -> if structural value then node (indent + 1) "" value
    | O_select p -> if structural p then node (indent + 1) "" p
    | O_group _ | O_sort _ -> ()
    | O_join { right; on_; export; _ } ->
      List.iter (op (indent + 1)) right;
      line (indent + 1) ("on " ^ cap (summary on_));
      (match export with
      | PE_bindings -> ()
      | PE_grouped { gexpr; _ } ->
        if structural gexpr then node (indent + 1) "group: " gexpr
        else line (indent + 1) ("group: " ^ cap (summary gexpr)))
    | O_sql r ->
      line (indent + 1) r.sql_text;
      List.iteri
        (fun i p ->
          line (indent + 1)
            (Printf.sprintf "param ?%d := %s" (i + 1) (cap (summary p))))
        r.sql_params;
      if r.sql_binds <> [] then
        line (indent + 1)
          ("binds: "
          ^ String.concat ", "
              (List.map
                 (fun (b : C.sql_bind) ->
                   Printf.sprintf "$%s <- %s" b.C.bvar b.C.bcol)
                 r.sql_binds));
      List.iter (fun l -> line (indent + 1) ("backend: " ^ l)) r.sql_backend
  in
  node 0 "" plan;
  Buffer.contents buf

(* Worst est-vs-actual ratio across operators that both carry an
   estimate and actually produced rows; 1.0 when nothing qualifies. *)
let max_misestimate plan =
  let worst = ref 1. in
  iter_counters
    (fun c ->
      if c.c_est > 0 && c.c_rows > 0 then
        worst :=
          Float.max !worst (Cost_model.misestimate ~est:c.c_est ~actual:c.c_rows))
    plan;
  !worst

let operators plan =
  let acc = ref [] in
  let rec node p =
    if structural p then acc := (node_label p, p.counters) :: !acc;
    (match p.node with
    | P_pipeline { ops; _ } -> List.iter op ops
    | _ -> ());
    List.iter node
      (match p.node with
      | P_pipeline { return_; _ } -> [ return_ ]
      | _ -> sub_plans p)
  and op o =
    acc := (op_label o, o.op_counters) :: !acc;
    (match o.op_node with
    | O_join { right; _ } -> List.iter op right
    | _ -> ());
    List.iter node (op_sub_plans o)
  in
  node plan;
  List.rev !acc
