(** Data-source metadata and the function registry.

    "ALDSP introspects data source metadata in order to generate an
    XQuery-based model of the enterprise in the form of physical data
    services" (§3.2). This module is that model: every backend access is an
    XQuery function with a typed signature, annotated (the paper uses the
    pragma facility) with what the compiler and runtime need — the source
    kind, connection (database) name, vendor, and key information.

    Introspection of a relational database yields one read function per
    table plus navigation functions for its foreign keys (§2.1); the
    navigation functions are generated as ordinary XQuery bodies so that
    view unfolding and SQL pushdown apply to them like any other view.
    Introspecting a web service yields one function per operation. *)

open Aldsp_xml
open Aldsp_relational
open Aldsp_services

(** The source annotation of an external (physical) function. *)
type source =
  | Relational_table of {
      db : Database.t;
      table : string;
      row_name : Qname.t;
    }
  | Stored_procedure of {
      db : Database.t;
      procedure : string;
      row_name : Qname.t;
      columns : (string * Atomic.atomic_type) list option;
          (** [None] for scalar-returning procedures. *)
    }
  | Service_op of { service : Web_service.t; operation : string }
  | External_custom of Custom_function.registry
  | File_docs of Node.t list  (** Validated typed documents. *)

type kind = Read | Navigate | Library

type impl = Body of Cexpr.t | External of source

type function_def = {
  fd_name : Qname.t;
  fd_params : (Cexpr.var * Stype.t) list;
  fd_return : Stype.t;
  fd_impl : impl;
  fd_kind : kind;
  fd_cacheable : bool;  (** Designer allows result caching (§5.5). *)
  fd_pragmas : (string * string) list;
}

type data_service = {
  ds_name : string;
  ds_shape : Schema.element_decl option;
  ds_functions : Qname.t list;
  ds_lineage_provider : Qname.t option;
      (** Defaults to the first read method — the "get all" function
          (§6). *)
}

type t

val create : unit -> t

val copy : t -> t
(** A registry sharing the same sources but with independent function /
    service / schema tables — used by design-time checking so analysis
    never mutates the live registry. *)

val generation : t -> int
(** Monotonic counter bumped by every registry mutation (function or
    source registration, cacheability change, inverse declaration).
    {!Plan_cache} keys include it, so a compiled plan never outlives the
    metadata it was compiled against. *)

val add_function : t -> function_def -> unit
val find_function : t -> Qname.t -> int -> function_def option

val resolve_call : t -> Qname.t -> int -> function_def option
(** Like {!find_function}, with fallback: a name in the default function
    namespace that matches no builtin also tries the no-namespace registry
    (so unprefixed calls reach introspected sources). *)

val functions : t -> function_def list

val set_cacheable : t -> Qname.t -> bool -> unit

val add_database : t -> Database.t -> unit
val find_database : t -> string -> Database.t option

val databases : t -> Database.t list
(** All registered databases, sorted by name; used to roll backend
    operator statistics up into {!Server.stats}. *)

val stats_generation : t -> int
(** Sum of {!Database.stats_version} over every registered database: moves
    whenever any table row anywhere is inserted, updated, deleted or
    rolled back. The plan cache keys on it, so a plan whose join methods
    and PP-k depth were costed against stale statistics is recompiled
    rather than served. *)

val add_data_service : t -> data_service -> unit
val find_data_service : t -> string -> data_service option
val data_services : t -> data_service list

val add_schema : t -> Schema.element_decl -> unit
val find_schema : t -> Qname.t -> Schema.element_decl option

val custom_registry : t -> Custom_function.registry

(** {2 Inverse functions (§4.5)} *)

val register_inverse : t -> f:Qname.t -> inverse:Qname.t -> unit
(** Declares [inverse] as the inverse of [f] (and vice versa), enabling the
    transformation rules [(cmp, f) → cmp-with-inverse] used for pushdown
    and updates. *)

val inverse_of : t -> Qname.t -> Qname.t option
(** Symmetric lookup (used by lineage, which maps values both ways). *)

val transform_of : t -> Qname.t -> Qname.t option
(** Directional lookup for the optimizer's comparison-transformation rules:
    only the registered forward function rewrites through its inverse. *)

val register_multi_inverse :
  t -> f:Qname.t -> projections:Qname.t list -> unit
(** Multi-argument transformations (§4.5: "full name versus first name and
    last name"): [f(a1..an)] is invertible componentwise, with
    [a_i = projections_i(f(a1..an))]. Enables equality decomposition in
    the optimizer and per-column write-back in updates. *)

val projections_of : t -> Qname.t -> Qname.t list option

(** {2 Introspection} *)

val introspect_relational : t -> ?uri:string -> Database.t -> unit
(** Creates one read function per table ([{uri}TABLE() as element(TABLE)*])
    with key metadata in its pragmas, a navigation function per foreign key
    (as a generated XQuery body), a shape schema per table, and one data
    service per table. *)

val introspect_service : t -> ?uri:string -> Web_service.t -> unit
(** One function per operation, typed from its WSDL-like schemas. *)

val register_custom_function : t -> Custom_function.t -> unit
(** Registers an externally-provided ("Java") function for use in queries
    (§4.5). *)

val introspect_procedure : t -> ?uri:string -> Database.t -> Procedure.t -> unit
(** Surfaces a stored procedure as a typed function: row-returning
    procedures yield [element(NAME_ROW)*], scalar ones an optional
    atomic. *)

val register_csv_source :
  t ->
  ?uri:string ->
  name:string ->
  schema:Schema.element_decl ->
  ?separator:char ->
  ?header:bool ->
  string ->
  (unit, string) result
(** Registers a delimited-file source (§2.2): the CSV text is parsed and
    validated against [schema] at registration time and surfaced as a
    zero-argument function over the typed rows. *)

val register_file_source :
  t ->
  ?uri:string ->
  name:string ->
  schema:Schema.element_decl ->
  Node.t list ->
  (unit, string) result
(** Registers a non-queryable XML/CSV file source: documents are validated
    against [schema] at registration time (§5.3) and surfaced as a
    zero-argument function returning the typed documents. *)

val stype_of_schema : Schema.element_decl -> Stype.item_type
(** Structural static type of a schema shape. *)

val row_stype : Database.t -> string -> Stype.item_type
(** Structural static type of a table's row element (per the SQL-to-XML
    mapping of §4.4: NULLable columns become optional elements). *)
