open Aldsp_xml
module C = Cexpr

type options = {
  inline_views : bool;
  introduce_joins : bool;
  eliminate_constructors : bool;
  use_inverse_functions : bool;
  pushdown : bool;
  cost_based : bool;
  ppk_k : int;
  ppk_prefetch : int;
  view_cache_size : int;
  sort_budget_rows : int option;
}

(* ALDSP_SORT_BUDGET=<rows> forces every server built with the default
   options to spill its blocking sorts — the CI lever that exercises the
   external-sort path under the whole tier-1 suite. *)
let env_sort_budget =
  match Sys.getenv_opt "ALDSP_SORT_BUDGET" with
  | Some v -> (
    match int_of_string_opt (String.trim v) with
    | Some n when n > 0 -> Some n
    | _ -> None)
  | None -> None

let default_options =
  { inline_views = true;
    introduce_joins = true;
    eliminate_constructors = true;
    use_inverse_functions = true;
    pushdown = true;
    cost_based = true;
    ppk_k = 20;
    ppk_prefetch = 1;
    view_cache_size = 64;
    sort_budget_rows = env_sort_budget }

(* The differential-testing baseline: every compilation choice the paper
   treats as cost-only (§4, §5.2) switched off, so the plan is the
   normalized expression interpreted directly with strictly sequential
   source roundtrips. *)
let reference_options =
  { inline_views = false;
    introduce_joins = false;
    eliminate_constructors = false;
    use_inverse_functions = false;
    pushdown = false;
    cost_based = false;
    ppk_k = 1;
    ppk_prefetch = 0;
    view_cache_size = 64;
    (* the reference always sorts in memory, whatever the environment
       says: it is the unbounded baseline spilled runs are compared to *)
    sort_budget_rows = None }

(* Every field participates: two option records compile a query
   differently exactly when their fingerprints differ, which is what the
   plan cache keys on. *)
let options_fingerprint o =
  Printf.sprintf "iv=%b;ij=%b;ec=%b;inv=%b;pd=%b;cb=%b;k=%d;pf=%d;vc=%d;sb=%s"
    o.inline_views o.introduce_joins o.eliminate_constructors
    o.use_inverse_functions o.pushdown o.cost_based o.ppk_k o.ppk_prefetch
    o.view_cache_size
    (match o.sort_budget_rows with None -> "-" | Some n -> string_of_int n)

type t = {
  registry : Metadata.t;
  opts : options;
  counter : int ref;
  view_cache : (Qname.t, Cexpr.t) Hashtbl.t;
  view_lock : Mutex.t;
      (* guards view_cache/view_lru/hits/misses: one optimizer is shared
         by every concurrent compilation on a server *)
  mutable view_lru : Qname.t list;
  mutable hits : int;
  mutable misses : int;
}

let create ?(options = default_options) registry =
  { registry;
    opts = options;
    counter = ref 0;
    view_cache = Hashtbl.create 32;
    view_lock = Mutex.create ();
    view_lru = [];
    hits = 0;
    misses = 0 }

let options t = t.opts

let fresh t () =
  incr t.counter;
  !(t.counter)

(* ------------------------------------------------------------------ *)
(* Small analyses                                                      *)

let count_var = C.count_occurrences

let count_var_clauses v clauses return_ = C.count_uses v clauses return_

let unwrap_ebv = function C.Ebv e -> e | e -> e

let rec conjuncts pred =
  match unwrap_ebv pred with
  | C.Binop (C.And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let conjoin cs =
  let cs =
    List.filter
      (function
        | C.Const (Atomic.Boolean true) | C.Ebv (C.Const (Atomic.Boolean true))
          -> false
        | _ -> true)
      cs
  in
  match cs with
  | [] -> C.Ebv (C.Const (Atomic.Boolean true))
  | [ c ] -> C.Ebv (unwrap_ebv c)
  | first :: rest ->
    List.fold_left
      (fun acc c -> C.Binop (C.And, acc, C.Ebv (unwrap_ebv c)))
      (C.Ebv (unwrap_ebv first))
      rest

(* A predicate whose value is boolean-like (so a filter over it is not a
   positional filter). *)
let boolean_pred = function
  | C.Ebv _ | C.Quantified _ | C.Castable _ | C.Instance_of _ -> true
  | C.Binop ((C.V_eq | C.V_ne | C.V_lt | C.V_le | C.V_gt | C.V_ge
             | C.G_eq | C.G_ne | C.G_lt | C.G_le | C.G_gt | C.G_ge
             | C.And | C.Or), _, _) -> true
  | C.Const (Atomic.Boolean _) -> true
  | C.Call { fn; _ } ->
    Qname.equal fn (Names.fn "exists")
    || Qname.equal fn (Names.fn "empty")
    || Qname.equal fn (Names.fn "not")
    || Qname.equal fn (Names.fn "contains")
    || Qname.equal fn (Names.fn "starts-with")
    || Qname.equal fn (Names.fn "boolean")
  | _ -> false

(* Expressions that produce only atomic values (no nodes), used by
   constructor elimination to drop non-matching content parts. *)
let all_atomic_items (ty : Stype.t) =
  ty.Stype.items <> []
  && List.for_all
       (function Stype.It_atomic _ -> true | _ -> false)
       ty.Stype.items

let rec atomic_producer registry = function
  | C.Const _ | C.Data _ | C.Cast _ | C.Ebv _ | C.Castable _
  | C.Instance_of _ | C.Quantified _ | C.Attr_of _ | C.Empty ->
    true
  | C.Binop (_, _, _) -> true
  | C.Seq es -> List.for_all (atomic_producer registry) es
  | C.If { then_; else_; _ } ->
    atomic_producer registry then_ && atomic_producer registry else_
  | C.Typematch (e, ty) -> all_atomic_items ty || atomic_producer registry e
  | C.Call { fn; args } -> (
    match Metadata.resolve_call registry fn (List.length args) with
    | Some fd -> all_atomic_items fd.Metadata.fd_return
    | None -> (
      match Fn_lib.find fn (List.length args) with
      | Some b -> all_atomic_items (b.Fn_lib.return_type (List.length args))
      | None -> false))
  | _ -> false

let content_parts = function
  | C.Seq es -> es
  | C.Empty -> []
  | e -> [ e ]

let vars_of_table tbl = Hashtbl.fold (fun v () acc -> v :: acc) tbl []

let free_vars_list e = vars_of_table (C.free_vars e ())

let clause_list_free_vars clauses =
  free_vars_list (C.Flwor { clauses; return_ = C.Empty })

let references_any vars e =
  let fv = C.free_vars e () in
  List.exists (fun v -> Hashtbl.mem fv v) vars

(* ------------------------------------------------------------------ *)
(* Equi-key extraction (shared with the runtime INL join)              *)

let equi_join_keys ~right_vars on_ =
  let is_right_only e =
    let fv = C.free_vars e () in
    Hashtbl.length fv > 0
    && Hashtbl.fold (fun v _ acc -> acc && List.mem v right_vars) fv true
  in
  let touches_right e = references_any right_vars e in
  let classify e =
    match unwrap_ebv e with
    | C.Binop ((C.V_eq | C.G_eq), a, b) ->
      if is_right_only b && not (touches_right a) then Some (a, b)
      else if is_right_only a && not (touches_right b) then Some (b, a)
      else None
    | _ -> None
  in
  let pairs, residual =
    List.fold_left
      (fun (pairs, residual) conj ->
        match classify conj with
        | Some pair -> (pair :: pairs, residual)
        | None -> (pairs, conj :: residual))
      ([], []) (conjuncts on_)
  in
  if pairs = [] then None else Some (List.rev pairs, List.rev residual)

(* ------------------------------------------------------------------ *)
(* Rules                                                               *)

(* --- view unfolding: function inlining ----------------------------- *)

let rec query_independent_rules t =
  [ rule_let_substitution t;
    rule_flwor_flatten t;
    rule_filter_to_where t;
    rule_filter_over_flwor t;
    rule_filter_to_flwor t;
    rule_for_singleton_elem;
    rule_where_split;
    rule_data_simplify t;
    rule_child_elim t;
    rule_attr_elim t;
    rule_project_through_let t;
    rule_typematch_simplify;
    rule_seq_data_distribute;
    rule_dead_let ]

(* The rewrite below may re-enter [view_body] through the inline rule, so
   the lock is never held across [Rewrite.run]: look up under the lock,
   optimize outside it, insert under the lock again. Two sessions racing
   on the same cold view both optimize it — the result is deterministic,
   so the duplicate work is benign and the second insert a no-op. *)
and view_body t name body =
  Mutex.lock t.view_lock;
  match Hashtbl.find_opt t.view_cache name with
  | Some optimized ->
    t.hits <- t.hits + 1;
    Mutex.unlock t.view_lock;
    optimized
  | None ->
    t.misses <- t.misses + 1;
    Mutex.unlock t.view_lock;
    let optimized, _ = Rewrite.run (query_independent_rules t) body in
    Mutex.lock t.view_lock;
    (* LRU eviction bounds the memory footprint of cached view plans *)
    if List.length t.view_lru >= t.opts.view_cache_size then begin
      match List.rev t.view_lru with
      | oldest :: _ ->
        Hashtbl.remove t.view_cache oldest;
        t.view_lru <- List.filter (fun n -> not (Qname.equal n oldest)) t.view_lru
      | [] -> ()
    end;
    Hashtbl.replace t.view_cache name optimized;
    t.view_lru <- name :: List.filter (fun n -> not (Qname.equal n name)) t.view_lru;
    Mutex.unlock t.view_lock;
    optimized

and rule_inline t =
  { Rewrite.rule_name = "inline-view";
    apply =
      (fun e ->
        match e with
        | C.Call { fn; args } -> (
          match Metadata.resolve_call t.registry fn (List.length args) with
          | Some fd
            when (match fd.Metadata.fd_impl with
                 | Metadata.Body _ -> true
                 | Metadata.External _ -> false)
                 && not fd.Metadata.fd_cacheable -> (
            match fd.Metadata.fd_impl with
            | Metadata.Body body ->
              let body = view_body t fd.Metadata.fd_name body in
              let body = C.rename_bound (fresh t) body in
              let lets =
                List.map2
                  (fun (param, _) arg -> C.Let { var = param; value = arg })
                  fd.Metadata.fd_params args
              in
              Some
                (if lets = [] then body
                 else C.Flwor { clauses = lets; return_ = body })
            | Metadata.External _ -> None)
          | _ -> None)
        | _ -> None) }

(* --- let substitution and cleanup ---------------------------------- *)

and used_as_agg_input v clauses =
  (* Group aggregation inputs are positional references; substitution can
     replace them only with another variable *)
  let rec in_clause = function
    | C.Group { aggs; _ } -> List.exists (fun (v_in, _) -> v_in = v) aggs
    | C.Join { right; _ } -> List.exists in_clause right
    | _ -> false
  in
  List.exists in_clause clauses

and rule_let_substitution t =
  { Rewrite.rule_name = "let-substitute";
    apply =
      (fun e ->
        match e with
        | C.Flwor { clauses; return_ } ->
          (* a let binding a direct external-function call stays a let even
             when used once: the evaluator submits independent source-call
             lets to the worker pool together, and inlining the call into
             its use site would serialize them again *)
          let latency_bound value =
            match value with
            | C.Call { fn; args } -> (
              match
                Metadata.resolve_call t.registry fn (List.length args)
              with
              | Some fd -> (
                match fd.Metadata.fd_impl with
                | Metadata.External _ -> true
                | Metadata.Body _ -> false)
              | None -> false)
            | _ -> false
          in
          let rec find before = function
            | [] -> None
            | (C.Let { var; value } as l) :: rest
              when (match value with C.Var _ -> false | _ -> true)
                   && used_as_agg_input var rest ->
              find (l :: before) rest
            | (C.Let { var; value } as l) :: rest ->
              let cheap =
                match value with C.Var _ | C.Const _ | C.Empty -> true | _ -> false
              in
              let uses = count_var_clauses var rest return_ in
              if (cheap || uses <= 1) && not (latency_bound value) then
                match
                  C.substitute [ (var, value) ]
                    (C.Flwor { clauses = rest; return_ })
                with
                | C.Flwor { clauses = rest'; return_ = return' } ->
                  Some (List.rev_append before rest', return')
                | _ -> None
              else find (l :: before) rest
            | c :: rest -> find (c :: before) rest
          in
          (match find [] clauses with
          | Some (clauses', return') ->
            Some (C.Flwor { clauses = clauses'; return_ = return' })
          | None -> None)
        | _ -> None) }

and rule_dead_let =
  { Rewrite.rule_name = "dead-let";
    apply =
      (fun e ->
        match e with
        | C.Flwor { clauses; return_ } ->
          let rec drop before = function
            | [] -> None
            | (C.Let { var; value = _ } as l) :: rest ->
              if count_var_clauses var rest return_ = 0 then
                Some (List.rev_append before rest)
              else drop (l :: before) rest
            | c :: rest -> drop (c :: before) rest
          in
          (match drop [] clauses with
          | Some clauses' -> Some (C.Flwor { clauses = clauses'; return_ })
          | None -> None)
        | _ -> None) }

(* --- FLWOR flattening (un-nesting) --------------------------------- *)

and rule_flwor_flatten _t =
  { Rewrite.rule_name = "flwor-flatten";
    apply =
      (fun e ->
        match e with
        | C.Flwor { clauses = []; return_ } -> Some return_
        | C.Flwor { clauses; return_ = C.Flwor { clauses = inner; return_ } } ->
          Some (C.Flwor { clauses = clauses @ inner; return_ })
        | C.Flwor { clauses; return_ } ->
          (* for $x in (flwor) ~> splice the inner pipeline *)
          let rec splice before = function
            | [] -> None
            | C.For { var; source = C.Flwor { clauses = inner; return_ = ret } }
              :: rest ->
              Some
                (List.rev_append before
                   (inner @ (C.For { var; source = ret } :: rest)))
            | c :: rest -> splice (c :: before) rest
          in
          (match splice [] clauses with
          | Some clauses' -> Some (C.Flwor { clauses = clauses'; return_ })
          | None -> None)
        | _ -> None) }

(* --- filters -------------------------------------------------------- *)

and rule_filter_to_where _t =
  { Rewrite.rule_name = "filter-to-where";
    apply =
      (fun e ->
        match e with
        | C.Flwor { clauses; return_ } ->
          let rec transform before = function
            | [] -> None
            | C.For { var; source = C.Filter { input; dot; pos; pred } } :: rest
              when boolean_pred (unwrap_ebv pred) && count_var pos pred = 0 ->
              let pred' = C.substitute [ (dot, C.Var var) ] pred in
              Some
                (List.rev_append before
                   (C.For { var; source = input }
                   :: C.Where (C.Ebv pred')
                   :: rest))
            | c :: rest -> transform (c :: before) rest
          in
          (match transform [] clauses with
          | Some clauses' -> Some (C.Flwor { clauses = clauses'; return_ })
          | None -> None)
        | _ -> None) }

(* Any non-positional filter is a FLWOR: e[p] == for $d in e where p($d)
   return $d. This exposes source filters (e.g. CC()[CID eq $c/CID]) to
   join introduction and pushdown. *)
and rule_filter_to_flwor t =
  { Rewrite.rule_name = "filter-to-flwor";
    apply =
      (fun e ->
        match e with
        | C.Filter { input; dot; pos; pred }
          when boolean_pred (unwrap_ebv pred)
               && count_var pos pred = 0
               && (match input with
                  | C.Call _ | C.Flwor _ | C.Var _ -> true
                  | _ -> false) ->
          let v = Printf.sprintf "dot~%d" (fresh t ()) in
          let pred' = C.substitute [ (dot, C.Var v) ] pred in
          Some
            (C.Flwor
               { clauses =
                   [ C.For { var = v; source = input };
                     C.Where (C.Ebv pred') ];
                 return_ = C.Var v })
        | _ -> None) }

and rule_filter_over_flwor t =
  { Rewrite.rule_name = "filter-over-flwor";
    apply =
      (fun e ->
        match e with
        | C.Filter
            { input =
                C.Flwor
                  { clauses;
                    return_ =
                      C.Elem { optional = false; name; attrs; content } };
              dot;
              pos;
              pred }
          when boolean_pred (unwrap_ebv pred) && count_var pos pred = 0 ->
          let v = Printf.sprintf "dot~%d" (fresh t ()) in
          let pred' = C.substitute [ (dot, C.Var v) ] pred in
          Some
            (C.Flwor
               { clauses =
                   clauses
                   @ [ C.Let
                         { var = v;
                           value =
                             C.Elem { optional = false; name; attrs; content } };
                       C.Where (C.Ebv pred') ];
                 return_ = C.Var v })
        | _ -> None) }

(* Field access through a let-bound constructor: with let $c := <E>...</E>
   in scope, later references $c/F project the matching content part
   statically — without substituting the whole constructor (which could
   duplicate expensive source calls). This is what lets a predicate over a
   view's field reach the underlying column (§4.2, §4.5). *)
and rule_project_through_let t =
  { Rewrite.rule_name = "project-through-let";
    apply =
      (fun e ->
        if not t.opts.eliminate_constructors then None
        else
          match e with
          | C.Flwor { clauses; return_ } ->
            let project_map var parts =
              (* None when some part cannot be classified *)
              let classifiable =
                List.for_all
                  (fun p ->
                    match p with
                    | C.Elem _ -> true
                    | p -> atomic_producer t.registry p)
                  parts
              in
              if not classifiable then None
              else
                Some
                  (fun n ->
                    C.seq
                      (List.filter_map
                         (fun p ->
                           match p with
                           | C.Elem { name; _ } when Qname.equal name n ->
                             Some p
                           | _ -> None)
                         parts))
              |> fun r -> ignore var; r
            in
            let changed = ref false in
            let rec rewrite_with proj var e =
              match e with
              | C.Child (C.Var v, n) when v = var ->
                changed := true;
                proj n
              | C.Flwor _ | C.Filter _ | C.Quantified _ ->
                (* conservatively stop at binder scopes other than direct
                   traversal; names are unique so descending is safe *)
                C.map_children (rewrite_with proj var) e
              | e -> C.map_children (rewrite_with proj var) e
            in
            let rec scan before = function
              | [] -> None
              | (C.Let { var; value = C.Elem { optional = false; content; _ } }
                 as l)
                :: rest -> (
                match project_map var (content_parts content) with
                | Some proj ->
                  changed := false;
                  let rest' =
                    List.map
                      (C.map_clause (fun e -> rewrite_with proj var e))
                      rest
                  in
                  let return' = rewrite_with proj var return_ in
                  if !changed then
                    Some (List.rev_append before (l :: rest'), return')
                  else scan (l :: before) rest
                | None -> scan (l :: before) rest)
              | c :: rest -> scan (c :: before) rest
            in
            (match scan [] clauses with
            | Some (clauses', return') ->
              Some (C.Flwor { clauses = clauses'; return_ = return' })
            | None -> None)
          | _ -> None) }

(* A for over a non-optional element constructor binds exactly one item:
   turn it into a let so field projection applies. *)
and rule_for_singleton_elem =
  { Rewrite.rule_name = "for-singleton-constructor";
    apply =
      (fun e ->
        match e with
        | C.Flwor { clauses; return_ } ->
          let rec fix before = function
            | [] -> None
            | C.For { var; source = C.Elem ({ optional = false; _ } as el) }
              :: rest ->
              Some
                (List.rev_append before
                   (C.Let { var; value = C.Elem el } :: rest))
            | c :: rest -> fix (c :: before) rest
          in
          (match fix [] clauses with
          | Some clauses' -> Some (C.Flwor { clauses = clauses'; return_ })
          | None -> None)
        | _ -> None) }

(* --- where conjunct splitting --------------------------------------- *)

and rule_where_split =
  { Rewrite.rule_name = "where-split";
    apply =
      (fun e ->
        match e with
        | C.Flwor { clauses; return_ } ->
          let rec split before = function
            | [] -> None
            | C.Where w :: rest -> (
              match conjuncts w with
              | [] | [ _ ] -> split (C.Where w :: before) rest
              | cs ->
                Some
                  (List.rev_append before
                     (List.map (fun c -> C.Where (C.Ebv c)) cs @ rest)))
            | c :: rest -> split (c :: before) rest
          in
          (match split [] clauses with
          | Some clauses' -> Some (C.Flwor { clauses = clauses'; return_ })
          | None -> None)
        | _ -> None) }

(* --- constructor / source-access elimination ------------------------ *)

and rule_child_elim t =
  { Rewrite.rule_name = "constructor-child-elimination";
    apply =
      (fun e ->
        if not t.opts.eliminate_constructors then None
        else
          match e with
          | C.Child (C.Elem { optional = false; content; _ }, n) ->
            let parts = content_parts content in
            let resolvable =
              List.for_all
                (fun p ->
                  match p with
                  | C.Elem _ -> true
                  | p -> atomic_producer t.registry p)
                parts
            in
            if not resolvable then None
            else
              Some
                (C.seq
                   (List.filter_map
                      (fun p ->
                        match p with
                        | C.Elem { name; _ } when Qname.equal name n -> Some p
                        | _ -> None)
                      parts))
          | _ -> None) }

and rule_attr_elim t =
  { Rewrite.rule_name = "constructor-attribute-elimination";
    apply =
      (fun e ->
        if not t.opts.eliminate_constructors then None
        else
          match e with
          | C.Attr_of (C.Elem { optional = false; attrs; _ }, n) -> (
            match
              List.find_opt (fun a -> Qname.equal a.C.aname n) attrs
            with
            | Some a when atomic_producer t.registry a.C.avalue ->
              Some (C.Data a.C.avalue)
            | Some _ -> None
            | None -> Some C.Empty)
          | _ -> None) }

and rule_data_simplify t =
  { Rewrite.rule_name = "data-simplify";
    apply =
      (fun e ->
        match e with
        | C.Data (C.Data inner) -> Some (C.Data inner)
        | C.Data (C.Const a) -> Some (C.Const a)
        | C.Data C.Empty -> Some C.Empty
        | C.Data (C.Cast (x, ty)) -> Some (C.Cast (x, ty))
        | C.Data (C.Binop (op, a, b))
          when (match op with
               | C.Add | C.Sub | C.Mul | C.Div | C.Idiv | C.Mod
               | C.V_eq | C.V_ne | C.V_lt | C.V_le | C.V_gt | C.V_ge
               | C.G_eq | C.G_ne | C.G_lt | C.G_le | C.G_gt | C.G_ge
               | C.And | C.Or | C.Range -> true) ->
          Some (C.Binop (op, a, b))
        | C.Data (C.If { cond; then_; else_ }) ->
          Some (C.If { cond; then_ = C.Data then_; else_ = C.Data else_ })
        | C.Data (C.Elem { optional = _; content; _ })
          when List.for_all (atomic_producer t.registry) (content_parts content) ->
          (* structural typing: data() of a constructed element with typed
             content is the content itself (§3.1) *)
          Some (C.seq (List.map (fun p -> C.Data p) (content_parts content)))
        | C.Ebv (C.Ebv inner) -> Some (C.Ebv inner)
        | C.Ebv (C.Const (Atomic.Boolean _) as b) -> Some b
        | _ -> None) }

(* Typematch over a FLWOR with a star-occurrence type distributes to the
   per-tuple return value; a typematch over an element constructor whose
   name satisfies the type (and which imposes no simple-content
   constraint) is statically satisfied and drops. Both keep runtime
   semantics: the evaluator's typematch checks exactly name and simple
   content. *)
and rule_typematch_simplify =
  { Rewrite.rule_name = "typematch-simplify";
    apply =
      (fun e ->
        match e with
        | C.Typematch (C.Flwor { clauses; return_ }, ty)
          when (not ty.Stype.occ.Stype.at_least_one)
               && not ty.Stype.occ.Stype.at_most_one ->
          Some
            (C.Flwor
               { clauses;
                 return_ =
                   C.Typematch
                     (return_, { ty with Stype.occ = Stype.occ_star }) })
        | C.Typematch ((C.Elem { name; optional = false; _ } as elem), ty) ->
          let satisfied =
            List.exists
              (function
                | Stype.It_element { elem_name = Some n; simple = None; _ } ->
                  Qname.equal n name
                | Stype.It_element { elem_name = None; simple = None; _ }
                | Stype.It_node | Stype.It_item ->
                  true
                | _ -> false)
              ty.Stype.items
          in
          if satisfied then Some elem else None
        | C.Typematch (C.Const a, ty)
          when Stype.subtype
                 (Stype.atomic (Atomic.type_of a))
                 { ty with Stype.occ = Stype.occ_one } ->
          Some (C.Const a)
        | _ -> None) }

and rule_seq_data_distribute =
  { Rewrite.rule_name = "data-over-seq";
    apply =
      (fun e ->
        match e with
        | C.Data (C.Seq es) -> Some (C.seq (List.map (fun x -> C.Data x) es))
        | _ -> None) }

(* --- where pushdown (clause reordering) ----------------------------- *)

let rule_where_pushdown =
  { Rewrite.rule_name = "where-pushdown";
    apply =
      (fun e ->
        match e with
        | C.Flwor { clauses; return_ } ->
          (* move a Where leftwards past clauses that do not bind its free
             variables (never across Group) *)
          let rec bubble before = function
            | [] -> None
            | C.Where w :: rest -> (
              let fv = C.free_vars w () in
              let blocked = function
                | C.Group _ | C.Order _ -> true
                | c -> List.exists (fun v -> Hashtbl.mem fv v) (C.clause_vars [ c ])
              in
              match before with
              | prev :: earlier when not (blocked prev) ->
                Some (List.rev_append earlier (C.Where w :: prev :: rest))
              | _ -> bubble (C.Where w :: before) rest)
            | c :: rest -> bubble (c :: before) rest
          in
          (match bubble [] clauses with
          | Some clauses' -> Some (C.Flwor { clauses = clauses'; return_ })
          | None -> None)
        | _ -> None) }

(* --- join introduction ----------------------------------------------- *)

(* [For f; Where w...] where w spans f and earlier vars becomes an inner
   join with f as the right branch (§4.3). *)
let rule_join_intro t =
  { Rewrite.rule_name = "join-introduction";
    apply =
      (fun e ->
        if not t.opts.introduce_joins then None
        else
          match e with
          | C.Flwor { clauses; return_ } ->
            let rec scan bound before = function
              | [] -> None
              | (C.For { var; source } as f) :: rest when bound <> [] ->
                (* collect following Wheres that reference both sides *)
                let rec take_wheres ws tail =
                  match tail with
                  | C.Where w :: more
                    when references_any [ var ] w && references_any bound w ->
                    take_wheres (w :: ws) more
                  | _ -> (List.rev ws, tail)
                in
                let wheres, tail = take_wheres [] rest in
                if wheres = [] then
                  scan (var :: bound) (f :: before) rest
                else
                  let on_ = conjoin (List.concat_map conjuncts wheres) in
                  Some
                    (List.rev_append before
                       (C.Join
                          { kind = C.J_inner;
                            method_ = C.Nested_loop;
                            right = [ C.For { var; source } ];
                            on_;
                            export = C.Bindings }
                       :: tail))
              | c :: rest -> scan (C.clause_vars [ c ] @ bound) (c :: before) rest
            in
            (match scan [] [] clauses with
            | Some clauses' -> Some (C.Flwor { clauses = clauses'; return_ })
            | None -> None)
          | _ -> None) }

(* let $v := (dependent flwor) becomes a grouped left outer join: "joins
   that occur inside lets are rewritten as left outer joins and brought
   out into the outer FLWR" (§4.3). An aggregate over a dependent FLWOR
   (let $n := count(flwor)) is the same rewrite with the aggregate applied
   to the grouped variable — pattern (g) of Table 2. *)
let rule_let_flwor_to_join t =
  { Rewrite.rule_name = "let-flwor-to-outer-join";
    apply =
      (fun e ->
        if not t.opts.introduce_joins then None
        else
          match e with
          | C.Flwor { clauses; return_ } ->
            let hoistable bound inner ret =
              bound <> []
              && references_any bound (C.Flwor { clauses = inner; return_ = ret })
              && List.exists
                   (function C.For _ | C.Rel _ -> true | _ -> false)
                   inner
            in
            let join gvar inner ret =
              C.Join
                { kind = C.J_left_outer;
                  method_ = C.Nested_loop;
                  right = inner;
                  on_ = C.Ebv (C.Const (Atomic.Boolean true));
                  export = C.Grouped { gvar; gexpr = ret } }
            in
            let rec transform bound before = function
              | [] -> None
              | C.Let { var; value = C.Flwor { clauses = inner; return_ = ret } }
                :: rest
                when hoistable bound inner ret ->
                Some (List.rev_append before (join var inner ret :: rest))
              | C.Let
                  { var;
                    value =
                      C.Call
                        { fn;
                          args = [ C.Flwor { clauses = inner; return_ = ret } ]
                        } }
                :: rest
                when Fn_lib.is_aggregate fn && hoistable bound inner ret ->
                let tmp = Printf.sprintf "agg~%d" (fresh t ()) in
                Some
                  (List.rev_append before
                     (join tmp inner ret
                     :: C.Let
                          { var; value = C.Call { fn; args = [ C.Var tmp ] } }
                     :: rest))
              | c :: rest ->
                transform (C.clause_vars [ c ] @ bound) (c :: before) rest
            in
            (match transform [] [] clauses with
            | Some clauses' -> Some (C.Flwor { clauses = clauses'; return_ })
            | None -> None)
          | _ -> None) }

(* Nested FLWORs in the return expression (e.g. <ORDERS>{for $o ...}</ORDERS>)
   hoist into grouped left outer joins (§4.2: outer-join + group-by brings
   the data to be nested together). *)
let rule_return_flwor_hoist t =
  { Rewrite.rule_name = "return-flwor-hoist";
    apply =
      (fun e ->
        if not t.opts.introduce_joins then None
        else
          match e with
          | C.Flwor { clauses; return_ } when clauses <> [] ->
            let bound = C.clause_vars clauses in
            if bound = [] then None
            else
              let found = ref None in
              (* walk only always-evaluated positions *)
              let rec search in_scope e =
                if !found <> None then e
                else
                  match e with
                  | C.Flwor { clauses = inner; _ }
                    when references_any bound e
                         && (not (references_any in_scope e))
                         && List.exists
                              (function C.For _ | C.Rel _ -> true | _ -> false)
                              inner ->
                    let gvar = Printf.sprintf "nest~%d" (fresh t ()) in
                    found := Some (gvar, e);
                    C.Var gvar
                  | C.Seq es -> C.Seq (List.map (search in_scope) es)
                  | C.Elem { name; optional; attrs; content } ->
                    let attrs =
                      List.map
                        (fun a -> { a with C.avalue = search in_scope a.C.avalue })
                        attrs
                    in
                    C.Elem
                      { name; optional; attrs; content = search in_scope content }
                  | C.Data x -> C.Data (search in_scope x)
                  | C.Cast (x, ty) -> C.Cast (search in_scope x, ty)
                  | C.Binop (op, a, b) ->
                    C.Binop (op, search in_scope a, search in_scope b)
                  | C.Call { fn; args }
                    when (match Fn_lib.find fn (List.length args) with
                         | Some b -> not b.Fn_lib.special
                         | None -> false) ->
                    C.Call { fn; args = List.map (search in_scope) args }
                  | e -> e
              in
              let return' = search [] return_ in
              (match !found with
              | Some (gvar, C.Flwor { clauses = inner; return_ = ret }) ->
                Some
                  (C.Flwor
                     { clauses =
                         clauses
                         @ [ C.Join
                               { kind = C.J_left_outer;
                                 method_ = C.Nested_loop;
                                 right = inner;
                                 on_ = C.Ebv (C.Const (Atomic.Boolean true));
                                 export = C.Grouped { gvar; gexpr = ret } } ];
                       return_ = return' })
              | _ -> None)
          | _ -> None) }

(* Pull dependent Wheres out of a join's right branch into the on_
   predicate, so method selection and SQL translation can see them. *)
let rule_join_on_extraction =
  { Rewrite.rule_name = "join-on-extraction";
    apply =
      (fun e ->
        match e with
        | C.Flwor { clauses; return_ } ->
          let transform_join before j rest =
            match j with
            | C.Join { kind; method_; right; on_; export } ->
              let left_bound =
                C.clause_vars (List.rev before)
                @ free_vars_list (C.Flwor { clauses = []; return_ = C.Empty })
              in
              let left_bound = left_bound @ clause_list_free_vars right in
              ignore left_bound;
              let right_bound = C.clause_vars right in
              let wheres, others =
                List.partition
                  (function
                    | C.Where w ->
                      (* dependent on something outside the right branch *)
                      let fv = C.free_vars w () in
                      Hashtbl.fold
                        (fun v _ acc -> acc || not (List.mem v right_bound))
                        fv false
                    | _ -> false)
                  right
              in
              if wheres = [] then None
              else
                let extra =
                  List.concat_map
                    (function C.Where w -> conjuncts w | _ -> [])
                    wheres
                in
                let on' = conjoin (conjuncts on_ @ extra) in
                Some
                  (List.rev_append before
                     (C.Join { kind; method_; right = others; on_ = on'; export }
                     :: rest))
            | _ -> None
          in
          let rec scan before = function
            | [] -> None
            | (C.Join _ as j) :: rest -> (
              match transform_join before j rest with
              | Some clauses' -> Some clauses'
              | None -> scan (j :: before) rest)
            | c :: rest -> scan (c :: before) rest
          in
          (match scan [] clauses with
          | Some clauses' -> Some (C.Flwor { clauses = clauses'; return_ })
          | None -> None)
        | _ -> None) }

(* --- inverse functions (§4.5) ---------------------------------------- *)

let rule_inverse t =
  { Rewrite.rule_name = "inverse-function";
    apply =
      (fun e ->
        if not t.opts.use_inverse_functions then None
        else
          let comparison = function
            | C.V_eq | C.V_ne | C.V_lt | C.V_le | C.V_gt | C.V_ge
            | C.G_eq | C.G_ne | C.G_lt | C.G_le | C.G_gt | C.G_ge ->
              true
            | _ -> false
          in
          let rewrite_side fn_call other build =
            match fn_call with
            | C.Call { fn; args = [ x ] }
            | C.Data (C.Call { fn; args = [ x ] }) -> (
              match Metadata.transform_of t.registry fn with
              | Some inverse ->
                Some (build x (C.Call { fn = inverse; args = [ other ] }))
              | None -> None)
            | _ -> None
          in
          (* equality against a multi-argument transformation decomposes
             componentwise: f(x, y) eq v  ~>  x eq g1(v) and y eq g2(v) *)
          let decompose_multi fn_call other =
            match fn_call with
            | C.Call { fn; args }
            | C.Data (C.Call { fn; args })
              when List.length args >= 2 -> (
              match Metadata.projections_of t.registry fn with
              | Some projections when List.length projections = List.length args
                ->
                let conjuncts =
                  List.map2
                    (fun arg proj ->
                      C.Binop
                        ( C.V_eq,
                          C.Data arg,
                          C.Data (C.Call { fn = proj; args = [ other ] }) ))
                    args projections
                in
                Some (conjoin conjuncts)
              | _ -> None)
            | _ -> None
          in
          match e with
          | C.Binop (((C.V_eq | C.G_eq) as op), a, b) -> (
            match decompose_multi a b with
            | Some e' -> Some e'
            | None -> (
              match decompose_multi b a with
              | Some e' -> Some e'
              | None -> (
                match
                  rewrite_side a b (fun x g ->
                      C.Binop (op, C.Data x, C.Data g))
                with
                | Some e' -> Some e'
                | None ->
                  rewrite_side b a (fun x g ->
                      C.Binop (op, C.Data g, C.Data x)))))
          | C.Binop (op, a, b) when comparison op -> (
            match rewrite_side a b (fun x g -> C.Binop (op, C.Data x, C.Data g)) with
            | Some e' -> Some e'
            | None ->
              rewrite_side b a (fun x g -> C.Binop (op, C.Data g, C.Data x)))
          | _ -> None) }

(* ------------------------------------------------------------------ *)
(* Join method selection (post-pushdown)                               *)

(* Estimated binding tuples flowing out of a clause, threaded through
   method selection so join methods and PP-k depth are priced against the
   outer cardinality. [None] poisons: decisions fall back to the
   structural heuristics. *)
let advance_estimate registry est clause =
  match est with
  | None -> None
  | Some tuples -> (
    match clause with
    | C.For { source; _ } -> (
      match Cost_model.expr_cardinality registry source with
      | Some n -> Some (tuples * n)
      | None -> None)
    | C.Let _ | C.Order _ | C.Group _ -> Some tuples
    | C.Where _ -> Some (max 1 (tuples / Cost_model.selection_fraction))
    | C.Rel r -> (
      match Cost_model.rel_cardinality registry r with
      | Some n -> Some (tuples * n)
      | None -> None)
    | C.Join { right; export; _ } -> (
      match export with
      | C.Grouped _ -> Some tuples
      | C.Bindings -> (
        match Cost_model.clauses_cardinality registry right with
        | Some inner -> Some (max tuples inner)
        | None -> None)))

(* PP-k parameters for a parameterized right side: with cost-based
   selection on, k and prefetch come from the outer-cardinality/latency
   tradeoff of the probed database; off, the configured knobs apply
   unchanged (the explicit override path). *)
let ppk_method t ~outer (r : C.sql_access) =
  if t.opts.cost_based then
    let latency =
      match Metadata.find_database t.registry r.C.db with
      | Some db -> (Cost_model.db_profile db).Cost_model.p_latency
      | None -> 0.
    in
    C.Ppk
      { k = Cost_model.choose_k ~outer ~latency;
        prefetch =
          max 0
            (Cost_model.choose_prefetch ~latency
               ~default:t.opts.ppk_prefetch);
        inner = C.Inner_inl }
  else
    C.Ppk
      { k = t.opts.ppk_k;
        prefetch = max 0 t.opts.ppk_prefetch;
        inner = C.Inner_inl }

(* NL vs index-NL for a structurally eligible (independent, equi-keyed)
   right side: probe + expected matches per outer tuple against scanning
   the inner once per outer tuple. Ties keep the index. *)
let inl_beats_nl t ~outer right' =
  match (outer, Cost_model.clauses_cardinality t.registry right') with
  | Some o, Some inner when o > 0 && inner > 0 ->
    let fo = float_of_int o in
    let matches = float_of_int (max o inner) /. fo in
    Cost_model.index_nl_cost ~outer:fo ~matches
    <= Cost_model.nested_loop_cost ~outer:fo ~inner:(float_of_int inner)
  | _ -> true

let rec select_methods_clauses t bound outer_est clauses =
  let rev_clauses, _, _ =
    List.fold_left
      (fun (acc, bound, est) clause ->
        let clause' =
          match clause with
          | C.Join { kind; method_ = C.Nested_loop; right; on_; export } ->
            let right' = select_methods_clauses t bound est right in
            let right_vars = C.clause_vars right' in
            let method_ =
              match right' with
              | C.Rel r :: rest_lets
                when r.C.sql_params <> []
                     && List.for_all
                          (function C.Let _ -> true | _ -> false)
                          rest_lets ->
                ppk_method t ~outer:est r
              | _ ->
                let depends_on_left =
                  references_any bound
                    (C.Flwor { clauses = right'; return_ = C.Empty })
                in
                if
                  (not depends_on_left)
                  && equi_join_keys ~right_vars on_ <> None
                  && ((not t.opts.cost_based)
                     || inl_beats_nl t ~outer:est right')
                then C.Index_nested_loop
                else C.Nested_loop
            in
            C.Join { kind; method_; right = right'; on_; export }
          | C.Join { kind; method_; right; on_; export } ->
            C.Join
              { kind;
                method_;
                right = select_methods_clauses t bound est right;
                on_;
                export }
          | c -> c
        in
        ( clause' :: acc,
          C.clause_vars [ clause' ] @ bound,
          advance_estimate t.registry est clause' ))
      ([], bound, outer_est) clauses
  in
  List.rev rev_clauses

let rec select_methods t e =
  let e = C.map_children (select_methods t) e in
  match e with
  | C.Flwor { clauses; return_ } ->
    C.Flwor { clauses = select_methods_clauses t [] (Some 1) clauses; return_ }
  | e -> e

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)

(* Source reordering: for two adjacent independent source iterations,
   pick as the outer (left) branch the one minimizing
   latency(L) + cardinality(L) * latency(R) — the outer runs once, the
   inner once per outer tuple under nested evaluation. Reordering changes
   FLWOR tuple order, so it only applies when a later order-by
   re-establishes the result order. [pair_costs fa fb] returns the
   (as-written, swapped) costs, or [None] to leave the pair alone; both
   costs must come from the same basis (static or observed), never
   mixed. *)
let reorder_with pair_costs e =
  let source_fn = function
    | C.Call { fn; args = [] } -> Some fn
    | _ -> None
  in
  let rec fix clauses =
    match clauses with
    | (C.For { var = va; source = sa } as a)
      :: (C.For { var = vb; source = sb } as b)
      :: rest
      when (not (references_any [ va ] sb))
           && Option.is_some (source_fn sa)
           && Option.is_some (source_fn sb) -> (
      ignore vb;
      let fa = Option.get (source_fn sa) and fb = Option.get (source_fn sb) in
      match pair_costs fa fb with
      | Some (as_is, swapped) when swapped < as_is ->
        b :: fix (a :: rest)
      | _ -> a :: fix (b :: rest))
    | c :: rest -> c :: fix rest
    | [] -> []
  in
  let rec go e =
    let e = C.map_children go e in
    match e with
    | C.Flwor { clauses; return_ }
      when List.exists (function C.Order _ -> true | _ -> false) clauses ->
      C.Flwor { clauses = fix clauses; return_ }
    | e -> e
  in
  go e

let observed_pair_costs observed fa fb =
  let cost outer inner =
    match (Observed.observed observed outer, Observed.observed observed inner) with
    | Some o, Some i ->
      Some
        (o.Observed.mean_latency
        +. (o.Observed.mean_cardinality *. i.Observed.mean_latency))
    | _ -> None
  in
  match (cost fa fb, cost fb fa) with
  | Some a, Some b -> Some (a, b)
  | _ -> None

(* The §9 roadmap pass: observed behaviour only, no static model. *)
let reorder_by_observed_cost t observed e =
  ignore t;
  reorder_with (observed_pair_costs observed) e

(* Statistics-driven ordering: costs from each source's declared latency
   profile and exact row counts, falling back to observed samples for
   sources the statistics layer cannot see (services, procedures). *)
let reorder_sources t ?observed e =
  let static_cost outer inner =
    match
      ( Cost_model.source_profile t.registry outer,
        Cost_model.source_cardinality t.registry outer,
        Cost_model.source_profile t.registry inner )
    with
    | Some po, Some co, Some pi ->
      Some
        (po.Cost_model.p_latency
        +. (float_of_int co *. pi.Cost_model.p_latency))
    | _ -> None
  in
  let pair_costs fa fb =
    match (static_cost fa fb, static_cost fb fa) with
    | Some a, Some b -> Some (a, b)
    | _ -> (
      match observed with
      | Some obs -> observed_pair_costs obs fa fb
      | None -> None)
  in
  reorder_with pair_costs e

let optimize_view t name body = view_body t name body

let cleanup t e = fst (Rewrite.run (query_independent_rules t) e)

let view_cache_hits t = t.hits
let view_cache_misses t = t.misses

let all_rules t =
  (if t.opts.inline_views then [ rule_inline t ] else [])
  @ query_independent_rules t
  @ [ rule_where_pushdown;
      rule_let_flwor_to_join t;
      rule_return_flwor_hoist t;
      rule_join_intro t;
      rule_join_on_extraction ]
  @ if t.opts.use_inverse_functions then [ rule_inverse t ] else []

let optimize t e = Rewrite.run (all_rules t) e
