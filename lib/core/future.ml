type 'a outcome = Value of 'a | Raised of exn

type 'a t = {
  mutable result : 'a outcome option;
  mutex : Mutex.t;
  done_ : Condition.t;
}

let create () =
  { result = None; mutex = Mutex.create (); done_ = Condition.create () }

let resolve fut outcome =
  Mutex.lock fut.mutex;
  (* first writer wins; late timers/duplicate fulfills are ignored *)
  if fut.result = None then begin
    fut.result <- Some outcome;
    Condition.broadcast fut.done_
  end;
  Mutex.unlock fut.mutex

let fulfill_with fut f =
  let outcome = try Value (f ()) with e -> Raised e in
  resolve fut outcome

let detach f =
  let fut = create () in
  (* carry the spawning thread's cancellation token onto the detached
     thread, so a session deadline also bounds fn-bea:timeout bodies *)
  let token = Cancel.current () in
  ignore
    (Thread.create
       (fun () -> fulfill_with fut (fun () -> Cancel.with_token token f))
       ());
  fut

let peek fut =
  Mutex.lock fut.mutex;
  let result = fut.result in
  Mutex.unlock fut.mutex;
  result

let poll fut =
  match peek fut with
  | Some (Value v) -> Some v
  | Some (Raised e) -> raise e
  | None -> None

let await fut =
  Mutex.lock fut.mutex;
  while fut.result = None do
    Condition.wait fut.done_ fut.mutex
  done;
  let result = fut.result in
  Mutex.unlock fut.mutex;
  match result with
  | Some (Value v) -> v
  | Some (Raised e) -> raise e
  | None -> assert false

(* [Condition] has no timed wait in the stdlib, so the deadline is driven
   by a timer thread that broadcasts [done_] when the window closes; the
   waiter sleeps on the condition variable the whole time (no polling). *)
let await_timeout fut seconds =
  let deadline = Unix.gettimeofday () +. seconds in
  Mutex.lock fut.mutex;
  let timer_armed = fut.result = None in
  if timer_armed then
    ignore
      (Thread.create
         (fun () ->
           Thread.delay seconds;
           Mutex.lock fut.mutex;
           Condition.broadcast fut.done_;
           Mutex.unlock fut.mutex)
         ());
  while fut.result = None && Unix.gettimeofday () < deadline do
    Condition.wait fut.done_ fut.mutex
  done;
  let result = fut.result in
  Mutex.unlock fut.mutex;
  match result with
  | Some (Value v) -> Some v
  | Some (Raised e) -> raise e
  | None -> None

let is_done fut = peek fut <> None
