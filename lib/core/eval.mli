(** The plan executor (§5).

    Executes compiled {!Plan_ir} plans. FLWOR pipelines run as lazy
    streams of binding tuples, so pipelined operators (scan/let/select,
    pre-clustered grouping, joins over streamed inputs) work
    incrementally; only sorting, hash-building and group-by over
    unclustered input materialize. As a plan runs, the executor fills in
    each operator's {!Plan_ir.counters} (rows out, source roundtrips,
    function-cache hits, wall time in roundtrips) and stores the backend's
    access-path lines into each pushed region — the data unified EXPLAIN
    renders.

    Join clauses execute with the method the optimizer picked (§5.2):
    nested loop, index nested loop (a hash probe on extracted equi-keys),
    or PP-k — parameter passing in blocks of [k]: fetch [k] left tuples,
    issue one disjunctive parameterized SQL query for all their matches,
    middleware-join the block, repeat (§4.2). With a prefetch depth > 0
    the block queries are pipelined on the worker pool: while the
    middleware join consumes block [n], the disjunctive select for block
    [n+1] (and up to [depth] more) is already in flight; blocks are still
    emitted strictly in order, so results are identical at every depth.

    Source latency overlap (§5.4, §6 asynchronous adaptors): [fn-bea:async]
    arguments and [let]-bound external-function calls with no data
    dependence on their sibling lets are submitted to the bounded worker
    pool ahead of time and awaited at first use; [fail-over] and [timeout]
    guard slow or unavailable sources (§5.6).

    A hook lets the server interpose the function cache (§5.5) and security
    filters (§7) around data-service function calls. *)

open Aldsp_xml

type rt

exception Eval_error of string

(** Wrapper invoked around every metadata function call; the default just
    runs the thunk. The server installs caching/auditing here. *)
type call_wrapper =
  Metadata.function_def -> Item.sequence list -> (unit -> Item.sequence) ->
  Item.sequence

(** The streamed counterpart of {!call_wrapper}, invoked around
    non-cacheable user-function calls reached under {!execute_stream}: the
    thunk produces the body's items on demand, and the wrapper's result is
    what flows downstream — the server filters security item by item here.
    The executor memoizes the wrapped stream ({!Seq.memoize}), so a wrapper
    (or consumer) that pulls it twice replays buffered items rather than
    re-running the body — the materialize-on-first-reuse escape hatch.
    Cacheable call sites never reach this wrapper; they take the
    materialized {!call_wrapper} path because the function cache stores
    whole values. *)
type stream_wrapper =
  Metadata.function_def -> Item.sequence list -> (unit -> Item.t Seq.t) ->
  Item.t Seq.t

(** Invoked once per sort that actually spilled, with that sort's totals
    (runs/rows/bytes written, peak resident rows) — the server rolls these
    into {!Server.stats}. *)
type spill_report = runs:int -> rows:int -> bytes:int -> peak:int -> unit

val runtime :
  ?call_wrapper:call_wrapper ->
  ?stream_wrapper:stream_wrapper ->
  ?pool:Pool.t ->
  ?observed:Observed.t ->
  ?concurrent_lets:bool ->
  ?sort_budget_rows:int ->
  ?on_spill:spill_report ->
  Metadata.t ->
  rt
(** [pool] (default {!Pool.default}) runs asynchronous source work —
    PP-k prefetch, [fn-bea:async], concurrent independent lets. [observed]
    receives roundtrip counts and overlap-time-saved accounting from the
    PP-k pipeline in addition to whatever the call wrapper records.
    [concurrent_lets] (default true) allows [fn-bea:async] arguments and
    independent let-bound source calls to be submitted to the pool ahead of
    use; false evaluates every binding in place, in clause order — the
    strictly sequential behaviour the differential harness's reference
    configuration relies on. [sort_budget_rows] bounds the blocking
    operators' resident rows: ORDER BY and the unclustered GROUP BY
    fallback route through {!Extsort}, spilling sorted runs to disk and
    merging them back as a stream (results byte-identical; spill totals
    land in the operator's {!Plan_ir.counters} and [on_spill]). Absent,
    they sort in memory as before. *)

val recoverable_failure : exn -> bool
(** Whether the fail-over/timeout adaptors (§5.6) may recover from this
    exception by taking the alternate branch: evaluation errors and
    runtime/transport failures a source call can legitimately surface are
    recoverable; fatal exceptions (Out_of_memory, Stack_overflow,
    Assert_failure, ...) never are. *)

val batch_seq : int -> 'a Seq.t -> 'a list Seq.t
(** Groups a sequence into blocks of at most [k] (the PP-k blocking step);
    the last block may be short, an empty input yields no blocks, and
    [k <= 1] degenerates to singleton blocks. Lazy: forcing block [n]
    consumes exactly the first [n*k] input elements. *)

val execute :
  rt ->
  ?bindings:(Cexpr.var * Item.sequence) list ->
  Plan_ir.t ->
  (Item.sequence, string) result
(** Runs a compiled plan, accumulating per-operator counters into it.
    Function bodies reached by calls are themselves lowered on first use
    and memoized in the runtime, keyed on (name, arity) and invalidated
    when {!Metadata.generation} moves. *)

val execute_exn :
  rt ->
  ?bindings:(Cexpr.var * Item.sequence) list ->
  Plan_ir.t ->
  Item.sequence
(** Like {!execute} but raises {!Eval_error}. *)

val execute_stream :
  rt ->
  ?bindings:(Cexpr.var * Item.sequence) list ->
  Plan_ir.t ->
  Item.t Seq.t
(** Streamed execution: the same plan, the same counters, the same items
    in the same order as {!execute_exn} — but produced on demand, so the
    consumer sees the first item while upstream operators (including
    backend cursors opened by pushed-SQL regions) are still producing.
    Root pipelines, top-level sequences and non-cacheable function calls
    stream; other node shapes fall back to materialized evaluation of
    that node. Evaluation errors surface at pull time as {!Eval_error}
    (or {!Aldsp_concurrency.Cancel.Cancelled} on abort), so consumers
    must be prepared for a mid-stream raise. *)

val eval :
  rt ->
  ?bindings:(Cexpr.var * Item.sequence) list ->
  Cexpr.t ->
  (Item.sequence, string) result
(** Convenience: {!Plan_ir.compile} then {!execute}. Each call lowers the
    expression afresh; callers that run the same expression repeatedly
    should compile once and {!execute} the plan. *)

val eval_exn :
  rt -> ?bindings:(Cexpr.var * Item.sequence) list -> Cexpr.t -> Item.sequence
(** Like {!eval} but raises {!Eval_error}. *)

val call_function :
  rt -> Aldsp_xml.Qname.t -> Item.sequence list -> (Item.sequence, string) result
(** Invokes a registered data-service function directly (the service-call
    API of §2.2). *)

val matches_stype : Item.sequence -> Stype.t -> bool
(** The runtime [typematch] check. *)
