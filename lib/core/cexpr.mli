(** The core expression algebra.

    This is the compiler's internal form, produced by normalization
    (implicit operations such as atomization and effective-boolean-value
    made explicit, names resolved, variables made unique), transformed by
    the optimizer (function inlining, join introduction, inverse-function
    rewrites), annotated by SQL pushdown (the {!clause-Rel} clause), and
    finally interpreted by the runtime.

    FLWOR blocks are clause pipelines over {e binding tuples} (§5.1): each
    clause consumes and produces a stream of variable bindings. The
    optimizer introduces explicit {!clause-Join} clauses (§4.3) whose right
    side is itself a clause pipeline; a join either exports the right-hand
    bindings (one output tuple per match) or groups all matches under a
    single variable per left tuple ({!export-Grouped}) — the fused
    outer-join + pre-clustered group-by the paper relies on for nested
    results (§4.2, §5.2). *)

open Aldsp_xml

type var = string

(** Physical join methods of §5.2. PP-k fetches the right side in blocks of
    [k] left tuples via a disjunctive parameterized query; [prefetch] is the
    pipeline depth — how many block queries may be in flight on the worker
    pool ahead of the block the middleware join is consuming (0 = strictly
    sequential roundtrips). *)
type join_method =
  | Nested_loop
  | Index_nested_loop
  | Ppk of { k : int; prefetch : int; inner : inner_method }

and inner_method = Inner_nl | Inner_inl

type binop =
  | V_eq | V_ne | V_lt | V_le | V_gt | V_ge  (** value comparisons *)
  | G_eq | G_ne | G_lt | G_le | G_gt | G_ge  (** general comparisons *)
  | Add | Sub | Mul | Div | Idiv | Mod
  | And | Or  (** operands are already EBV-wrapped by normalization *)
  | Range  (** [to] *)

type t =
  | Const of Atomic.t
  | Empty
  | Seq of t list
  | Var of var
  | Elem of {
      name : Qname.t;
      optional : bool;  (** [<E?>]: construct only if content non-empty. *)
      attrs : attr list;
      content : t;
    }
  | Flwor of { clauses : clause list; return_ : t }
  | If of { cond : t; then_ : t; else_ : t }
  | Quantified of { universal : bool; var : var; source : t; pred : t }
  | Call of { fn : Qname.t; args : t list }
  | Child of t * Qname.t
  | Child_wild of t
  | Attr_of of t * Qname.t
  | Filter of { input : t; dot : var; pos : var; pred : t }
      (** [input[pred]]; [pred] may reference the context item [dot] and
          position [pos]; a numeric predicate selects by position. *)
  | Data of t  (** explicit atomization *)
  | Ebv of t  (** explicit effective boolean value *)
  | Binop of binop * t * t
  | Typematch of t * Stype.t
      (** Runtime type check inserted by the optimistic static rule. *)
  | Cast of t * Atomic.atomic_type
  | Castable of t * Atomic.atomic_type
  | Instance_of of t * Stype.t
  | Error_expr of string
      (** Inserted by design-time error recovery; raises if evaluated. *)

and attr = { aname : Qname.t; avalue : t; aoptional : bool }

and clause =
  | For of { var : var; source : t }
  | Let of { var : var; value : t }
  | Where of t  (** already EBV-wrapped *)
  | Group of { aggs : (var * var) list; keys : (t * var) list; clustered : bool }
      (** The ALDSP FLWGOR group-by: [aggs] maps each aggregated input
          variable to its output (sequence) variable, [keys] binds grouping
          expressions to key variables. Only output variables are visible
          downstream. [clustered] marks input already clustered on the
          keys, selecting the constant-memory streaming implementation
          instead of the sort fallback (§5.2). *)
  | Order of { keys : (t * bool) list }  (** [(key, descending)] *)
  | Join of {
      kind : join_kind;
      method_ : join_method;
      right : clause list;
      on_ : t;  (** EBV-wrapped predicate over left + right variables. *)
      export : export;
    }
  | Rel of sql_access
      (** A pushed relational region (§4.4): executes SQL on one database
          and binds one variable per selected column (NULL = empty). *)

and join_kind = J_inner | J_left_outer

and export =
  | Bindings  (** right-hand variables visible; one tuple per match *)
  | Grouped of { gvar : var; gexpr : t }
      (** one tuple per left tuple; [gvar] = concatenation of [gexpr]
          over all matches (empty when none) — fused outer-join+group *)

and sql_access = {
  db : string;
  select : Aldsp_relational.Sql_ast.select;
  sql_params : t list;  (** middleware expressions bound to [?] slots *)
  binds : sql_bind list;
}

and sql_bind = { bvar : var; btype : Atomic.atomic_type; bcol : string }

val seq : t list -> t
(** Smart constructor: flattens nested sequences, drops empties. *)

val free_vars : t -> unit -> (var, unit) Hashtbl.t
val is_free : var -> t -> bool

val clause_vars : clause list -> var list
(** Variables a clause pipeline binds for downstream clauses. *)

val count_uses : var -> clause list -> t -> int
(** Occurrences of a variable in a clause list plus return expression —
    including Group aggregation inputs, which are referenced positionally
    rather than as [Var] nodes. *)

val count_occurrences : var -> t -> int

val map_children : (t -> t) -> t -> t
(** Shallow map over all sub-expressions, including those inside clauses
    (sources, predicates, SQL parameters). Binding structure is
    preserved. *)

val map_clause : (t -> t) -> clause -> clause
(** Shallow map over the expressions of a single clause. *)

val substitute : (var * t) list -> t -> t
(** Capture-naive substitution — sound because normalization makes every
    bound variable unique and inlining freshens function bodies. *)

val rename_bound : (unit -> int) -> t -> t
(** Freshens every bound variable using the supplied counter (used when a
    function body is inlined more than once). *)

val size : t -> int
(** Node count, used by rewrite-loop safeguards. *)

val equal : t -> t -> bool

val binop_name : binop -> string

val pp : Format.formatter -> t -> unit
(** Plan-style rendering used by [explain]. *)

val to_string : t -> string
