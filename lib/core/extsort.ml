(* Bounded-memory external merge sort. See extsort.mli for the contract.

   Shape: accumulate up to [budget] rows, stable-sort the run, spill it as
   Marshal-framed chunks to a file in a per-sort temp directory, repeat;
   then k-way merge the run files back lazily. Stability comes from
   stable-sorting each run and breaking merge ties toward the
   earlier-numbered run; bounded fan-in comes from intermediate merge
   passes that re-spill groups of [max_fanin] runs into single wider runs
   until one final merge suffices. *)

type stats = {
  mutable runs_spilled : int;
  mutable rows_spilled : int;
  mutable bytes_spilled : int;
  mutable merge_fanin : int;
  mutable peak_resident : int;
}

let zero_stats () =
  { runs_spilled = 0; rows_spilled = 0; bytes_spilled = 0; merge_fanin = 0;
    peak_resident = 0 }

let default_max_fanin = 64

(* ------------------------------------------------------------------ *)
(* Temp directories                                                    *)

let dir_counter = ref 0
let dir_mu = Mutex.create ()

(* pid + process-wide counter: unique without consulting a random source *)
let fresh_temp_dir parent =
  let parent =
    match parent with Some d -> d | None -> Filename.get_temp_dir_name ()
  in
  let rec try_ () =
    let n =
      Mutex.lock dir_mu;
      incr dir_counter;
      let n = !dir_counter in
      Mutex.unlock dir_mu;
      n
    in
    let path =
      Filename.concat parent
        (Printf.sprintf "aldsp-extsort-%d-%d" (Unix.getpid ()) n)
    in
    try
      Unix.mkdir path 0o700;
      path
    with Unix.Unix_error (Unix.EEXIST, _, _) -> try_ ()
  in
  try_ ()

(* ------------------------------------------------------------------ *)
(* Run files: a sequence of Marshal frames, each an ['a array] chunk.   *)

let write_frames oc ~chunk_rows (rows : 'a array) =
  let n = Array.length rows in
  let bytes = ref 0 in
  let i = ref 0 in
  while !i < n do
    Cancel.check_current ();
    let len = min chunk_rows (n - !i) in
    let frame = Marshal.to_bytes (Array.sub rows !i len) [] in
    output_bytes oc frame;
    bytes := !bytes + Bytes.length frame;
    i := !i + len
  done;
  !bytes

let write_run_file ~chunk_rows path (rows : 'a array) =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> write_frames oc ~chunk_rows rows)

let read_run_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let acc = ref [] in
      (try
         while true do
           let frame : 'a array = Marshal.from_channel ic in
           Array.iter (fun x -> acc := x :: !acc) frame
         done
       with End_of_file -> ());
      List.rev !acc)

(* ------------------------------------------------------------------ *)
(* Merge readers                                                       *)

type 'a reader = {
  run_no : int;  (* position of the run in input order: the tiebreak *)
  ic : in_channel;
  mutable frame : 'a array;
  mutable idx : int;
  mutable eof : bool;
}

(* [note] feeds the resident-row counter so [peak_resident] covers run
   accumulation, loaded merge frames and re-spill buffers alike. *)
let open_reader ~note run_no path =
  let ic = open_in_bin path in
  let r = { run_no; ic; frame = [||]; idx = 0; eof = false } in
  (try
     r.frame <- Marshal.from_channel ic;
     note (Array.length r.frame)
   with End_of_file ->
     r.eof <- true;
     close_in_noerr ic);
  r

let reader_peek r = if r.eof then None else Some r.frame.(r.idx)

let reader_pop ~note r =
  let x = r.frame.(r.idx) in
  r.idx <- r.idx + 1;
  note (-1);
  if r.idx >= Array.length r.frame then begin
    Cancel.check_current ();
    try
      r.frame <- Marshal.from_channel r.ic;
      r.idx <- 0;
      note (Array.length r.frame)
    with End_of_file ->
      r.eof <- true;
      close_in_noerr r.ic
  end;
  x

(* Linear-scan k-way min: fan-in is at most [max_fanin] (64), so a heap
   buys nothing at these widths. Ties go to the lowest run number, which
   is what makes the merge stable. *)
let pick_min ~cmp readers =
  let best = ref None in
  List.iter
    (fun r ->
      match (reader_peek r, !best) with
      | None, _ -> ()
      | Some _, None -> best := Some r
      | Some x, Some b -> (
        match reader_peek b with
        | Some y ->
          let c = cmp x y in
          if c < 0 || (c = 0 && r.run_no < b.run_no) then best := Some r
        | None -> best := Some r))
    readers;
  !best

(* ------------------------------------------------------------------ *)

let sort ?stats ?temp_dir ?(max_fanin = default_max_fanin) ~budget_rows ~cmp
    input =
  let stats = match stats with Some s -> s | None -> zero_stats () in
  match budget_rows with
  | None ->
    (* unbounded: the classic in-memory stable sort, still lazy *)
    fun () -> List.to_seq (List.stable_sort cmp (List.of_seq input)) ()
  | Some budget ->
    let budget = max 1 budget in
    let max_fanin = max 2 max_fanin in
    (* frame chunks sized so a full-width merge holds at most
       [max_fanin * chunk_rows <= budget] rows resident (budgets below
       the fan-in degenerate to one-row frames) *)
    let chunk_rows = max 1 (budget / max_fanin) in
    let resident = ref 0 in
    let note d =
      resident := !resident + d;
      if !resident > stats.peak_resident then stats.peak_resident <- !resident
    in
    let produce () =
      (* First force: consume the input a run at a time. If it fits in
         one budget's worth of rows, no file is ever created and the
         stats stay zero — the spilling machinery below only engages on
         the first overflow. *)
      let buf = ref [||] in
      let fill = ref 0 in
      let dir = ref None in
      let files = ref [] in
      let run_count = ref 0 in
      let cleaned = ref false in
      let cleanup () =
        if not !cleaned then begin
          cleaned := true;
          List.iter (fun p -> try Sys.remove p with Sys_error _ -> ())
            (List.rev !files);
          match !dir with
          | Some d -> ( try Unix.rmdir d with Unix.Unix_error _ -> ())
          | None -> ()
        end
      in
      let fresh_path () =
        let d =
          match !dir with
          | Some d -> d
          | None ->
            let d = fresh_temp_dir temp_dir in
            dir := Some d;
            d
        in
        let path = Filename.concat d (Printf.sprintf "run-%06d" !run_count) in
        incr run_count;
        (* registered before the first write so an interrupted (or
           cancelled) spill is still removed by [cleanup] *)
        files := path :: !files;
        path
      in
      let sorted_run () =
        let run = Array.sub !buf 0 !fill in
        Array.stable_sort cmp run;
        run
      in
      let spill_run () =
        let path = fresh_path () in
        let bytes = write_run_file ~chunk_rows path (sorted_run ()) in
        stats.runs_spilled <- stats.runs_spilled + 1;
        stats.rows_spilled <- stats.rows_spilled + !fill;
        stats.bytes_spilled <- stats.bytes_spilled + bytes;
        note (- !fill);
        fill := 0;
        path
      in
      try
        let spilled = ref [] in
        Seq.iter
          (fun x ->
            if !fill >= budget then spilled := spill_run () :: !spilled;
            if Array.length !buf = 0 then buf := Array.make budget x;
            !buf.(!fill) <- x;
            incr fill;
            note 1)
          input;
        if !spilled = [] then begin
          (* never overflowed: stay in memory, no files, zero stats *)
          let run = sorted_run () in
          note (- !fill);
          buf := [||];
          Array.to_seq run ()
        end
        else begin
          if !fill > 0 then spilled := spill_run () :: !spilled;
          buf := [||];
          let runs = List.rev !spilled in
          (* intermediate passes: merge groups of [max_fanin] runs into
             single wider runs until one final merge suffices *)
          let merge_to_file group out_path =
            stats.merge_fanin <- max stats.merge_fanin (List.length group);
            let readers = List.mapi (open_reader ~note) group in
            let oc = open_out_bin out_path in
            let out = ref [||] in
            let out_fill = ref 0 in
            let flush_out () =
              if !out_fill > 0 then begin
                Cancel.check_current ();
                let frame = Marshal.to_bytes (Array.sub !out 0 !out_fill) [] in
                output_bytes oc frame;
                stats.bytes_spilled <- stats.bytes_spilled + Bytes.length frame;
                stats.rows_spilled <- stats.rows_spilled + !out_fill;
                note (- !out_fill);
                out_fill := 0
              end
            in
            Fun.protect
              ~finally:(fun () ->
                close_out_noerr oc;
                List.iter
                  (fun r -> if not r.eof then close_in_noerr r.ic)
                  readers)
              (fun () ->
                let rec loop () =
                  match pick_min ~cmp readers with
                  | None -> flush_out ()
                  | Some r ->
                    if !out_fill >= chunk_rows then flush_out ();
                    let x = reader_pop ~note r in
                    if Array.length !out = 0 then
                      out := Array.make chunk_rows x;
                    !out.(!out_fill) <- x;
                    incr out_fill;
                    note 1;
                    loop ()
                in
                loop ());
            stats.runs_spilled <- stats.runs_spilled + 1;
            List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) group
          in
          let rec reduce paths =
            if List.length paths <= max_fanin then paths
            else begin
              let rec split_groups acc cur n = function
                | [] ->
                  List.rev
                    (if cur = [] then acc else List.rev cur :: acc)
                | p :: rest ->
                  if n >= max_fanin then
                    split_groups (List.rev cur :: acc) [ p ] 1 rest
                  else split_groups acc (p :: cur) (n + 1) rest
              in
              let merged =
                List.map
                  (function
                    | [ single ] -> single
                    | group ->
                      let path = fresh_path () in
                      merge_to_file group path;
                      path)
                  (split_groups [] [] 0 paths)
              in
              reduce merged
            end
          in
          let finals = reduce runs in
          stats.merge_fanin <- max stats.merge_fanin (List.length finals);
          let readers = List.mapi (open_reader ~note) finals in
          (* the final merge, lazily: each pull takes the minimum across
             run heads, refilling frames as they drain *)
          let rec emit () =
            Cancel.check_current ();
            match pick_min ~cmp readers with
            | None ->
              cleanup ();
              Seq.Nil
            | Some r -> Seq.Cons (reader_pop ~note r, emit)
          in
          (* any exception while merging (Cancelled included) removes the
             temp files before propagating *)
          let rec guard s () =
            match (try s () with e -> cleanup (); raise e) with
            | Seq.Nil -> Seq.Nil
            | Seq.Cons (x, rest) -> Seq.Cons (x, guard rest)
          in
          guard emit ()
        end
      with e ->
        cleanup ();
        raise e
    in
    fun () -> produce ()
