open Aldsp_xml
open Aldsp_relational
open Aldsp_services

let row_to_element ~row_name ~columns row =
  let children =
    List.concat
      (List.mapi
         (fun i (col_name, atomic_ty) ->
           match Sql_value.to_atomic row.(i) with
           | None -> []  (* NULL: missing element, the "ragged" mapping *)
           | Some atom ->
             let atom =
               match Atomic.cast atomic_ty atom with
               | Ok v -> v
               | Error _ -> atom
             in
             [ Node.element (Qname.local col_name) [ Node.atom atom ] ])
         columns)
  in
  Node.element row_name children

let table_columns table =
  List.map
    (fun c -> (c.Table.col_name, Table.atomic_type_of_sql c.Table.col_type))
    table.Table.columns

let relational_scan db ~table ~row_name =
  match Database.find_table db table with
  | Error msg -> Error msg
  | Ok t ->
    let columns = table_columns t in
    let select =
      Sql_ast.select
        ~projections:
          (List.map (fun (c, _) -> (Sql_ast.col "t0" c, c)) columns)
        (Sql_ast.Table { table; alias = "t0" })
    in
    (match Sql_exec.query db select with
    | Error msg -> Error msg
    | Ok result ->
      Ok
        (List.map
           (fun row -> Item.Node (row_to_element ~row_name ~columns row))
           result.Sql_exec.rows))

let relational_select db select ~params = Sql_exec.query db ~params select

let relational_select_explained db select ~params =
  Sql_exec.query_explained db ~params select

let relational_select_shared db select ~params =
  Sql_exec.query_shared db ~params select

let relational_select_stream db select ~params =
  Sql_exec.query_stream db ~params select

(* Asynchronous adaptor invocation (§6): the roundtrip runs on the worker
   pool while the query thread continues; the future carries the result
   set together with the roundtrip's wall time so the caller can account
   how much of that latency it managed to hide. *)
let relational_select_async pool db select ~params =
  Pool.submit pool (fun () ->
      let t0 = Unix.gettimeofday () in
      let result = Sql_exec.query db ~params select in
      (result, Unix.gettimeofday () -. t0))

let service_call service ~operation args =
  match args with
  | [ Item.Node request ] -> (
    match Web_service.invoke service operation request with
    | Ok response -> Ok [ Item.Node response ]
    | Error msg -> Error msg)
  | _ ->
    Error
      (Printf.sprintf
         "service operation %s expects a single request element" operation)

let atomic_to_sql = function
  | None -> Sql_value.Null
  | Some atom -> Sql_value.of_atomic atom

let custom_call registry fname args =
  let ( let* ) = Result.bind in
  let* atoms =
    List.fold_left
      (fun acc arg ->
        let* acc = acc in
        let* atomized = Item.atomize arg in
        match atomized with
        | [ a ] -> Ok (a :: acc)
        | [] ->
          Error
            (Printf.sprintf "external function %s: empty argument"
               (Qname.to_string fname))
        | _ ->
          Error
            (Printf.sprintf "external function %s: sequence argument"
               (Qname.to_string fname)))
      (Ok []) args
  in
  let* result = Custom_function.call registry fname (List.rev atoms) in
  Ok [ Item.Atom result ]
