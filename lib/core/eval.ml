open Aldsp_xml
open Plan_ir
module C = Cexpr
module Sql = Aldsp_relational.Sql_ast
module Sql_exec = Aldsp_relational.Sql_exec
module V = Aldsp_relational.Sql_value

exception Eval_error of string

let error fmt = Printf.ksprintf (fun m -> raise (Eval_error m)) fmt

(* Bindings are either materialized or futures running on the worker pool
   (fn-bea:async, concurrent independent lets); the pool rides along so
   awaiting from a worker thread can help-drain instead of deadlocking. *)
type binding = Now of Item.sequence | Later of Pool.t * Item.sequence Future.t

module Env = Map.Make (String)

type env = binding Env.t

type call_wrapper =
  Metadata.function_def -> Item.sequence list -> (unit -> Item.sequence) ->
  Item.sequence

type stream_wrapper =
  Metadata.function_def -> Item.sequence list -> (unit -> Item.t Seq.t) ->
  Item.t Seq.t

type spill_report = runs:int -> rows:int -> bytes:int -> peak:int -> unit

type rt = {
  registry : Metadata.t;
  call_wrapper : call_wrapper;
  stream_wrapper : stream_wrapper;
  max_depth : int;
  pool : Pool.t;
  observed : Observed.t option;
  concurrent_lets : bool;
  sort_budget_rows : int option;
      (* in-memory row budget for the blocking operators; None sorts in
         memory, Some n routes ORDER BY and the unclustered GROUP BY
         fallback through Extsort *)
  on_spill : spill_report;
      (* called once per sort that actually spilled — the server rolls
         these into its stats *)
  (* Compiled function bodies, lazily lowered on first call and memoized
     per (name, arity); dropped wholesale when the registry's generation
     moves so a redefined function never runs its old plan. *)
  body_plans : (Qname.t * int, Plan_ir.t) Hashtbl.t;
  body_mu : Mutex.t;
  mutable body_gen : int;
}

let runtime ?(call_wrapper = fun _ _ k -> k ())
    ?(stream_wrapper = fun _ _ k -> k ()) ?pool ?observed
    ?(concurrent_lets = true) ?sort_budget_rows
    ?(on_spill = fun ~runs:_ ~rows:_ ~bytes:_ ~peak:_ -> ()) registry =
  let pool = match pool with Some p -> p | None -> Pool.default () in
  { registry; call_wrapper; stream_wrapper; max_depth = 256; pool; observed;
    concurrent_lets; sort_budget_rows; on_spill;
    body_plans = Hashtbl.create 16; body_mu = Mutex.create ();
    body_gen = Metadata.generation registry }

(* Which exceptions the fail-over/timeout adaptors (§5.6) may recover
   from: evaluation errors, and runtime failures a source call can
   legitimately surface — [Failure] from a crashed pool worker or source
   implementation, transport-level [Unix_error]s. Asynchronous/fatal
   exceptions (Out_of_memory, Stack_overflow, Assert_failure, ...) are
   never swallowed: an adaptor that masked those would hide real bugs.
   [Cancel.Cancelled] is likewise never recoverable: a session deadline
   (or explicit cancel) must abort the whole query, and a fail-over that
   "recovered" from it would instead run the alternate and keep going. *)
let recoverable_failure = function
  | Eval_error _ | Failure _ | Unix.Unix_error _ | Not_found -> true
  | Cancel.Cancelled _ -> false
  | _ -> false

let lookup env v =
  match Env.find_opt v env with
  | Some (Now seq) -> seq
  | Some (Later (pool, fut)) -> Pool.await pool fut
  | None -> error "unbound variable $%s at runtime" v

let bind env v seq = Env.add v (Now seq) env

(* Spilling an environment to disk requires it to be pure data: [Later]
   bindings hold pool futures (closures), so they are awaited into values
   first. Only envs headed for a spill file pay this — the in-memory
   paths keep bindings lazy as before. *)
let materialize_env env =
  Env.map
    (function
      | Now _ as b -> b
      | Later (pool, fut) -> Now (Pool.await pool fut))
    env

(* Route a keyed sequence through the external sort under the runtime's
   row budget, accounting the spill into the operator's counters (and the
   server's rollup) once the sort completes or aborts. Zero-spill sorts
   leave the counters untouched, so EXPLAIN renders exactly as before. *)
let spill_sort rt counters ~budget ~cmp seq =
  let stats = Extsort.zero_stats () in
  let reported = ref false in
  let finish () =
    if not !reported then begin
      reported := true;
      if stats.Extsort.runs_spilled > 0 then begin
        counters.c_spill_runs <-
          counters.c_spill_runs + stats.Extsort.runs_spilled;
        counters.c_spill_rows <-
          counters.c_spill_rows + stats.Extsort.rows_spilled;
        counters.c_spill_bytes <-
          counters.c_spill_bytes + stats.Extsort.bytes_spilled;
        counters.c_merge_fanin <-
          max counters.c_merge_fanin stats.Extsort.merge_fanin;
        rt.on_spill ~runs:stats.Extsort.runs_spilled
          ~rows:stats.Extsort.rows_spilled ~bytes:stats.Extsort.bytes_spilled
          ~peak:stats.Extsort.peak_resident
      end
    end
  in
  let out = Extsort.sort ~stats ~budget_rows:(Some budget) ~cmp seq in
  let rec go s () =
    match (try s () with e -> finish (); raise e) with
    | Seq.Nil ->
      finish ();
      Seq.Nil
    | Seq.Cons (x, rest) -> Seq.Cons (x, go rest)
  in
  go out

(* ------------------------------------------------------------------ *)
(* Total order on atoms, for sorting and grouping: comparable values
   use value comparison; incomparable pairs order by type tag so the
   sort is still total (grouping only needs a consistent order). *)

let type_rank = function
  | Atomic.Boolean _ -> 0
  | Atomic.Integer _ | Atomic.Decimal _ | Atomic.Double _ -> 1
  | Atomic.String _ | Atomic.Untyped _ -> 2
  | Atomic.Date _ | Atomic.Date_time _ -> 3

let compare_atoms_total a b =
  match Atomic.compare_values a b with
  | Ok c -> c
  | Error _ -> compare (type_rank a) (type_rank b)

let compare_keys_total ka kb =
  (* each key is an atom list; empty sorts first *)
  let compare_key a b =
    match (a, b) with
    | [], [] -> 0
    | [], _ -> -1
    | _, [] -> 1
    | xs, ys ->
      let rec go xs ys =
        match (xs, ys) with
        | [], [] -> 0
        | [], _ -> -1
        | _, [] -> 1
        | x :: xs, y :: ys -> (
          match compare_atoms_total x y with 0 -> go xs ys | c -> c)
      in
      go xs ys
  in
  let rec go ka kb =
    match (ka, kb) with
    | [], [] -> 0
    | [], _ -> -1
    | _, [] -> 1
    | a :: ka, b :: kb -> (
      match compare_key a b with 0 -> go ka kb | c -> c)
  in
  go ka kb

let keys_equal ka kb = compare_keys_total ka kb = 0

(* ------------------------------------------------------------------ *)
(* typematch / instance-of                                             *)

let rec item_matches item (it : Stype.item_type) =
  match (item, it) with
  | _, Stype.It_item -> true
  | _, Stype.It_error -> true
  | Item.Atom a, Stype.It_atomic ty ->
    Atomic.subtype (Atomic.type_of a) ty || ty = Atomic.T_untyped
  | Item.Node _, Stype.It_node -> true
  | Item.Node (Node.Element e), Stype.It_element { elem_name; simple; _ } -> (
    (match elem_name with
    | None -> true
    | Some n -> Qname.equal e.Node.name n)
    &&
    match simple with
    | None -> true
    | Some ty -> (
      match Node.typed_value (Node.Element e) with
      | [ a ] -> Atomic.subtype (Atomic.type_of a) ty || ty = Atomic.T_untyped
      | [] -> true
      | _ -> false))
  | Item.Node (Node.Text _), Stype.It_text -> true
  | Item.Node _, _ -> false
  | Item.Atom _, _ -> false

and matches_stype seq (ty : Stype.t) =
  let n = List.length seq in
  (if ty.Stype.occ.Stype.at_least_one then n >= 1 else true)
  && (if ty.Stype.occ.Stype.at_most_one then n <= 1 else true)
  && (ty.Stype.items <> [] || n = 0)
  && List.for_all
       (fun item -> List.exists (item_matches item) ty.Stype.items)
       seq

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)

let atomize seq =
  match Item.atomize seq with Ok a -> a | Error m -> error "%s" m

let ebv seq = match Item.ebv seq with Ok b -> b | Error m -> error "%s" m

let singleton_atom what seq =
  match atomize seq with
  | [] -> None
  | [ a ] -> Some a
  | _ -> error "%s: more than one item" what

let value_compare op a b =
  match Atomic.compare_values a b with
  | Ok c -> (
    match op with
    | C.V_eq -> c = 0
    | C.V_ne -> c <> 0
    | C.V_lt -> c < 0
    | C.V_le -> c <= 0
    | C.V_gt -> c > 0
    | C.V_ge -> c >= 0
    | _ -> assert false)
  | Error m -> error "%s" m

let arith op a b =
  let r =
    match op with
    | C.Add -> Atomic.add a b
    | C.Sub -> Atomic.sub a b
    | C.Mul -> Atomic.mul a b
    | C.Div -> Atomic.div a b
    | C.Idiv -> Atomic.idiv a b
    | C.Mod -> Atomic.modulo a b
    | _ -> assert false
  in
  match r with Ok v -> v | Error m -> error "%s" m

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)

let tally c n =
  c.c_starts <- c.c_starts + 1;
  c.c_rows <- c.c_rows + n

(* [t0] (the stream's construction time) stamps the operator's
   time-to-first-row the first time a row comes through since the last
   counter reset. *)
let count_rows ?t0 c seq =
  Seq.map
    (fun x ->
      (match t0 with
      | Some t0 when c.c_first_row_ns = 0. ->
        c.c_first_row_ns <- (Unix.gettimeofday () -. t0) *. 1e9
      | _ -> ());
      c.c_rows <- c.c_rows + 1;
      x)
    seq

(* ------------------------------------------------------------------ *)
(* The executor                                                        *)

type frame = { rt : rt; depth : int }

(* The PP-k blocking step: lazy, the last block may be short, k <= 1
   degenerates to singleton blocks. *)
let batch_seq k (input : 'a Seq.t) : 'a list Seq.t =
  let k = max 1 k in
  let rec take n seq acc =
    if n = 0 then (List.rev acc, seq)
    else
      match seq () with
      | Seq.Nil -> (List.rev acc, Seq.empty)
      | Seq.Cons (x, rest) -> take (n - 1) rest (x :: acc)
  in
  let rec go seq () =
    match take k seq [] with
    | [], _ -> Seq.Nil
    | block, rest -> Seq.Cons (block, go rest)
  in
  go input

(* Compiled function bodies, keyed on (name, arity), re-lowered whenever
   the registry's generation moves. *)
let body_plan rt fd body =
  Mutex.lock rt.body_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock rt.body_mu)
    (fun () ->
      let gen = Metadata.generation rt.registry in
      if rt.body_gen <> gen then begin
        Hashtbl.reset rt.body_plans;
        rt.body_gen <- gen
      end;
      let key =
        (fd.Metadata.fd_name, List.length fd.Metadata.fd_params)
      in
      match Hashtbl.find_opt rt.body_plans key with
      | Some plan -> plan
      | None ->
        let plan = Plan_ir.compile rt.registry body in
        Hashtbl.add rt.body_plans key plan;
        plan)

let rec exec fr env (p : Plan_ir.t) : Item.sequence =
  match p.node with
  | P_const a -> [ Item.Atom a ]
  | P_empty -> []
  | P_seq es -> exec_children fr env es
  | P_var v -> lookup env v
  | P_construct { name; optional; attrs; content } ->
    let v = exec_element fr env name optional attrs content in
    tally p.counters (List.length v);
    v
  | P_pipeline { ops; return_ } ->
    let stream = tuples fr env (List.to_seq [ env ]) ops in
    let v =
      List.concat
        (List.of_seq (Seq.map (fun env' -> exec fr env' return_) stream))
    in
    tally p.counters (List.length v);
    v
  | P_if { cond; then_; else_ } ->
    if ebv (exec fr env cond) then exec fr env then_ else exec fr env else_
  | P_quantified { universal; var; source; pred } ->
    let items = exec fr env source in
    let test item = ebv (exec fr (bind env var [ item ]) pred) in
    [ Item.boolean
        (if universal then List.for_all test items else List.exists test items) ]
  | P_call { fn; args; _ } -> exec_call fr env p fn args
  | P_async arg ->
    let v = exec fr env arg in
    tally p.counters (List.length v);
    v
  | P_fail_over { primary; alternate } ->
    (* the primary may fail inside a pool worker (e.g. a concurrent-let
       future), which surfaces as the task's own exception rather than
       Eval_error — those are recoverable too (§5.6) *)
    let v =
      try exec fr env primary
      with e when recoverable_failure e -> exec fr env alternate
    in
    tally p.counters (List.length v);
    v
  | P_timeout { primary; millis; alternate } ->
    let ms =
      match singleton_atom "fn-bea:timeout" (exec fr env millis) with
      | Some (Atomic.Integer i) -> i
      | _ -> error "fn-bea:timeout expects an integer milliseconds argument"
    in
    (* a dedicated thread, not a pool worker: past the deadline the
       computation is abandoned and must not occupy the bounded pool *)
    let fut = Future.detach (fun () -> exec fr env primary) in
    (* the adaptor's window never extends past the session deadline: once
       the session is out of time there is no point waiting, and the
       check below turns the expiry into an abort rather than a
       fail-over to the alternate *)
    let window = float_of_int ms /. 1000. in
    let window =
      match Cancel.remaining (Cancel.current ()) with
      | Some left -> Float.min window left
      | None -> window
    in
    let v =
      match Future.await_timeout fut window with
      | Some v -> v
      | None ->
        Cancel.check_current ();
        exec fr env alternate
      | exception e when recoverable_failure e -> exec fr env alternate
    in
    tally p.counters (List.length v);
    v
  | P_child (input, name) ->
    List.concat_map
      (function
        | Item.Node node ->
          List.map (fun n -> Item.Node n) (Node.child_elements node name)
        | Item.Atom _ -> error "child step on an atomic value")
      (exec fr env input)
  | P_child_wild input ->
    List.concat_map
      (function
        | Item.Node node ->
          List.filter_map
            (function
              | Node.Element _ as el -> Some (Item.Node el)
              | Node.Text _ | Node.Atom _ -> None)
            (Node.children node)
        | Item.Atom _ -> error "child step on an atomic value")
      (exec fr env input)
  | P_attr_of (input, name) ->
    List.concat_map
      (function
        | Item.Node node -> (
          match Node.attribute node name with
          | Some a -> [ Item.Atom a ]
          | None -> [])
        | Item.Atom _ -> error "attribute step on an atomic value")
      (exec fr env input)
  | P_filter { input; dot; pos; pred } ->
    let items = exec fr env input in
    List.filteri
      (fun i item ->
        let env' =
          bind (bind env dot [ item ]) pos [ Item.integer (i + 1) ]
        in
        let result = exec fr env' pred in
        match result with
        | [ Item.Atom ((Atomic.Integer _ | Atomic.Decimal _ | Atomic.Double _) as a) ]
          -> (
          (* numeric predicate selects by position *)
          match a with
          | Atomic.Integer n -> n = i + 1
          | Atomic.Decimal f | Atomic.Double f -> f = float_of_int (i + 1)
          | _ -> assert false)
        | r -> ebv r)
      items
  | P_data input -> List.map (fun a -> Item.Atom a) (atomize (exec fr env input))
  | P_ebv input -> [ Item.boolean (ebv (exec fr env input)) ]
  | P_binop (op, a, b) -> exec_binop fr env op a b
  | P_typematch (input, ty) ->
    let v = exec fr env input in
    if matches_stype v ty then v
    else error "typematch failed: value does not match %s" (Stype.to_string ty)
  | P_cast (input, ty) -> (
    match singleton_atom "cast" (exec fr env input) with
    | None -> []
    | Some a -> (
      match Atomic.cast ty a with
      | Ok v -> [ Item.Atom v ]
      | Error m -> error "%s" m))
  | P_castable (input, ty) -> (
    match singleton_atom "castable" (exec fr env input) with
    | None -> [ Item.boolean false ]
    | Some a -> [ Item.boolean (Result.is_ok (Atomic.cast ty a)) ])
  | P_instance_of (input, ty) ->
    [ Item.boolean (matches_stype (exec fr env input) ty) ]
  | P_error msg -> error "evaluated an error expression: %s" msg

(* fn-bea:async children are submitted to the worker pool before their
   siblings are evaluated, so independent slow calls overlap (§5.4). *)
and exec_children fr env es =
  let started =
    List.map
      (fun (e : Plan_ir.t) ->
        match e.node with
        | P_async _ ->
          Later (fr.rt.pool, Pool.submit fr.rt.pool (fun () -> exec fr env e))
        | _ -> Now (exec fr env e))
      es
  in
  List.concat_map
    (function Now seq -> seq | Later (pool, fut) -> Pool.await pool fut)
    started

and exec_element fr env name optional attrs content =
  let attributes =
    List.concat_map
      (fun a ->
        let value = exec fr env a.p_avalue in
        match atomize value with
        | [] ->
          if a.p_aoptional then []
          else [ (a.p_aname, Atomic.String "") ]
        | [ atom ] -> [ (a.p_aname, atom) ]
        | atoms ->
          [ ( a.p_aname,
              Atomic.String
                (String.concat " " (List.map Atomic.to_string atoms)) ) ])
      attrs
  in
  let content_items = exec fr env content in
  if optional && content_items = [] && attributes = [] then []
  else
    let children =
      List.map
        (function
          | Item.Atom a -> Node.atom a
          | Item.Node n -> n)
        content_items
    in
    [ Item.Node (Node.element ~attributes name children) ]

and exec_binop fr env op a b =
  match op with
  | C.And ->
    let truth = ebv (exec fr env a) && ebv (exec fr env b) in
    [ Item.boolean truth ]
  | C.Or ->
    let truth = ebv (exec fr env a) || ebv (exec fr env b) in
    [ Item.boolean truth ]
  | C.V_eq | C.V_ne | C.V_lt | C.V_le | C.V_gt | C.V_ge -> (
    let va = singleton_atom "value comparison" (exec fr env a) in
    let vb = singleton_atom "value comparison" (exec fr env b) in
    match (va, vb) with
    | None, _ | _, None -> []
    | Some x, Some y -> [ Item.boolean (value_compare op x y) ])
  | C.G_eq | C.G_ne | C.G_lt | C.G_le | C.G_gt | C.G_ge ->
    let vop =
      match op with
      | C.G_eq -> C.V_eq
      | C.G_ne -> C.V_ne
      | C.G_lt -> C.V_lt
      | C.G_le -> C.V_le
      | C.G_gt -> C.V_gt
      | C.G_ge -> C.V_ge
      | _ -> assert false
    in
    let xs = atomize (exec fr env a) in
    let ys = atomize (exec fr env b) in
    (* general comparison is existential; untyped operands are coerced by
       the value comparison's promotion rules *)
    let holds =
      List.exists
        (fun x ->
          List.exists
            (fun y ->
              match Atomic.compare_values x y with
              | Ok c -> (
                match vop with
                | C.V_eq -> c = 0
                | C.V_ne -> c <> 0
                | C.V_lt -> c < 0
                | C.V_le -> c <= 0
                | C.V_gt -> c > 0
                | C.V_ge -> c >= 0
                | _ -> assert false)
              | Error _ -> false)
            ys)
        xs
    in
    [ Item.boolean holds ]
  | C.Add | C.Sub | C.Mul | C.Div | C.Idiv | C.Mod -> (
    let va = singleton_atom "arithmetic" (exec fr env a) in
    let vb = singleton_atom "arithmetic" (exec fr env b) in
    match (va, vb) with
    | None, _ | _, None -> []
    | Some x, Some y -> [ Item.Atom (arith op x y) ])
  | C.Range -> (
    let va = singleton_atom "range" (exec fr env a) in
    let vb = singleton_atom "range" (exec fr env b) in
    match (va, vb) with
    | Some (Atomic.Integer x), Some (Atomic.Integer y) ->
      if x > y then []
      else List.init (y - x + 1) (fun i -> Item.integer (x + i))
    | None, _ | _, None -> []
    | _ -> error "range bounds must be integers")

(* --------------------------- calls -------------------------------- *)

and exec_call fr env (p : Plan_ir.t) fn args =
  (* function calls are the cancellation check points: frequent enough
     that a cancelled session aborts promptly even between sleeps, cheap
     enough not to tax the per-item operators *)
  Cancel.check_current ();
  (* correct-arity fn-bea special forms were lowered to dedicated guard
     nodes; a call node still carrying one of those names is an arity
     error *)
  if Qname.equal fn Names.async then error "fn-bea:async expects one argument"
  else if Qname.equal fn Names.fail_over then
    error "fn-bea:fail-over expects two arguments"
  else if Qname.equal fn Names.timeout then
    error "fn-bea:timeout expects three arguments"
  else
    let arity = List.length args in
    (* re-resolve at runtime so transiently registered prolog functions
       and redefinitions keep working; the compile-time target on the node
       is informational *)
    match Metadata.resolve_call fr.rt.registry fn arity with
    | Some fd ->
      let values = List.map (exec fr env) args in
      let v = apply_plan_function fr (Some p.counters) fd values in
      tally p.counters (List.length v);
      v
    | None -> (
      match Fn_lib.find fn arity with
      | Some b -> (
        let values = List.map (exec fr env) args in
        match b.Fn_lib.eval values with
        | Ok v -> v
        | Error m -> error "%s" m)
      | None -> error "unknown function %s/%d" (Qname.to_string fn) arity)

and apply_plan_function fr counters fd values =
  if fr.depth > fr.rt.max_depth then
    error "maximum recursion depth exceeded in %s"
      (Qname.to_string fd.Metadata.fd_name);
  let computed = ref false in
  let compute () =
    computed := true;
    match fd.Metadata.fd_impl with
    | Metadata.Body body ->
      let plan = body_plan fr.rt fd body in
      let fn_env =
        List.fold_left2
          (fun acc (param, _) value -> bind acc param value)
          Env.empty fd.Metadata.fd_params values
      in
      exec { fr with depth = fr.depth + 1 } fn_env plan
    | Metadata.External source -> eval_external fr source fd values
  in
  let v = fr.rt.call_wrapper fd values compute in
  (* a cacheable call site that came back without running its thunk was
     served by the function cache (§5.5) *)
  (match counters with
  | Some c when fd.Metadata.fd_cacheable ->
    if !computed then c.c_cache_misses <- c.c_cache_misses + 1
    else c.c_cache_hits <- c.c_cache_hits + 1
  | _ -> ());
  v

and eval_external _fr source fd values =
  match source with
  | Metadata.Stored_procedure { db; procedure; row_name; columns } -> (
    let sql_args =
      List.map
        (fun v ->
          Adaptors.atomic_to_sql (singleton_atom "procedure argument" v))
        values
    in
    match Aldsp_relational.Procedure.call db procedure sql_args with
    | Error m -> error "%s" m
    | Ok rows -> (
      match columns with
      | Some columns ->
        List.map
          (fun row ->
            Item.Node (Adaptors.row_to_element ~row_name ~columns row))
          rows
      | None -> (
        match rows with
        | [ [| v |] ] -> (
          match V.to_atomic v with
          | Some atom -> [ Item.Atom atom ]
          | None -> [])
        | _ -> error "procedure %s: unexpected scalar result shape" procedure)))
  | Metadata.Relational_table { db; table; row_name } -> (
    match Adaptors.relational_scan db ~table ~row_name with
    | Ok items -> items
    | Error m -> error "%s" m)
  | Metadata.Service_op { service; operation } -> (
    match
      Adaptors.service_call service ~operation (List.concat values)
    with
    | Ok items -> items
    | Error m -> error "%s" m)
  | Metadata.External_custom registry -> (
    match Adaptors.custom_call registry fd.Metadata.fd_name values with
    | Ok items -> items
    | Error m -> error "%s" m)
  | Metadata.File_docs docs -> List.map (fun d -> Item.Node d) docs

(* --------------------------- operators ---------------------------- *)

and tuples fr env0 (input : env Seq.t) (ops : op list) : env Seq.t =
  match ops with
  | [] -> input
  | { op_node = O_let _; _ } :: _ ->
    (* a maximal run of adjacent lets binds as one step so independent
       source calls within it can be submitted to the pool together *)
    let rec split run = function
      | ({ op_node = O_let _; _ } as o) :: rest -> split (o :: run) rest
      | rest -> (List.rev run, rest)
    in
    let run, rest = split [] ops in
    List.iter (fun o -> o.op_counters.c_starts <- o.op_counters.c_starts + 1) run;
    let t0 = Unix.gettimeofday () in
    let stream = Seq.map (fun env -> bind_let_run fr env run) input in
    let stream =
      List.fold_left (fun s o -> count_rows ~t0 o.op_counters s) stream run
    in
    tuples fr env0 stream rest
  | op :: rest ->
    op.op_counters.c_starts <- op.op_counters.c_starts + 1;
    let t0 = Unix.gettimeofday () in
    let stream =
      match op.op_node with
      | O_scan { var; source } ->
        Seq.concat_map
          (fun env ->
            let items = exec fr env source in
            Seq.map (fun item -> bind env var [ item ]) (List.to_seq items))
          input
      | O_let _ -> assert false
      | O_select cond ->
        Seq.filter (fun env -> ebv (exec fr env cond)) input
      | O_group { aggs; keys; clustered } ->
        exec_group fr op.op_counters input aggs keys clustered
      | O_sort { keys } -> exec_order fr op.op_counters input keys
      | O_join { kind; method_; right; on_; equi; export } ->
        exec_join fr env0 input kind method_ right on_ equi export
      | O_sql r ->
        Seq.concat_map (fun env -> rel_stream fr op.op_counters env r) input
    in
    tuples fr env0 (count_rows ~t0 op.op_counters stream) rest

(* Concurrent independent source calls (§5.4, §6 async adaptors): the
   lowering marked each let of an adjacent run as plain, explicitly
   async, or auto-submittable (an external-function call with no data
   dependence on the other lets of the run — the fn-bea:async treatment,
   applied automatically). The marks are honoured only when the runtime
   allows concurrency, preserving the reference configuration's strictly
   sequential, in-place evaluation. *)
and bind_let_run fr env run =
  List.fold_left
    (fun env o ->
      match o.op_node with
      | O_let { var; value; mode } -> (
        match mode with
        | (L_async | L_concurrent) when fr.rt.concurrent_lets ->
          Env.add var
            (Later (fr.rt.pool, Pool.submit fr.rt.pool (fun () -> exec fr env value)))
            env
        | _ -> bind env var (exec fr env value))
      | _ -> env)
    env run

and exec_group fr counters input aggs keys clustered =
  (* the runtime has one grouping operator, which requires input clustered
     on the keys (§5.2); when the optimizer has established clustering the
     operator streams in constant memory, otherwise it sorts first — the
     worst-case fallback *)
  let key_of env = List.map (fun (e, _) -> atomize (exec fr env e)) keys in
  if clustered then
    (* constant-memory streaming: watch the key change tuple by tuple *)
    let rec stream pending seq () =
      match seq () with
      | Seq.Nil -> (
        match pending with
        | Some (key, members) ->
          Seq.Cons (make_group_env aggs keys (key, List.rev members), Seq.empty)
        | None -> Seq.Nil)
      | Seq.Cons (env, rest) -> (
        let key = key_of env in
        match pending with
        | Some (current_key, members) when keys_equal key current_key ->
          stream (Some (current_key, env :: members)) rest ()
        | Some (current_key, members) ->
          Seq.Cons
            ( make_group_env aggs keys (current_key, List.rev members),
              stream (Some (key, [ env ])) rest )
        | None -> stream (Some (key, [ env ])) rest ())
    in
    stream None input
  else
    (* Sort-based fallback; output groups in first-appearance order, the
       same order a SQL GROUP BY over our executor produces. Two stable
       sorts under the runtime's row budget: by key, so equal keys become
       adjacent and the clustered streaming logic above applies verbatim
       to the precomputed keys; then groups by the input position of
       their first member, which restores first-appearance order. Both
       sorts spill through Extsort when a budget is set, and either way
       this is O(n log n) — the old path grew a [seen] assoc list with a
       linear scan per tuple. *)
    let budget = fr.rt.sort_budget_rows in
    let sortfn cmp seq =
      match budget with
      | None -> fun () -> List.to_seq (List.stable_sort cmp (List.of_seq seq)) ()
      | Some b -> spill_sort fr.rt counters ~budget:b ~cmp seq
    in
    let indexed =
      Seq.mapi
        (fun i env ->
          let key = key_of env in
          let env =
            match budget with Some _ -> materialize_env env | None -> env
          in
          (i, key, env))
        input
    in
    let by_key =
      sortfn (fun (_, ka, _) (_, kb, _) -> compare_keys_total ka kb) indexed
    in
    (* the clustered grouping step, on keys computed once above; each
       emitted group is tagged with its first member's input position *)
    let rec cluster pending seq () =
      match seq () with
      | Seq.Nil -> (
        match pending with
        | Some (i0, key, members) ->
          Seq.Cons
            ((i0, make_group_env aggs keys (key, List.rev members)), Seq.empty)
        | None -> Seq.Nil)
      | Seq.Cons ((i, key, env), rest) -> (
        match pending with
        | Some (i0, k0, members) when keys_equal key k0 ->
          cluster (Some (i0, k0, env :: members)) rest ()
        | Some (i0, k0, members) ->
          Seq.Cons
            ( (i0, make_group_env aggs keys (k0, List.rev members)),
              cluster (Some (i, key, [ env ])) rest )
        | None -> cluster (Some (i, key, [ env ])) rest ())
    in
    let by_appearance =
      sortfn (fun (a, _) (b, _) -> compare a b) (cluster None by_key)
    in
    Seq.map snd by_appearance

and make_group_env aggs keys (key, members) =
  let base = match members with env :: _ -> env | [] -> Env.empty in
  let env =
    List.fold_left2
      (fun acc (_, kvar) katoms ->
        bind acc kvar (List.map (fun a -> Item.Atom a) katoms))
      base keys key
  in
  List.fold_left
    (fun acc (v_in, v_out) ->
      let combined = List.concat_map (fun m -> lookup m v_in) members in
      bind acc v_out combined)
    env aggs

and exec_order fr counters input keys =
  let key_of env = List.map (fun (e, _) -> atomize (exec fr env e)) keys in
  let cmp (ka, _) (kb, _) =
    let rec go ka kb ks =
      match (ka, kb, ks) with
      | [], [], _ -> 0
      | a :: ka, b :: kb, (_, desc) :: ks -> (
        let c =
          match (a, b) with
          | [], [] -> 0
          | [], _ -> -1
          | _, [] -> 1
          | [ x ], [ y ] -> compare_atoms_total x y
          | xs, ys -> compare (List.length xs) (List.length ys)
        in
        let c = if desc then -c else c in
        match c with 0 -> go ka kb ks | c -> c)
      | _ -> 0
    in
    go ka kb keys
  in
  match fr.rt.sort_budget_rows with
  | None ->
    (* unbounded: the in-memory stable sort, exactly as before *)
    let keyed = List.map (fun env -> (key_of env, env)) (List.of_seq input) in
    List.to_seq (List.map snd (List.stable_sort cmp keyed))
  | Some budget ->
    (* bounded: runs of [budget] rows spill through Extsort and merge
       back as a stream; same comparator, same stability, so the output
       is byte-identical to the in-memory path *)
    let keyed =
      Seq.map (fun env -> (key_of env, materialize_env env)) input
    in
    Seq.map snd (spill_sort fr.rt counters ~budget ~cmp keyed)

(* --------------------------- joins -------------------------------- *)

and exec_residual fr env residual =
  List.for_all (fun cond -> ebv (exec fr env cond)) residual

and exec_join fr env0 left kind method_ right on_ equi export =
  match method_ with
  | C.Nested_loop -> nl_join fr left kind right on_ export
  | C.Index_nested_loop -> (
    match equi with
    | Some { eq_pairs; eq_residual } ->
      inl_join fr env0 left kind right eq_pairs eq_residual export
    | None -> nl_join fr left kind right on_ export)
  | C.Ppk { k; prefetch; inner } -> (
    match right with
    | { op_node = O_sql r; op_counters = sqlc; _ } :: rest_lets
      when List.for_all
             (fun o -> match o.op_node with O_let _ -> true | _ -> false)
             rest_lets ->
      ppk_join fr sqlc left kind r rest_lets ~k ~prefetch ~inner on_ export
    | _ -> nl_join fr left kind right on_ export)

and join_matches fr left_env right on_ =
  let right_stream = tuples fr left_env (List.to_seq [ left_env ]) right in
  Seq.filter (fun env -> ebv (exec fr env on_)) right_stream

and export_tuples fr left_env matches kind export =
  let ms = List.of_seq matches in
  match export with
  | PE_bindings -> (
    match (ms, kind) with
    | [], C.J_left_outer -> Seq.return left_env  (* right vars unbound -> empty *)
    | [], C.J_inner -> Seq.empty
    | ms, _ -> List.to_seq ms)
  | PE_grouped { gvar; gexpr } -> (
    match (ms, kind) with
    | [], C.J_inner -> Seq.empty
    | ms, _ ->
      let values = List.concat_map (fun menv -> exec fr menv gexpr) ms in
      Seq.return (bind left_env gvar values))

and nl_join fr left kind right on_ export =
  Seq.concat_map
    (fun left_env ->
      let matches = join_matches fr left_env right on_ in
      export_tuples fr left_env matches kind export)
    left

and inl_join fr env0 left kind right pairs residual export =
  (* build a hash of the right side once (the "index"), probe per left
     tuple *)
  let table = Hashtbl.create 64 in
  let right_stream = tuples fr env0 (List.to_seq [ env0 ]) right in
  Seq.iter
    (fun renv ->
      let key = List.map (fun (_, rk) -> atomize (exec fr renv rk)) pairs in
      let bucket = Hashtbl.find_opt table key |> Option.value ~default:[] in
      Hashtbl.replace table key (renv :: bucket))
    right_stream;
  Seq.concat_map
    (fun left_env ->
      let key = List.map (fun (lk, _) -> atomize (exec fr left_env lk)) pairs in
      let bucket = Hashtbl.find_opt table key |> Option.value ~default:[] in
      let matches =
        List.rev bucket
        |> List.filter_map (fun renv ->
               (* merge right bindings over the left env *)
               let merged = Env.union (fun _ _ r -> Some r) left_env renv in
               if exec_residual fr merged residual then Some merged else None)
      in
      export_tuples fr left_env (List.to_seq matches) kind export)
    left

and bind_sql_row binds col_index base_env row =
  List.fold_left
    (fun acc (b : C.sql_bind) ->
      let idx =
        match List.assoc_opt b.C.bcol col_index with
        | Some i -> i
        | None -> error "SQL result lacks column %s" b.C.bcol
      in
      let value =
        match V.to_atomic row.(idx) with
        | None -> []
        | Some atom -> (
          match Atomic.cast b.C.btype atom with
          | Ok v -> [ Item.Atom v ]
          | Error _ -> [ Item.Atom atom ])
      in
      bind acc b.C.bvar value)
    base_env binds

and rel_stream fr counters env (r : sql_region) : env Seq.t =
  let db =
    match Metadata.find_database fr.rt.registry r.sql_db with
    | Some db -> db
    | None -> error "unknown database %s" r.sql_db
  in
  let params =
    Array.of_list
      (List.map
         (fun p ->
           Adaptors.atomic_to_sql
             (singleton_atom "sql parameter" (exec fr env p)))
         r.sql_params)
  in
  let t0 = Unix.gettimeofday () in
  let result = Adaptors.relational_select_stream db r.sql_select ~params in
  counters.c_roundtrips <- counters.c_roundtrips + 1;
  counters.c_wall <- counters.c_wall +. (Unix.gettimeofday () -. t0);
  match result with
  | Error m -> error "%s" m
  | Ok (Sql_exec.Rows (result, plan_lines, shared)) ->
    (* served by another session's in-flight work: the shared result set
       is already materialized, ride it along whole *)
    if shared then begin
      counters.c_shared <- counters.c_shared + 1;
      Option.iter Observed.record_coalesced fr.rt.observed
    end;
    r.sql_backend <- plan_lines;
    let col_index =
      List.mapi (fun i c -> (c, i)) result.Sql_exec.columns
    in
    List.to_seq
      (List.map
         (fun row -> bind_sql_row r.sql_binds col_index env row)
         result.Sql_exec.rows)
  | Ok (Sql_exec.Cursor cur) ->
    let col_index =
      List.mapi (fun i c -> (c, i)) (Sql_exec.cursor_columns cur)
    in
    (* chunked fetch: downstream operators see rows as the backend engine
       produces them; the access-path plan is only complete once the
       cursor drains (projection-level subqueries decide lazily) *)
    let rec chunks () =
      match Sql_exec.fetch_chunk cur with
      | Error m -> error "%s" m
      | Ok [] ->
        r.sql_backend <- Sql_exec.cursor_plan cur;
        Seq.Nil
      | Ok rows ->
        Seq.append
          (List.to_seq
             (List.map
                (fun row -> bind_sql_row r.sql_binds col_index env row)
                rows))
          chunks ()
    in
    chunks

(* PP-k: fetch k left tuples, issue one disjunctive parameterized query for
   the block, middleware-join, repeat (§4.2). [rest_lets] are per-candidate
   clauses (row reconstruction) applied after binding a fetched row.

   With [prefetch] > 0 the block queries are pipelined: parameter
   evaluation and SQL generation happen on the consumer thread while
   forcing the block sequence, only the source roundtrip itself runs on
   the pool, and [Pool.pipeline] keeps up to [prefetch] + 1 roundtrips in
   flight while emitting blocks strictly in submission order — so the
   result is byte-identical at every depth. The backend's plan lines ride
   along with each block's result and are stored into the region on the
   consumer thread, in block order, keeping EXPLAIN capture race-free. *)
and ppk_join fr sqlc left kind (r : sql_region) rest_lets ~k ~prefetch ~inner
    on_ export =
  let db =
    match Metadata.find_database fr.rt.registry r.sql_db with
    | Some db -> db
    | None -> error "unknown database %s" r.sql_db
  in
  let n_params = List.length r.sql_params in
  let obs = fr.rt.observed in
  (* stage 1, consumer thread: the block query — WHERE (p_1..p_n) OR ...
     OR (p shifted (m-1)n) — and its middleware-computed parameters *)
  let prepare (block : env list) =
    let m = List.length block in
    let select = disjunctive_select r.sql_select n_params m in
    let params =
      Array.concat
        (List.map
           (fun env ->
             Array.of_list
               (List.map
                  (fun p ->
                    Adaptors.atomic_to_sql
                      (singleton_atom "sql parameter" (exec fr env p)))
                  r.sql_params))
           block)
    in
    (block, select, params)
  in
  (* stage 2, pool worker: the latency-bound statement open (roundtrip
     latency and any scheduled fault are paid here, on the worker, so
     prefetch still hides them behind the previous block's join) *)
  let roundtrip (block, select, params) =
    let t0 = Unix.gettimeofday () in
    let result = Adaptors.relational_select_stream db select ~params in
    let wall = Unix.gettimeofday () -. t0 in
    Option.iter (fun o -> Observed.record_roundtrip o ~wall) obs;
    sqlc.c_roundtrips <- sqlc.c_roundtrips + 1;
    sqlc.c_wall <- sqlc.c_wall +. wall;
    (block, result, wall)
  in
  (* stage 3, consumer thread: middleware join of the block, chunk by
     chunk — candidate binding, row reconstruction and the join predicate
     run while the backend cursor is still producing, and only the
     matches are retained (never the raw block result set). Matches
     accumulate per left tuple so the output stays in left-block order,
     byte-identical to the all-at-once join. *)
  let middleware_join (block, result, _wall) =
    match result with
    | Error msg -> error "%s" msg
    | Ok streamed ->
      let columns, chunks =
        match streamed with
        | Sql_exec.Rows (result, plan_lines, shared) ->
          if shared then begin
            sqlc.c_shared <- sqlc.c_shared + 1;
            Option.iter Observed.record_coalesced obs
          end;
          r.sql_backend <- plan_lines;
          (result.Sql_exec.columns, Seq.return result.Sql_exec.rows)
        | Sql_exec.Cursor cur ->
          let rec fetch () =
            match Sql_exec.fetch_chunk cur with
            | Error msg -> error "%s" msg
            | Ok [] ->
              (* consumer thread, blocks drain in submission order, so
                 EXPLAIN capture stays race-free and deterministic *)
              r.sql_backend <- Sql_exec.cursor_plan cur;
              Seq.Nil
            | Ok rows -> Seq.Cons (rows, fetch)
          in
          (Sql_exec.cursor_columns cur, fetch)
      in
      let col_index = List.mapi (fun i c -> (c, i)) columns in
      ignore inner;
      let block_arr = Array.of_list block in
      let acc = Array.make (Array.length block_arr) [] in
      Seq.iter
        (fun rows ->
          sqlc.c_rows <- sqlc.c_rows + List.length rows;
          Array.iteri
            (fun i left_env ->
              let candidates =
                List.map
                  (fun row -> bind_sql_row r.sql_binds col_index left_env row)
                  rows
              in
              let candidates =
                List.concat_map
                  (fun env ->
                    List.of_seq (tuples fr env (Seq.return env) rest_lets))
                  candidates
              in
              let matches =
                List.filter (fun env -> ebv (exec fr env on_)) candidates
              in
              acc.(i) <- List.rev_append matches acc.(i))
            block_arr)
        chunks;
      Seq.concat_map
        (fun (left_env, matches) ->
          export_tuples fr left_env
            (List.to_seq (List.rev matches))
            kind export)
        (Seq.zip (Array.to_seq block_arr) (Array.to_seq acc))
  in
  let prepared = Seq.map prepare (batch_seq k left) in
  let completed =
    Pool.pipeline fr.rt.pool ~depth:(max 0 prefetch) roundtrip prepared
  in
  (* overlap accounting: each pull blocks only for the part of the
     roundtrip not already hidden behind the previous block's join *)
  let with_overlap seq =
    match obs with
    | None -> seq
    | Some o ->
      let rec timed seq () =
        let t0 = Unix.gettimeofday () in
        match seq () with
        | Seq.Nil -> Seq.Nil
        | Seq.Cons (((_, _, wall) as x), rest) ->
          let blocked = Unix.gettimeofday () -. t0 in
          Observed.record_overlap o (wall -. blocked);
          Seq.Cons (x, timed rest)
      in
      timed seq
  in
  Seq.concat_map middleware_join (with_overlap completed)

(* Build the m-way disjunctive version of a 1-tuple parameterized select:
   the WHERE clause is OR-ed m times with parameter indices shifted. *)
and disjunctive_select (select : Sql.select) n_params m =
  match select.Sql.where with
  | None -> select
  | Some where ->
    let rec shift delta (e : Sql.expr) : Sql.expr =
      match e with
      | Sql.Param i -> Sql.Param (i + delta)
      | Sql.Col _ | Sql.Lit _ | Sql.Count_star -> e
      | Sql.Binop (op, a, b) -> Sql.Binop (op, shift delta a, shift delta b)
      | Sql.Not e -> Sql.Not (shift delta e)
      | Sql.Is_null e -> Sql.Is_null (shift delta e)
      | Sql.Is_not_null e -> Sql.Is_not_null (shift delta e)
      | Sql.In_list (e, es) ->
        Sql.In_list (shift delta e, List.map (shift delta) es)
      | Sql.Func (f, args) -> Sql.Func (f, List.map (shift delta) args)
      | Sql.Case (branches, default) ->
        Sql.Case
          ( List.map (fun (c, v) -> (shift delta c, shift delta v)) branches,
            Option.map (shift delta) default )
      | Sql.Agg (kind, q, e) -> Sql.Agg (kind, q, shift delta e)
      | Sql.In_select _ | Sql.Exists _ | Sql.Not_exists _ | Sql.Scalar_select _
        ->
        e
    in
    let disjuncts =
      List.init m (fun j -> shift (j * n_params) where)
    in
    let where' =
      match disjuncts with
      | [] -> where
      | first :: rest ->
        List.fold_left (fun acc d -> Sql.Binop (Sql.Or, acc, d)) first rest
    in
    { select with Sql.where = Some where' }

(* ----------------------- streamed execution ----------------------- *)

(* The streaming face of [exec]: items are produced on demand instead of
   materialized, so a consumer (the serving layer's delivery queue, a file
   sink) sees the first item while upstream operators — including backend
   cursors — are still producing. Where a node has no incremental
   structure it falls back to [exec]; the output is byte-identical to the
   materialized path in every case. *)
and stream_plan fr env (p : Plan_ir.t) : Item.t Seq.t =
  match p.node with
  | P_pipeline { ops; return_ } ->
    p.counters.c_starts <- p.counters.c_starts + 1;
    let t0 = Unix.gettimeofday () in
    let stream = tuples fr env (List.to_seq [ env ]) ops in
    count_rows ~t0 p.counters
      (Seq.concat_map (fun env' -> List.to_seq (exec fr env' return_)) stream)
  | P_seq es ->
    (* async children are submitted before anything is pulled, exactly as
       in the materialized path; the others stream lazily in order *)
    let started =
      List.map
        (fun (e : Plan_ir.t) ->
          match e.node with
          | P_async _ ->
            let fut = Pool.submit fr.rt.pool (fun () -> exec fr env e) in
            fun () -> List.to_seq (Pool.await fr.rt.pool fut)
          | _ -> fun () -> stream_plan fr env e)
        es
    in
    Seq.concat_map (fun produce -> produce ()) (List.to_seq started)
  | P_call { fn; args; _ } -> stream_call fr env p fn args
  | _ -> List.to_seq (exec fr env p)

(* The streamed call boundary: a non-cacheable user-function body streams
   through [stream_wrapper] (security filtering happens item by item);
   [Seq.memoize] is the materialize-on-first-reuse escape hatch — a
   wrapper or consumer that pulls twice replays buffered items instead of
   re-running the body. Cacheable call sites fall back to the materialized
   path because the function cache stores whole values. *)
and stream_call fr env (p : Plan_ir.t) fn args =
  Cancel.check_current ();
  let arity = List.length args in
  match Metadata.resolve_call fr.rt.registry fn arity with
  | Some
      ({ Metadata.fd_impl = Metadata.Body body; fd_cacheable = false; _ } as
       fd)
    when fr.depth < fr.rt.max_depth ->
    p.counters.c_starts <- p.counters.c_starts + 1;
    let values = List.map (exec fr env) args in
    let fn_env =
      List.fold_left2
        (fun acc (param, _) value -> bind acc param value)
        Env.empty fd.Metadata.fd_params values
    in
    let plan = body_plan fr.rt fd body in
    let produce () = stream_plan { fr with depth = fr.depth + 1 } fn_env plan in
    count_rows p.counters
      (Seq.memoize (fr.rt.stream_wrapper fd values produce))
  | _ -> List.to_seq (exec_call fr env p fn args)

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)

let execute_exn rt ?(bindings = []) plan =
  let env =
    List.fold_left (fun acc (v, seq) -> bind acc v seq) Env.empty bindings
  in
  let t0 = Unix.gettimeofday () in
  let v = exec { rt; depth = 0 } env plan in
  (* materialized delivery: the first item reaches the caller only when
     the whole result does, and the root's time-to-first-row says so *)
  if v <> [] && plan.counters.c_first_row_ns = 0. then
    plan.counters.c_first_row_ns <- (Unix.gettimeofday () -. t0) *. 1e9;
  v

let execute_stream rt ?(bindings = []) plan =
  let env =
    List.fold_left (fun acc (v, seq) -> bind acc v seq) Env.empty bindings
  in
  let t0 = Unix.gettimeofday () in
  let items = stream_plan { rt; depth = 0 } env plan in
  Seq.map
    (fun item ->
      if plan.counters.c_first_row_ns = 0. then
        plan.counters.c_first_row_ns <- (Unix.gettimeofday () -. t0) *. 1e9;
      item)
    items

(* A deadline abort surfaces like any other evaluation error at the API
   boundary: callers see [Error] with the cause, never the exception.
   [Server.submit] distinguishes aborts by consulting the session's
   token. *)
let execute rt ?bindings plan =
  match execute_exn rt ?bindings plan with
  | v -> Ok v
  | exception Eval_error m -> Error m
  | exception Cancel.Cancelled m -> Error m

let eval_exn rt ?bindings e =
  execute_exn rt ?bindings (Plan_ir.compile rt.registry e)

let eval rt ?bindings e =
  match eval_exn rt ?bindings e with
  | v -> Ok v
  | exception Eval_error m -> Error m
  | exception Cancel.Cancelled m -> Error m

let call_function rt fn args =
  match Metadata.find_function rt.registry fn (List.length args) with
  | None ->
    Error
      (Printf.sprintf "no function %s/%d" (Qname.to_string fn)
         (List.length args))
  | Some fd -> (
    match apply_plan_function { rt; depth = 0 } None fd args with
    | v -> Ok v
    | exception Eval_error m -> Error m
    | exception Cancel.Cancelled m -> Error m)
