type level = Off | Summary | Detailed

type event = {
  category : string;
  summary : string;
  detail : string option;
}

(* events arrive from worker-pool threads too; the cons onto [log] is a
   read-modify-write that needs the lock *)
type t = { mutable lvl : level; mutable log : event list; lock : Mutex.t }

let create ?(level = Off) () = { lvl = level; log = []; lock = Mutex.create () }
let set_level t lvl = t.lvl <- lvl
let level t = t.lvl

let locked t f =
  Mutex.lock t.lock;
  let r = f () in
  Mutex.unlock t.lock;
  r

let record t ~category ?detail summary =
  match t.lvl with
  | Off -> ()
  | Summary ->
    locked t (fun () -> t.log <- { category; summary; detail = None } :: t.log)
  | Detailed ->
    locked t (fun () -> t.log <- { category; summary; detail } :: t.log)

let events t = List.rev (locked t (fun () -> t.log))
let clear t = locked t (fun () -> t.log <- [])
