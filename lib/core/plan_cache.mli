(** The query plan cache (§2.2).

    "ALDSP maintains a query plan cache in order to avoid repeatedly
    compiling popular queries from the same or different users." An LRU
    map from compilation key to compiled plan; compiled plans are reusable
    because parameters are bound at execution time and security filtering
    happens post-evaluation (§7).

    A plan is only as good as what it was compiled from, so the key is not
    the query text alone: it also carries a fingerprint of the optimizer
    options in force (two servers over one registry may compile the same
    text differently) and the registry's {!Metadata.generation} (a plan
    compiled before a function was redefined or a source registered must
    not be served afterwards). {!purge_stale} sweeps entries left behind
    by older generations. *)

type key = {
  k_query : string;  (** The query text. *)
  k_options : string;  (** {!Optimizer.options_fingerprint} in force. *)
  k_generation : int;  (** {!Metadata.generation} at compile time. *)
  k_stats : int;
      (** {!Metadata.stats_generation} at compile time: cost-based join
          methods and PP-k depths are functions of table statistics, so a
          plan costed against since-mutated data must be recompiled. *)
}

type 'plan t

val create : capacity:int -> 'plan t

val find : 'plan t -> key -> 'plan option
(** Refreshes the entry's recency on hit. *)

val add : 'plan t -> key -> 'plan -> unit
(** Inserts, evicting the least recently used entry at capacity. *)

val purge_stale : 'plan t -> generation:int -> stats:int -> unit
(** Drops every entry compiled under a different metadata generation or
    statistics generation (the invalidation sweep run after registry or
    data mutations). Does not touch hit / miss statistics. *)

val clear : 'plan t -> unit
val size : 'plan t -> int
val hits : 'plan t -> int
val misses : 'plan t -> int

val evictions : 'plan t -> int
(** Capacity evictions performed by {!add} (stale purges and {!clear} are
    not evictions). Bookkeeping invariant, asserted by the tests: with no
    purges, [distinct keys added - evictions = size]. *)
