open Aldsp_xml

type compiled = {
  source : string;
  plan : Cexpr.t;
  ir : Plan_ir.t;
  static_type : Stype.t;
  diagnostics : Diag.t list;
  sql : (string * string) list;
}

type t = {
  registry : Metadata.t;
  optimizer : Optimizer.t;
  plan_cache : compiled Plan_cache.t;
  function_cache : Function_cache.t option;
  security : Security.t;
  audit : Audit.t;
  observed : Observed.t option;
  pool : Pool.t;
  runtime : Eval.rt;
  streamed_tokens : int ref;
  worst_misestimate : float ref;
      (* worst est-vs-actual cardinality ratio seen across executions *)
}

type stats = {
  st_plan_cache_hits : int;
  st_plan_cache_misses : int;
  st_function_cache_hits : int;
  st_function_cache_misses : int;
  st_pool : Pool.stats;
  st_roundtrips : int;  (** Middleware-issued source roundtrips (PP-k). *)
  st_overlap_saved : float;  (** Seconds of source latency hidden. *)
  st_source_wall : float;  (** Total wall time inside sources. *)
  st_tokens_streamed : int;  (** Tokens pulled through {!run_stream}. *)
  st_backend : Aldsp_relational.Database.stats;
      (** Operator counters (scans, index probes, join algorithms) summed
          over every registered database. *)
  st_max_misestimate : float;
      (** Worst per-operator est-vs-actual cardinality ratio across every
          execution so far; 1.0 when estimates held (or none applied). *)
}

let create ?optimizer_options ?(plan_cache_capacity = 128) ?function_cache
    ?security ?audit ?observed ?pool ?concurrent_lets registry =
  let audit = match audit with Some a -> a | None -> Audit.create () in
  let security =
    match security with Some s -> s | None -> Security.create ~audit ()
  in
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let call_wrapper fd args compute =
    Audit.record audit ~category:"service-call"
      (Printf.sprintf "call %s/%d"
         (Qname.to_string fd.Metadata.fd_name)
         (List.length args));
    let compute =
      match observed with
      | Some obs -> fun () -> Observed.wrapper obs fd args compute
      | None -> compute
    in
    match function_cache with
    | Some cache -> Function_cache.wrapper cache fd args compute
    | None -> compute ()
  in
  { registry;
    optimizer = Optimizer.create ?options:optimizer_options registry;
    plan_cache = Plan_cache.create ~capacity:plan_cache_capacity;
    function_cache;
    security;
    audit;
    observed;
    pool;
    runtime = Eval.runtime ~call_wrapper ~pool ?observed ?concurrent_lets registry;
    streamed_tokens = ref 0;
    worst_misestimate = ref 1. }

(* The differential-testing oracle (see lib/check): every cost-only
   compilation and execution choice disabled — no pushdown, a single
   worker, no prefetch, sequential lets — so results depend only on query
   semantics. *)
let reference ?plan_cache_capacity ?function_cache ?security ?audit registry =
  create ~optimizer_options:Optimizer.reference_options
    ~pool:(Pool.create ~workers:1 ()) ~concurrent_lets:false
    ?plan_cache_capacity ?function_cache ?security ?audit registry

let registry t = t.registry
let optimizer t = t.optimizer
let security t = t.security
let function_cache t = t.function_cache
let pool t = t.pool

let stats t =
  let backend = Aldsp_relational.Database.zero_stats () in
  List.iter
    (fun db -> Aldsp_relational.Database.add_stats backend db.Aldsp_relational.Database.stats)
    (Metadata.databases t.registry);
  { st_plan_cache_hits = Plan_cache.hits t.plan_cache;
    st_plan_cache_misses = Plan_cache.misses t.plan_cache;
    st_function_cache_hits =
      (match t.function_cache with Some c -> Function_cache.hits c | None -> 0);
    st_function_cache_misses =
      (match t.function_cache with
      | Some c -> Function_cache.misses c
      | None -> 0);
    st_pool = Pool.stats t.pool;
    st_roundtrips =
      (match t.observed with Some o -> Observed.roundtrips o | None -> 0);
    st_overlap_saved =
      (match t.observed with Some o -> Observed.overlap_saved o | None -> 0.);
    st_source_wall =
      (match t.observed with Some o -> Observed.source_wall o | None -> 0.);
    st_tokens_streamed = !(t.streamed_tokens);
    st_backend = backend;
    st_max_misestimate = !(t.worst_misestimate) }

(* ------------------------------------------------------------------ *)
(* Data service registration                                           *)

let truthy = function "true" | "yes" | "1" -> true | _ -> false

let pragma_attrs (decl : Xq_ast.function_decl) =
  List.concat_map
    (fun p ->
      if p.Xq_ast.pragma_name = "function" || p.Xq_ast.pragma_name = "" then
        p.Xq_ast.pragma_attrs
      else [])
    decl.Xq_ast.fn_pragmas

let kind_of_pragmas attrs =
  match List.assoc_opt "kind" attrs with
  | Some "navigate" -> Metadata.Navigate
  | Some "read" -> Metadata.Read
  | Some "library" | None | Some _ -> Metadata.Library

(* Prolog variables ([declare variable $v := expr]) become let-bindings
   prepended to every expression that can see them; earlier declarations
   are visible to later ones. Returns the surface->unique mapping and the
   let clauses. *)
let prolog_variable_bindings ctx (prolog : Xq_ast.prolog) =
  List.fold_left
    (fun (scope, lets) (name, _ty, expr) ->
      let uv = Normalize.fresh_var ctx name in
      let value = Normalize.expr ~params:scope ctx expr in
      ((name, uv) :: scope, lets @ [ Cexpr.Let { var = uv; value } ]))
    ([], []) prolog.Xq_ast.variables

let wrap_lets lets body =
  if lets = [] then body
  else Cexpr.Flwor { clauses = lets; return_ = body }

let register_functions t ~diag (prolog : Xq_ast.prolog) =
  let ctx =
    Normalize.of_prolog ~schema_lookup:(Metadata.find_schema t.registry) diag
      prolog
  in
  let var_scope, var_lets = prolog_variable_bindings ctx prolog in
  (* two passes: signatures first so bodies may reference one another *)
  let sigs =
    List.map
      (fun decl ->
        let name, params, return_type = Normalize.function_signature ctx decl in
        (decl, name, params, return_type))
      prolog.Xq_ast.functions
  in
  List.iter
    (fun (decl, name, params, return_type) ->
      let attrs = pragma_attrs decl in
      Metadata.add_function t.registry
        { Metadata.fd_name = name;
          fd_params = List.map (fun (_, uv, ty) -> (uv, ty)) params;
          fd_return = return_type;
          fd_impl = Metadata.Body (Cexpr.Error_expr "body pending");
          fd_kind = kind_of_pragmas attrs;
          fd_cacheable =
            (match List.assoc_opt "cacheable" attrs with
            | Some v -> truthy v
            | None -> false);
          fd_pragmas = attrs })
    sigs;
  List.iter
    (fun (decl, name, params, return_type) ->
      match decl.Xq_ast.fn_body with
      | None ->
        Diag.error diag ~phase:"register"
          "function %s is declared external but has no source binding"
          (Qname.to_string name)
      | Some body_ast ->
        let surface_params =
          List.map (fun (s, uv, _) -> (s, uv)) params @ var_scope
        in
        let body = Normalize.expr ~params:surface_params ctx body_ast in
        let body = wrap_lets var_lets body in
        let tenv =
          Typecheck.env
            ~vars:(List.map (fun (_, uv, ty) -> (uv, ty)) params)
            t.registry diag
        in
        let _, body =
          Typecheck.check_function_body tenv ~declared:return_type body
        in
        (match Metadata.find_function t.registry name (List.length params) with
        | Some fd ->
          Metadata.add_function t.registry
            { fd with Metadata.fd_impl = Metadata.Body body }
        | None -> ()))
    sigs;
  sigs

let register_data_service t ~name source =
  let diag = Diag.collector Diag.Fail_fast in
  match Xq_parser.parse_query source with
  | Error msg ->
    Error [ { Diag.severity = Diag.Error; phase = "parse"; message = msg } ]
  | Ok query -> (
    match register_functions t ~diag query.Xq_ast.prolog with
    | sigs ->
      let fn_names = List.map (fun (_, n, _, _) -> n) sigs in
      let reads =
        List.filter_map
          (fun (decl, n, _, _) ->
            if kind_of_pragmas (pragma_attrs decl) = Metadata.Read then Some n
            else None)
          sigs
      in
      let lineage =
        match List.assoc_opt "lineageProvider"
                (List.concat_map (fun (d, _, _, _) -> pragma_attrs d) sigs)
        with
        | Some fname -> Some (Qname.of_string fname)
        | None -> ( match reads with n :: _ -> Some n | [] -> None)
      in
      Metadata.add_data_service t.registry
        { Metadata.ds_name = name;
          ds_shape = None;
          ds_functions = fn_names;
          ds_lineage_provider = lineage };
      Ok ()
    | exception Diag.Compile_error d -> Error [ d ])

let design_time_check t source =
  let query, parse_errors = Xq_parser.parse_query_recovering source in
  let diag = Diag.collector Diag.Recover in
  (* analyze against a copy of the registry so the live one never sees the
     file's declarations *)
  let shadow =
    { t with
      registry = Metadata.copy t.registry;
      plan_cache = Plan_cache.create ~capacity:1 }
  in
  (try ignore (register_functions shadow ~diag query.Xq_ast.prolog)
   with Diag.Compile_error d ->
     Diag.error diag ~phase:d.Diag.phase "%s" d.Diag.message);
  List.map
    (fun msg -> { Diag.severity = Diag.Error; phase = "parse"; message = msg })
    parse_errors
  @ Diag.diagnostics diag

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)

(* Declarative hints (§9): (::pragma hint k="v" ... ::) ahead of the
   query body tunes this compilation. Supported hints:
     ppk-k="N"              PP-k block size
     ppk-prefetch="N"       PP-k pipeline depth (0 = sequential)
     inline-views="bool"    view unfolding on/off
     inverse-functions="bool"
     join-introduction="bool" *)
let apply_hints base_options (query : Xq_ast.query) =
  let hint_attrs =
    List.concat_map
      (fun p ->
        if p.Xq_ast.pragma_name = "hint" then p.Xq_ast.pragma_attrs else [])
      query.Xq_ast.query_pragmas
  in
  if hint_attrs = [] then None
  else
    let bool_hint key default =
      match List.assoc_opt key hint_attrs with
      | Some v -> truthy v
      | None -> default
    in
    let open Optimizer in
    (* an explicit PP-k hint is a user override: cost-based selection
       would re-derive k/prefetch and ignore it, so it yields *)
    let explicit_ppk =
      List.mem_assoc "ppk-k" hint_attrs
      || List.mem_assoc "ppk-prefetch" hint_attrs
    in
    Some
      { base_options with
        cost_based = (base_options.cost_based && not explicit_ppk);
        ppk_k =
          (match List.assoc_opt "ppk-k" hint_attrs with
          | Some v -> ( match int_of_string_opt v with Some k when k > 0 -> k | _ -> base_options.ppk_k)
          | None -> base_options.ppk_k);
        ppk_prefetch =
          (match List.assoc_opt "ppk-prefetch" hint_attrs with
          | Some v -> (
            match int_of_string_opt v with
            | Some d when d >= 0 -> d
            | _ -> base_options.ppk_prefetch)
          | None -> base_options.ppk_prefetch);
        inline_views = bool_hint "inline-views" base_options.inline_views;
        use_inverse_functions =
          bool_hint "inverse-functions" base_options.use_inverse_functions;
        introduce_joins =
          bool_hint "join-introduction" base_options.introduce_joins }

let compile_no_cache t source =
  let diag = Diag.collector Diag.Fail_fast in
  match Xq_parser.parse_query source with
  | Error msg ->
    Error [ { Diag.severity = Diag.Error; phase = "parse"; message = msg } ]
  | Ok query -> (
    match query.Xq_ast.body with
    | None ->
      Error
        [ { Diag.severity = Diag.Error;
            phase = "parse";
            message = "query has no body expression" } ]
    | Some body_ast -> (
      try
        let optimizer =
          match apply_hints (Optimizer.options t.optimizer) query with
          | Some hinted -> Optimizer.create ~options:hinted t.registry
          | None -> t.optimizer
        in
        (* inline prolog function declarations are registered transiently *)
        ignore (register_functions t ~diag query.Xq_ast.prolog);
        let ctx =
          Normalize.of_prolog
            ~schema_lookup:(Metadata.find_schema t.registry)
            diag query.Xq_ast.prolog
        in
        let var_scope, var_lets = prolog_variable_bindings ctx query.Xq_ast.prolog in
        let core =
          wrap_lets var_lets (Normalize.expr ~params:var_scope ctx body_ast)
        in
        let tenv = Typecheck.env t.registry diag in
        let static_type, typed = Typecheck.check tenv core in
        let opts = Optimizer.options optimizer in
        let typed =
          (* source reordering must see the raw for-clauses, before join
             introduction (§9): statically costed when the cost model is
             on (observed samples as fallback), observed-only otherwise *)
          if opts.Optimizer.cost_based then
            Optimizer.reorder_sources optimizer ?observed:t.observed typed
          else
            match t.observed with
            | Some obs -> Optimizer.reorder_by_observed_cost optimizer obs typed
            | None -> typed
        in
        let optimized, _stats = Optimizer.optimize optimizer typed in
        let do_push = opts.Optimizer.pushdown in
        (* the transfer-volume gate: skip PP-k parameterization of a join's
           right side when probing is estimated to cost more than shipping
           the region whole *)
        let gate ~outer r =
          (not opts.Optimizer.cost_based)
          ||
          let latency =
            match Metadata.find_database t.registry r.Cexpr.db with
            | Some db -> (Cost_model.db_profile db).Cost_model.p_latency
            | None -> 0.
          in
          Cost_model.parameterize_beneficial
            ~outer:(Cost_model.clauses_cardinality t.registry outer)
            ~inner_rows:(Cost_model.rel_cardinality t.registry r)
            ~latency
        in
        let push e = if do_push then Pushdown.push ~gate t.registry e else e in
        let pushed = push optimized in
        let cleaned = Optimizer.cleanup optimizer pushed in
        (* a second pass prunes columns whose only consumer the cleanup
           removed (source-access elimination, §4.2) *)
        let pushed = push cleaned in
        let plan = Optimizer.select_methods optimizer pushed in
        Ok
          { source;
            plan;
            ir = Plan_ir.compile t.registry plan;
            static_type;
            diagnostics = Diag.diagnostics diag;
            sql = Pushdown.pushed_sql t.registry plan }
      with Diag.Compile_error d -> Error [ d ]))

let cache_key t ~generation ~stats source =
  { Plan_cache.k_query = source;
    k_options =
      Optimizer.options_fingerprint (Optimizer.options t.optimizer);
    k_generation = generation;
    k_stats = stats }

let compile t source =
  (* drop plans compiled against an older registry — or, since cost-based
     choices are functions of table statistics, since-mutated data —
     before looking up *)
  let generation = Metadata.generation t.registry in
  let stats = Metadata.stats_generation t.registry in
  Plan_cache.purge_stale t.plan_cache ~generation ~stats;
  match Plan_cache.find t.plan_cache (cache_key t ~generation ~stats source) with
  | Some compiled -> Ok compiled
  | None -> (
    match compile_no_cache t source with
    | Ok compiled ->
      (* compilation itself may move the generation (transient prolog
         function registration); key under the post-compile generation so
         an identical recompile — which would re-register the same
         definitions — can hit *)
      Plan_cache.add t.plan_cache
        (cache_key t
           ~generation:(Metadata.generation t.registry)
           ~stats:(Metadata.stats_generation t.registry)
           source)
        compiled;
      Ok compiled
    | Error _ as e -> e)

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)

let diags_to_string ds = String.concat "; " (List.map Diag.to_string ds)

(* Per-run est-vs-actual rollup. Operator counters accumulate across runs
   (by design — see Plan_ir.counters), so actual rows for THIS run are the
   deltas against a snapshot taken before execution. *)
let snapshot_rows ir = List.map (fun (_, c) -> c.Plan_ir.c_rows) (Plan_ir.operators ir)

let note_misestimate t ir before =
  let worst =
    List.fold_left2
      (fun acc (_, c) prior ->
        let actual = c.Plan_ir.c_rows - prior in
        if c.Plan_ir.c_est > 0 && actual > 0 then
          Float.max acc
            (Cost_model.misestimate ~est:c.Plan_ir.c_est ~actual)
        else acc)
      1. (Plan_ir.operators ir) before
  in
  if worst > !(t.worst_misestimate) then t.worst_misestimate := worst

let run t ?(user = Security.admin) source =
  match compile t source with
  | Error ds -> Error (diags_to_string ds)
  | Ok compiled -> (
    let before = snapshot_rows compiled.ir in
    match Eval.execute t.runtime compiled.ir with
    | Ok items ->
      note_misestimate t compiled.ir before;
      Ok (Security.filter_result t.security user items)
    | Error _ as e -> e)

let run_stream t ?(user = Security.admin) source =
  match run t ~user source with
  | Ok items ->
    Ok
      (Aldsp_tokens.Token_stream.counted
         (fun _ -> incr t.streamed_tokens)
         (Aldsp_tokens.Token_stream.of_sequence items))
  | Error _ as e -> e

let call t ?(user = Security.admin) fn args =
  match Security.check_call t.security user fn with
  | Error _ as e -> e
  | Ok () -> (
    match Eval.call_function t.runtime fn args with
    | Ok items -> Ok (Security.filter_result t.security user items)
    | Error _ as e -> e)

let explain t ?(analyze = true) ?(timings = false) source =
  match compile t source with
  | Error ds -> Error (diags_to_string ds)
  | Ok compiled ->
    let buf = Buffer.create 512 in
    Buffer.add_string buf
      (Printf.sprintf "static type: %s\n"
         (Stype.to_string compiled.static_type));
    if analyze then begin
      Plan_ir.reset_counters compiled.ir;
      match Eval.execute t.runtime compiled.ir with
      | Ok _ ->
        let worst = Plan_ir.max_misestimate compiled.ir in
        if worst > !(t.worst_misestimate) then t.worst_misestimate := worst
      | Error m -> Buffer.add_string buf (Printf.sprintf "error: %s\n" m)
    end;
    Buffer.add_string buf "plan:\n";
    Buffer.add_string buf (Plan_ir.render ~timings compiled.ir);
    Ok (Buffer.contents buf)

let plan_cache_hits t = Plan_cache.hits t.plan_cache
let plan_cache_misses t = Plan_cache.misses t.plan_cache
