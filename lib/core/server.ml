open Aldsp_xml
module Spsc = Aldsp_concurrency.Spsc

type compiled = {
  source : string;
  plan : Cexpr.t;
  ir : Plan_ir.t;
  static_type : Stype.t;
  diagnostics : Diag.t list;
  sql : (string * string) list;
}

(* ------------------------------------------------------------------ *)
(* Admission control: a fixed number of executing slots plus a bounded
   wait queue. Queries execute on the submitting thread once admitted;
   beyond [max_queue] waiting submitters, new arrivals are rejected
   immediately ([Overloaded]) so an overloaded server sheds load instead
   of building an unbounded backlog (§5.4's "millions of users" posture:
   backpressure at the front door). *)

type admission = {
  adm_max_active : int;
  adm_max_queue : int;
  adm_mutex : Mutex.t;
  adm_slot_free : Condition.t;  (* a slot was released *)
  adm_idle : Condition.t;  (* active and waiting both reached zero *)
  mutable adm_active : int;
  mutable adm_waiting : int;
  mutable adm_draining : bool;
  (* counters *)
  mutable adm_submitted : int;
  mutable adm_admitted : int;
  mutable adm_rejected : int;
  mutable adm_completed : int;
  mutable adm_deadline_aborts : int;
  mutable adm_peak_active : int;
  mutable adm_peak_waiting : int;
}

type admission_stats = {
  ad_submitted : int;
  ad_admitted : int;
  ad_rejected : int;
  ad_completed : int;
  ad_deadline_aborts : int;
  ad_active : int;
  ad_queued : int;
  ad_peak_active : int;
  ad_peak_queued : int;
}

type submit_error =
  | Overloaded
  | Cancelled of string
  | Failed of string

let submit_error_to_string = function
  | Overloaded -> "overloaded: admission queue full"
  | Cancelled m -> m
  | Failed m -> m

type t = {
  registry : Metadata.t;
  optimizer : Optimizer.t;
  plan_cache : compiled Plan_cache.t;
  function_cache : Function_cache.t option;
  security : Security.t;
  audit : Audit.t;
  observed : Observed.t option;
  pool : Pool.t;
  runtime : Eval.rt;
  admission : admission;
  explain_lock : Mutex.t;
      (* EXPLAIN --analyze resets plan counters, executes, then renders:
         three steps that must not interleave with another session's
         analyze on the same (cached, shared) plan *)
  counter_lock : Mutex.t;
      (* guards the read-modify-write rollups below *)
  streamed_tokens : int ref;
  worst_misestimate : float ref;
      (* worst est-vs-actual cardinality ratio seen across executions *)
  spill_runs : int ref;
  spill_rows : int ref;
  spill_bytes : int ref;
  spill_peak_resident : int ref;
      (* external-sort rollup: totals (and peak resident rows) across
         every sort that spilled on this server *)
}

type stats = {
  st_plan_cache_hits : int;
  st_plan_cache_misses : int;
  st_function_cache_hits : int;
  st_function_cache_misses : int;
  st_pool : Pool.stats;
  st_roundtrips : int;  (** Middleware-issued source roundtrips (PP-k). *)
  st_overlap_saved : float;  (** Seconds of source latency hidden. *)
  st_source_wall : float;  (** Total wall time inside sources. *)
  st_tokens_streamed : int;  (** Tokens pulled through {!run_stream}. *)
  st_backend : Aldsp_relational.Database.stats;
      (** Operator counters (scans, index probes, join algorithms) summed
          over every registered database. *)
  st_max_misestimate : float;
      (** Worst per-operator est-vs-actual cardinality ratio across every
          execution so far; 1.0 when estimates held (or none applied). *)
  st_admission : admission_stats;
      (** Serving-layer counters: submissions, rejections, deadline
          aborts, live/peak concurrency and queue depth. *)
  st_coalesced_hits : int;
      (** Work served from another session's in-flight computation:
          backend statement coalescing plus function-cache miss
          coalescing. *)
  st_batch_merges : int;
      (** Single-key backend probes merged into another session's
          accumulated IN-list roundtrip. *)
  st_dedup_roundtrips_saved : int;
      (** Backend roundtrips avoided by cross-session work sharing. *)
  st_spill_runs : int;
      (** Sorted runs spilled to disk by the external sort
          ({!Optimizer.options}' [sort_budget_rows]), all queries. *)
  st_spill_rows : int;  (** Rows written to spill files. *)
  st_spill_bytes : int;  (** Marshal frame bytes spilled. *)
  st_spill_peak_resident : int;
      (** Peak rows any single spilling sort held resident — bounded by
          the sort budget. 0 when nothing spilled. *)
}

let create ?optimizer_options ?(plan_cache_capacity = 128) ?function_cache
    ?security ?audit ?observed ?pool ?concurrent_lets
    ?(max_concurrent = 16) ?(admission_queue = 64) registry =
  let audit = match audit with Some a -> a | None -> Audit.create () in
  let security =
    match security with Some s -> s | None -> Security.create ~audit ()
  in
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let opts =
    match optimizer_options with
    | Some o -> o
    | None -> Optimizer.default_options
  in
  let counter_lock = Mutex.create () in
  let spill_runs = ref 0 in
  let spill_rows = ref 0 in
  let spill_bytes = ref 0 in
  let spill_peak_resident = ref 0 in
  let on_spill ~runs ~rows ~bytes ~peak =
    Mutex.lock counter_lock;
    spill_runs := !spill_runs + runs;
    spill_rows := !spill_rows + rows;
    spill_bytes := !spill_bytes + bytes;
    if peak > !spill_peak_resident then spill_peak_resident := peak;
    Mutex.unlock counter_lock
  in
  let call_wrapper fd args compute =
    Audit.record audit ~category:"service-call"
      (Printf.sprintf "call %s/%d"
         (Qname.to_string fd.Metadata.fd_name)
         (List.length args));
    let compute =
      match observed with
      | Some obs -> fun () -> Observed.wrapper obs fd args compute
      | None -> compute
    in
    match function_cache with
    | Some cache -> Function_cache.wrapper cache fd args compute
    | None -> compute ()
  in
  (* the streamed call boundary: only non-cacheable body calls reach it
     (cacheable sites stay on the materialized wrapper above, where the
     function cache lives), so auditing is the whole job here *)
  let stream_wrapper fd args produce =
    Audit.record audit ~category:"service-call"
      (Printf.sprintf "call %s/%d"
         (Qname.to_string fd.Metadata.fd_name)
         (List.length args));
    produce ()
  in
  { registry;
    optimizer = Optimizer.create ~options:opts registry;
    plan_cache = Plan_cache.create ~capacity:plan_cache_capacity;
    function_cache;
    security;
    audit;
    observed;
    pool;
    runtime =
      Eval.runtime ~call_wrapper ~stream_wrapper ~pool ?observed
        ?concurrent_lets ?sort_budget_rows:opts.Optimizer.sort_budget_rows
        ~on_spill registry;
    admission =
      { adm_max_active = max max_concurrent 1;
        adm_max_queue = max admission_queue 0;
        adm_mutex = Mutex.create ();
        adm_slot_free = Condition.create ();
        adm_idle = Condition.create ();
        adm_active = 0;
        adm_waiting = 0;
        adm_draining = false;
        adm_submitted = 0;
        adm_admitted = 0;
        adm_rejected = 0;
        adm_completed = 0;
        adm_deadline_aborts = 0;
        adm_peak_active = 0;
        adm_peak_waiting = 0 };
    explain_lock = Mutex.create ();
    counter_lock;
    streamed_tokens = ref 0;
    worst_misestimate = ref 1.;
    spill_runs;
    spill_rows;
    spill_bytes;
    spill_peak_resident }

(* The differential-testing oracle (see lib/check): every cost-only
   compilation and execution choice disabled — no pushdown, a single
   worker, no prefetch, sequential lets — so results depend only on query
   semantics. *)
let reference ?plan_cache_capacity ?function_cache ?security ?audit registry =
  create ~optimizer_options:Optimizer.reference_options
    ~pool:(Pool.create ~workers:1 ()) ~concurrent_lets:false
    ?plan_cache_capacity ?function_cache ?security ?audit registry

let registry t = t.registry
let optimizer t = t.optimizer
let security t = t.security
let function_cache t = t.function_cache
let pool t = t.pool

let admission_stats t =
  let adm = t.admission in
  Mutex.lock adm.adm_mutex;
  let snap =
    { ad_submitted = adm.adm_submitted;
      ad_admitted = adm.adm_admitted;
      ad_rejected = adm.adm_rejected;
      ad_completed = adm.adm_completed;
      ad_deadline_aborts = adm.adm_deadline_aborts;
      ad_active = adm.adm_active;
      ad_queued = adm.adm_waiting;
      ad_peak_active = adm.adm_peak_active;
      ad_peak_queued = adm.adm_peak_waiting }
  in
  Mutex.unlock adm.adm_mutex;
  snap

let stats t =
  let backend = Aldsp_relational.Database.zero_stats () in
  List.iter
    (fun db -> Aldsp_relational.Database.add_stats backend db.Aldsp_relational.Database.stats)
    (Metadata.databases t.registry);
  { st_plan_cache_hits = Plan_cache.hits t.plan_cache;
    st_plan_cache_misses = Plan_cache.misses t.plan_cache;
    st_function_cache_hits =
      (match t.function_cache with Some c -> Function_cache.hits c | None -> 0);
    st_function_cache_misses =
      (match t.function_cache with
      | Some c -> Function_cache.misses c
      | None -> 0);
    st_pool = Pool.stats t.pool;
    st_roundtrips =
      (match t.observed with Some o -> Observed.roundtrips o | None -> 0);
    st_overlap_saved =
      (match t.observed with Some o -> Observed.overlap_saved o | None -> 0.);
    st_source_wall =
      (match t.observed with Some o -> Observed.source_wall o | None -> 0.);
    st_tokens_streamed = !(t.streamed_tokens);
    st_backend = backend;
    st_max_misestimate = !(t.worst_misestimate);
    st_admission = admission_stats t;
    st_coalesced_hits =
      backend.Aldsp_relational.Database.coalesced_hits
      + (match t.function_cache with
        | Some c -> Function_cache.coalesced c
        | None -> 0);
    st_batch_merges = backend.Aldsp_relational.Database.batch_merges;
    st_dedup_roundtrips_saved =
      backend.Aldsp_relational.Database.dedup_roundtrips_saved;
    st_spill_runs = !(t.spill_runs);
    st_spill_rows = !(t.spill_rows);
    st_spill_bytes = !(t.spill_bytes);
    st_spill_peak_resident = !(t.spill_peak_resident) }

(* Cross-session work sharing is a property of the backends this server
   fronts: flip every registered database. Function-cache miss
   coalescing is always on (it is a pure de-duplication). *)
let set_work_sharing t flag =
  List.iter
    (fun db -> Aldsp_relational.Database.set_share_work db flag)
    (Metadata.databases t.registry)

let work_sharing t =
  List.exists
    (fun db -> db.Aldsp_relational.Database.share_work)
    (Metadata.databases t.registry)

(* ------------------------------------------------------------------ *)
(* Data service registration                                           *)

let truthy = function "true" | "yes" | "1" -> true | _ -> false

let pragma_attrs (decl : Xq_ast.function_decl) =
  List.concat_map
    (fun p ->
      if p.Xq_ast.pragma_name = "function" || p.Xq_ast.pragma_name = "" then
        p.Xq_ast.pragma_attrs
      else [])
    decl.Xq_ast.fn_pragmas

let kind_of_pragmas attrs =
  match List.assoc_opt "kind" attrs with
  | Some "navigate" -> Metadata.Navigate
  | Some "read" -> Metadata.Read
  | Some "library" | None | Some _ -> Metadata.Library

(* Prolog variables ([declare variable $v := expr]) become let-bindings
   prepended to every expression that can see them; earlier declarations
   are visible to later ones. Returns the surface->unique mapping and the
   let clauses. *)
let prolog_variable_bindings ctx (prolog : Xq_ast.prolog) =
  List.fold_left
    (fun (scope, lets) (name, _ty, expr) ->
      let uv = Normalize.fresh_var ctx name in
      let value = Normalize.expr ~params:scope ctx expr in
      ((name, uv) :: scope, lets @ [ Cexpr.Let { var = uv; value } ]))
    ([], []) prolog.Xq_ast.variables

let wrap_lets lets body =
  if lets = [] then body
  else Cexpr.Flwor { clauses = lets; return_ = body }

let register_functions t ~diag (prolog : Xq_ast.prolog) =
  let ctx =
    Normalize.of_prolog ~schema_lookup:(Metadata.find_schema t.registry) diag
      prolog
  in
  let var_scope, var_lets = prolog_variable_bindings ctx prolog in
  (* two passes: signatures first so bodies may reference one another *)
  let sigs =
    List.map
      (fun decl ->
        let name, params, return_type = Normalize.function_signature ctx decl in
        (decl, name, params, return_type))
      prolog.Xq_ast.functions
  in
  List.iter
    (fun (decl, name, params, return_type) ->
      let attrs = pragma_attrs decl in
      Metadata.add_function t.registry
        { Metadata.fd_name = name;
          fd_params = List.map (fun (_, uv, ty) -> (uv, ty)) params;
          fd_return = return_type;
          fd_impl = Metadata.Body (Cexpr.Error_expr "body pending");
          fd_kind = kind_of_pragmas attrs;
          fd_cacheable =
            (match List.assoc_opt "cacheable" attrs with
            | Some v -> truthy v
            | None -> false);
          fd_pragmas = attrs })
    sigs;
  List.iter
    (fun (decl, name, params, return_type) ->
      match decl.Xq_ast.fn_body with
      | None ->
        Diag.error diag ~phase:"register"
          "function %s is declared external but has no source binding"
          (Qname.to_string name)
      | Some body_ast ->
        let surface_params =
          List.map (fun (s, uv, _) -> (s, uv)) params @ var_scope
        in
        let body = Normalize.expr ~params:surface_params ctx body_ast in
        let body = wrap_lets var_lets body in
        let tenv =
          Typecheck.env
            ~vars:(List.map (fun (_, uv, ty) -> (uv, ty)) params)
            t.registry diag
        in
        let _, body =
          Typecheck.check_function_body tenv ~declared:return_type body
        in
        (match Metadata.find_function t.registry name (List.length params) with
        | Some fd ->
          Metadata.add_function t.registry
            { fd with Metadata.fd_impl = Metadata.Body body }
        | None -> ()))
    sigs;
  sigs

let register_data_service t ~name source =
  let diag = Diag.collector Diag.Fail_fast in
  match Xq_parser.parse_query source with
  | Error msg ->
    Error [ { Diag.severity = Diag.Error; phase = "parse"; message = msg } ]
  | Ok query -> (
    match register_functions t ~diag query.Xq_ast.prolog with
    | sigs ->
      let fn_names = List.map (fun (_, n, _, _) -> n) sigs in
      let reads =
        List.filter_map
          (fun (decl, n, _, _) ->
            if kind_of_pragmas (pragma_attrs decl) = Metadata.Read then Some n
            else None)
          sigs
      in
      let lineage =
        match List.assoc_opt "lineageProvider"
                (List.concat_map (fun (d, _, _, _) -> pragma_attrs d) sigs)
        with
        | Some fname -> Some (Qname.of_string fname)
        | None -> ( match reads with n :: _ -> Some n | [] -> None)
      in
      Metadata.add_data_service t.registry
        { Metadata.ds_name = name;
          ds_shape = None;
          ds_functions = fn_names;
          ds_lineage_provider = lineage };
      Ok ()
    | exception Diag.Compile_error d -> Error [ d ])

let design_time_check t source =
  let query, parse_errors = Xq_parser.parse_query_recovering source in
  let diag = Diag.collector Diag.Recover in
  (* analyze against a copy of the registry so the live one never sees the
     file's declarations *)
  let shadow =
    { t with
      registry = Metadata.copy t.registry;
      plan_cache = Plan_cache.create ~capacity:1 }
  in
  (try ignore (register_functions shadow ~diag query.Xq_ast.prolog)
   with Diag.Compile_error d ->
     Diag.error diag ~phase:d.Diag.phase "%s" d.Diag.message);
  List.map
    (fun msg -> { Diag.severity = Diag.Error; phase = "parse"; message = msg })
    parse_errors
  @ Diag.diagnostics diag

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)

(* Declarative hints (§9): (::pragma hint k="v" ... ::) ahead of the
   query body tunes this compilation. Supported hints:
     ppk-k="N"              PP-k block size
     ppk-prefetch="N"       PP-k pipeline depth (0 = sequential)
     inline-views="bool"    view unfolding on/off
     inverse-functions="bool"
     join-introduction="bool" *)
let apply_hints base_options (query : Xq_ast.query) =
  let hint_attrs =
    List.concat_map
      (fun p ->
        if p.Xq_ast.pragma_name = "hint" then p.Xq_ast.pragma_attrs else [])
      query.Xq_ast.query_pragmas
  in
  if hint_attrs = [] then None
  else
    let bool_hint key default =
      match List.assoc_opt key hint_attrs with
      | Some v -> truthy v
      | None -> default
    in
    let open Optimizer in
    (* an explicit PP-k hint is a user override: cost-based selection
       would re-derive k/prefetch and ignore it, so it yields *)
    let explicit_ppk =
      List.mem_assoc "ppk-k" hint_attrs
      || List.mem_assoc "ppk-prefetch" hint_attrs
    in
    Some
      { base_options with
        cost_based = (base_options.cost_based && not explicit_ppk);
        ppk_k =
          (match List.assoc_opt "ppk-k" hint_attrs with
          | Some v -> ( match int_of_string_opt v with Some k when k > 0 -> k | _ -> base_options.ppk_k)
          | None -> base_options.ppk_k);
        ppk_prefetch =
          (match List.assoc_opt "ppk-prefetch" hint_attrs with
          | Some v -> (
            match int_of_string_opt v with
            | Some d when d >= 0 -> d
            | _ -> base_options.ppk_prefetch)
          | None -> base_options.ppk_prefetch);
        inline_views = bool_hint "inline-views" base_options.inline_views;
        use_inverse_functions =
          bool_hint "inverse-functions" base_options.use_inverse_functions;
        introduce_joins =
          bool_hint "join-introduction" base_options.introduce_joins }

let compile_no_cache t source =
  let diag = Diag.collector Diag.Fail_fast in
  match Xq_parser.parse_query source with
  | Error msg ->
    Error [ { Diag.severity = Diag.Error; phase = "parse"; message = msg } ]
  | Ok query -> (
    match query.Xq_ast.body with
    | None ->
      Error
        [ { Diag.severity = Diag.Error;
            phase = "parse";
            message = "query has no body expression" } ]
    | Some body_ast -> (
      try
        let optimizer =
          match apply_hints (Optimizer.options t.optimizer) query with
          | Some hinted -> Optimizer.create ~options:hinted t.registry
          | None -> t.optimizer
        in
        (* inline prolog function declarations are registered transiently *)
        ignore (register_functions t ~diag query.Xq_ast.prolog);
        let ctx =
          Normalize.of_prolog
            ~schema_lookup:(Metadata.find_schema t.registry)
            diag query.Xq_ast.prolog
        in
        let var_scope, var_lets = prolog_variable_bindings ctx query.Xq_ast.prolog in
        let core =
          wrap_lets var_lets (Normalize.expr ~params:var_scope ctx body_ast)
        in
        let tenv = Typecheck.env t.registry diag in
        let static_type, typed = Typecheck.check tenv core in
        let opts = Optimizer.options optimizer in
        let typed =
          (* source reordering must see the raw for-clauses, before join
             introduction (§9): statically costed when the cost model is
             on (observed samples as fallback), observed-only otherwise *)
          if opts.Optimizer.cost_based then
            Optimizer.reorder_sources optimizer ?observed:t.observed typed
          else
            match t.observed with
            | Some obs -> Optimizer.reorder_by_observed_cost optimizer obs typed
            | None -> typed
        in
        let optimized, _stats = Optimizer.optimize optimizer typed in
        let do_push = opts.Optimizer.pushdown in
        (* the transfer-volume gate: skip PP-k parameterization of a join's
           right side when probing is estimated to cost more than shipping
           the region whole *)
        let gate ~outer r =
          (not opts.Optimizer.cost_based)
          ||
          let latency =
            match Metadata.find_database t.registry r.Cexpr.db with
            | Some db -> (Cost_model.db_profile db).Cost_model.p_latency
            | None -> 0.
          in
          Cost_model.parameterize_beneficial
            ~outer:(Cost_model.clauses_cardinality t.registry outer)
            ~inner_rows:(Cost_model.rel_cardinality t.registry r)
            ~latency
        in
        let push e = if do_push then Pushdown.push ~gate t.registry e else e in
        let pushed = push optimized in
        let cleaned = Optimizer.cleanup optimizer pushed in
        (* a second pass prunes columns whose only consumer the cleanup
           removed (source-access elimination, §4.2) *)
        let pushed = push cleaned in
        let plan = Optimizer.select_methods optimizer pushed in
        Ok
          { source;
            plan;
            ir = Plan_ir.compile t.registry plan;
            static_type;
            diagnostics = Diag.diagnostics diag;
            sql = Pushdown.pushed_sql t.registry plan }
      with Diag.Compile_error d -> Error [ d ]))

let cache_key t ~generation ~stats source =
  { Plan_cache.k_query = source;
    k_options =
      Optimizer.options_fingerprint (Optimizer.options t.optimizer);
    k_generation = generation;
    k_stats = stats }

let compile t source =
  (* drop plans compiled against an older registry — or, since cost-based
     choices are functions of table statistics, since-mutated data —
     before looking up *)
  let generation = Metadata.generation t.registry in
  let stats = Metadata.stats_generation t.registry in
  Plan_cache.purge_stale t.plan_cache ~generation ~stats;
  match Plan_cache.find t.plan_cache (cache_key t ~generation ~stats source) with
  | Some compiled -> Ok compiled
  | None -> (
    match compile_no_cache t source with
    | Ok compiled ->
      (* compilation itself may move the generation (transient prolog
         function registration); key under the post-compile generation so
         an identical recompile — which would re-register the same
         definitions — can hit *)
      Plan_cache.add t.plan_cache
        (cache_key t
           ~generation:(Metadata.generation t.registry)
           ~stats:(Metadata.stats_generation t.registry)
           source)
        compiled;
      Ok compiled
    | Error _ as e -> e)

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)

let diags_to_string ds = String.concat "; " (List.map Diag.to_string ds)

(* Per-run est-vs-actual rollup. Operator counters accumulate across runs
   (by design — see Plan_ir.counters), so actual rows for THIS run are the
   deltas against a snapshot taken before execution. *)
let snapshot_rows ir = List.map (fun (_, c) -> c.Plan_ir.c_rows) (Plan_ir.operators ir)

(* compare-and-update of a shared maximum: a read-modify-write, so
   locked — concurrent sessions would otherwise lose updates *)
let note_worst t worst =
  Mutex.lock t.counter_lock;
  if worst > !(t.worst_misestimate) then t.worst_misestimate := worst;
  Mutex.unlock t.counter_lock

let note_misestimate t ir before =
  let worst =
    List.fold_left2
      (fun acc (_, c) prior ->
        let actual = c.Plan_ir.c_rows - prior in
        if c.Plan_ir.c_est > 0 && actual > 0 then
          Float.max acc
            (Cost_model.misestimate ~est:c.Plan_ir.c_est ~actual)
        else acc)
      1. (Plan_ir.operators ir) before
  in
  note_worst t worst

let run t ?(user = Security.admin) source =
  match compile t source with
  | Error ds -> Error (diags_to_string ds)
  | Ok compiled -> (
    let before = snapshot_rows compiled.ir in
    match Eval.execute t.runtime compiled.ir with
    | Ok items ->
      note_misestimate t compiled.ir before;
      Ok (Security.filter_result t.security user items)
    | Error _ as e -> e)

(* Every result path that serializes or streams tokens counts them here,
   so [st_tokens_streamed] reflects all delivery — run_stream, streaming
   sessions, file redirect, and materialized results pushed through
   [serialize_result] — not just run_stream. *)
let counted_tokens t stream =
  Aldsp_tokens.Token_stream.counted
    (fun _ ->
      Mutex.lock t.counter_lock;
      incr t.streamed_tokens;
      Mutex.unlock t.counter_lock)
    stream

let serialize_result t items =
  let buf = Buffer.create 256 in
  Aldsp_tokens.Token_stream.serialize_to buf
    (counted_tokens t (Aldsp_tokens.Token_stream.of_sequence items));
  Buffer.contents buf

let run_stream t ?(user = Security.admin) source =
  match run t ~user source with
  | Ok items ->
    Ok (counted_tokens t (Aldsp_tokens.Token_stream.of_sequence items))
  | Error _ as e -> e

let call t ?(user = Security.admin) fn args =
  match Security.check_call t.security user fn with
  | Error _ as e -> e
  | Ok () -> (
    match Eval.call_function t.runtime fn args with
    | Ok items -> Ok (Security.filter_result t.security user items)
    | Error _ as e -> e)

(* ------------------------------------------------------------------ *)
(* Serving layer: admission, deadlines, sessions, drain                *)

(* Waits for an executing slot. Called with [adm_mutex] held; returns
   with it held. Cancellable waiters (any real token: it may be flagged
   from another thread, which cannot signal our condvar) poll in short
   lock-released sleeps; the inert token blocks on the condvar. *)
let rec await_slot adm tok =
  if adm.adm_active < adm.adm_max_active then begin
    adm.adm_active <- adm.adm_active + 1;
    if adm.adm_active > adm.adm_peak_active then
      adm.adm_peak_active <- adm.adm_active;
    `Admitted
  end
  else if Cancel.cancelled tok then `Expired
  else begin
    if tok == Cancel.none then Condition.wait adm.adm_slot_free adm.adm_mutex
    else begin
      Mutex.unlock adm.adm_mutex;
      Thread.delay 0.001;
      Mutex.lock adm.adm_mutex
    end;
    await_slot adm tok
  end

let signal_if_idle adm =
  if adm.adm_active = 0 && adm.adm_waiting = 0 then
    Condition.broadcast adm.adm_idle

(* Admission decision for one submission. [`Admitted] holds an executing
   slot that [release_slot] must give back. *)
let admit adm tok =
  Mutex.lock adm.adm_mutex;
  adm.adm_submitted <- adm.adm_submitted + 1;
  let outcome =
    if adm.adm_draining then begin
      adm.adm_rejected <- adm.adm_rejected + 1;
      `Rejected
    end
    else if adm.adm_active < adm.adm_max_active then begin
      adm.adm_active <- adm.adm_active + 1;
      if adm.adm_active > adm.adm_peak_active then
        adm.adm_peak_active <- adm.adm_active;
      adm.adm_admitted <- adm.adm_admitted + 1;
      `Admitted
    end
    else if adm.adm_waiting >= adm.adm_max_queue then begin
      adm.adm_rejected <- adm.adm_rejected + 1;
      `Rejected
    end
    else begin
      adm.adm_waiting <- adm.adm_waiting + 1;
      if adm.adm_waiting > adm.adm_peak_waiting then
        adm.adm_peak_waiting <- adm.adm_waiting;
      let r = await_slot adm tok in
      adm.adm_waiting <- adm.adm_waiting - 1;
      (match r with
      | `Admitted -> adm.adm_admitted <- adm.adm_admitted + 1
      | `Expired ->
        adm.adm_deadline_aborts <- adm.adm_deadline_aborts + 1;
        signal_if_idle adm);
      r
    end
  in
  Mutex.unlock adm.adm_mutex;
  outcome

let release_slot adm ~outcome =
  Mutex.lock adm.adm_mutex;
  adm.adm_active <- adm.adm_active - 1;
  (match outcome with
  | `Completed -> adm.adm_completed <- adm.adm_completed + 1
  | `Deadline -> adm.adm_deadline_aborts <- adm.adm_deadline_aborts + 1);
  Condition.signal adm.adm_slot_free;
  signal_if_idle adm;
  Mutex.unlock adm.adm_mutex

(* The deadline covers queue wait plus execution: the token is created
   before [admit], so time spent waiting for a slot counts against it. *)
let submit t ?(user = Security.admin) ?deadline ?token source =
  let tok =
    match token with
    | Some tok -> tok
    | None -> (
      match deadline with
      | Some seconds -> Cancel.with_deadline seconds
      | None -> Cancel.none)
  in
  match admit t.admission tok with
  | `Rejected -> Error Overloaded
  | `Expired -> Error (Cancelled "deadline exceeded while queued")
  | `Admitted -> (
    match Cancel.with_token tok (fun () -> run t ~user source) with
    | Ok items ->
      release_slot t.admission ~outcome:`Completed;
      Ok items
    | Error m ->
      (* an Error with a fired token is a cancellation surfacing as an
         evaluation error, not a query bug *)
      if Cancel.cancelled tok then begin
        release_slot t.admission ~outcome:`Deadline;
        Error (Cancelled m)
      end
      else begin
        release_slot t.admission ~outcome:`Completed;
        Error (Failed m)
      end
    | exception e ->
      release_slot t.admission
        ~outcome:(if Cancel.cancelled tok then `Deadline else `Completed);
      raise e)

let drain t =
  let adm = t.admission in
  Mutex.lock adm.adm_mutex;
  adm.adm_draining <- true;
  (* already-queued waiters still run; only new arrivals are rejected *)
  while adm.adm_active > 0 || adm.adm_waiting > 0 do
    Condition.wait adm.adm_idle adm.adm_mutex
  done;
  Mutex.unlock adm.adm_mutex

let draining t =
  let adm = t.admission in
  Mutex.lock adm.adm_mutex;
  let d = adm.adm_draining in
  Mutex.unlock adm.adm_mutex;
  d

(* One client domain's connection: a default user and per-query deadline,
   plus the token of the in-flight query so another thread can cancel it. *)
type session = {
  ses_server : t;
  ses_user : Security.user;
  ses_deadline : float option;
  ses_lock : Mutex.t;
  mutable ses_current : Cancel.t;
}

let session t ?(user = Security.admin) ?deadline () =
  { ses_server = t;
    ses_user = user;
    ses_deadline = deadline;
    ses_lock = Mutex.create ();
    ses_current = Cancel.none }

let session_run s ?deadline source =
  let deadline = match deadline with Some _ as d -> d | None -> s.ses_deadline in
  let tok =
    match deadline with
    | Some seconds -> Cancel.with_deadline seconds
    | None -> Cancel.make ()
  in
  Mutex.lock s.ses_lock;
  s.ses_current <- tok;
  Mutex.unlock s.ses_lock;
  submit s.ses_server ~user:s.ses_user ~token:tok source

let session_cancel s =
  Mutex.lock s.ses_lock;
  let tok = s.ses_current in
  Mutex.unlock s.ses_lock;
  Cancel.cancel tok

(* ------------------------------------------------------------------ *)
(* Streamed session delivery: the query executes on a dedicated producer
   thread pulling Eval.execute_stream, pushing tokens into a bounded SPSC
   queue the consumer drains at its own pace. The queue is the
   backpressure boundary — a producer that outruns the consumer blocks at
   [buffer] tokens, so a slow client holds live memory to the queue
   capacity instead of the whole result. *)

type stream = {
  str_queue : Aldsp_tokens.Token.t Spsc.t;
  str_token : Cancel.t;
  mutable str_done : bool;
}

let session_run_stream s ?deadline ?(buffer = 256) source =
  let server = s.ses_server in
  let deadline =
    match deadline with Some _ as d -> d | None -> s.ses_deadline
  in
  let tok =
    match deadline with
    | Some seconds -> Cancel.with_deadline seconds
    | None -> Cancel.make ()
  in
  Mutex.lock s.ses_lock;
  s.ses_current <- tok;
  Mutex.unlock s.ses_lock;
  match admit server.admission tok with
  | `Rejected -> Error Overloaded
  | `Expired -> Error (Cancelled "deadline exceeded while queued")
  | `Admitted -> (
    (* compile on the caller's thread so compilation errors surface as a
       plain [Error] instead of a one-token failed stream *)
    match compile server source with
    | Error ds ->
      release_slot server.admission ~outcome:`Completed;
      Error (Failed (diags_to_string ds))
    | Ok compiled ->
      let q = Spsc.create ~capacity:buffer in
      let st = { str_queue = q; str_token = tok; str_done = false } in
      let producer () =
        let finish outcome =
          (* root observability: the high-water mark of the delivery
             queue, bounded by its capacity *)
          compiled.ir.Plan_ir.counters.Plan_ir.c_peak_buffer <-
            max compiled.ir.Plan_ir.counters.Plan_ir.c_peak_buffer
              (Spsc.peak_occupancy q);
          release_slot server.admission ~outcome
        in
        let before = snapshot_rows compiled.ir in
        let body () =
          let items = Eval.execute_stream server.runtime compiled.ir in
          let filtered =
            Seq.concat_map
              (fun item ->
                List.to_seq
                  (Security.filter_result server.security s.ses_user [ item ]))
              items
          in
          let tokens =
            counted_tokens server
              (Seq.concat_map Aldsp_tokens.Token_stream.of_item filtered)
          in
          (* push until done or the consumer aborts; false from [push]
             means [stream_cancel] already tore the queue down *)
          let rec drain seq =
            match seq () with
            | Seq.Nil -> true
            | Seq.Cons (token, rest) ->
              if Spsc.push q token then drain rest else false
          in
          drain tokens
        in
        match Cancel.with_token tok body with
        | true ->
          note_misestimate server compiled.ir before;
          Spsc.close q;
          finish `Completed
        | false ->
          (* the consumer cancelled (abort tears the queue down): a clean
             close here would read as a complete result *)
          Spsc.fail q "stream cancelled";
          finish `Deadline
        | exception Eval.Eval_error m ->
          Spsc.fail q m;
          finish (if Cancel.cancelled tok then `Deadline else `Completed)
        | exception Cancel.Cancelled m ->
          Spsc.fail q m;
          finish `Deadline
        | exception e ->
          Spsc.fail q (Printexc.to_string e);
          finish (if Cancel.cancelled tok then `Deadline else `Completed)
      in
      ignore (Thread.create producer ());
      Ok st)

let stream_read st =
  if st.str_done then Ok None
  else
    match Spsc.pop st.str_queue with
    | `Item token -> Ok (Some token)
    | `Closed ->
      st.str_done <- true;
      Ok None
    | `Failed m ->
      st.str_done <- true;
      if Cancel.cancelled st.str_token then Error (Cancelled m)
      else Error (Failed m)

let stream_cancel st =
  Cancel.cancel st.str_token;
  Spsc.abort st.str_queue

let stream_peak_buffered st = Spsc.peak_occupancy st.str_queue

let stream_serialize st write =
  let err = ref None in
  let dispenser () =
    match stream_read st with
    | Ok (Some token) -> Some token
    | Ok None -> None
    | Error e ->
      err := Some e;
      None
  in
  (try
     Seq.iter write
       (Aldsp_tokens.Token_stream.serialize_chunks (Seq.of_dispenser dispenser))
   with Invalid_argument m ->
     (* a failed producer can truncate the stream mid-element; the cause
        recorded by the dispenser wins over the serializer's complaint *)
     if !err = None then err := Some (Failed m));
  match !err with None -> Ok () | Some e -> Error e

let explain t ?(analyze = true) ?(timings = false) source =
  (* serialized: --analyze resets the (shared, cached) plan's counters,
     executes, then renders them — interleaving two analyzes of the same
     plan would mix their actual-row counts *)
  Mutex.lock t.explain_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.explain_lock) @@ fun () ->
  match compile t source with
  | Error ds -> Error (diags_to_string ds)
  | Ok compiled ->
    let buf = Buffer.create 512 in
    Buffer.add_string buf
      (Printf.sprintf "static type: %s\n"
         (Stype.to_string compiled.static_type));
    if analyze then begin
      Plan_ir.reset_counters compiled.ir;
      match Eval.execute t.runtime compiled.ir with
      | Ok _ -> note_worst t (Plan_ir.max_misestimate compiled.ir)
      | Error m -> Buffer.add_string buf (Printf.sprintf "error: %s\n" m)
    end;
    Buffer.add_string buf "plan:\n";
    Buffer.add_string buf (Plan_ir.render ~timings compiled.ir);
    Ok (Buffer.contents buf)

let plan_cache_hits t = Plan_cache.hits t.plan_cache
let plan_cache_misses t = Plan_cache.misses t.plan_cache
