(** Observed-cost statistics — the paper's roadmap item implemented (§9).

    "We are starting work on an observed cost-based approach to
    optimization and tuning; the idea is to skip past 'old school'
    techniques that rely on static cost models and difficult-to-obtain
    statistics, instead instrumenting the system and basing its
    optimization decisions (such as evaluation ordering and
    parallelization) only on actually observed data characteristics and
    data source behavior."

    This module is the instrument: a per-function record of observed
    invocation latency and result cardinality, fed by the evaluator's call
    wrapper. {!Optimizer.reorder_by_observed_cost} consumes it to reorder
    independent source accesses so that cheaper/smaller sources run first
    (and drive the outer side of nested evaluations). *)

open Aldsp_xml

type sample = {
  calls : int;
  mean_latency : float;  (** Seconds. *)
  mean_cardinality : float;  (** Items returned. *)
  total_latency : float;  (** Accumulated wall time inside this source. *)
}

type t

val create : unit -> t

val record : t -> Qname.t -> latency:float -> cardinality:int -> unit
(** Exponentially-weighted accumulation (alpha = 0.2) so behaviour shifts
    are tracked without unbounded memory. All recording is mutex-guarded:
    with the worker pool, source calls complete on many threads. *)

val record_roundtrip : t -> wall:float -> unit
(** One middleware-issued source roundtrip (e.g. a PP-k block query);
    [wall] is its measured duration, accumulated into {!source_wall}. *)

val record_overlap : t -> float -> unit
(** Seconds of source latency hidden by overlapping a roundtrip with other
    work (negative/zero contributions are dropped). *)

val record_coalesced : t -> unit
(** One source statement served from another session's in-flight work
    (cross-session sharing) instead of its own roundtrip. *)

val roundtrips : t -> int

val coalesced_hits : t -> int
(** Statements that were coalesced onto shared work. *)

val overlap_saved : t -> float
val source_wall : t -> float
(** Total wall time spent inside instrumented source calls — with the pool
    this can exceed elapsed time, which is exactly the overlap win. *)

val observed : t -> Qname.t -> sample option

val cost : t -> Qname.t -> float option
(** The ordering heuristic: mean latency plus a per-item processing
    charge. [None] until the function has been observed at least once. *)

val wrapper :
  t ->
  Metadata.function_def ->
  Item.sequence list ->
  (unit -> Item.sequence) ->
  Item.sequence
(** An {!Eval.call_wrapper} that instruments every data-service function
    call. Compose it with caching wrappers as needed. *)

val report : t -> (Qname.t * sample) list
(** All observations, most expensive first. *)
