module IntMap = Map.Make (Int)

type key = {
  k_query : string;
  k_options : string;
  k_generation : int;
  k_stats : int;
}

(* Keys are flattened to strings so the hash table stays cheap; NUL can't
   appear in either component (query text is source code, the fingerprint
   is printf-built). *)
let key_string k =
  Printf.sprintf "%d\x00%d\x00%s\x00%s" k.k_generation k.k_stats k.k_options
    k.k_query

(* Recency is a monotonically increasing tick per touch: each entry
   carries its latest tick, and [recency] maps tick -> key, so touching
   is two O(log n) map operations (remove the old tick, add the new) and
   the eviction victim is [IntMap.min_binding]. The previous
   representation — a most-recent-first list filtered on every touch —
   made every hit O(live entries). *)
type 'plan entry = { e_key : key; e_plan : 'plan; mutable e_tick : int }

type 'plan t = {
  capacity : int;
  table : (string, 'plan entry) Hashtbl.t;
  mutex : Mutex.t;
      (* one lock for table + recency + counters: eviction and LRU
         touching are multi-step, and concurrent sessions share one
         cache *)
  mutable recency : string IntMap.t;  (* tick -> key, oldest first *)
  mutable tick : int;
  mutable hit_count : int;
  mutable miss_count : int;
  mutable eviction_count : int;
}

let create ~capacity =
  { capacity;
    table = Hashtbl.create 32;
    mutex = Mutex.create ();
    recency = IntMap.empty;
    tick = 0;
    hit_count = 0;
    miss_count = 0;
    eviction_count = 0 }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect f ~finally:(fun () -> Mutex.unlock t.mutex)

let touch t ks entry =
  t.recency <- IntMap.remove entry.e_tick t.recency;
  t.tick <- t.tick + 1;
  entry.e_tick <- t.tick;
  t.recency <- IntMap.add t.tick ks t.recency

let find t key =
  locked t @@ fun () ->
  let ks = key_string key in
  match Hashtbl.find_opt t.table ks with
  | Some entry ->
    t.hit_count <- t.hit_count + 1;
    touch t ks entry;
    Some entry.e_plan
  | None ->
    t.miss_count <- t.miss_count + 1;
    None

let add t key plan =
  locked t @@ fun () ->
  let ks = key_string key in
  (match Hashtbl.find_opt t.table ks with
  | Some old ->
    (* replacement: drop the old recency slot, no eviction needed *)
    t.recency <- IntMap.remove old.e_tick t.recency
  | None ->
    if Hashtbl.length t.table >= t.capacity then begin
      match IntMap.min_binding_opt t.recency with
      | Some (oldest_tick, oldest_ks) ->
        Hashtbl.remove t.table oldest_ks;
        t.recency <- IntMap.remove oldest_tick t.recency;
        t.eviction_count <- t.eviction_count + 1
      | None -> ()
    end);
  t.tick <- t.tick + 1;
  Hashtbl.replace t.table ks { e_key = key; e_plan = plan; e_tick = t.tick };
  t.recency <- IntMap.add t.tick ks t.recency

let purge_stale t ~generation ~stats =
  locked t @@ fun () ->
  let stale =
    Hashtbl.fold
      (fun ks entry acc ->
        if entry.e_key.k_generation <> generation
           || entry.e_key.k_stats <> stats
        then (ks, entry.e_tick) :: acc
        else acc)
      t.table []
  in
  List.iter
    (fun (ks, tick) ->
      Hashtbl.remove t.table ks;
      t.recency <- IntMap.remove tick t.recency)
    stale

let clear t =
  locked t @@ fun () ->
  Hashtbl.reset t.table;
  t.recency <- IntMap.empty

let size t = locked t @@ fun () -> Hashtbl.length t.table
let hits t = locked t @@ fun () -> t.hit_count
let misses t = locked t @@ fun () -> t.miss_count
let evictions t = locked t @@ fun () -> t.eviction_count
