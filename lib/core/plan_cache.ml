type key = {
  k_query : string;
  k_options : string;
  k_generation : int;
  k_stats : int;
}

(* Keys are flattened to strings so the LRU list stays cheap; NUL can't
   appear in either component (query text is source code, the fingerprint
   is printf-built). *)
let key_string k =
  Printf.sprintf "%d\x00%d\x00%s\x00%s" k.k_generation k.k_stats k.k_options
    k.k_query

type 'plan t = {
  capacity : int;
  table : (string, key * 'plan) Hashtbl.t;
  mutex : Mutex.t;
      (* one lock for table + lru + counters: eviction and LRU touching
         are multi-step, and concurrent sessions share one cache *)
  mutable lru : string list;  (* most recent first *)
  mutable hit_count : int;
  mutable miss_count : int;
}

let create ~capacity =
  { capacity; table = Hashtbl.create 32; mutex = Mutex.create (); lru = [];
    hit_count = 0; miss_count = 0 }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect f ~finally:(fun () -> Mutex.unlock t.mutex)

let touch t key =
  t.lru <- key :: List.filter (fun k -> not (String.equal k key)) t.lru

let find t key =
  locked t @@ fun () ->
  let ks = key_string key in
  match Hashtbl.find_opt t.table ks with
  | Some (_, plan) ->
    t.hit_count <- t.hit_count + 1;
    touch t ks;
    Some plan
  | None ->
    t.miss_count <- t.miss_count + 1;
    None

let add t key plan =
  locked t @@ fun () ->
  let ks = key_string key in
  if not (Hashtbl.mem t.table ks) && Hashtbl.length t.table >= t.capacity
  then begin
    match List.rev t.lru with
    | oldest :: _ ->
      Hashtbl.remove t.table oldest;
      t.lru <- List.filter (fun k -> not (String.equal k oldest)) t.lru
    | [] -> ()
  end;
  Hashtbl.replace t.table ks (key, plan);
  touch t ks

let purge_stale t ~generation ~stats =
  locked t @@ fun () ->
  let stale =
    Hashtbl.fold
      (fun ks (key, _) acc ->
        if key.k_generation <> generation || key.k_stats <> stats then
          ks :: acc
        else acc)
      t.table []
  in
  List.iter (Hashtbl.remove t.table) stale;
  if stale <> [] then
    t.lru <- List.filter (fun k -> Hashtbl.mem t.table k) t.lru

let clear t =
  locked t @@ fun () ->
  Hashtbl.reset t.table;
  t.lru <- []

let size t = locked t @@ fun () -> Hashtbl.length t.table
let hits t = locked t @@ fun () -> t.hit_count
let misses t = locked t @@ fun () -> t.miss_count
