(* Each task carries the cancellation token that was ambient on the
   submitting thread: whichever thread ends up running it (worker or
   help-draining awaiter) re-installs that token for the task's duration,
   so deadlines follow the query across threads. *)
type task = Task : 'a Future.t * Cancel.t * (unit -> 'a) -> task

type t = {
  workers : int;
  queue : task Queue.t;
  mutex : Mutex.t;
  work_ready : Condition.t;
  worker_ids : (int, unit) Hashtbl.t;  (* Thread.id of each worker *)
  mutable threads : Thread.t list;  (* join handles for [shutdown ~wait] *)
  mutable started : bool;
  mutable stopping : bool;
  mutable submitted : int;
  mutable completed : int;
  mutable busy : int;
  mutable max_busy : int;
  mutable helped : int;
  mutable max_queue_depth : int;
}

type stats = {
  st_workers : int;
  st_submitted : int;
  st_completed : int;
  st_queue_depth : int;
  st_max_queue_depth : int;
  st_busy : int;
  st_max_busy : int;
  st_helped : int;
}

let create ?(workers = Domain.recommended_domain_count ()) () =
  { workers = max 1 workers;
    queue = Queue.create ();
    mutex = Mutex.create ();
    work_ready = Condition.create ();
    worker_ids = Hashtbl.create 8;
    threads = [];
    started = false;
    stopping = false;
    submitted = 0;
    completed = 0;
    busy = 0;
    max_busy = 0;
    helped = 0;
    max_queue_depth = 0 }

let size t = t.workers

(* [helper] marks execution by an awaiting thread rather than a worker:
   it is tallied separately so [st_max_busy] counts pool threads only and
   stays within the configured bound *)
let run_task ?(helper = false) t (Task (fut, token, f)) =
  if helper then t.helped <- t.helped + 1
  else begin
    t.busy <- t.busy + 1;
    if t.busy > t.max_busy then t.max_busy <- t.busy
  end;
  Mutex.unlock t.mutex;
  Future.fulfill_with fut (fun () -> Cancel.with_token token f);
  Mutex.lock t.mutex;
  if not helper then t.busy <- t.busy - 1;
  t.completed <- t.completed + 1

let worker_loop t () =
  Mutex.lock t.mutex;
  Hashtbl.replace t.worker_ids (Thread.id (Thread.self ())) ();
  let running = ref true in
  while !running do
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.work_ready t.mutex
    done;
    match Queue.take_opt t.queue with
    | Some task -> run_task t task
    | None -> running := false  (* stopping with a drained queue *)
  done;
  Hashtbl.remove t.worker_ids (Thread.id (Thread.self ()));
  Mutex.unlock t.mutex

(* workers start on first submission, so pools created for configuration
   only (or never used) cost nothing *)
let ensure_started t =
  if not t.started then begin
    t.started <- true;
    for _ = 1 to t.workers do
      t.threads <- Thread.create (worker_loop t) () :: t.threads
    done
  end

let submit t f =
  let fut = Future.create () in
  let token = Cancel.current () in
  Mutex.lock t.mutex;
  ensure_started t;
  t.submitted <- t.submitted + 1;
  Queue.push (Task (fut, token, f)) t.queue;
  let depth = Queue.length t.queue in
  if depth > t.max_queue_depth then t.max_queue_depth <- depth;
  Condition.signal t.work_ready;
  Mutex.unlock t.mutex;
  fut

(* Awaiting inside the pool must not deadlock when every worker is blocked
   on a not-yet-scheduled task: while the future is unresolved, the waiter
   (worker or client thread alike) drains queued tasks itself. *)
let await t fut =
  let rec help () =
    match Future.poll fut with
    | Some v -> v
    | None ->
      Mutex.lock t.mutex;
      (match Queue.take_opt t.queue with
      | Some task ->
        run_task ~helper:true t task;
        Mutex.unlock t.mutex;
        help ()
      | None ->
        Mutex.unlock t.mutex;
        Future.await fut)
  in
  help ()

(* Ordered pipelining: map [f] over [seq] keeping up to [depth] + 1
   applications in flight (the one being awaited plus [depth] prefetched
   ahead). Elements are pulled from [seq] and results emitted strictly in
   order — tasks may complete out of order but consumers never observe
   that. Forcing of [seq] happens on the consumer's thread, so effectful
   sources need no synchronization of their own. *)
let pipeline t ~depth f seq =
  if depth <= 0 then Seq.map f seq
  else
    let rec fill pending n seq =
      if n = 0 then (pending, seq)
      else
        match seq () with
        | Seq.Nil -> (pending, Seq.empty)
        | Seq.Cons (x, rest) ->
          fill (pending @ [ submit t (fun () -> f x) ]) (n - 1) rest
    in
    let rec go pending seq () =
      let pending, seq = fill pending (depth + 1 - List.length pending) seq in
      match pending with
      | [] -> Seq.Nil
      | fut :: pending -> Seq.Cons (await t fut, go pending seq)
    in
    go [] seq

let stats t =
  Mutex.lock t.mutex;
  let s =
    { st_workers = t.workers;
      st_submitted = t.submitted;
      st_completed = t.completed;
      st_queue_depth = Queue.length t.queue;
      st_max_queue_depth = t.max_queue_depth;
      st_busy = t.busy;
      st_max_busy = t.max_busy;
      st_helped = t.helped }
  in
  Mutex.unlock t.mutex;
  s

let reset_stats t =
  Mutex.lock t.mutex;
  t.submitted <- 0;
  t.completed <- 0;
  t.max_busy <- 0;
  t.helped <- 0;
  t.max_queue_depth <- 0;
  Mutex.unlock t.mutex

(* Terminal: workers exit once the queue drains. Tasks submitted after
   shutdown still complete — awaiting threads help-drain the queue — they
   just no longer overlap. Idempotent: the flag is monotonic and joining
   an already-terminated thread returns immediately, so concurrent or
   repeated shutdowns (with or without [wait]) are all safe, including
   while workers sit inside a backend roundtrip — they finish the task in
   hand, observe [stopping], and exit. *)
let shutdown ?(wait = false) t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.work_ready;
  let threads = t.threads in
  Mutex.unlock t.mutex;
  if wait then begin
    (* Never join from inside the pool — a worker calling [shutdown ~wait]
       would wait for itself. It still flags the stop; someone outside the
       pool does the joining. *)
    let self = Thread.id (Thread.self ()) in
    List.iter
      (fun th -> if Thread.id th <> self then Thread.join th)
      threads
  end

let is_worker_thread t =
  Mutex.lock t.mutex;
  let r = Hashtbl.mem t.worker_ids (Thread.id (Thread.self ())) in
  Mutex.unlock t.mutex;
  r

let default_pool = ref None
let default_mutex = Mutex.create ()

let default () =
  Mutex.lock default_mutex;
  let p =
    match !default_pool with
    | Some p -> p
    | None ->
      let workers = min 16 (max 4 (Domain.recommended_domain_count ())) in
      let p = create ~workers () in
      default_pool := Some p;
      p
  in
  Mutex.unlock default_mutex;
  p
