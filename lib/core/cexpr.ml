open Aldsp_xml

type var = string

type join_method =
  | Nested_loop
  | Index_nested_loop
  | Ppk of { k : int; prefetch : int; inner : inner_method }

and inner_method = Inner_nl | Inner_inl

type binop =
  | V_eq | V_ne | V_lt | V_le | V_gt | V_ge
  | G_eq | G_ne | G_lt | G_le | G_gt | G_ge
  | Add | Sub | Mul | Div | Idiv | Mod
  | And | Or
  | Range

type t =
  | Const of Atomic.t
  | Empty
  | Seq of t list
  | Var of var
  | Elem of {
      name : Qname.t;
      optional : bool;
      attrs : attr list;
      content : t;
    }
  | Flwor of { clauses : clause list; return_ : t }
  | If of { cond : t; then_ : t; else_ : t }
  | Quantified of { universal : bool; var : var; source : t; pred : t }
  | Call of { fn : Qname.t; args : t list }
  | Child of t * Qname.t
  | Child_wild of t
  | Attr_of of t * Qname.t
  | Filter of { input : t; dot : var; pos : var; pred : t }
  | Data of t
  | Ebv of t
  | Binop of binop * t * t
  | Typematch of t * Stype.t
  | Cast of t * Atomic.atomic_type
  | Castable of t * Atomic.atomic_type
  | Instance_of of t * Stype.t
  | Error_expr of string

and attr = { aname : Qname.t; avalue : t; aoptional : bool }

and clause =
  | For of { var : var; source : t }
  | Let of { var : var; value : t }
  | Where of t
  | Group of { aggs : (var * var) list; keys : (t * var) list; clustered : bool }
  | Order of { keys : (t * bool) list }
  | Join of {
      kind : join_kind;
      method_ : join_method;
      right : clause list;
      on_ : t;
      export : export;
    }
  | Rel of sql_access

and join_kind = J_inner | J_left_outer

and export = Bindings | Grouped of { gvar : var; gexpr : t }

and sql_access = {
  db : string;
  select : Aldsp_relational.Sql_ast.select;
  sql_params : t list;
  binds : sql_bind list;
}

and sql_bind = { bvar : var; btype : Atomic.atomic_type; bcol : string }

let seq exprs =
  let flattened =
    List.concat_map
      (function Seq es -> es | Empty -> [] | e -> [ e ])
      exprs
  in
  match flattened with [] -> Empty | [ e ] -> e | es -> Seq es

(* ------------------------------------------------------------------ *)
(* Traversals                                                          *)

let map_attr f a = { a with avalue = f a.avalue }

let rec map_clause f = function
  | For { var; source } -> For { var; source = f source }
  | Let { var; value } -> Let { var; value = f value }
  | Where e -> Where (f e)
  | Group { aggs; keys; clustered } ->
    Group { aggs; keys = List.map (fun (e, v) -> (f e, v)) keys; clustered }
  | Order { keys } -> Order { keys = List.map (fun (e, d) -> (f e, d)) keys }
  | Join { kind; method_; right; on_; export } ->
    Join
      { kind;
        method_;
        right = List.map (map_clause f) right;
        on_ = f on_;
        export =
          (match export with
          | Bindings -> Bindings
          | Grouped { gvar; gexpr } -> Grouped { gvar; gexpr = f gexpr }) }
  | Rel r -> Rel { r with sql_params = List.map f r.sql_params }

let map_children f = function
  | (Const _ | Empty | Var _ | Error_expr _) as e -> e
  | Seq es -> Seq (List.map f es)
  | Elem { name; optional; attrs; content } ->
    Elem { name; optional; attrs = List.map (map_attr f) attrs;
           content = f content }
  | Flwor { clauses; return_ } ->
    Flwor { clauses = List.map (map_clause f) clauses; return_ = f return_ }
  | If { cond; then_; else_ } ->
    If { cond = f cond; then_ = f then_; else_ = f else_ }
  | Quantified { universal; var; source; pred } ->
    Quantified { universal; var; source = f source; pred = f pred }
  | Call { fn; args } -> Call { fn; args = List.map f args }
  | Child (e, n) -> Child (f e, n)
  | Child_wild e -> Child_wild (f e)
  | Attr_of (e, n) -> Attr_of (f e, n)
  | Filter { input; dot; pos; pred } ->
    Filter { input = f input; dot; pos; pred = f pred }
  | Data e -> Data (f e)
  | Ebv e -> Ebv (f e)
  | Binop (op, a, b) -> Binop (op, f a, f b)
  | Typematch (e, ty) -> Typematch (f e, ty)
  | Cast (e, ty) -> Cast (f e, ty)
  | Castable (e, ty) -> Castable (f e, ty)
  | Instance_of (e, ty) -> Instance_of (f e, ty)

(* ------------------------------------------------------------------ *)
(* Free variables                                                      *)

let free_vars expr () =
  let table = Hashtbl.create 16 in
  let bound = Hashtbl.create 16 in
  let with_bound vars f =
    List.iter (fun v -> Hashtbl.add bound v ()) vars;
    f ();
    List.iter (fun v -> Hashtbl.remove bound v) vars
  in
  let rec go e =
    match e with
    | Var v -> if not (Hashtbl.mem bound v) then Hashtbl.replace table v ()
    | Flwor { clauses; return_ } -> go_clauses clauses (fun () -> go return_)
    | Quantified { var; source; pred; _ } ->
      go source;
      with_bound [ var ] (fun () -> go pred)
    | Filter { input; dot; pos; pred } ->
      go input;
      with_bound [ dot; pos ] (fun () -> go pred)
    | e ->
      ignore
        (map_children
           (fun child ->
             go child;
             child)
           e)
  and go_clauses clauses k =
    match clauses with
    | [] -> k ()
    | For { var; source } :: rest ->
      go source;
      with_bound [ var ] (fun () -> go_clauses rest k)
    | Let { var; value } :: rest ->
      go value;
      with_bound [ var ] (fun () -> go_clauses rest k)
    | Where e :: rest ->
      go e;
      go_clauses rest k
    | Group { aggs; keys; clustered = _ } :: rest ->
      List.iter (fun (e, _) -> go e) keys;
      (* group hides everything except its outputs; inputs are uses *)
      List.iter (fun (v, _) -> if not (Hashtbl.mem bound v) then Hashtbl.replace table v ()) aggs;
      let outs = List.map snd aggs @ List.map snd keys in
      with_bound outs (fun () -> go_clauses rest k)
    | Order { keys } :: rest ->
      List.iter (fun (e, _) -> go e) keys;
      go_clauses rest k
    | Join { right; on_; export; _ } :: rest ->
      go_clauses right (fun () ->
          go on_;
          match export with
          | Bindings -> ()
          | Grouped { gexpr; _ } -> go gexpr);
      let exported =
        match export with
        | Bindings -> clause_vars right
        | Grouped { gvar; _ } -> [ gvar ]
      in
      with_bound exported (fun () -> go_clauses rest k)
    | Rel r :: rest ->
      List.iter go r.sql_params;
      with_bound (List.map (fun b -> b.bvar) r.binds) (fun () ->
          go_clauses rest k)
  and clause_vars clauses =
    List.concat_map
      (function
        | For { var; _ } | Let { var; _ } -> [ var ]
        | Where _ | Order _ -> []
        | Group { aggs; keys; _ } -> List.map snd aggs @ List.map snd keys
        | Join { right; export; _ } -> (
          match export with
          | Bindings -> clause_vars right
          | Grouped { gvar; _ } -> [ gvar ])
        | Rel r -> List.map (fun b -> b.bvar) r.binds)
      clauses
  in
  go expr;
  table

let is_free v e = Hashtbl.mem (free_vars e ()) v

(* Occurrence counting. Names are unique after normalization, so no
   binder bookkeeping is needed — but Group clauses reference their
   aggregation inputs positionally (not as Var nodes), so the traversal
   must be clause-aware. *)
let count_uses v clauses return_ =
  let n = ref 0 in
  let rec go_expr e =
    match e with
    | Var v' -> if String.equal v v' then incr n
    | Flwor { clauses; return_ } ->
      List.iter go_clause clauses;
      go_expr return_
    | e ->
      ignore
        (map_children
           (fun child ->
             go_expr child;
             child)
           e)
  and go_clause = function
    | For { source; _ } -> go_expr source
    | Let { value; _ } -> go_expr value
    | Where e -> go_expr e
    | Group { aggs; keys; _ } ->
      List.iter (fun (v_in, _) -> if String.equal v v_in then incr n) aggs;
      List.iter (fun (e, _) -> go_expr e) keys
    | Order { keys } -> List.iter (fun (e, _) -> go_expr e) keys
    | Join { right; on_; export; _ } ->
      List.iter go_clause right;
      go_expr on_;
      (match export with
      | Bindings -> ()
      | Grouped { gexpr; _ } -> go_expr gexpr)
    | Rel r -> List.iter go_expr r.sql_params
  in
  List.iter go_clause clauses;
  go_expr return_;
  !n

let count_occurrences v e = count_uses v [] e

(* Variables a clause pipeline binds for downstream clauses. *)
let rec clause_vars clauses =
  List.concat_map
    (function
      | For { var; _ } | Let { var; _ } -> [ var ]
      | Where _ | Order _ -> []
      | Group { aggs; keys; _ } -> List.map snd aggs @ List.map snd keys
      | Join { right; export; _ } -> (
        match export with
        | Bindings -> clause_vars right
        | Grouped { gvar; _ } -> [ gvar ])
      | Rel r -> List.map (fun b -> b.bvar) r.binds)
    clauses

(* ------------------------------------------------------------------ *)
(* Substitution                                                        *)

let rec substitute subst e =
  if subst = [] then e
  else
    match e with
    | Var v -> ( match List.assoc_opt v subst with Some r -> r | None -> e)
    | Flwor { clauses; return_ } ->
      let clauses, subst' = substitute_clauses subst clauses in
      Flwor { clauses; return_ = substitute subst' return_ }
    | Quantified { universal; var; source; pred } ->
      let subst' = List.remove_assoc var subst in
      Quantified
        { universal; var; source = substitute subst source;
          pred = substitute subst' pred }
    | Filter { input; dot; pos; pred } ->
      let subst' = List.remove_assoc pos (List.remove_assoc dot subst) in
      Filter
        { input = substitute subst input; dot; pos;
          pred = substitute subst' pred }
    | e -> map_children (substitute subst) e

and substitute_clauses subst = function
  | [] -> ([], subst)
  | For { var; source } :: rest ->
    let source = substitute subst source in
    let subst' = List.remove_assoc var subst in
    let rest, final = substitute_clauses subst' rest in
    (For { var; source } :: rest, final)
  | Let { var; value } :: rest ->
    let value = substitute subst value in
    let subst' = List.remove_assoc var subst in
    let rest, final = substitute_clauses subst' rest in
    (Let { var; value } :: rest, final)
  | Where e :: rest ->
    let rest, final = substitute_clauses subst rest in
    (Where (substitute subst e) :: rest, final)
  | Group { aggs; keys; clustered } :: rest ->
    let keys = List.map (fun (e, v) -> (substitute subst e, v)) keys in
    let aggs =
      List.map
        (fun (v_in, v_out) ->
          (* agg inputs are variable references: substitution of a var by a
             var renames; anything else leaves the input *)
          match List.assoc_opt v_in subst with
          | Some (Var v') -> (v', v_out)
          | _ -> (v_in, v_out))
        aggs
    in
    let outs = List.map snd aggs @ List.map snd keys in
    let subst' =
      List.filter (fun (v, _) -> not (List.mem v outs)) subst
    in
    let rest, final = substitute_clauses subst' rest in
    (Group { aggs; keys; clustered } :: rest, final)
  | Order { keys } :: rest ->
    let keys = List.map (fun (e, d) -> (substitute subst e, d)) keys in
    let rest, final = substitute_clauses subst rest in
    (Order { keys } :: rest, final)
  | Join { kind; method_; right; on_; export } :: rest ->
    let right, subst_in_join = substitute_clauses subst right in
    let on_ = substitute subst_in_join on_ in
    let export, exported =
      match export with
      | Bindings -> (Bindings, [])
      | Grouped { gvar; gexpr } ->
        (Grouped { gvar; gexpr = substitute subst_in_join gexpr }, [ gvar ])
    in
    let subst' =
      List.filter (fun (v, _) -> not (List.mem v exported)) subst_in_join
    in
    let rest, final = substitute_clauses subst' rest in
    (Join { kind; method_; right; on_; export } :: rest, final)
  | Rel r :: rest ->
    let r = { r with sql_params = List.map (substitute subst) r.sql_params } in
    let bound = List.map (fun b -> b.bvar) r.binds in
    let subst' = List.filter (fun (v, _) -> not (List.mem v bound)) subst in
    let rest, final = substitute_clauses subst' rest in
    (Rel r :: rest, final)

(* ------------------------------------------------------------------ *)
(* Bound-variable renaming (inlining hygiene)                          *)

let rename_bound fresh expr =
  let rename_var env v =
    match List.assoc_opt v env with Some v' -> v' | None -> v
  in
  let fresh_var v = Printf.sprintf "%s~%d" v (fresh ()) in
  let rec go env e =
    match e with
    | Var v -> Var (rename_var env v)
    | Flwor { clauses; return_ } ->
      let clauses, env' = go_clauses env clauses in
      Flwor { clauses; return_ = go env' return_ }
    | Quantified { universal; var; source; pred } ->
      let var' = fresh_var var in
      Quantified
        { universal; var = var'; source = go env source;
          pred = go ((var, var') :: env) pred }
    | Filter { input; dot; pos; pred } ->
      let dot' = fresh_var dot and pos' = fresh_var pos in
      Filter
        { input = go env input; dot = dot'; pos = pos';
          pred = go ((dot, dot') :: (pos, pos') :: env) pred }
    | e -> map_children (go env) e
  and go_clauses env = function
    | [] -> ([], env)
    | For { var; source } :: rest ->
      let var' = fresh_var var in
      let source = go env source in
      let rest, env' = go_clauses ((var, var') :: env) rest in
      (For { var = var'; source } :: rest, env')
    | Let { var; value } :: rest ->
      let var' = fresh_var var in
      let value = go env value in
      let rest, env' = go_clauses ((var, var') :: env) rest in
      (Let { var = var'; value } :: rest, env')
    | Where e :: rest ->
      let rest, env' = go_clauses env rest in
      (Where (go env e) :: rest, env')
    | Group { aggs; keys; clustered } :: rest ->
      let keys = List.map (fun (e, v) -> (go env e, v)) keys in
      let aggs = List.map (fun (v_in, v_out) -> (rename_var env v_in, v_out)) aggs in
      let aggs = List.map (fun (v_in, v_out) -> (v_in, v_out, fresh_var v_out)) aggs in
      let keys = List.map (fun (e, v) -> (e, v, fresh_var v)) keys in
      let env' =
        List.map (fun (_, v, v') -> (v, v')) aggs
        @ List.map (fun (_, v, v') -> (v, v')) keys
        @ env
      in
      let rest, env'' =
        go_clauses env' rest
      in
      ( Group
          { aggs = List.map (fun (v_in, _, v') -> (v_in, v')) aggs;
            keys = List.map (fun (e, _, v') -> (e, v')) keys;
            clustered }
        :: rest,
        env'' )
    | Order { keys } :: rest ->
      let keys = List.map (fun (e, d) -> (go env e, d)) keys in
      let rest, env' = go_clauses env rest in
      (Order { keys } :: rest, env')
    | Join { kind; method_; right; on_; export } :: rest ->
      let right, env_in = go_clauses env right in
      let on_ = go env_in on_ in
      let export, env_after =
        match export with
        | Bindings -> (Bindings, env_in)
        | Grouped { gvar; gexpr } ->
          let gvar' = fresh_var gvar in
          ( Grouped { gvar = gvar'; gexpr = go env_in gexpr },
            (gvar, gvar') :: env )
      in
      let rest, env' = go_clauses env_after rest in
      (Join { kind; method_; right; on_; export } :: rest, env')
    | Rel r :: rest ->
      let r = { r with sql_params = List.map (go env) r.sql_params } in
      let binds = List.map (fun b -> (b, fresh_var b.bvar)) r.binds in
      let env' = List.map (fun (b, v') -> (b.bvar, v')) binds @ env in
      let r = { r with binds = List.map (fun (b, v') -> { b with bvar = v' }) binds } in
      let rest, env'' = go_clauses env' rest in
      (Rel r :: rest, env'')
  in
  go [] expr

(* ------------------------------------------------------------------ *)
(* Size / equality                                                     *)

let rec size e =
  let n = ref 1 in
  ignore
    (map_children
       (fun child ->
         n := !n + size child;
         child)
       e);
  !n

let equal (a : t) (b : t) = a = b

(* ------------------------------------------------------------------ *)
(* Pretty printing                                                     *)

let binop_name = function
  | V_eq -> "eq" | V_ne -> "ne" | V_lt -> "lt" | V_le -> "le"
  | V_gt -> "gt" | V_ge -> "ge"
  | G_eq -> "=" | G_ne -> "!=" | G_lt -> "<" | G_le -> "<="
  | G_gt -> ">" | G_ge -> ">="
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "div"
  | Idiv -> "idiv" | Mod -> "mod"
  | And -> "and" | Or -> "or" | Range -> "to"

let method_name = function
  | Nested_loop -> "nl"
  | Index_nested_loop -> "inl"
  | Ppk { k; prefetch; inner } ->
    Printf.sprintf "pp-%d%s/%s" k
      (if prefetch > 0 then Printf.sprintf "+%d" prefetch else "")
      (match inner with Inner_nl -> "nl" | Inner_inl -> "inl")

let rec pp ppf e =
  let open Format in
  match e with
  | Const a -> Atomic.pp ppf a
  | Empty -> pp_print_string ppf "()"
  | Seq es ->
    fprintf ppf "(@[%a@])"
      (pp_print_list ~pp_sep:(fun ppf () -> fprintf ppf ",@ ") pp)
      es
  | Var v -> fprintf ppf "$%s" v
  | Elem { name; optional; attrs; content } ->
    fprintf ppf "@[<hv 2>element %a%s%a {@ %a@] }" Qname.pp name
      (if optional then "?" else "")
      (fun ppf attrs ->
        List.iter
          (fun a ->
            fprintf ppf " @%a%s=%a" Qname.pp a.aname
              (if a.aoptional then "?" else "")
              pp a.avalue)
          attrs)
      attrs pp content
  | Flwor { clauses; return_ } ->
    fprintf ppf "@[<v>%a@ return %a@]"
      (pp_print_list ~pp_sep:pp_print_cut pp_clause)
      clauses pp return_
  | If { cond; then_; else_ } ->
    fprintf ppf "@[<hv>if (%a)@ then %a@ else %a@]" pp cond pp then_ pp else_
  | Quantified { universal; var; source; pred } ->
    fprintf ppf "%s $%s in %a satisfies %a"
      (if universal then "every" else "some")
      var pp source pp pred
  | Call { fn; args } ->
    fprintf ppf "%a(@[%a@])" Qname.pp fn
      (pp_print_list ~pp_sep:(fun ppf () -> fprintf ppf ",@ ") pp)
      args
  | Child (e, n) -> fprintf ppf "%a/%a" pp e Qname.pp n
  | Child_wild e -> fprintf ppf "%a/*" pp e
  | Attr_of (e, n) -> fprintf ppf "%a/@@%a" pp e Qname.pp n
  | Filter { input; dot; pred; _ } ->
    fprintf ppf "%a[%s: %a]" pp input dot pp pred
  | Data e -> fprintf ppf "data(%a)" pp e
  | Ebv e -> fprintf ppf "ebv(%a)" pp e
  | Binop (op, a, b) -> fprintf ppf "(%a %s %a)" pp a (binop_name op) pp b
  | Typematch (e, ty) -> fprintf ppf "typematch(%a, %a)" pp e Stype.pp ty
  | Cast (e, ty) ->
    fprintf ppf "cast(%a as %s)" pp e (Atomic.type_name ty)
  | Castable (e, ty) ->
    fprintf ppf "(%a castable as %s)" pp e (Atomic.type_name ty)
  | Instance_of (e, ty) ->
    fprintf ppf "(%a instance of %a)" pp e Stype.pp ty
  | Error_expr msg -> fprintf ppf "error(%S)" msg

and pp_clause ppf c =
  let open Format in
  match c with
  | For { var; source } -> fprintf ppf "for $%s in %a" var pp source
  | Let { var; value } -> fprintf ppf "let $%s := %a" var pp value
  | Where e -> fprintf ppf "where %a" pp e
  | Group { aggs; keys; clustered } ->
    fprintf ppf "group%s %a by %a"
      (if clustered then "[pre-clustered]" else "")
      (pp_print_list
         ~pp_sep:(fun ppf () -> pp_print_string ppf ", ")
         (fun ppf (a, b) -> fprintf ppf "$%s as $%s" a b))
      aggs
      (pp_print_list
         ~pp_sep:(fun ppf () -> pp_print_string ppf ", ")
         (fun ppf (e, v) -> fprintf ppf "%a as $%s" pp e v))
      keys
  | Order { keys } ->
    fprintf ppf "order by %a"
      (pp_print_list
         ~pp_sep:(fun ppf () -> pp_print_string ppf ", ")
         (fun ppf (e, d) ->
           fprintf ppf "%a%s" pp e (if d then " descending" else "")))
      keys
  | Join { kind; method_; right; on_; export } ->
    fprintf ppf "@[<v 2>%s-join[%s]%s (@,%a@,) on %a@]"
      (match kind with J_inner -> "inner" | J_left_outer -> "left-outer")
      (method_name method_)
      (match export with
      | Bindings -> ""
      | Grouped { gvar; _ } -> Printf.sprintf " grouped as $%s" gvar)
      (pp_print_list ~pp_sep:pp_print_cut pp_clause)
      right pp on_
  | Rel r ->
    fprintf ppf "@[<v 2>relational[%s] {@,sql: %s@,binds: %s@]@,}" r.db
      (try
         Aldsp_relational.Sql_print.select_to_string
           Aldsp_relational.Database.Oracle r.select
       with Aldsp_relational.Sql_print.Unsupported reason ->
         "<unprintable: " ^ reason ^ ">")
      (String.concat ", "
         (List.map (fun b -> Printf.sprintf "$%s <- %s" b.bvar b.bcol) r.binds))

let to_string e = Format.asprintf "%a" pp e
